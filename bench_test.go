package optibfs

// One benchmark family per paper artifact:
//
//	BenchmarkTable5a / BenchmarkTable5b  — Table V(a,b) running times
//	BenchmarkFig2                        — Figure 2 scalability sweep
//	BenchmarkFig3                        — Figure 3 TEPS
//	BenchmarkTable6                      — Table VI steal statistics
//	BenchmarkAblation*                   — design-choice ablations
//
// Each benchmark reports, besides ns/op on this host, the cost-model
// metrics used in EXPERIMENTS.md: modeled-ms (target machine time) and
// TEPS. Graphs are the Table IV stand-ins scaled by benchScale.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/harness"
	"optibfs/internal/mmio"
	"optibfs/internal/stats"
)

// benchScale divides the paper's graph sizes for benchmarking.
const benchScale = 256

var (
	benchGraphs   = map[string]*graph.CSR{}
	benchGraphsMu sync.Mutex
)

func benchGraph(b *testing.B, name string) *graph.CSR {
	b.Helper()
	benchGraphsMu.Lock()
	defer benchGraphsMu.Unlock()
	if g, ok := benchGraphs[name]; ok {
		return g
	}
	spec, err := harness.SpecByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Generate(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[name] = g
	return g
}

// runBench executes one (algorithm, graph, workers) cell b.N times and
// reports modeled milliseconds and TEPS for the machine.
func runBench(b *testing.B, g *graph.CSR, algo harness.AlgoSpec, workers int, m costmodel.Machine, opt core.Options) {
	b.Helper()
	opt.Workers = workers
	if algo.IsSerial() {
		opt.Workers = 1
	}
	src := harness.PickSources(g, 1, 0xbe7c)[0]
	var modeled, teps float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = uint64(i) + 1
		res, err := algo.Run(g, src, opt)
		if err != nil {
			b.Fatal(err)
		}
		mt := costmodel.Modeled(m, algo.Shape(), res)
		modeled += mt
		teps += stats.TEPS(res.EdgesTraversed, mt)
	}
	b.StopTimer()
	b.ReportMetric(modeled/float64(b.N)*1e3, "modeled-ms")
	b.ReportMetric(teps/float64(b.N)/1e6, "modeled-MTEPS")
}

// table5 runs the Table V benchmark family for one machine profile.
func table5(b *testing.B, m costmodel.Machine) {
	for _, gname := range []string{"wikipedia", "cage14", "kkt-power", "rmat-10M-100M"} {
		g := benchGraph(b, gname)
		for _, algo := range harness.TableAlgos {
			b.Run(fmt.Sprintf("%s/%s", gname, algo.Name), func(b *testing.B) {
				runBench(b, g, algo, m.Cores, m, core.Options{})
			})
		}
	}
}

func BenchmarkTable5a(b *testing.B) { table5(b, costmodel.Lonestar) }
func BenchmarkTable5b(b *testing.B) { table5(b, costmodel.Trestles) }

// BenchmarkFig2 sweeps worker counts for the lockfree variants on the
// wikipedia stand-in (the paper's scalability figure).
func BenchmarkFig2(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	for _, algo := range harness.LockfreeAlgos {
		for _, p := range []int{1, 2, 4, 8, 12, 32} {
			m := costmodel.Lonestar
			if p > m.Cores {
				m = costmodel.Trestles
			}
			b.Run(fmt.Sprintf("%s/p%d", algo.Name, p), func(b *testing.B) {
				runBench(b, g, algo, p, m, core.Options{})
			})
		}
	}
}

// BenchmarkFig3 reports TEPS for every algorithm on the real-world
// stand-ins (the modeled-MTEPS metric is the figure's y-axis).
func BenchmarkFig3(b *testing.B) {
	for _, gname := range []string{"cage15", "freescale", "wikipedia"} {
		g := benchGraph(b, gname)
		for _, algo := range harness.TableAlgos {
			b.Run(fmt.Sprintf("%s/%s", gname, algo.Name), func(b *testing.B) {
				runBench(b, g, algo, costmodel.Lonestar.Cores, costmodel.Lonestar, core.Options{})
			})
		}
	}
}

// BenchmarkTable6 measures the steal machinery of BFS_WS vs BFS_WSL,
// reporting the steal taxonomy as metrics.
func BenchmarkTable6(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	for _, algo := range []core.Algorithm{core.BFSWS, core.BFSWSL} {
		b.Run(string(algo), func(b *testing.B) {
			src := harness.PickSources(g, 1, 77)[0]
			var agg stats.Counters
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Run(g, src, algo, core.Options{Workers: 12, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				agg.Add(&res.Counters)
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(float64(agg.StealAttempts)/n, "steals/op")
			b.ReportMetric(float64(agg.StealSuccess)/n, "steal-ok/op")
			b.ReportMetric(float64(agg.StealVictimIdle)/n, "victim-idle/op")
			b.ReportMetric(float64(agg.StealTooSmall)/n, "too-small/op")
			b.ReportMetric(float64(agg.StealStale+agg.StealInvalid)/n, "stale+invalid/op")
			b.ReportMetric(float64(agg.StealVictimLocked)/n, "victim-locked/op")
			b.ReportMetric(float64(agg.LockAcquisitions)/n, "locks/op")
		})
	}
}

// BenchmarkAblationLockfree pairs each locked variant with its lockfree
// counterpart (the paper's headline comparison).
func BenchmarkAblationLockfree(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	pairs := [][2]core.Algorithm{
		{core.BFSC, core.BFSCL},
		{core.BFSW, core.BFSWL},
		{core.BFSWS, core.BFSWSL},
	}
	for _, pair := range pairs {
		for _, algo := range pair {
			spec := harness.AlgoSpec{}
			for _, a := range harness.TableAlgos {
				if a.Name == string(algo) {
					spec = a
				}
			}
			b.Run(string(algo), func(b *testing.B) {
				runBench(b, g, spec, 12, costmodel.Lonestar, core.Options{})
			})
		}
	}
}

// BenchmarkAblationSegment sweeps the centralized dispatch segment size
// (fixed values vs the paper's adaptive rule, SegmentSize=0).
func BenchmarkAblationSegment(b *testing.B) {
	g := benchGraph(b, "cage14")
	spec, err := harness.AlgoByName(string(core.BFSCL))
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []int{0, 1, 16, 256, 4096} {
		name := fmt.Sprintf("s%d", s)
		if s == 0 {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			runBench(b, g, spec, 12, costmodel.Lonestar, core.Options{SegmentSize: s})
		})
	}
}

// BenchmarkAblationPools sweeps BFS_DL's decentralization degree j.
func BenchmarkAblationPools(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	spec, err := harness.AlgoByName(string(core.BFSDL))
	if err != nil {
		b.Fatal(err)
	}
	for _, j := range []int{1, 2, 4, 8, 12} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			runBench(b, g, spec, 12, costmodel.Lonestar, core.Options{Pools: j})
		})
	}
}

// BenchmarkAblationScaleFree sweeps the hot-vertex threshold and the
// paper's optional phase-2 stealing and §IV-D parent-claim filter.
func BenchmarkAblationScaleFree(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	spec, err := harness.AlgoByName(string(core.BFSWSL))
	if err != nil {
		b.Fatal(err)
	}
	for _, thr := range []int64{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("threshold%d", thr), func(b *testing.B) {
			runBench(b, g, spec, 12, costmodel.Lonestar, core.Options{HighDegreeThreshold: thr})
		})
	}
	b.Run("phase2stealing", func(b *testing.B) {
		runBench(b, g, spec, 12, costmodel.Lonestar, core.Options{Phase2Stealing: true})
	})
	b.Run("parentclaim", func(b *testing.B) {
		runBench(b, g, spec, 12, costmodel.Lonestar, core.Options{ParentClaim: true})
	})
}

// BenchmarkAblationNUMA compares unbiased vs socket-biased stealing.
func BenchmarkAblationNUMA(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	spec, err := harness.AlgoByName(string(core.BFSWL))
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name    string
		sockets int
		bias    float64
	}{
		{"flat", 1, 0},
		{"2sockets-bias0.9", 2, 0.9},
		{"4sockets-bias0.9", 4, 0.9},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			runBench(b, g, spec, 12, costmodel.Lonestar,
				core.Options{Sockets: cfg.sockets, SameSocketBias: cfg.bias})
		})
	}
}

// BenchmarkExtensionEdgePartition compares the §IV-D future-work
// edge-partitioned variant (BFS_EL) against vertex-partitioned BFS_CL
// on a uniform mesh and a hub-heavy scale-free graph — edge division
// should shine exactly where vertex degrees are skewed.
func BenchmarkExtensionEdgePartition(b *testing.B) {
	for _, gname := range []string{"cage14", "wikipedia"} {
		g := benchGraph(b, gname)
		for _, name := range []string{string(core.BFSCL), string(core.BFSEL)} {
			spec, err := harness.AlgoByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", gname, name), func(b *testing.B) {
				runBench(b, g, spec, 12, costmodel.Lonestar, core.Options{})
			})
		}
	}
}

// BenchmarkAblationReorder measures the locality effect of vertex
// relabeling (BFS order / degree order) on serial BFS wall time on
// this host — a real-cache effect, so ns/op is the relevant metric.
func BenchmarkAblationReorder(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	src := harness.PickSources(g, 1, 5)[0]
	variants := map[string]*graph.CSR{"original": g}
	if g2, _, err := ReorderByBFS(g, src); err == nil {
		variants["bfs-order"] = g2
	} else {
		b.Fatal(err)
	}
	if g3, _, err := ReorderByDegree(g); err == nil {
		variants["degree-order"] = g3
	} else {
		b.Fatal(err)
	}
	for _, name := range []string{"original", "bfs-order", "degree-order"} {
		gg := variants[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(gg, 0, core.Serial, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPersistentWorkers compares per-level goroutine
// spawning against long-lived workers with a reusable barrier (the Go
// analogue of the paper's §IV-D cilk-vs-OpenMP question), on a
// high-diameter graph where per-level overheads accumulate most.
func BenchmarkAblationPersistentWorkers(b *testing.B) {
	g := benchGraph(b, "freescale")
	spec, err := harness.AlgoByName(string(core.BFSCL))
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name       string
		persistent bool
	}{{"spawn-per-level", false}, {"persistent", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			runBench(b, g, spec, 12, costmodel.Lonestar,
				core.Options{PersistentWorkers: cfg.persistent})
		})
	}
}

// BenchmarkEngineSteadyState measures warm Engine.Run on the
// wikipedia stand-in: after the warmup runs every per-run structure —
// dist/parent/claim arrays, queue buffers, counters, RNG streams, and
// (with PersistentWorkers) the worker goroutines — is pooled on the
// engine and invalidated by the epoch bump, so allocs/op must be 0.
// The timeline variant additionally enables the per-level timeline and
// dispatch tracing, whose buffers are pooled the same way — turning
// observability on must not cost warm-path allocations.
// scripts/benchsmoke.sh gates CI on exactly these numbers.
func BenchmarkEngineSteadyState(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	src := harness.PickSources(g, 1, 0xbe7c)[0]
	cases := []struct {
		name string
		algo Algorithm
		opt  Options
	}{
		{string(BFSCL), BFSCL, Options{Workers: 8, Seed: 1, PersistentWorkers: true}},
		{string(BFSWL), BFSWL, Options{Workers: 8, Seed: 1, PersistentWorkers: true}},
		{string(BFSWSL), BFSWSL, Options{Workers: 8, Seed: 1, PersistentWorkers: true}},
		{string(BFSWSL) + "-timeline", BFSWSL, Options{
			Workers: 8, Seed: 1, PersistentWorkers: true,
			LevelTimeline: true, TraceCapacity: 1 << 12,
		}},
	}
	for _, tc := range cases {
		opt := tc.opt
		b.Run(tc.name, func(b *testing.B) {
			e, err := NewEngine(g, tc.algo, &opt)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			// Warmup: racy duplicate counts vary run to run, so the
			// pooled queue buffers take a few runs to reach their
			// high-water capacity.
			for i := 0; i < 8; i++ {
				if _, err := e.Run(src); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHybridSteadyState is the warm-path discipline check for the
// in-core direction-optimizing mode: after warmup every hybrid
// structure — the frontier bitmaps, the cached transpose, the
// per-worker decision lanes, and the compaction scatter's queue
// targets — is pooled on the engine, so allocs/op must be 0 exactly
// like the plain steady-state engines. The wikipedia stand-in's
// low-diameter frontier growth takes the alpha/beta switch every run,
// so the bottom-up kernel and both representation conversions are on
// the measured path. scripts/benchsmoke.sh gates CI on these numbers.
func BenchmarkHybridSteadyState(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	src := harness.PickSources(g, 1, 0xbe7c)[0]
	for _, algo := range []Algorithm{BFSWL, BFSWSL} {
		b.Run(string(algo), func(b *testing.B) {
			e, err := NewEngine(g, algo, &Options{
				Workers: 8, Seed: 1, PersistentWorkers: true, Hybrid: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			var sawBottomUp bool
			for i := 0; i < 8; i++ { // warm the pooled buffers
				res, err := e.Run(src)
				if err != nil {
					b.Fatal(err)
				}
				sawBottomUp = sawBottomUp || res.Counters.BottomUpLevels > 0
			}
			if !sawBottomUp {
				b.Fatal("hybrid run never went bottom-up; the benchmark would measure plain top-down")
			}
			var edges int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := e.Run(src)
				if err != nil {
					b.Fatal(err)
				}
				edges += res.EdgesTraversed
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(edges)/secs/1e6, "MTEPS")
			}
		})
	}
}

// BenchmarkGoalSteadyState is the warm-path discipline check for
// goal-directed termination: a warm engine repeatedly runs an s-t
// search to a mid-depth target (plus a depth-bounded variant). The goal
// predicate is evaluated only at level barriers on pooled state, so
// allocs/op must be 0 exactly like the plain steady-state engines, and
// the truncated partial sweep must traverse strictly fewer edges than
// the full run it short-circuits. scripts/benchsmoke.sh gates CI on
// these numbers.
func BenchmarkGoalSteadyState(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	src := harness.PickSources(g, 1, 0xbe7c)[0]
	ctx := context.Background()
	for _, algo := range []Algorithm{BFSWL, BFSWSL} {
		e, err := NewEngine(g, algo, &Options{Workers: 8, Seed: 1, PersistentWorkers: true})
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		full, err := e.Run(src) // picks the mid-depth target
		if err != nil {
			b.Fatal(err)
		}
		fullEdges := full.EdgesTraversed
		wantDepth := full.Levels / 2
		if wantDepth < 1 {
			wantDepth = 1
		}
		dst := src
		for v, d := range full.Dist {
			if d == int32(wantDepth) {
				dst = int32(v)
				break
			}
		}
		for _, gc := range []struct {
			name string
			goal Goal
		}{
			{"st", GoalTo(dst)},
			{"depth2", Goal{MaxDepth: 2}},
		} {
			b.Run(fmt.Sprintf("%s/%s", algo, gc.name), func(b *testing.B) {
				for i := 0; i < 8; i++ { // warm the pooled buffers
					if _, err := e.RunGoal(ctx, src, gc.goal); err != nil {
						b.Fatal(err)
					}
				}
				var edges int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := e.RunGoal(ctx, src, gc.goal)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Truncated {
						b.Fatal("goal run was not truncated; the benchmark would measure a full sweep")
					}
					edges += res.EdgesTraversed
				}
				b.StopTimer()
				if b.N > 0 {
					b.ReportMetric(float64(edges)/float64(b.N)/float64(fullEdges)*100, "edge-%")
				}
			})
		}
	}
}

// BenchmarkEngineRunMany compares one warm engine sweeping 32 sources
// against 32 one-shot BFS calls — the allocation/zeroing cost the
// engine amortizes is the entire difference, so engine-32src must beat
// oneshot-32src on wall time in the same benchmark run.
func BenchmarkEngineRunMany(b *testing.B) {
	g := benchGraph(b, "wikipedia")
	sources := harness.PickSources(g, 32, 0x32)
	b.Run("engine-32src", func(b *testing.B) {
		e, err := NewEngine(g, BFSWSL, &Options{Workers: 8, Seed: 1, PersistentWorkers: true})
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		if err := e.RunMany(sources, nil); err != nil { // warmup sweep
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var reached int64
			err := e.RunMany(sources, func(_ int, res *Result) error {
				reached += res.Reached
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if reached == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
	b.Run("oneshot-32src", func(b *testing.B) {
		opt := &Options{Workers: 8, Seed: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var reached int64
			for _, src := range sources {
				res, err := BFS(g, src, BFSWSL, opt)
				if err != nil {
					b.Fatal(err)
				}
				reached += res.Reached
			}
			if reached == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
}

// drainGraph memoizes graphs that are not Table IV stand-ins (the
// drain-locality benchmark uses a full RMAT-18 and a uniform grid).
func drainGraph(b *testing.B, name string, mk func() (*graph.CSR, error)) *graph.CSR {
	b.Helper()
	benchGraphsMu.Lock()
	defer benchGraphsMu.Unlock()
	if g, ok := benchGraphs[name]; ok {
		return g
	}
	g, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[name] = g
	return g
}

// BenchmarkDrainLocality isolates the hot top-down drain: warm BFS_WSL
// sweeps over a scale-free RMAT-18 (2^18 vertices, edgefactor 16) and a
// uniform 512x512 grid at publication block sizes 1 (one shared index
// store per discovery — the pre-batching baseline), 64, and 256.
// MTEPS here is measured wall-clock TEPS on this host, not modeled:
// block batching and the prefetched edge scan are real-cache effects.
// Workers is left at 0 (= GOMAXPROCS) on purpose — oversubscribing a
// small host drowns the locality signal in scheduler noise.
// The block>=64 rows must beat block=1 by >=10% MTEPS on rmat18
// (recorded in BENCH_pr4.json); scripts/benchsmoke.sh gates allocs/op
// at 0 on every sub-benchmark alongside BenchmarkEngineSteadyState.
func BenchmarkDrainLocality(b *testing.B) {
	graphs := []struct {
		name string
		mk   func() (*graph.CSR, error)
	}{
		{"rmat18", func() (*graph.CSR, error) {
			return gen.Graph500RMAT(1<<18, 16<<18, 0xd5a1, gen.Options{})
		}},
		{"grid512", func() (*graph.CSR, error) {
			return gen.Grid2D(512, 512, false)
		}},
	}
	for _, gc := range graphs {
		g := drainGraph(b, gc.name, gc.mk)
		src := harness.PickSources(g, 1, 0xd7a1)[0]
		for _, blk := range []int{1, 64, 256} {
			b.Run(fmt.Sprintf("%s/block%d", gc.name, blk), func(b *testing.B) {
				e, err := NewEngine(g, BFSWSL, &Options{
					Seed: 1, PersistentWorkers: true, PublishBlock: blk,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer e.Close()
				for i := 0; i < 8; i++ { // warm the pooled buffers
					if _, err := e.Run(src); err != nil {
						b.Fatal(err)
					}
				}
				var edges int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := e.Run(src)
					if err != nil {
						b.Fatal(err)
					}
					edges += res.EdgesTraversed
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(edges)/secs/1e6, "MTEPS")
				}
			})
		}
	}
}

// BenchmarkShardedSteadyState drives warm sharded backends over
// RMAT-18 at shard counts 1, 2, and 4 (shards=1 routes to the classic
// single engine — the parity baseline the 1-shard overhead criterion
// is judged against). MTEPS is measured wall clock on this host.
// scripts/benchsmoke.sh gates allocs/op on the warm loop alongside the
// other steady-state benchmarks: the exchange flushes into
// preallocated queues, so sharding must not reintroduce per-run
// allocation.
func BenchmarkShardedSteadyState(b *testing.B) {
	g := drainGraph(b, "rmat18", func() (*graph.CSR, error) {
		return gen.Graph500RMAT(1<<18, 16<<18, 0xd5a1, gen.Options{})
	})
	src := harness.PickSources(g, 1, 0xbe7c)[0]
	for _, algo := range []core.Algorithm{core.BFSWL, core.BFSWSL} {
		for _, shards := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/shards%d", algo, shards), func(b *testing.B) {
				be, err := core.NewBackend(g, algo, core.Options{
					Workers: 8, Seed: 1, PersistentWorkers: true,
					TrackParents: true, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer be.Close()
				for i := 0; i < 8; i++ { // warm the pooled buffers
					if _, err := be.Run(src); err != nil {
						b.Fatal(err)
					}
				}
				var edges int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := be.Run(src)
					if err != nil {
						b.Fatal(err)
					}
					edges += res.EdgesTraversed
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(edges)/secs/1e6, "MTEPS")
				}
			})
		}
	}
}

// BenchmarkMappedLoad measures LoadMapped on a v2 file: cold is the
// first touch after writing (page cache warm from the write, mapping
// setup included), warm is repeated loads of the same file. The heap
// comparison row reads the same graph through ReadBinary.
func BenchmarkMappedLoad(b *testing.B) {
	g := drainGraph(b, "rmat18", func() (*graph.CSR, error) {
		return gen.Graph500RMAT(1<<18, 16<<18, 0xd5a1, gen.Options{})
	})
	dir := b.TempDir()
	path := dir + "/g.bin2"
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := mmio.WriteBinaryV2(f, g); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	b.Run("mmap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := mmio.LoadMapped(path, mmio.MapOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if m.Graph().NumVertices() != g.NumVertices() {
				b.Fatal("wrong graph")
			}
			if err := m.Release(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			h, err := mmio.ReadBinary(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			if h.NumVertices() != g.NumVertices() {
				b.Fatal("wrong graph")
			}
		}
	})
}

// BenchmarkSerialBaseline pins the sbfs number every speedup in
// EXPERIMENTS.md is relative to.
func BenchmarkSerialBaseline(b *testing.B) {
	for _, gname := range []string{"wikipedia", "cage14"} {
		g := benchGraph(b, gname)
		spec, err := harness.AlgoByName(string(core.Serial))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(gname, func(b *testing.B) {
			runBench(b, g, spec, 1, costmodel.Lonestar, core.Options{})
		})
	}
}
