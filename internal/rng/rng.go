// Package rng provides small, fast, deterministic pseudo-random number
// generators for the BFS runtimes and graph generators.
//
// The generators here are value types with no global state, so every
// worker goroutine can own an independent stream seeded from a single
// experiment seed. Determinism matters twice in this repository: graph
// generators must reproduce the same graph for the same seed so that
// experiments are repeatable, and victim selection in the work-stealing
// schedulers must be replayable when debugging steal statistics.
package rng

// SplitMix64 is the 64-bit SplitMix generator (Steele, Lea, Flood 2014).
// It is used both as a standalone generator and to seed Xoshiro256
// streams, which is the seeding procedure recommended by the xoshiro
// authors. The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64 pseudo-random bits.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 is a stateless SplitMix64 finalizer: it hashes x to a well-mixed
// 64-bit value. Useful for deriving per-worker seeds from (seed, id).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements the xoshiro256** 1.0 generator
// (Blackman & Vigna 2018): 256 bits of state, period 2^256-1,
// excellent statistical quality, and only shifts/rotates/adds on the
// hot path, which keeps victim selection cheap inside steal loops.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a xoshiro256** stream seeded from seed via
// SplitMix64, per the reference seeding procedure.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	var x Xoshiro256
	x.Seed(seed)
	return &x
}

// Seed re-seeds the stream in place from seed, exactly as NewXoshiro256
// does, without allocating. It lets long-lived owners (engine worker
// streams) restart a deterministic sequence between runs.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := NewSplitMix64(seed)
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// A theoretically possible all-zero state would make the stream
	// constant; nudge it (cannot happen with SplitMix64 seeding, but the
	// guard makes the type safe under direct struct construction too).
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Next returns the next 64 pseudo-random bits.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
// It uses Lemire's multiply-shift reduction with a rejection loop to
// remove modulo bias.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path: power of two.
	if n&(n-1) == 0 {
		return x.Next() & (n - 1)
	}
	// Lemire 2019 "nearly divisionless" bounded generation.
	v := x.Next()
	hi, lo := mul128(v, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			v = x.Next()
			hi, lo = mul128(v, n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Int32n returns a uniform int32 in [0, n). n must be > 0.
func (x *Xoshiro256) Int32n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int32n with n <= 0")
	}
	return int32(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Jump advances the stream by 2^128 steps, equivalent to 2^128 calls of
// Next. It yields up to 2^128 non-overlapping subsequences for parallel
// workers derived from one seed.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := uint(0); b < 64; b++ {
			if j&(1<<b) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Next()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	w0 := t & mask32
	k := t >> 32
	t = aHi*bLo + k
	w1 := t & mask32
	w2 := t >> 32
	t = aLo*bHi + w1
	k = t >> 32
	hi = aHi*bHi + w2 + k
	lo = t<<32 + w0
	return hi, lo
}
