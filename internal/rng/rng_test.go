package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical C implementation
	// (Vigna's splitmix64.c, as used in PractRand's vectors).
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64ZeroValueUsable(t *testing.T) {
	var s SplitMix64
	a, b := s.Next(), s.Next()
	if a == b {
		t.Fatalf("zero-value SplitMix64 produced identical consecutive outputs %#x", a)
	}
}

func TestMix64MatchesSplitMixStep(t *testing.T) {
	// Mix64(seed + gamma*1) must equal the first Next() of a seeded
	// generator, since SplitMix64 is exactly state += gamma; mix(state).
	const seed = 42
	s := NewSplitMix64(seed)
	if got, want := s.Next(), Mix64(seed); got != want {
		t.Fatalf("Mix64 disagrees with SplitMix64 step: %#x vs %#x", got, want)
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a := NewXoshiro256(99)
	b := NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("same-seed streams diverged at step %d: %#x vs %#x", i, x, y)
		}
	}
	c := NewXoshiro256(100)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	x := NewXoshiro256(7)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 2000; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nOne(t *testing.T) {
	x := NewXoshiro256(7)
	for i := 0; i < 100; i++ {
		if v := x.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			NewXoshiro256(1).Intn(n)
		}()
	}
}

func TestUint64nRoughUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 16 buckets.
	x := NewXoshiro256(2024)
	const n, samples = 16, 160000
	var counts [n]int
	for i := 0; i < samples; i++ {
		counts[x.Uint64n(n)]++
	}
	expect := float64(samples) / n
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 0.05*expect {
			t.Fatalf("bucket %d count %d deviates >5%% from %g", b, c, expect)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(5)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestJumpProducesDisjointStreams(t *testing.T) {
	a := NewXoshiro256(1)
	b := NewXoshiro256(1)
	b.Jump()
	seen := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		seen[a.Next()] = true
	}
	overlap := 0
	for i := 0; i < 4096; i++ {
		if seen[b.Next()] {
			overlap++
		}
	}
	if overlap > 0 {
		t.Fatalf("jumped stream overlapped base stream in %d/4096 outputs", overlap)
	}
}

func TestMul128AgainstBigConstants(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul128(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul128PropertyLowBits(t *testing.T) {
	// lo must equal wrapping product for arbitrary inputs.
	f := func(a, b uint64) bool {
		_, lo := mul128(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMix64IsBijectionSample(t *testing.T) {
	// Injectivity on a sample: collisions would indicate a broken mix.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestInt32n(t *testing.T) {
	x := NewXoshiro256(3)
	for i := 0; i < 5000; i++ {
		if v := x.Int32n(17); v < 0 || v >= 17 {
			t.Fatalf("Int32n(17) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int32n(0) did not panic")
		}
	}()
	x.Int32n(0)
}

func TestUint64nNonPowerOfTwoHitsRejection(t *testing.T) {
	// Odd bounds exercise the Lemire rejection path; correctness is
	// bounds-only (statistics covered elsewhere).
	x := NewXoshiro256(123)
	for _, n := range []uint64{3, 5, 1<<63 - 1, 1<<64 - 3} {
		for i := 0; i < 300; i++ {
			if v := x.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}
