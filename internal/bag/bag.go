// Package bag implements the pennant/bag data structure of Leiserson &
// Schardl's work-efficient parallel BFS (SPAA 2010), the substrate of
// the reproduced paper's Baseline1. A bag is an unordered multiset of
// vertices supporting O(1) insert (amortized), O(log n) union, and a
// split into halves, represented as a "binary counter" of pennants —
// complete binary trees of 2^k elements.
//
// The paper under reproduction contrasts its simple array queues with
// exactly this structure ("a complicated data structure (called a
// bag)"), so fidelity to the published shape matters more than raw
// speed here.
package bag

// Pennant is a tree of 2^k elements: a root holding one element whose
// Left child is a complete binary tree of 2^k - 1 elements. Right is
// used only while a pennant is linked into larger pennants.
type Pennant struct {
	Value       int32
	Left, Right *Pennant
}

// NewPennant returns a size-1 pennant holding v.
func NewPennant(v int32) *Pennant {
	return &Pennant{Value: v}
}

// Union combines two pennants of identical size 2^k into one of size
// 2^(k+1) in O(1) (SPAA'10 Fig. 2).
func Union(x, y *Pennant) *Pennant {
	y.Right = x.Left
	x.Left = y
	return x
}

// Split undoes Union: it splits a pennant of size 2^(k+1) into two of
// size 2^k, returning the detached half. The receiver keeps the other
// half. Must not be called on a size-1 pennant.
func Split(x *Pennant) *Pennant {
	y := x.Left
	x.Left = y.Right
	y.Right = nil
	return y
}

// Walk calls fn for every element of the pennant. The traversal is
// iterative with an explicit stack so deep pennants cannot overflow
// the goroutine stack.
func (p *Pennant) Walk(fn func(int32)) {
	if p == nil {
		return
	}
	stack := make([]*Pennant, 0, 64)
	stack = append(stack, p)
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(node.Value)
		if node.Left != nil {
			stack = append(stack, node.Left)
		}
		if node.Right != nil {
			stack = append(stack, node.Right)
		}
	}
}

// Count returns the number of elements in the pennant.
func (p *Pennant) Count() int {
	n := 0
	p.Walk(func(int32) { n++ })
	return n
}

// MaxBackbone bounds bag capacity at 2^MaxBackbone elements.
const MaxBackbone = 40

// Bag is the pennant array: Spine[k] is nil or a pennant of exactly
// 2^k elements, so insertion works like binary-counter increment.
type Bag struct {
	Spine [MaxBackbone]*Pennant
	size  int64
}

// New returns an empty bag.
func New() *Bag { return &Bag{} }

// Size returns the number of elements.
func (b *Bag) Size() int64 { return b.size }

// IsEmpty reports whether the bag has no elements.
func (b *Bag) IsEmpty() bool { return b.size == 0 }

// Insert adds v (binary-counter increment: carry pennants upward).
func (b *Bag) Insert(v int32) {
	p := NewPennant(v)
	k := 0
	for b.Spine[k] != nil {
		p = Union(b.Spine[k], p)
		b.Spine[k] = nil
		k++
		if k >= MaxBackbone {
			panic("bag: capacity exceeded")
		}
	}
	b.Spine[k] = p
	b.size++
}

// UnionWith merges other into b, emptying other (full-adder per slot,
// SPAA'10 Fig. 3).
func (b *Bag) UnionWith(other *Bag) {
	var carry *Pennant
	for k := 0; k < MaxBackbone; k++ {
		x, y := b.Spine[k], other.Spine[k]
		other.Spine[k] = nil
		// Full adder on (x, y, carry).
		switch {
		case x == nil && y == nil:
			b.Spine[k], carry = carry, nil
		case x != nil && y == nil && carry == nil:
			// keep x
		case x == nil && y != nil && carry == nil:
			b.Spine[k] = y
		case x != nil && y != nil && carry == nil:
			b.Spine[k], carry = nil, Union(x, y)
		case x != nil && y == nil && carry != nil:
			b.Spine[k], carry = nil, Union(x, carry)
		case x == nil && y != nil && carry != nil:
			b.Spine[k], carry = nil, Union(y, carry)
		default: // all three
			b.Spine[k], carry = x, Union(y, carry)
		}
	}
	if carry != nil {
		panic("bag: union overflow")
	}
	b.size += other.size
	other.size = 0
}

// SplitHalf removes roughly half of b's elements into a new bag
// (SPAA'10 Fig. 4): every pennant of size 2^k (k>0) is split, with one
// half staying and one leaving; a size-1 pennant stays behind.
func (b *Bag) SplitHalf() *Bag {
	other := New()
	spare := b.Spine[0]
	b.Spine[0] = nil
	var moved int64
	for k := 1; k < MaxBackbone; k++ {
		if b.Spine[k] == nil {
			continue
		}
		half := Split(b.Spine[k])
		other.Spine[k-1] = half
		b.Spine[k-1] = b.Spine[k]
		b.Spine[k] = nil
		moved += int64(1) << (k - 1)
	}
	if spare != nil {
		// Re-insert the spare singleton into b.
		b.size = b.size - moved - 1
		other.size = moved
		b.Insert(spare.Value)
	} else {
		b.size -= moved
		other.size = moved
	}
	return other
}

// Walk calls fn for every element in the bag.
func (b *Bag) Walk(fn func(int32)) {
	for _, p := range b.Spine {
		p.Walk(fn)
	}
}

// Pennants returns the non-nil pennants with their sizes, largest
// first — the parallel work units of PBFS.
func (b *Bag) Pennants() []*Pennant {
	var out []*Pennant
	for k := MaxBackbone - 1; k >= 0; k-- {
		if b.Spine[k] != nil {
			out = append(out, b.Spine[k])
		}
	}
	return out
}

// Elements returns the bag's contents as a slice (test helper).
func (b *Bag) Elements() []int32 {
	out := make([]int32, 0, b.size)
	b.Walk(func(v int32) { out = append(out, v) })
	return out
}
