package bag

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestPennantUnionSplit(t *testing.T) {
	a, b := NewPennant(1), NewPennant(2)
	u := Union(a, b) // size 2
	if u.Count() != 2 {
		t.Fatalf("union size %d", u.Count())
	}
	c := Union(Union(NewPennant(3), NewPennant(4)), u) // wrong sizes on purpose? no: both size 2
	if c.Count() != 4 {
		t.Fatalf("union size %d", c.Count())
	}
	y := Split(c)
	if c.Count() != 2 || y.Count() != 2 {
		t.Fatalf("split sizes %d/%d", c.Count(), y.Count())
	}
}

func TestPennantWalkNil(t *testing.T) {
	var p *Pennant
	called := false
	p.Walk(func(int32) { called = true })
	if called {
		t.Fatal("nil pennant walked elements")
	}
}

func TestBagInsertAndSize(t *testing.T) {
	b := New()
	if !b.IsEmpty() {
		t.Fatal("new bag not empty")
	}
	for i := int32(0); i < 1000; i++ {
		b.Insert(i)
	}
	if b.Size() != 1000 {
		t.Fatalf("size %d", b.Size())
	}
	got := b.Elements()
	if len(got) != 1000 {
		t.Fatalf("elements %d", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, v := range got {
		if v != int32(i) {
			t.Fatalf("element %d = %d", i, v)
		}
	}
}

func TestBagSpineIsBinaryCounter(t *testing.T) {
	b := New()
	for i := int32(0); i < 13; i++ { // 13 = 0b1101
		b.Insert(i)
	}
	wantBits := []int{0, 2, 3}
	for k := 0; k < MaxBackbone; k++ {
		has := b.Spine[k] != nil
		want := false
		for _, wb := range wantBits {
			if wb == k {
				want = true
			}
		}
		if has != want {
			t.Fatalf("spine[%d] presence %v, want %v", k, has, want)
		}
		if has && b.Spine[k].Count() != 1<<k {
			t.Fatalf("spine[%d] has %d elements, want %d", k, b.Spine[k].Count(), 1<<k)
		}
	}
}

func TestBagUnion(t *testing.T) {
	a, b := New(), New()
	for i := int32(0); i < 37; i++ {
		a.Insert(i)
	}
	for i := int32(100); i < 164; i++ {
		b.Insert(i)
	}
	a.UnionWith(b)
	if a.Size() != 37+64 {
		t.Fatalf("union size %d", a.Size())
	}
	if !b.IsEmpty() || b.Size() != 0 {
		t.Fatal("source bag not emptied")
	}
	seen := map[int32]int{}
	a.Walk(func(v int32) { seen[v]++ })
	for i := int32(0); i < 37; i++ {
		if seen[i] != 1 {
			t.Fatalf("element %d count %d", i, seen[i])
		}
	}
	for i := int32(100); i < 164; i++ {
		if seen[i] != 1 {
			t.Fatalf("element %d count %d", i, seen[i])
		}
	}
}

func TestBagSplitHalf(t *testing.T) {
	for _, n := range []int32{0, 1, 2, 3, 7, 8, 100, 1023, 1024} {
		b := New()
		for i := int32(0); i < n; i++ {
			b.Insert(i)
		}
		other := b.SplitHalf()
		if b.Size()+other.Size() != int64(n) {
			t.Fatalf("n=%d: sizes %d+%d != %d", n, b.Size(), other.Size(), n)
		}
		diff := b.Size() - other.Size()
		if diff < 0 {
			diff = -diff
		}
		if diff > 1 {
			t.Fatalf("n=%d: unbalanced split %d/%d", n, b.Size(), other.Size())
		}
		// Element conservation.
		seen := map[int32]int{}
		b.Walk(func(v int32) { seen[v]++ })
		other.Walk(func(v int32) { seen[v]++ })
		for i := int32(0); i < n; i++ {
			if seen[i] != 1 {
				t.Fatalf("n=%d: element %d count %d", n, i, seen[i])
			}
		}
	}
}

func TestBagPennantsOrdering(t *testing.T) {
	b := New()
	for i := int32(0); i < 21; i++ { // 0b10101: slots 0,2,4
		b.Insert(i)
	}
	ps := b.Pennants()
	if len(ps) != 3 {
		t.Fatalf("pennant count %d", len(ps))
	}
	sizes := []int{ps[0].Count(), ps[1].Count(), ps[2].Count()}
	if sizes[0] != 16 || sizes[1] != 4 || sizes[2] != 1 {
		t.Fatalf("pennant sizes %v, want [16 4 1]", sizes)
	}
}

func TestBagDuplicateValuesAllowed(t *testing.T) {
	b := New()
	for i := 0; i < 5; i++ {
		b.Insert(7)
	}
	if b.Size() != 5 {
		t.Fatalf("multiset size %d", b.Size())
	}
	count := 0
	b.Walk(func(v int32) {
		if v == 7 {
			count++
		}
	})
	if count != 5 {
		t.Fatalf("multiset count %d", count)
	}
}

// Property: union conserves multiset contents for arbitrary sizes.
func TestPropertyUnionConserves(t *testing.T) {
	f := func(na, nb uint16) bool {
		a, b := New(), New()
		for i := int32(0); i < int32(na%500); i++ {
			a.Insert(i)
		}
		for i := int32(0); i < int32(nb%500); i++ {
			b.Insert(i + 1000)
		}
		total := a.Size() + b.Size()
		a.UnionWith(b)
		if a.Size() != total || !b.IsEmpty() {
			return false
		}
		n := 0
		a.Walk(func(int32) { n++ })
		return int64(n) == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated SplitHalf always conserves elements and reaches
// single-element bags (termination of PBFS's divide phase).
func TestPropertySplitTerminates(t *testing.T) {
	f := func(n uint16) bool {
		b := New()
		size := int64(n % 2000)
		for i := int64(0); i < size; i++ {
			b.Insert(int32(i))
		}
		work := []*Bag{b}
		var leaves int64
		for len(work) > 0 {
			cur := work[len(work)-1]
			work = work[:len(work)-1]
			if cur.Size() <= 4 {
				leaves += cur.Size()
				continue
			}
			half := cur.SplitHalf()
			work = append(work, cur, half)
		}
		return leaves == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
