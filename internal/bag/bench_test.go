package bag

import "testing"

// Bag operation costs: the reproduced paper argues its flat array
// queues beat this structure exactly because of these per-op numbers.

func BenchmarkInsert(b *testing.B) {
	b.ReportAllocs()
	bag := New()
	for i := 0; i < b.N; i++ {
		bag.Insert(int32(i))
	}
}

func BenchmarkUnion(b *testing.B) {
	b.ReportAllocs()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		x, y := New(), New()
		for j := int32(0); j < 1024; j++ {
			x.Insert(j)
			y.Insert(j + 2000)
		}
		b.StartTimer()
		x.UnionWith(y)
		b.StopTimer()
	}
}

func BenchmarkSplitHalf(b *testing.B) {
	b.ReportAllocs()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		x := New()
		for j := int32(0); j < 4096; j++ {
			x.Insert(j)
		}
		b.StartTimer()
		x.SplitHalf()
		b.StopTimer()
	}
}

func BenchmarkWalk(b *testing.B) {
	bag := New()
	for j := int32(0); j < 1<<14; j++ {
		bag.Insert(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		bag.Walk(func(v int32) { sink += int64(v) })
	}
	_ = sink
}
