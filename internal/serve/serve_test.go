package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/obs"
)

// hookFunc adapts a function to core.ChaosHook.
type hookFunc func(point core.ChaosPoint, worker int, value int64)

func (f hookFunc) At(point core.ChaosPoint, worker int, value int64) { f(point, worker, value) }

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := gen.ErdosRenyi(2000, 12000, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkAnswer(t *testing.T, g *graph.CSR, ans *Answer) {
	t.Helper()
	want := graph.ReferenceBFS(g, 0)
	if err := graph.EqualDistances(ans.Dist, want); err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateParents(g, 0, ans.Dist, ans.Parent); err != nil {
		t.Fatal(err)
	}
}

func TestQueryOK(t *testing.T) {
	g := testGraph(t)
	gd, err := New(g, Config{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	ans, err := gd.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Outcome != "ok" {
		t.Fatalf("outcome = %q, want ok", ans.Outcome)
	}
	checkAnswer(t, g, ans)
}

func TestQueryBadSourceAndClosed(t *testing.T) {
	g := testGraph(t)
	gd, err := New(g, Config{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gd.Query(context.Background(), -1); !errors.Is(err, ErrBadSource) {
		t.Fatalf("src -1: got %v", err)
	}
	if _, err := gd.Query(context.Background(), g.NumVertices()); !errors.Is(err, ErrBadSource) {
		t.Fatalf("src N: got %v", err)
	}
	gd.Close()
	if _, err := gd.Query(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed guard: got %v", err)
	}
}

// TestRecoveredAfterOnePanic: the first run panics, the ladder
// rebuilds the poisoned engine and the retry succeeds on the same
// parallel algorithm.
func TestRecoveredAfterOnePanic(t *testing.T) {
	g := testGraph(t)
	var fired int32
	reg := obs.New()
	cfg := Config{
		Concurrency: 1,
		Registry:    reg,
		Options: core.Options{Workers: 4, Chaos: hookFunc(func(p core.ChaosPoint, _ int, _ int64) {
			if p == core.ChaosStall && atomic.CompareAndSwapInt32(&fired, 0, 1) {
				panic("serve test: one-shot injected panic")
			}
		})},
	}
	gd, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	ans, err := gd.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Outcome != "recovered" {
		t.Fatalf("outcome = %q, want recovered", ans.Outcome)
	}
	checkAnswer(t, g, ans)
	if n := reg.Counter("optibfs_serve_failures_total", obs.L("kind", "panic")).Value(); n != 1 {
		t.Fatalf("panic failures counted = %d, want 1", n)
	}
	if n := reg.Counter("optibfs_serve_engine_rebuilds_total").Value(); n != 1 {
		t.Fatalf("rebuilds counted = %d, want 1", n)
	}
}

// TestDegradedToSerial: every parallel run panics, so after the
// retry the Guard must degrade to the serial oracle and still answer
// correctly. Looped over every lockfree family under persistent
// workers — this is the process-survival contract: injected panics in
// worker goroutines never crash the test binary, poisoned engines are
// discarded, and the fallback answer is exact.
func TestDegradedToSerial(t *testing.T) {
	g := testGraph(t)
	algos := []core.Algorithm{core.BFSCL, core.BFSDL, core.BFSWL, core.BFSWSL}
	for _, algo := range algos {
		t.Run(string(algo), func(t *testing.T) {
			reg := obs.New()
			cfg := Config{
				Algo:        algo,
				Concurrency: 1,
				Registry:    reg,
				Options: core.Options{
					Workers:           4,
					PersistentWorkers: true,
					Chaos: hookFunc(func(p core.ChaosPoint, _ int, _ int64) {
						if p == core.ChaosStall {
							panic("serve test: persistent injected panic")
						}
					}),
				},
			}
			gd, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer gd.Close()
			ans, err := gd.Query(context.Background(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if ans.Outcome != "degraded" {
				t.Fatalf("outcome = %q, want degraded", ans.Outcome)
			}
			if ans.Algorithm != core.Serial {
				t.Fatalf("algorithm = %q, want serial oracle", ans.Algorithm)
			}
			checkAnswer(t, g, ans)
			if n := reg.Counter("optibfs_serve_failures_total", obs.L("kind", "panic")).Value(); n != 2 {
				t.Fatalf("panic failures counted = %d, want 2 (primary + retry)", n)
			}
			if n := reg.Counter("optibfs_serve_requests_total", obs.L("outcome", "degraded")).Value(); n != 1 {
				t.Fatalf("degraded requests counted = %d, want 1", n)
			}
		})
	}
}

// TestStallDegrades: a forced stall (worker sleeping far past
// StallTimeout at every level) is detected by the watchdog and walks
// the same ladder.
func TestStallDegrades(t *testing.T) {
	g := testGraph(t)
	reg := obs.New()
	cfg := Config{
		Concurrency: 1,
		Registry:    reg,
		Deadline:    30 * time.Second,
		Options: core.Options{
			Workers:      4,
			StallTimeout: 50 * time.Millisecond,
			Chaos: hookFunc(func(p core.ChaosPoint, w int, _ int64) {
				if p == core.ChaosStall && w == 0 {
					time.Sleep(400 * time.Millisecond)
				}
			}),
		},
	}
	gd, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	ans, err := gd.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Outcome != "degraded" && ans.Outcome != "recovered" {
		t.Fatalf("outcome = %q, want degraded or recovered", ans.Outcome)
	}
	checkAnswer(t, g, ans)
	if n := reg.Counter("optibfs_serve_failures_total", obs.L("kind", "stall")).Value(); n < 1 {
		t.Fatalf("stall failures counted = %d, want >= 1", n)
	}
}

// TestShedWhenBusy: with one engine held busy and no queue wait, a
// second query is shed with ErrOverloaded instead of blocking.
func TestShedWhenBusy(t *testing.T) {
	g := testGraph(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once int32
	reg := obs.New()
	cfg := Config{
		Concurrency: 1,
		Registry:    reg,
		Options: core.Options{
			Workers: 2,
			// Long watchdog window so the deliberate block below is
			// not mistaken for a stall.
			StallTimeout: time.Minute,
			Chaos: hookFunc(func(p core.ChaosPoint, _ int, _ int64) {
				if p == core.ChaosStall && atomic.CompareAndSwapInt32(&once, 0, 1) {
					close(entered)
					<-release
				}
			}),
		},
	}
	gd, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	done := make(chan error, 1)
	go func() {
		_, qerr := gd.Query(context.Background(), 0)
		done <- qerr
	}()
	<-entered
	if _, err := gd.Query(context.Background(), 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("busy guard: got %v, want ErrOverloaded", err)
	}
	close(release)
	if qerr := <-done; qerr != nil {
		t.Fatal(qerr)
	}
	if n := reg.Counter("optibfs_serve_requests_total", obs.L("outcome", "shed")).Value(); n != 1 {
		t.Fatalf("shed requests counted = %d, want 1", n)
	}
}

// TestDeadlineExceeded: a query whose budget expires mid-run returns
// context.DeadlineExceeded (the watchdog converts the expiry into a
// cooperative abort well inside the grace window).
func TestDeadlineExceeded(t *testing.T) {
	g := testGraph(t)
	reg := obs.New()
	cfg := Config{
		Concurrency: 1,
		Registry:    reg,
		Deadline:    50 * time.Millisecond,
		Grace:       5 * time.Second,
		Options: core.Options{
			Workers: 2,
			// Progressing slowly is not stalling: the watchdog window
			// is huge, so only its context-assist path may abort.
			StallTimeout: time.Minute,
			Chaos: hookFunc(func(p core.ChaosPoint, _ int, _ int64) {
				if p == core.ChaosStall {
					time.Sleep(30 * time.Millisecond)
				}
			}),
		},
	}
	gd, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	_, err = gd.Query(context.Background(), 0)
	if err == nil {
		t.Fatal("slow run beat a 50ms deadline (expected expiry)")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if n := reg.Counter("optibfs_serve_requests_total", obs.L("outcome", "deadline")).Value(); n != 1 {
		t.Fatalf("deadline requests counted = %d, want 1", n)
	}
}
