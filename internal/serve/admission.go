// Admission control for the multi-graph Registry: one global
// concurrency gate layered over the per-Guard slot fleets. The Guard's
// own QueueWait shedding protects a single engine fleet; the admission
// controller protects the whole process when many named graphs share
// it, and it is where overload policy lives:
//
//   - Global concurrency: at most MaxInFlight queries run across all
//     graphs; excess arrivals queue (bounded) or shed.
//   - Deadline-aware shedding: the controller keeps an EWMA of recent
//     service times and derives an estimated wait for a new arrival;
//     a query whose remaining context budget cannot cover that
//     estimate is shed immediately — it would only burn a queue slot
//     and time out anyway. The estimate rides on the ShedError so
//     HTTP layers can surface it as Retry-After.
//   - Per-graph fair share: slots are work-conserving (a free slot
//     admits anyone), but once every slot is busy, a graph already
//     holding at least MaxInFlight/graphs slots is shed rather than
//     queued, so one hot graph cannot starve the rest of the registry.
//   - Monotone decisions: admit/shed is a pure threshold on the
//     recorded state (remaining budget vs estimate, occupancy vs
//     caps), so under rising load sheds only become more likely —
//     the property the chaos auditor checks via DecisionHook.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"optibfs/internal/obs"
)

// Shed reasons, as recorded in decisions, metrics, and ShedError.
const (
	// ShedDeadlineBudget: the caller's remaining deadline could not
	// cover the estimated queue wait.
	ShedDeadlineBudget = "deadline_budget"
	// ShedFairShare: every slot is busy and this graph already holds
	// its fair share of them.
	ShedFairShare = "fair_share"
	// ShedQueueFull: the admission queue is at capacity (or queueing
	// is disabled).
	ShedQueueFull = "queue_full"
	// ShedQueueTimeout: the query waited its full queue budget and no
	// slot freed.
	ShedQueueTimeout = "queue_timeout"
)

// ShedError reports a query the admission controller refused to run.
// errors.Is(err, ErrOverloaded) is true for every ShedError, so code
// that handles Guard-level overload handles admission sheds too;
// errors.As recovers the reason and the estimated wait (the value an
// HTTP layer should round up into Retry-After).
type ShedError struct {
	Reason        string
	EstimatedWait time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: admission shed (%s, estimated wait %s)", e.Reason, e.EstimatedWait)
}

// Is reports ShedError as a kind of ErrOverloaded.
func (e *ShedError) Is(target error) bool { return target == ErrOverloaded }

// AdmissionDecision is one admit/shed verdict with the state it was
// taken under, exposed through AdmissionConfig.DecisionHook so the
// chaos auditor can check every decision against the policy (and the
// monotone-under-load property) after the fact.
type AdmissionDecision struct {
	Graph    string
	Admitted bool
	// Reason is "" for an immediate admit, "queued" for an admit after
	// waiting, or one of the Shed* constants.
	Reason string
	// Remaining is the caller's remaining deadline budget at decision
	// time (NoDeadline when the context carried none).
	Remaining time.Duration
	// Estimate is the controller's estimated wait at decision time
	// (for "queued" grants: at enqueue time).
	Estimate    time.Duration
	InFlight    int
	Queued      int
	PerGraph    int
	Share       int
	MaxInFlight int
	MaxQueue    int
}

// NoDeadline is the Remaining value recorded for callers without a
// context deadline (effectively infinite budget).
const NoDeadline = time.Duration(1<<63 - 1)

// AdmissionConfig tunes the registry's admission controller. The zero
// value selects the documented defaults.
type AdmissionConfig struct {
	// MaxInFlight is the global concurrent-query cap across all graphs.
	// Default max(8, 2×GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds how many queries may wait for a slot. 0 selects
	// the default 256; negative disables queueing entirely (every
	// arrival past MaxInFlight sheds immediately).
	MaxQueue int
	// QueueWait caps how long a queued query waits for a slot before
	// shedding (the caller's remaining deadline budget can shorten it
	// further). Default 1s.
	QueueWait time.Duration
	// EWMAAlpha is the service-time EWMA smoothing factor in (0,1].
	// Default 0.2.
	EWMAAlpha float64
	// InitialEstimate seeds the EWMA before any query completes.
	// Default 5ms.
	InitialEstimate time.Duration
	// DecisionHook, when non-nil, receives every admission decision
	// (called outside the controller's lock). Test/audit seam.
	DecisionHook func(AdmissionDecision)
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
		if c.MaxInFlight < 8 {
			c.MaxInFlight = 8
		}
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.2
	}
	if c.InitialEstimate <= 0 {
		c.InitialEstimate = 5 * time.Millisecond
	}
	return c
}

// CheckDecision audits one admission decision against the policy: every
// verdict must be the threshold rule applied to the state recorded in
// the decision itself. This is what makes shedding monotone under
// rising load — the thresholds only tighten as occupancy and queue
// depth grow — and it is the property the chaos auditor replays over
// every decision a soak produced.
func CheckDecision(d AdmissionDecision) error {
	if d.Admitted {
		switch d.Reason {
		case "":
			// Immediate admits snapshot state before taking the slot:
			// one must have been free.
			if d.InFlight >= d.MaxInFlight {
				return fmt.Errorf("immediate admit with no free slot (%d/%d)", d.InFlight, d.MaxInFlight)
			}
		case "queued":
			// A queued grant implies queueing was enabled and the
			// deadline budget covered the estimate at enqueue time.
			if d.MaxQueue < 0 {
				return fmt.Errorf("queued grant with queueing disabled")
			}
			if d.Remaining < d.Estimate {
				return fmt.Errorf("queued a query whose budget %v was under the estimate %v", d.Remaining, d.Estimate)
			}
		default:
			return fmt.Errorf("admit with unknown reason %q", d.Reason)
		}
		return nil
	}
	switch d.Reason {
	case ShedDeadlineBudget:
		if d.InFlight < d.MaxInFlight {
			return fmt.Errorf("deadline_budget shed with a free slot (%d/%d)", d.InFlight, d.MaxInFlight)
		}
		if d.Remaining >= d.Estimate {
			return fmt.Errorf("deadline_budget shed with budget %v covering estimate %v", d.Remaining, d.Estimate)
		}
	case ShedFairShare:
		if d.InFlight < d.MaxInFlight {
			return fmt.Errorf("fair_share shed with a free slot (%d/%d)", d.InFlight, d.MaxInFlight)
		}
		if d.PerGraph < d.Share {
			return fmt.Errorf("fair_share shed under share (%d < %d)", d.PerGraph, d.Share)
		}
	case ShedQueueFull:
		if d.InFlight < d.MaxInFlight {
			return fmt.Errorf("queue_full shed with a free slot (%d/%d)", d.InFlight, d.MaxInFlight)
		}
		if d.MaxQueue >= 0 && d.Queued < d.MaxQueue {
			return fmt.Errorf("queue_full shed with queue space (%d/%d)", d.Queued, d.MaxQueue)
		}
	case ShedQueueTimeout:
		// The elapsed wait is the evidence; occupancy may have changed
		// between the grant race and the shed snapshot.
	default:
		return fmt.Errorf("shed with unknown reason %q", d.Reason)
	}
	return nil
}

// admWaiter is one queued query. ready is closed exactly once, by the
// granter; a waiter that gives up (timeout, cancel) must first remove
// itself from the queue under the lock — if it is already gone, the
// grant won and the waiter owns an admitted slot it must hand back.
type admWaiter struct {
	graph string
	ready chan struct{}
}

// admission is the controller. All mutable state sits behind mu; the
// obs handles are resolved once at construction.
type admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	inflight int
	perGraph map[string]int
	graphs   int // active graph count (set by the registry)
	queue    []*admWaiter
	ewma     float64 // seconds per query

	sheds     func(reason string) *obs.Counter
	estWait   *obs.Gauge
	inflightG *obs.Gauge
	queuedG   *obs.Gauge
	queueHist *obs.Histogram
}

func newAdmission(cfg AdmissionConfig, reg *obs.Registry) *admission {
	cfg = cfg.withDefaults()
	a := &admission{
		cfg:      cfg,
		perGraph: map[string]int{},
		graphs:   1,
		ewma:     cfg.InitialEstimate.Seconds(),
	}
	a.sheds = func(reason string) *obs.Counter {
		return reg.Counter("optibfs_admission_sheds_total", obs.L("reason", reason))
	}
	a.estWait = reg.Gauge("optibfs_admission_estimated_wait_seconds")
	a.inflightG = reg.Gauge("optibfs_admission_inflight")
	a.queuedG = reg.Gauge("optibfs_admission_queued")
	a.queueHist = reg.Histogram("optibfs_admission_queue_wait_seconds",
		[]float64{0.0001, 0.001, 0.005, 0.025, 0.1, 0.5, 2})
	return a
}

// setGraphs tells the controller how many graphs are being served, so
// the fair share tracks registry inserts and evictions.
func (a *admission) setGraphs(n int) {
	if n < 1 {
		n = 1
	}
	a.mu.Lock()
	a.graphs = n
	a.mu.Unlock()
}

// shareLocked is the per-graph fair-share slot count.
func (a *admission) shareLocked() int {
	s := a.cfg.MaxInFlight / a.graphs
	if s < 1 {
		s = 1
	}
	return s
}

// estimateLocked approximates how long a new arrival would wait for a
// slot: zero while one is free; otherwise the queue-ahead depth (plus
// this arrival) times the EWMA service time, divided by the slot count
// (under steady load a slot frees roughly every ewma/MaxInFlight).
func (a *admission) estimateLocked() time.Duration {
	if a.inflight < a.cfg.MaxInFlight {
		return 0
	}
	perSlot := a.ewma / float64(a.cfg.MaxInFlight)
	return time.Duration(perSlot * float64(len(a.queue)+1) * float64(time.Second))
}

// EstimatedWait is the current wait estimate (what a query arriving
// now should expect before it runs). HTTP layers round it up into
// Retry-After.
func (a *admission) EstimatedWait() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.estimateLocked()
}

// remainingBudget reads the caller's deadline budget.
func remainingBudget(ctx context.Context) time.Duration {
	if dl, ok := ctx.Deadline(); ok {
		return time.Until(dl)
	}
	return NoDeadline
}

// emit delivers a decision to the hook, outside the lock.
func (a *admission) emit(d AdmissionDecision) {
	if a.cfg.DecisionHook != nil {
		a.cfg.DecisionHook(d)
	}
}

// decisionLocked snapshots the current state into a decision record.
func (a *admission) decisionLocked(graph string, admitted bool, reason string, remaining, est time.Duration) AdmissionDecision {
	return AdmissionDecision{
		Graph:       graph,
		Admitted:    admitted,
		Reason:      reason,
		Remaining:   remaining,
		Estimate:    est,
		InFlight:    a.inflight,
		Queued:      len(a.queue),
		PerGraph:    a.perGraph[graph],
		Share:       a.shareLocked(),
		MaxInFlight: a.cfg.MaxInFlight,
		MaxQueue:    a.cfg.MaxQueue,
	}
}

// shed records a shed decision and returns its typed error. Called
// with the lock held; unlocks.
func (a *admission) shed(graph, reason string, remaining, est time.Duration) error {
	d := a.decisionLocked(graph, false, reason, remaining, est)
	a.mu.Unlock()
	a.sheds(reason).Inc()
	a.emit(d)
	return &ShedError{Reason: reason, EstimatedWait: est}
}

// admit gates one query on graph `name`. On success it returns the
// release func the caller must invoke when the query finishes (it
// feeds the service-time EWMA and grants queued waiters). On failure
// the error is a *ShedError or the context's own error.
func (a *admission) admit(ctx context.Context, name string) (release func(), err error) {
	a.mu.Lock()
	est := a.estimateLocked()
	a.estWait.Set(est.Seconds())
	remaining := remainingBudget(ctx)
	if a.inflight < a.cfg.MaxInFlight {
		// Work-conserving: a free slot admits regardless of fair share.
		d := a.decisionLocked(name, true, "", remaining, est)
		a.inflight++
		a.perGraph[name]++
		a.inflightG.Set(float64(a.inflight))
		a.mu.Unlock()
		a.emit(d)
		return a.releaser(name, true), nil
	}
	// Every slot is busy. Shed checks are pure thresholds on the state
	// just read, so decisions stay monotone under rising load.
	if remaining < est {
		return nil, a.shed(name, ShedDeadlineBudget, remaining, est)
	}
	if a.graphs > 1 && a.perGraph[name] >= a.shareLocked() {
		// Fair share only bites when there is another tenant to
		// protect; a single graph may use the whole fleet.
		return nil, a.shed(name, ShedFairShare, remaining, est)
	}
	if a.cfg.MaxQueue < 0 || len(a.queue) >= a.cfg.MaxQueue {
		return nil, a.shed(name, ShedQueueFull, remaining, est)
	}
	w := &admWaiter{graph: name, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.queuedG.Set(float64(len(a.queue)))
	a.mu.Unlock()

	wait := a.cfg.QueueWait
	if remaining != NoDeadline && remaining-est < wait {
		wait = remaining - est
	}
	enq := time.Now()
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-w.ready:
		a.queueHist.Observe(time.Since(enq).Seconds())
		a.mu.Lock()
		d := a.decisionLocked(name, true, "queued", remaining, est)
		a.mu.Unlock()
		a.emit(d)
		return a.releaser(name, true), nil
	case <-ctx.Done():
		if a.abandon(w) {
			return nil, ctx.Err()
		}
		// The grant raced the cancellation: the slot is ours; hand it
		// back unused (no service-time sample).
		<-w.ready
		a.releaser(name, false)()
		return nil, ctx.Err()
	case <-t.C:
		if a.abandon(w) {
			a.mu.Lock()
			est = a.estimateLocked()
			return nil, a.shed(name, ShedQueueTimeout, remaining, est)
		}
		<-w.ready
		a.queueHist.Observe(time.Since(enq).Seconds())
		a.mu.Lock()
		d := a.decisionLocked(name, true, "queued", remaining, est)
		a.mu.Unlock()
		a.emit(d)
		return a.releaser(name, true), nil
	}
}

// abandon removes w from the queue if it is still waiting; false means
// a grant already claimed it (w.ready is, or is about to be, closed).
func (a *admission) abandon(w *admWaiter) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			a.queuedG.Set(float64(len(a.queue)))
			return true
		}
	}
	return false
}

// releaser builds the idempotent slot-release func for an admitted
// query. sample=false skips the EWMA update (for slots handed back
// unused after a grant/cancel race).
func (a *admission) releaser(name string, sample bool) func() {
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			el := time.Since(start).Seconds()
			a.mu.Lock()
			if sample {
				al := a.cfg.EWMAAlpha
				a.ewma = al*el + (1-al)*a.ewma
			}
			a.inflight--
			if a.perGraph[name]--; a.perGraph[name] <= 0 {
				delete(a.perGraph, name)
			}
			a.grantLocked()
			a.inflightG.Set(float64(a.inflight))
			a.queuedG.Set(float64(len(a.queue)))
			a.mu.Unlock()
		})
	}
}

// grantLocked hands freed slots to queued waiters: the first waiter
// whose graph is under its fair share wins; if every queued graph is
// at share, the head wins (work conserving — an idle slot is never
// held back).
func (a *admission) grantLocked() {
	for a.inflight < a.cfg.MaxInFlight && len(a.queue) > 0 {
		share := a.shareLocked()
		idx := 0
		for i, w := range a.queue {
			if a.perGraph[w.graph] < share {
				idx = i
				break
			}
		}
		w := a.queue[idx]
		a.queue = append(a.queue[:idx], a.queue[idx+1:]...)
		a.inflight++
		a.perGraph[w.graph]++
		close(w.ready)
	}
}
