package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/graph"
	"optibfs/internal/obs"
)

// checkGoalAnswer verifies a goal-directed Answer against the serial
// oracle's closed levels: exact distances up to Answer.Levels,
// Unreached beyond, and a truthful Truncated flag.
func checkGoalAnswer(t *testing.T, g *graph.CSR, src int32, goal core.Goal, ans *Answer) {
	t.Helper()
	want := graph.ReferenceBFS(g, src)
	ecc := graph.Eccentricity(want)
	wantLevels := ecc + 1
	wantTrunc := false
	if d := goal.MaxDepth; d > 0 && ecc >= d {
		wantLevels = d
		wantTrunc = true
	}
	if tv := goal.TargetVertex(); tv >= 0 {
		if dt := want[tv]; dt != graph.Unreached && dt < wantLevels {
			wantLevels = dt
			wantTrunc = true
		}
	}
	if ans.Levels != wantLevels || ans.Truncated != wantTrunc {
		t.Fatalf("goal %+v: Levels=%d Truncated=%v, want %d/%v",
			goal, ans.Levels, ans.Truncated, wantLevels, wantTrunc)
	}
	for v, d := range ans.Dist {
		if wd := want[v]; wd != graph.Unreached && wd <= wantLevels {
			if d != wd {
				t.Fatalf("goal %+v: dist[%d]=%d, oracle %d", goal, v, d, wd)
			}
		} else if d != graph.Unreached {
			t.Fatalf("goal %+v: dist[%d]=%d, want Unreached past level %d", goal, v, d, wantLevels)
		}
	}
}

// TestQueryGoal runs target, depth-bound, and combined goals through
// solo Guards — plain and sharded — and checks the truncated answers
// bit-for-bit against the oracle's closed levels.
func TestQueryGoal(t *testing.T) {
	g := testGraph(t)
	want := graph.ReferenceBFS(g, 0)
	ecc := graph.Eccentricity(want)
	var far int32 = -1
	for v := int32(0); v < g.NumVertices(); v++ {
		if want[v] == ecc {
			far = v
			break
		}
	}
	if far < 0 {
		t.Fatal("no vertex at eccentricity")
	}
	goals := []core.Goal{
		{},
		core.GoalTo(0),
		core.GoalTo(far),
		{MaxDepth: 1},
		{MaxDepth: ecc + 5},
		{Target: far + 1, MaxDepth: 1},
	}
	for _, shards := range []int{0, 2} {
		gd, err := New(g, Config{Concurrency: 1, Options: core.Options{Workers: 2, Shards: shards}})
		if err != nil {
			t.Fatal(err)
		}
		for _, goal := range goals {
			ans, err := gd.QueryGoal(context.Background(), 0, goal)
			if err != nil {
				gd.Close()
				t.Fatalf("shards=%d goal %+v: %v", shards, goal, err)
			}
			if ans.Outcome != "ok" {
				gd.Close()
				t.Fatalf("shards=%d goal %+v: outcome %q", shards, goal, ans.Outcome)
			}
			checkGoalAnswer(t, g, 0, goal, ans)
		}
		// The goal must not leak into the next unbounded query.
		ans, err := gd.Query(context.Background(), 0)
		if err != nil {
			gd.Close()
			t.Fatal(err)
		}
		if ans.Truncated {
			gd.Close()
			t.Fatal("unbounded query after goals marked truncated")
		}
		checkAnswer(t, g, ans)
		gd.Close()
	}
}

func TestQueryGoalValidation(t *testing.T) {
	g := testGraph(t)
	gd, err := New(g, Config{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	cases := []core.Goal{
		core.GoalTo(g.NumVertices()),
		{Target: -3},
		{MaxDepth: -1},
	}
	for _, goal := range cases {
		if _, err := gd.QueryGoal(context.Background(), 0, goal); !errors.Is(err, ErrBadGoal) {
			t.Fatalf("goal %+v: err = %v, want ErrBadGoal", goal, err)
		}
		if _, err := gd.QueryFusedGoal(context.Background(), 0, goal); !errors.Is(err, ErrBadGoal) {
			t.Fatalf("fused goal %+v: err = %v, want ErrBadGoal", goal, err)
		}
	}
}

// TestQueryGoalDegraded: after the parallel engine fails twice, the
// serial fallback must honor the same goal — a degraded s–t answer is
// still truncated and exact.
func TestQueryGoalDegraded(t *testing.T) {
	g := testGraph(t)
	reg := obs.New()
	gd, err := New(g, Config{
		Concurrency: 1,
		Registry:    reg,
		Options: core.Options{Workers: 2, Chaos: hookFunc(func(p core.ChaosPoint, _ int, _ int64) {
			if p == core.ChaosStall {
				panic("goal test: injected panic")
			}
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	goal := core.Goal{MaxDepth: 2}
	ans, err := gd.QueryGoal(context.Background(), 0, goal)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Outcome != "degraded" || ans.Algorithm != core.Serial {
		t.Fatalf("outcome %q algorithm %q, want degraded serial", ans.Outcome, ans.Algorithm)
	}
	checkGoalAnswer(t, g, 0, goal, ans)
}

// TestFusedSingleLaneSoloDispatch is the regression pin for the 1-lane
// fused-batch slowdown: a window that collects exactly one live lane
// must bypass the MS-BFS engine and run on the solo fleet.
func TestFusedSingleLaneSoloDispatch(t *testing.T) {
	g := testGraph(t)
	reg := obs.New()
	gd, err := New(g, Config{
		Concurrency: 1,
		Registry:    reg,
		Batch:       BatchConfig{Enabled: true, Window: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	ans, err := gd.QueryFused(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Fused {
		t.Fatal("singleton batch still ran through the fused engine")
	}
	if ans.Algorithm != gd.Algorithm() {
		t.Fatalf("algorithm %q, want solo %q", ans.Algorithm, gd.Algorithm())
	}
	if ans.Outcome != "ok" {
		t.Fatalf("outcome %q, want ok", ans.Outcome)
	}
	if ans.BatchLanes != 1 {
		t.Fatalf("BatchLanes = %d, want 1", ans.BatchLanes)
	}
	checkAnswer(t, g, ans)
	if n := reg.Counter("optibfs_serve_fused_solo_dispatch_total").Value(); n != 1 {
		t.Fatalf("solo dispatches = %d, want 1", n)
	}
	if n := reg.Counter("optibfs_serve_fused_batches_total").Value(); n != 1 {
		t.Fatalf("batches = %d, want 1 (singleton still counts as a batch)", n)
	}
	if n := reg.Counter("optibfs_serve_requests_total", obs.L("outcome", "ok")).Value(); n != 1 {
		t.Fatalf("ok requests = %d, want 1 (double count?)", n)
	}
}

// TestQueryFusedGoal: per-lane goals ride the fused batch; each lane
// demuxes its own exact truncated answer while unbounded lanes in the
// same batch still see the whole graph.
func TestQueryFusedGoal(t *testing.T) {
	g := testGraph(t)
	want := graph.ReferenceBFS(g, 0)
	var near int32 = -1
	for v := int32(0); v < g.NumVertices(); v++ {
		if want[v] == 1 {
			near = v
			break
		}
	}
	if near < 0 {
		t.Fatal("no depth-1 vertex")
	}
	gd, err := New(g, Config{
		Concurrency: 1,
		Batch:       BatchConfig{Enabled: true, Window: 200 * time.Millisecond, MaxLanes: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()

	goals := []core.Goal{{}, core.GoalTo(near), {MaxDepth: 2}}
	srcs := []int32{0, 0, 17}
	anss := make([]*Answer, len(goals))
	errs := make([]error, len(goals))
	var fusedLanes atomic.Int32
	var wg sync.WaitGroup
	for i := range goals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			anss[i], errs[i] = gd.QueryFusedGoal(context.Background(), srcs[i], goals[i])
		}(i)
	}
	wg.Wait()
	for i := range goals {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if anss[i].Fused {
			fusedLanes.Add(1)
		}
		checkGoalAnswer(t, g, srcs[i], goals[i], anss[i])
	}
	// All three seated in one window (MaxLanes 3 forces dispatch when
	// full); a partial window would still be correct but wouldn't
	// exercise mixed-goal demux, so require at least two fused lanes.
	if fusedLanes.Load() < 2 {
		t.Fatalf("only %d fused lanes; batch did not form", fusedLanes.Load())
	}
}
