// Package serve hardens the BFS engines for long-running request
// serving. A Guard wraps a small fleet of core.Backend instances —
// plain engines, or sharded engines when Options.Shards asks for them —
// with the failure-containment policy a daemon needs and batch tools
// don't:
//
//   - Deadline budgets: every query runs under a context deadline
//     (the caller's, or Config.Deadline when the caller set none), so
//     no request can hold an engine forever.
//   - Bounded concurrency with load shedding: at most Concurrency
//     queries run at once; when every engine is busy past QueueWait
//     the query is shed with ErrOverloaded instead of queuing without
//     bound.
//   - Escalation ladder: a query whose run dies of an engine failure —
//     a recovered worker panic, a watchdog-detected stall, a poisoned
//     engine, or a wedge past its grace window — discards the engine,
//     rebuilds a fresh one, and retries once on the same algorithm;
//     if that also fails it degrades to the serial oracle, which has
//     no shared state to corrupt. Callers get a correct answer marked
//     degraded rather than an error, whenever the deadline allows.
//   - Observability: every outcome (ok, recovered, degraded, shed,
//     deadline, canceled, error) and every engine failure kind is
//     counted in an obs.Registry, with an in-flight gauge and a
//     latency histogram.
//
// The one failure the ladder never retries is a wedged engine that
// outlives its grace window: its goroutines may still be running, so
// the Guard abandons (leaks) it rather than joining its barrier
// protocol, and a background goroutine closes it if the run ever
// returns.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/graph"
	"optibfs/internal/obs"
)

// ErrOverloaded reports that every engine slot stayed busy for the
// full queue-wait window; the query was shed without running. Callers
// should retry later (HTTP servers map it to 503 + Retry-After).
var ErrOverloaded = errors.New("serve: overloaded, query shed")

// ErrClosed reports a query against a Guard that was already Closed.
var ErrClosed = errors.New("serve: guard closed")

// ErrBadSource reports a source vertex outside the graph.
var ErrBadSource = errors.New("serve: source vertex out of range")

// ErrBadGoal reports a goal whose target vertex is outside the graph or
// whose depth bound is negative.
var ErrBadGoal = errors.New("serve: invalid goal")

// errWedged marks an engine run that outlived both its context and the
// grace window — the engine cannot be trusted or joined, only replaced.
var errWedged = errors.New("serve: engine wedged past grace window")

// Config tunes a Guard. The zero value selects the documented
// defaults.
type Config struct {
	// Algo is the BFS variant the engines run. Default core.BFSWL.
	Algo core.Algorithm
	// Options configures the engines. TrackParents is forced on (the
	// serving API answers parent queries) and StallTimeout defaults to
	// one second so the watchdog converts wedged workers into typed
	// stalls the ladder can recover from. Options.Shards > 1 gives each
	// slot a sharded engine (core.NewBackend decides); the ladder,
	// wedge handling, and rebuilds are backend-agnostic.
	Options core.Options
	// Concurrency is the engine-fleet size: the maximum number of
	// queries in flight at once. Default 2.
	Concurrency int
	// Deadline bounds a query whose caller's context carries no
	// deadline of its own. Default 5s.
	Deadline time.Duration
	// Grace is how long after a query's context expires the Guard
	// waits for the engine to come back before declaring it wedged
	// and abandoning it. Default 1s.
	Grace time.Duration
	// QueueWait is how long a query may wait for a free engine slot
	// before being shed with ErrOverloaded. 0 sheds immediately when
	// every slot is busy.
	QueueWait time.Duration
	// Registry receives the serving metrics. Nil = a private registry
	// (metrics still work, just unexported).
	Registry *obs.Registry
	// Batch configures the micro-batching fused admission queue (see
	// BatchConfig). Disabled unless Batch.Enabled is set.
	Batch BatchConfig
}

func (c Config) withDefaults() Config {
	if c.Algo == "" {
		c.Algo = core.BFSWL
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.Deadline <= 0 {
		c.Deadline = 5 * time.Second
	}
	if c.Grace <= 0 {
		c.Grace = time.Second
	}
	if c.Options.StallTimeout <= 0 {
		c.Options.StallTimeout = time.Second
	}
	c.Options.TrackParents = true
	if c.Registry == nil {
		c.Registry = obs.New()
	}
	return c
}

// slot is one engine of the fleet. Slots circulate through the
// Guard's buffered channel; a query owns at most one at a time.
// eng is nil after a failed rebuild; the next owner retries the build.
type slot struct {
	eng core.Backend
}

// Answer is one query's result, deep-copied out of the engine's pooled
// arrays so it stays valid after the engine moves on to other queries.
type Answer struct {
	// Dist holds the BFS level per vertex (graph.Unreached if not
	// reachable).
	Dist []int32
	// Parent holds a BFS-tree parent per reached vertex.
	Parent []int32
	// Levels is the number of BFS levels explored.
	Levels int32
	// Reached is the number of vertices reached, including the source.
	Reached int64
	// EdgesTraversed is the TEPS numerator.
	EdgesTraversed int64
	// Outcome tells how the answer was produced: "ok" (first try),
	// "recovered" (retry after an engine failure), or "degraded"
	// (serial fallback).
	Outcome string
	// Algorithm is the variant that produced the answer (the serial
	// oracle when degraded).
	Algorithm core.Algorithm
	// Fused reports that the answer came out of a multi-source fused
	// run; BatchLanes is how many live lanes shared that run.
	Fused      bool
	BatchLanes int
	// Truncated reports that the run terminated at a goal (target
	// settled, or depth bound reached) rather than by frontier
	// exhaustion. Dist is exact for every closed level plus the settled
	// final frontier; deeper vertices read graph.Unreached.
	Truncated bool
}

// Guard is the hardened serving wrapper. Safe for concurrent use.
type Guard struct {
	g     *graph.CSR
	cfg   Config
	slots chan *slot

	requests func(outcome string) *obs.Counter
	failures func(kind string) *obs.Counter
	rebuilds *obs.Counter
	inflight *obs.Gauge
	latency  *obs.Histogram

	closed    chan struct{}
	closeOnce sync.Once
	abandoned atomic.Int64 // engines declared wedged and leaked

	batch *batcher // nil unless Config.Batch.Enabled

	// Test seams for the runGuarded wedge-race regression: ctxExpired
	// fires after the ctx.Done() arm is taken and before the grace
	// wait; delivered fires after the run goroutine's delivery attempt.
	// Nil outside tests.
	testHookCtxExpired func()
	testHookDelivered  func()
}

// New builds a Guard with Concurrency warm engines over g.
func New(g *graph.CSR, cfg Config) (*Guard, error) {
	cfg = cfg.withDefaults()
	gd := &Guard{
		g:      g,
		cfg:    cfg,
		slots:  make(chan *slot, cfg.Concurrency),
		closed: make(chan struct{}),
	}
	reg := cfg.Registry
	gd.requests = func(outcome string) *obs.Counter {
		return reg.Counter("optibfs_serve_requests_total", obs.L("outcome", outcome))
	}
	gd.failures = func(kind string) *obs.Counter {
		return reg.Counter("optibfs_serve_failures_total", obs.L("kind", kind))
	}
	gd.rebuilds = reg.Counter("optibfs_serve_engine_rebuilds_total")
	gd.inflight = reg.Gauge("optibfs_serve_inflight")
	gd.latency = reg.Histogram("optibfs_serve_latency_seconds",
		[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10})
	for i := 0; i < cfg.Concurrency; i++ {
		eng, err := core.NewBackend(g, cfg.Algo, cfg.Options)
		if err != nil {
			gd.drainAndClose(i)
			return nil, fmt.Errorf("serve: building engine %d: %w", i, err)
		}
		gd.slots <- &slot{eng: eng}
	}
	if cfg.Batch.Enabled {
		b, err := newBatcher(gd)
		if err != nil {
			gd.drainAndClose(cfg.Concurrency)
			return nil, fmt.Errorf("serve: building fused engine: %w", err)
		}
		gd.batch = b
	}
	return gd, nil
}

// Graph returns the graph the Guard serves.
func (gd *Guard) Graph() *graph.CSR { return gd.g }

// Algorithm returns the configured primary BFS variant.
func (gd *Guard) Algorithm() core.Algorithm { return gd.cfg.Algo }

// Query answers one BFS query from src under the full hardening
// policy. On success the Answer's Outcome records whether recovery or
// degradation was involved. The error is ErrOverloaded, ErrClosed,
// ErrBadSource, a context error, or — only if even the serial
// fallback failed — the underlying failure.
func (gd *Guard) Query(ctx context.Context, src int32) (*Answer, error) {
	return gd.QueryGoal(ctx, src, core.Goal{})
}

// QueryGoal is Query with a per-run goal: a target vertex whose settled
// distance terminates the run at the next level barrier, a depth bound,
// or both (whichever fires first wins). The zero Goal is exactly Query.
// A truncated Answer is exact for every closed level (Answer.Truncated
// documents the contract); the escalation ladder and the degraded
// serial fallback honor the same goal.
func (gd *Guard) QueryGoal(ctx context.Context, src int32, goal core.Goal) (*Answer, error) {
	select {
	case <-gd.closed:
		return nil, ErrClosed
	default:
	}
	if src < 0 || src >= gd.g.NumVertices() {
		return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrBadSource, src, gd.g.NumVertices())
	}
	if err := gd.checkGoal(goal); err != nil {
		return nil, err
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, gd.cfg.Deadline)
		defer cancel()
	}

	s, err := gd.acquire(ctx)
	if err != nil {
		return nil, err
	}
	gd.inflight.Add(1)
	start := time.Now()
	defer func() {
		gd.inflight.Add(-1)
		gd.latency.Observe(time.Since(start).Seconds())
		gd.slots <- s
	}()
	return gd.ladder(ctx, s, src, goal)
}

// checkGoal validates a goal against the graph before any slot is
// spent on it, mapping violations to ErrBadGoal.
func (gd *Guard) checkGoal(goal core.Goal) error {
	if tv := goal.TargetVertex(); goal.Target != 0 && (tv < 0 || tv >= gd.g.NumVertices()) {
		return fmt.Errorf("%w: target %d not in [0,%d)", ErrBadGoal, tv, gd.g.NumVertices())
	}
	if goal.MaxDepth < 0 {
		return fmt.Errorf("%w: negative depth bound %d", ErrBadGoal, goal.MaxDepth)
	}
	return nil
}

// ladder runs the escalation policy on an already-acquired slot:
// primary, rebuild + retry once, then the serial oracle. Shared by
// Query and the batcher's solo re-runs; counts request outcomes.
func (gd *Guard) ladder(ctx context.Context, s *slot, src int32, goal core.Goal) (*Answer, error) {
	for attempt := 0; attempt < 2; attempt++ {
		if s.eng == nil {
			// A previous owner's rebuild failed; retry it now.
			if rerr := gd.rebuild(s); rerr != nil {
				break
			}
		}
		ans, rerr := gd.runGuarded(ctx, s, src, goal)
		if rerr == nil {
			if attempt == 0 {
				ans.Outcome = "ok"
			} else {
				ans.Outcome = "recovered"
			}
			ans.Algorithm = gd.cfg.Algo
			gd.requests(ans.Outcome).Inc()
			return ans, nil
		}
		if !isEngineFailure(rerr) {
			// Context expiry or cancellation: not the engine's fault.
			// Surface the partial answer alongside the error.
			if ans != nil {
				ans.Outcome = outcomeForCtx(rerr)
				ans.Algorithm = gd.cfg.Algo
			}
			gd.requests(outcomeForCtx(rerr)).Inc()
			return ans, rerr
		}
		gd.failures(failureKind(rerr)).Inc()
		gd.rebuild(s)
		if ctx.Err() != nil {
			gd.requests(outcomeForCtx(ctx.Err())).Inc()
			return nil, ctx.Err()
		}
	}

	// Degraded mode: the serial oracle shares no state with the
	// parallel engines and cannot race, panic, or stall on them. The
	// goal rides along so a degraded s–t query still terminates early.
	sopt := core.Options{Workers: 1, TrackParents: true,
		Target: goal.Target, MaxDepth: goal.MaxDepth}
	res, serr := core.RunContext(ctx, gd.g, src, core.Serial, sopt)
	if serr != nil {
		gd.requests(outcomeForCtx(serr)).Inc()
		return copyAnswer(res), serr
	}
	ans := copyAnswer(res)
	ans.Outcome = "degraded"
	ans.Algorithm = core.Serial
	gd.requests("degraded").Inc()
	return ans, nil
}

// acquire obtains an engine slot, shedding with ErrOverloaded once
// QueueWait expires (immediately when QueueWait is 0).
func (gd *Guard) acquire(ctx context.Context) (*slot, error) {
	select {
	case s := <-gd.slots:
		return s, nil
	default:
	}
	if gd.cfg.QueueWait <= 0 {
		gd.requests("shed").Inc()
		return nil, ErrOverloaded
	}
	t := time.NewTimer(gd.cfg.QueueWait)
	defer t.Stop()
	select {
	case s := <-gd.slots:
		return s, nil
	case <-ctx.Done():
		gd.requests(outcomeForCtx(ctx.Err())).Inc()
		return nil, ctx.Err()
	case <-t.C:
		gd.requests("shed").Inc()
		return nil, ErrOverloaded
	}
}

// runGuarded executes one engine run on its own goroutine so the Guard
// can abandon it if it wedges. The result channel is buffered (cap 1)
// so the run goroutine's send always lands, and an atomic handoff word
// decides who owns the engine's fate: the goroutine commits "delivered"
// after its send, the parent commits "abandoned" when the grace window
// expires. Exactly one CAS wins. A run that completes in the window
// between the parent's ctx.Done() arm and its grace wait — the old
// unbuffered-send-with-default race — now parks its answer in the
// buffer and the parent's grace select receives it immediately, instead
// of the answer being lost, the healthy engine torn down, and the full
// Grace window burned into a spurious errWedged.
func (gd *Guard) runGuarded(ctx context.Context, s *slot, src int32, goal core.Goal) (*Answer, error) {
	type outcome struct {
		ans *Answer
		err error
	}
	const (
		handPending int32 = iota
		handDelivered
		handAbandoned
	)
	eng := s.eng
	ch := make(chan outcome, 1)
	var hand atomic.Int32
	go func() {
		res, err := eng.RunGoal(ctx, src, goal)
		ch <- outcome{ans: copyAnswer(res), err: err} // cap 1: never blocks
		if !hand.CompareAndSwap(handPending, handDelivered) {
			// The parent already abandoned the run: it will never read
			// the buffered outcome, and this goroutine owns the corpse.
			// Closing here is safe — the run has returned.
			eng.Close()
		}
		if gd.testHookDelivered != nil {
			gd.testHookDelivered()
		}
	}()
	select {
	case out := <-ch:
		return out.ans, out.err
	case <-ctx.Done():
	}
	if gd.testHookCtxExpired != nil {
		gd.testHookCtxExpired()
	}
	// The context expired mid-run. The watchdog (StallTimeout) aborts
	// the run cooperatively; give it Grace to come back.
	t := time.NewTimer(gd.cfg.Grace)
	defer t.Stop()
	select {
	case out := <-ch:
		return out.ans, out.err
	case <-t.C:
	}
	if !hand.CompareAndSwap(handPending, handAbandoned) {
		// The run finished just as the grace timer fired: the outcome
		// is already in the buffer (the send happens-before the losing
		// CAS observed here). Take it — the answer is real and the
		// engine is healthy.
		out := <-ch
		return out.ans, out.err
	}
	// Wedged: abandon the engine. It is NOT closed here — its
	// goroutines may be live inside the barrier protocol — the run
	// goroutine above closes it if the run ever returns.
	gd.abandoned.Add(1)
	s.eng = nil
	return nil, errWedged
}

// Abandoned reports how many engines this Guard has declared wedged
// and leaked over its lifetime. A wedged engine's goroutines may still
// be reading the graph after Close returns, so an owner that backs the
// graph with externally managed storage (an mmap, say) must not
// reclaim that storage while this is nonzero.
func (gd *Guard) Abandoned() int64 { return gd.abandoned.Load() }

// rebuild replaces the slot's engine with a fresh one. The old engine
// is closed unless it was abandoned as wedged (s.eng == nil), in which
// case the zombie run goroutine owns closing it.
func (gd *Guard) rebuild(s *slot) error {
	if s.eng != nil {
		s.eng.Close()
		s.eng = nil
	}
	eng, err := core.NewBackend(gd.g, gd.cfg.Algo, gd.cfg.Options)
	if err != nil {
		return err
	}
	s.eng = eng
	gd.rebuilds.Inc()
	return nil
}

// Close shuts the Guard: new queries fail with ErrClosed, and Close
// blocks until every in-flight query returns its slot, then closes the
// engines. Idempotent: repeated and concurrent calls are safe; every
// caller returns only after the one real shutdown has completed.
func (gd *Guard) Close() {
	gd.closeOnce.Do(func() {
		close(gd.closed)
		if gd.batch != nil {
			gd.batch.close()
		}
		gd.drainAndClose(gd.cfg.Concurrency)
	})
}

// drainAndClose collects n circulating slots — blocking on slots held
// by in-flight queries until they are returned — and closes their
// engines. Close passes the full fleet size; New's construction-
// failure path passes however many engines it managed to build.
func (gd *Guard) drainAndClose(n int) {
	for i := 0; i < n; i++ {
		s := <-gd.slots
		if s.eng != nil {
			s.eng.Close()
		}
	}
}

// isEngineFailure reports whether err indicts the engine itself —
// the failures worth a rebuild-and-retry — rather than the caller's
// context.
func isEngineFailure(err error) bool {
	var wp *core.WorkerPanicError
	var se *core.StallError
	return errors.As(err, &wp) || errors.As(err, &se) ||
		errors.Is(err, core.ErrPoisoned) || errors.Is(err, errWedged)
}

// failureKind labels an engine failure for the failures_total metric.
func failureKind(err error) string {
	var wp *core.WorkerPanicError
	var se *core.StallError
	switch {
	case errors.As(err, &wp):
		return "panic"
	case errors.As(err, &se):
		return "stall"
	case errors.Is(err, core.ErrPoisoned):
		return "poisoned"
	case errors.Is(err, errWedged):
		return "wedged"
	}
	return "other"
}

// outcomeForCtx labels a context-induced failure for requests_total.
func outcomeForCtx(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	if errors.Is(err, context.Canceled) {
		return "canceled"
	}
	return "error"
}

// copyAnswer deep-copies a Result's query-relevant fields out of the
// engine's pooled arrays. Nil res (a run that aborted before settling
// anything) yields nil.
func copyAnswer(res *core.Result) *Answer {
	if res == nil {
		return nil
	}
	a := &Answer{
		Levels:         res.Levels,
		Reached:        res.Reached,
		EdgesTraversed: res.EdgesTraversed,
		Truncated:      res.Truncated,
	}
	a.Dist = append([]int32(nil), res.Dist...)
	if res.Parent != nil {
		a.Parent = append([]int32(nil), res.Parent...)
	}
	return a
}
