package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"optibfs/internal/obs"
)

func newTestAdmission(cfg AdmissionConfig) *admission {
	return newAdmission(cfg, obs.New())
}

func TestAdmitImmediate(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInFlight: 2})
	r1, err := a.admit(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.admit(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2()
	r2() // idempotent
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight != 0 || len(a.perGraph) != 0 {
		t.Fatalf("inflight=%d perGraph=%v after releases", a.inflight, a.perGraph)
	}
}

// TestShedQueueFull: with queueing disabled, arrivals past MaxInFlight
// shed immediately with a typed reason, and errors.Is(ErrOverloaded).
func TestShedQueueFull(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: -1})
	rel, err := a.admit(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	_, err = a.admit(context.Background(), "g")
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("got %v, want ShedError", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("ShedError should Is() ErrOverloaded")
	}
	if shed.Reason != ShedQueueFull {
		t.Fatalf("reason = %q, want %q", shed.Reason, ShedQueueFull)
	}
}

// TestShedDeadlineBudget: a caller whose remaining deadline cannot
// cover the estimated wait sheds immediately with deadline_budget.
func TestShedDeadlineBudget(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{
		MaxInFlight:     1,
		InitialEstimate: time.Second, // est = 1s × (queue+1) once saturated
	})
	rel, err := a.admit(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = a.admit(ctx, "g")
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("got %v, want ShedError", err)
	}
	if shed.Reason != ShedDeadlineBudget {
		t.Fatalf("reason = %q, want %q", shed.Reason, ShedDeadlineBudget)
	}
	if shed.EstimatedWait <= 0 {
		t.Fatalf("EstimatedWait = %v, want > 0", shed.EstimatedWait)
	}
}

// TestShedFairShare: once saturated, a graph at or above its fair
// share sheds with fair_share while an under-share graph may queue.
func TestShedFairShare(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInFlight: 2, QueueWait: 50 * time.Millisecond})
	a.setGraphs(2) // share = 1
	r1, err := a.admit(context.Background(), "hot")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.admit(context.Background(), "hot") // work-conserving: free slot
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.admit(context.Background(), "hot")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedFairShare {
		t.Fatalf("hot graph over share: got %v, want fair_share shed", err)
	}
	// The cold graph is under share: it queues and is granted when a
	// hot slot frees.
	done := make(chan error, 1)
	go func() {
		rel, err := a.admit(context.Background(), "cold")
		if err == nil {
			rel()
		}
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	r1()
	if err := <-done; err != nil {
		t.Fatalf("cold graph should be granted after a release: %v", err)
	}
	r2()
}

// TestQueueTimeout: a queued query that never gets a slot sheds with
// queue_timeout after QueueWait.
func TestQueueTimeout(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInFlight: 1, QueueWait: 20 * time.Millisecond})
	a.setGraphs(2) // share 1... but work conserving lets "g" hold the slot
	rel, err := a.admit(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	_, err = a.admit(context.Background(), "other")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedQueueTimeout {
		t.Fatalf("got %v, want queue_timeout shed", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("shed before the queue wait elapsed")
	}
}

// TestMonotoneSheds: decisions are threshold rules on recorded state —
// replaying every decision's own snapshot must reproduce its verdict,
// and under strictly rising queue depth the estimate is nondecreasing.
func TestMonotoneSheds(t *testing.T) {
	var mu sync.Mutex
	var decisions []AdmissionDecision
	a := newTestAdmission(AdmissionConfig{
		MaxInFlight: 1,
		MaxQueue:    -1,
		DecisionHook: func(d AdmissionDecision) {
			mu.Lock()
			decisions = append(decisions, d)
			mu.Unlock()
		},
	})
	rel, err := a.admit(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.admit(context.Background(), "g")
	}
	rel()
	mu.Lock()
	defer mu.Unlock()
	for i, d := range decisions {
		if err := CheckDecision(d); err != nil {
			t.Fatalf("decision %d inconsistent: %v (%+v)", i, err, d)
		}
	}
}

// TestCheckDecisionRejectsBad: the auditor actually fails on a
// fabricated inconsistent decision.
func TestCheckDecisionRejectsBad(t *testing.T) {
	bad := AdmissionDecision{
		Admitted: false, Reason: ShedDeadlineBudget,
		Remaining: time.Hour, Estimate: time.Millisecond,
		InFlight: 1, MaxInFlight: 1, MaxQueue: -1,
	}
	if err := CheckDecision(bad); err == nil {
		t.Fatal("CheckDecision accepted a deadline_budget shed with ample budget")
	}
	badAdmit := AdmissionDecision{
		Admitted: true, Reason: "",
		InFlight: 2, MaxInFlight: 1,
	}
	if err := CheckDecision(badAdmit); err == nil {
		t.Fatal("CheckDecision accepted an immediate admit with no free slot")
	}
}

// TestEstimatedWaitGrows: the wait estimate is 0 with free slots and
// grows with queue depth.
func TestEstimatedWaitGrows(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInFlight: 1, QueueWait: 200 * time.Millisecond, InitialEstimate: 50 * time.Millisecond})
	if est := a.EstimatedWait(); est != 0 {
		t.Fatalf("empty controller estimate = %v, want 0", est)
	}
	rel, err := a.admit(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	est1 := a.EstimatedWait()
	if est1 <= 0 {
		t.Fatalf("saturated estimate = %v, want > 0", est1)
	}
	var wg sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.admit(ctx, "other")
		}()
	}
	deadline := time.Now().Add(time.Second)
	for a.EstimatedWait() <= est1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if est2 := a.EstimatedWait(); est2 <= est1 {
		t.Fatalf("estimate did not grow with queue depth: %v -> %v", est1, est2)
	}
	cancel()
	wg.Wait()
	rel()
}

// TestGrantCancelRace: a waiter whose context cancels just as a grant
// lands must hand the slot back rather than leak it.
func TestGrantCancelRace(t *testing.T) {
	a := newTestAdmission(AdmissionConfig{MaxInFlight: 1, QueueWait: time.Second})
	for i := 0; i < 50; i++ {
		rel, err := a.admit(context.Background(), "g")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			r2, err := a.admit(ctx, "g")
			if err == nil {
				r2()
			}
		}()
		time.Sleep(time.Duration(i%3) * time.Millisecond / 2)
		// Release and cancel concurrently: the grant and the
		// cancellation race.
		go rel()
		cancel()
		<-done
		// Whatever won, the slot must be fully recovered.
		deadline := time.Now().Add(time.Second)
		for {
			a.mu.Lock()
			free := a.inflight == 0 && len(a.queue) == 0
			a.mu.Unlock()
			if free {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("slot leaked after grant/cancel race")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}
