package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/obs"
)

// TestWedgeRaceKeepsAnswer forces the exact window of the old
// runGuarded bug: the run completes after the parent has taken its
// ctx.Done() arm but before it is receiving on the grace select. With
// the unbuffered channel + send-with-default protocol the delivery hit
// default, the healthy engine was closed, and the parent burned the
// full Grace window into a spurious errWedged. The fixed protocol
// parks the outcome in the buffered channel, so the parent's grace
// select receives it immediately: no wedged failure is counted, no
// engine is rebuilt, and the guard answers the next query first-try.
//
// Determinism comes from two test seams: the chaos hook blocks every
// worker until the parent signals it has passed ctx.Done() (proceed),
// and the parent then blocks until the run goroutine's delivery
// attempt has fully landed (delivered).
func TestWedgeRaceKeepsAnswer(t *testing.T) {
	g := testGraph(t)
	proceed := make(chan struct{})
	delivered := make(chan struct{})
	var pOnce, dOnce sync.Once
	reg := obs.New()
	cfg := Config{
		Concurrency: 1,
		Registry:    reg,
		Deadline:    50 * time.Millisecond,
		Grace:       10 * time.Second, // must NOT be burned; guarded by elapsed check
		Options: core.Options{
			Workers: 2,
			// The run progresses only after `proceed`; that is not a
			// stall, so keep the watchdog out of the way.
			StallTimeout: time.Minute,
			Chaos: hookFunc(func(p core.ChaosPoint, _ int, _ int64) {
				if p == core.ChaosStall {
					select {
					case <-proceed:
					case <-time.After(5 * time.Second):
					}
				}
			}),
		},
	}
	gd, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	gd.testHookCtxExpired = func() {
		// The parent is now between its ctx.Done() arm and the grace
		// select. Release the run, then hold the parent here until the
		// run's delivery attempt has completed — the old code's lost
		// window, guaranteed hit.
		pOnce.Do(func() { close(proceed) })
		select {
		case <-delivered:
		case <-time.After(5 * time.Second):
			t.Error("run goroutine never delivered")
		}
	}
	gd.testHookDelivered = func() {
		dOnce.Do(func() { close(delivered) })
	}

	start := time.Now()
	ans, err := gd.Query(context.Background(), 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if ans == nil {
		t.Fatal("completed run's answer was lost (nil partial)")
	}
	if elapsed >= cfg.Grace {
		t.Fatalf("query took %v: the grace window was burned", elapsed)
	}
	if n := reg.Counter("optibfs_serve_failures_total", obs.L("kind", "wedged")).Value(); n != 0 {
		t.Fatalf("wedged failures = %d, want 0 (spurious wedge)", n)
	}
	if n := reg.Counter("optibfs_serve_engine_rebuilds_total").Value(); n != 0 {
		t.Fatalf("rebuilds = %d, want 0 (healthy engine was torn down)", n)
	}

	// The same engine must answer the next query first-try.
	ans, err = gd.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Outcome != "ok" {
		t.Fatalf("follow-up outcome = %q, want ok", ans.Outcome)
	}
	checkAnswer(t, g, ans)
}

// TestCloseIdempotent: double and concurrent Close must not panic or
// double-drain; queries after any Close fail with ErrClosed.
func TestCloseIdempotent(t *testing.T) {
	g := testGraph(t)
	gd, err := New(g, Config{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gd.Close()
		}()
	}
	wg.Wait()
	gd.Close() // and once more, sequentially
	if _, err := gd.Query(context.Background(), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: got %v, want ErrClosed", err)
	}
}
