package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/graph"
)

// A Guard over sharded backends must answer queries, recover from a
// worker panic via the ladder (rebuilding a sharded engine), and keep
// the fused batch path working alongside.
func TestGuardShardedBackend(t *testing.T) {
	g := testGraph(t)
	gd, err := New(g, Config{
		Concurrency: 2,
		Options:     core.Options{Workers: 4, Shards: 2, PersistentWorkers: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	for i := 0; i < 4; i++ {
		ans, err := gd.Query(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Outcome != "ok" {
			t.Fatalf("outcome = %q, want ok", ans.Outcome)
		}
		checkAnswer(t, g, ans)
	}
}

func TestGuardShardedRecoversFromPanic(t *testing.T) {
	g := testGraph(t)
	var fired int32
	hook := hookFunc(func(point core.ChaosPoint, worker int, value int64) {
		if point == core.ChaosStall && atomic.CompareAndSwapInt32(&fired, 0, 1) {
			panic("serve sharded test: injected panic")
		}
	})
	gd, err := New(g, Config{
		Concurrency: 1,
		Options:     core.Options{Workers: 4, Shards: 2, Chaos: hook},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	ans, err := gd.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Outcome != "recovered" {
		t.Fatalf("outcome = %q, want recovered", ans.Outcome)
	}
	checkAnswer(t, g, ans)
	// The rebuilt engine serves cleanly from here on.
	ans, err = gd.Query(context.Background(), 0)
	if err != nil || ans.Outcome != "ok" {
		t.Fatalf("post-recovery query: ans=%+v err=%v", ans, err)
	}
}

// Sharded batch mode: the solo slots run sharded engines while the
// fused admission queue still answers through the unsharded MS-BFS
// lane engine.
func TestGuardShardedWithBatch(t *testing.T) {
	g := testGraph(t)
	gd, err := New(g, Config{
		Concurrency: 1,
		Options:     core.Options{Workers: 2, Shards: 2},
		Batch:       BatchConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	ans, err := gd.Query(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 5)
	if err := graph.EqualDistances(ans.Dist, want); err != nil {
		t.Fatal(err)
	}
}

// A shard count the graph cannot support must surface at construction,
// not at query time.
func TestGuardShardedTinyGraphClamped(t *testing.T) {
	g, err := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gd, err := New(g, Config{
		Concurrency: 1,
		Options:     core.Options{Workers: 2, Shards: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	ans, err := gd.Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Dist[1] != 1 {
		t.Fatalf("dist[1] = %d, want 1", ans.Dist[1])
	}
	if errors.Is(err, ErrBadSource) {
		t.Fatal("unexpected bad-source error")
	}
}
