// Micro-batching fused admission: concurrent queries against the same
// graph are collected for a short window, packed into the lanes of one
// MS-BFS run, and demuxed back into per-caller Answers. One fused
// traversal over the shared edge set replaces up to 64 solo
// traversals, so aggregate throughput scales with occupancy even on a
// single core.
//
// Failure policy mirrors the solo ladder, lifted to batch granularity:
// a lane whose caller cancels before dispatch is masked out of the
// batch (the others still run); an engine failure — panic, poison,
// stall, wedge — fails the whole batch, the fused engine is rebuilt,
// and every still-live lane is re-run solo through the Guard's normal
// escalation ladder; a context expiry (batch deadline, or every caller
// gone) demuxes per-lane partial answers alongside the error.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/obs"
)

// BatchConfig tunes the fused admission queue.
type BatchConfig struct {
	// Enabled turns micro-batching on; Guard.QueryFused falls back to
	// solo Query when off.
	Enabled bool
	// Window is how long the dispatcher collects lanes after the first
	// request arrives before dispatching a partial batch. Default 1ms.
	Window time.Duration
	// MaxLanes caps the lanes per fused run. Default and ceiling
	// core.MaxLanes (64).
	MaxLanes int
	// Queue bounds the pending-request buffer; when it is full,
	// QueryFused degrades to solo dispatch instead of blocking.
	// Default 256.
	Queue int
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.Window <= 0 {
		c.Window = time.Millisecond
	}
	if c.MaxLanes <= 0 || c.MaxLanes > core.MaxLanes {
		c.MaxLanes = core.MaxLanes
	}
	if c.Queue <= 0 {
		c.Queue = 256
	}
	return c
}

// fusedResp is what a batched caller receives: the demuxed Answer (or
// a solo-ladder Answer after a batch failure), the error, and whether
// the responder already counted the request outcome (solo re-runs go
// through the ladder, which counts internally).
type fusedResp struct {
	ans     *Answer
	err     error
	counted bool
}

// fusedReq is one caller's seat in the admission queue. out is
// buffered (cap 1) so the dispatcher's response never blocks on a
// caller that gave up.
type fusedReq struct {
	ctx  context.Context
	src  int32
	goal core.Goal
	out  chan fusedResp
}

// batcher owns the fused engine and the single dispatcher goroutine.
// The engine is confined to the dispatcher; like the solo slots, a
// wedged fused run is abandoned (the zombie goroutine closes it) and
// the next batch gets a fresh engine.
type batcher struct {
	gd  *Guard
	cfg BatchConfig

	reqs   chan *fusedReq
	closed chan struct{}
	done   chan struct{}

	eng *core.MSEngine // dispatcher-confined; nil after wedge abandon

	occupancy    *obs.Histogram
	batches      *obs.Counter
	lanes        *obs.Counter
	seconds      *obs.Histogram
	soloRerun    *obs.Counter
	soloDispatch *obs.Counter
	ffailures    func(kind string) *obs.Counter

	scratch []*fusedReq
}

func newBatcher(gd *Guard) (*batcher, error) {
	cfg := gd.cfg.Batch.withDefaults()
	eng, err := core.NewMSEngine(gd.g, gd.cfg.Options)
	if err != nil {
		return nil, err
	}
	reg := gd.cfg.Registry
	b := &batcher{
		gd:     gd,
		cfg:    cfg,
		reqs:   make(chan *fusedReq, cfg.Queue),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
		eng:    eng,
		occupancy: reg.Histogram("optibfs_serve_batch_lanes",
			[]float64{1, 2, 4, 8, 16, 32, 48, 64}),
		batches: reg.Counter("optibfs_serve_fused_batches_total"),
		lanes:   reg.Counter("optibfs_serve_fused_lanes_total"),
		// sum/count of fused wall time: with the solo latency histogram
		// this yields the fused-vs-solo aggregate speedup.
		seconds: reg.Histogram("optibfs_serve_fused_batch_seconds",
			[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}),
		soloRerun: reg.Counter("optibfs_serve_fused_solo_reruns_total"),
		// A batch that collapsed to one live lane skips the fused engine
		// entirely: the lane-major MS-BFS layout costs ~13% over the solo
		// word-per-vertex kernels at occupancy 1, so a singleton window
		// dispatches through the Guard's solo fleet instead.
		soloDispatch: reg.Counter("optibfs_serve_fused_solo_dispatch_total"),
		ffailures: func(kind string) *obs.Counter {
			return reg.Counter("optibfs_serve_fused_failures_total", obs.L("kind", kind))
		},
		scratch: make([]*fusedReq, 0, cfg.MaxLanes),
	}
	go b.loop()
	return b, nil
}

// close stops the dispatcher and waits for it to finish any in-flight
// batch and drain queued requests with ErrClosed. Called exactly once,
// from Guard.Close's sync.Once.
func (b *batcher) close() {
	close(b.closed)
	<-b.done
	if b.eng != nil {
		b.eng.Close()
	}
}

// QueryFused answers one BFS query through the micro-batching
// admission queue: the call parks for up to BatchConfig.Window while
// other concurrent sources join, then shares one fused MS-BFS run.
// Semantics match Query — same outcomes, same errors, same partial-
// answer-on-expiry contract — plus Answer.Fused/BatchLanes reporting
// the sharing. Falls back to solo Query when batching is disabled or
// the admission queue is full.
func (gd *Guard) QueryFused(ctx context.Context, src int32) (*Answer, error) {
	return gd.QueryFusedGoal(ctx, src, core.Goal{})
}

// QueryFusedGoal is QueryFused with a per-lane goal: the lane retires
// from the fused run at the level barrier where its target settles or
// its depth bound is reached, and its Answer demuxes the exact
// truncated result (see Answer.Truncated). Other lanes keep running.
func (gd *Guard) QueryFusedGoal(ctx context.Context, src int32, goal core.Goal) (*Answer, error) {
	if gd.batch == nil {
		return gd.QueryGoal(ctx, src, goal)
	}
	select {
	case <-gd.closed:
		return nil, ErrClosed
	default:
	}
	if src < 0 || src >= gd.g.NumVertices() {
		return nil, fmt.Errorf("%w: %d not in [0,%d)", ErrBadSource, src, gd.g.NumVertices())
	}
	if err := gd.checkGoal(goal); err != nil {
		return nil, err
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, gd.cfg.Deadline)
		defer cancel()
	}
	r := &fusedReq{ctx: ctx, src: src, goal: goal, out: make(chan fusedResp, 1)}
	select {
	case gd.batch.reqs <- r:
	default:
		// Admission queue saturated: shed to the solo path rather than
		// stacking unbounded latency behind the dispatcher.
		return gd.QueryGoal(ctx, src, goal)
	}
	gd.inflight.Add(1)
	start := time.Now()
	defer func() {
		gd.inflight.Add(-1)
		gd.latency.Observe(time.Since(start).Seconds())
	}()
	select {
	case resp := <-r.out:
		return gd.finishFused(resp)
	case <-ctx.Done():
	}
	// The caller's budget expired while parked or mid-batch. Mirror the
	// solo path's grace window: give the dispatcher Grace to flush this
	// lane's response — typically the partial demux of an aborting
	// batch — before walking away from the seat.
	t := time.NewTimer(gd.cfg.Grace)
	defer t.Stop()
	select {
	case resp := <-r.out:
		return gd.finishFused(resp)
	case <-t.C:
		gd.requests(outcomeForCtx(ctx.Err())).Inc()
		return nil, ctx.Err()
	}
}

// finishFused counts and unwraps one batched response. Solo re-runs
// after a batch failure were already counted inside the ladder.
func (gd *Guard) finishFused(resp fusedResp) (*Answer, error) {
	if !resp.counted {
		switch {
		case resp.err == nil:
			gd.requests(resp.ans.Outcome).Inc()
		case errors.Is(resp.err, ErrClosed):
			// close raced admission; not a traffic outcome.
		default:
			gd.requests(outcomeForCtx(resp.err)).Inc()
		}
	}
	return resp.ans, resp.err
}

// loop is the dispatcher: collect a batch, run it fused, respond, and
// repeat until close.
func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case <-b.closed:
			b.drainPending()
			return
		case r := <-b.reqs:
			b.dispatch(b.collect(r))
		}
	}
}

// collect gathers lanes for the window that starts at the first
// request, stopping early at MaxLanes.
func (b *batcher) collect(first *fusedReq) []*fusedReq {
	batch := append(b.scratch[:0], first)
	t := time.NewTimer(b.cfg.Window)
	defer t.Stop()
	for len(batch) < b.cfg.MaxLanes {
		select {
		case r := <-b.reqs:
			batch = append(batch, r)
		case <-t.C:
			return batch
		case <-b.closed:
			// Dispatch what we have; the loop exits on its next pass.
			return batch
		}
	}
	return batch
}

// dispatch runs one batch fused and responds to every lane.
func (b *batcher) dispatch(batch []*fusedReq) {
	// Mask out lanes whose callers are already gone: they cost a reply,
	// not a lane.
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			r.out <- fusedResp{err: err}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 {
		// Singleton window: the fused engine's lane-major visited words
		// and per-entry mask merges cost real time that sharing normally
		// amortizes — at occupancy 1 there is nothing to share, and the
		// solo kernels are measurably faster. Hand the lane to the
		// Guard's solo fleet on its own goroutine so the dispatcher can
		// keep collecting the next window.
		r := live[0]
		b.batches.Inc()
		b.lanes.Inc()
		b.occupancy.Observe(1)
		b.soloDispatch.Inc()
		go func() {
			ans, err := b.gd.rerunSolo(r.ctx, r.src, r.goal)
			if ans != nil {
				ans.BatchLanes = 1
			}
			r.out <- fusedResp{ans: ans, err: err, counted: true}
		}()
		return
	}

	// The batch context: lives until the latest caller deadline (every
	// fused req carries one), and is canceled early once every caller
	// has walked away.
	var latest time.Time
	for _, r := range live {
		if dl, ok := r.ctx.Deadline(); ok && dl.After(latest) {
			latest = dl
		}
	}
	var bctx context.Context
	var cancel context.CancelFunc
	if latest.IsZero() {
		bctx, cancel = context.WithCancel(context.Background())
	} else {
		bctx, cancel = context.WithDeadline(context.Background(), latest)
	}
	defer cancel()
	var gone atomic.Int32
	need := int32(len(live))
	stops := make([]func() bool, 0, len(live))
	for _, r := range live {
		stops = append(stops, context.AfterFunc(r.ctx, func() {
			if gone.Add(1) == need {
				cancel() // nobody is waiting: abort the fused run
			}
		}))
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	b.batches.Inc()
	b.lanes.Add(int64(len(live)))
	b.occupancy.Observe(float64(len(live)))

	srcs := make([]int32, len(live))
	var goals []core.Goal
	for i, r := range live {
		srcs[i] = r.src
		if r.goal.Bounded() {
			if goals == nil {
				goals = make([]core.Goal, len(live))
			}
			goals[i] = r.goal
		}
	}
	start := time.Now()
	res, err := b.runFused(bctx, srcs, goals)
	b.seconds.Observe(time.Since(start).Seconds())

	switch {
	case err == nil:
		for i, r := range live {
			ans := laneAnswer(res.Lane(i), len(live))
			ans.Outcome = "ok"
			r.out <- fusedResp{ans: ans}
		}
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		// The batch context expired or every caller left: demux per-lane
		// partial answers, each tagged with its own caller's error when
		// set (the batch error otherwise).
		for i, r := range live {
			rerr := r.ctx.Err()
			if rerr == nil {
				rerr = err
			}
			var ans *Answer
			if res != nil {
				ans = laneAnswer(res.Lane(i), len(live))
				ans.Outcome = outcomeForCtx(rerr)
			}
			r.out <- fusedResp{ans: ans, err: rerr}
		}
	default:
		// Engine failure: the fused run cannot be trusted for any lane.
		// Count it, replace the engine, and walk every surviving lane
		// through the solo ladder.
		b.ffailures(failureKind(err)).Inc()
		b.rebuildFused(err)
		for _, r := range live {
			if cerr := r.ctx.Err(); cerr != nil {
				r.out <- fusedResp{err: cerr}
				continue
			}
			b.soloRerun.Inc()
			ans, serr := b.gd.rerunSolo(r.ctx, r.src, r.goal)
			r.out <- fusedResp{ans: ans, err: serr, counted: true}
		}
	}
}

// runFused executes one fused run with the same abandon-on-wedge
// protocol as runGuarded: buffered result channel, atomic handoff word,
// exactly one party closes a wedged engine.
func (b *batcher) runFused(ctx context.Context, srcs []int32, goals []core.Goal) (*core.MSResult, error) {
	if b.eng == nil {
		eng, err := core.NewMSEngine(b.gd.g, b.gd.cfg.Options)
		if err != nil {
			return nil, err
		}
		b.gd.rebuilds.Inc()
		b.eng = eng
	}
	type outcome struct {
		res *core.MSResult
		err error
	}
	const (
		handPending int32 = iota
		handDelivered
		handAbandoned
	)
	eng := b.eng
	ch := make(chan outcome, 1)
	var hand atomic.Int32
	go func() {
		res, err := eng.RunGoals(ctx, srcs, goals)
		ch <- outcome{res: res, err: err}
		if !hand.CompareAndSwap(handPending, handDelivered) {
			eng.Close() // abandoned: the run has returned, closing is safe
		}
	}()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-ctx.Done():
	}
	t := time.NewTimer(b.gd.cfg.Grace)
	defer t.Stop()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-t.C:
	}
	if !hand.CompareAndSwap(handPending, handAbandoned) {
		out := <-ch
		return out.res, out.err
	}
	b.gd.abandoned.Add(1)
	b.eng = nil
	return nil, errWedged
}

// rebuildFused discards the failed fused engine (unless it was
// abandoned as wedged, in which case the zombie goroutine owns it) and
// builds a replacement eagerly so the next batch starts warm.
func (b *batcher) rebuildFused(cause error) {
	if b.eng != nil && !errors.Is(cause, errWedged) {
		b.eng.Close()
	}
	b.eng = nil
	if eng, err := core.NewMSEngine(b.gd.g, b.gd.cfg.Options); err == nil {
		b.eng = eng
		b.gd.rebuilds.Inc()
	}
}

// rerunSolo pushes one surviving lane of a failed batch through the
// normal solo ladder. Unlike Query it never sheds: the caller already
// paid admission latency, so it waits for a slot until its context
// expires.
func (gd *Guard) rerunSolo(ctx context.Context, src int32, goal core.Goal) (*Answer, error) {
	var s *slot
	select {
	case s = <-gd.slots:
	case <-ctx.Done():
		gd.requests(outcomeForCtx(ctx.Err())).Inc()
		return nil, ctx.Err()
	}
	defer func() { gd.slots <- s }()
	return gd.ladder(ctx, s, src, goal)
}

// drainPending answers everything still queued at close with ErrClosed.
func (b *batcher) drainPending() {
	for {
		select {
		case r := <-b.reqs:
			r.out <- fusedResp{err: ErrClosed}
		default:
			return
		}
	}
}

// laneAnswer deep-copies one lane's view out of the fused engine's
// pooled lane-major arrays into a self-contained Answer.
func laneAnswer(lr *core.LaneResult, batchLanes int) *Answer {
	a := &Answer{
		Levels:         lr.Levels,
		Reached:        lr.Reached,
		EdgesTraversed: lr.EdgesTraversed,
		Algorithm:      core.MSBFSL,
		Fused:          true,
		BatchLanes:     batchLanes,
		Truncated:      lr.Truncated,
	}
	a.Dist = append([]int32(nil), lr.Dist...)
	if lr.Parent != nil {
		a.Parent = append([]int32(nil), lr.Parent...)
	}
	return a
}
