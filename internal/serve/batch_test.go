package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/graph"
	"optibfs/internal/obs"
)

// checkAnswerFrom validates an answer for an arbitrary source.
func checkAnswerFrom(t *testing.T, g *graph.CSR, src int32, ans *Answer) {
	t.Helper()
	want := graph.ReferenceBFS(g, src)
	if err := graph.EqualDistances(ans.Dist, want); err != nil {
		t.Fatalf("src %d: %v", src, err)
	}
	if err := graph.ValidateParents(g, src, ans.Dist, ans.Parent); err != nil {
		t.Fatalf("src %d: %v", src, err)
	}
}

// TestFusedBatchOK: concurrent QueryFused calls land in one fused run,
// every lane demuxes to a correct per-source answer, and the batch
// metrics record the occupancy.
func TestFusedBatchOK(t *testing.T) {
	g := testGraph(t)
	reg := obs.New()
	gd, err := New(g, Config{
		Concurrency: 1,
		Registry:    reg,
		Batch:       BatchConfig{Enabled: true, Window: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()

	const lanes = 8
	anss := make([]*Answer, lanes)
	errs := make([]error, lanes)
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			anss[i], errs[i] = gd.QueryFused(context.Background(), int32(i*13))
		}(i)
	}
	wg.Wait()
	for i := 0; i < lanes; i++ {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if anss[i].Outcome != "ok" {
			t.Fatalf("lane %d: outcome %q, want ok", i, anss[i].Outcome)
		}
		if !anss[i].Fused {
			t.Fatalf("lane %d: answer not marked fused", i)
		}
		if anss[i].Algorithm != core.MSBFSL {
			t.Fatalf("lane %d: algorithm %q, want %q", i, anss[i].Algorithm, core.MSBFSL)
		}
		checkAnswerFrom(t, g, int32(i*13), anss[i])
	}
	if n := reg.Counter("optibfs_serve_fused_lanes_total").Value(); n != lanes {
		t.Fatalf("fused lanes counted = %d, want %d", n, lanes)
	}
	if n := reg.Counter("optibfs_serve_fused_batches_total").Value(); n != 1 {
		t.Fatalf("fused batches = %d, want 1 (collection window missed lanes)", n)
	}
	if n := reg.Histogram("optibfs_serve_batch_lanes",
		[]float64{1, 2, 4, 8, 16, 32, 48, 64}).Count(); n != 1 {
		t.Fatalf("occupancy observations = %d, want 1", n)
	}
	if n := reg.Counter("optibfs_serve_requests_total", obs.L("outcome", "ok")).Value(); n != lanes {
		t.Fatalf("ok requests counted = %d, want %d", n, lanes)
	}
}

// TestFusedCanceledLaneMasked: a lane whose caller has already gone is
// masked out of the batch instead of aborting it — the surviving lane
// still answers ok. With one survivor the batch collapses to a
// singleton and dispatches through the solo fleet (see soloDispatch),
// so the answer is not marked fused.
func TestFusedCanceledLaneMasked(t *testing.T) {
	g := testGraph(t)
	reg := obs.New()
	gd, err := New(g, Config{
		Concurrency: 1,
		Registry:    reg,
		Batch:       BatchConfig{Enabled: true, Window: 150 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	var wg sync.WaitGroup
	var liveAns *Answer
	var liveErr, deadErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, deadErr = gd.QueryFused(dead, 7)
	}()
	go func() {
		defer wg.Done()
		liveAns, liveErr = gd.QueryFused(context.Background(), 0)
	}()
	wg.Wait()
	if !errors.Is(deadErr, context.Canceled) {
		t.Fatalf("canceled lane: err = %v, want context.Canceled", deadErr)
	}
	if liveErr != nil {
		t.Fatal(liveErr)
	}
	if liveAns.Outcome != "ok" || liveAns.Fused {
		t.Fatalf("surviving lane: outcome %q fused=%v, want ok solo-dispatched", liveAns.Outcome, liveAns.Fused)
	}
	if liveAns.BatchLanes != 1 {
		t.Fatalf("surviving lane ran with %d live lanes, want 1 (dead lane not masked)", liveAns.BatchLanes)
	}
	if n := reg.Counter("optibfs_serve_fused_solo_dispatch_total").Value(); n != 1 {
		t.Fatalf("solo dispatches = %d, want 1", n)
	}
	checkAnswer(t, g, liveAns)
}

// TestFusedEngineFailureRerunsSolo: a worker panic inside the fused
// run fails the whole batch; every surviving lane is re-run solo
// through the ladder and still answers correctly.
func TestFusedEngineFailureRerunsSolo(t *testing.T) {
	g := testGraph(t)
	var fired int32
	reg := obs.New()
	gd, err := New(g, Config{
		Concurrency: 1,
		Registry:    reg,
		Batch:       BatchConfig{Enabled: true, Window: 150 * time.Millisecond},
		Options: core.Options{Workers: 2, Chaos: hookFunc(func(p core.ChaosPoint, _ int, _ int64) {
			if p == core.ChaosStall && atomic.CompareAndSwapInt32(&fired, 0, 1) {
				panic("batch test: injected fused panic")
			}
		})},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()

	const lanes = 2
	anss := make([]*Answer, lanes)
	errs := make([]error, lanes)
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			anss[i], errs[i] = gd.QueryFused(context.Background(), int32(i*11))
		}(i)
	}
	wg.Wait()
	for i := 0; i < lanes; i++ {
		if errs[i] != nil {
			t.Fatalf("lane %d: %v", i, errs[i])
		}
		if anss[i].Fused {
			t.Fatalf("lane %d: solo re-run still marked fused", i)
		}
		checkAnswerFrom(t, g, int32(i*11), anss[i])
	}
	if n := reg.Counter("optibfs_serve_fused_failures_total", obs.L("kind", "panic")).Value(); n != 1 {
		t.Fatalf("fused panic failures = %d, want 1", n)
	}
	if n := reg.Counter("optibfs_serve_fused_solo_reruns_total").Value(); n != lanes {
		t.Fatalf("solo reruns = %d, want %d", n, lanes)
	}
}

// TestFusedPartialOnDeadline: a fused run aborted by its batch
// deadline demuxes a per-lane partial answer alongside the error.
func TestFusedPartialOnDeadline(t *testing.T) {
	g := testGraph(t)
	reg := obs.New()
	gd, err := New(g, Config{
		Concurrency: 1,
		Registry:    reg,
		Grace:       5 * time.Second,
		Batch:       BatchConfig{Enabled: true, Window: 200 * time.Millisecond, MaxLanes: 2},
		Options: core.Options{
			Workers:      2,
			StallTimeout: time.Minute, // slow progress is not a stall
			Chaos: hookFunc(func(p core.ChaosPoint, _ int, _ int64) {
				if p == core.ChaosStall {
					time.Sleep(20 * time.Millisecond)
				}
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()

	// Two lanes so the batch stays fused (a singleton would solo-
	// dispatch); MaxLanes 2 dispatches as soon as both are seated.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	anss := make([]*Answer, 2)
	qerrs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range anss {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			anss[i], qerrs[i] = gd.QueryFused(ctx, int32(i*5))
		}(i)
	}
	wg.Wait()
	want0 := graph.ReferenceBFS(g, 0)
	want1 := graph.ReferenceBFS(g, 5)
	for i, qerr := range qerrs {
		if !errors.Is(qerr, context.DeadlineExceeded) {
			t.Fatalf("lane %d: err = %v, want context.DeadlineExceeded", i, qerr)
		}
		ans := anss[i]
		if ans == nil {
			t.Fatalf("lane %d: no partial answer demuxed on batch deadline", i)
		}
		if ans.Outcome != "deadline" {
			t.Fatalf("lane %d: outcome = %q, want deadline", i, ans.Outcome)
		}
		if !ans.Fused {
			t.Fatalf("lane %d: partial answer not marked fused", i)
		}
		// Every settled distance must already be exact.
		want := want0
		if i == 1 {
			want = want1
		}
		for v, d := range ans.Dist {
			if d != graph.Unreached && d != want[v] {
				t.Fatalf("lane %d: partial dist[%d] = %d, want %d", i, v, d, want[v])
			}
		}
	}
}

// TestFusedDisabledFallsBack: QueryFused without Batch.Enabled is
// plain Query.
func TestFusedDisabledFallsBack(t *testing.T) {
	g := testGraph(t)
	gd, err := New(g, Config{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer gd.Close()
	ans, err := gd.QueryFused(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Fused {
		t.Fatal("solo fallback marked fused")
	}
	if ans.Outcome != "ok" {
		t.Fatalf("outcome = %q, want ok", ans.Outcome)
	}
	checkAnswer(t, g, ans)
}
