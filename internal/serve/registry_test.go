package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/mmio"
)

// heapSource wraps a plain CSR as a GraphSource.
func heapSource(g *graph.CSR) GraphSource {
	return func(context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
		return g, nil, nil
	}
}

// mappedSource writes g as a v2 binary file and loads it mapped.
func mappedSource(t *testing.T, g *graph.CSR) GraphSource {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteBinaryV2(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return func(context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
		mg, err := mmio.LoadMapped(path, mmio.MapOptions{})
		if err != nil {
			return nil, nil, err
		}
		return mg.Graph(), mg, nil
	}
}

func smallGraph(t *testing.T, seed uint64) *graph.CSR {
	t.Helper()
	g, err := gen.ErdosRenyi(500, 3000, seed, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestRegistry(t *testing.T, cfg RegistryConfig) *Registry {
	t.Helper()
	if cfg.Guard.Concurrency == 0 {
		cfg.Guard.Concurrency = 1
	}
	r := NewRegistry(cfg)
	t.Cleanup(r.Close)
	return r
}

func TestRegistryLoadQueryEvict(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	g := smallGraph(t, 1)
	if err := r.Load(context.Background(), "a", heapSource(g)); err != nil {
		t.Fatal(err)
	}
	l, err := r.Begin(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := l.Guard().Query(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.EqualDistances(ans.Dist, graph.ReferenceBFS(g, 0)); err != nil {
		t.Fatal(err)
	}
	l.Release()
	if err := r.Evict("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Begin(context.Background(), "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after evict: got %v, want ErrNotFound", err)
	}
	if _, err := r.Begin(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown name: got %v, want ErrNotFound", err)
	}
}

// TestEvictionUnderRetain is the headline lifecycle test: evict a
// mapped graph while a query lease still retains it, and assert the
// pages stay readable until the last Release. Run under -race.
func TestEvictionUnderRetain(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	g := smallGraph(t, 2)
	if err := r.Load(context.Background(), "m", mappedSource(t, g)); err != nil {
		t.Fatal(err)
	}
	l, err := r.Begin(context.Background(), "m")
	if err != nil {
		t.Fatal(err)
	}
	mg := l.MappedGraph()
	if mg == nil || !mg.Mapped() {
		t.Fatal("expected a live mapped graph")
	}

	// Evict while the lease is held; retire runs in the background and
	// closes the guard, but the mapping must survive the lease.
	if err := r.Evict("m"); err != nil {
		t.Fatal(err)
	}
	// Concurrent readers over the mapped arrays while retire proceeds.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			csr := l.Graph()
			var sum int64
			for v := int32(0); v < csr.NumVertices(); v++ {
				lo, hi := csr.Offsets[v], csr.Offsets[v+1]
				for _, u := range csr.Edges[lo:hi] {
					sum += int64(u)
				}
			}
			_ = sum
		}()
	}
	wg.Wait()
	// Give the async retire a moment; the mapping must still be live
	// because the lease holds a reference.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if mg.Unmapped() {
			t.Fatal("mapping unmapped while a lease was live")
		}
		if _, ok := r.Info("m"); !ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if mg.Unmapped() {
		t.Fatal("mapping unmapped while a lease was live")
	}
	l.Release()
	// Now the lease's reference is gone; once retire's base release
	// lands too the mapping unmaps.
	for time.Now().Before(deadline.Add(time.Second)) {
		if mg.Unmapped() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("mapping never unmapped after final release")
}

// TestDoubleEvict: the second evict of a name is a clean ErrNotFound,
// and concurrent evicts retire the entry exactly once (no double
// Release panic from mmio).
func TestDoubleEvict(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	g := smallGraph(t, 3)
	if err := r.Load(context.Background(), "d", mappedSource(t, g)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.Evict("d")
		}(i)
	}
	wg.Wait()
	okCount := 0
	for _, err := range errs {
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, ErrNotFound):
		default:
			t.Fatalf("unexpected evict error: %v", err)
		}
	}
	if okCount != 1 {
		t.Fatalf("evict succeeded %d times, want exactly 1", okCount)
	}
}

// TestEvictDuringLoadSwap: evicting a name while a replacement load of
// the same name is in flight retires the old generation exactly once,
// and the load still installs (last writer wins).
func TestEvictDuringLoadSwap(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	g1 := smallGraph(t, 4)
	g2 := smallGraph(t, 5)
	if err := r.Load(context.Background(), "s", mappedSource(t, g1)); err != nil {
		t.Fatal(err)
	}
	l, err := r.Acquire("s")
	if err != nil {
		t.Fatal(err)
	}
	gen1 := l.Gen()
	l.Release()

	// Slow source: eviction races the in-flight load.
	started := make(chan struct{})
	proceed := make(chan struct{})
	inner := mappedSource(t, g2)
	slow := func(ctx context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
		close(started)
		<-proceed
		return inner(ctx)
	}
	done := make(chan error, 1)
	go func() { done <- r.Load(context.Background(), "s", slow) }()
	<-started
	if err := r.Evict("s"); err != nil {
		t.Fatal(err)
	}
	close(proceed)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	l2, err := r.Acquire("s")
	if err != nil {
		t.Fatalf("after evict-during-load, graph should be installed: %v", err)
	}
	defer l2.Release()
	if l2.Gen() == gen1 {
		t.Fatal("load did not install a new generation")
	}
	if l2.Graph().NumVertices() != g2.NumVertices() {
		t.Fatal("installed graph is not the new one")
	}
}

// TestSingleFlightLoad: concurrent loads of one name collapse onto one
// loader call.
func TestSingleFlightLoad(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	g := smallGraph(t, 6)
	var calls int32
	var mu sync.Mutex
	started := make(chan struct{})
	proceed := make(chan struct{})
	src := func(ctx context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
		mu.Lock()
		calls++
		if calls == 1 {
			close(started)
		}
		mu.Unlock()
		<-proceed
		return g, nil, nil
	}
	const N = 6
	done := make(chan error, N)
	go func() { done <- r.Load(context.Background(), "f", src) }()
	<-started
	for i := 1; i < N; i++ {
		go func() { done <- r.Load(context.Background(), "f", src) }()
	}
	// Followers should be queued on the leader, not calling src.
	time.Sleep(20 * time.Millisecond)
	close(proceed)
	for i := 0; i < N; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("loader called %d times, want 1 (single flight)", calls)
	}
}

// TestBudgetEviction: inserting past the budget evicts idle entries
// LRU-first; pinned (leased) entries survive, and an unsatisfiable
// insert fails with ErrBudgetExceeded.
func TestBudgetEviction(t *testing.T) {
	g := smallGraph(t, 7)
	cost := graphCost(g)
	r := newTestRegistry(t, RegistryConfig{MemoryBudget: 2*cost + cost/2})

	if err := r.Load(context.Background(), "a", heapSource(g)); err != nil {
		t.Fatal(err)
	}
	if err := r.Load(context.Background(), "b", heapSource(g)); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" is LRU.
	la, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	la.Release()
	if err := r.Load(context.Background(), "c", heapSource(g)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU entry b should have been evicted, got %v", err)
	}
	if _, err := r.Acquire("a"); err != nil {
		t.Fatalf("recently used entry a should survive: %v", err)
	}
	if got := r.ResidentBytes(); got != 2*cost {
		t.Fatalf("resident = %d, want %d", got, 2*cost)
	}

	// Pin both residents; a third insert has no evictable victim.
	lc, err := r.Acquire("c")
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Release()
	if _, err := r.Acquire("a"); err != nil {
		t.Fatal(err)
	} // leak the lease intentionally: "a" stays pinned for this test
	if err := r.Load(context.Background(), "d", heapSource(g)); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("insert with all residents pinned: got %v, want ErrBudgetExceeded", err)
	}
}

// TestLoadingState: Acquire during an in-flight first load reports
// ErrLoading, not ErrNotFound.
func TestLoadingState(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	g := smallGraph(t, 8)
	started := make(chan struct{})
	proceed := make(chan struct{})
	src := func(ctx context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
		close(started)
		<-proceed
		return g, nil, nil
	}
	done := make(chan error, 1)
	go func() { done <- r.Load(context.Background(), "l", src) }()
	<-started
	if _, err := r.Acquire("l"); !errors.Is(err, ErrLoading) {
		t.Fatalf("during load: got %v, want ErrLoading", err)
	}
	if info, ok := r.Info("l"); !ok || !info.Loading {
		t.Fatalf("Info during load = %+v, %v", info, ok)
	}
	close(proceed)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	l, err := r.Acquire("l")
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
}

// TestRegistryCloseDrains: Close retires every entry and blocks until
// draining queries finish; queries after Close fail typed.
func TestRegistryCloseDrains(t *testing.T) {
	r := NewRegistry(RegistryConfig{Guard: Config{Concurrency: 1}})
	g := smallGraph(t, 9)
	if err := r.Load(context.Background(), "x", mappedSource(t, g)); err != nil {
		t.Fatal(err)
	}
	l, err := r.Begin(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	mg := l.MappedGraph()
	go func() {
		time.Sleep(30 * time.Millisecond)
		l.Release()
	}()
	r.Close()
	if _, err := r.Begin(context.Background(), "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("after close: got %v, want ErrClosed", err)
	}
	if err := r.Load(context.Background(), "y", heapSource(g)); !errors.Is(err, ErrClosed) {
		t.Fatalf("load after close: got %v, want ErrClosed", err)
	}
	// The lease released before Close returned... but release order is
	// not guaranteed; wait for the unmap.
	deadline := time.Now().Add(2 * time.Second)
	for !mg.Unmapped() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !mg.Unmapped() {
		t.Fatal("mapping still live after Close and lease release")
	}
}
