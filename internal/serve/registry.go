// The Registry serves many named graphs from one process under a
// shared memory budget. Each entry owns a Guard fleet plus (optionally)
// the mmap that backs its CSR; the registry adds the policy layers a
// multi-tenant daemon needs:
//
//   - Ref-counted lifecycle: queries run under a Lease that pins the
//     entry (LRU-wise) and retains its mapping, so eviction can retire
//     a graph while draining queries still read its pages — the unmap
//     happens only after the last lease releases. The entry's base
//     mapping reference is dropped only in retire, after the guard has
//     drained, so a Lease's Retain can never race the final Release.
//   - Memory-budget LRU eviction: inserts that would exceed the budget
//     evict idle (lease-free) entries least-recently-used first;
//     entries with live leases are pinned and never evicted, so an
//     insert that cannot fit even after evicting every idle entry
//     fails with ErrBudgetExceeded rather than unmapping under a
//     reader.
//   - Single-flight loading: concurrent loads of the same name
//     collapse onto one loader; followers share its outcome.
//   - Admission control: Begin routes every query through the global
//     deadline-aware admission controller (see admission.go) before
//     touching the entry.
//
// Wedged-engine rule: a Guard that abandoned engines may have zombie
// goroutines still reading the graph, so retire leaks the mapping
// (never unmaps) when Abandoned() > 0 — the same rule bfsd applied to
// its single anonymous graph before the registry existed.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"optibfs/internal/graph"
	"optibfs/internal/mmio"
	"optibfs/internal/obs"
)

// ErrNotFound reports a query or evict against a name the registry
// does not hold (never loaded, or already evicted).
var ErrNotFound = errors.New("serve: graph not found")

// ErrLoading reports a query against a name whose (first) load is
// still in flight.
var ErrLoading = errors.New("serve: graph still loading")

// ErrBudgetExceeded reports a load that cannot fit in the memory
// budget even after evicting every idle graph — the remainder are
// pinned by live leases.
var ErrBudgetExceeded = errors.New("serve: memory budget exceeded")

// RegistryConfig tunes a Registry. The zero value serves with no
// memory budget and default guard/admission settings.
type RegistryConfig struct {
	// MemoryBudget caps the summed cost of resident graphs, in bytes.
	// 0 = unlimited (no eviction except explicit Evict/swap).
	MemoryBudget int64
	// Guard is the per-graph Guard template (Algo, Options, fleet
	// size, deadlines, batching). Guard.Registry is overridden by Obs.
	Guard Config
	// Admission tunes the global admission controller.
	Admission AdmissionConfig
	// Obs receives registry, admission, and guard metrics. Nil = a
	// private registry.
	Obs *obs.Registry
}

// GraphSource loads one graph for Registry.Load. It returns either a
// mapped graph (csr aliases the mapping; the registry takes over the
// load's base reference) or a plain heap CSR with mapped == nil.
type GraphSource func(ctx context.Context) (csr *graph.CSR, mapped *mmio.MappedGraph, err error)

// entry is one resident graph. Mutable fields are guarded by the
// registry mutex.
type entry struct {
	name   string
	gen    uint64
	guard  *Guard
	mapped *mmio.MappedGraph // nil for heap-loaded graphs
	csr    *graph.CSR
	cost   int64
	leases int    // live Lease count; > 0 pins against eviction
	lastUse uint64 // registry useClock at last Acquire (LRU key)
	// ext carries per-generation caches (bfsd's components cache);
	// it dies with the entry, so a swap naturally invalidates it.
	ext sync.Map
}

// loadCall is one single-flight load in progress. done is closed when
// the leader finishes; followers then read err.
type loadCall struct {
	done chan struct{}
	err  error
}

// GraphInfo is a point-in-time snapshot of one entry, for listings
// and readiness reporting.
type GraphInfo struct {
	Name     string `json:"name"`
	Gen      uint64 `json:"gen"`
	Vertices int32  `json:"vertices"`
	Edges    int64  `json:"edges"`
	Cost     int64  `json:"cost_bytes"`
	Mapped   bool   `json:"mapped"`
	Leases   int    `json:"leases"`
	Loading  bool   `json:"loading,omitempty"`
}

// Registry is the named multi-graph serving layer. Safe for concurrent
// use.
type Registry struct {
	cfg RegistryConfig
	adm *admission

	mu       sync.Mutex
	closed   bool
	entries  map[string]*entry
	loading  map[string]*loadCall
	resident int64
	useClock uint64
	genSeq   uint64
	retiring sync.WaitGroup

	residentG *obs.Gauge
	graphsG   *obs.Gauge
	evictions func(reason string) *obs.Counter
	leakedG   *obs.Gauge
	leaked    atomic.Int64
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	cfg.Guard.Registry = cfg.Obs
	r := &Registry{
		cfg:     cfg,
		adm:     newAdmission(cfg.Admission, cfg.Obs),
		entries: map[string]*entry{},
		loading: map[string]*loadCall{},
	}
	r.residentG = cfg.Obs.Gauge("optibfs_registry_resident_bytes")
	r.graphsG = cfg.Obs.Gauge("optibfs_registry_graphs")
	r.evictions = func(reason string) *obs.Counter {
		return cfg.Obs.Counter("optibfs_registry_evictions_total", obs.L("reason", reason))
	}
	r.leakedG = cfg.Obs.Gauge("optibfs_registry_leaked_mappings")
	return r
}

// Obs returns the metrics registry every layer reports into.
func (r *Registry) Obs() *obs.Registry { return r.cfg.Obs }

// graphCost is the resident-memory cost model: the CSR's array bytes.
// For mapped graphs this equals the mapped section payload (what the
// page cache holds once the graph is fully touched).
func graphCost(g *graph.CSR) int64 {
	return int64(len(g.Offsets))*8 + int64(len(g.Edges))*4
}

// Load installs (or replaces) the named graph from source, under
// single-flight: if a load of the same name is already in flight the
// call waits for it and shares its outcome instead of loading again.
// A replaced generation is retired in the background once its draining
// queries finish. Returns ErrBudgetExceeded when eviction cannot make
// room, ErrClosed after Close.
func (r *Registry) Load(ctx context.Context, name string, source GraphSource) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if c, ok := r.loading[name]; ok {
		r.mu.Unlock()
		select {
		case <-c.done:
			return c.err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	c := &loadCall{done: make(chan struct{})}
	r.loading[name] = c
	r.mu.Unlock()

	c.err = r.loadLeader(ctx, name, source)

	r.mu.Lock()
	delete(r.loading, name)
	r.mu.Unlock()
	close(c.done)
	return c.err
}

// loadLeader runs the actual load: source, guard construction, then
// eviction planning + install under one critical section.
func (r *Registry) loadLeader(ctx context.Context, name string, source GraphSource) error {
	csr, mapped, err := source(ctx)
	if err != nil {
		return err
	}
	abort := func() {
		if mapped != nil {
			mapped.Release()
		}
	}
	gd, err := New(csr, r.cfg.Guard)
	if err != nil {
		abort()
		return err
	}
	cost := graphCost(csr)

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		gd.Close()
		abort()
		return ErrClosed
	}
	victims, err := r.planEvictionsLocked(name, cost)
	if err != nil {
		r.mu.Unlock()
		gd.Close()
		abort()
		return err
	}
	for _, v := range victims {
		r.removeLocked(v)
		r.evictions("budget").Inc()
	}
	old := r.entries[name]
	if old != nil {
		r.removeLocked(old)
		r.evictions("swap").Inc()
	}
	r.genSeq++
	e := &entry{
		name: name, gen: r.genSeq,
		guard: gd, mapped: mapped, csr: csr, cost: cost,
	}
	r.useClock++
	e.lastUse = r.useClock
	r.entries[name] = e
	r.resident += cost
	r.updateGaugesLocked()
	r.mu.Unlock()

	for _, v := range victims {
		r.retireAsync(v)
	}
	if old != nil {
		r.retireAsync(old)
	}
	return nil
}

// planEvictionsLocked picks the idle entries to evict so that target
// fits in the budget. It mutates nothing; the caller removes the
// victims. Entries with live leases are pinned; if evicting every
// idle entry still cannot make room, the load fails.
func (r *Registry) planEvictionsLocked(target string, cost int64) ([]*entry, error) {
	if r.cfg.MemoryBudget <= 0 {
		return nil, nil
	}
	// The displaced same-name generation frees its cost too.
	after := r.resident + cost
	if old := r.entries[target]; old != nil {
		after -= old.cost
	}
	if after <= r.cfg.MemoryBudget {
		return nil, nil
	}
	idle := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		if e.name != target && e.leases == 0 {
			idle = append(idle, e)
		}
	}
	sort.Slice(idle, func(i, j int) bool { return idle[i].lastUse < idle[j].lastUse })
	var victims []*entry
	for _, e := range idle {
		if after <= r.cfg.MemoryBudget {
			break
		}
		victims = append(victims, e)
		after -= e.cost
	}
	if after > r.cfg.MemoryBudget {
		return nil, fmt.Errorf("%w: need %d bytes, budget %d, %d pinned",
			ErrBudgetExceeded, cost, r.cfg.MemoryBudget, len(r.entries)-len(idle))
	}
	return victims, nil
}

// removeLocked unlinks e from the registry maps and accounting. The
// caller must subsequently retire it (sync or async) exactly once.
func (r *Registry) removeLocked(e *entry) {
	if r.entries[e.name] == e {
		delete(r.entries, e.name)
	}
	r.resident -= e.cost
	r.updateGaugesLocked()
}

func (r *Registry) updateGaugesLocked() {
	r.residentG.Set(float64(r.resident))
	r.graphsG.Set(float64(len(r.entries)))
	r.adm.setGraphs(len(r.entries))
}

// retireAsync tears e down in the background; Close waits for all
// outstanding retires.
func (r *Registry) retireAsync(e *entry) {
	r.retiring.Add(1)
	go func() {
		defer r.retiring.Done()
		r.retire(e)
	}()
}

// retire drains and tears down a removed entry: close the guard
// (blocks until in-flight queries return their slots), then drop the
// entry's base mapping reference — unless the guard abandoned wedged
// engines, whose zombie goroutines may still read the pages; then the
// mapping is leaked instead. Draining leases hold their own Retain, so
// the actual unmap happens at the last Release, wherever that is.
func (r *Registry) retire(e *entry) {
	e.guard.Close()
	if e.mapped == nil {
		return
	}
	if e.guard.Abandoned() > 0 {
		r.leaked.Add(1)
		r.leakedG.Add(1)
		return
	}
	e.mapped.Release()
}

// Evict removes the named graph. In-flight queries drain; new queries
// see ErrNotFound. Idempotent: evicting an absent name returns
// ErrNotFound and changes nothing.
func (r *Registry) Evict(name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return ErrNotFound
	}
	r.removeLocked(e)
	r.evictions("explicit").Inc()
	r.mu.Unlock()
	r.retireAsync(e)
	return nil
}

// Lease pins one graph generation for the duration of a query (or any
// read): the entry cannot be LRU-evicted and its mapping cannot be
// unmapped until Release. Release is idempotent.
type Lease struct {
	r          *Registry
	e          *entry
	admRelease func()
	once       sync.Once
}

// Graph returns the leased CSR.
func (l *Lease) Graph() *graph.CSR { return l.e.csr }

// Guard returns the leased generation's engine fleet.
func (l *Lease) Guard() *Guard { return l.e.guard }

// MappedGraph returns the mapping backing the CSR, or nil for
// heap-loaded graphs.
func (l *Lease) MappedGraph() *mmio.MappedGraph { return l.e.mapped }

// Gen returns the generation number (bumped on every install/swap).
func (l *Lease) Gen() uint64 { return l.e.gen }

// Name returns the graph's registry name.
func (l *Lease) Name() string { return l.e.name }

// Ext is a per-generation scratch map for caller caches (e.g. bfsd's
// components cache); it is discarded with the generation on swap.
func (l *Lease) Ext() *sync.Map { return &l.e.ext }

// Release drops the lease's pin, mapping reference, and admission slot.
func (l *Lease) Release() {
	l.once.Do(func() {
		if l.e.mapped != nil {
			l.e.mapped.Release()
		}
		l.r.mu.Lock()
		l.e.leases--
		l.r.mu.Unlock()
		if l.admRelease != nil {
			l.admRelease()
		}
	})
}

// Acquire leases the named graph without admission control (listings,
// readiness, validation). Returns ErrNotFound / ErrLoading / ErrClosed.
func (r *Registry) Acquire(name string) (*Lease, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	e, ok := r.entries[name]
	if !ok {
		if _, inflight := r.loading[name]; inflight {
			return nil, ErrLoading
		}
		return nil, ErrNotFound
	}
	e.leases++
	r.useClock++
	e.lastUse = r.useClock
	// Retain under the lock, while the entry is installed: the base
	// reference is still held (retire drops it only after removal), so
	// this can never race the final Release.
	if e.mapped != nil {
		e.mapped.Retain()
	}
	return &Lease{r: r, e: e}, nil
}

// Begin is the query-path entry: global admission (deadline-aware,
// fair-share) then a lease. The returned Lease's Release also frees
// the admission slot. Errors: *ShedError (Is ErrOverloaded),
// ErrNotFound, ErrLoading, ErrClosed, or the context's error.
func (r *Registry) Begin(ctx context.Context, name string) (*Lease, error) {
	release, err := r.adm.admit(ctx, name)
	if err != nil {
		return nil, err
	}
	l, err := r.Acquire(name)
	if err != nil {
		release()
		return nil, err
	}
	l.admRelease = release
	return l, nil
}

// EstimatedWait is the admission controller's current wait estimate
// (what Retry-After should be derived from).
func (r *Registry) EstimatedWait() time.Duration { return r.adm.EstimatedWait() }

// Info snapshots one entry. ok == false when the name is absent and
// not loading.
func (r *Registry) Info(name string) (GraphInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		return infoLocked(e), true
	}
	if _, inflight := r.loading[name]; inflight {
		return GraphInfo{Name: name, Loading: true}, true
	}
	return GraphInfo{}, false
}

// List snapshots every entry (and in-flight load), sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	out := make([]GraphInfo, 0, len(r.entries)+len(r.loading))
	for _, e := range r.entries {
		out = append(out, infoLocked(e))
	}
	for name := range r.loading {
		if _, ok := r.entries[name]; !ok {
			out = append(out, GraphInfo{Name: name, Loading: true})
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func infoLocked(e *entry) GraphInfo {
	return GraphInfo{
		Name: e.name, Gen: e.gen,
		Vertices: e.csr.NumVertices(), Edges: e.csr.NumEdges(),
		Cost: e.cost, Mapped: e.mapped != nil && e.mapped.Mapped(),
		Leases: e.leases,
	}
}

// LeakedMappings reports how many retired mappings were leaked rather
// than released because their guard had abandoned wedged engines (whose
// zombie goroutines might still read the pages). Auditors use this to
// tell a deliberate leak from a lifecycle bug.
func (r *Registry) LeakedMappings() int64 { return r.leaked.Load() }

// ResidentBytes reports the summed cost of resident graphs.
func (r *Registry) ResidentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resident
}

// Close shuts the registry: new loads/queries fail with ErrClosed,
// resident graphs are retired in eviction (LRU) order — each guard
// drains its in-flight queries before the next closes — and Close
// blocks until every background retire has finished too. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.retiring.Wait()
		return
	}
	r.closed = true
	drain := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		drain = append(drain, e)
	}
	sort.Slice(drain, func(i, j int) bool { return drain[i].lastUse < drain[j].lastUse })
	for _, e := range drain {
		r.removeLocked(e)
	}
	r.mu.Unlock()
	for _, e := range drain {
		r.evictions("close").Inc()
		r.retire(e)
	}
	r.retiring.Wait()
}
