package baseline1

import "sync/atomic"

// Thin wrappers so the benign-race discipline reads like the SPAA'10
// pseudocode while staying defined under the Go memory model (plain
// MOV-class instructions, no RMW — same rule as internal/core).

func loadInt32(p *int32) int32     { return atomic.LoadInt32(p) }
func storeInt32(p *int32, v int32) { atomic.StoreInt32(p, v) }
