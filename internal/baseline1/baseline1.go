// Package baseline1 reimplements the comparison system the reproduced
// paper calls Baseline1: Leiserson & Schardl's PBFS (SPAA 2010), a
// work-efficient parallel BFS whose frontier is a reducer "bag" of
// pennants rather than array queues. Like the original it avoids locks
// and atomic RMW on the algorithm's data (the benign dist race is the
// same one the paper's algorithms use).
//
// The cilk++ runtime is simulated with a fixed pool of p workers
// sharing a channel of pennant tasks: a worker splits oversized
// pennants back into the pool (cilk_spawn) and processes grain-sized
// ones serially, accumulating discoveries into its own private bag —
// exactly the reducer view — with per-worker instrumentation counters
// so runs report a real load-balance profile. The per-layer task
// channel plays the role of cilk's scheduler and is runtime
// scaffolding, not part of the algorithm-data claims (the paper makes
// the same distinction for cilk's own internals).
package baseline1

import (
	"runtime"
	"sync"

	"optibfs/internal/bag"
	"optibfs/internal/core"
	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// grainSize is the serial cutoff for pennant processing; SPAA'10 uses
// 128.
const grainSize = 128

// task is one pennant of 2^k vertices awaiting processing.
type task struct {
	pn *bag.Pennant
	k  int
}

// Run executes PBFS on g from src with opt.Workers-way parallelism.
func Run(g *graph.CSR, src int32, opt core.Options) (*core.Result, error) {
	if g == nil {
		return nil, errNilGraph
	}
	if src < 0 || src >= g.NumVertices() {
		return nil, errBadSource
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &pbfs{
		g:        g,
		workers:  workers,
		dist:     make([]int32, g.NumVertices()),
		counters: stats.NewPerWorker(workers),
		yield:    workers > runtime.GOMAXPROCS(0),
	}
	for i := range p.dist {
		p.dist[i] = graph.Unreached
	}
	p.dist[src] = 0
	if opt.TrackParents {
		p.parent = make([]int32, g.NumVertices())
		for i := range p.parent {
			p.parent[i] = -1
		}
		p.parent[src] = src
	}

	layer := bag.New()
	layer.Insert(src)
	var levels int32
	for !layer.IsEmpty() {
		layer = p.processLayer(layer, levels)
		levels++
	}

	total := stats.Sum(p.counters)
	res := &core.Result{
		Dist:       p.dist,
		Parent:     p.parent,
		Levels:     levels,
		Workers:    workers,
		Counters:   total,
		PerWorker:  p.counters,
		Pops:       total.VerticesPopped,
		LevelSizes: make([]int64, levels),
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		if d := p.dist[v]; d != graph.Unreached {
			res.Reached++
			res.EdgesTraversed += g.OutDegree(v)
			res.LevelSizes[d]++
		}
	}
	return res, nil
}

type pbfs struct {
	g        *graph.CSR
	workers  int
	dist     []int32
	parent   []int32
	counters []stats.PaddedCounters
	yield    bool
}

// processLayer explores every vertex in the layer bag with the worker
// pool and returns the union of the workers' output bags.
func (p *pbfs) processLayer(layer *bag.Bag, level int32) *bag.Bag {
	// The task channel holds pennants yet to be processed. Splitting a
	// pennant pushes one half back, so capacity must cover the worst
	// case: every spine slot split down to grain size.
	tasks := make(chan task, 64+2*layer.Size()/grainSize)
	var pending sync.WaitGroup
	for k := 0; k < bag.MaxBackbone; k++ {
		if layer.Spine[k] != nil {
			pending.Add(1)
			tasks <- task{layer.Spine[k], k}
		}
	}
	// Close the channel once all tasks (including splits) are done.
	go func() {
		pending.Wait()
		close(tasks)
	}()

	outs := make([]*bag.Bag, p.workers)
	var wg sync.WaitGroup
	wg.Add(p.workers)
	for id := 0; id < p.workers; id++ {
		go func(id int) {
			defer wg.Done()
			out := bag.New()
			for t := range tasks {
				p.runTask(id, t, out, tasks, &pending, level)
			}
			outs[id] = out
		}(id)
	}
	wg.Wait()

	next := bag.New()
	for _, out := range outs {
		next.UnionWith(out)
	}
	return next
}

// runTask processes one pennant: splits halves back into the pool
// until grain-sized, then explores serially into the worker's bag.
func (p *pbfs) runTask(id int, t task, out *bag.Bag, tasks chan<- task, pending *sync.WaitGroup, level int32) {
	defer pending.Done()
	for 1<<t.k > grainSize {
		half := bag.Split(t.pn)
		pending.Add(1)
		tasks <- task{half, t.k - 1}
		t.k--
		if p.yield {
			runtime.Gosched()
		}
	}
	c := &p.counters[id].Counters
	next := level + 1
	popped := 0
	t.pn.Walk(func(v int32) {
		c.VerticesPopped++
		nb := p.g.Neighbors(v)
		c.EdgesScanned += int64(len(nb))
		for _, w := range nb {
			// The SPAA'10 benign race: concurrent strands may both see
			// Unreached and both insert w; duplicates in the next
			// layer's bag are explored redundantly but harmlessly.
			if loadInt32(&p.dist[w]) == graph.Unreached {
				storeInt32(&p.dist[w], next)
				if p.parent != nil {
					storeInt32(&p.parent[w], v)
				}
				c.Discovered++
				out.Insert(w)
			}
		}
		if popped++; p.yield && popped%64 == 0 {
			runtime.Gosched()
		}
	})
}

type constError string

func (e constError) Error() string { return string(e) }

const (
	errNilGraph  = constError("baseline1: nil graph")
	errBadSource = constError("baseline1: source out of range")
)
