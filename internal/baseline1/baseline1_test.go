package baseline1

import (
	"fmt"
	"testing"
	"testing/quick"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func check(t *testing.T, g *graph.CSR, src int32, workers int) *core.Result {
	t.Helper()
	res, err := Run(g, src, core.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, src)
	if err := graph.EqualDistances(res.Dist, want); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
		t.Fatal(err)
	}
	if res.Levels != graph.Eccentricity(want)+1 {
		t.Fatalf("levels=%d want %d", res.Levels, graph.Eccentricity(want)+1)
	}
	return res
}

func TestPBFSCorrectness(t *testing.T) {
	graphs := []struct {
		name string
		mk   func() (*graph.CSR, error)
	}{
		{"path", func() (*graph.CSR, error) { return gen.Path(300) }},
		{"star", func() (*graph.CSR, error) { return gen.Star(500) }},
		{"tree", func() (*graph.CSR, error) { return gen.BinaryTree(1023) }},
		{"grid", func() (*graph.CSR, error) { return gen.Grid2D(20, 25, false) }},
		{"rmat", func() (*graph.CSR, error) { return gen.Graph500RMAT(4096, 32768, 3, gen.Options{}) }},
		{"chunglu", func() (*graph.CSR, error) { return gen.ChungLu(2048, 16384, 2.2, 5, gen.Options{}) }},
		{"complete", func() (*graph.CSR, error) { return gen.Complete(60) }},
	}
	for _, tc := range graphs {
		g, err := tc.mk()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/p%d", tc.name, workers), func(t *testing.T) {
				check(t, g, 0, workers)
			})
		}
	}
}

func TestPBFSSingleVertex(t *testing.T) {
	g, err := graph.FromEdges(1, nil, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, g, 0, 4)
	if res.Reached != 1 {
		t.Fatalf("reached %d", res.Reached)
	}
}

func TestPBFSInputValidation(t *testing.T) {
	g, _ := gen.Path(5)
	if _, err := Run(nil, 0, core.Options{}); err == nil {
		t.Fatal("accepted nil graph")
	}
	if _, err := Run(g, 9, core.Options{}); err == nil {
		t.Fatal("accepted bad source")
	}
	if _, err := Run(g, -1, core.Options{}); err == nil {
		t.Fatal("accepted negative source")
	}
}

func TestPBFSCountsWork(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 16000, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, g, 0, 4)
	if res.Counters.EdgesScanned == 0 || res.Counters.VerticesPopped == 0 {
		t.Fatalf("no work recorded: %+v", res.Counters)
	}
	if res.Pops < res.Reached {
		t.Fatalf("pops %d < reached %d", res.Pops, res.Reached)
	}
}

func TestPBFSRepeatedRuns(t *testing.T) {
	g, err := gen.ChungLu(4096, 32768, 2.1, 9, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for rep := 0; rep < 8; rep++ {
		res, err := Run(g, 0, core.Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
	}
}

func TestPBFSPerWorkerCounters(t *testing.T) {
	g, err := gen.ErdosRenyi(8000, 64000, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, g, 0, 4)
	if len(res.PerWorker) != 4 {
		t.Fatalf("PerWorker len %d", len(res.PerWorker))
	}
	busy := 0
	for i := range res.PerWorker {
		if res.PerWorker[i].EdgesScanned > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d workers did any work", busy)
	}
	var sum int64
	for i := range res.PerWorker {
		sum += res.PerWorker[i].VerticesPopped
	}
	if sum != res.Counters.VerticesPopped {
		t.Fatalf("per-worker pops %d != total %d", sum, res.Counters.VerticesPopped)
	}
}

func TestPBFSParents(t *testing.T) {
	g, err := gen.ChungLu(2048, 16384, 2.2, 4, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, core.Options{Workers: 4, TrackParents: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.ValidateParents(g, 0, res.Dist, res.Parent); err != nil {
		t.Fatal(err)
	}
}

func TestPBFSLevelSizes(t *testing.T) {
	g, err := gen.BinaryTree(15)
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, g, 0, 2)
	want := []int64{1, 2, 4, 8}
	if len(res.LevelSizes) != len(want) {
		t.Fatalf("LevelSizes %v", res.LevelSizes)
	}
	for i, w := range want {
		if res.LevelSizes[i] != w {
			t.Fatalf("level %d: %d want %d", i, res.LevelSizes[i], w)
		}
	}
}

func TestPropertyPBFSCorrect(t *testing.T) {
	f := func(seed uint64) bool {
		n := int32(2 + seed%200)
		g, err := gen.Graph500RMAT(n, int64(seed%1500), seed, gen.Options{})
		if err != nil {
			return false
		}
		src := int32(seed % uint64(n))
		res, err := Run(g, src, core.Options{Workers: 1 + int(seed%6)})
		if err != nil {
			return false
		}
		return graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, src)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
