package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"optibfs/internal/core"
)

// Chrome trace_event export: renders a run's dispatch events
// (Result.Events) and level timeline (Result.LevelStats) as the JSON
// object format chrome://tracing and Perfetto load. Dispatch events
// carry no hardware timestamps — recording clock reads per steal would
// perturb the protocols being observed — so the exporter reconstructs
// time coarsely: each BFS level spans its measured wall time (or a
// fixed nominal span when no timeline was recorded), and a worker's
// events are spread evenly inside the level they were recorded in.
// Within a (worker, level) group the event *order* is exact; the
// sub-level spacing is presentational.

// TraceMeta labels a trace export.
type TraceMeta struct {
	// Algo is the algorithm name shown as the process label.
	Algo string
	// Source is the BFS source vertex.
	Source int32
}

// nominalLevelSpanMicros is the synthetic per-level duration used when
// the run carried no level timeline.
const nominalLevelSpanMicros = 1000.0

// traceEvent is one entry of the trace_event JSON array. Field order is
// fixed by the struct, so the export is deterministic and
// golden-testable.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level trace_event JSON object.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the run's trace as Chrome trace_event JSON.
// The result must come from a run with Options.TraceCapacity set (and
// ideally Options.LevelTimeline, for real per-level timing); without
// events there is nothing to export and an error is returned.
func WriteChromeTrace(w io.Writer, meta TraceMeta, res *core.Result) error {
	if res == nil || res.Events == nil {
		return fmt.Errorf("obs: result has no dispatch events (set Options.TraceCapacity)")
	}
	pid := 1
	levelTid := len(res.Events) // the per-level track sits after the workers
	var evs []traceEvent

	// Metadata: name the process and every thread (sort_index keeps the
	// level track above the workers in the viewer).
	evs = append(evs, traceEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": fmt.Sprintf("optibfs %s src=%d", meta.Algo, meta.Source)},
	})
	evs = append(evs, traceEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: levelTid,
		Args: map[string]any{"name": "levels"},
	})
	for w := range res.Events {
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: w,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
		})
	}

	// Level spans: start time and duration per BFS level, in µs.
	starts, spans := levelSpans(res)

	for i, ls := range res.LevelStats {
		evs = append(evs, traceEvent{
			Name: fmt.Sprintf("level %d", ls.Level), Ph: "X",
			Ts: starts[i], Dur: spans[i], Pid: pid, Tid: levelTid,
			Args: map[string]any{
				"frontier":      ls.Frontier,
				"pops":          ls.Pops,
				"duplicates":    ls.Duplicates,
				"discovered":    ls.Discovered,
				"edges_scanned": ls.EdgesScanned,
				"fetches":       ls.Fetches,
				"steal_ok":      ls.StealOK,
				"steal_failed":  ls.StealFailed,
				"wall_ns":       ls.WallNanos,
			},
		})
	}

	// Dispatch events: spread each worker's per-level group evenly
	// across the level span, preserving recorded order.
	for w, events := range res.Events {
		for i := 0; i < len(events); {
			j := i
			for j < len(events) && events[j].Level == events[i].Level {
				j++
			}
			lvl := int(events[i].Level)
			start, span := nominalSpan(lvl, starts, spans)
			k := float64(j - i)
			for n, e := range events[i:j] {
				args := map[string]any{"value": e.Value}
				if e.Victim >= 0 {
					args["victim"] = e.Victim
				}
				evs = append(evs, traceEvent{
					Name: e.Kind.String(), Ph: "i",
					Ts:  start + span*(float64(n)+0.5)/k,
					Pid: pid, Tid: w, S: "t", Args: args,
				})
			}
			i = j
		}
		// Flag truncated worker timelines: a falsely quiet tail is
		// exactly what the drop counter exists to expose.
		if res.EventsDropped != nil && res.EventsDropped[w] > 0 {
			end := traceEnd(starts, spans, int(res.Levels))
			evs = append(evs, traceEvent{
				Name: "events-dropped", Ph: "i",
				Ts: end, Pid: pid, Tid: w, S: "t",
				Args: map[string]any{"count": res.EventsDropped[w]},
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// levelSpans derives per-level [start, duration] pairs in microseconds
// from the timeline, when present.
func levelSpans(res *core.Result) (starts, spans []float64) {
	starts = make([]float64, len(res.LevelStats))
	spans = make([]float64, len(res.LevelStats))
	var t float64
	for i, ls := range res.LevelStats {
		d := float64(ls.WallNanos) / 1e3
		if d <= 0 {
			d = 1 // a level never renders as zero-width
		}
		starts[i], spans[i] = t, d
		t += d
	}
	return starts, spans
}

// nominalSpan returns level lvl's span, falling back to fixed-width
// synthetic levels when the run carried no timeline (or the event's
// level is beyond it, e.g. after a cancel).
func nominalSpan(lvl int, starts, spans []float64) (start, span float64) {
	if lvl >= 0 && lvl < len(starts) {
		return starts[lvl], spans[lvl]
	}
	return float64(lvl) * nominalLevelSpanMicros, nominalLevelSpanMicros
}

// traceEnd returns the timestamp after the last level.
func traceEnd(starts, spans []float64, levels int) float64 {
	if n := len(starts); n > 0 {
		return starts[n-1] + spans[n-1]
	}
	return float64(levels) * nominalLevelSpanMicros
}
