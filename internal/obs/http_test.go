package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/gen"
)

// get fetches a URL from the live server and returns the body.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestServeEndpoints starts a live server on an ephemeral port and
// checks every mounted route answers.
func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Gauge("optibfs_up").Set(1)
	PublishExpvar("optibfs_test_serve", r)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	metrics := get(t, base+"/metrics")
	if !strings.Contains(metrics, "optibfs_up 1\n") {
		t.Fatalf("/metrics missing optibfs_up gauge:\n%s", metrics)
	}
	vars := get(t, base+"/debug/vars")
	if !strings.Contains(vars, `"optibfs_up":1`) {
		t.Fatalf("/debug/vars missing registry dump:\n%s", vars)
	}
	if idx := get(t, base+"/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%.200s", idx)
	}
	get(t, base+"/debug/pprof/goroutine?debug=1")
}

// TestLiveExpositionDuringRuns is the -race witness for the layer's
// core claim: scraping the endpoint while engines run and publish must
// be data-race-free. One goroutine runs a pooled engine back-to-back,
// publishing counters and timings after every run exactly the way the
// harness does; scrapers hammer /metrics and /debug/vars concurrently.
func TestLiveExpositionDuringRuns(t *testing.T) {
	g, err := gen.LayeredRandom(2000, 12000, 12, 42, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.Gauge("optibfs_up").Set(1)
	PublishExpvar("optibfs_test_live", r)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	e, err := core.NewEngine(g, core.BFSWSL, core.Options{
		Workers: 4, Seed: 1, PersistentWorkers: true, LevelTimeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const runs = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		algo := L("algo", string(core.BFSWSL))
		for i := 0; i < runs; i++ {
			start := time.Now()
			res, err := e.Run(0)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			r.Counter("optibfs_runs_total", algo).Inc()
			r.Histogram("optibfs_run_seconds", nil, algo).Observe(time.Since(start).Seconds())
			AddCounters(r, "optibfs_", &res.Counters, algo)
			r.Gauge("optibfs_last_levels", algo).Set(float64(res.Levels))
		}
	}()

	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			url := base + "/metrics"
			if s%2 == 1 {
				url = base + "/debug/vars"
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				get(t, url)
			}
		}(s)
	}
	<-done
	wg.Wait()

	body := get(t, base+"/metrics")
	want := fmt.Sprintf(`optibfs_runs_total{algo="BFS_WSL"} %d`, runs)
	if !strings.Contains(body, want) {
		t.Fatalf("final scrape missing %q:\n%s", want, body)
	}
	if !strings.Contains(body, `optibfs_edges_scanned_total{algo="BFS_WSL"}`) {
		t.Fatalf("final scrape missing bridged counters:\n%s", body)
	}
}

// TestServeHandlerAndShutdown covers the daemon-facing lifecycle: a
// custom handler mounted alongside the exposition mux, a graceful
// Shutdown that finishes an in-flight request, and the nil-safety of
// CloseGracefully.
func TestServeHandlerAndShutdown(t *testing.T) {
	r := New()
	release := make(chan struct{})
	entered := make(chan struct{})
	mux := NewServeMux(r)
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "done")
	})
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan string, 1)
	go func() {
		resp, gerr := http.Get("http://" + srv.Addr + "/slow")
		if gerr != nil {
			got <- "error: " + gerr.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- string(b)
	}()
	<-entered

	// Shutdown must wait for the in-flight /slow request.
	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(ctx) }()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if body := <-got; body != "done" {
		t.Fatalf("in-flight request got %q, want full response", body)
	}

	// The listener is gone: new connections fail.
	if _, err := http.Get("http://" + srv.Addr + "/metrics"); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}

	// Nil-safety and double-drain safety.
	CloseGracefully(nil, time.Second)
	CloseGracefully(srv, time.Second)
}
