package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files from the current exporters.
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// promTestRegistry builds a registry exercising all three kinds, labels,
// escaping, and help text.
func promTestRegistry() *Registry {
	r := New()
	r.SetHelp("optibfs_run_seconds", "BFS run wall time in seconds.")
	r.SetHelp("optibfs_runs_total", "Completed BFS runs.")
	h := r.Histogram("optibfs_run_seconds", []float64{0.001, 0.01, 0.1}, L("algo", "BFS_WS"))
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	r.Counter("optibfs_runs_total", L("algo", "BFS_C")).Add(2)
	r.Counter("optibfs_runs_total", L("algo", "BFS_WS")).Add(5)
	r.Counter("optibfs_events_dropped_total", L("note", `line1"quoted"`+"\nline2")).Add(7)
	r.Gauge("optibfs_up").Set(1)
	r.Gauge("optibfs_last_teps", L("algo", "BFS_WS")).Set(1.25e8)
	return r
}

// TestWritePromGolden pins the full exposition byte-for-byte: family
// grouping, HELP/TYPE lines, sorted series, cumulative buckets,
// escaping, and number formatting.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteProm(&buf, promTestRegistry()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "prom.golden", buf.Bytes())
}

// TestWritePromDeterministic renders the same registry twice; the
// golden test is meaningless if the ordering can wobble.
func TestWritePromDeterministic(t *testing.T) {
	r := promTestRegistry()
	var a, b bytes.Buffer
	if err := WriteProm(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteProm(&b, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of one registry differ")
	}
}
