package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"optibfs/internal/core"
)

// traceTestResult builds a small synthetic run: two workers, two
// levels, one drop on worker 1 — enough to exercise level bars, event
// placement, victim args, and the truncation marker.
func traceTestResult() *core.Result {
	return &core.Result{
		Levels: 2,
		Events: [][]core.Event{
			{
				{Level: 0, Kind: core.EventFetch, Worker: 0, Victim: -1, Value: 64},
				{Level: 1, Kind: core.EventFetch, Worker: 0, Victim: -1, Value: 32},
				{Level: 1, Kind: core.EventStealOK, Worker: 0, Victim: 1, Value: 16},
			},
			{
				{Level: 1, Kind: core.EventStealVictimIdle, Worker: 1, Victim: 0, Value: 0},
			},
		},
		EventsDropped: []int64{0, 3},
		LevelStats: []core.LevelStat{
			{Level: 0, Frontier: 1, Pops: 1, EdgesScanned: 64, Fetches: 1, WallNanos: 2_000_000},
			{Level: 1, Frontier: 64, Pops: 64, Duplicates: 2, Discovered: 10,
				EdgesScanned: 128, Fetches: 1, StealOK: 1, StealFailed: 1, WallNanos: 1_000_000},
		},
	}
}

// TestWriteChromeTraceGolden pins the exported JSON byte-for-byte.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, TraceMeta{Algo: "BFS_WS", Source: 7}, traceTestResult())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden.json", buf.Bytes())
}

// TestWriteChromeTraceValidJSON checks the export parses as the
// trace_event object format and its events are structurally sound
// (known phases, events inside their level spans, the drop marker
// present for the truncated worker).
func TestWriteChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	res := traceTestResult()
	if err := WriteChromeTrace(&buf, TraceMeta{Algo: "BFS_WS", Source: 7}, res); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", file.DisplayTimeUnit)
	}
	var levels, instants, dropMarks int
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
		case "X":
			levels++
			if e.Dur <= 0 {
				t.Fatalf("level event %q with non-positive duration %v", e.Name, e.Dur)
			}
		case "i":
			instants++
			if e.Name == "events-dropped" {
				dropMarks++
				if e.Tid != 1 {
					t.Fatalf("drop marker on tid %d, want worker 1", e.Tid)
				}
				if e.Args["count"].(float64) != 3 {
					t.Fatalf("drop marker count %v, want 3", e.Args["count"])
				}
			}
		default:
			t.Fatalf("unknown phase %q in event %q", e.Ph, e.Name)
		}
	}
	if levels != len(res.LevelStats) {
		t.Fatalf("%d level bars, want %d", levels, len(res.LevelStats))
	}
	wantInstants := len(res.Events[0]) + len(res.Events[1]) + 1 // +1 drop marker
	if instants != wantInstants {
		t.Fatalf("%d instant events, want %d", instants, wantInstants)
	}
	if dropMarks != 1 {
		t.Fatalf("%d drop markers, want 1", dropMarks)
	}
}

// TestWriteChromeTraceNoEvents pins the error path: a result from a run
// without TraceCapacity has nothing to export.
func TestWriteChromeTraceNoEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, TraceMeta{}, &core.Result{}); err == nil {
		t.Fatal("no error for a result without events")
	}
}

// TestWriteChromeTraceNoTimeline checks the synthetic fixed-width level
// fallback when the run recorded events but no timeline.
func TestWriteChromeTraceNoTimeline(t *testing.T) {
	res := traceTestResult()
	res.LevelStats = nil
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, TraceMeta{Algo: "BFS_C"}, res); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("fallback export is not valid JSON: %v", err)
	}
}
