package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"optibfs/internal/stats"
)

// setField writes v into the index-th field of c by reflection, so the
// bridge test stays in sync with the field list the bridge itself uses.
func setField(t *testing.T, c *stats.Counters, index int, v int64) {
	t.Helper()
	reflect.ValueOf(c).Elem().Field(index).SetInt(v)
}

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("runs_total")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value %d, want 5", got)
	}
	if r.Counter("runs_total") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("up")
	g.Set(1)
	g.Add(0.5)
	g.Add(-2)
	if got := g.Value(); got != -0.5 {
		t.Fatalf("gauge value %v, want -0.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("run_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
	// One sample per bucket, including the +Inf overflow slot.
	for i, c := range h.counts {
		if c != 1 {
			t.Fatalf("bucket %d count %d, want 1", i, c)
		}
	}
	// A boundary value lands in its own bucket (le is inclusive).
	h.Observe(0.01)
	if h.counts[0] != 2 {
		t.Fatalf("boundary sample not in first bucket: %v", h.counts)
	}
}

func TestLabelOrderIrrelevant(t *testing.T) {
	r := New()
	a := r.Counter("x", L("b", "2"), L("a", "1"))
	b := r.Counter("x", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order created distinct series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("series not shared")
	}
}

func TestLabelEscaping(t *testing.T) {
	got := seriesKey("m", []Label{{Key: "k", Value: "a\"b\\c\nd"}})
	want := `m{k="a\"b\\c\nd"}`
	if got != want {
		t.Fatalf("seriesKey = %q, want %q", got, want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("gauge lookup of a counter series did not panic")
		}
	}()
	r.Gauge("m")
}

func TestConcurrentRegistryAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", L("w", "shared")).Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", L("w", "shared")).Value(); got != 8000 {
		t.Fatalf("counter %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count %d, want 8000", got)
	}
}

// TestSnake pins the field-name conversion, acronyms included — these
// become public metric names, so a silent change would break dashboards.
func TestSnake(t *testing.T) {
	cases := map[string]string{
		"VerticesPopped": "vertices_popped",
		"EdgesScanned":   "edges_scanned",
		"AtomicRMW":      "atomic_rmw",
		"TopDownLevels":  "top_down_levels",
		"StealTooSmall":  "steal_too_small",
		"HotChunks":      "hot_chunks",
	}
	for in, want := range cases {
		if got := snake(in); got != want {
			t.Fatalf("snake(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestAddCountersCoversEveryField fills every int64 field of
// stats.Counters with a distinct value and checks each one lands in its
// own registry series — the reflection bridge must not skip fields.
func TestAddCountersCoversEveryField(t *testing.T) {
	var c stats.Counters
	fs := fields()
	if len(fs) == 0 {
		t.Fatal("no counter fields discovered")
	}
	// Distinct nonzero value per field via the same reflection indices.
	for i, f := range fs {
		setField(t, &c, f.index, int64(i+1))
	}
	r := New()
	AddCounters(r, "optibfs_", &c, L("algo", "BFS_WS"))
	AddCounters(r, "optibfs_", &c, L("algo", "BFS_WS")) // twice: accumulation
	for i, f := range fs {
		name := "optibfs_" + f.metric + "_total"
		if !strings.HasSuffix(name, "_total") || strings.ContainsAny(name, "ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
			t.Fatalf("bad metric name %q", name)
		}
		got := r.Counter(name, L("algo", "BFS_WS")).Value()
		if want := int64(2 * (i + 1)); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestAddCountersSkipsZeros checks zero fields create no series (keeps
// the exposition free of dead series for counters an algorithm never
// touches).
func TestAddCountersSkipsZeros(t *testing.T) {
	r := New()
	c := stats.Counters{Fetches: 3}
	AddCounters(r, "optibfs_", &c)
	if n := len(r.snapshot()); n != 1 {
		t.Fatalf("%d series registered, want 1 (only fetches)", n)
	}
	if got := r.Counter("optibfs_fetches_total").Value(); got != 3 {
		t.Fatalf("fetches %d, want 3", got)
	}
}
