package obs

import (
	"expvar"
	"sync/atomic"
)

// PublishExpvar exposes the registry under one expvar name as a map of
// series key → value (counters and gauges as numbers, histograms as
// {sum, count}). The closure re-reads the registry on every /debug/vars
// hit, so series registered after publication appear automatically.
// Publishing an already-published name is a no-op (expvar panics on
// duplicates; tests and repeated servers should not).
func PublishExpvar(name string, r *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		out := map[string]any{}
		for _, m := range r.snapshot() {
			key := seriesKey(m.name, m.labels)
			switch m.kind {
			case KindCounter:
				out[key] = m.c.Value()
			case KindGauge:
				out[key] = m.g.Value()
			case KindHistogram:
				buckets := make(map[string]int64, len(m.h.bounds)+1)
				var cum int64
				for i, ub := range m.h.bounds {
					cum += atomic.LoadInt64(&m.h.counts[i])
					buckets[formatFloat(ub)] = cum
				}
				cum += atomic.LoadInt64(&m.h.counts[len(m.h.bounds)])
				buckets["+Inf"] = cum
				out[key] = map[string]any{
					"sum":     m.h.Sum(),
					"count":   m.h.Count(),
					"buckets": buckets,
				}
			}
		}
		return out
	}))
}
