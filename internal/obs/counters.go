package obs

import (
	"reflect"
	"sync"

	"optibfs/internal/stats"
)

// The stats.Counters bridge: every int64 field of the per-run counter
// bundle becomes a registry counter named
// <prefix><snake_case_field>_total. The field list is discovered by
// reflection once, so a counter added to stats.Counters shows up in the
// exposition without this package changing — the same no-silent-drift
// property the PaddedCounters padding now has.

// counterField is one reflected stats.Counters field.
type counterField struct {
	index  int
	metric string // snake_case field name
}

var (
	counterFieldsOnce sync.Once
	counterFields     []counterField
)

// fields enumerates the int64 fields of stats.Counters (cached).
func fields() []counterField {
	counterFieldsOnce.Do(func() {
		t := reflect.TypeOf(stats.Counters{})
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.Type.Kind() != reflect.Int64 {
				continue
			}
			counterFields = append(counterFields, counterField{index: i, metric: snake(f.Name)})
		}
	})
	return counterFields
}

// snake converts a Go field name to snake_case, keeping acronym runs
// together: VerticesPopped → vertices_popped, AtomicRMW → atomic_rmw.
func snake(s string) string {
	b := make([]byte, 0, len(s)+4)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			prevLower := i > 0 && s[i-1] >= 'a' && s[i-1] <= 'z'
			nextLower := i+1 < len(s) && s[i+1] >= 'a' && s[i+1] <= 'z'
			if i > 0 && (prevLower || (isUpper(s[i-1]) && nextLower)) {
				b = append(b, '_')
			}
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	return string(b)
}

// isUpper reports whether c is an ASCII uppercase letter.
func isUpper(c byte) bool { return c >= 'A' && c <= 'Z' }

// AddCounters accumulates one run's stats.Counters into the registry:
// each field is added to the counter series
// "<prefix><snake_field>_total" with the given labels. Per-run counters
// are already deltas (the engine resets them every run), so calling
// this once per run yields correct monotone totals. Called at run
// boundaries only — the reflection walk is 21 field loads, far off any
// hot path.
func AddCounters(r *Registry, prefix string, c *stats.Counters, labels ...Label) {
	v := reflect.ValueOf(c).Elem()
	for _, f := range fields() {
		if n := v.Field(f.index).Int(); n != 0 {
			r.Counter(prefix+f.metric+"_total", labels...).Add(n)
		}
	}
}
