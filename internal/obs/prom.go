package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each preceded by its
// HELP (when set) and TYPE lines, series within a family sorted by
// label set. The ordering is total and deterministic, so the output is
// golden-testable.
func WriteProm(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	var lastFamily string
	for _, m := range r.snapshot() {
		if m.name != lastFamily {
			lastFamily = m.name
			if help := r.helpFor(m.name); help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(m.name)
				bw.WriteByte(' ')
				bw.WriteString(strings.ReplaceAll(help, "\n", " "))
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(m.kind.String())
			bw.WriteByte('\n')
		}
		switch m.kind {
		case KindCounter:
			writeSeries(bw, m.name, m.labels, nil, formatInt(m.c.Value()))
		case KindGauge:
			writeSeries(bw, m.name, m.labels, nil, formatFloat(m.g.Value()))
		case KindHistogram:
			h := m.h
			var cum int64
			for i, ub := range h.bounds {
				cum += atomic.LoadInt64(&h.counts[i])
				writeSeries(bw, m.name+"_bucket", m.labels,
					[]Label{{Key: "le", Value: formatFloat(ub)}}, formatInt(cum))
			}
			cum += atomic.LoadInt64(&h.counts[len(h.bounds)])
			writeSeries(bw, m.name+"_bucket", m.labels,
				[]Label{{Key: "le", Value: "+Inf"}}, formatInt(cum))
			writeSeries(bw, m.name+"_sum", m.labels, nil, formatFloat(h.Sum()))
			writeSeries(bw, m.name+"_count", m.labels, nil, formatInt(h.Count()))
		}
	}
	return bw.Flush()
}

// writeSeries emits one "name{labels} value" line. extra labels (the
// histogram "le") are appended after the series' own labels.
func writeSeries(bw *bufio.Writer, name string, labels, extra []Label, value string) {
	bw.WriteString(name)
	if len(labels)+len(extra) > 0 {
		bw.WriteByte('{')
		n := 0
		for _, l := range labels {
			if n > 0 {
				bw.WriteByte(',')
			}
			n++
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		for _, l := range extra {
			if n > 0 {
				bw.WriteByte(',')
			}
			n++
			bw.WriteString(l.Key)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// formatInt renders an integer sample value.
func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatFloat renders a float sample value the way Prometheus clients
// do: shortest round-trip representation, with NaN/Inf spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
