// Package obs is the repository's observability layer: a lightweight
// metrics registry (counters, gauges, histograms) with Prometheus text
// and expvar exposition, a Chrome trace_event exporter for the engines'
// dispatch traces and level timelines, and a live HTTP exposition
// endpoint with pprof.
//
// Design: the BFS hot loops are never touched. The engines keep writing
// their unsynchronized per-worker stats.Counters exactly as before;
// callers (harness, soak, cmd tools) publish into a Registry only at
// run or cell boundaries, where the level/gate barriers already order
// the counter writes. The Registry itself is safe for concurrent use —
// every metric value is a single atomic word — so a scrape racing a
// publish observes a consistent, if momentarily stale, snapshot.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" dimension attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind classifies a metric family.
type Kind int

// Metric kinds, in exposition order.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

// String names the kind as Prometheus TYPE text.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonic int64 metric. Safe for concurrent use.
type Counter struct {
	v int64
}

// Inc adds 1.
func (c *Counter) Inc() { atomic.AddInt64(&c.v, 1) }

// Add adds n (negative deltas are ignored to keep the series monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		atomic.AddInt64(&c.v, n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Gauge is a float64 metric that may move in both directions. Safe for
// concurrent use.
type Gauge struct {
	bits uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { atomic.StoreUint64(&g.bits, math.Float64bits(v)) }

// Add adds d (a CAS loop; gauges are updated at run boundaries, so
// contention is negligible).
func (g *Gauge) Add(d float64) {
	for {
		old := atomic.LoadUint64(&g.bits)
		next := math.Float64bits(math.Float64frombits(old) + d)
		if atomic.CompareAndSwapUint64(&g.bits, old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&g.bits)) }

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// exposition time only; Observe touches exactly one bucket counter plus
// the sum and count words.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implied
	counts []int64   // len(bounds)+1, last is the overflow bucket
	sum    Gauge
	count  int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddInt64(&h.counts[i], 1)
	h.sum.Add(v)
	atomic.AddInt64(&h.count, 1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.count) }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// DefSecondsBuckets is the default bucket ladder for run durations in
// seconds (sub-millisecond searches through multi-second full-scale runs).
var DefSecondsBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// metric is one registered series: a family name + label set bound to
// exactly one of the three value types.
type metric struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metric series. The zero value is not usable;
// call New. All methods are safe for concurrent use; the get-or-create
// accessors take a mutex, so callers on hot paths should hold on to the
// returned handle rather than re-resolving it per update.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	help    map[string]string
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
	}
}

// SetHelp attaches HELP text to a metric family name.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// seriesKey renders the identity of a series: family name plus the
// label set sorted by key.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// sortLabels returns labels sorted by key (copying; callers' slices are
// not mutated).
func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup returns the series, creating it with build on first use. It
// panics if the name+labels are already registered with another kind —
// that is a programming error, like expvar's duplicate Publish.
func (r *Registry) lookup(name string, labels []Label, kind Kind, build func() *metric) *metric {
	labels = sortLabels(labels)
	key := seriesKey(name, labels)
	r.mu.RLock()
	m := r.metrics[key]
	r.mu.RUnlock()
	if m == nil {
		r.mu.Lock()
		if m = r.metrics[key]; m == nil {
			m = build()
			m.name = name
			m.labels = labels
			m.kind = kind
			r.metrics[key] = m
		}
		r.mu.Unlock()
	}
	if m.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", key, m.kind, kind))
	}
	return m
}

// Counter returns the counter series for name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, KindCounter, func() *metric {
		return &metric{c: &Counter{}}
	}).c
}

// Gauge returns the gauge series for name+labels, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, KindGauge, func() *metric {
		return &metric{g: &Gauge{}}
	}).g
}

// Histogram returns the histogram series for name+labels, creating it
// on first use with the given ascending upper bounds (nil selects
// DefSecondsBuckets). Bounds are fixed at creation; later calls ignore
// the argument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return r.lookup(name, labels, KindHistogram, func() *metric {
		if bounds == nil {
			bounds = DefSecondsBuckets
		}
		bs := append([]float64(nil), bounds...)
		return &metric{h: &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}}
	}).h
}

// snapshot returns every registered series sorted by family name then
// series key — the stable order both expositions render in.
func (r *Registry) snapshot() []*metric {
	r.mu.RLock()
	out := make([]*metric, 0, len(r.metrics))
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, r.metrics[k])
	}
	r.mu.RUnlock()
	// Group series of one family together even when label-set ordering
	// interleaves them with other families (e.g. "a{z=1}" > "a_b").
	sort.SliceStable(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// helpFor returns the HELP text for a family, if set.
func (r *Registry) helpFor(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}
