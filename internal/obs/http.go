package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Live exposition: a tiny stdlib-only HTTP server mounting the
// Prometheus text endpoint, expvar, and pprof. It deliberately uses
// explicit handler registrations on a private mux instead of importing
// net/http/pprof and expvar for their DefaultServeMux side effects —
// the tools decide what they expose, and tests can run several servers
// in one process.

// NewServeMux returns a mux serving the registry:
//
//	/metrics           Prometheus text exposition (format 0.0.4)
//	/debug/vars        expvar JSON (includes the registry when published)
//	/debug/pprof/...   runtime profiles; goroutine labels set by the
//	                   engines (algo, worker, level-phase) appear in
//	                   CPU and goroutine profiles
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, r)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts the exposition endpoint on addr (e.g. "localhost:9090"
// or ":0" for an ephemeral port) and returns once the listener is
// bound; requests are served on a background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewServeMux(r)}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	return s.srv.Close()
}
