package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Live exposition: a tiny stdlib-only HTTP server mounting the
// Prometheus text endpoint, expvar, and pprof. It deliberately uses
// explicit handler registrations on a private mux instead of importing
// net/http/pprof and expvar for their DefaultServeMux side effects —
// the tools decide what they expose, and tests can run several servers
// in one process.

// NewServeMux returns a mux serving the registry:
//
//	/metrics           Prometheus text exposition (format 0.0.4)
//	/debug/vars        expvar JSON (includes the registry when published)
//	/debug/pprof/...   runtime profiles; goroutine labels set by the
//	                   engines (algo, worker, level-phase) appear in
//	                   CPU and goroutine profiles
func NewServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, r)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve starts the exposition endpoint on addr (e.g. "localhost:9090"
// or ":0" for an ephemeral port) and returns once the listener is
// bound; requests are served on a background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, NewServeMux(r))
}

// ServeHandler starts an HTTP server for an arbitrary handler on addr,
// returning once the listener is bound. It exists so daemons that mount
// their API alongside the exposition mux (cmd/bfsd) share one listener
// lifecycle with the plain metrics endpoints of the batch tools.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}, nil
}

// Close stops the server immediately and releases the listener;
// in-flight requests are dropped. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	return s.srv.Close()
}

// Shutdown gracefully drains the server: the listener closes at once
// (a scraper polling /metrics can no longer connect) and in-flight
// requests run to completion or until ctx expires, whichever is first.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// CloseGracefully drains s within timeout, falling back to an
// immediate Close if the drain cannot finish. Nil-safe, so tools can
// call it unconditionally on their exit paths whether or not a metrics
// endpoint was requested. This must run BEFORE os.Exit — deferred
// Closes never execute across os.Exit, which silently drops a scrape
// in flight.
func CloseGracefully(s *Server, timeout time.Duration) {
	if s == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		s.Close()
	}
}
