package chaos

import (
	"bytes"
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/gen"
)

// TestInjectorDirectionFlipsHybridRun drives one hybrid run under the
// direction-flip profile and checks the controller path end to end:
// decisions get inverted (the flip counter moves), the run still
// matches the oracle, and the hybrid-relaxed audit stays clean.
func TestInjectorDirectionFlipsHybridRun(t *testing.T) {
	g, err := gen.Graph500RMAT(2048, 16384, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof := mustProfile(t, "direction-flip")
	var flipped bool
	for seed := uint64(1); seed <= 8; seed++ {
		inj := NewInjector(prof, seed, 4)
		res, err := core.Run(g, 0, core.BFSWSL, core.Options{
			Workers: 4, Hybrid: true, TrackParents: true, Chaos: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		if vs := Audit(g, 0, nil, res); len(vs) != 0 {
			t.Fatalf("seed %d: audit violations under forced flips: %v", seed, vs)
		}
		if vs := levelViolations(inj); len(vs) != 0 {
			t.Fatalf("seed %d: level audit violations: %v", seed, vs)
		}
		flipped = flipped || inj.DirectionFlips() > 0
	}
	if !flipped {
		t.Fatal("direction-flip profile never inverted a decision across 8 seeds")
	}
}

// TestInjectorDirectionFlipStreamDeterministic pins the replay
// property: same (profile, seed) ⇒ same flip schedule, independent of
// what the heuristics chose.
func TestInjectorDirectionFlipStreamDeterministic(t *testing.T) {
	prof := mustProfile(t, "direction-flip")
	// Feed one injector all-false decisions and another all-true: the
	// outputs then read directly as each stream's flip schedule, which
	// must be identical for the same (profile, seed).
	schedule := func(in bool) []bool {
		inj := NewInjector(prof, 42, 4)
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.DirectionChoice(int32(i), in) != in
		}
		return out
	}
	a, b := schedule(false), schedule(true)
	var flips int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flip schedule diverged at decision %d: %v vs %v", i, a, b)
		}
		if a[i] {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("64 decisions at FlipProb 0.35 flipped nothing")
	}
}

// TestSoakHybridPinned is the hybrid soak dimension: every parallel
// lockfree family, classic and sharded, with Hybrid pinned on under
// the direction-flip profile — bottom-up levels, representation
// conversions, and forced switches all crossing the injector's benign
// jitter — and the differential audit must stay clean.
func TestSoakHybridPinned(t *testing.T) {
	graphs := []GraphSpec{
		{Kind: "chunglu", N: 1024, M: 8192, Gamma: 2.0, Seed: 2},
		{Kind: "complete", N: 256, Seed: 5},
	}
	if testing.Short() {
		graphs = graphs[:1]
	}
	for _, shards := range []int{1, 2} {
		var buf bytes.Buffer
		rep, err := Soak(SoakConfig{
			Graphs:     graphs,
			Profiles:   []Profile{mustProfile(t, "direction-flip")},
			Seeds:      2,
			Workers:    4,
			Shards:     shards,
			Hybrid:     true,
			Log:        &buf,
			Algorithms: []core.Algorithm{core.BFSWL, core.BFSWSL, core.BFSEL},
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rep.Failures != 0 {
			t.Fatalf("shards=%d hybrid sweep broke invariants:\n%s", shards, buf.String())
		}
		if rep.Runs == 0 {
			t.Fatalf("shards=%d: no runs", shards)
		}
	}
}

// TestSoakHybridSerialStillRuns checks the guard that keeps the serial
// differential baseline in a Hybrid-pinned sweep: Serial rejects the
// option, so the soak must drop it for those cells instead of erroring
// the whole sweep.
func TestSoakHybridSerialStillRuns(t *testing.T) {
	var buf bytes.Buffer
	rep, err := Soak(SoakConfig{
		Graphs:     []GraphSpec{{Kind: "star", N: 256, Seed: 4}},
		Profiles:   []Profile{{Name: "baseline"}},
		Seeds:      1,
		Workers:    4,
		Hybrid:     true,
		Log:        &buf,
		Algorithms: []core.Algorithm{core.Serial, core.BFSWL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 || rep.Runs != 2 {
		t.Fatalf("runs=%d failures=%d:\n%s", rep.Runs, rep.Failures, buf.String())
	}
}
