package chaos

import (
	"testing"

	"optibfs/internal/core"
)

// TestMSLaneSoak sweeps the fused engine's lane audits under benign
// perturbation and under injected panics/stalls. Zero violations
// tolerated: completed lanes exact, partial lanes understate-only.
func TestMSLaneSoak(t *testing.T) {
	cfg := MSLaneConfig{
		Graphs: []GraphSpec{
			{Kind: "rmat", N: 1024, M: 8192, Seed: 1},
			{Kind: "layered", N: 1200, M: 6000, Layers: 40, Seed: 3},
			{Kind: "star", N: 512, Seed: 4},
		},
		Profiles: []Profile{
			{Name: "baseline"},
			{Name: "jitter", Prob: uniformProb(0.05), Yields: 1},
			{Name: "front-races", Prob: prob(core.ChaosFrontStore, 0.7), Yields: 3, Spin: 32},
			// Malign faults: perturbations at the level barrier either
			// panic a worker (the run must abort into a typed error with
			// understate-only partial lanes) or stall it briefly.
			{Name: "ms-faults", Prob: prob(core.ChaosStall, 0.4), Yields: 1,
				PanicProb: 0.5, StallMillis: 5},
		},
		Rounds:  3,
		Workers: 4,
	}
	rep, err := MSLaneSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Failures > 0 {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d fused runs broke lane invariants", rep.Failures)
	}
	if rep.Runs != 3*4*3 {
		t.Fatalf("runs = %d, want %d", rep.Runs, 3*4*3)
	}
	if rep.LanesAudited == 0 {
		t.Fatal("no lanes audited")
	}
	if rep.Panics == 0 {
		t.Fatal("fault profile injected no panics (audit under faults unexercised)")
	}
}
