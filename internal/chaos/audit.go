package chaos

import (
	"fmt"

	"optibfs/internal/core"
	"optibfs/internal/graph"
)

// Violation is one invariant the auditor found broken.
type Violation struct {
	// Invariant is a stable short name for the broken invariant.
	Invariant string `json:"invariant"`
	// Detail localizes the violation (vertex, level, counter values).
	Detail string `json:"detail"`
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Audit checks a finished run against the protocol invariants and the
// serial oracle. want must be graph.ReferenceBFS(g, src), or nil to
// have it computed here (pass it in when auditing many runs on the
// same graph). Returns nil when every invariant holds.
//
// The invariants, in order:
//
//	distances-match-oracle      Dist equals the serial reference BFS.
//	distances-structurally-valid Graph500-style structural check.
//	parents-valid               Parent forms a valid BFS tree (when tracked).
//	discovered-conservation     Reached−1 ≤ Σ Discovered ≤ Pops−1. Every
//	                            reached vertex except the source was
//	                            discovered at least once, and every
//	                            discovery appended a queue entry that was
//	                            popped at least once (no entry skipped).
//	                            Exact equality Σ Discovered == Reached−1
//	                            holds whenever no discovery race fired;
//	                            the slack is precisely the benign
//	                            duplicate-discovery count, never negative.
//	pops-cover-reached          Pops ≥ Reached: optimistic races may add
//	                            duplicate pops but never remove work.
//	level-sizes-account         Σ LevelSizes == Reached: every reached
//	                            vertex sits in exactly one level.
//
// Hybrid (direction-optimizing) runs weaken the queue-shaped bounds:
// a bottom-up level settles vertices without ever popping them, so
// Pops can fall below Reached, and Σ Discovered can exceed Pops−1
// (bottom-up claims enter the count but only the compacted survivors
// re-enter the queues). When res.Counters.BottomUpLevels > 0 the audit
// therefore drops pops-cover-reached and the upper conservation bound,
// keeping the lower bound (every reached vertex was still discovered
// exactly through some kernel) and every distance/level invariant.
// AuditGoal is Audit for goal-directed runs: a bounded goal changes
// what "correct" means, so the oracle comparison becomes exactness
// over the closed levels. The expected stop point is derived from the
// full oracle (whichever of target/depth fires first wins), then:
//
//	goal-levels-match           Levels equals the derived closed-level count.
//	goal-truncation-honest      Truncated is set iff the goal actually fired.
//	goal-distances-exact        every oracle distance ≤ Levels is settled
//	                            exactly; everything deeper reads Unreached.
//	parents-valid (prefix)      parent pointers over settled vertices only.
//	level-sizes-account         Σ LevelSizes counts exactly the vertices at
//	                            closed levels (< Levels).
//
// The queue-conservation upper bound and pops-cover-reached are
// dropped for truncated runs — termination at a barrier legitimately
// leaves discovered final-frontier entries unpopped — but the lower
// bound (every reached vertex was discovered) still holds and is
// checked. An unbounded goal delegates to Audit untouched.
func AuditGoal(g *graph.CSR, src int32, want []int32, goal core.Goal, res *core.Result) []Violation {
	if !goal.Bounded() {
		return Audit(g, src, want, res)
	}
	var vs []Violation
	add := func(invariant, format string, args ...any) {
		vs = append(vs, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}
	if want == nil {
		want = graph.ReferenceBFS(g, src)
	}
	ecc := graph.Eccentricity(want)
	wantLevels := ecc + 1
	wantTrunc := false
	if d := goal.MaxDepth; d > 0 && ecc >= d {
		wantLevels = d
		wantTrunc = true
	}
	if tv := goal.TargetVertex(); tv >= 0 && tv < int32(len(want)) {
		if dt := want[tv]; dt != graph.Unreached && dt < wantLevels {
			wantLevels = dt
			wantTrunc = true
		}
	}
	if res.Levels != wantLevels {
		add("goal-levels-match", "Levels = %d, oracle stop point %d (goal %+v)", res.Levels, wantLevels, goal)
	}
	if res.Truncated != wantTrunc {
		add("goal-truncation-honest", "Truncated = %v, want %v (goal %+v)", res.Truncated, wantTrunc, goal)
	}
	for v := range res.Dist {
		if d := want[v]; d != graph.Unreached && d <= wantLevels {
			if res.Dist[v] != d {
				add("goal-distances-exact", "dist[%d] = %d, oracle %d at closed level", v, res.Dist[v], d)
				break
			}
		} else if res.Dist[v] != graph.Unreached {
			add("goal-distances-exact", "dist[%d] = %d, want Unreached past level %d", v, res.Dist[v], wantLevels)
			break
		}
	}
	if res.Parent != nil {
		for v, p := range res.Parent {
			d := res.Dist[v]
			switch {
			case d == graph.Unreached:
				if p != -1 {
					add("parents-valid", "unreached vertex %d has parent %d", v, p)
				}
			case int32(v) == src:
				if p != src {
					add("parents-valid", "source parent = %d", p)
				}
			default:
				if p < 0 || res.Dist[p] != d-1 {
					add("parents-valid", "vertex %d at depth %d has parent %d", v, d, p)
				}
			}
		}
	}
	if got := res.Counters.Discovered; got < res.Reached-1 {
		add("discovered-conservation", "Σ Discovered = %d < Reached−1 = %d", got, res.Reached-1)
	}
	var lv, settled int64
	for _, s := range res.LevelSizes {
		lv += s
	}
	for _, d := range res.Dist {
		if d != graph.Unreached && d < res.Levels {
			settled++
		}
	}
	if lv != settled {
		add("level-sizes-account", "Σ LevelSizes = %d, want %d closed-level vertices", lv, settled)
	}
	return vs
}

func Audit(g *graph.CSR, src int32, want []int32, res *core.Result) []Violation {
	var vs []Violation
	add := func(invariant, format string, args ...any) {
		vs = append(vs, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}
	if want == nil {
		want = graph.ReferenceBFS(g, src)
	}
	if err := graph.EqualDistances(res.Dist, want); err != nil {
		add("distances-match-oracle", "%v", err)
	}
	if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
		add("distances-structurally-valid", "%v", err)
	}
	if res.Parent != nil {
		if err := graph.ValidateParents(g, src, res.Dist, res.Parent); err != nil {
			add("parents-valid", "%v", err)
		}
	}
	hybrid := res.Counters.BottomUpLevels > 0
	if got := res.Counters.Discovered; got < res.Reached-1 {
		add("discovered-conservation", "Σ Discovered = %d < Reached−1 = %d: some vertex was reached but never discovered", got, res.Reached-1)
	} else if got > res.Pops-1 && !hybrid {
		add("discovered-conservation", "Σ Discovered = %d > Pops−1 = %d: some queue entry was appended but never popped", got, res.Pops-1)
	}
	if res.Pops < res.Reached && !hybrid {
		add("pops-cover-reached", "Pops = %d < Reached = %d: some vertex was never popped", res.Pops, res.Reached)
	}
	var lv int64
	for _, s := range res.LevelSizes {
		lv += s
	}
	if lv != res.Reached {
		add("level-sizes-account", "Σ LevelSizes = %d, want Reached = %d", lv, res.Reached)
	}
	return vs
}
