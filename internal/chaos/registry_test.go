package chaos

import (
	"testing"
)

// TestRegistrySoakShort runs a reduced registry soak — enough rounds to
// cross load/evict/query/swap with a mid-round Close and the
// panic-storm profile — and requires zero invariant violations. The
// full ≥1000-interleaving sweep runs in CI via bfssoak -registry.
func TestRegistrySoakShort(t *testing.T) {
	cfg := RegistrySoakConfig{
		Rounds:       3, // covers benign, panic-storm, and mid-close rounds
		Workers:      4,
		OpsPerWorker: 8,
		Graphs:       3,
		Seed:         42,
	}
	if testing.Short() {
		cfg.Rounds = 3
	}
	rep, err := RegistrySoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if len(rep.Violations) > 0 {
		for i, v := range rep.Violations {
			if i >= 10 {
				t.Errorf("... and %d more", len(rep.Violations)-10)
				break
			}
			t.Errorf("violation: %s", v)
		}
	}
	if rep.Interleavings != 3*4*8 {
		t.Fatalf("interleavings = %d, want %d", rep.Interleavings, 3*4*8)
	}
	if rep.Admitted == 0 {
		t.Fatal("soak admitted no queries — load mix is broken")
	}
	if rep.MidCloses != 1 {
		t.Fatalf("mid-closes = %d, want 1 (round 2)", rep.MidCloses)
	}
	if rep.Decisions == 0 {
		t.Fatal("no admission decisions audited")
	}
}
