package chaos

import (
	"errors"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func TestProfilesNamedAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Profiles() {
		if p.Name == "" {
			t.Fatal("unnamed profile")
		}
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		got, err := ProfileByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("ProfileByName(%q) = %+v, %v", p.Name, got, err)
		}
	}
	for _, want := range []string{"baseline", "steal-storm", "front-races", "phase2-dup", "mixed"} {
		if !seen[want] {
			t.Fatalf("profile %q missing", want)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestInjectorDeterministicStreams drives a fixed firing sequence
// through injectors and checks the decision stream is a pure function
// of (profile, seed, worker).
func TestInjectorDeterministicStreams(t *testing.T) {
	prof := Profile{Name: "half", Prob: uniformProb(0.5)}
	drive := func(seed uint64) (int64, int64) {
		in := NewInjector(prof, seed, 2)
		for i := 0; i < 4000; i++ {
			in.At(core.ChaosSlotZero, i%2, int64(i))
		}
		return in.Injections(), in.Fired(core.ChaosSlotZero)
	}
	a1, f1 := drive(42)
	a2, f2 := drive(42)
	if a1 != a2 || f1 != f2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", a1, f1, a2, f2)
	}
	if f1 != 4000 {
		t.Fatalf("Fired = %d, want 4000", f1)
	}
	// Prob 0.5 over 4000 draws: far from both 0 and 4000.
	if a1 < 1500 || a1 > 2500 {
		t.Fatalf("injections %d implausible for p=0.5", a1)
	}
	b, _ := drive(43)
	if b == a1 {
		t.Fatalf("different seeds produced identical injection counts %d (suspicious)", b)
	}
}

func TestInjectorZeroProbabilityInjectsNothing(t *testing.T) {
	in := NewInjector(Profile{Name: "baseline"}, 1, 4)
	for i := 0; i < 1000; i++ {
		in.At(core.ChaosFrontStore, i%4, 0)
	}
	if in.Injections() != 0 {
		t.Fatalf("baseline profile injected %d times", in.Injections())
	}
	if in.Fired(core.ChaosFrontStore) != 1000 {
		t.Fatalf("Fired = %d", in.Fired(core.ChaosFrontStore))
	}
}

func TestInjectorLevelAuditRecordsViolations(t *testing.T) {
	in := NewInjector(Profile{Name: "baseline"}, 1, 1)
	in.LevelEnd(0, 0)
	in.LevelEnd(3, 2)
	vs := in.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want exactly the level-3 report", vs)
	}
}

// TestInjectedRunsStayCorrect is the heart of the harness: every
// benign profile hammering every lockfree variant must still produce
// exact BFS levels, pass the audits, and leave no queue slot
// unconsumed. Disruptive profiles legitimately abort runs; for those
// the contract shifts — the process must survive, errors must be the
// typed recovery errors, and a run that does complete must still be
// exactly correct.
func TestInjectedRunsStayCorrect(t *testing.T) {
	g, err := gen.ChungLu(3000, 24000, 2.0, 11, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	var injections, aborts int64
	for _, prof := range Profiles() {
		for _, algo := range []core.Algorithm{core.BFSCL, core.BFSDL, core.BFSWL, core.BFSWSL} {
			in := NewInjector(prof, 99, 8)
			opt := core.Options{
				Workers: 8, Pools: 2, SegmentSize: 1, Seed: 5,
				Phase2Stealing: true, Chaos: in,
			}
			if prof.Disruptive() {
				opt.StallTimeout = 50 * time.Millisecond
			}
			res, err := core.Run(g, 0, algo, opt)
			if err != nil {
				var wp *core.WorkerPanicError
				var se *core.StallError
				if prof.Disruptive() && (errors.As(err, &wp) || errors.As(err, &se)) {
					if res == nil {
						t.Fatalf("%s under %s: aborted run returned no partial result", algo, prof.Name)
					}
					aborts++
					injections += in.Injections()
					continue
				}
				t.Fatal(err)
			}
			vs := Audit(g, 0, want, res)
			vs = append(vs, levelViolations(in)...)
			if len(vs) != 0 {
				t.Fatalf("%s under %s: %v", algo, prof.Name, vs)
			}
			injections += in.Injections()
		}
	}
	if injections == 0 {
		t.Fatal("no profile injected anything: the chaos scheduler is inert")
	}
	if aborts == 0 {
		t.Fatal("no disruptive profile aborted anything: malign-fault injection is inert")
	}
}
