// Registry soak: drives concurrent load / evict / query / swap /
// shutdown interleavings against a serve.Registry with chaos-injected
// engines (panics, stalls, yields), and audits the lifecycle
// invariants the registry promises:
//
//   - No query ever observes a partially-loaded or evicted graph:
//     every answer is validated against a reference BFS computed on
//     the exact CSR the query's lease pinned.
//   - No retained mapping is ever unmapped: a lease-held mapping must
//     report Mapped before and after the query, and after the round's
//     Close every tracked mapping is either unmapped or accounted for
//     by the registry's deliberate wedged-engine leaks.
//   - Every admitted query terminates with a typed outcome: an Answer
//     whose Outcome is ok/recovered/degraded, or one of the typed
//     serve errors / the caller's context error.
//   - Shed decisions are monotone under rising load: every admission
//     decision the controller took replays cleanly through
//     serve.CheckDecision (each verdict is the threshold rule applied
//     to its own recorded state).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/mmio"
	"optibfs/internal/rng"
	"optibfs/internal/serve"
)

// RegistrySoakConfig sizes a registry soak. Zero fields select the
// documented defaults.
type RegistrySoakConfig struct {
	// Rounds is how many fresh registries the soak builds and tears
	// down; every third round injects a mid-round Close (the SIGTERM
	// interleaving). Default 8.
	Rounds int
	// Workers is the concurrent client count per round. Default 8.
	Workers int
	// OpsPerWorker is each client's operation count per round (ops are
	// the soak's "interleavings": every one runs concurrently against
	// the others). Default 16.
	OpsPerWorker int
	// Graphs is the named-graph population per round. Default 4.
	Graphs int
	// Profile perturbs the engines. Default: "mixed" on even rounds,
	// "panic-storm" (panics + forced stalls) on odd rounds.
	Profile *Profile
	// Seed derives every stream. Default 0x9e3779b97f4a7c15.
	Seed uint64
	// Dir receives the v2 binary files backing the mapped graphs.
	// Empty = a fresh temp dir (removed afterwards).
	Dir string
	// Log receives progress lines. Nil = discard.
	Log io.Writer
}

func (c RegistrySoakConfig) withDefaults() RegistrySoakConfig {
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.OpsPerWorker <= 0 {
		c.OpsPerWorker = 16
	}
	if c.Graphs <= 0 {
		c.Graphs = 4
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// RegistrySoakReport summarizes one RegistrySoak call.
type RegistrySoakReport struct {
	// Interleavings is the total operation count (each op ran
	// concurrently with the others of its round).
	Interleavings int
	// Queries / Admitted / Sheds / Loads / Evicts / MidCloses break the
	// ops down; Admitted counts queries that passed admission (every
	// one must have terminated typed for the soak to pass).
	Queries   int64
	Admitted  int64
	Sheds     int64
	Loads     int64
	Evicts    int64
	MidCloses int
	// Decisions is how many admission decisions were audited.
	Decisions int
	// LeakedMappings counts mappings deliberately leaked for wedged
	// engines (allowed; distinguished from lifecycle bugs).
	LeakedMappings int64
	// Violations are the invariant breaks observed (empty = pass).
	Violations []Violation
	// Elapsed is wall-clock time.
	Elapsed time.Duration
}

func (r *RegistrySoakReport) String() string {
	return fmt.Sprintf("registry soak: %d interleavings (%d queries, %d admitted, %d sheds, %d loads, %d evicts, %d mid-closes), %d decisions audited, %d leaked mappings, %d violations, %s",
		r.Interleavings, r.Queries, r.Admitted, r.Sheds, r.Loads, r.Evicts, r.MidCloses,
		r.Decisions, r.LeakedMappings, len(r.Violations), r.Elapsed.Round(time.Millisecond))
}

// sharedHook serializes an Injector so many engines can share it. The
// Injector's per-worker decision lanes assume worker ids are disjoint,
// which holds inside one engine but not across a registry's fleets
// (every engine numbers its workers from 0). Injected panics unwind
// through the deferred unlock, and injected stalls hold the lock —
// deliberately wedging other engines' chaos crossings at the same
// time, which is exactly the kind of correlated stall a real machine
// produces under memory pressure.
type sharedHook struct {
	mu  sync.Mutex
	inj *Injector
}

func (h *sharedHook) At(point core.ChaosPoint, worker int, value int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.inj.At(point, worker, value)
}

// soakAudit collects violations and decisions concurrently.
type soakAudit struct {
	mu         sync.Mutex
	violations []Violation
	decisions  []serve.AdmissionDecision
}

func (a *soakAudit) violate(invariant, format string, args ...any) {
	a.mu.Lock()
	a.violations = append(a.violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	a.mu.Unlock()
}

func (a *soakAudit) decide(d serve.AdmissionDecision) {
	a.mu.Lock()
	a.decisions = append(a.decisions, d)
	a.mu.Unlock()
}

// RegistrySoak runs the sweep. It returns an error only for harness
// problems (generation, file I/O); invariant violations land in the
// report.
func RegistrySoak(cfg RegistrySoakConfig) (*RegistrySoakReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &RegistrySoakReport{}

	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "optibfs-regsoak")
		if err != nil {
			return nil, fmt.Errorf("chaos: %w", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}

	for round := 0; round < cfg.Rounds; round++ {
		if err := registryRound(cfg, dir, round, rep); err != nil {
			return nil, err
		}
		fmt.Fprintf(cfg.Log, "round %d/%d: %d interleavings so far, %d violations\n",
			round+1, cfg.Rounds, rep.Interleavings, len(rep.Violations))
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// registryRound builds one registry, hammers it, closes it, audits.
func registryRound(cfg RegistrySoakConfig, dir string, round int, rep *RegistrySoakReport) error {
	seed := rng.Mix64(cfg.Seed ^ uint64(round)*0x9e3779b97f4a7c15)
	r := rng.NewSplitMix64(seed)
	audit := &soakAudit{}

	prof := Profile{Name: "mixed", Prob: uniformProb(0.1), Yields: 2, Spin: 16}
	if cfg.Profile != nil {
		prof = *cfg.Profile
	} else if round%2 == 1 {
		var err error
		prof, err = ProfileByName("panic-storm")
		if err != nil {
			return err
		}
	}

	// Per-round graph population: half mapped (v2 file, zero-copy),
	// half heap, sizes drawn so the budget forces evict-on-insert.
	type namedGraph struct {
		name   string
		g      *graph.CSR
		path   string // "" = heap-loaded
		cost   int64
	}
	graphs := make([]namedGraph, cfg.Graphs)
	var totalCost int64
	for i := range graphs {
		n := int32(400 + r.Next()%600)
		m := int64(n) * int64(3+r.Next()%4)
		g, err := gen.ErdosRenyi(n, m, r.Next(), gen.Options{})
		if err != nil {
			return fmt.Errorf("chaos: registry soak graph: %w", err)
		}
		ng := namedGraph{name: fmt.Sprintf("g%d", i), g: g}
		ng.cost = int64(len(g.Offsets))*8 + int64(len(g.Edges))*4
		if i%2 == 0 {
			path := filepath.Join(dir, fmt.Sprintf("r%d-g%d.bin", round, i))
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("chaos: %w", err)
			}
			if err := mmio.WriteBinaryV2(f, g); err != nil {
				f.Close()
				return fmt.Errorf("chaos: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("chaos: %w", err)
			}
			ng.path = path
		}
		graphs[i] = ng
		totalCost += ng.cost
	}

	// Track every mapping the round creates so the post-Close audit can
	// assert full unmap (minus deliberate wedged-engine leaks).
	var mapMu sync.Mutex
	var mappings []*mmio.MappedGraph
	sourceFor := func(ng namedGraph) serve.GraphSource {
		if ng.path == "" {
			return func(context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
				return ng.g, nil, nil
			}
		}
		path := ng.path
		return func(context.Context) (*graph.CSR, *mmio.MappedGraph, error) {
			mg, err := mmio.LoadMapped(path, mmio.MapOptions{})
			if err != nil {
				return nil, nil, err
			}
			mapMu.Lock()
			mappings = append(mappings, mg)
			mapMu.Unlock()
			return mg.Graph(), mg, nil
		}
	}

	inj := NewInjector(prof, r.Next(), 4)
	guardOpts := core.Options{Workers: 3, Chaos: &sharedHook{inj: inj}}
	if prof.Disruptive() {
		guardOpts.StallTimeout = 50 * time.Millisecond
	}
	reg := serve.NewRegistry(serve.RegistryConfig{
		// ~70% of the population fits: inserts past that must evict.
		MemoryBudget: totalCost * 7 / 10,
		Guard: serve.Config{
			Concurrency: 2,
			Options:     guardOpts,
			Deadline:    2 * time.Second,
			Grace:       500 * time.Millisecond,
			QueueWait:   100 * time.Millisecond,
		},
		Admission: serve.AdmissionConfig{
			MaxInFlight:  4,
			MaxQueue:     16,
			QueueWait:    200 * time.Millisecond,
			DecisionHook: audit.decide,
		},
	})
	closed := reg.Close // ensured below

	// Seed the registry with the first two graphs so early queries have
	// something to hit; the rest load mid-flight.
	for i := 0; i < 2 && i < len(graphs); i++ {
		if err := reg.Load(context.Background(), graphs[i].name, sourceFor(graphs[i])); err != nil {
			return fmt.Errorf("chaos: registry soak seed load: %w", err)
		}
	}

	var (
		ops       atomic.Int64
		queries   atomic.Int64
		admitted  atomic.Int64
		sheds     atomic.Int64
		loads     atomic.Int64
		evicts    atomic.Int64
		completed atomic.Int64
	)
	totalOps := int64(cfg.Workers * cfg.OpsPerWorker)
	midClose := round%3 == 2
	var closerWG sync.WaitGroup
	if midClose {
		// The SIGTERM interleaving: Close fires while roughly half the
		// round's ops are still in flight.
		closerWG.Add(1)
		go func() {
			defer closerWG.Done()
			for ops.Load() < totalOps/2 {
				time.Sleep(time.Millisecond)
			}
			closed()
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wr := rng.NewSplitMix64(rng.Mix64(seed ^ uint64(w+1)*0xbf58476d1ce4e5b9))
			for op := 0; op < cfg.OpsPerWorker; op++ {
				ops.Add(1)
				ng := graphs[wr.Next()%uint64(len(graphs))]
				switch x := wr.Next() % 100; {
				case x < 12: // load (first time) or swap (reinstall)
					loads.Add(1)
					err := reg.Load(context.Background(), ng.name, sourceFor(ng))
					if err != nil && !errors.Is(err, serve.ErrBudgetExceeded) &&
						!errors.Is(err, serve.ErrClosed) {
						audit.violate("load-typed-outcome", "load %s: untyped error %v", ng.name, err)
					}
				case x < 18: // evict
					evicts.Add(1)
					err := reg.Evict(ng.name)
					if err != nil && !errors.Is(err, serve.ErrNotFound) &&
						!errors.Is(err, serve.ErrClosed) {
						audit.violate("evict-typed-outcome", "evict %s: untyped error %v", ng.name, err)
					}
				default:
					queries.Add(1)
					registryQueryOp(reg, ng.name, wr, audit, &admitted, &sheds, &completed)
				}
			}
		}(w)
	}
	wg.Wait()
	closerWG.Wait()
	reg.Close()

	if a, c := admitted.Load(), completed.Load(); a != c {
		audit.violate("admitted-terminates", "%d queries admitted but only %d terminated", a, c)
	}

	// Post-Close mapping audit: every mapping is unmapped, except those
	// the registry deliberately leaked for wedged engines.
	stillMapped := 0
	mapMu.Lock()
	for _, mg := range mappings {
		if !mg.Unmapped() {
			stillMapped++
		}
	}
	total := len(mappings)
	mapMu.Unlock()
	leaked := reg.LeakedMappings()
	if int64(stillMapped) > leaked {
		audit.violate("mapping-lifecycle", "round %d: %d of %d mappings still mapped after Close, only %d accounted as wedged-engine leaks",
			round, stillMapped, total, leaked)
	}

	audit.mu.Lock()
	for i, d := range audit.decisions {
		if err := serve.CheckDecision(d); err != nil {
			audit.violations = append(audit.violations, Violation{
				Invariant: "shed-monotone",
				Detail:    fmt.Sprintf("decision %d: %v (%+v)", i, err, d),
			})
		}
	}
	rep.Decisions += len(audit.decisions)
	rep.Violations = append(rep.Violations, audit.violations...)
	audit.mu.Unlock()

	rep.Interleavings += int(ops.Load())
	rep.Queries += queries.Load()
	rep.Admitted += admitted.Load()
	rep.Sheds += sheds.Load()
	rep.Loads += loads.Load()
	rep.Evicts += evicts.Load()
	rep.LeakedMappings += leaked
	if midClose {
		rep.MidCloses++
	}
	return nil
}

// registryQueryOp runs one admitted-or-shed query and audits its
// lifecycle: typed admission outcome, mapping retained across the
// query, answer consistent with the leased CSR, typed terminal
// outcome.
func registryQueryOp(reg *serve.Registry, name string, wr *rng.SplitMix64, audit *soakAudit,
	admitted, sheds, completed *atomic.Int64) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	lease, err := reg.Begin(ctx, name)
	if err != nil {
		var shed *serve.ShedError
		switch {
		case errors.As(err, &shed):
			sheds.Add(1)
		case errors.Is(err, serve.ErrNotFound),
			errors.Is(err, serve.ErrLoading),
			errors.Is(err, serve.ErrClosed),
			errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, context.Canceled):
		default:
			audit.violate("admission-typed-outcome", "begin %s: untyped error %v", name, err)
		}
		return
	}
	admitted.Add(1)
	defer func() {
		completed.Add(1)
		lease.Release()
	}()

	mg := lease.MappedGraph()
	if mg != nil && mg.Unmapped() {
		audit.violate("retained-mapping-live", "%s gen %d: mapping unmapped at lease acquisition", name, lease.Gen())
		return
	}
	g := lease.Graph()
	src := int32(wr.Next() % uint64(g.NumVertices()))
	ans, err := lease.Guard().Query(ctx, src)
	if mg != nil && mg.Unmapped() {
		audit.violate("retained-mapping-live", "%s gen %d: mapping unmapped while the lease was held", name, lease.Gen())
	}
	if err != nil {
		// The guard's typed vocabulary: overload, swap-race close,
		// context expiry/cancel. Anything else escaped the ladder.
		if !errors.Is(err, serve.ErrOverloaded) && !errors.Is(err, serve.ErrClosed) &&
			!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			audit.violate("query-typed-outcome", "%s src %d: untyped error %v", name, src, err)
		}
		return
	}
	switch ans.Outcome {
	case "ok", "recovered", "degraded":
	default:
		audit.violate("query-typed-outcome", "%s src %d: unknown outcome %q", name, src, ans.Outcome)
	}
	// The answer must match a reference BFS on the exact CSR the lease
	// pinned — a partially-loaded or evicted graph cannot pass this.
	want := graph.ReferenceBFS(g, src)
	if err := graph.EqualDistances(ans.Dist, want); err != nil {
		audit.violate("answer-matches-leased-graph", "%s gen %d src %d: %v", name, lease.Gen(), src, err)
	}
}
