package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/obs"
	"optibfs/internal/rng"
)

// GraphSpec describes a generated soak graph compactly enough to be
// serialized into a repro artifact and regenerated bit-identically.
type GraphSpec struct {
	// Kind selects the generator: rmat | chunglu | layered | er |
	// complete | star.
	Kind string `json:"kind"`
	// N is the vertex count.
	N int32 `json:"n"`
	// M is the target edge count (ignored by complete and star).
	M int64 `json:"m,omitempty"`
	// Gamma is the chunglu power-law exponent.
	Gamma float64 `json:"gamma,omitempty"`
	// Layers is the layered generator's BFS depth.
	Layers int32 `json:"layers,omitempty"`
	// Seed drives the generator.
	Seed uint64 `json:"seed"`
}

// Generate builds the graph the spec describes.
func (s GraphSpec) Generate() (*graph.CSR, error) {
	switch s.Kind {
	case "rmat":
		return gen.Graph500RMAT(s.N, s.M, s.Seed, gen.Options{})
	case "chunglu":
		return gen.ChungLu(s.N, s.M, s.Gamma, s.Seed, gen.Options{})
	case "layered":
		return gen.LayeredRandom(s.N, s.M, s.Layers, s.Seed, gen.Options{})
	case "er":
		return gen.ErdosRenyi(s.N, s.M, s.Seed, gen.Options{})
	case "complete":
		return gen.Complete(s.N)
	case "star":
		return gen.Star(s.N)
	}
	return nil, fmt.Errorf("chaos: unknown graph kind %q", s.Kind)
}

func (s GraphSpec) String() string {
	return fmt.Sprintf("%s(n=%d,m=%d,seed=%d)", s.Kind, s.N, s.M, s.Seed)
}

// DefaultGraphs returns the standard soak suite: each entry targets a
// different protocol stressor — hub storms (chunglu), deep level
// machinery (layered), single-queue steal pressure (star), duplicate
// storms (complete), and a Graph500 mix (rmat).
func DefaultGraphs() []GraphSpec {
	return []GraphSpec{
		{Kind: "rmat", N: 4096, M: 32768, Seed: 1},
		{Kind: "chunglu", N: 4096, M: 32768, Gamma: 2.0, Seed: 2},
		{Kind: "layered", N: 3000, M: 15000, Layers: 60, Seed: 3},
		{Kind: "star", N: 2048, Seed: 4},
		{Kind: "complete", N: 256, Seed: 5},
	}
}

// RunOptions is the JSON-serializable subset of core.Options a soak
// run varies; it round-trips through repro artifacts.
type RunOptions struct {
	// Workers is the worker count (always explicit in artifacts).
	Workers int `json:"workers"`
	// SegmentSize fixes the dispatch segment length; 0 = adaptive.
	SegmentSize int `json:"segment_size,omitempty"`
	// Pools is the BFS_DL pool count.
	Pools int `json:"pools,omitempty"`
	// Sockets is the simulated NUMA socket count.
	Sockets int `json:"sockets,omitempty"`
	// SameSocketBias is the local-steal probability (0 meaningful).
	SameSocketBias float64 `json:"same_socket_bias"`
	// Phase2Stealing enables dynamic phase-2 dispatch.
	Phase2Stealing bool `json:"phase2_stealing,omitempty"`
	// ParentClaim enables the §IV-D duplicate filter.
	ParentClaim bool `json:"parent_claim,omitempty"`
	// TrackParents records BFS parents for tree validation.
	TrackParents bool `json:"track_parents,omitempty"`
	// PersistentWorkers reuses long-lived worker goroutines.
	PersistentWorkers bool `json:"persistent_workers,omitempty"`
	// PublishBlock is the batched-publication block size; 0 = default.
	PublishBlock int `json:"publish_block,omitempty"`
	// Reorder names the vertex-relabeling mode ("" | "degree" | "bfs").
	Reorder string `json:"reorder,omitempty"`
	// Shards is the CSR shard count (0/1 = classic single engine; more
	// runs the owner-compute sharded backend with cross-shard exchange).
	Shards int `json:"shards,omitempty"`
	// Hybrid enables direction-optimizing bottom-up levels
	// (core.Options.Hybrid); meaningless for the serial variant, which
	// rejects it.
	Hybrid bool `json:"hybrid,omitempty"`
	// StallTimeoutMillis arms the watchdog (core.Options.StallTimeout);
	// 0 leaves it off. Set by the soak for Disruptive profiles so forced
	// stalls are detected rather than hanging the sweep.
	StallTimeoutMillis int `json:"stall_timeout_millis,omitempty"`
	// Target is a goal-directed termination target, in core.Options'
	// vertex+1 sentinel encoding (0 = none): the run stops at the level
	// barrier that settles vertex Target−1.
	Target int32 `json:"target,omitempty"`
	// MaxDepth bounds the run to that many closed levels (0 = none).
	MaxDepth int32 `json:"max_depth,omitempty"`
	// Seed drives victim/pool selection inside the run.
	Seed uint64 `json:"seed"`
}

// Core converts to core.Options (without a chaos hook).
func (o RunOptions) Core() core.Options {
	return core.Options{
		Workers:           o.Workers,
		SegmentSize:       o.SegmentSize,
		Pools:             o.Pools,
		Sockets:           o.Sockets,
		SameSocketBias:    o.SameSocketBias,
		Phase2Stealing:    o.Phase2Stealing,
		ParentClaim:       o.ParentClaim,
		TrackParents:      o.TrackParents,
		PersistentWorkers: o.PersistentWorkers,
		PublishBlock:      o.PublishBlock,
		Reorder:           core.ReorderMode(o.Reorder),
		Shards:            o.Shards,
		Hybrid:            o.Hybrid,
		StallTimeout:      time.Duration(o.StallTimeoutMillis) * time.Millisecond,
		Target:            o.Target,
		MaxDepth:          o.MaxDepth,
		Seed:              o.Seed,
	}
}

// injectorWorkers is how many worker-id slots the injector must cover
// for this option set: sharded backends run Shards engines of Workers
// goroutines each and offset their chaos worker ids by shard.
func (o RunOptions) injectorWorkers() int {
	if o.Shards > 1 {
		return o.Shards * o.Workers
	}
	return o.Workers
}

// Repro is the minimal JSON artifact emitted when a soak run breaks an
// invariant: everything needed to re-execute the exact run — graph
// parameters, algorithm, options, perturbation profile, and both
// seeds — plus the violations observed when it was recorded.
type Repro struct {
	// Graph regenerates the input graph.
	Graph GraphSpec `json:"graph"`
	// Source is the BFS source vertex.
	Source int32 `json:"source"`
	// Algorithm is the variant that failed.
	Algorithm core.Algorithm `json:"algorithm"`
	// Options is the run configuration.
	Options RunOptions `json:"options"`
	// Profile is the perturbation profile that was active.
	Profile Profile `json:"profile"`
	// InjectionSeed seeds the injector's decision streams.
	InjectionSeed uint64 `json:"injection_seed"`
	// EngineRun records that the failure was observed on a reused
	// engine (SoakConfig.Engines); Replay then re-executes the run
	// several times on one engine so state-reuse bugs (stale epochs,
	// leaked queue contents) get a chance to reappear.
	EngineRun bool `json:"engine_run,omitempty"`
	// Violations are the invariant violations observed at record time.
	Violations []Violation `json:"violations"`
}

// WriteRepro writes the artifact into dir (created if needed) and
// returns its path.
func WriteRepro(dir string, r Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("chaos: %w", err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("chaos: %w", err)
	}
	name := fmt.Sprintf("repro-%s-%s-%016x.json", r.Algorithm, r.Profile.Name, r.Options.Seed)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("chaos: %w", err)
	}
	return path, nil
}

// LoadRepro reads an artifact written by WriteRepro.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	data, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("chaos: %w", err)
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("chaos: %s: %w", path, err)
	}
	return r, nil
}

// Replay re-executes the run a repro artifact describes — same graph,
// options, profile, and seeds — and re-audits it, returning the
// violations observed this time (goroutine interleaving still varies,
// so a racy violation may take several replays to reappear).
func Replay(r Repro) ([]Violation, *core.Result, error) {
	g, err := r.Graph.Generate()
	if err != nil {
		return nil, nil, err
	}
	opt := r.Options.Core()
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	// The artifact's goal rides in as construction-time options, so the
	// replayed run terminates where the recorded one did; the audit
	// judges it by the same goal-aware contract.
	goal := core.Goal{Target: r.Options.Target, MaxDepth: r.Options.MaxDepth}
	if r.EngineRun {
		// The failure was observed on a reused engine: replay the run
		// three times on one engine so second-run-and-later bugs (state
		// that only a previous search could have corrupted) reproduce.
		// Typed recovery aborts (injected panics, forced stalls) are not
		// violations; a panic poisons the engine, so the loop rebuilds
		// it and keeps replaying, same as the soak does.
		e, err := core.NewBackend(g, r.Algorithm, opt)
		if err != nil {
			return nil, nil, err
		}
		defer func() { e.Close() }()
		var all []Violation
		var res *core.Result
		for i := 0; i < 3; i++ {
			inj := NewInjector(r.Profile, r.InjectionSeed, r.Options.injectorWorkers())
			e.SetChaos(inj)
			e.Reseed(opt.Seed)
			res, err = e.Run(r.Source)
			if err != nil {
				if !recoveryAbort(err) {
					return nil, nil, err
				}
				e.Close()
				e, err = core.NewBackend(g, r.Algorithm, opt)
				if err != nil {
					return nil, nil, err
				}
				continue
			}
			vs := AuditGoal(g, r.Source, nil, goal, res)
			vs = append(vs, levelViolations(inj)...)
			all = append(all, vs...)
		}
		return all, res, nil
	}
	inj := NewInjector(r.Profile, r.InjectionSeed, r.Options.injectorWorkers())
	opt.Chaos = inj
	b, err := core.NewBackend(g, r.Algorithm, opt)
	if err != nil {
		return nil, nil, err
	}
	res, err := b.Run(r.Source)
	b.Close()
	if err != nil {
		if recoveryAbort(err) {
			return nil, res, nil
		}
		return nil, nil, err
	}
	vs := AuditGoal(g, r.Source, nil, goal, res)
	vs = append(vs, levelViolations(inj)...)
	return vs, res, nil
}

// recoveryAbort reports whether err is one of the typed recovery
// aborts a Disruptive profile legitimately provokes — a recovered
// worker panic or a detected stall — as opposed to a harness failure.
func recoveryAbort(err error) bool {
	var wp *core.WorkerPanicError
	var se *core.StallError
	return errors.As(err, &wp) || errors.As(err, &se)
}

// levelViolations converts the injector's per-level audit findings:
// unconsumed input-queue slots from the slot audit, unpublished
// discoveries from the flush audit.
func levelViolations(in *Injector) []Violation {
	var vs []Violation
	for _, s := range in.Violations() {
		inv := "queue-slots-consumed"
		if strings.Contains(s, "unpublished") {
			inv = "publication-flushed"
		}
		vs = append(vs, Violation{Invariant: inv, Detail: s})
	}
	return vs
}

// SoakConfig configures a differential soak sweep. Zero fields select
// the documented defaults.
type SoakConfig struct {
	// Algorithms to sweep. Default: every core.Algorithm.
	Algorithms []core.Algorithm
	// Graphs to sweep. Default: DefaultGraphs.
	Graphs []GraphSpec
	// Profiles to sweep. Default: Profiles().
	Profiles []Profile
	// Seeds is how many derived option/seed sets run per
	// (graph, algorithm, profile) cell. Default 2.
	Seeds int
	// Workers caps the per-run worker count (runs draw from
	// [2, Workers]). Default: 2×GOMAXPROCS, clamped to [4, 16] —
	// oversubscription is deliberate, it gives the injector's yields
	// real interleavings to provoke.
	Workers int
	// Shards pins the CSR shard count for every run: 1 forces the
	// classic single engine, >1 forces that many shards (dropping
	// Reorder, which the sharded backend rejects). 0 lets each derived
	// option set draw its own shard count from {1, 2, 4}.
	Shards int
	// Hybrid pins direction-optimizing mode on for every run instead of
	// the default one-in-four draw. Serial cells always drop it — the
	// serial variant rejects hybrid — so the differential baseline
	// stays in the sweep.
	Hybrid bool
	// BaseSeed derives every per-run seed. Default 0xb5f5c4a0.
	BaseSeed uint64
	// Duration stops the sweep (checked between runs) once exceeded;
	// rounds repeat with fresh derived seeds until then. 0 = exactly
	// one sweep.
	Duration time.Duration
	// Engines drives all runs of each (graph, algorithm) pair through
	// one shared core.Engine, created from the pair's first derived
	// option set and then only reseeded (and re-hooked with a fresh
	// injector) between runs. Option diversity per cell is narrower —
	// workers/pools/etc. are frozen at engine build — but the auditor's
	// invariants now also cover state-reuse bugs: a stale epoch stamp,
	// a queue slot leaked by a previous search, or counters that
	// survive a reset would all surface as oracle mismatches.
	Engines bool
	// ArtifactDir receives JSON repro artifacts for failed runs.
	// Empty = don't write artifacts.
	ArtifactDir string
	// Log receives progress and failure lines. Nil = discard.
	Log io.Writer
	// Verbose logs every run, not just failures and sweep summaries.
	Verbose bool
	// Registry, when non-nil, receives live sweep metrics after every
	// run (runs, failures, injections, stale steals, duplicate pops,
	// labeled {algo, profile}) so a long soak can be watched over the
	// exposition endpoint instead of only summarized at the end.
	Registry *obs.Registry
}

func (cfg SoakConfig) withDefaults() SoakConfig {
	if cfg.Algorithms == nil {
		cfg.Algorithms = core.Algorithms
	}
	if cfg.Graphs == nil {
		cfg.Graphs = DefaultGraphs()
	}
	if cfg.Profiles == nil {
		cfg.Profiles = Profiles()
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * runtime.GOMAXPROCS(0)
		if cfg.Workers < 4 {
			cfg.Workers = 4
		}
		if cfg.Workers > 16 {
			cfg.Workers = 16
		}
	}
	if cfg.Workers < 2 {
		cfg.Workers = 2
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 0xb5f5c4a0
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return cfg
}

// SoakReport summarizes one Soak call.
type SoakReport struct {
	// Runs is the number of (graph, algorithm, profile, seed) runs.
	Runs int
	// EngineRuns is how many of those ran on a shared, reused engine
	// (SoakConfig.Engines).
	EngineRuns int
	// Failures is how many runs broke at least one invariant.
	Failures int
	// Injections is the total number of perturbations performed.
	Injections int64
	// StaleSteals counts the stale-steal events the sweep provoked —
	// the interleaving class the descriptor-leak fix is about.
	StaleSteals int64
	// Duplicates is the total duplicate work (Pops − Reached) the
	// optimistic runs absorbed.
	Duplicates int64
	// Truncated is how many runs a goal (target or depth bound)
	// terminated early at a level barrier; those runs are audited by
	// the goal-aware closed-level contract instead of the full oracle.
	Truncated int
	// Panics is how many runs aborted with a recovered worker panic
	// (Disruptive profiles only; each one is a survived process crash).
	Panics int
	// Stalls is how many runs the watchdog aborted with a detected
	// stall (Disruptive profiles only).
	Stalls int
	// Artifacts lists the repro files written for failures.
	Artifacts []string
	// Elapsed is the sweep's wall-clock time.
	Elapsed time.Duration
}

// String renders a one-line summary.
func (r *SoakReport) String() string {
	engines := ""
	if r.EngineRuns > 0 {
		engines = fmt.Sprintf(" (%d on shared engines)", r.EngineRuns)
	}
	faults := ""
	if r.Panics > 0 || r.Stalls > 0 {
		faults = fmt.Sprintf(", %d recovered panics, %d detected stalls", r.Panics, r.Stalls)
	}
	goals := ""
	if r.Truncated > 0 {
		goals = fmt.Sprintf(", %d goal-truncated", r.Truncated)
	}
	return fmt.Sprintf("soak: %d runs%s, %d failures, %d injections, %d stale steals, %d duplicate pops%s%s, %s",
		r.Runs, engines, r.Failures, r.Injections, r.StaleSteals, r.Duplicates, faults, goals, r.Elapsed.Round(time.Millisecond))
}

// deriveOptions expands one per-run seed into a full option set,
// covering the configuration space (segment sizes, pools, NUMA
// simulation, claim/parent/persistence toggles) deterministically.
// n is the graph's vertex count: about a third of the runs draw a
// goal (a random termination target, a random depth bound, or both)
// so barrier-time early termination is crossed with every other
// dimension under injection.
func deriveOptions(r *rng.SplitMix64, maxWorkers int, n int32) RunOptions {
	o := RunOptions{
		Workers: 2 + int(r.Next()%uint64(maxWorkers-1)),
		Seed:    r.Next(),
	}
	switch r.Next() % 3 {
	case 0:
		o.SegmentSize = 1 // worst case: every slot is a fetch
	case 1:
		o.SegmentSize = 3
	}
	o.Pools = 1 + int(r.Next()%uint64(o.Workers))
	switch r.Next() % 3 {
	case 1:
		o.Sockets = 2
	case 2:
		o.Sockets = 4
	}
	if o.Sockets > 1 {
		o.SameSocketBias = float64(r.Next()%101) / 100
	}
	o.Phase2Stealing = r.Next()%2 == 0
	o.ParentClaim = r.Next()%4 == 0
	o.TrackParents = r.Next()%2 == 0
	o.PersistentWorkers = r.Next()%4 == 0
	// Batched publication block sizes, from the per-vertex ablation
	// baseline through boundary-stressing tiny blocks to a full-size
	// one; the remaining draws keep the default.
	switch r.Next() % 5 {
	case 0:
		o.PublishBlock = 1
	case 1:
		o.PublishBlock = 2
	case 2:
		o.PublishBlock = 64
	}
	switch r.Next() % 8 {
	case 0:
		o.Reorder = string(core.ReorderDegree)
	case 1:
		o.Reorder = string(core.ReorderBFS)
	}
	// Shards: half the runs keep the classic single engine, the rest
	// exercise the owner-compute sharded backend and its cross-shard
	// exchange. The sharded runtime rejects relabeling, so those draws
	// drop Reorder rather than fail construction.
	switch r.Next() % 4 {
	case 0:
		o.Shards = 2
	case 1:
		o.Shards = 4
	}
	if o.Shards > 1 {
		o.Reorder = ""
	}
	// Hybrid: a quarter of the runs take bottom-up levels through the
	// soak, crossing the direction machinery with every other dimension
	// (claims, sharding, persistence, publication blocks).
	o.Hybrid = r.Next()%4 == 0
	// Goals: a third of the runs terminate early — at a random target
	// vertex, a random (shallow) depth bound, or occasionally both, so
	// the whichever-fires-first rule is exercised too. The rest stay
	// unbounded and keep the full differential baseline.
	if n > 0 {
		switch r.Next() % 3 {
		case 0:
			o.Target = 1 + int32(r.Next()%uint64(n))
			if r.Next()%4 == 0 {
				o.MaxDepth = 1 + int32(r.Next()%8)
			}
		case 1:
			o.MaxDepth = 1 + int32(r.Next()%8)
		}
	}
	return o
}

// Soak runs the differential sweep: for every (graph, algorithm,
// profile, seed) cell it executes the variant under the injector and
// audits the result against the serial oracle and the protocol
// invariants, emitting a repro artifact per failure. It only returns
// an error for harness problems (generation, artifact I/O); invariant
// violations are reported in the SoakReport.
func Soak(cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &SoakReport{}
	expired := func() bool {
		return cfg.Duration > 0 && time.Since(start) >= cfg.Duration
	}

	type prepared struct {
		spec GraphSpec
		g    *graph.CSR
		want []int32
	}
	graphs := make([]prepared, 0, len(cfg.Graphs))
	for _, spec := range cfg.Graphs {
		g, err := spec.Generate()
		if err != nil {
			return nil, fmt.Errorf("chaos: generating %s: %w", spec, err)
		}
		graphs = append(graphs, prepared{spec, g, graph.ReferenceBFS(g, 0)})
	}

	// Engines mode: one shared engine per (graph, algorithm) pair,
	// built lazily from the pair's first derived option set and reused
	// by every later cell of the sweep. Disruptive profiles get their
	// own engine per pair (the watchdog arms via build-time options,
	// and their panics poison engines benign cells must not inherit).
	type engKey struct {
		gi   int
		algo core.Algorithm
		disr bool
	}
	type sharedEng struct {
		e    core.Backend
		opts RunOptions
	}
	engines := make(map[engKey]*sharedEng)
	defer func() {
		for _, se := range engines {
			se.e.Close()
		}
	}()

	for round := 0; ; round++ {
		for gi, pg := range graphs {
			for _, algo := range cfg.Algorithms {
				for _, prof := range cfg.Profiles {
					for s := 0; s < cfg.Seeds; s++ {
						if expired() {
							rep.Elapsed = time.Since(start)
							return rep, nil
						}
						cell := rng.Mix64(cfg.BaseSeed ^ rng.Mix64(uint64(round)<<32|uint64(s)) ^
							rng.Mix64(uint64(len(pg.spec.Kind))+pg.spec.Seed) ^ hashString(string(algo)+prof.Name))
						r := rng.NewSplitMix64(cell)
						opts := deriveOptions(r, cfg.Workers, pg.g.NumVertices())
						if cfg.Shards > 0 {
							opts.Shards = cfg.Shards
							if opts.Shards > 1 {
								opts.Reorder = ""
							}
						}
						if cfg.Hybrid {
							opts.Hybrid = true
						}
						if algo == core.Serial {
							// The serial variant rejects Hybrid at
							// construction; the draw (or pin) only
							// applies to the parallel cells.
							opts.Hybrid = false
						}
						// The cell's goal, captured before engines mode
						// swaps opts for the shared engine's frozen set.
						goal := core.Goal{Target: opts.Target, MaxDepth: opts.MaxDepth}
						injSeed := r.Next()
						if prof.Disruptive() {
							// Arm the watchdog so forced stalls abort with
							// a typed StallError instead of dragging the
							// sweep; 50ms is well under StallMillis.
							opts.StallTimeoutMillis = 50
						}

						var inj *Injector
						var res *core.Result
						var rerr error
						if cfg.Engines {
							key := engKey{gi, algo, prof.Disruptive()}
							se := engines[key]
							if se == nil {
								// The shared engine is built goal-free —
								// each cell's goal is a per-run RunGoal
								// override, never frozen into the build.
								bopts := opts
								bopts.Target, bopts.MaxDepth = 0, 0
								e, eerr := core.NewBackend(pg.g, algo, bopts.Core())
								if eerr != nil {
									return nil, fmt.Errorf("chaos: engine for %s on %s: %w", algo, pg.spec, eerr)
								}
								se = &sharedEng{e: e, opts: bopts}
								engines[key] = se
							}
							// The engine froze everything but the seed at
							// build time; this cell contributes a fresh
							// run seed, a fresh goal, and a fresh injector
							// (sized for the engine's worker count, not
							// this cell's).
							seed := opts.Seed
							opts = se.opts
							opts.Seed = seed
							opts.Target, opts.MaxDepth = goal.Target, goal.MaxDepth
							inj = NewInjector(prof, injSeed, opts.injectorWorkers())
							se.e.SetChaos(inj)
							se.e.Reseed(seed)
							res, rerr = se.e.RunGoal(context.Background(), 0, goal)
							if rerr != nil && !recoveryAbort(rerr) {
								return nil, fmt.Errorf("chaos: %s on %s (engine): %w", algo, pg.spec, rerr)
							}
							if rerr != nil {
								// A recovered panic poisons the engine:
								// discard it so the next cell of this pair
								// rebuilds from scratch (Close is safe on a
								// poisoned engine; its workers are parked).
								var wp *core.WorkerPanicError
								if errors.As(rerr, &wp) {
									se.e.Close()
									delete(engines, key)
								}
							}
							rep.EngineRuns++
						} else {
							inj = NewInjector(prof, injSeed, opts.injectorWorkers())
							copt := opts.Core()
							copt.Chaos = inj
							if opts.Shards > 1 {
								// NewBackend routes to the sharded runtime;
								// one-shot, so build, run, and tear down here.
								b, berr := core.NewBackend(pg.g, algo, copt)
								if berr != nil {
									return nil, fmt.Errorf("chaos: backend for %s on %s: %w", algo, pg.spec, berr)
								}
								res, rerr = b.Run(0)
								b.Close()
							} else {
								res, rerr = core.Run(pg.g, 0, algo, copt)
							}
							if rerr != nil && !recoveryAbort(rerr) {
								return nil, fmt.Errorf("chaos: %s on %s: %w", algo, pg.spec, rerr)
							}
						}
						rep.Runs++
						rep.Injections += inj.Injections()
						if rerr != nil {
							// Typed recovery abort: the process survived
							// the injected fault and surfaced it as data.
							// The partial result is not audited (the run
							// did not finish), but it must exist.
							var wp *core.WorkerPanicError
							if errors.As(rerr, &wp) {
								rep.Panics++
							} else {
								rep.Stalls++
							}
							if res == nil {
								rep.Failures++
								fmt.Fprintf(cfg.Log, "FAIL %s on %s profile=%s: abort lost the partial result: %v\n",
									algo, pg.spec, prof.Name, rerr)
							}
							publishSoakAbort(cfg.Registry, algo, prof, rerr)
							if cfg.Verbose {
								fmt.Fprintf(cfg.Log, "run %s %s %s workers=%d seed=%#x: recovered abort: %v\n",
									algo, pg.spec, prof.Name, opts.Workers, opts.Seed, rerr)
							}
							continue
						}
						if res.Truncated {
							rep.Truncated++
						}
						rep.StaleSteals += res.Counters.StealStale
						if d := res.Duplicates(); d > 0 {
							// Hybrid runs can report negative
							// Duplicates() — bottom-up levels settle
							// vertices without pops — which would
							// silently shrink the sweep total.
							rep.Duplicates += d
						}

						vs := AuditGoal(pg.g, 0, pg.want, goal, res)
						vs = append(vs, levelViolations(inj)...)
						publishSoakRun(cfg.Registry, algo, prof, inj, res, len(vs))
						if cfg.Verbose {
							fmt.Fprintf(cfg.Log, "run %s %s %s workers=%d seed=%#x: %d injections, %d dup, %d violations\n",
								algo, pg.spec, prof.Name, opts.Workers, opts.Seed, inj.Injections(), res.Duplicates(), len(vs))
						}
						if len(vs) == 0 {
							continue
						}
						rep.Failures++
						repro := Repro{
							Graph: pg.spec, Source: 0, Algorithm: algo,
							Options: opts, Profile: prof, InjectionSeed: injSeed,
							EngineRun:  cfg.Engines,
							Violations: vs,
						}
						fmt.Fprintf(cfg.Log, "FAIL %s on %s profile=%s: %v\n", algo, pg.spec, prof.Name, vs[0])
						if cfg.ArtifactDir != "" {
							path, err := WriteRepro(cfg.ArtifactDir, repro)
							if err != nil {
								return nil, err
							}
							rep.Artifacts = append(rep.Artifacts, path)
							fmt.Fprintf(cfg.Log, "  repro artifact: %s\n", path)
						}
					}
				}
			}
		}
		if cfg.Duration <= 0 || expired() {
			break
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// publishSoakRun feeds one audited run into the live registry. Called
// after the audit, entirely outside the run, so the sweep's timing and
// interleavings are unaffected.
func publishSoakRun(reg *obs.Registry, algo core.Algorithm, prof Profile, inj *Injector, res *core.Result, violations int) {
	if reg == nil {
		return
	}
	algoL := obs.L("algo", string(algo))
	profL := obs.L("profile", prof.Name)
	reg.Counter("optibfs_soak_runs_total", algoL, profL).Inc()
	reg.Counter("optibfs_soak_injections_total", algoL, profL).Add(inj.Injections())
	reg.Counter("optibfs_soak_stale_steals_total", algoL, profL).Add(res.Counters.StealStale)
	if d := res.Duplicates(); d > 0 {
		// Negative under hybrid (bottom-up settles without pops); a
		// counter must never go backwards.
		reg.Counter("optibfs_soak_duplicates_total", algoL, profL).Add(d)
	}
	if violations > 0 {
		reg.Counter("optibfs_soak_failures_total", algoL, profL).Inc()
	}
}

// publishSoakAbort feeds one recovered-abort run into the live
// registry, labeled by which typed error surfaced.
func publishSoakAbort(reg *obs.Registry, algo core.Algorithm, prof Profile, err error) {
	if reg == nil {
		return
	}
	kind := "stall"
	var wp *core.WorkerPanicError
	if errors.As(err, &wp) {
		kind = "panic"
	}
	reg.Counter("optibfs_soak_runs_total", obs.L("algo", string(algo)), obs.L("profile", prof.Name)).Inc()
	reg.Counter("optibfs_soak_recovered_aborts_total",
		obs.L("algo", string(algo)), obs.L("profile", prof.Name), obs.L("kind", kind)).Inc()
}

// hashString mixes a short label into a seed.
func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
