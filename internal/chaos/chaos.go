// Package chaos is the deterministic fault-injection ("chaos
// scheduler") and invariant-audit harness for the optimistic BFS
// protocols in internal/core.
//
// The paper's correctness claim is that the protocols' deliberate
// races — torn (q, f, r) descriptor reads, backward-moving fronts,
// duplicated dispatch units — are benign. End-state distance checks
// alone cannot provoke the rare interleavings on a fast machine, and
// cannot localize a violation when one slips through. This package
// attacks both gaps:
//
//   - Injector implements core.ChaosHook: seeded per-worker decision
//     streams decide, at each instrumented racy point, whether to
//     stretch the read→write window with scheduler yields and spin
//     work, making stale steals, overlapping segments, and duplicate
//     phase-2 units common instead of one-in-a-million.
//   - Audit checks a finished run against the protocol invariants:
//     distances equal the serial oracle and are structurally valid,
//     discoveries are conserved (Reached−1 ≤ Σ Discovered ≤ Pops−1;
//     the slack is exactly the benign duplicate-discovery count),
//     duplicate work only ever adds pops (Pops ≥ Reached), level
//     sizes account for every reached vertex, and parents (when
//     tracked) form a valid BFS tree. The injector also receives the
//     per-level unconsumed-slot audit from the lockfree runners.
//   - Soak sweeps variants × graphs × profiles × seeds, diffing every
//     run against graph.ReferenceBFS; a failure emits a minimal JSON
//     repro artifact (graph params, seeds, options, profile) that
//     Replay re-executes.
package chaos

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/rng"
)

// Profile describes one perturbation shape: the probability, per chaos
// point, that a worker passing it is delayed, and how heavy the delay
// is. The zero value perturbs nothing (a pure-observation baseline).
// PanicProb and StallMillis graduate a profile from benign-race
// provocation to malign-fault injection (see Disruptive).
type Profile struct {
	// Name identifies the profile in reports and repro artifacts.
	Name string `json:"name"`
	// Prob[p] is the probability that a firing of core.ChaosPoint p
	// perturbs the worker.
	Prob [core.NumChaosPoints]float64 `json:"prob"`
	// Yields is how many scheduler yields one perturbation performs.
	Yields int `json:"yields"`
	// Spin adds busy-work iterations per perturbation, jitter finer
	// than a full scheduler yield.
	Spin int `json:"spin"`
	// PanicProb is the probability that a perturbation panics the
	// worker instead of delaying it, exercising the engine's recovery
	// barrier (the run must end in *core.WorkerPanicError, never a
	// process crash). Drawn from the same per-worker stream as the
	// perturbation decision, so panics replay deterministically per
	// (profile, seed, worker, firing count).
	PanicProb float64 `json:"panic_prob,omitempty"`
	// StallMillis, when positive, turns perturbations at
	// core.ChaosStall into a sleep of this many milliseconds —
	// simulating a wedged worker so the soak can verify the stall
	// watchdog fires within Options.StallTimeout. Other points are
	// unaffected (their perturbations stay yields/spin/panic).
	StallMillis int `json:"stall_millis,omitempty"`
	// FlipProb is the probability that a hybrid engine's alpha/beta
	// direction decision is inverted at each level barrier
	// (core.ChaosDirectionFlip via core.ChaosDirectionController) —
	// driving the frontier representation conversions through
	// boundaries the heuristics would rarely pick. Drawn from a
	// dedicated stream (the decision runs single-threaded on the
	// driver, not on a worker), so flips replay deterministically per
	// (profile, seed, decision count). Only benign: a flipped decision
	// changes work shape, never correctness.
	FlipProb float64 `json:"flip_prob,omitempty"`
}

// Disruptive reports whether the profile injects malign faults —
// panics or forced stalls — that legitimately abort runs. The soak
// treats such aborts as expected recovery outcomes (counted, engine
// discarded) rather than harness failures, and arms the watchdog.
func (p Profile) Disruptive() bool { return p.PanicProb > 0 || p.StallMillis > 0 }

// prob builds a per-point probability table from (point, prob) pairs.
func prob(pairs ...any) [core.NumChaosPoints]float64 {
	var t [core.NumChaosPoints]float64
	for i := 0; i < len(pairs); i += 2 {
		t[pairs[i].(core.ChaosPoint)] = pairs[i+1].(float64)
	}
	return t
}

// uniformProb gives every chaos point the same perturbation probability.
func uniformProb(p float64) [core.NumChaosPoints]float64 {
	var t [core.NumChaosPoints]float64
	for i := range t {
		t[i] = p
	}
	return t
}

// Profiles returns the built-in perturbation profiles, mildest first.
// "baseline" injects nothing (pure differential run + audits);
// the targeted profiles each hammer one protocol window.
func Profiles() []Profile {
	return []Profile{
		{Name: "baseline"},
		{Name: "jitter", Prob: uniformProb(0.02), Yields: 1},
		{Name: "steal-storm", Prob: prob(core.ChaosStealPublish, 0.8, core.ChaosSlotZero, 0.01), Yields: 4, Spin: 64},
		{Name: "drain-lag", Prob: prob(core.ChaosSlotZero, 0.05, core.ChaosDrainAdvance, 0.05), Yields: 2},
		{Name: "front-races", Prob: prob(core.ChaosFrontStore, 0.7, core.ChaosPoolStore, 0.7), Yields: 3, Spin: 32},
		{Name: "phase2-dup", Prob: prob(core.ChaosPhase2Advance, 0.8), Yields: 3},
		// flush-storm interleaves steals against half-flushed publication
		// blocks: stalling workers inside flushBlock (between the block
		// copy and the tail store) while steal publications and slot
		// zeroing race around them maximizes the time output queues spend
		// partially published.
		{Name: "flush-storm", Prob: prob(core.ChaosBlockFlush, 0.8, core.ChaosStealPublish, 0.5, core.ChaosSlotZero, 0.02), Yields: 3, Spin: 32},
		{Name: "mixed", Prob: uniformProb(0.1), Yields: 2, Spin: 16},
		// direction-flip attacks the hybrid conversions: invert roughly a
		// third of the alpha/beta decisions so bottom-up levels start on
		// tiny frontiers, top-down resumes mid-growth, and the bitmap↔
		// queue conversions cross hostile boundaries — with mild benign
		// jitter underneath so the conversions overlap in-flight races.
		// Meaningful only on runs with Options.Hybrid; elsewhere it
		// degrades to plain jitter.
		{Name: "direction-flip", Prob: uniformProb(0.05), Yields: 2, Spin: 16, FlipProb: 0.35},
		// panic-storm is the malign-fault profile: every worker rolls at
		// the top of every level (ChaosStall) and a perturbation there
		// either panics (PanicProb) or sleeps StallMillis; the sparse
		// mid-protocol points panic from inside drains and steals. Runs
		// under this profile are expected to abort — the soak asserts the
		// process survives, the typed errors surface, and forced stalls
		// are detected within the watchdog window.
		{Name: "panic-storm", Prob: prob(core.ChaosStall, 0.9, core.ChaosSlotZero, 0.01, core.ChaosStealPublish, 0.2, core.ChaosBlockFlush, 0.05), Yields: 1, PanicProb: 0.25, StallMillis: 150},
	}
}

// ProfileByName finds a built-in profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("chaos: unknown profile %q", name)
}

// injWorker is one worker's private injector lane: its decision
// stream and counts, padded so lanes never share a cache line (the
// injector sits on the protocols' hot paths while enabled).
type injWorker struct {
	r        rng.SplitMix64
	fired    [core.NumChaosPoints]int64
	injected int64
	panics   int64
	stalls   int64
	spinSink uint64 // defeats dead-code elimination of the spin loop
	_        [64]byte
}

// Injector implements core.ChaosHook (plus core.ChaosLevelAuditor and
// core.ChaosFlushAuditor)
// with deterministic seeded per-worker decision streams: worker w's
// k-th pass through the hooks always draws the same random number for
// a given (profile, seed), so an interleaving provoked once can be
// provoked again. Safe for concurrent use by all workers.
type Injector struct {
	prof    Profile
	seed    uint64
	workers []injWorker

	// dirR is the direction-flip decision stream (FlipProb). The hybrid
	// decision runs single-threaded on the driver goroutine, but a
	// sharded engine has no worker identity there and soak reuse must
	// stay race-clean, so the stream sits behind its own mutex instead
	// of a worker lane.
	dirMu sync.Mutex
	dirR  rng.SplitMix64
	flips int64

	mu         sync.Mutex
	violations []string
}

// NewInjector builds an injector for `workers` worker goroutines.
func NewInjector(prof Profile, seed uint64, workers int) *Injector {
	if workers < 1 {
		workers = 1
	}
	in := &Injector{prof: prof, seed: seed, workers: make([]injWorker, workers)}
	for i := range in.workers {
		in.workers[i].r = *rng.NewSplitMix64(rng.Mix64(seed ^ rng.Mix64(uint64(i)+0xc4a05)))
	}
	in.dirR = *rng.NewSplitMix64(rng.Mix64(seed ^ 0xd17ec7))
	return in
}

// Profile returns the profile the injector was built with.
func (in *Injector) Profile() Profile { return in.prof }

// Seed returns the injection seed the injector was built with.
func (in *Injector) Seed() uint64 { return in.seed }

// At implements core.ChaosHook: consult worker's decision stream and
// possibly stretch the racy window with yields and spin work — or,
// under a Disruptive profile, panic the worker or put it to sleep.
func (in *Injector) At(point core.ChaosPoint, worker int, value int64) {
	w := &in.workers[worker]
	w.fired[point]++
	p := in.prof.Prob[point]
	if p <= 0 {
		return
	}
	// 53-bit uniform draw in [0,1), the xoshiro Float64 construction.
	if float64(w.r.Next()>>11)/(1<<53) >= p {
		return
	}
	w.injected++
	if pp := in.prof.PanicProb; pp > 0 && float64(w.r.Next()>>11)/(1<<53) < pp {
		// The panic draw consumes one stream step whether or not it
		// fires, keeping later decisions deterministic either way.
		// ChaosDirectionFlip runs on the driver goroutine outside any
		// recovery barrier (see its doc), so the malign fault is
		// suppressed there — after the draw, keeping the stream aligned.
		if point != core.ChaosDirectionFlip {
			w.panics++
			panic(fmt.Sprintf("chaos: injected panic at %s (worker %d, value %d)", point, worker, value))
		}
	}
	if point == core.ChaosStall && in.prof.StallMillis > 0 {
		w.stalls++
		time.Sleep(time.Duration(in.prof.StallMillis) * time.Millisecond)
		return
	}
	for i := 0; i < in.prof.Yields; i++ {
		runtime.Gosched()
	}
	if n := in.prof.Spin; n > 0 {
		x := uint64(value)
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		w.spinSink += x
	}
}

// DirectionChoice implements core.ChaosDirectionController: with
// probability Profile.FlipProb, invert the hybrid engine's alpha/beta
// decision for the next level. The draw always consumes one step of
// the dedicated direction stream, so the flip schedule is a
// deterministic function of (profile, seed, decision index) regardless
// of what the heuristics chose. Runs on the driver goroutine between
// level barriers — never panics, never sleeps.
func (in *Injector) DirectionChoice(level int32, bottomUp bool) bool {
	fp := in.prof.FlipProb
	if fp <= 0 {
		return bottomUp
	}
	in.dirMu.Lock()
	flip := float64(in.dirR.Next()>>11)/(1<<53) < fp
	if flip {
		in.flips++
	}
	in.dirMu.Unlock()
	if flip {
		return !bottomUp
	}
	return bottomUp
}

// DirectionFlips returns how many hybrid direction decisions the
// injector inverted.
func (in *Injector) DirectionFlips() int64 {
	in.dirMu.Lock()
	defer in.dirMu.Unlock()
	return in.flips
}

// LevelEnd implements core.ChaosLevelAuditor: any unconsumed input-
// queue slot after a level barrier is a protocol violation (the
// zero-on-read discipline guarantees full consumption).
func (in *Injector) LevelEnd(level int32, unconsumed int64) {
	if unconsumed == 0 {
		return
	}
	in.mu.Lock()
	in.violations = append(in.violations,
		fmt.Sprintf("level %d left %d input-queue slots unconsumed", level, unconsumed))
	in.mu.Unlock()
}

// FlushEnd implements core.ChaosFlushAuditor: any discovery still
// unpublished after a level barrier — sitting in a private block or in
// an output queue beyond its published tail — is a protocol violation
// (the barrier flush guarantees full publication).
func (in *Injector) FlushEnd(level int32, unpublished int64) {
	if unpublished == 0 {
		return
	}
	in.mu.Lock()
	in.violations = append(in.violations,
		fmt.Sprintf("level %d left %d discoveries unpublished at the barrier", level, unpublished))
	in.mu.Unlock()
}

// Injections returns how many perturbations were performed.
func (in *Injector) Injections() int64 {
	var n int64
	for i := range in.workers {
		n += in.workers[i].injected
	}
	return n
}

// Panics returns how many injected panics the workers threw.
func (in *Injector) Panics() int64 {
	var n int64
	for i := range in.workers {
		n += in.workers[i].panics
	}
	return n
}

// Stalls returns how many forced stalls (ChaosStall sleeps) were
// injected.
func (in *Injector) Stalls() int64 {
	var n int64
	for i := range in.workers {
		n += in.workers[i].stalls
	}
	return n
}

// Fired returns how many times the given chaos point was passed
// (perturbed or not) across all workers.
func (in *Injector) Fired(point core.ChaosPoint) int64 {
	var n int64
	for i := range in.workers {
		n += in.workers[i].fired[point]
	}
	return n
}

// Violations returns the level-audit violations recorded so far.
func (in *Injector) Violations() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.violations...)
}
