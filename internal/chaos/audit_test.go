package chaos

import (
	"strings"
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

// goodRun produces a correct Result to tamper with.
func goodRun(t *testing.T) (*graph.CSR, *core.Result) {
	t.Helper()
	g, err := gen.ErdosRenyi(500, 3000, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(g, 0, core.BFSWL, core.Options{Workers: 4, Seed: 1, TrackParents: true})
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

// expectViolation asserts the named invariant is among the findings.
func expectViolation(t *testing.T, vs []Violation, invariant string) {
	t.Helper()
	for _, v := range vs {
		if v.Invariant == invariant {
			if v.Detail == "" {
				t.Fatalf("%s reported without detail", invariant)
			}
			return
		}
	}
	t.Fatalf("invariant %q not reported; got %v", invariant, vs)
}

func TestAuditCleanRunPasses(t *testing.T) {
	g, res := goodRun(t)
	if vs := Audit(g, 0, nil, res); len(vs) != 0 {
		t.Fatalf("clean run reported violations: %v", vs)
	}
}

func TestAuditCatchesWrongDistance(t *testing.T) {
	g, res := goodRun(t)
	bad := *res
	bad.Dist = append([]int32(nil), res.Dist...)
	// Find a reached non-source vertex and corrupt its level.
	for v := int32(1); v < g.NumVertices(); v++ {
		if bad.Dist[v] > 0 {
			bad.Dist[v] += 3
			break
		}
	}
	vs := Audit(g, 0, nil, &bad)
	expectViolation(t, vs, "distances-match-oracle")
	expectViolation(t, vs, "distances-structurally-valid")
}

func TestAuditCatchesSkippedDiscovery(t *testing.T) {
	g, res := goodRun(t)
	bad := *res
	bad.Counters.Discovered = bad.Reached - 2 // one vertex reached but never discovered
	vs := Audit(g, 0, nil, &bad)
	expectViolation(t, vs, "discovered-conservation")
	if !strings.Contains(vs[0].Detail, "never discovered") {
		t.Fatalf("wrong side of the conservation bound: %v", vs[0])
	}
}

func TestAuditCatchesUnpoppedEntries(t *testing.T) {
	g, res := goodRun(t)
	bad := *res
	bad.Counters.Discovered = bad.Pops + 5 // entries appended but never popped
	vs := Audit(g, 0, nil, &bad)
	expectViolation(t, vs, "discovered-conservation")
}

func TestAuditCatchesMissedPops(t *testing.T) {
	g, res := goodRun(t)
	bad := *res
	bad.Pops = bad.Reached - 1
	expectViolation(t, Audit(g, 0, nil, &bad), "pops-cover-reached")
}

func TestAuditCatchesLevelSizeLeak(t *testing.T) {
	g, res := goodRun(t)
	bad := *res
	bad.LevelSizes = append([]int64(nil), res.LevelSizes...)
	bad.LevelSizes[0] = 0 // the source vanished from its level
	expectViolation(t, Audit(g, 0, nil, &bad), "level-sizes-account")
}

func TestAuditCatchesBadParent(t *testing.T) {
	g, res := goodRun(t)
	bad := *res
	bad.Parent = append([]int32(nil), res.Parent...)
	for v := int32(1); v < g.NumVertices(); v++ {
		if bad.Dist[v] > 1 {
			bad.Parent[v] = 0 // the source is never a valid parent at depth ≥ 2
			break
		}
	}
	expectViolation(t, Audit(g, 0, nil, &bad), "parents-valid")
}

func TestAuditAcceptsPrecomputedOracle(t *testing.T) {
	g, res := goodRun(t)
	want := graph.ReferenceBFS(g, 0)
	if vs := Audit(g, 0, want, res); len(vs) != 0 {
		t.Fatalf("violations with precomputed oracle: %v", vs)
	}
	// A wrong oracle must surface as a mismatch, proving it is used.
	want[len(want)-1]++
	if vs := Audit(g, 0, want, res); len(vs) == 0 {
		t.Fatal("tampered oracle not detected")
	}
}
