package chaos

import (
	"errors"
	"fmt"
	"io"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/graph"
	"optibfs/internal/rng"
)

// MSLaneConfig sweeps the fused multi-source engine (core.MSEngine)
// under perturbation and audits every lane against the serial oracle.
// The fused kernel's correctness argument is subtle — the advisory
// mark masks may lose OR'd lane bits, which is benign only if losses
// strictly understate (duplicates, never misses) — so the auditor
// checks per-lane exactness, not just aggregate counters.
type MSLaneConfig struct {
	// Graphs to sweep. Nil = DefaultGraphs().
	Graphs []GraphSpec
	// Profiles to inject. Nil = Profiles() (includes panic and stall
	// profiles; both must leave completed lanes exact).
	Profiles []Profile
	// Rounds is how many fused runs each (graph, profile) pair gets,
	// with lane counts and sources re-derived per round. Default 3.
	Rounds int
	// Workers per engine. Default 4.
	Workers int
	// BaseSeed anchors the deterministic sweep. Default fixed.
	BaseSeed uint64
	// Log receives progress lines. Nil = discard.
	Log io.Writer
}

func (cfg MSLaneConfig) withDefaults() MSLaneConfig {
	if cfg.Graphs == nil {
		cfg.Graphs = DefaultGraphs()
	}
	if cfg.Profiles == nil {
		cfg.Profiles = Profiles()
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.BaseSeed == 0 {
		cfg.BaseSeed = 0x5bf5ea7e
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return cfg
}

// MSLaneReport summarizes one MSLaneSoak sweep.
type MSLaneReport struct {
	// Runs is the number of fused runs executed.
	Runs int
	// LanesAudited counts fully-validated lanes across completed runs.
	LanesAudited int
	// PartialLanes counts lanes audited in partial (aborted-run) form.
	PartialLanes int
	// Failures is how many runs broke at least one lane invariant.
	Failures int
	// Panics counts runs aborted by a recovered worker panic.
	Panics int
	// Stalls counts runs aborted by a detected stall.
	Stalls int
	// Injections totals the injector's perturbations.
	Injections int64
	// Violations collects every lane-invariant violation observed.
	Violations []Violation
	// Elapsed is the sweep wall-clock time.
	Elapsed time.Duration
}

// String renders a one-line summary.
func (r *MSLaneReport) String() string {
	return fmt.Sprintf("mslanes: %d fused runs, %d lanes audited (%d partial), %d failures, %d recovered panics, %d stalls, %d injections, %s",
		r.Runs, r.LanesAudited, r.PartialLanes, r.Failures, r.Panics, r.Stalls, r.Injections,
		r.Elapsed.Round(time.Millisecond))
}

// MSLaneSoak sweeps graphs × profiles × rounds over a reused fused
// engine, auditing every lane of every run against graph.ReferenceBFS.
// Completed runs must be exact per lane (distances, parents, levels,
// reached/edge counters). Aborted runs — injected panics, which poison
// the engine, are the expected abort class — must leave every settled
// per-lane distance exact and the lane's Reached equal to its settled
// count: partial results understate, never lie.
func MSLaneSoak(cfg MSLaneConfig) (*MSLaneReport, error) {
	cfg = cfg.withDefaults()
	rep := &MSLaneReport{}
	start := time.Now()
	r := rng.NewSplitMix64(cfg.BaseSeed)
	for _, spec := range cfg.Graphs {
		g, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		// Oracle cache: lanes across rounds reuse sources.
		oracle := map[int32][]int32{}
		ref := func(src int32) []int32 {
			if d, ok := oracle[src]; ok {
				return d
			}
			d := graph.ReferenceBFS(g, src)
			oracle[src] = d
			return d
		}
		for _, prof := range cfg.Profiles {
			eng, err := core.NewMSEngine(g, core.Options{Workers: cfg.Workers, Seed: r.Next()})
			if err != nil {
				return nil, err
			}
			for round := 0; round < cfg.Rounds; round++ {
				lanes := int(r.Next()%core.MaxLanes) + 1
				srcs := make([]int32, lanes)
				for i := range srcs {
					srcs[i] = int32(r.Next() % uint64(g.NumVertices()))
				}
				inj := NewInjector(prof, r.Next(), cfg.Workers)
				eng.SetChaos(inj)
				res, rerr := eng.Run(srcs)
				rep.Runs++
				rep.Injections += inj.Injections()
				var vs []Violation
				switch {
				case rerr == nil:
					for i := range srcs {
						vs = append(vs, auditLane(g, ref, res.Lane(i), false)...)
						rep.LanesAudited++
					}
				case recoveryAbort(rerr):
					var wp *core.WorkerPanicError
					if errors.As(rerr, &wp) {
						rep.Panics++
					} else {
						rep.Stalls++
					}
					if res != nil {
						for i := range srcs {
							vs = append(vs, auditLane(g, ref, res.Lane(i), true)...)
							rep.PartialLanes++
						}
					}
					// A panic poisons the engine; replace it like the
					// serve layer would.
					eng.Close()
					if eng, err = core.NewMSEngine(g, core.Options{Workers: cfg.Workers, Seed: r.Next()}); err != nil {
						return nil, err
					}
				default:
					eng.Close()
					return nil, fmt.Errorf("chaos: fused run on %s/%s: %w", spec, prof.Name, rerr)
				}
				if len(vs) > 0 {
					rep.Failures++
					rep.Violations = append(rep.Violations, vs...)
					fmt.Fprintf(cfg.Log, "FAIL %s profile=%s lanes=%d: %d violations (first: %s)\n",
						spec, prof.Name, lanes, len(vs), vs[0])
				}
			}
			eng.Close()
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// auditLane checks one lane against the oracle. Partial lanes (from
// an aborted run) must understate exactly: every settled distance
// matches the oracle and Reached equals the settled count. Complete
// lanes must match the oracle everywhere, with a valid parent tree
// and exact counters.
func auditLane(g *graph.CSR, ref func(int32) []int32, lr *core.LaneResult, partial bool) []Violation {
	var vs []Violation
	want := ref(lr.Src)
	if partial {
		var settled int64
		for v, d := range lr.Dist {
			if d == graph.Unreached {
				continue
			}
			settled++
			if d != want[v] {
				vs = append(vs, Violation{
					Invariant: "ms-lane-partial-exact",
					Detail:    fmt.Sprintf("lane src=%d: settled dist[%d]=%d, oracle %d", lr.Src, v, d, want[v]),
				})
			}
		}
		if settled != lr.Reached {
			vs = append(vs, Violation{
				Invariant: "ms-lane-partial-count",
				Detail:    fmt.Sprintf("lane src=%d: Reached=%d but %d settled", lr.Src, lr.Reached, settled),
			})
		}
		return vs
	}
	if err := graph.EqualDistances(lr.Dist, want); err != nil {
		vs = append(vs, Violation{
			Invariant: "ms-lane-distances",
			Detail:    fmt.Sprintf("lane src=%d: %v", lr.Src, err),
		})
	}
	if lr.Parent != nil {
		if err := graph.ValidateParents(g, lr.Src, lr.Dist, lr.Parent); err != nil {
			vs = append(vs, Violation{
				Invariant: "ms-lane-parents",
				Detail:    fmt.Sprintf("lane src=%d: %v", lr.Src, err),
			})
		}
	}
	wantReach, wantEdges := graph.ReachedCount(g, want)
	if lr.Reached != wantReach || lr.EdgesTraversed != wantEdges {
		vs = append(vs, Violation{
			Invariant: "ms-lane-counters",
			Detail: fmt.Sprintf("lane src=%d: reached/edges %d/%d, oracle %d/%d",
				lr.Src, lr.Reached, lr.EdgesTraversed, wantReach, wantEdges),
		})
	}
	return vs
}
