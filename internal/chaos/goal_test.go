package chaos

import (
	"bytes"
	"strings"
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

// TestAuditGoalContract: a goal-terminated run passes the goal-aware
// audit, tampering with a settled distance, the truncation flag, or
// the level count is caught, and an unbounded goal delegates to the
// plain full-oracle Audit.
func TestAuditGoalContract(t *testing.T) {
	g, err := gen.LayeredRandom(1500, 7500, 30, 9, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)

	// Depth-bounded run: 5 closed levels, everything deeper Unreached.
	goal := core.Goal{MaxDepth: 5}
	res, err := core.Run(g, 0, core.BFSWL, core.Options{Workers: 4, TrackParents: true, MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Levels != 5 {
		t.Fatalf("depth-bounded run: Levels=%d Truncated=%v", res.Levels, res.Truncated)
	}
	if vs := AuditGoal(g, 0, want, goal, res); len(vs) != 0 {
		t.Fatalf("clean truncated run flagged: %v", vs)
	}
	// nil oracle computes its own reference.
	if vs := AuditGoal(g, 0, nil, goal, res); len(vs) != 0 {
		t.Fatalf("clean truncated run flagged with computed oracle: %v", vs)
	}

	flagged := func(vs []Violation, invariant string) bool {
		for _, v := range vs {
			if v.Invariant == invariant {
				return true
			}
		}
		return false
	}

	// Tamper with a settled distance: caught as goal-distances-exact.
	var settled int32 = -1
	for v, d := range want {
		if d > 0 && d < 5 {
			settled = int32(v)
			break
		}
	}
	saved := res.Dist[settled]
	res.Dist[settled] = saved + 1
	if vs := AuditGoal(g, 0, want, goal, res); !flagged(vs, "goal-distances-exact") {
		t.Fatalf("corrupted settled distance not flagged: %v", vs)
	}
	res.Dist[settled] = saved

	// Lie about truncation: caught as goal-truncation-honest.
	res.Truncated = false
	if vs := AuditGoal(g, 0, want, goal, res); !flagged(vs, "goal-truncation-honest") {
		t.Fatalf("false truncation flag not flagged: %v", vs)
	}
	res.Truncated = true

	// Misreport the closed-level count: caught as goal-levels-match
	// (and the level histogram no longer accounts for the prefix).
	res.Levels--
	if vs := AuditGoal(g, 0, want, goal, res); !flagged(vs, "goal-levels-match") {
		t.Fatalf("wrong closed-level count not flagged: %v", vs)
	}
	res.Levels++

	// Target goal: terminate at a depth-8 vertex's level barrier.
	var deep int32 = -1
	for v, d := range want {
		if d == 8 {
			deep = int32(v)
			break
		}
	}
	tres, err := core.Run(g, 0, core.BFSWL, core.Options{Workers: 4, Target: deep + 1})
	if err != nil {
		t.Fatal(err)
	}
	if vs := AuditGoal(g, 0, want, core.GoalTo(deep), tres); len(vs) != 0 {
		t.Fatalf("clean target run flagged: %v", vs)
	}

	// Unbounded goal delegates to the full-oracle Audit.
	full, err := core.Run(g, 0, core.BFSWL, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if vs := AuditGoal(g, 0, want, core.Goal{}, full); len(vs) != 0 {
		t.Fatalf("unbounded delegation flagged a clean run: %v", vs)
	}
	full.Dist[settled] = -7
	if vs := AuditGoal(g, 0, want, core.Goal{}, full); !flagged(vs, "distances-match-oracle") {
		t.Fatalf("unbounded delegation missed a corrupted distance: %v", vs)
	}
}

// TestSoakGoalDimension sweeps a deep layered graph so the derived
// goals (targets and shallow depth bounds) genuinely truncate runs:
// the sweep must come back clean under the goal-aware audit, some
// cells must actually have terminated early, and the report line must
// say so. The engine sweep reuses one engine per pair across bounded
// and unbounded cells — a leaked truncation (stale goal surviving into
// the next run) would surface as a goal-levels-match violation there.
func TestSoakGoalDimension(t *testing.T) {
	graphs := []GraphSpec{{Kind: "layered", N: 1500, M: 7500, Layers: 30, Seed: 9}}
	profiles := []Profile{{Name: "baseline"}, mustProfile(t, "mixed")}
	for _, engines := range []bool{false, true} {
		var buf bytes.Buffer
		rep, err := Soak(SoakConfig{
			Graphs:     graphs,
			Profiles:   profiles,
			Seeds:      3,
			Workers:    4,
			Engines:    engines,
			Log:        &buf,
			Algorithms: []core.Algorithm{core.Serial, core.BFSWL, core.BFSWSL},
		})
		if err != nil {
			t.Fatalf("engines=%v: %v", engines, err)
		}
		if rep.Failures != 0 {
			t.Fatalf("engines=%v: goal sweep broke invariants:\n%s", engines, buf.String())
		}
		if rep.Truncated == 0 {
			t.Fatalf("engines=%v: no cell terminated early; the goal dimension is dead", engines)
		}
		if !strings.Contains(rep.String(), "goal-truncated") {
			t.Fatalf("engines=%v: report line omits the goal dimension: %s", engines, rep)
		}
	}
}

// TestReplayGoalRun round-trips a goal through a repro artifact: the
// replayed run terminates where the recorded one did and the replay
// audits it by the goal-aware contract (a full-oracle audit would
// flag every Unreached vertex past the bound).
func TestReplayGoalRun(t *testing.T) {
	r := Repro{
		Graph:     GraphSpec{Kind: "layered", N: 1500, M: 7500, Layers: 30, Seed: 9},
		Source:    0,
		Algorithm: core.BFSWSL,
		Options: RunOptions{
			Workers: 4, TrackParents: true, MaxDepth: 4, Seed: 0xfeed,
		},
		Profile:       mustProfile(t, "steal-storm"),
		InjectionSeed: 0xabcde,
	}
	dir := t.TempDir()
	path, err := WriteRepro(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Options.MaxDepth != 4 {
		t.Fatalf("depth bound lost in artifact round-trip: %+v", got.Options)
	}
	vs, res, err := Replay(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("goal replay of a correct run reported violations: %v", vs)
	}
	if !res.Truncated || res.Levels != 4 {
		t.Fatalf("goal replay: Levels=%d Truncated=%v, want 4/true", res.Levels, res.Truncated)
	}

	// The engine-run replay path honors the construction-time goal too.
	got.EngineRun = true
	vs, res, err = Replay(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("engine goal replay reported violations: %v", vs)
	}
	if !res.Truncated || res.Levels != 4 {
		t.Fatalf("engine goal replay: Levels=%d Truncated=%v, want 4/true", res.Levels, res.Truncated)
	}
}
