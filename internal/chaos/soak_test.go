package chaos

import (
	"bytes"
	"strings"
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/obs"
	"optibfs/internal/rng"
)

func TestGraphSpecGenerate(t *testing.T) {
	for _, spec := range DefaultGraphs() {
		g, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if g.NumVertices() != spec.N {
			t.Fatalf("%s: generated %d vertices", spec, g.NumVertices())
		}
	}
	if _, err := (GraphSpec{Kind: "moebius", N: 8}).Generate(); err == nil {
		t.Fatal("unknown graph kind accepted")
	}
}

func TestDeriveOptionsStayInRange(t *testing.T) {
	r := rng.NewSplitMix64(17)
	const maxWorkers = 9
	const n = 4096
	goals := 0
	for i := 0; i < 500; i++ {
		o := deriveOptions(r, maxWorkers, n)
		if o.Workers < 2 || o.Workers > maxWorkers {
			t.Fatalf("workers %d out of [2, %d]", o.Workers, maxWorkers)
		}
		if o.Pools < 1 || o.Pools > o.Workers {
			t.Fatalf("pools %d out of [1, %d]", o.Pools, o.Workers)
		}
		if o.SameSocketBias < 0 || o.SameSocketBias > 1 {
			t.Fatalf("bias %g out of [0, 1]", o.SameSocketBias)
		}
		if o.Sockets == 1 || o.Sockets < 0 || o.Sockets > 4 {
			t.Fatalf("sockets %d unexpected", o.Sockets)
		}
		if o.Core().SameSocketBias != o.SameSocketBias {
			t.Fatalf("bias %g lost in Core() conversion", o.SameSocketBias)
		}
		switch o.Shards {
		case 0, 2, 4:
		default:
			t.Fatalf("shards %d unexpected", o.Shards)
		}
		if o.Shards > 1 && o.Reorder != "" {
			t.Fatalf("sharded draw kept reorder %q (the sharded backend rejects it)", o.Reorder)
		}
		if o.Core().Shards != o.Shards {
			t.Fatalf("shards %d lost in Core() conversion", o.Shards)
		}
		if o.Target < 0 || o.Target > n {
			t.Fatalf("target %d out of vertex+1 range [0, %d]", o.Target, n)
		}
		if o.MaxDepth < 0 || o.MaxDepth > 8 {
			t.Fatalf("depth bound %d out of [0, 8]", o.MaxDepth)
		}
		if o.Core().Target != o.Target || o.Core().MaxDepth != o.MaxDepth {
			t.Fatalf("goal (%d, %d) lost in Core() conversion", o.Target, o.MaxDepth)
		}
		if o.Target != 0 || o.MaxDepth != 0 {
			goals++
		}
	}
	// About a third of the derived sets must carry a goal — the sweep
	// would silently stop covering early termination if the draw broke.
	if goals < 100 || goals > 450 {
		t.Fatalf("%d of 500 derived option sets carry a goal, want roughly two thirds", goals)
	}
}

func TestReproRoundTripAndReplay(t *testing.T) {
	r := Repro{
		Graph:     GraphSpec{Kind: "layered", N: 1500, M: 7500, Layers: 30, Seed: 9},
		Source:    0,
		Algorithm: core.BFSWSL,
		Options: RunOptions{
			Workers: 4, SegmentSize: 1, Sockets: 2, SameSocketBias: 0,
			Phase2Stealing: true, TrackParents: true, Seed: 0xfeed,
		},
		Profile:       mustProfile(t, "steal-storm"),
		InjectionSeed: 0xabcde,
	}
	dir := t.TempDir()
	path, err := WriteRepro(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph != r.Graph || got.Algorithm != r.Algorithm || got.Options != r.Options ||
		got.Profile.Name != r.Profile.Name || got.Profile.Prob != r.Profile.Prob ||
		got.InjectionSeed != r.InjectionSeed {
		t.Fatalf("artifact round-trip mangled the repro:\nwrote %+v\nread  %+v", r, got)
	}
	vs, res, err := Replay(got)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 1500 {
		t.Fatalf("replay reached %d of 1500 vertices", res.Reached)
	}
	if len(vs) != 0 {
		t.Fatalf("replay of a correct run reported violations: %v", vs)
	}
	if _, err := LoadRepro(path + ".missing"); err == nil {
		t.Fatal("missing artifact loaded")
	}
}

// TestReplayDefaultsWorkers guards the injector-sizing hazard: an
// artifact with Workers 0 must not build a 1-lane injector for a
// GOMAXPROCS-wide run.
func TestReplayDefaultsWorkers(t *testing.T) {
	r := Repro{
		Graph:     GraphSpec{Kind: "star", N: 512, Seed: 1},
		Algorithm: core.BFSWL,
		Options:   RunOptions{Seed: 3},
		Profile:   mustProfile(t, "mixed"),
	}
	vs, res, err := Replay(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 || res.Reached != 512 {
		t.Fatalf("replay with defaulted workers: reached=%d violations=%v", res.Reached, vs)
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, err := ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSoakSweepAllVariantsClean is the acceptance sweep in miniature:
// every algorithm under aggressive perturbation profiles must survive
// the differential audit with zero violations.
func TestSoakSweepAllVariantsClean(t *testing.T) {
	graphs := []GraphSpec{
		{Kind: "layered", N: 1200, M: 6000, Layers: 25, Seed: 3},
		{Kind: "star", N: 1024, Seed: 4},
	}
	profiles := []Profile{
		mustProfile(t, "steal-storm"),
		mustProfile(t, "mixed"),
	}
	seeds := 2
	if testing.Short() {
		graphs = graphs[:1]
		profiles = profiles[1:]
		seeds = 1
	}
	var buf bytes.Buffer
	rep, err := Soak(SoakConfig{
		Graphs:   graphs,
		Profiles: profiles,
		Seeds:    seeds,
		Workers:  6,
		Log:      &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := len(graphs) * len(core.Algorithms) * len(profiles) * seeds
	if rep.Runs != wantRuns {
		t.Fatalf("ran %d cells, want %d", rep.Runs, wantRuns)
	}
	if rep.Failures != 0 || len(rep.Artifacts) != 0 {
		t.Fatalf("soak failures: %d\n%s", rep.Failures, buf.String())
	}
	if rep.Injections == 0 {
		t.Fatal("sweep injected nothing")
	}
	if !strings.Contains(rep.String(), "0 failures") {
		t.Fatalf("report line malformed: %s", rep)
	}
}

// TestSoakMinimalConfig runs the smallest possible sweep (serial
// algorithm, inert profile, one seed) with an artifact dir configured
// and checks it stays clean without writing anything, then exercises
// the artifact write path with a synthetic failure.
func TestSoakMinimalConfig(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	rep, err := Soak(SoakConfig{
		Graphs:      []GraphSpec{{Kind: "star", N: 64, Seed: 1}},
		Profiles:    []Profile{{Name: "baseline"}},
		Seeds:       1,
		Workers:     4,
		Log:         &buf,
		Algorithms:  []core.Algorithm{core.Serial},
		ArtifactDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 || len(rep.Artifacts) != 0 {
		t.Fatalf("control sweep failed: %s", buf.String())
	}
	r := Repro{
		Graph:     GraphSpec{Kind: "star", N: 64, Seed: 1},
		Algorithm: core.BFSWL,
		Options:   RunOptions{Workers: 2, Seed: 1},
		Profile:   Profile{Name: "baseline"},
		Violations: []Violation{
			{Invariant: "distances-match-oracle", Detail: "synthetic"},
		},
	}
	path, err := WriteRepro(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Violations) != 1 || got.Violations[0].Invariant != "distances-match-oracle" {
		t.Fatalf("violations lost in round-trip: %+v", got.Violations)
	}
}

// TestSoakEnginesSmoke runs a small sweep entirely through shared
// engines (one per graph-algorithm pair) and checks it stays clean:
// the auditor's oracle comparison now also covers state-reuse bugs —
// a stale epoch stamp or a queue slot leaked by the previous run would
// surface as a distance mismatch on a later cell.
func TestSoakEnginesSmoke(t *testing.T) {
	var buf bytes.Buffer
	rep, err := Soak(SoakConfig{
		Graphs: []GraphSpec{
			{Kind: "star", N: 512, Seed: 4},
			{Kind: "chunglu", N: 1024, M: 8192, Gamma: 2.0, Seed: 2},
		},
		Profiles:   []Profile{{Name: "baseline"}, Profiles()[0]},
		Seeds:      2,
		Workers:    4,
		Engines:    true,
		Log:        &buf,
		Algorithms: []core.Algorithm{core.BFSCL, core.BFSDL, core.BFSWL, core.BFSWSL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("engine sweep broke invariants: %s", buf.String())
	}
	if rep.EngineRuns != rep.Runs || rep.Runs == 0 {
		t.Fatalf("EngineRuns=%d Runs=%d, want all runs on shared engines", rep.EngineRuns, rep.Runs)
	}
	if !strings.Contains(rep.String(), "shared engines") {
		t.Fatalf("report does not mention engine runs: %s", rep)
	}
}

// TestSoakShardedPinned sweeps the lockfree families with the shard
// count pinned to 2 and then 4: every run goes through the sharded
// owner-compute backend under perturbation, and the oracle audit must
// stay clean — the cross-shard exchange gets the same differential
// treatment as the single-engine protocol.
func TestSoakShardedPinned(t *testing.T) {
	for _, shards := range []int{2, 4} {
		var buf bytes.Buffer
		rep, err := Soak(SoakConfig{
			Graphs: []GraphSpec{
				{Kind: "star", N: 512, Seed: 4},
				{Kind: "chunglu", N: 1024, M: 8192, Gamma: 2.0, Seed: 2},
			},
			Profiles:   []Profile{{Name: "baseline"}, Profiles()[0]},
			Seeds:      2,
			Workers:    4,
			Shards:     shards,
			Log:        &buf,
			Algorithms: []core.Algorithm{core.BFSCL, core.BFSDL, core.BFSWL, core.BFSWSL},
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rep.Failures != 0 {
			t.Fatalf("shards=%d sweep broke invariants: %s", shards, buf.String())
		}
		if rep.Runs == 0 {
			t.Fatalf("shards=%d: no runs", shards)
		}
	}
}

// TestSoakShardedEngines reuses one sharded backend per (graph, algo)
// pair across the sweep, so the audit also covers sharded state reuse
// (per-shard epoch filters, exchange queues surviving between runs).
func TestSoakShardedEngines(t *testing.T) {
	var buf bytes.Buffer
	rep, err := Soak(SoakConfig{
		Graphs:     []GraphSpec{{Kind: "chunglu", N: 1024, M: 8192, Gamma: 2.0, Seed: 2}},
		Profiles:   []Profile{{Name: "baseline"}, Profiles()[0]},
		Seeds:      2,
		Workers:    4,
		Shards:     2,
		Engines:    true,
		Log:        &buf,
		Algorithms: []core.Algorithm{core.BFSWL, core.BFSWSL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("sharded engine sweep broke invariants: %s", buf.String())
	}
	if rep.EngineRuns != rep.Runs || rep.Runs == 0 {
		t.Fatalf("EngineRuns=%d Runs=%d, want all runs on shared backends", rep.EngineRuns, rep.Runs)
	}
}

// TestReplayEngineRun checks the engine-aware replay path: an
// EngineRun artifact replays on one reused engine without error.
func TestReplayEngineRun(t *testing.T) {
	r := Repro{
		Graph:         GraphSpec{Kind: "chunglu", N: 1024, M: 8192, Gamma: 2.0, Seed: 2},
		Algorithm:     core.BFSWSL,
		Options:       RunOptions{Workers: 4, Seed: 11},
		Profile:       Profiles()[0],
		InjectionSeed: 99,
		EngineRun:     true,
	}
	vs, res, err := Replay(r)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Reached == 0 {
		t.Fatal("engine replay returned no result")
	}
	if len(vs) != 0 {
		t.Fatalf("healthy engine replay reported violations: %v", vs)
	}
}

// TestSoakPublishesRegistry wires a registry into a narrow sweep and
// checks the live counters arrive with algo/profile labels and agree
// with the report totals.
func TestSoakPublishesRegistry(t *testing.T) {
	reg := obs.New()
	rep, err := Soak(SoakConfig{
		Graphs:     []GraphSpec{{Kind: "star", N: 256, Seed: 4}},
		Profiles:   []Profile{mustProfile(t, "steal-storm")},
		Algorithms: []core.Algorithm{core.BFSWL},
		Seeds:      2,
		Workers:    4,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	labels := []obs.Label{obs.L("algo", string(core.BFSWL)), obs.L("profile", "steal-storm")}
	if got := reg.Counter("optibfs_soak_runs_total", labels...).Value(); got != int64(rep.Runs) {
		t.Fatalf("soak_runs_total %d, want %d", got, rep.Runs)
	}
	if got := reg.Counter("optibfs_soak_injections_total", labels...).Value(); got != rep.Injections {
		t.Fatalf("soak_injections_total %d, want %d", got, rep.Injections)
	}
	if got := reg.Counter("optibfs_soak_failures_total", labels...).Value(); got != int64(rep.Failures) {
		t.Fatalf("soak_failures_total %d, want %d", got, rep.Failures)
	}
}
