package core

// Optional event tracing: when Options.TraceCapacity > 0, every worker
// records its dispatch events (segment fetches, steal attempts and
// outcomes) into a private pre-allocated buffer. Tracing costs one
// branch per *dispatch* operation (never per edge), so it is cheap
// enough to leave on while profiling steal behaviour — it is how the
// examples/stealprofile analysis can be replayed event by event.

// EventKind classifies a trace event.
type EventKind uint8

// Trace event kinds.
const (
	// EventFetch: a centralized/edge segment fetch; Value = segment length.
	EventFetch EventKind = iota
	// EventStealOK: successful steal; Victim set; Value = stolen length.
	EventStealOK
	// EventStealVictimLocked: TryLock on the victim failed.
	EventStealVictimLocked
	// EventStealVictimIdle: victim had quit or had no work.
	EventStealVictimIdle
	// EventStealTooSmall: victim's segment was below the split minimum.
	EventStealTooSmall
	// EventStealStale: segment looked valid but was already explored.
	EventStealStale
	// EventStealInvalid: the (q,f,r) sanity check failed.
	EventStealInvalid
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventFetch:
		return "fetch"
	case EventStealOK:
		return "steal-ok"
	case EventStealVictimLocked:
		return "victim-locked"
	case EventStealVictimIdle:
		return "victim-idle"
	case EventStealTooSmall:
		return "too-small"
	case EventStealStale:
		return "stale"
	case EventStealInvalid:
		return "invalid"
	default:
		return "unknown"
	}
}

// Event is one recorded dispatch event.
type Event struct {
	Level  int32
	Kind   EventKind
	Worker int16
	Victim int16 // -1 when not a steal
	Value  int64 // kind-specific payload (segment length etc.)
}

// initTrace allocates per-worker buffers when tracing is enabled.
func (st *state) initTrace() {
	if st.opt.TraceCapacity <= 0 {
		return
	}
	st.events = make([][]Event, st.opt.Workers)
	for i := range st.events {
		st.events[i] = make([]Event, 0, st.opt.TraceCapacity)
	}
	st.dropped = make([]int64, st.opt.Workers)
}

// traceEvent appends an event to worker id's buffer. Once the buffer
// fills, events are dropped — the cap keeps tracing allocation-free
// mid-run — but every drop is counted per worker and surfaced on
// Result.EventsDropped, so a trace analysis can tell a genuinely quiet
// worker from a truncated timeline.
func (st *state) traceEvent(id int, kind EventKind, victim int, value int64) {
	if st.events == nil {
		return
	}
	buf := st.events[id]
	if len(buf) >= cap(buf) {
		st.dropped[id]++
		return
	}
	st.events[id] = append(buf, Event{
		Level:  st.level,
		Kind:   kind,
		Worker: int16(id),
		Victim: int16(victim),
		Value:  value,
	})
}
