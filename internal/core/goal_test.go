package core

import (
	"context"
	"fmt"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

// goalExpectation derives, from the full serial oracle, where a
// goal-directed run must stop: the closed-level count and whether the
// run counts as truncated. Whichever goal fires first wins; a depth
// bound truncates only when a vertex at that depth exists, and a
// target only when it is reachable.
func goalExpectation(want []int32, goal Goal) (levels int32, truncated bool) {
	ecc := graph.Eccentricity(want)
	levels = ecc + 1
	if d := goal.MaxDepth; d > 0 && ecc >= d {
		levels = d
		truncated = true
	}
	if tv := goal.TargetVertex(); tv >= 0 && tv < int32(len(want)) {
		if dt := want[tv]; dt != graph.Unreached && dt < levels {
			levels = dt
			truncated = true
		}
	}
	return levels, truncated
}

// checkGoalResult verifies a goal-directed Result bit-for-bit against
// the serial oracle's closed levels: every vertex at oracle distance
// <= levels must hold exactly that distance (the final frontier is
// settled too), and everything deeper must read Unreached.
func checkGoalResult(t *testing.T, g *graph.CSR, src int32, goal Goal, res *Result) {
	t.Helper()
	want := graph.ReferenceBFS(g, src)
	wantLevels, wantTrunc := goalExpectation(want, goal)
	if res.Levels != wantLevels {
		t.Fatalf("goal %+v: Levels=%d, want %d", goal, res.Levels, wantLevels)
	}
	if res.Truncated != wantTrunc {
		t.Fatalf("goal %+v: Truncated=%v, want %v", goal, res.Truncated, wantTrunc)
	}
	for v := range res.Dist {
		if d := want[v]; d != graph.Unreached && d <= wantLevels {
			if res.Dist[v] != d {
				t.Fatalf("goal %+v: dist[%d]=%d, oracle %d (closed level)", goal, v, res.Dist[v], d)
			}
		} else if res.Dist[v] != graph.Unreached {
			t.Fatalf("goal %+v: dist[%d]=%d, want Unreached past level %d", goal, v, res.Dist[v], wantLevels)
		}
	}
	if res.Parent != nil {
		checkGoalParents(t, src, goal, res)
	}
	var sizes, settled int64
	for _, s := range res.LevelSizes {
		sizes += s
	}
	for _, d := range res.Dist {
		if d != graph.Unreached && d < res.Levels {
			settled++
		}
	}
	if sizes != settled {
		t.Fatalf("goal %+v: level sizes sum %d != closed-level vertices %d", goal, sizes, settled)
	}
}

// checkGoalParents validates the BFS-tree property over the settled
// prefix only — graph.ValidateParents expects a complete tree, which a
// truncated run deliberately does not have.
func checkGoalParents(t *testing.T, src int32, goal Goal, res *Result) {
	t.Helper()
	for v, p := range res.Parent {
		d := res.Dist[v]
		if d == graph.Unreached {
			if p != -1 {
				t.Fatalf("goal %+v: unreached %d has parent %d", goal, v, p)
			}
			continue
		}
		if int32(v) == src {
			if p != src {
				t.Fatalf("goal %+v: source parent %d", goal, p)
			}
			continue
		}
		if p < 0 || res.Dist[p] != d-1 {
			t.Fatalf("goal %+v: vertex %d at depth %d has parent %d at depth %d",
				goal, v, d, p, res.Dist[p])
		}
	}
}

// goalCases picks the interesting goals for one (graph, source) pair:
// the source itself, near/mid/far targets, an unreachable target when
// one exists, depth bounds straddling the eccentricity, and combined
// target+depth goals where each side wins.
func goalCases(g *graph.CSR, src int32) []Goal {
	want := graph.ReferenceBFS(g, src)
	ecc := graph.Eccentricity(want)
	cases := []Goal{
		{}, // unbounded: goal path must degrade to a plain run
		GoalTo(src),
		{MaxDepth: 1},
	}
	if ecc > 0 {
		cases = append(cases, Goal{MaxDepth: ecc}, Goal{MaxDepth: ecc + 3})
	}
	pick := func(depth int32) {
		for v := int32(0); v < g.NumVertices(); v++ {
			if want[v] == depth {
				cases = append(cases,
					GoalTo(v),
					Goal{Target: v + 1, MaxDepth: depth + 2}, // target wins
					Goal{Target: v + 1, MaxDepth: 1},         // depth wins (unless depth==1)
				)
				return
			}
		}
	}
	pick(ecc)
	pick(ecc / 2)
	for v := int32(0); v < g.NumVertices(); v++ {
		if want[v] == graph.Unreached {
			cases = append(cases, GoalTo(v)) // unreachable: full run, untruncated
			break
		}
	}
	return cases
}

// TestGoalDirectedMatrix is the tentpole correctness matrix: the four
// lockfree families × {plain, hybrid} × shard counts {1, 2, 4} ×
// reorder modes, every cell checked bit-for-bit against the serial
// oracle's closed levels over the goal cases above. The serial engine
// itself is a row too, pinning oracle/parallel truncation parity.
func TestGoalDirectedMatrix(t *testing.T) {
	graphs := testGraphs(t)
	families := []Algorithm{BFSC, BFSDL, BFSWSL, BFSEL}
	type cell struct {
		name string
		opt  Options
		algo Algorithm
	}
	cells := []cell{{"serial", Options{}, Serial}}
	for _, algo := range families {
		cells = append(cells,
			cell{string(algo), Options{Workers: 4, Seed: 1}, algo},
			cell{string(algo) + "/hybrid", Options{Workers: 4, Seed: 1, Hybrid: true}, algo},
		)
	}
	for _, shards := range []int{2, 4} {
		cells = append(cells,
			cell{fmt.Sprintf("BFS_WSL/shards%d", shards), Options{Workers: 2, Seed: 1, Shards: shards}, BFSWSL},
			cell{fmt.Sprintf("BFS_WSL/shards%d/hybrid", shards), Options{Workers: 2, Seed: 1, Shards: shards, Hybrid: true}, BFSWSL},
		)
	}
	for _, mode := range []ReorderMode{ReorderDegree, ReorderBFS} {
		cells = append(cells,
			cell{"BFS_WSL/reorder-" + string(mode), Options{Workers: 4, Seed: 1, Reorder: mode}, BFSWSL})
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for name, g := range graphs {
				opt := c.opt
				opt.TrackParents = true
				be, err := NewBackend(g, c.algo, opt)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				src := int32(0)
				for _, goal := range goalCases(g, src) {
					res, err := be.RunGoal(context.Background(), src, goal)
					if err != nil {
						be.Close()
						t.Fatalf("%s goal %+v: %v", name, goal, err)
					}
					func() {
						defer func() {
							if t.Failed() {
								t.Logf("graph %s", name)
							}
						}()
						checkGoalResult(t, g, src, goal, res)
					}()
				}
				// The per-run override must not leak: an unbounded run
				// after a targeted one sees the whole graph again.
				res, err := be.RunContext(context.Background(), src)
				if err != nil {
					be.Close()
					t.Fatalf("%s: post-goal run: %v", name, err)
				}
				if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, src)); err != nil {
					be.Close()
					t.Fatalf("%s: goal leaked into later run: %v", name, err)
				}
				if res.Truncated {
					be.Close()
					t.Fatalf("%s: unbounded run marked truncated", name)
				}
				be.Close()
			}
		})
	}
}

// Construction-time goals (Options.Target / Options.MaxDepth) must
// behave exactly like per-run goals, including through reorder's
// permutation of the target id.
func TestGoalViaOptions(t *testing.T) {
	g, err := gen.Graph500RMAT(2048, 16384, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	var target int32 = -1
	for v := int32(0); v < g.NumVertices(); v++ {
		if want[v] == 3 {
			target = v
			break
		}
	}
	if target < 0 {
		t.Skip("no depth-3 vertex")
	}
	for _, mode := range []ReorderMode{ReorderNone, ReorderDegree} {
		opt := Options{Workers: 4, Reorder: mode}
		opt.SetTarget(target)
		e, err := NewEngine(g, BFSWSL, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		checkGoalResult(t, g, 0, GoalTo(target), res)
		e.Close()
	}
	opt := Options{Workers: 4, MaxDepth: 2}
	e, err := NewEngine(g, BFSWSL, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	checkGoalResult(t, g, 0, Goal{MaxDepth: 2}, res)
}

func TestGoalValidation(t *testing.T) {
	g, err := gen.Path(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(g, BFSWL, Options{Workers: 2, Target: 17}); err == nil {
		t.Fatal("out-of-range Options.Target accepted")
	}
	if _, err := NewEngine(g, BFSWL, Options{Workers: 2, Target: -1}); err == nil {
		t.Fatal("negative Options.Target accepted")
	}
	e, err := NewEngine(g, BFSWL, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.RunGoal(context.Background(), 0, GoalTo(99)); err == nil {
		t.Fatal("out-of-range RunGoal target accepted")
	}
	if _, err := e.RunGoal(context.Background(), 0, Goal{MaxDepth: -2}); err == nil {
		t.Fatal("negative RunGoal depth accepted")
	}
	// Vertex 0 must be addressable as a target (the +1 encoding's
	// entire point).
	res, err := e.RunGoal(context.Background(), 5, GoalTo(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Dist[0] != 5 {
		t.Fatalf("target vertex 0: Truncated=%v dist=%d, want true/5", res.Truncated, res.Dist[0])
	}
}

// Goal-directed persistent-worker engines exercise the runPool's
// advance/runSearch termination sites rather than runLevels'.
func TestGoalPersistentWorkers(t *testing.T) {
	g, err := gen.ChungLu(3000, 20000, 2.1, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, BFSWSL, Options{Workers: 4, PersistentWorkers: true, TrackParents: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 8; i++ {
		src := int32(i*311) % g.NumVertices()
		for _, goal := range goalCases(g, src) {
			res, err := e.RunGoal(context.Background(), src, goal)
			if err != nil {
				t.Fatalf("src %d goal %+v: %v", src, goal, err)
			}
			checkGoalResult(t, g, src, goal, res)
		}
	}
}
