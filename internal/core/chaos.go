package core

// Chaos hooks: a nil-by-default fault-injection interface that fires at
// the optimistic protocols' deliberately racy points. The paper's
// correctness argument is that torn (q, f, r) combinations, backward-
// moving fronts, and duplicated dispatch units are all benign; these
// hooks exist so that a test or the internal/chaos soak harness can
// stretch exactly those read→write windows on demand and make the rare
// interleavings (stale steals, overlapping segments, duplicate phase-2
// units) reproducible from a seed instead of waiting for the scheduler
// to stumble into them. With Options.Chaos nil — the default — each
// instrumented point costs a single predictable nil-check branch.

// ChaosPoint identifies one instrumented racy point in the optimistic
// protocols. Every point sits inside a read→write window whose race
// the paper argues is benign; delaying a worker there widens the
// window and provokes the racy outcome.
type ChaosPoint uint8

// Instrumented racy points. The Value passed to ChaosHook.At is the
// index the pending store is about to publish (segment midpoint, slot
// index, advanced front, queue index, or phase-2 unit).
const (
	// ChaosStealPublish fires in stealLockfree after the thief's
	// (q, f, r) snapshot passed the validity checks and before the
	// descriptor stores (victim shrink, then thief publication).
	// Delaying here lets the victim or another thief race past the
	// midpoint, producing a stale steal. Value is the midpoint.
	ChaosStealPublish ChaosPoint = iota
	// ChaosSlotZero fires in drainOwn and exploreSegmentLockfree
	// between reading a queue slot and zeroing it. Delaying here lets
	// a thief or an overlapping segment pop the same slot, producing
	// a duplicate exploration. Value is the slot index.
	ChaosSlotZero
	// ChaosDrainAdvance fires in lockfree drainOwn between zeroing a
	// slot and publishing the advanced front, the window in which the
	// worker's descriptor understates its progress. Value is the
	// front about to be published.
	ChaosDrainAdvance
	// ChaosFrontStore fires in the decentralized fetch between
	// reading a queue's front and storing the advanced front.
	// Delaying here hands two workers the same segment or moves the
	// front backwards (paper Figure 1). Value is the front about to
	// be stored.
	ChaosFrontStore
	// ChaosPoolStore fires in the decentralized fetch before the
	// pool's shared queue index q is stored, the window in which q
	// can move backwards past queues another worker already drained.
	// Value is the queue index about to be stored.
	ChaosPoolStore
	// ChaosPhase2Advance fires in the Phase2Stealing dispatch between
	// loading and storing the shared phase-2 cursor; delaying here
	// duplicates (vertex, chunk) units. Value is the unit taken.
	ChaosPhase2Advance
	// ChaosBlockFlush fires in flushBlock between copying a discovery
	// block into the shared output queue and publishing the advanced
	// tail index, the window in which the queue holds vertices no
	// other worker can yet see. Delaying here stretches the
	// partially-published state that steal descriptors and the level
	// flush audit must tolerate. Value is the tail about to be
	// published.
	ChaosBlockFlush
	// ChaosStall fires once per worker per level, at the top of the
	// worker's level inside the recovery barrier (workerLevel), in
	// every parallel family. Unlike the racy-window points above it
	// does not instrument a protocol race; it is the uniform place the
	// chaos harness injects *malign* faults — forced stalls (long
	// sleeps the watchdog must detect) and panics (which the recovery
	// barrier must isolate). Value is the BFS level.
	ChaosStall
	// ChaosShardFlush fires in a sharded engine's flushRemote between
	// copying a (parent, vertex) pair block into a cross-shard exchange
	// queue and publishing the advanced tail index — the cross-shard
	// twin of ChaosBlockFlush. Delaying here stretches the window in
	// which forwarded discoveries exist but are invisible to their
	// owner, which the destination's barrier-ordered drain must
	// tolerate. Value is the tail about to be published.
	ChaosShardFlush
	// ChaosDirectionFlip fires in a hybrid engine's barrier-time
	// direction step (hybridAdvance), after the alpha/beta decision and
	// before the frontier representation converts — the place a hook
	// implementing ChaosDirectionController can override the decision
	// and force a switch at a hostile boundary. Value is the BFS level
	// just completed. Unlike every other point this one runs on the
	// driver goroutine, OUTSIDE any worker recovery barrier: injectors
	// must not panic or stall here (the standard internal/chaos
	// injector skips its malign faults for this point).
	ChaosDirectionFlip
	// NumChaosPoints is the number of instrumented points, not a
	// point itself; it sizes per-point tables.
	NumChaosPoints
)

// String names the chaos point for profiles and logs.
func (p ChaosPoint) String() string {
	switch p {
	case ChaosStealPublish:
		return "steal-publish"
	case ChaosSlotZero:
		return "slot-zero"
	case ChaosDrainAdvance:
		return "drain-advance"
	case ChaosFrontStore:
		return "front-store"
	case ChaosPoolStore:
		return "pool-store"
	case ChaosPhase2Advance:
		return "phase2-advance"
	case ChaosBlockFlush:
		return "block-flush"
	case ChaosStall:
		return "stall"
	case ChaosShardFlush:
		return "shard-flush"
	case ChaosDirectionFlip:
		return "direction-flip"
	default:
		return "unknown"
	}
}

// ChaosHook receives a callback every time a worker passes an
// instrumented racy point. Implementations typically delay the worker
// (scheduler yields, spinning) with seeded per-worker randomness; they
// must be safe for concurrent use from all worker goroutines and must
// not touch the run's shared state. See internal/chaos for the
// standard injector.
type ChaosHook interface {
	// At is called at chaos point `point` by worker `worker`; value
	// is the point-specific index documented on the ChaosPoint
	// constants.
	At(point ChaosPoint, worker int, value int64)
}

// ChaosLevelAuditor is optionally implemented by a ChaosHook to
// receive the per-level queue audit of the slot-zeroing (lockfree)
// variants: after each level barrier, `unconsumed` is the number of
// input-queue slots that were never popped. The protocol guarantees
// every slot is consumed, so any nonzero count is an invariant
// violation. `level` is the depth of the frontier just consumed.
// Called between level barriers, never concurrently with workers.
type ChaosLevelAuditor interface {
	// LevelEnd reports the unconsumed-slot count for one level.
	LevelEnd(level int32, unconsumed int64)
}

// ChaosFlushAuditor is optionally implemented by a ChaosHook to
// receive the per-level publication audit of batched frontier
// publication: after each level barrier, `unpublished` counts output
// entries the barrier should have flushed but did not — vertices still
// sitting in a worker's private discovery block plus output-queue
// entries beyond the published tail index. The level barrier flushes
// every partial block before workers quiesce, so any nonzero count is
// an invariant violation (a vertex would silently skip its level).
// Called between level barriers, never concurrently with workers.
type ChaosFlushAuditor interface {
	// FlushEnd reports the unpublished-entry count for one level.
	FlushEnd(level int32, unpublished int64)
}

// ChaosDirectionController is optionally implemented by a ChaosHook to
// override the hybrid alpha/beta decision at each level barrier
// (ChaosDirectionFlip): it receives the level just completed and the
// direction the heuristics chose for the next level, and returns the
// direction to actually run. Forcing flips at hostile boundaries
// (empty frontiers, levels mid-growth) exercises the representation
// conversions the heuristics would rarely take. Called single-threaded
// between level barriers, never concurrently with workers; the same
// no-panic/no-stall caveat as ChaosDirectionFlip applies.
type ChaosDirectionController interface {
	// DirectionChoice returns whether the next level runs bottom-up.
	DirectionChoice(level int32, bottomUp bool) bool
}

// chaosAt forwards to the installed hook; the nil-check is the entire
// disabled-mode cost and keeps the call inlinable on the hot paths.
// Under a sharded engine worker ids are offset by the shard's base so
// one injector's per-worker streams cover every shard without
// collisions (chaosBase is 0 otherwise).
func (st *state) chaosAt(point ChaosPoint, worker int, value int64) {
	if st.chaos != nil {
		st.chaos.At(point, worker+st.chaosBase, value)
	}
}

// auditLevel runs the per-level invariant audits after a level barrier.
// The slot audit counts unconsumed input-queue slots; only the runners
// that zero slots as they pop (the lockfree variants) enable it — the
// locked variants consume via front pointers and leave slots intact,
// so the count would be meaningless there. The flush audit applies to
// every runner that discovers through blocks (all of them): it counts
// entries the barrier should have published but did not, either still
// in a private discovery block or in an output queue beyond its
// published tail. Runs between barriers, so plain reads of the queue
// buffers are safe.
func (st *state) auditLevel() {
	if st.levelAudit != nil && st.slotAudit {
		var unconsumed int64
		for i := range st.in {
			q := &st.in[i]
			for _, s := range q.buf[:q.origR] {
				if s != emptySlot {
					unconsumed++
				}
			}
		}
		st.levelAudit.LevelEnd(st.level, unconsumed)
	}
	if st.flushAudit != nil {
		var unpublished int64
		for i := range st.out {
			q := &st.out[i]
			unpublished += int64(len(q.buf)) - q.tail
			unpublished += int64(len(st.blk[i]))
		}
		// Sharded runs extend the audit across the exchange: by this
		// barrier every private remote block was flushed (endLevelRemote)
		// and every outgoing exchange queue was drained and reset by its
		// destination shard, so any residue is a forwarded vertex that
		// would silently skip its level.
		if ex := st.shardEx; ex != nil {
			for i := range st.remoteBlk {
				unpublished += int64(len(st.remoteBlk[i]) / 2)
			}
			for d := 0; d < ex.shards; d++ {
				if d == st.shardID {
					continue
				}
				row := ex.row(st.shardID, d)
				for i := range row {
					q := &row[i]
					unpublished += int64(len(q.buf)) - q.tail
				}
			}
		}
		st.flushAudit.FlushEnd(st.level, unpublished)
	}
}
