package core

// Failure model: panic isolation and the stall watchdog.
//
// The paper's optimistic protocols tolerate *benign* failure — torn
// descriptor reads, duplicate exploration — by construction. This file
// adds tolerance for the malign modes a serving deployment must
// survive: a worker goroutine panicking mid-level (which would
// otherwise kill the whole process, since an unrecovered panic on any
// goroutine is fatal in Go), and a run that stops making progress
// (which would otherwise wedge the caller forever).
//
// The machinery follows the protocols' own discipline — no atomic
// read-modify-write on any per-vertex or per-edge path:
//
//   - Every worker executes its level under recover() (workerLevel).
//     The first captured panic is recorded as a *WorkerPanicError and
//     the run is aborted; the recovering worker keeps participating in
//     the level/gate barriers so the persistent-pool protocol stays in
//     lockstep, and the scale-free phase barrier — the only barrier a
//     dead worker could strand peers at — is poisoned open.
//   - Aborts are published through one atomic int32 (abortFlag),
//     written once under abortMu and read with plain atomic loads at
//     dispatch-loop boundaries (per segment, per steal attempt, per
//     publication batch — never per vertex or edge).
//   - Progress heartbeats are one padded counter per worker, bumped
//     with a single-writer atomic Load+Store at the same dispatch
//     boundaries; the watchdog samples their sum. No RMW, no locks.
//
// A panic poisons the engine: pooled state that a worker abandoned
// mid-mutation (half-appended discovery blocks, unconsumed queue
// slots, a poisoned phase barrier) must not be reused, so every later
// run fails fast with ErrPoisoned and the caller builds a fresh
// engine. A stall or cancellation aborts cooperatively — workers wind
// down through their normal loop exits and barriers — so the engine
// stays structurally sound and reusable.
//
// Scope: the recovery guarantee covers the lockfree families, whose
// workers never block each other. In the locked variants a panic while
// holding a mutex (impossible from the chaos hooks, which all fire
// outside critical sections, but possible from a genuine bug under
// one) can still strand peers in mu.Lock, where no abort flag can
// reach them.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Abort reasons, first writer wins. abortNone is the zero value so a
// freshly primed run is un-aborted without an extra store.
const (
	abortNone int32 = iota
	// abortCancel: the run's context fired; surfaced as ctx.Err() by
	// RunContext. Leaves the engine reusable.
	abortCancel
	// abortStall: the watchdog saw no heartbeat progress for
	// Options.StallTimeout; surfaced as *StallError. Leaves the engine
	// reusable (workers wound down cooperatively).
	abortStall
	// abortPanic: a worker panicked; surfaced as *WorkerPanicError.
	// Poisons the engine.
	abortPanic
)

// ErrPoisoned is returned by every run on an engine poisoned by a
// worker panic. Pooled per-run state a panicking worker abandoned
// mid-mutation cannot be trusted again; build a new Engine (the graph
// itself is immutable and safe to share with the replacement).
var ErrPoisoned = errors.New("core: engine poisoned by a worker panic; build a new engine")

// WorkerPanicError reports a panic captured on a worker goroutine: the
// run aborted instead of the process crashing. The engine that
// produced it is poisoned (see ErrPoisoned); the partial Result
// returned alongside reports how far the search got.
type WorkerPanicError struct {
	// Worker is the panicking worker's id.
	Worker int
	// Algo is the variant that was running.
	Algo Algorithm
	// Level is the BFS level in flight when the panic fired.
	Level int32
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error summarizes the panic without the stack (callers that want the
// trace read Stack directly).
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("core: worker %d panicked in %s at level %d: %v", e.Worker, e.Algo, e.Level, e.Value)
}

// StallError reports that the watchdog aborted a run because no worker
// made dispatch progress for the configured window. The engine remains
// reusable — workers wound down through their normal barriers — but a
// serving layer should treat the graph/option combination with
// suspicion (see internal/serve's escalation ladder).
type StallError struct {
	// Algo is the variant that stalled.
	Algo Algorithm
	// Level is the BFS level in flight when the stall was declared.
	Level int32
	// Window is the no-progress window that expired (Options.StallTimeout).
	Window time.Duration
	// Progress is the heartbeat sum at declaration time, i.e. how many
	// dispatch units the run completed before going quiet.
	Progress int64
}

// Error summarizes the stall.
func (e *StallError) Error() string {
	return fmt.Sprintf("core: %s stalled at level %d: no dispatch progress for %s (heartbeat %d)", e.Algo, e.Level, e.Window, e.Progress)
}

// beatLane is one worker's progress heartbeat, padded so the watchdog's
// sampling never bounces a cache line a worker is writing. The counter
// is single-writer: only worker id bumps beats[id], with an atomic
// Load+Store (no RMW), and the watchdog reads with atomic loads.
type beatLane struct {
	n int64 // atomic
	_ [56]byte
}

// beat bumps worker id's heartbeat. Called at dispatch boundaries —
// segment fetches, steal-drain publication batches, hot-vertex chunks —
// never per vertex or edge.
func (st *state) beat(id int) {
	b := &st.beats[id]
	atomic.StoreInt64(&b.n, atomic.LoadInt64(&b.n)+1)
}

// beatSum samples the run's total progress.
func (st *state) beatSum() int64 {
	var n int64
	for i := range st.beats {
		n += atomic.LoadInt64(&st.beats[i].n)
	}
	return n
}

// aborted reports whether the run has been aborted for any reason.
// One atomic load; checked at the same dispatch boundaries as beat.
func (st *state) aborted() bool {
	return atomic.LoadInt32(&st.abortFlag) != abortNone
}

// abortRun publishes an abort. The first reason wins — a panic that
// races a stall declaration keeps whichever landed first, which is the
// one that actually stopped the run. On a panic abort the registered
// poison hooks run (under abortMu, exactly once) to break any barrier
// the dead worker would have stranded peers at; stall/cancel aborts
// wind down cooperatively through the normal barriers, so poisoning —
// which would race the next level's barrier re-arm — is neither needed
// nor safe there.
func (st *state) abortRun(reason int32, stall *StallError) {
	st.abortMu.Lock()
	if st.abortFlag == abortNone {
		st.stall = stall
		atomic.StoreInt32(&st.abortFlag, reason)
		if reason == abortPanic {
			for _, poison := range st.abortHooks {
				poison()
			}
		}
	}
	st.abortMu.Unlock()
}

// recordPanic captures a worker panic as the run's abort cause. Only
// the first panic is kept (concurrent panics from several workers
// race; one error is enough to poison the run).
func (st *state) recordPanic(id int, v any, stack []byte) {
	st.abortMu.Lock()
	if st.wpanic == nil {
		st.wpanic = &WorkerPanicError{
			Worker: id,
			Algo:   st.algo,
			Level:  st.level,
			Value:  v,
			Stack:  stack,
		}
	}
	st.abortMu.Unlock()
	st.abortRun(abortPanic, nil)
}

// recoverWorker is the deferred recovery barrier at the top of every
// worker's level: it converts a panic into an abort and lets the
// worker return normally so it keeps meeting its barriers. Deferred as
// a method call (not a closure) so the defer stays open-coded and the
// persistent-worker hot loop allocates nothing.
func (st *state) recoverWorker(id int) {
	if r := recover(); r != nil {
		st.recordPanic(id, r, debug.Stack())
	}
}

// workerLevel runs one worker's share of one level under the recovery
// barrier. ChaosStall fires first — once per worker per level, in
// every parallel family — giving the chaos harness a uniform place to
// inject panics and forced stalls. perLevel always runs, even when the
// run is already aborted: the bindings' own abort checks make it
// cheap, and skipping it here would strand peers at the scale-free
// phase barrier, which expects all p parties.
// Sharded engines add a trailing exchange flush: whatever the binding
// left in the worker's private remote blocks is published before the
// global barrier, the cross-shard analogue of the bindings' own
// endLevelOut — placed here because it is the one point every family's
// worker passes on both the spawn and the persistent-pool path.
func (st *state) workerLevel(id int, perLevel func(id int)) {
	defer st.recoverWorker(id)
	st.chaosAt(ChaosStall, id, int64(st.level))
	perLevel(id)
	if st.shardEx != nil {
		st.endLevelRemote(id)
	}
}

// abortError maps the abort flag to the error the run surfaces.
// Cancellation returns nil here: RunContext reports ctx.Err() itself,
// preserving the pre-watchdog contract that a canceled run returns the
// context's error.
func (st *state) abortError() error {
	switch atomic.LoadInt32(&st.abortFlag) {
	case abortPanic:
		return st.wpanic
	case abortStall:
		return st.stall
	}
	return nil
}

// abortPoisons reports whether the abort leaves the pooled state
// unsafe to reuse. Only panics do: the dead worker may have abandoned
// half-published queues and a poisoned phase barrier. Stalls and
// cancellations wind down through the normal barriers.
func (st *state) abortPoisons() bool {
	return atomic.LoadInt32(&st.abortFlag) == abortPanic
}

// startWatchdog launches the per-run stall monitor when
// Options.StallTimeout is set, returning a stop function the run calls
// at its end (nil when disabled — the default — so runs without a
// timeout spawn nothing and stay allocation-free after warmup is
// irrelevant here since the watchdog is per-run by design). The
// watchdog also observes ctx so cancellation takes effect mid-level
// instead of waiting for the next level boundary.
func (st *state) startWatchdog(ctx context.Context) func() {
	if st.opt.StallTimeout <= 0 {
		return nil
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go st.watch(ctx, stop, done)
	return func() {
		close(stop)
		<-done
	}
}

// watch samples the heartbeat sum at StallTimeout/8 granularity and
// declares a stall when the sum stays unchanged for a full window.
// The heartbeat sites sit at dispatch boundaries, so StallTimeout must
// exceed the time one dispatch unit (a segment of at most 1024
// vertices, one publication batch, or one hot-vertex chunk) can
// legitimately take; the default serving configuration uses seconds
// against micro- to millisecond units.
func (st *state) watch(ctx context.Context, stop, done chan struct{}) {
	defer close(done)
	window := st.opt.StallTimeout
	tick := window / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := st.beatSum()
	lastChange := time.Now()
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	for {
		select {
		case <-stop:
			return
		case <-ctxDone:
			st.abortRun(abortCancel, nil)
			ctxDone = nil
		case <-ticker.C:
			if st.aborted() {
				// Wind-down after any abort is progress-free by nature;
				// keep ticking only to honor stop.
				continue
			}
			cur := st.beatSum()
			if cur != last {
				last = cur
				lastChange = time.Now()
				continue
			}
			if time.Since(lastChange) < window {
				continue
			}
			st.abortRun(abortStall, &StallError{
				Algo:     st.algo,
				Level:    atomic.LoadInt32(&st.levelA),
				Window:   window,
				Progress: cur,
			})
		}
	}
}
