package core

import (
	"context"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func TestRunContextCompletesNormally(t *testing.T) {
	g, err := gen.ErdosRenyi(1000, 6000, 1, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunContext(context.Background(), g, 0, BFSCL, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRunContextAlreadyCanceled(t *testing.T) {
	g, err := gen.Path(5000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range append([]Algorithm{Serial}, parallelAlgos...) {
		res, err := RunContext(ctx, g, 0, algo, Options{Workers: 4})
		if err == nil {
			t.Fatalf("%s: canceled run returned no error", algo)
		}
		// Aborted runs report their partial progress alongside the
		// error: a pre-canceled run settles only the seeded source.
		if res == nil {
			t.Fatalf("%s: canceled run returned no partial result", algo)
		}
		if res.Levels != 0 {
			t.Fatalf("%s: pre-canceled run completed %d levels", algo, res.Levels)
		}
		if res.Reached != 1 {
			t.Fatalf("%s: pre-canceled run reached %d vertices, want 1 (the source)", algo, res.Reached)
		}
		if res.Dist[0] != 0 {
			t.Fatalf("%s: partial result lost the source distance", algo)
		}
	}
}

func TestRunContextCancelsMidSearch(t *testing.T) {
	// A deep path gives thousands of level boundaries; cancel after
	// the search starts and assert it stops with the context error.
	g, err := gen.Path(30000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	go func() {
		<-started
		cancel()
	}()
	close(started)
	_, err = RunContext(ctx, g, 0, BFSWSL, Options{Workers: 4})
	// Depending on timing the run may finish before cancellation is
	// observed; both outcomes are legal, but an error must be the
	// context's.
	if err != nil && err != context.Canceled {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestRunContextPersistentWorkers(t *testing.T) {
	g, err := gen.Path(10000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, g, 0, BFSCL, Options{Workers: 4, PersistentWorkers: true}); err != context.Canceled {
		t.Fatalf("persistent mode: got %v", err)
	}
}
