package core

// Long-running randomized stress tests. They hammer every algorithm
// with high worker counts, tiny segments (maximizing index contention),
// and many repetitions on graphs engineered to provoke the optimistic
// protocol's failure modes. Skipped under -short.

import (
	"fmt"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func TestStressAllAlgorithmsHighContention(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Wide shallow graph: every level is one huge frontier, so all
	// workers fight over the same queues the whole run.
	g, err := gen.ChungLu(30000, 300000, 2.0, 31, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, algo := range parallelAlgos {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			t.Parallel()
			for rep := 0; rep < 6; rep++ {
				res, err := Run(g, 0, algo, Options{
					Workers:     16,
					SegmentSize: 1, // worst case: every slot is a fetch
					Seed:        uint64(rep) * 77,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.EqualDistances(res.Dist, want); err != nil {
					t.Fatalf("rep %d: %v", rep, err)
				}
			}
		})
	}
}

func TestStressDeepGraphManyLevels(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// 400 levels: the level-synchronization machinery runs 400 times
	// per search; any barrier or swap bug compounds.
	g, err := gen.LayeredRandom(20000, 100000, 400, 13, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, algo := range parallelAlgos {
		res, err := Run(g, 0, algo, Options{Workers: 8, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Levels != 400 && res.Levels != 401 {
			t.Fatalf("%s: levels %d", algo, res.Levels)
		}
	}
}

func TestStressManyOptionsMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g, err := gen.Graph500RMAT(8192, 131072, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	type cfg struct {
		algo Algorithm
		opt  Options
	}
	var cfgs []cfg
	for _, algo := range parallelAlgos {
		for _, workers := range []int{2, 7, 13} {
			for _, claim := range []bool{false, true} {
				cfgs = append(cfgs, cfg{algo, Options{
					Workers: workers, Seed: 9, ParentClaim: claim,
					TrackParents: true, Pools: workers / 2, Sockets: 2,
				}})
			}
		}
	}
	for i, c := range cfgs {
		res, err := Run(g, 0, c.algo, c.opt)
		if err != nil {
			t.Fatalf("cfg %d (%s): %v", i, c.algo, err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("cfg %d (%s %+v): %v", i, c.algo, c.opt, err)
		}
		if err := graph.ValidateParents(g, 0, res.Dist, res.Parent); err != nil {
			t.Fatalf("cfg %d (%s): %v", i, c.algo, err)
		}
	}
}

func TestStressEveryVertexAsSource(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Small graph, every vertex as source, every algorithm: catches
	// source-position edge cases (first/last queue, isolated, etc).
	g, err := gen.ChungLu(150, 900, 2.3, 17, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for src := int32(0); src < g.NumVertices(); src++ {
		want := graph.ReferenceBFS(g, src)
		for _, algo := range parallelAlgos {
			res, err := Run(g, src, algo, Options{Workers: 5, Seed: uint64(src)})
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.EqualDistances(res.Dist, want); err != nil {
				t.Fatalf("%s from %d: %v", algo, src, err)
			}
		}
	}
}

func TestStressDuplicateHeavyDenseGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Dense two-level graph: every level-1 vertex has every other as
	// parent candidate — the paper's duplicate-storm scenario
	// (rmat-10M-1B discussion in §V).
	g, err := gen.Complete(600)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	var maxDup int64
	for rep := 0; rep < 5; rep++ {
		for _, algo := range []Algorithm{BFSCL, BFSWL, BFSEL} {
			res, err := Run(g, 0, algo, Options{Workers: 12, SegmentSize: 2, Seed: uint64(rep)})
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.EqualDistances(res.Dist, want); err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			if d := res.Duplicates(); d > maxDup {
				maxDup = d
			}
		}
	}
	// Duplicates are allowed — just log how many the host produced.
	t.Logf("max duplicates observed: %d", maxDup)
}

func TestStressRepeatedSameSeedIsSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Same seed, same graph, 30 reps: scheduling still varies, results
	// must not.
	g, err := gen.ErdosRenyi(5000, 40000, 21, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for rep := 0; rep < 30; rep++ {
		res, err := Run(g, 0, BFSWSL, Options{Workers: 10, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatal(fmt.Errorf("rep %d: %w", rep, err))
		}
	}
}
