package core

import (
	"context"

	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// serialEngine backs sbfs, the serial array-queue BFS used as the
// paper's single-thread baseline. It deliberately shares none of the
// parallel state machinery — keeping the serial baseline an independent
// oracle — but applies the same pooling discipline as the parallel
// engines: arrays allocated once, the visited set invalidated by an
// epoch bump, the queue reused by capacity, and stale entries
// normalized during the result pass.
type serialEngine struct {
	g          *graph.CSR
	opt        Options
	dist       []int32
	parent     []int32
	epoch      []uint32
	cur        uint32
	queue      []int32
	levelSizes []int64
	res        Result

	// Goal-directed termination, decoded like state's: target is the
	// goal vertex (-1 for none), maxDepth the level bound (0 for none).
	// The serial queue walk terminates at exactly the same point the
	// parallel barriers do — on the first pop whose depth would open a
	// level past the goal — so the oracle stays bit-identical to the
	// parallel engines' closed levels under truncation too.
	target   int32
	maxDepth int32
}

func newSerialEngine(g *graph.CSR, opt Options) *serialEngine {
	n := g.NumVertices()
	e := &serialEngine{
		g:     g,
		opt:   opt,
		dist:  make([]int32, n),
		epoch: make([]uint32, n),
		queue: make([]int32, 0, 1024),
	}
	e.setGoal(opt.Target, opt.MaxDepth)
	for i := range e.dist {
		e.dist[i] = graph.Unreached
	}
	if opt.TrackParents {
		e.parent = make([]int32, n)
		for i := range e.parent {
			e.parent[i] = -1
		}
	}
	return e
}

func (e *serialEngine) run(ctx context.Context, src int32) (*Result, error) {
	e.cur++
	if e.cur == 0 {
		// See state.beginRun: full sweep on uint32 wraparound only.
		for i := range e.epoch {
			e.epoch[i] = 0
		}
		e.cur = 1
	}
	cur := e.cur
	g, dist, parent, epoch := e.g, e.dist, e.parent, e.epoch
	dist[src] = 0
	if parent != nil {
		parent[src] = src
	}
	epoch[src] = cur
	var c stats.Counters
	queue := append(e.queue[:0], src)
	var levels int32
	truncated := false
	target, maxDepth := e.target, e.maxDepth
	for head := 0; head < len(queue); head++ {
		if ctx != nil && head&4095 == 0 && ctx.Err() != nil {
			break
		}
		u := queue[head]
		du := dist[u]
		// Goal checks mirror the parallel barrier predicate (see
		// state.goalDone): stop before popping the first vertex whose
		// level the goal closes, so `levels` — and therefore every
		// closed level of the histogram — matches the parallel engines'
		// truncation point exactly. The target check fires on the first
		// pop at the target's own depth: by then every shallower vertex
		// has been popped, so all distances <= dist[target] are final.
		if maxDepth > 0 && du >= maxDepth {
			truncated = true
			break
		}
		if target >= 0 && epoch[target] == cur && du >= dist[target] {
			truncated = true
			break
		}
		if du+1 > levels {
			levels = du + 1
		}
		c.VerticesPopped++
		nb := g.Neighbors(u)
		c.EdgesScanned += int64(len(nb))
		for _, w := range nb {
			if epoch[w] != cur {
				dist[w] = du + 1
				if parent != nil {
					parent[w] = u
				}
				epoch[w] = cur
				c.Discovered++
				queue = append(queue, w)
			}
		}
	}
	e.queue = queue
	if cap(e.levelSizes) < int(levels) {
		e.levelSizes = make([]int64, levels)
	} else {
		e.levelSizes = e.levelSizes[:levels]
		for i := range e.levelSizes {
			e.levelSizes[i] = 0
		}
	}
	res := &e.res
	*res = Result{
		Dist:       dist,
		Parent:     parent,
		Levels:     levels,
		Truncated:  truncated,
		Workers:    1,
		Counters:   c,
		Pops:       c.VerticesPopped,
		LevelSizes: e.levelSizes,
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		if epoch[v] != cur {
			dist[v] = graph.Unreached
			if parent != nil {
				parent[v] = -1
			}
			continue
		}
		res.Reached++
		res.EdgesTraversed += g.OutDegree(v)
		// A cancelled run can leave discovered-but-unpopped vertices
		// one level beyond the popped maximum; they count toward the
		// partial result's Reached but not its level histogram.
		if d := dist[v]; int(d) < len(res.LevelSizes) {
			res.LevelSizes[d]++
		}
	}
	return res, nil
}

func (e *serialEngine) reseed(seed uint64) { e.opt.Seed = seed }
func (e *serialEngine) setChaos(ChaosHook) {}
func (e *serialEngine) close()             {}

func (e *serialEngine) setGoal(target, depth int32) {
	e.target = target - 1
	if depth < 0 {
		depth = 0
	}
	e.maxDepth = depth
}
