package core

import (
	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// runSerial is sbfs, the serial array-queue BFS used as the paper's
// single-thread baseline. It shares no state machinery with the
// parallel variants so that it stays an independent oracle.
func runSerial(g *graph.CSR, src int32, opt Options) *Result {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Unreached
	}
	dist[src] = 0
	var parent []int32
	if opt.TrackParents {
		parent = make([]int32, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
	}
	var c stats.Counters
	queue := make([]int32, 0, 1024)
	queue = append(queue, src)
	var levels int32
	for head := 0; head < len(queue); head++ {
		if opt.ctx != nil && head&4095 == 0 && opt.ctx.Err() != nil {
			break
		}
		u := queue[head]
		du := dist[u]
		if du+1 > levels {
			levels = du + 1
		}
		c.VerticesPopped++
		nb := g.Neighbors(u)
		c.EdgesScanned += int64(len(nb))
		for _, w := range nb {
			if dist[w] == graph.Unreached {
				dist[w] = du + 1
				if parent != nil {
					parent[w] = u
				}
				c.Discovered++
				queue = append(queue, w)
			}
		}
	}
	res := &Result{
		Dist:       dist,
		Parent:     parent,
		Levels:     levels,
		Workers:    1,
		Counters:   c,
		Pops:       c.VerticesPopped,
		LevelSizes: make([]int64, levels),
	}
	for v := int32(0); v < n; v++ {
		if d := dist[v]; d != graph.Unreached {
			res.Reached++
			res.EdgesTraversed += g.OutDegree(v)
			// A cancelled run can leave discovered-but-unpopped
			// vertices one level beyond the popped maximum; the
			// result is discarded by RunContext, so just stay safe.
			if int(d) < len(res.LevelSizes) {
				res.LevelSizes[d]++
			}
		}
	}
	return res
}
