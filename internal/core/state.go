package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// Queue slots hold vertex+1 so that 0 can serve simultaneously as the
// "empty / already explored" mark and as the end-of-queue sentinel
// (paper §IV: "We always add a sentinel (0) at the end of each queue").
const emptySlot int32 = 0

// sharedQueue is one input queue of the current BFS level. buf holds
// origR encoded vertices followed by a sentinel 0 slot; the lockfree
// algorithms read and clear slots with atomic loads/stores. front is
// the racy shared front pointer used by the centralized variants,
// padded so neighboring queues' hot fields do not share a cache line.
type sharedQueue struct {
	buf   []int32
	front int64 // atomic; next index to dispatch
	origR int64 // number of valid entries; buf[origR] == 0 sentinel
	_     [24]byte
}

// outQueue is one worker's shared output queue for the next BFS level
// under batched frontier publication. The owning worker appends whole
// discovery blocks to buf and then publishes them with a single atomic
// store of tail — one shared-index store per block instead of one per
// vertex, which is the entire point of the batching. Entries at index
// >= tail exist only in the owner's cache and must never be read by
// another party; the level barrier flushes every partial block, so
// tail == len(buf) whenever the buffers change hands at swap. Padded
// so neighboring workers' tail stores do not share a cache line.
type outQueue struct {
	buf  []int32
	tail int64 // atomic; published entry count, always <= len(buf)
	_    [32]byte
}

// state carries everything shared by one BFS run. Under an Engine one
// state outlives many runs: every array below is allocated once (at the
// graph's size or the buffers' high-water capacity) and re-primed by
// beginRun, so a warm run performs no allocation.
type state struct {
	g    *graph.CSR
	opt  Options
	dist []int32 // atomic load/store in parallel variants

	// epoch stamps the per-vertex arrays with the run that last wrote
	// them: dist[v] / claim[v] / parent[v] are meaningful iff
	// epoch[v] == cur. Bumping cur invalidates every vertex in O(1),
	// replacing the O(n) re-initialization of three arrays; a full
	// sweep happens only when the uint32 counter wraps (once every
	// 2^32-1 runs). Within a run, discover publishes the epoch stamp
	// after the payload stores, and finish normalizes stale entries so
	// Result.Dist/Parent read as plain single-run arrays.
	epoch []uint32
	cur   uint32

	in  []sharedQueue // p input queues for the current level
	out []outQueue    // p shared output queues (no sentinel while open)

	// blk holds the p private discovery blocks of batched frontier
	// publication: each worker appends discoveries to its block and
	// flushBlock copies a full block into out[id] with one tail store
	// (Options.PublishBlock entries per shared store). blkSize caches
	// the block capacity so the hot-path flush test is one comparison
	// against a local field.
	blk     [][]int32
	blkSize int

	// claim implements the §IV-D ParentClaim filter when enabled:
	// claim[v] is the worker id whose output queue "owns" v.
	claim []int32

	// parent records a BFS-tree parent per vertex when TrackParents is
	// set (arbitrary concurrent write: racing same-level discoverers
	// each store their own id and any winner is valid).
	parent []int32

	counters []stats.PaddedCounters
	events   [][]Event // per-worker dispatch traces; nil unless enabled
	dropped  []int64   // per-worker events dropped on full buffers
	level    int32     // current BFS level being produced (dist of children)

	// Goal-directed termination (Options.Target / Options.MaxDepth,
	// overridable per run via setGoal). goalTarget is the decoded
	// target vertex (-1 for none); goalDepth the level bound (0 for
	// none); truncated records that goalDone fired this run. The
	// predicate runs only at level barriers — the run's existing
	// single-threaded points — so it reads epoch and level with plain
	// loads under the barrier's happens-before edge and adds no
	// synchronization to the workers' hot paths.
	goalTarget int32
	goalDepth  int32
	truncated  bool

	// Per-level timeline (Options.LevelTimeline): lvl is the pooled
	// LevelStat storage recordLevel appends to at each level barrier,
	// lvlPrev the previous barrier's cumulative counter sum, lvlStart
	// the previous barrier's clock reading.
	timeline bool
	lvl      []LevelStat
	lvlPrev  stats.Counters
	lvlStart time.Time

	// res and levelSizes are the pooled Result storage finish() fills;
	// a Result handed out is valid only until the state's next run.
	res        Result
	levelSizes []int64

	// yield enables cooperative runtime.Gosched() calls at dispatch
	// boundaries when the run is oversubscribed (more workers than
	// GOMAXPROCS). Without it an oversubscribed run degenerates into
	// one goroutine executing a whole level before the others are
	// scheduled, which would make per-worker load-balance counters —
	// and the cost model built on them — meaningless. On a machine
	// with enough cores it is never enabled and the hot paths are
	// untouched.
	yield bool

	// single marks a one-worker unsharded state: no thief, no racing
	// discoverer, no cross-shard reader — every queue slot and every
	// per-vertex word has exactly one writer and no concurrent reader
	// (driver and worker hand off through level barriers). The hot
	// paths then use plain stores where the parallel protocol needs
	// atomic ones. This is not a protocol change but a Go artifact
	// removed: the paper's benign-race stores are plain MOVs in C on
	// x86, while Go's atomic.Store is a full XCHG — a ~25-cycle tax per
	// claimed vertex and per zeroed slot that buys nothing without a
	// second worker. Cleared by the sharded constructor alongside
	// shardEx: the exchange makes remote epoch words cross-shard
	// shared even at one worker per shard.
	single bool

	// chaos is Options.Chaos, kept as a direct field so the hot-path
	// nil-check compiles to one load+branch; levelAudit is the same
	// hook's optional per-level audit view. slotAudit is set by the
	// runners that zero queue slots as they pop (the lockfree
	// variants), the only ones whose buffers encode consumption.
	chaos      ChaosHook
	levelAudit ChaosLevelAuditor
	flushAudit ChaosFlushAuditor
	slotAudit  bool

	pops int64 // total pops, accumulated across levels after barriers

	// hy is the direction-optimizing machinery (hybrid.go); nil unless
	// Options.Hybrid. While hy.bottomUp the in-queues are empty — the
	// frontier lives in hy's bitmap and volume() reports hy.curCount.
	hy *hybridState

	// Failure machinery (recover.go). algo names the bound variant for
	// error reports; abortFlag is the run's abort word (atomic reads,
	// writes serialized by abortMu); wpanic/stall hold the typed abort
	// cause; abortHooks are the poison callbacks a binding registers
	// for barriers a dead worker could strand peers at; beats are the
	// per-worker progress heartbeats the watchdog samples; levelA
	// mirrors level atomically for readers outside the barrier protocol
	// (the watchdog).
	algo       Algorithm
	abortFlag  int32 // atomic
	abortMu    sync.Mutex
	wpanic     *WorkerPanicError
	stall      *StallError
	abortHooks []func()
	beats      []beatLane
	levelA     int32 // atomic

	// Sharded-engine fields (sharded.go); all zero for unsharded
	// engines and for a 1-shard ShardedEngine, whose hot paths are
	// therefore identical to the plain Engine's. When shardEx is
	// non-nil this state belongs to the shard owning [shardLo, shardHi)
	// and discover routes targets outside that range through the
	// cross-shard exchange. For remote vertices the epoch array doubles
	// as a per-shard "already forwarded" filter: it is advisory (two
	// workers may race past it and forward twice — a benign duplicate
	// the owner dedups), and it means epoch[v] == cur no longer implies
	// v was *claimed* here, only that this shard touched it — which is
	// why a sharded run's result is assembled from each shard's owned
	// range only (mergedFinish), never from a full finish() scan.
	// remoteBlk[id*S+d] is worker id's private block of (parent,
	// vertex) pairs destined for shard d, published to the exchange
	// queue with the same one-append-one-tail-store protocol as local
	// blocks. chaosBase offsets worker ids passed to the chaos hook so
	// one injector serves all shards without stream collisions.
	shardEx          *exchange
	shardID          int
	shardLo, shardHi int32
	remoteBlk        [][]int32
	chaosBase        int
}

// allocState allocates run state for g sized by opt, without priming it
// for any particular source. Called once per Engine; beginRun primes it
// per run. The per-vertex arrays start fully normalized (Unreached /
// no-claim / no-parent) so a state that has never run still reads as an
// empty result.
func allocState(g *graph.CSR, opt Options) *state {
	p := opt.Workers
	n := g.NumVertices()
	blkSize := opt.PublishBlock
	if blkSize <= 0 {
		// Engines arrive through withDefaults, but protocol tests build
		// state directly from zero-valued Options.
		blkSize = 128
	}
	st := &state{
		g:        g,
		opt:      opt,
		dist:     make([]int32, n),
		epoch:    make([]uint32, n),
		in:       make([]sharedQueue, p),
		out:      make([]outQueue, p),
		blk:      make([][]int32, p),
		blkSize:  blkSize,
		counters: stats.NewPerWorker(p),
		yield:    p > runtime.GOMAXPROCS(0),
		single:   p == 1,
		chaos:    opt.Chaos,
		beats:    make([]beatLane, p),
	}
	st.setGoal(opt.Target, opt.MaxDepth)
	if a, ok := opt.Chaos.(ChaosLevelAuditor); ok {
		st.levelAudit = a
	}
	if a, ok := opt.Chaos.(ChaosFlushAuditor); ok {
		st.flushAudit = a
	}
	for i := range st.dist {
		st.dist[i] = graph.Unreached
	}
	if opt.ParentClaim {
		st.claim = make([]int32, n)
		for i := range st.claim {
			st.claim[i] = -1
		}
	}
	if opt.TrackParents {
		st.parent = make([]int32, n)
		for i := range st.parent {
			st.parent[i] = -1
		}
	}
	for i := range st.out {
		st.out[i].buf = make([]int32, 0, 256)
		st.blk[i] = make([]int32, 0, blkSize)
	}
	if opt.Hybrid {
		// Eager: Transpose() is cached on the CSR, so the O(n+m) build
		// (and its allocation) lands here, never inside a warm Run.
		st.hy = newHybridState(g, opt)
	}
	st.initTrace()
	st.initTimeline()
	return st
}

// beginRun primes pooled state for a new search from src. Queue buffers
// are reused at their grown capacities (re-seeding worker 0's queue
// must not allocate a fresh 2-slot slice, and out buffers keep their
// high-water capacity instead of resetting to 256); the per-vertex
// arrays are invalidated wholesale by the epoch bump.
func (st *state) beginRun(src int32) {
	st.beginRunCommon()
	st.seedSource(src)
}

// beginRunCommon is the source-independent half of beginRun: epoch
// bump, counter/trace/abort resets, and all queues primed empty. A
// sharded run calls it on every shard and seedSource only on the
// source's owner.
func (st *state) beginRunCommon() {
	st.cur++
	if st.cur == 0 {
		// uint32 wraparound: a stamp written 2^32 runs ago would alias
		// the new epoch, so sweep everything back to the never-visited
		// stamp 0 and restart at 1. Runs once per 2^32-1 searches.
		for i := range st.epoch {
			st.epoch[i] = 0
		}
		st.cur = 1
	}
	st.level = 0
	st.pops = 0
	st.truncated = false
	atomic.StoreInt32(&st.levelA, 0)
	atomic.StoreInt32(&st.abortFlag, abortNone)
	st.wpanic = nil
	st.stall = nil
	for i := range st.beats {
		atomic.StoreInt64(&st.beats[i].n, 0)
	}
	for i := range st.counters {
		st.counters[i] = stats.PaddedCounters{}
	}
	for i := range st.events {
		st.events[i] = st.events[i][:0]
	}
	for i := range st.dropped {
		st.dropped[i] = 0
	}
	st.beginTimeline()
	for i := 0; i < st.opt.Workers; i++ {
		st.in[i].buf = append(st.in[i].buf[:0], emptySlot)
		st.in[i].origR = 0
		atomic.StoreInt64(&st.in[i].front, 0)
	}
	for i := range st.out {
		st.out[i].buf = st.out[i].buf[:0]
		atomic.StoreInt64(&st.out[i].tail, 0)
		st.blk[i] = st.blk[i][:0]
	}
	for i := range st.remoteBlk {
		st.remoteBlk[i] = st.remoteBlk[i][:0]
	}
	if st.hy != nil {
		st.resetHybrid()
	}
}

// seedSource plants src in worker 0's input queue and stamps its
// per-vertex entries. Must follow beginRunCommon in the same run.
func (st *state) seedSource(src int32) {
	st.in[0].buf = append(st.in[0].buf[:0], src+1, emptySlot)
	st.in[0].origR = 1
	atomic.StoreInt64(&st.in[0].front, 0)
	st.dist[src] = 0
	if st.claim != nil {
		st.claim[src] = 0
	}
	if st.parent != nil {
		st.parent[src] = src
	}
	st.epoch[src] = st.cur
	if st.hy != nil {
		// Match the beamer wrapper's budget convention: unexplored
		// excludes the frontier under decision, starting with the
		// source. (Under a ShardedEngine this touches the owner shard's
		// unused per-state budget; the global one lives on the engine.)
		st.hy.unexplored -= st.g.OutDegree(src)
	}
}

// newState allocates state and primes it for a search from src — the
// single-run construction path shared by the one-shot wrapper's engine
// and the protocol-level tests.
func newState(g *graph.CSR, src int32, opt Options) *state {
	st := allocState(g, opt)
	st.beginRun(src)
	return st
}

// volume returns the total number of valid entries across input
// queues — or, during a bottom-up hybrid level, the bitmap frontier's
// owned-vertex count (the queues are then deliberately empty).
func (st *state) volume() int64 {
	if st.hy != nil && st.hy.bottomUp {
		return st.hy.curCount
	}
	var v int64
	for i := range st.in {
		v += st.in[i].origR
	}
	return v
}

// swap promotes the output queues to input queues for the next level,
// appending the sentinel, and recycles the old input buffers as output
// storage. Only the published prefix buf[:tail] is promoted: the level
// barrier flushed every partial block, so tail == len(buf) here, and
// truncating to tail (rather than trusting len) keeps an unflushed
// entry from ever entering a frontier — it would surface as a flush-
// audit violation instead of a silent wrong answer. Called between
// level barriers, so plain accesses are safe.
func (st *state) swap() {
	for i := range st.in {
		old := st.in[i].buf
		oq := &st.out[i]
		next := append(oq.buf[:oq.tail], emptySlot)
		st.in[i].buf = next
		st.in[i].origR = int64(len(next) - 1)
		atomic.StoreInt64(&st.in[i].front, 0)
		oq.buf = old[:0]
		atomic.StoreInt64(&oq.tail, 0)
	}
}

// flushBlock publishes worker id's discovery block: one append into the
// shared output queue followed by one atomic tail store covering the
// whole block. Between the copy and the tail store the queue holds
// entries nobody else may read — ChaosBlockFlush stretches exactly that
// window. Returns the block emptied for reuse.
func (st *state) flushBlock(id int, block []int32) []int32 {
	q := &st.out[id]
	q.buf = append(q.buf, block...)
	c := &st.counters[id]
	c.BlocksFlushed++
	if len(block) < st.blkSize {
		c.PartialFlushes++
	}
	st.chaosAt(ChaosBlockFlush, id, int64(len(q.buf)))
	atomic.StoreInt64(&q.tail, int64(len(q.buf)))
	return block[:0]
}

// endLevelOut is the level-barrier flush of batched publication: every
// worker calls it on its discovery block before quiescing, so a vertex
// never waits in a private block past the level it was discovered in.
// Returns the block emptied for the next level.
func (st *state) endLevelOut(id int, block []int32) []int32 {
	if len(block) > 0 {
		block = st.flushBlock(id, block)
	}
	return block
}

// discover processes edge u->w for worker id at the current level:
// if w is undiscovered it is assigned level+1 and appended to the
// worker's private discovery block, which is published to the shared
// output queue whenever it reaches PublishBlock entries. The epoch
// check-then-store is the paper's benign race on dist, carried over to
// the stamp: two workers may both discover w, all racing stores write
// the same values, and w appears in (at most) both their output queues.
// The stamp is published after the payload stores so a racer that
// observes epoch[w] == cur is ordered after the payload it would
// otherwise have written itself.
func (st *state) discover(id int, u, w int32, out []int32) []int32 {
	// Owner-compute routing (sharded engines only): a target another
	// shard owns is forwarded through the exchange instead of claimed
	// here. Unsharded engines — and 1-shard ShardedEngines, which leave
	// shardEx nil — pay exactly one pointer load and branch for this.
	if st.shardEx != nil && (w < st.shardLo || w >= st.shardHi) {
		st.discoverRemote(id, u, w)
		return out
	}
	if atomic.LoadUint32(&st.epoch[w]) != st.cur {
		if st.single {
			// One-worker state: no concurrent observer, so the payload
			// and stamp stores are plain (see state.single).
			st.dist[w] = st.level + 1
			if st.claim != nil {
				st.claim[w] = int32(id)
			}
			if st.parent != nil {
				st.parent[w] = u
			}
			st.epoch[w] = st.cur
		} else {
			atomic.StoreInt32(&st.dist[w], st.level+1)
			if st.claim != nil {
				atomic.StoreInt32(&st.claim[w], int32(id))
			}
			if st.parent != nil {
				// Arbitrary concurrent write: racing discoverers are all
				// at the same level, so whichever store survives names a
				// valid BFS-tree parent.
				atomic.StoreInt32(&st.parent[w], u)
			}
			atomic.StoreUint32(&st.epoch[w], st.cur)
		}
		st.counters[id].Discovered++
		out = append(out, w+1)
		if len(out) >= st.blkSize {
			out = st.flushBlock(id, out)
		}
	}
	return out
}

// prefetchWindow is how many adjacency targets ahead scanNeighbors
// touches the epoch line before the claim-check loop reaches them —
// deep enough to cover a memory round-trip at BFS edge-scan pace,
// shallow enough that the warmed lines survive until used.
const prefetchWindow = 8

// scanNeighbors scans u's adjacency slice nb, discovering targets into
// out, with a software-prefetched lookahead: before discover runs its
// epoch check on nb[i], the loop has already touched the epoch line of
// nb[i+prefetchWindow], turning the dependent random-access load into
// an in-flight one. The touch is an atomic load because the epoch word
// is concurrently stored by racing discoverers — a plain read would be
// a data race — and because Go never eliminates an atomic op, so the
// prefetch cannot be dead-code-eliminated out of the loop.
func (st *state) scanNeighbors(id int, u int32, nb []int32, out []int32) []int32 {
	if st.shardEx == nil && st.claim == nil && st.parent == nil {
		return st.scanNeighborsLean(id, nb, out)
	}
	n := len(nb)
	for i := 0; i < prefetchWindow && i < n; i++ {
		_ = atomic.LoadUint32(&st.epoch[nb[i]])
	}
	i := 0
	for ; i < n-prefetchWindow; i++ {
		_ = atomic.LoadUint32(&st.epoch[nb[i+prefetchWindow]])
		out = st.discover(id, u, nb[i], out)
	}
	for ; i < n; i++ {
		out = st.discover(id, u, nb[i], out)
	}
	return out
}

// scanNeighborsLean is scanNeighbors for the common configuration — no
// shard exchange, no claim filter, no parent tracking. discover's
// generality costs a function call plus three dead branches per
// scanned edge; at one or two claims per edge that overhead rivals the
// useful work, and on low-degree high-diameter graphs it dominated
// whole searches. This copy hoists every loop-invariant load and
// inlines the claim, and skips the prefetch lookahead entirely on
// short adjacency rows, where the warm-up touches would nearly double
// the epoch traffic without covering any memory latency. Claim
// protocol and counter semantics are identical to discover's.
func (st *state) scanNeighborsLean(id int, nb []int32, out []int32) []int32 {
	epoch, dist := st.epoch, st.dist
	cur, lvl := st.cur, st.level+1
	single := st.single
	c := &st.counters[id]
	n := len(nb)
	i := 0
	if n > 2*prefetchWindow {
		for ; i < prefetchWindow; i++ {
			_ = atomic.LoadUint32(&epoch[nb[i]])
		}
		for i = 0; i < n-prefetchWindow; i++ {
			_ = atomic.LoadUint32(&epoch[nb[i+prefetchWindow]])
			w := nb[i]
			if atomic.LoadUint32(&epoch[w]) != cur {
				if single {
					dist[w], epoch[w] = lvl, cur
				} else {
					atomic.StoreInt32(&dist[w], lvl)
					atomic.StoreUint32(&epoch[w], cur)
				}
				c.Discovered++
				out = append(out, w+1)
				if len(out) >= st.blkSize {
					out = st.flushBlock(id, out)
				}
			}
		}
	}
	for ; i < n; i++ {
		w := nb[i]
		if atomic.LoadUint32(&epoch[w]) != cur {
			if single {
				dist[w], epoch[w] = lvl, cur
			} else {
				atomic.StoreInt32(&dist[w], lvl)
				atomic.StoreUint32(&epoch[w], cur)
			}
			c.Discovered++
			out = append(out, w+1)
			if len(out) >= st.blkSize {
				out = st.flushBlock(id, out)
			}
		}
	}
	return out
}

// prefetchVertex touches v's CSR offset entry so the adjacency bounds
// are in cache when v is popped a few slots later. Atomic for the same
// no-DCE reason as scanNeighbors; the offsets array is immutable, so
// the load is race-free by construction.
func (st *state) prefetchVertex(v int32) {
	if uint64(v) < uint64(len(st.g.Offsets)) {
		_ = atomic.LoadInt64(&st.g.Offsets[v])
	}
}

// exploreVertex scans v's adjacency, discovering neighbors into out.
func (st *state) exploreVertex(id int, v int32, out []int32) []int32 {
	c := &st.counters[id]
	c.VerticesPopped++
	nb := st.g.Neighbors(v)
	c.EdgesScanned += int64(len(nb))
	return st.scanNeighbors(id, v, nb, out)
}

// claimAllows reports whether the ParentClaim filter permits worker
// queue `qid`'s copy of v to be explored. Always true when disabled.
// (A popped v was discovered this run, so its claim entry is fresh.)
func (st *state) claimAllows(qid int, v int32) bool {
	if st.claim == nil {
		return true
	}
	return atomic.LoadInt32(&st.claim[v]) == int32(qid)
}

// setGoal (re)binds the state's termination goal: target in the
// vertex+1 Options.Target encoding (0 clears it), depth the MaxDepth
// bound (<=0 clears it). Called at construction from Options and
// between runs by RunGoal; never during a run.
func (st *state) setGoal(target, depth int32) {
	st.goalTarget = target - 1
	if depth < 0 {
		depth = 0
	}
	st.goalDepth = depth
}

// goalDone is the barrier-time termination predicate: true once the
// completed-level count reaches the depth bound or the target vertex's
// distance has committed. Called only from the single-threaded driver
// at level barriers, after the checks for natural exhaustion — so a
// run whose frontier emptied on its own is never marked truncated —
// and ordered after the level's worker stores by the barrier itself,
// which is why the epoch read is plain. Level synchrony makes the
// partial result exact: when the barrier after exploring level d-1
// observes the target settled at distance d, every vertex at distance
// <= d holds its final distance and everything deeper reads Unreached.
func (st *state) goalDone() bool {
	if st.goalDepth > 0 && st.level >= st.goalDepth {
		st.truncated = true
		return true
	}
	if t := st.goalTarget; t >= 0 && st.epoch[t] == st.cur {
		st.truncated = true
		return true
	}
	return false
}

// runLevels drives the level-synchronous loop: setup (optional) resets
// the algorithm's shared dispatch state before each level's workers
// start; perLevel must explore every input-queue entry (with the
// algorithm's own load balancing) and fill the private output buffers.
// It is invoked with worker ids 0..p-1 on separate goroutines and must
// return only when the worker is done with the level. The spawn/wait
// pair is the level-synchronization barrier every algorithm in the
// paper requires; the load balancing *within* a level is where the
// locked and lockfree variants differ. (Engines built with
// PersistentWorkers route searches through a runPool instead, which
// runs the same loop on engine-lifetime goroutines.) Each worker runs
// under workerLevel's recovery barrier; an aborted run stops at the
// next level boundary, with the slot audit skipped (an abort
// legitimately leaves slots unconsumed). The caller assembles the
// (possibly partial) Result via finish.
func (st *state) runLevels(setup func(), perLevel func(id int)) {
	p := st.opt.Workers
	for {
		if st.volume() == 0 || st.canceled() || st.aborted() || st.goalDone() {
			break
		}
		if setup != nil {
			setup()
		}
		var wg sync.WaitGroup
		wg.Add(p)
		for id := 0; id < p; id++ {
			go func(id int) {
				defer wg.Done()
				st.workerLevel(id, perLevel)
			}(id)
		}
		wg.Wait()
		if !st.aborted() {
			st.auditLevel()
		}
		st.recordLevel()
		st.level++
		atomic.StoreInt32(&st.levelA, st.level)
		st.swap()
		st.hybridAdvance()
	}
}

// finish assembles the Result after the final barrier, reusing the
// state's pooled Result and level-size storage: the returned value
// aliases engine state and is valid only until the next run. The single
// O(n) pass that computes reach/level statistics also normalizes
// entries whose epoch stamp is stale — left over from earlier runs —
// back to Unreached / no-parent, so Dist and Parent always read as
// plain arrays of exactly this run's search.
func (st *state) finish() *Result {
	total := stats.Sum(st.counters)
	if cap(st.levelSizes) < int(st.level) {
		st.levelSizes = make([]int64, st.level)
	} else {
		st.levelSizes = st.levelSizes[:st.level]
		for i := range st.levelSizes {
			st.levelSizes[i] = 0
		}
	}
	res := &st.res
	*res = Result{
		Dist:          st.dist,
		Parent:        st.parent,
		Levels:        st.level,
		Truncated:     st.truncated,
		Workers:       st.opt.Workers,
		Counters:      total,
		PerWorker:     st.counters,
		Pops:          total.VerticesPopped,
		LevelSizes:    st.levelSizes,
		Events:        st.events,
		EventsDropped: st.dropped,
	}
	cur := st.cur
	for v := int32(0); v < st.g.NumVertices(); v++ {
		if st.epoch[v] != cur {
			st.dist[v] = graph.Unreached
			if st.parent != nil {
				st.parent[v] = -1
			}
			continue
		}
		res.Reached++
		res.EdgesTraversed += st.g.OutDegree(v)
		// An aborted run can leave discovered vertices beyond the last
		// completed level; they count toward Reached (their dist is
		// settled and correct) but fall outside the completed-level
		// histogram.
		if d := st.dist[v]; int(d) < len(res.LevelSizes) {
			res.LevelSizes[d]++
		}
	}
	st.finishTimeline(res)
	return res
}

// maybeYield hands the OS thread to another runnable goroutine when
// the run is oversubscribed. Called at dispatch boundaries only.
func (st *state) maybeYield() {
	if st.yield {
		runtime.Gosched()
	}
}

// canceled reports whether the run's context (if any) has fired.
// Checked at level boundaries only.
func (st *state) canceled() bool {
	return st.opt.ctx != nil && st.opt.ctx.Err() != nil
}

// segmentSize returns the dispatch segment length for a queue with
// `remaining` undispatched entries: the fixed Options.SegmentSize if
// set, else the paper's adaptive rule — shrink segments as the level
// drains so late fetches stay balanced across p workers.
func (st *state) segmentSize(remaining int64) int64 {
	if st.opt.SegmentSize > 0 {
		return int64(st.opt.SegmentSize)
	}
	s := remaining/int64(8*st.opt.Workers) + 1
	const maxSeg = 1024
	if s > maxSeg {
		s = maxSeg
	}
	return s
}
