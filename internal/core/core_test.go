package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

// testGraphs returns a labeled set of graphs covering the structural
// extremes the algorithms must survive: deep paths, hub hotspots,
// dense duplicate storms, scale-free skew, meshes, and random graphs.
func testGraphs(t testing.TB) map[string]*graph.CSR {
	t.Helper()
	must := func(g *graph.CSR, err error) *graph.CSR {
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	return map[string]*graph.CSR{
		"single":    must(graph.FromEdges(1, nil, graph.BuildOptions{})),
		"two":       must(graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 1}}, graph.BuildOptions{})),
		"path":      must(gen.Path(257)),
		"star":      must(gen.Star(300)),
		"cycle":     must(gen.Cycle(100)),
		"tree":      must(gen.BinaryTree(255)),
		"complete":  must(gen.Complete(40)),
		"grid":      must(gen.Grid2D(17, 19, false)),
		"rmat":      must(gen.Graph500RMAT(2048, 16384, 42, gen.Options{})),
		"chunglu":   must(gen.ChungLu(2048, 16384, 2.2, 7, gen.Options{})),
		"layered":   must(gen.LayeredRandom(2000, 12000, 23, 9, gen.Options{})),
		"er":        must(gen.ErdosRenyi(1500, 6000, 3, gen.Options{})),
		"disjoint":  must(graph.FromEdges(100, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}}, graph.BuildOptions{})),
		"selfloops": must(graph.FromEdges(50, []graph.Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 1, Dst: 1}, {Src: 1, Dst: 2}}, graph.BuildOptions{})),
	}
}

var parallelAlgos = []Algorithm{BFSC, BFSCL, BFSDL, BFSW, BFSWL, BFSWS, BFSWSL, BFSEL}

// checkRun executes algo and verifies its distances against the serial
// oracle plus the structural validator, and its bookkeeping invariants.
func checkRun(t *testing.T, g *graph.CSR, src int32, algo Algorithm, opt Options) *Result {
	t.Helper()
	res, err := Run(g, src, algo, opt)
	if err != nil {
		t.Fatalf("%s: %v", algo, err)
	}
	want := graph.ReferenceBFS(g, src)
	if err := graph.EqualDistances(res.Dist, want); err != nil {
		t.Fatalf("%s (workers=%d): wrong distances: %v", algo, opt.Workers, err)
	}
	if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
		t.Fatalf("%s: structural validation: %v", algo, err)
	}
	if res.Levels != graph.Eccentricity(want)+1 {
		t.Fatalf("%s: Levels=%d, want %d", algo, res.Levels, graph.Eccentricity(want)+1)
	}
	wantReached, wantEdges := graph.ReachedCount(g, want)
	if res.Reached != wantReached || res.EdgesTraversed != wantEdges {
		t.Fatalf("%s: reached=%d edges=%d, want %d/%d", algo, res.Reached, res.EdgesTraversed, wantReached, wantEdges)
	}
	if res.Pops < res.Reached {
		t.Fatalf("%s: pops %d < reached %d (missed work)", algo, res.Pops, res.Reached)
	}
	if res.Duplicates() < 0 {
		t.Fatalf("%s: negative duplicates", algo)
	}
	return res
}

func TestSerialMatchesOracleEverywhere(t *testing.T) {
	for name, g := range testGraphs(t) {
		res, err := Run(g, 0, Serial, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, 0)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Duplicates() != 0 {
			t.Fatalf("%s: serial BFS reported %d duplicates", name, res.Duplicates())
		}
	}
}

func TestAllAlgorithmsAllGraphs(t *testing.T) {
	graphs := testGraphs(t)
	for _, workers := range []int{1, 2, 3, 4, 8} {
		for _, algo := range parallelAlgos {
			algo, workers := algo, workers
			t.Run(fmt.Sprintf("%s/p%d", algo, workers), func(t *testing.T) {
				t.Parallel()
				for name, g := range graphs {
					opt := Options{Workers: workers, Seed: 1}
					res := checkRun(t, g, 0, algo, opt)
					if res.Workers != workers {
						t.Fatalf("%s: Workers=%d, want %d", name, res.Workers, workers)
					}
				}
			})
		}
	}
}

func TestPersistentWorkersMode(t *testing.T) {
	graphs := testGraphs(t)
	for _, algo := range parallelAlgos {
		for name, g := range graphs {
			res, err := Run(g, 0, algo, Options{Workers: 4, Seed: 2, PersistentWorkers: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, name, err)
			}
			if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, 0)); err != nil {
				t.Fatalf("%s/%s: %v", algo, name, err)
			}
		}
	}
}

func TestPersistentWorkersDeepGraph(t *testing.T) {
	// Many levels: the mode exists exactly for this shape.
	g, err := gen.Path(2000)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BFSCL, BFSWSL, BFSEL} {
		res, err := Run(g, 0, algo, Options{Workers: 8, PersistentWorkers: true, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Levels != 2000 {
			t.Fatalf("%s: levels %d", algo, res.Levels)
		}
	}
}

func TestRepeatedRunsStayCorrect(t *testing.T) {
	// Races make scheduling different every run; hammer a scale-free
	// graph (maximum contention) repeatedly per algorithm.
	g, err := gen.ChungLu(4096, 32768, 2.1, 21, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, algo := range parallelAlgos {
		for rep := 0; rep < 10; rep++ {
			res, err := Run(g, 0, algo, Options{Workers: 8, Seed: uint64(rep)})
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.EqualDistances(res.Dist, want); err != nil {
				t.Fatalf("%s rep %d: %v", algo, rep, err)
			}
		}
	}
}

func TestDifferentSources(t *testing.T) {
	g, err := gen.LayeredRandom(1200, 7000, 15, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int32{0, 1, 599, 1199} {
		for _, algo := range parallelAlgos {
			checkRun(t, g, src, algo, Options{Workers: 4, Seed: 3})
		}
	}
}

func TestRunInputValidation(t *testing.T) {
	g, _ := gen.Path(10)
	if _, err := Run(nil, 0, BFSCL, Options{}); err == nil {
		t.Fatal("accepted nil graph")
	}
	if _, err := Run(g, -1, BFSCL, Options{}); err == nil {
		t.Fatal("accepted negative source")
	}
	if _, err := Run(g, 10, BFSCL, Options{}); err == nil {
		t.Fatal("accepted out-of-range source")
	}
	if _, err := Run(g, 0, Algorithm("nope"), Options{}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers <= 0 {
		t.Fatalf("Workers default %d", o.Workers)
	}
	if o.MaxStealFactor != 2 || o.Pools != 1 || o.Sockets != 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if o.SameSocketBias != 0 {
		t.Fatalf("zero-value bias changed to %g; an explicit 0 must stay 0", o.SameSocketBias)
	}
	if b := (Options{SameSocketBias: -1}).withDefaults().SameSocketBias; b != 0.9 {
		t.Fatalf("negative bias should select the default 0.9, got %g", b)
	}
	o2 := Options{Workers: 4, Pools: 100, Sockets: 99}.withDefaults()
	if o2.Pools != 4 || o2.Sockets != 4 {
		t.Fatalf("clamping wrong: %+v", o2)
	}
}

func TestLockfreePredicate(t *testing.T) {
	for _, a := range []Algorithm{BFSCL, BFSDL, BFSWL, BFSWSL, BFSEL} {
		if !a.Lockfree() {
			t.Fatalf("%s should be lockfree", a)
		}
	}
	for _, a := range []Algorithm{Serial, BFSC, BFSW, BFSWS} {
		if a.Lockfree() {
			t.Fatalf("%s should not be lockfree", a)
		}
	}
}

func TestMaxStealBound(t *testing.T) {
	if v := maxSteal(4, 1); v != 1 {
		t.Fatalf("maxSteal(4,1)=%d", v)
	}
	if v := maxSteal(4, 2); v != 8 {
		t.Fatalf("maxSteal(4,2)=%d", v) // 4*2*log2(2)=8
	}
	if v := maxSteal(4, 8); v != 96 {
		t.Fatalf("maxSteal(4,8)=%d", v) // 4*8*3=96
	}
}

func TestLockfreeVariantsUseNoLocks(t *testing.T) {
	g, err := gen.ChungLu(2048, 16384, 2.2, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BFSCL, BFSDL, BFSWL, BFSWSL, BFSEL} {
		res := checkRun(t, g, 0, algo, Options{Workers: 8, Seed: 2})
		if res.Counters.LockAcquisitions != 0 || res.Counters.LockTryFails != 0 {
			t.Fatalf("%s reported lock usage: %+v", algo, res.Counters)
		}
		if res.Counters.StealVictimLocked != 0 {
			t.Fatalf("%s reported victim-locked failures", algo)
		}
	}
}

func TestLockedVariantsUseLocks(t *testing.T) {
	g, err := gen.ChungLu(2048, 16384, 2.2, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BFSC, BFSW, BFSWS} {
		res := checkRun(t, g, 0, algo, Options{Workers: 4, Seed: 2})
		if res.Counters.LockAcquisitions == 0 {
			t.Fatalf("%s reported no lock acquisitions", algo)
		}
		if res.Counters.StealStale != 0 || res.Counters.StealInvalid != 0 {
			t.Fatalf("%s reported stale/invalid segments, impossible with locks: %+v", algo, res.Counters)
		}
	}
}

func TestWorkStealingActuallySteals(t *testing.T) {
	// The source's whole frontier starts in worker 0's queue, so other
	// workers must steal to do anything.
	g, err := gen.ErdosRenyi(8192, 65536, 4, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := checkRun(t, g, 0, BFSWL, Options{Workers: 8, Seed: 6})
	if res.Counters.StealAttempts == 0 {
		t.Fatal("no steal attempts recorded")
	}
	if res.Counters.StealSuccess == 0 {
		t.Fatal("no successful steals on a graph with large frontiers")
	}
	if got := res.Counters.StealSuccess + res.Counters.FailedSteals(); got != res.Counters.StealAttempts {
		t.Fatalf("steal taxonomy does not add up: %d success + %d failed != %d attempts",
			res.Counters.StealSuccess, res.Counters.FailedSteals(), res.Counters.StealAttempts)
	}
}

func TestScaleFreeDefersHotVertices(t *testing.T) {
	g, err := gen.Star(5000) // hub degree 4999
	if err != nil {
		t.Fatal(err)
	}
	res := checkRun(t, g, 1, BFSWSL, Options{Workers: 4, Seed: 1, HighDegreeThreshold: 100})
	if res.Counters.HotVertices == 0 {
		t.Fatal("star hub was not deferred to phase 2")
	}
	if res.Counters.HotChunks == 0 {
		t.Fatal("no phase-2 chunks processed")
	}
	// A low-threshold run on a near-regular graph must defer nothing.
	reg, err := gen.Grid2D(40, 40, false)
	if err != nil {
		t.Fatal(err)
	}
	res2 := checkRun(t, reg, 0, BFSWSL, Options{Workers: 4, Seed: 1, HighDegreeThreshold: 100})
	if res2.Counters.HotVertices != 0 {
		t.Fatalf("grid deferred %d hot vertices at threshold 100", res2.Counters.HotVertices)
	}
}

func TestPhase2Stealing(t *testing.T) {
	g, err := gen.ChungLu(4096, 65536, 2.0, 13, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BFSWS, BFSWSL} {
		res := checkRun(t, g, 0, algo, Options{Workers: 4, Seed: 9, Phase2Stealing: true})
		if res.Counters.HotVertices > 0 && res.Counters.HotChunks == 0 {
			t.Fatalf("%s: hot vertices but no chunks with Phase2Stealing", algo)
		}
	}
}

func TestParentClaimReducesDuplicates(t *testing.T) {
	// Dense low-diameter graph = maximal duplicate pressure (§IV-D says
	// the claim filter helps exactly there). The filter must at least
	// preserve correctness; usually it also reduces duplicate pops.
	g, err := gen.Complete(400)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BFSCL, BFSWL} {
		plain := checkRun(t, g, 0, algo, Options{Workers: 8, Seed: 5})
		claimed := checkRun(t, g, 0, algo, Options{Workers: 8, Seed: 5, ParentClaim: true})
		if claimed.Duplicates() > plain.Duplicates()+int64(g.NumVertices()) {
			t.Fatalf("%s: ParentClaim increased duplicates a lot: %d -> %d",
				algo, plain.Duplicates(), claimed.Duplicates())
		}
	}
}

func TestDecentralizedPoolSweep(t *testing.T) {
	g, err := gen.LayeredRandom(3000, 18000, 12, 8, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pools := range []int{1, 2, 3, 8, 100} {
		checkRun(t, g, 0, BFSDL, Options{Workers: 8, Pools: pools, Seed: 4})
	}
}

func TestSegmentSizeSweep(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 10000, 2, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 7, 64, 100000} {
		for _, algo := range []Algorithm{BFSC, BFSCL} {
			checkRun(t, g, 0, algo, Options{Workers: 4, SegmentSize: s, Seed: 11})
		}
	}
}

func TestSimulatedNUMA(t *testing.T) {
	g, err := gen.ChungLu(4096, 32768, 2.2, 17, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := checkRun(t, g, 0, BFSWL, Options{Workers: 8, Sockets: 2, SameSocketBias: 0.9, Seed: 1})
	total := res.Counters.StealSameSocket + res.Counters.StealCrossSocket
	if total == 0 {
		t.Skip("no steal attempts this run")
	}
	if res.Counters.StealSameSocket <= res.Counters.StealCrossSocket {
		t.Fatalf("socket bias ineffective: same=%d cross=%d",
			res.Counters.StealSameSocket, res.Counters.StealCrossSocket)
	}
	checkRun(t, g, 0, BFSDL, Options{Workers: 8, Pools: 4, Sockets: 2, Seed: 1})
}

func TestPopsAccounting(t *testing.T) {
	// On a path there is no parallelism and no duplicates regardless of
	// algorithm: every vertex is popped exactly once.
	g, err := gen.Path(500)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range parallelAlgos {
		res := checkRun(t, g, 0, algo, Options{Workers: 4, Seed: 2})
		if res.Duplicates() != 0 {
			t.Fatalf("%s popped duplicates on a path: %d", algo, res.Duplicates())
		}
	}
}

func TestCentralizedFetchCounters(t *testing.T) {
	g, err := gen.ErdosRenyi(4000, 20000, 6, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := checkRun(t, g, 0, BFSCL, Options{Workers: 4, Seed: 7})
	if res.Counters.Fetches == 0 {
		t.Fatal("no fetches recorded")
	}
	if res.Counters.LockAcquisitions != 0 {
		t.Fatal("lockfree centralized used locks")
	}
	resC := checkRun(t, g, 0, BFSC, Options{Workers: 4, Seed: 7})
	if resC.Counters.LockAcquisitions < resC.Counters.Fetches {
		t.Fatalf("BFS_C: %d lock acquisitions < %d fetches",
			resC.Counters.LockAcquisitions, resC.Counters.Fetches)
	}
}

// Property: any algorithm, any random graph, any source, any worker
// count in [1,8] produces exactly the oracle distances.
func TestPropertyAllAlgorithmsCorrect(t *testing.T) {
	f := func(seed uint64) bool {
		n := int32(2 + seed%300)
		m := int64(seed % 2000)
		g, err := gen.Graph500RMAT(n, m, seed, gen.Options{})
		if err != nil {
			return false
		}
		src := int32(seed % uint64(n))
		want := graph.ReferenceBFS(g, src)
		workers := 1 + int(seed%8)
		algo := parallelAlgos[seed%uint64(len(parallelAlgos))]
		res, err := Run(g, src, algo, Options{Workers: workers, Seed: seed})
		if err != nil {
			return false
		}
		return graph.EqualDistances(res.Dist, want) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestManyWorkersFewVertices(t *testing.T) {
	// More workers than vertices: most workers have empty queues and
	// must terminate cleanly.
	g, err := gen.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range parallelAlgos {
		checkRun(t, g, 0, algo, Options{Workers: 16, Seed: 1})
	}
}

func TestUnreachedVerticesStayUnreached(t *testing.T) {
	g, err := graph.FromEdges(10, []graph.Edge{{Src: 0, Dst: 1}, {Src: 5, Dst: 6}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range parallelAlgos {
		res := checkRun(t, g, 0, algo, Options{Workers: 4, Seed: 1})
		if res.Reached != 2 {
			t.Fatalf("%s: reached %d, want 2", algo, res.Reached)
		}
		for v := int32(2); v < 10; v++ {
			if res.Dist[v] != graph.Unreached {
				t.Fatalf("%s: vertex %d reached erroneously", algo, v)
			}
		}
	}
}
