package core

import (
	"testing"

	"optibfs/internal/gen"
)

// TestLevelTimelineConsistency checks the per-level timeline against
// the run's own aggregates: the deltas must sum back to the totals,
// every level must be represented, and the frontier/duplicate
// accounting must reconcile with LevelSizes.
func TestLevelTimelineConsistency(t *testing.T) {
	g := engineTestGraph(t)
	for _, persistent := range []bool{false, true} {
		for _, algo := range []Algorithm{BFSC, BFSCL, BFSDL, BFSWL, BFSWSL, BFSEL} {
			e, err := NewEngine(g, algo, Options{
				Workers: 4, Seed: 9, PersistentWorkers: persistent, LevelTimeline: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Two runs so the second exercises the pooled-timeline reset.
			for run := 0; run < 2; run++ {
				res, err := e.Run(0)
				if err != nil {
					t.Fatalf("%s persistent=%v: %v", algo, persistent, err)
				}
				if int32(len(res.LevelStats)) != res.Levels {
					t.Fatalf("%s persistent=%v run %d: %d timeline entries for %d levels",
						algo, persistent, run, len(res.LevelStats), res.Levels)
				}
				var pops, edges, discovered, dups int64
				for i, ls := range res.LevelStats {
					if ls.Level != int32(i) {
						t.Fatalf("%s: entry %d has level %d", algo, i, ls.Level)
					}
					if ls.Frontier <= 0 {
						t.Fatalf("%s: level %d frontier %d", algo, i, ls.Frontier)
					}
					if ls.WallNanos < 0 {
						t.Fatalf("%s: level %d wall %d", algo, i, ls.WallNanos)
					}
					pops += ls.Pops
					edges += ls.EdgesScanned
					discovered += ls.Discovered
					dups += ls.Duplicates
				}
				if pops != res.Pops {
					t.Fatalf("%s: timeline pops %d, run pops %d", algo, pops, res.Pops)
				}
				if edges != res.Counters.EdgesScanned {
					t.Fatalf("%s: timeline edges %d, counters %d", algo, edges, res.Counters.EdgesScanned)
				}
				// Discovery excludes the source, which beginRun seeds.
				if discovered != res.Counters.Discovered {
					t.Fatalf("%s: timeline discovered %d, counters %d", algo, discovered, res.Counters.Discovered)
				}
				if dups != res.Duplicates() {
					t.Fatalf("%s: timeline duplicates %d, run duplicates %d", algo, dups, res.Duplicates())
				}
			}
			e.Close()
		}
	}
}

// TestLevelTimelineDisabledByDefault pins the zero-option behavior:
// no timeline unless asked for.
func TestLevelTimelineDisabledByDefault(t *testing.T) {
	g := engineTestGraph(t)
	res, err := Run(g, 0, BFSCL, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.LevelStats != nil {
		t.Fatalf("timeline recorded without LevelTimeline: %d entries", len(res.LevelStats))
	}
}

// TestTraceDroppedEventsCounted forces the per-worker trace buffers to
// overflow and checks the drops are counted instead of silently eaten:
// recorded + dropped must equal what an uncapped trace records is not
// provable run-to-run (racy), but a full buffer with zero drops would
// mean the old silent truncation.
func TestTraceDroppedEventsCounted(t *testing.T) {
	g, err := gen.Star(4096)
	if err != nil {
		t.Fatal(err)
	}
	// SegmentSize 1 makes every slot a fetch: far more events than cap.
	res, err := Run(g, 0, BFSCL, Options{Workers: 4, TraceCapacity: 2, SegmentSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsDropped == nil {
		t.Fatal("EventsDropped nil with tracing enabled")
	}
	if len(res.EventsDropped) != res.Workers {
		t.Fatalf("EventsDropped has %d entries for %d workers", len(res.EventsDropped), res.Workers)
	}
	var recorded, dropped int64
	for w := range res.Events {
		recorded += int64(len(res.Events[w]))
		dropped += res.EventsDropped[w]
		if len(res.Events[w]) >= 2 && res.EventsDropped[w] == 0 {
			// A full buffer must either have exactly fit or counted drops;
			// on a 4096-star with segment size 1 fetches alone exceed 2.
			t.Fatalf("worker %d: buffer full but no drops counted", w)
		}
	}
	if dropped == 0 {
		t.Fatalf("no drops counted (recorded=%d, cap=2)", recorded)
	}
	// Totals must reconcile: every dispatch event was either kept or counted.
	if recorded+dropped < res.Counters.Fetches {
		t.Fatalf("recorded %d + dropped %d < fetches %d", recorded, dropped, res.Counters.Fetches)
	}

	// A reused engine must reset the drop counts between runs.
	e, err := NewEngine(g, BFSCL, Options{Workers: 4, TraceCapacity: 1 << 20, SegmentSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res2, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for w, d := range res2.EventsDropped {
		if d != 0 {
			t.Fatalf("worker %d dropped %d events under a huge cap", w, d)
		}
	}
}
