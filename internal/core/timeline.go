package core

// Per-level run timelines: when Options.LevelTimeline is set, the
// engine records one LevelStat per BFS level, assembled at the level
// barrier where the happens-before edge already makes plain reads of
// every worker's counters safe. Recording costs one counter sweep and
// one clock read per *level* (never per vertex or edge), and the
// backing slice is pooled on the engine like all other per-run state,
// so warm runs stay allocation-free.

import (
	"time"

	"optibfs/internal/stats"
)

// LevelStat is one BFS level of a run's timeline. All counter fields
// are per-level deltas (the difference of the cumulative worker-counter
// sums at the level's two barriers), so summing a field over the
// timeline reproduces the run total.
type LevelStat struct {
	// Level is the BFS depth this entry describes (0 = the source level).
	Level int32
	// Frontier is the number of input-queue entries the level started
	// with, counting duplicate appends — the work the dispatchers see,
	// as opposed to LevelSizes' distinct vertex count.
	Frontier int64
	// Pops is the number of queue entries explored during the level,
	// including duplicate explorations.
	Pops int64
	// Duplicates is the duplicate-exploration count for the level:
	// Pops minus the number of distinct vertices at this depth.
	Duplicates int64
	// Discovered is how many vertices the level newly discovered.
	Discovered int64
	// EdgesScanned is the number of adjacency entries examined.
	EdgesScanned int64
	// Fetches is the number of successful segment fetches.
	Fetches int64
	// BlocksFlushed is the number of discovery blocks published to the
	// next-level queues during the level; PartialFlushes counts the
	// subset published below capacity (the level-barrier flushes).
	BlocksFlushed  int64
	PartialFlushes int64
	// StealOK and StealFailed split the level's steal attempts by
	// outcome (the failure taxonomy's sum, Table VI).
	StealOK     int64
	StealFailed int64
	// WallNanos is the level's wall-clock duration on this host,
	// measured barrier to barrier.
	WallNanos int64
}

// initTimeline sizes the pooled timeline storage when enabled.
func (st *state) initTimeline() {
	if !st.opt.LevelTimeline {
		return
	}
	st.timeline = true
	st.lvl = make([]LevelStat, 0, 32)
}

// beginTimeline re-primes the pooled timeline for a new run.
func (st *state) beginTimeline() {
	if !st.timeline {
		return
	}
	st.lvl = st.lvl[:0]
	st.lvlPrev = stats.Counters{}
	st.lvlStart = time.Now()
}

// recordLevel captures the finished level's stats. It runs between the
// level's work barrier and the swap (single goroutine, all workers
// quiesced), so plain reads of the per-worker counters are ordered
// after every write of the level.
func (st *state) recordLevel() {
	if !st.timeline {
		return
	}
	now := time.Now()
	sum := stats.Sum(st.counters)
	d := sum
	d.Sub(&st.lvlPrev)
	st.lvl = append(st.lvl, LevelStat{
		Level:          st.level,
		Frontier:       st.volume(),
		Pops:           d.VerticesPopped,
		Discovered:     d.Discovered,
		EdgesScanned:   d.EdgesScanned,
		Fetches:        d.Fetches,
		BlocksFlushed:  d.BlocksFlushed,
		PartialFlushes: d.PartialFlushes,
		StealOK:        d.StealSuccess,
		StealFailed:    d.FailedSteals(),
		WallNanos:      now.Sub(st.lvlStart).Nanoseconds(),
	})
	st.lvlPrev = sum
	st.lvlStart = now
}

// finishTimeline fills the fields that need the completed run — the
// per-level duplicate counts, which compare pops against the distinct
// vertex count finish() derives — and publishes the timeline on res.
func (st *state) finishTimeline(res *Result) {
	if !st.timeline {
		return
	}
	for i := range st.lvl {
		ls := &st.lvl[i]
		ls.Duplicates = 0
		if int(ls.Level) < len(res.LevelSizes) {
			if dup := ls.Pops - res.LevelSizes[ls.Level]; dup > 0 {
				ls.Duplicates = dup
			}
		}
	}
	res.LevelStats = st.lvl
}
