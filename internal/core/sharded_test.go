package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

var shardCounts = []int{1, 2, 4}

// newShardedForTest partitions g and builds a sharded engine, clamping
// the shard count like NewBackend so tiny suite graphs participate.
func newShardedForTest(t *testing.T, g *graph.CSR, shards int, algo Algorithm, opt Options) *ShardedEngine {
	t.Helper()
	if n := g.NumVertices(); n > 0 && int64(shards) > int64(n) {
		shards = int(n)
	}
	sg, err := graph.Partition(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewShardedEngine(sg, algo, opt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkShardedResult verifies a sharded Result against the serial
// oracle plus the same structural and accounting invariants checkRun
// applies to plain engines.
func checkShardedResult(t *testing.T, g *graph.CSR, src int32, res *Result) {
	t.Helper()
	want := graph.ReferenceBFS(g, src)
	if err := graph.EqualDistances(res.Dist, want); err != nil {
		t.Fatalf("wrong distances: %v", err)
	}
	if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
		t.Fatalf("structural validation: %v", err)
	}
	if res.Levels != graph.Eccentricity(want)+1 {
		t.Fatalf("Levels=%d, want %d", res.Levels, graph.Eccentricity(want)+1)
	}
	wantReached, wantEdges := graph.ReachedCount(g, want)
	if res.Reached != wantReached || res.EdgesTraversed != wantEdges {
		t.Fatalf("reached=%d edges=%d, want %d/%d", res.Reached, res.EdgesTraversed, wantReached, wantEdges)
	}
	if res.Pops < res.Reached {
		t.Fatalf("pops %d < reached %d (missed work)", res.Pops, res.Reached)
	}
	var sizes int64
	for _, s := range res.LevelSizes {
		sizes += s
	}
	if sizes != res.Reached {
		t.Fatalf("level sizes sum %d != reached %d", sizes, res.Reached)
	}
}

func TestShardedMatchesOracleEverywhere(t *testing.T) {
	graphs := testGraphs(t)
	for _, shards := range shardCounts {
		for _, algo := range parallelAlgos {
			t.Run(string(algo)+"/"+string(rune('0'+shards)), func(t *testing.T) {
				for name, g := range graphs {
					e := newShardedForTest(t, g, shards, algo, Options{Workers: 4})
					res, err := e.Run(0)
					if err != nil {
						e.Close()
						t.Fatalf("%s: %v", name, err)
					}
					func() {
						defer e.Close()
						defer func() {
							if t.Failed() {
								t.Logf("graph %s shards %d", name, shards)
							}
						}()
						checkShardedResult(t, g, 0, res)
					}()
				}
			})
		}
	}
}

func TestShardedTracksValidParents(t *testing.T) {
	g, err := gen.Graph500RMAT(4096, 32768, 11, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts {
		e := newShardedForTest(t, g, shards, BFSWL, Options{Workers: 4, TrackParents: true})
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.ValidateParents(g, 0, res.Dist, res.Parent); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		e.Close()
	}
}

// Repeated warm runs from rotating sources must stay correct: the
// epoch bump, exchange reset, and merged finish all reuse pooled state.
func TestShardedRepeatedRunsStayCorrect(t *testing.T) {
	g, err := gen.ChungLu(3000, 20000, 2.1, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, persistent := range []bool{false, true} {
		e := newShardedForTest(t, g, 3, BFSWSL, Options{Workers: 4, PersistentWorkers: persistent, TrackParents: true})
		for i := 0; i < 12; i++ {
			src := int32(i*211) % g.NumVertices()
			res, err := e.Run(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, src)); err != nil {
				t.Fatalf("persistent=%v run %d src %d: %v", persistent, i, src, err)
			}
			if err := graph.ValidateParents(g, src, res.Dist, res.Parent); err != nil {
				t.Fatalf("persistent=%v run %d: %v", persistent, i, err)
			}
		}
		e.Close()
	}
}

// shardFlushCounter counts ChaosShardFlush firings and records the
// largest worker id seen at any point, verifying the per-shard id
// offsets reach the hook.
type shardFlushCounter struct {
	flushes   int64
	maxWorker int64
}

func (h *shardFlushCounter) At(point ChaosPoint, worker int, value int64) {
	if point == ChaosShardFlush {
		atomic.AddInt64(&h.flushes, 1)
	}
	for {
		cur := atomic.LoadInt64(&h.maxWorker)
		if int64(worker) <= cur || atomic.CompareAndSwapInt64(&h.maxWorker, cur, int64(worker)) {
			break
		}
	}
}

// A multi-shard run over a connected graph must actually exercise the
// exchange (remote discoveries exist whenever edges cross the cut) and
// must report hook worker ids offset per shard.
func TestShardedExchangeObservable(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 16000, 9, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hook := &shardFlushCounter{}
	e := newShardedForTest(t, g, 4, BFSCL, Options{Workers: 3, Chaos: hook})
	defer e.Close()
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&hook.flushes) == 0 {
		t.Fatal("4-shard run on a connected ER graph published no exchange blocks")
	}
	if got := atomic.LoadInt64(&hook.maxWorker); got < 3 {
		t.Fatalf("max hook worker id %d; want >= 3 (shard-offset ids)", got)
	}
}

// flushResidueAuditor fails the run if any level barrier left
// unpublished entries, including exchange residue.
type flushResidueAuditor struct{ residue int64 }

func (h *flushResidueAuditor) At(ChaosPoint, int, int64) {}
func (h *flushResidueAuditor) FlushEnd(level int32, unpublished int64) {
	atomic.AddInt64(&h.residue, unpublished)
}

func TestShardedFlushAuditClean(t *testing.T) {
	g, err := gen.Graph500RMAT(2048, 16384, 17, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hook := &flushResidueAuditor{}
	e := newShardedForTest(t, g, 4, BFSWL, Options{Workers: 4, Chaos: hook})
	defer e.Close()
	for i := 0; i < 3; i++ {
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	if r := atomic.LoadInt64(&hook.residue); r != 0 {
		t.Fatalf("flush audit saw %d unpublished entries across exchange barriers", r)
	}
}

func TestShardedWorkerPanicPoisons(t *testing.T) {
	g, err := gen.ErdosRenyi(3000, 18000, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, persistent := range []bool{false, true} {
		e := newShardedForTest(t, g, 2, BFSWL,
			Options{Workers: 4, PersistentWorkers: persistent, Chaos: &panicOnceHook{}})
		res, err := e.Run(0)
		var wp *WorkerPanicError
		if !errors.As(err, &wp) {
			t.Fatalf("persistent=%v: got %v, want *WorkerPanicError", persistent, err)
		}
		if res == nil {
			t.Fatal("poisoned run returned no partial result")
		}
		if _, err := e.Run(0); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("second run: got %v, want ErrPoisoned", err)
		}
		e.Close()
		// A fresh sharded engine over the same partition still answers.
		e2 := newShardedForTest(t, g, 2, BFSWL, Options{Workers: 4, PersistentWorkers: persistent})
		res2, err := e2.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res2.Dist, want); err != nil {
			t.Fatal(err)
		}
		e2.Close()
	}
}

func TestShardedStallDetection(t *testing.T) {
	g, err := gen.ErdosRenyi(3000, 18000, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := newShardedForTest(t, g, 2, BFSCL, Options{
		Workers:      4,
		StallTimeout: 100 * time.Millisecond,
		Chaos:        &sleepHook{d: 800 * time.Millisecond},
	})
	defer e.Close()
	res, err := e.Run(0)
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *StallError", err)
	}
	if res == nil {
		t.Fatal("stalled run returned no partial result")
	}
	// Stalls leave the engine reusable once the fault source is gone.
	e.SetChaos(nil)
	res, err = e.Run(0)
	if err != nil {
		t.Fatalf("run after stall: %v", err)
	}
	if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestShardedCancellation(t *testing.T) {
	g, err := gen.Path(4000)
	if err != nil {
		t.Fatal(err)
	}
	e := newShardedForTest(t, g, 2, BFSWL, Options{Workers: 2})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The engine stays reusable after cancellation.
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestShardedReseedReproduces(t *testing.T) {
	g, err := gen.ChungLu(2048, 14000, 2.2, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := newShardedForTest(t, g, 3, BFSWSL, Options{Workers: 4, Seed: 99})
	defer e.Close()
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	e.Reseed(99)
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	checkShardedResult(t, g, 0, res)
}

func TestShardedConstructionErrors(t *testing.T) {
	g, err := gen.Path(64)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := graph.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedEngine(nil, BFSWL, Options{}); err == nil {
		t.Fatal("nil partition accepted")
	}
	if _, err := NewShardedEngine(sg, Serial, Options{}); err == nil {
		t.Fatal("serial baseline accepted for sharded execution")
	}
	if _, err := NewShardedEngine(sg, BFSWL, Options{Reorder: ReorderDegree}); err == nil {
		t.Fatal("reorder accepted for sharded execution")
	}
	if _, err := NewShardedEngine(sg, Algorithm("nope"), Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Trace and timeline are stripped, not rejected.
	e, err := NewShardedEngine(sg, BFSWL, Options{Workers: 2, TraceCapacity: 64, LevelTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if opt := e.Options(); opt.TraceCapacity != 0 || opt.LevelTimeline {
		t.Fatalf("trace/timeline not stripped: %+v", opt)
	}
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != nil || res.LevelStats != nil {
		t.Fatal("sharded result carries trace/timeline")
	}
}

func TestNewBackendRouting(t *testing.T) {
	g, err := gen.ErdosRenyi(500, 2500, 1, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		algo    Algorithm
		shards  int
		sharded bool
	}{
		{BFSWL, 0, false},
		{BFSWL, 1, false},
		{BFSWL, 2, true},
		{Serial, 4, false}, // serial ignores the shard count
	}
	for _, tc := range cases {
		b, err := NewBackend(g, tc.algo, Options{Workers: 2, Shards: tc.shards})
		if err != nil {
			t.Fatal(err)
		}
		_, isSharded := b.(*ShardedEngine)
		if isSharded != tc.sharded {
			t.Fatalf("%s shards=%d: sharded=%v, want %v", tc.algo, tc.shards, isSharded, tc.sharded)
		}
		res, err := b.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, 0)); err != nil {
			t.Fatal(err)
		}
		b.Close()
	}
	// Shard counts beyond the vertex count are clamped, not rejected.
	tiny, err := gen.Path(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend(tiny, BFSWL, Options{Workers: 2, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	res, err := b.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(tiny, 0)); err != nil {
		t.Fatal(err)
	}
}

// Warm sharded runs on persistent workers must not allocate: every
// queue, block, exchange buffer, and merged-result array is pooled.
func TestShardedWarmRunsDoNotAllocate(t *testing.T) {
	g, err := gen.Graph500RMAT(4096, 32768, 23, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := newShardedForTest(t, g, 4, BFSWL, Options{Workers: 4, PersistentWorkers: true, TrackParents: true})
	defer e.Close()
	for i := 0; i < 4; i++ { // warm every growth path
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
	})
	// The persistent-pool gate protocol allocates nothing; allow the
	// same small slack the Engine steady-state benchmark enforces for
	// runtime-internal noise.
	if avg > 8 {
		t.Fatalf("warm sharded run allocates %.1f objects", avg)
	}
}
