package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/rng"
)

func newTestState(t *testing.T, workers int) (*state, *graph.CSR) {
	t.Helper()
	g, err := gen.Grid2D(8, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	return newState(g, 0, Options{Workers: workers}.withDefaults()), g
}

func TestStateSeeding(t *testing.T) {
	st, _ := newTestState(t, 4)
	if st.volume() != 1 {
		t.Fatalf("initial volume %d", st.volume())
	}
	if st.in[0].buf[0] != 1 || st.in[0].buf[1] != emptySlot {
		t.Fatalf("source queue %v", st.in[0].buf)
	}
	if st.in[0].origR != 1 {
		t.Fatalf("origR %d", st.in[0].origR)
	}
	for i := 1; i < 4; i++ {
		if st.in[i].origR != 0 || st.in[i].buf[0] != emptySlot {
			t.Fatalf("queue %d not empty: %v", i, st.in[i].buf)
		}
	}
	if st.dist[0] != 0 {
		t.Fatal("source distance not 0")
	}
}

func TestStateSwap(t *testing.T) {
	st, _ := newTestState(t, 2)
	st.blk[0] = st.endLevelOut(0, append(st.blk[0], 5, 6))
	st.blk[1] = st.endLevelOut(1, append(st.blk[1], 9))
	st.swap()
	if st.in[0].origR != 2 || st.in[1].origR != 1 {
		t.Fatalf("origR after swap: %d, %d", st.in[0].origR, st.in[1].origR)
	}
	if st.in[0].buf[2] != emptySlot || st.in[1].buf[1] != emptySlot {
		t.Fatal("sentinel missing after swap")
	}
	if st.volume() != 3 {
		t.Fatalf("volume %d", st.volume())
	}
	if atomic.LoadInt64(&st.in[0].front) != 0 {
		t.Fatal("front not reset")
	}
	for i := range st.out {
		if len(st.out[i].buf) != 0 || atomic.LoadInt64(&st.out[i].tail) != 0 {
			t.Fatal("out queues not recycled empty")
		}
		if len(st.blk[i]) != 0 {
			t.Fatal("discovery blocks not recycled empty")
		}
	}
	if st.counters[0].BlocksFlushed != 1 || st.counters[0].PartialFlushes != 1 {
		t.Fatalf("worker 0 flush counters: %d blocks, %d partial",
			st.counters[0].BlocksFlushed, st.counters[0].PartialFlushes)
	}
}

// TestFlushBlockAtCapacity pins the batched-publication protocol at the
// block boundary: with PublishBlock=2 a third discovery must land in a
// freshly emptied block, with two full-block publications visible in
// the output queue and the tail index covering both.
func TestFlushBlockAtCapacity(t *testing.T) {
	g, err := gen.Grid2D(8, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	st := newState(g, 0, Options{Workers: 2, PublishBlock: 2}.withDefaults())
	out := st.blk[0]
	for _, w := range []int32{3, 5, 7} {
		out = st.discover(0, 0, w, out)
	}
	if len(out) != 1 || out[0] != 8 {
		t.Fatalf("open block after 3 discoveries: %v, want [8]", out)
	}
	q := &st.out[0]
	if got := atomic.LoadInt64(&q.tail); got != 2 {
		t.Fatalf("published tail %d, want 2 (third discovery unflushed)", got)
	}
	if len(q.buf) != 2 || q.buf[0] != 4 || q.buf[1] != 6 {
		t.Fatalf("published queue %v, want [4 6]", q.buf)
	}
	if st.counters[0].BlocksFlushed != 1 || st.counters[0].PartialFlushes != 0 {
		t.Fatalf("flush counters: %d blocks, %d partial, want 1, 0",
			st.counters[0].BlocksFlushed, st.counters[0].PartialFlushes)
	}
	st.blk[0] = st.endLevelOut(0, out)
	if got := atomic.LoadInt64(&q.tail); got != 3 {
		t.Fatalf("tail after barrier flush %d, want 3", got)
	}
	if st.counters[0].PartialFlushes != 1 {
		t.Fatalf("barrier flush not counted partial: %+v", st.counters[0].Counters)
	}
	st.swap()
	if st.in[0].origR != 3 || st.in[0].buf[3] != emptySlot {
		t.Fatalf("swap promoted %v (origR %d)", st.in[0].buf, st.in[0].origR)
	}
}

func TestDiscoverIsIdempotentPerVertex(t *testing.T) {
	st, _ := newTestState(t, 2)
	out := st.discover(0, 0, 7, nil)
	if len(out) != 1 || out[0] != 8 {
		t.Fatalf("discover output %v", out)
	}
	if st.dist[7] != 1 {
		t.Fatalf("dist[7]=%d", st.dist[7])
	}
	// Second discovery of the same vertex is a no-op.
	out = st.discover(0, 0, 7, out)
	if len(out) != 1 {
		t.Fatalf("re-discovery appended: %v", out)
	}
	if st.counters[0].Discovered != 1 {
		t.Fatalf("Discovered=%d", st.counters[0].Discovered)
	}
}

func TestClaimAllows(t *testing.T) {
	g, err := gen.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	st := newState(g, 0, Options{Workers: 2, ParentClaim: true}.withDefaults())
	st.discover(1, 0, 5, nil) // worker 1 claims vertex 5
	if !st.claimAllows(1, 5) {
		t.Fatal("claimer denied")
	}
	if st.claimAllows(0, 5) {
		t.Fatal("non-claimer allowed")
	}
	// Without ParentClaim everything is allowed.
	st2 := newState(g, 0, Options{Workers: 2}.withDefaults())
	if !st2.claimAllows(0, 5) || !st2.claimAllows(1, 5) {
		t.Fatal("claim filter active when disabled")
	}
}

func TestSegmentSizeRules(t *testing.T) {
	st, _ := newTestState(t, 4)
	// Fixed size wins.
	st.opt.SegmentSize = 7
	if s := st.segmentSize(1000000); s != 7 {
		t.Fatalf("fixed segment %d", s)
	}
	// Adaptive: remaining/(8p)+1, capped.
	st.opt.SegmentSize = 0
	if s := st.segmentSize(3200); s != 3200/32+1 {
		t.Fatalf("adaptive segment %d", s)
	}
	if s := st.segmentSize(0); s != 1 {
		t.Fatalf("empty segment %d", s)
	}
	if s := st.segmentSize(1 << 30); s != 1024 {
		t.Fatalf("cap segment %d", s)
	}
}

func TestExploreSegmentLockfreeStopsAtZero(t *testing.T) {
	st, _ := newTestState(t, 2)
	// Hand-craft queue 0: vertices 1,2 then an explored hole (0), then 3.
	st.in[0].buf = []int32{2, 3, 0, 4, 0}
	st.in[0].origR = 4
	out := st.exploreSegmentLockfree(0, 0, 0, 4, nil)
	// Exploration must stop at the hole: vertices 1 and 2 explored,
	// vertex 3 untouched.
	if st.dist[3] == graph.Unreached {
		// vertex ids: slot value-1; slots 2->v1, 3->v2. Neighbors of a
		// grid vertex get discovered; just assert the hole stopped us:
		t.Log("neighbor marking fine")
	}
	if st.in[0].buf[3] != 4 {
		t.Fatal("slot beyond the hole was consumed")
	}
	if st.counters[0].VerticesPopped != 2 {
		t.Fatalf("pops=%d want 2", st.counters[0].VerticesPopped)
	}
	if st.in[0].buf[0] != 0 || st.in[0].buf[1] != 0 {
		t.Fatal("explored slots not zeroed")
	}
	_ = out
}

func TestExploreSegmentLockfreeZeroesAndCounts(t *testing.T) {
	st, _ := newTestState(t, 1)
	st.in[0].buf = []int32{5, 6, 7, 0}
	st.in[0].origR = 3
	st.exploreSegmentLockfree(0, 0, 0, 2, nil) // segment shorter than queue
	if st.counters[0].VerticesPopped != 2 {
		t.Fatalf("pops=%d", st.counters[0].VerticesPopped)
	}
	if st.in[0].buf[2] != 7 {
		t.Fatal("segment boundary not respected")
	}
}

func TestSocketMapping(t *testing.T) {
	// 8 workers, 2 sockets: 0-3 on socket 0, 4-7 on socket 1.
	for id := 0; id < 8; id++ {
		want := 0
		if id >= 4 {
			want = 1
		}
		if got := socketOf(id, 8, 2); got != want {
			t.Fatalf("socketOf(%d)=%d want %d", id, got, want)
		}
	}
	lo, hi := socketRange(1, 8, 2)
	if lo != 4 || hi != 8 {
		t.Fatalf("socketRange=%d,%d", lo, hi)
	}
	lo, hi = socketRange(0, 3, 2) // 3 pools over 2 sockets
	if lo != 0 || hi != 1 {
		t.Fatalf("socketRange pools=%d,%d", lo, hi)
	}
}

func TestBarrierReuse(t *testing.T) {
	const n = 8
	b := newBarrier(n)
	var phase int32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			for round := int32(1); round <= 50; round++ {
				b.wait()
				// After the barrier every goroutine must observe a
				// phase >= its round once someone bumps it.
				if round == 1 {
					atomic.CompareAndSwapInt32(&phase, 0, 1)
				}
			}
		}()
	}
	wg.Wait()
	if atomic.LoadInt32(&phase) != 1 {
		t.Fatal("barrier goroutines did not run")
	}
}

func TestBarrierSingleWorker(t *testing.T) {
	b := newBarrier(1)
	for i := 0; i < 10; i++ {
		b.wait() // must never block
	}
}

func TestSegDescPadding(t *testing.T) {
	if sz := unsafe.Sizeof(segDesc{}); sz%64 != 0 {
		t.Fatalf("segDesc size %d not cache-line multiple", sz)
	}
	if sz := unsafe.Sizeof(sharedQueue{}); sz%64 != 0 {
		t.Fatalf("sharedQueue size %d not cache-line multiple", sz)
	}
	if sz := unsafe.Sizeof(pool{}); sz%64 != 0 {
		t.Fatalf("pool size %d not cache-line multiple", sz)
	}
}

func TestPickVictimNeverSelf(t *testing.T) {
	g, err := gen.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sockets := range []int{1, 2, 4} {
		st := newState(g, 0, Options{Workers: 8, Sockets: sockets}.withDefaults())
		w := &wsWorker{st: st, id: 3, c: &st.counters[3].Counters, r: rng.NewXoshiro256(1)}
		for i := 0; i < 2000; i++ {
			v := w.pickVictim()
			if v == 3 {
				t.Fatalf("sockets=%d: picked self", sockets)
			}
			if v < 0 || v >= 8 {
				t.Fatalf("sockets=%d: victim %d out of range", sockets, v)
			}
		}
	}
}

func TestPickVictimSocketBias(t *testing.T) {
	g, err := gen.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	st := newState(g, 0, Options{Workers: 8, Sockets: 2, SameSocketBias: 0.9}.withDefaults())
	w := &wsWorker{st: st, id: 0, c: &st.counters[0].Counters, r: rng.NewXoshiro256(1)}
	same := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if socketOf(w.pickVictim(), 8, 2) == 0 {
			same++
		}
	}
	// Unbiased would give ~43% same-socket (3 of 7 victims); with 0.9
	// bias it must be well above 80%.
	if float64(same)/trials < 0.8 {
		t.Fatalf("same-socket fraction %.2f too low for bias 0.9", float64(same)/trials)
	}
}

func TestStealLockfreeRejectsBadDescriptors(t *testing.T) {
	g, err := gen.Path(64)
	if err != nil {
		t.Fatal(err)
	}
	st := newState(g, 0, Options{Workers: 2}.withDefaults())
	ctx := &wsContext{descs: make([]segDesc, 2)}
	w := &wsWorker{st: st, ctx: ctx, id: 0, c: &st.counters[0].Counters, r: rng.NewXoshiro256(1)}
	me := &ctx.descs[0]
	vd := &ctx.descs[1]

	// Victim idle flag.
	atomic.StoreInt32(&vd.idle, 1)
	if w.stealLockfree(1, me) {
		t.Fatal("stole from idle victim")
	}
	if w.c.StealVictimIdle != 1 {
		t.Fatalf("idle counter %d", w.c.StealVictimIdle)
	}
	atomic.StoreInt32(&vd.idle, 0)

	// Invalid: r beyond the queue's original rear.
	vd.q, vd.f, vd.r = 0, 0, 999
	if w.stealLockfree(1, me) {
		t.Fatal("accepted r > origR")
	}
	if w.c.StealInvalid != 1 {
		t.Fatalf("invalid counter %d", w.c.StealInvalid)
	}

	// Invalid: queue id out of range.
	vd.q, vd.f, vd.r = 57, 0, 1
	if w.stealLockfree(1, me) {
		t.Fatal("accepted bad queue id")
	}

	// Empty: f == r.
	vd.q, vd.f, vd.r = 0, 1, 1
	if w.stealLockfree(1, me) {
		t.Fatal("stole empty segment")
	}

	// Too small: one remaining vertex.
	st.in[0].buf = []int32{1, 2, 3, 0}
	st.in[0].origR = 3
	vd.q, vd.f, vd.r = 0, 2, 3
	if w.stealLockfree(1, me) {
		t.Fatal("stole a too-small segment")
	}
	if w.c.StealTooSmall != 1 {
		t.Fatalf("too-small counter %d", w.c.StealTooSmall)
	}

	// Valid steal: thief takes the right half.
	vd.q, vd.f, vd.r = 0, 0, 3
	if !w.stealLockfree(1, me) {
		t.Fatal("valid steal rejected")
	}
	if me.q != 0 || me.f != 1 || me.r != 3 {
		t.Fatalf("thief descriptor (%d,%d,%d)", me.q, me.f, me.r)
	}
	if vd.r != 1 {
		t.Fatalf("victim rear %d, want 1", vd.r)
	}

	// Stale: slot at mid already zeroed.
	st.in[0].buf = []int32{1, 0, 0, 0}
	vd.q, vd.f, vd.r = 0, 0, 3
	if w.stealLockfree(1, me) {
		t.Fatal("stale steal reported success")
	}
	if w.c.StealStale != 1 {
		t.Fatalf("stale counter %d", w.c.StealStale)
	}
}

func TestStealLockedRespectsTryLock(t *testing.T) {
	g, err := gen.Path(64)
	if err != nil {
		t.Fatal(err)
	}
	st := newState(g, 0, Options{Workers: 2}.withDefaults())
	ctx := &wsContext{descs: make([]segDesc, 2)}
	w := &wsWorker{st: st, ctx: ctx, id: 0, locked: true, c: &st.counters[0].Counters, r: rng.NewXoshiro256(1)}
	me := &ctx.descs[0]
	vd := &ctx.descs[1]
	vd.q, vd.f, vd.r = 0, 0, 10
	st.in[0].origR = 10

	vd.mu.Lock()
	if w.stealLocked(1, me) {
		t.Fatal("stole while victim locked")
	}
	if w.c.StealVictimLocked != 1 || w.c.LockTryFails != 1 {
		t.Fatalf("counters: %+v", w.c)
	}
	vd.mu.Unlock()

	if !w.stealLocked(1, me) {
		t.Fatal("valid locked steal rejected")
	}
	if vd.r != 5 || me.f != 5 || me.r != 10 {
		t.Fatalf("locked steal wrong: victim.r=%d me=(%d,%d)", vd.r, me.f, me.r)
	}
}

func TestEdgePartitionedSingleWorkerAndHub(t *testing.T) {
	// A star forces the hub's adjacency to be split across segments.
	g, err := gen.Star(4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		res, err := Run(g, 0, BFSEL, Options{Workers: workers, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, 0)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Counters.Fetches == 0 {
			t.Fatal("no edge-range fetches recorded")
		}
	}
}

func TestEdgePartitionedZeroDegreeFrontier(t *testing.T) {
	// Vertices 1 and 2 are discovered but have no out-edges.
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, BFSEL, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached != 3 {
		t.Fatalf("reached %d", res.Reached)
	}
	if res.Pops < res.Reached {
		t.Fatalf("pops %d < reached %d", res.Pops, res.Reached)
	}
}

func TestLockBatchOption(t *testing.T) {
	g, err := gen.ErdosRenyi(3000, 20000, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	var lockCounts []int64
	for _, batch := range []int{1, 16, 256} {
		res, err := Run(g, 0, BFSW, Options{Workers: 4, LockBatch: batch, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		lockCounts = append(lockCounts, res.Counters.LockAcquisitions)
	}
	// Bigger batches must acquire the lock less often.
	if !(lockCounts[0] > lockCounts[1] && lockCounts[1] > lockCounts[2]) {
		t.Fatalf("lock counts not decreasing with batch size: %v", lockCounts)
	}
}
