package core

// In-core direction-optimizing traversal (Options.Hybrid): the Beamer,
// Asanović & Patterson hybrid fused into the lockfree level loop
// instead of wrapped around it (internal/beamer). The pieces:
//
//   - Bottom-up levels keep the frontier as a dense uint64 bitmap.
//     Bits are written with plain stores: within a level each worker
//     writes only words of its own 64-aligned vertex range, and a
//     redundantly set bit is the same benign duplicate the queue
//     protocol already tolerates, so the kernel needs no locks and no
//     atomic RMW — the paper's discipline carried to the bitmap
//     representation.
//   - The bottom-up kernel scans each unvisited owned vertex over the
//     cached transpose's in-edges and claims it on the first in-
//     neighbor found in the current frontier. Every write (dist,
//     parent, epoch stamp, frontier bit) targets vertex-owned state,
//     so the kernel is race-free by construction; the epoch stamp is
//     published with the same meaning as everywhere else.
//   - The alpha/beta switch is evaluated at the level barrier from
//     exact frontier counters. Top-down frontiers are deduplicated by
//     a single test-and-set walk over the promoted in-queues (the
//     queues hold duplicates from racing discoveries), so the decision
//     never sees the duplicate-inflated estimates that made the
//     internal/beamer wrapper drift; bottom-up frontiers are exact for
//     free (per-vertex ownership admits no duplicates).
//   - Switching back top-down compacts the bitmap into the batched
//     queue publication path with an atomics-free prefix-sum pass in
//     the style of Tithi, Fogel & Chowdhury (2022): per-worker-range
//     popcounts size each worker's queue exactly (the popcount vector
//     is the prefix-sum input, and the per-queue layout makes each
//     worker's running offset the start of its own queue, so the scan
//     degenerates to one pass per range), then set bits scatter into
//     the queues in vertex order. The pass runs single-threaded inside
//     the barrier: switches are rare (a handful per search) and the
//     bindings' setup functions may read the queue contents the scatter
//     writes, so publishing from the barrier is what keeps every
//     family's dispatch machinery oblivious to where the frontier came
//     from.
//
// Drivers call hybridAdvance (or ShardedEngine.hybridAdvance) after
// every swap; it is a no-op unless the state was built with
// Options.Hybrid.

import (
	"math/bits"
	"sync/atomic"

	"optibfs/internal/graph"
)

// hyLane is one worker's per-level frontier accumulators, padded so
// neighboring workers' hot counters do not share a cache line. mf is
// the claimed vertices' summed in-row length — valid as their out-edge
// sum straight from the kernel (len(in-row) when degEq, outdeg[]
// otherwise);
// accumulating it is a register add either way, never a memory load.
type hyLane struct {
	nf int64 // vertices this worker discovered this level
	mf int64 // their summed out-degree
	_  [48]byte
}

// hybridState is the per-state half of direction optimization: the
// bitmap frontier pair, the per-worker scan ranges, and (for a plain
// Engine) the barrier-time decision variables. Under a ShardedEngine
// curBits aliases the engine's global frontier bitmap and the decision
// variables live on the engine's shardedHybrid instead.
type hybridState struct {
	tg *graph.CSR // cached transpose; in-edges for bottom-up scans

	// curBits is the current frontier (read by every worker during a
	// bottom-up level); nextBits receives discoveries and doubles as
	// the top-down dedup filter at the barrier. Invariant: nextBits is
	// all-zero at every top-down barrier — dedupFrontier test-and-sets
	// into it and every decision path cleans up (or promotes) the bits
	// it set, and beginRunCommon re-clears wholesale so aborted runs
	// cannot leak stale bits into the next search.
	curBits  []uint64
	nextBits []uint64

	lanes  []hyLane
	lo, hi []int32 // per-worker vertex ranges; interior bounds 64-aligned

	// degEq reports that every vertex's in-degree equals its out-degree
	// (true for the symmetrized graphs bottom-up is usually worth
	// running on). When set, a bottom-up level's frontier out-edge sum
	// is accumulated in the kernel from len(in-row) — already in a
	// register at claim time. When it does not hold, outdeg carries the
	// out-degrees as one int32 per vertex: claims walk v in ascending
	// order, so the kernel-side accumulation is a dense sequential
	// stream — a quarter of the traffic of hitting the int64 offsets
	// pairs, and far cheaper than a separate barrier-time degree walk.
	degEq  bool
	outdeg []int32 // nil iff degEq

	// unvisBits tracks the still-unvisited vertices across one
	// bottom-up phase. The first bottom-up level after a switch builds
	// it as a side effect of its epoch-driven scan (unvisValid false →
	// true at the barrier); subsequent levels iterate its set bits
	// instead of re-scanning the whole epoch array, clearing each bit
	// they claim — so a vertex visited in an earlier level costs 1/64th
	// of a word load instead of an epoch compare, and an unvisited one
	// needs no epoch load at all. Plain stores: lane interiors are
	// word-aligned and shard boundary words live in per-shard arrays.
	// Invalidated on every top-down→bottom-up switch and at run reset,
	// so staleness from intervening top-down levels is impossible.
	unvisBits  []uint64
	unvisValid bool

	bottomUp bool  // current direction (the level about to run)
	curCount int64 // owned-frontier size while bottomUp (volume())

	// Decision state (plain Engine only; a ShardedEngine keeps the
	// global copy on its shardedHybrid). unexplored follows the beamer
	// wrapper's convention: the out-edge budget *after* subtracting the
	// frontier under decision, seeded as m − outdeg(src).
	unexplored int64
	prevNf     int64
	alpha      int64
	beta       int64
}

// newHybridState builds the hybrid machinery for one state over g,
// computing (or fetching) the cached transpose eagerly so the first
// Run pays no lazy-build allocation. Scan ranges cover [0, n) and are
// re-partitioned by a ShardedEngine to the shard's owned range.
func newHybridState(g *graph.CSR, opt Options) *hybridState {
	n := g.NumVertices()
	words := (int(n) + 63) / 64
	alpha, beta := opt.Alpha, opt.Beta
	if alpha <= 0 {
		// States built directly from zero-valued Options (protocol
		// tests) bypass withDefaults, like allocState's blkSize guard.
		alpha = 15
	}
	if beta <= 0 {
		beta = 18
	}
	hy := &hybridState{
		tg:        g.Transpose(),
		curBits:   make([]uint64, words),
		nextBits:  make([]uint64, words),
		unvisBits: make([]uint64, words),
		lanes:     make([]hyLane, opt.Workers),
		alpha:     alpha,
		beta:      beta,
	}
	hy.lo, hy.hi = hybridRanges(0, n, opt.Workers)
	hy.degEq = degreesEqual(g, hy.tg)
	if !hy.degEq {
		hy.outdeg = make([]int32, n)
		for v := int32(0); v < n; v++ {
			hy.outdeg[v] = int32(g.OutDegree(v))
		}
	}
	return hy
}

// degreesEqual reports whether every vertex's out-degree in g matches
// its in-degree (out-degree in tg) — one O(n) offsets comparison at
// engine build. Degree equality per vertex is exactly the condition
// under which summing in-row lengths of a discovered set equals its
// out-edge sum, which is all the mf accounting needs.
func degreesEqual(g, tg *graph.CSR) bool {
	a, b := g.Offsets, tg.Offsets
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hybridRanges splits [lo, hi) into p contiguous ranges with interior
// boundaries aligned to 64-vertex (one bitmap word) multiples, so no
// two workers' plain stores ever touch the same nextBits word. lo and
// hi themselves need no alignment: a shard's boundary words are
// private to that shard's bitmap arrays.
func hybridRanges(lo, hi int32, p int) (los, his []int32) {
	los, his = make([]int32, p), make([]int32, p)
	n := int64(hi) - int64(lo)
	prev := lo
	for k := 0; k < p; k++ {
		b := hi
		if k < p-1 {
			b = lo + int32(n*int64(k+1)/int64(p))
			b = (b + 63) &^ 63
			if b > hi {
				b = hi
			}
			if b < prev {
				b = prev
			}
		}
		los[k], his[k] = prev, b
		prev = b
	}
	return
}

// resetHybrid re-primes the hybrid machinery for a new run: direction
// back to top-down, the dedup/discovery bitmap cleared (an aborted run
// can abandon it mid-write), and the decision budget restored to the
// full edge count (seedSource subtracts the source's degree to match
// the wrapper's convention). The O(n/64) word clear is the only
// per-run cost.
func (st *state) resetHybrid() {
	hy := st.hy
	hy.bottomUp = false
	hy.curCount = 0
	hy.unexplored = st.g.NumEdges()
	hy.prevNf = 1
	for i := range hy.lanes {
		hy.lanes[i] = hyLane{}
	}
	for i := range hy.nextBits {
		hy.nextBits[i] = 0
	}
	hy.unvisValid = false
}

// buCheckPeriod is how many scanned vertices a bottom-up worker
// processes between heartbeat/abort checks (and oversubscription
// yields) — the kernel's dispatch boundary for the watchdog.
const buCheckPeriod = 4096

// buLevel is one worker's bottom-up level: clear this worker's slice
// of the discovery bitmap, then scan every unvisited vertex of the
// worker's range over its in-edges, claiming it on the first in-
// neighbor present in the current frontier. All writes are plain
// stores to vertex-owned state — dist/parent/epoch/bit of v are
// written only by v's range owner, and the level barriers order them
// against the atomic accesses of surrounding top-down levels — so the
// kernel is race-free without locks or atomic RMW.
//
// Counter contract (mirrors the top-down kernels so PerWorker sums
// compare across directions): VerticesPopped counts unvisited vertices
// whose adjacency was walked, EdgesScanned counts in-edges actually
// inspected (the early exit makes it a partial scan), Discovered
// counts claims.
func (st *state) buLevel(id int) {
	hy := st.hy
	lo, hi := hy.lo[id], hy.hi[id]
	next := hy.nextBits
	if lo < hi {
		for w, end := int(lo)>>6, (int(hi)+63)>>6; w < end; w++ {
			next[w] = 0
		}
	}
	// Every st.* indirection is hoisted out of the scan: the claim
	// stores below could alias state fields for all the compiler knows,
	// so un-hoisted loads of epoch/dist/cur re-run per vertex and cost
	// more than the bitmap tests that are this kernel's actual work.
	// The scan itself is split from the claim — the inner loop does
	// nothing but bitmap membership tests, and the (rarer) claim runs
	// after the early exit — which also makes the edges-inspected count
	// a single add instead of a per-edge increment.
	cur := hy.curBits
	epoch, stamp := st.epoch, st.cur
	dist, lvl := st.dist, st.level+1
	parent := st.parent
	toff, tedges := hy.tg.Offsets, hy.tg.Edges
	unvis := hy.unvisBits
	outdeg := hy.outdeg // nil when degEq: len(in-row) is the out-degree
	var pops, edges, disc, mf int64
	// The heartbeat runs once per buCheckPeriod-sized chunk rather than
	// via a per-vertex countdown: a decrement-and-branch on every
	// scanned vertex — visited ones included — measurably taxed the scan
	// (the whole point of this kernel is that the common case is a
	// bitmap test and nothing else). The chunk bound replaces it for
	// free: the inner loop already compares v against something.
	if !hy.unvisValid && lo < hi {
		// First bottom-up level of a phase: epoch-driven scan over the
		// whole range, accumulating the unvisited bitmap (claimed and
		// already-visited vertices excluded) for the rest of the phase.
		var acc uint64
		accW := int(lo) >> 6
		for v := lo; v < hi; {
			chunk := hi
			if c := int64(v) + buCheckPeriod; c < int64(chunk) {
				chunk = int32(c)
			}
			for ; v < chunk; v++ {
				if w := int(v) >> 6; w != accW {
					unvis[accW] = acc
					acc, accW = 0, w
				}
				if epoch[v] == stamp {
					continue
				}
				pops++
				nb := tedges[toff[v]:toff[v+1]]
				hit := -1
				for j, u := range nb {
					if cur[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
						hit = j
						break
					}
				}
				if hit < 0 {
					edges += int64(len(nb))
					acc |= 1 << (uint32(v) & 63)
					continue
				}
				edges += int64(hit + 1)
				dist[v] = lvl
				if parent != nil {
					parent[v] = nb[hit]
				}
				epoch[v] = stamp
				disc++
				if outdeg == nil {
					mf += int64(len(nb))
				} else {
					mf += int64(outdeg[v])
				}
				next[uint32(v)>>6] |= 1 << (uint32(v) & 63)
			}
			if v >= hi {
				break
			}
			st.beat(id)
			if st.aborted() {
				break
			}
			st.maybeYield()
		}
		unvis[accW] = acc
	} else if lo < hi {
		// Later levels of the phase: iterate only the set (unvisited)
		// bits, clearing each claim behind itself. No epoch loads — the
		// bit is the authoritative unvisited test within a phase.
		const wordChunk = buCheckPeriod >> 6
		for w, end := int(lo)>>6, (int(hi)+63)>>6; w < end; {
			chunk := end
			if c := w + wordChunk; c < chunk {
				chunk = c
			}
			for ; w < chunk; w++ {
				b := unvis[w]
				if b == 0 {
					continue
				}
				base := int32(w << 6)
				for rem := b; rem != 0; rem &= rem - 1 {
					v := base + int32(bits.TrailingZeros64(rem))
					pops++
					nb := tedges[toff[v]:toff[v+1]]
					hit := -1
					for j, u := range nb {
						if cur[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
							hit = j
							break
						}
					}
					if hit < 0 {
						edges += int64(len(nb))
						continue
					}
					edges += int64(hit + 1)
					dist[v] = lvl
					if parent != nil {
						parent[v] = nb[hit]
					}
					epoch[v] = stamp
					disc++
					if outdeg == nil {
						mf += int64(len(nb))
					} else {
						mf += int64(outdeg[v])
					}
					b &^= 1 << (uint32(v) & 63)
					next[uint32(v)>>6] |= 1 << (uint32(v) & 63)
				}
				unvis[w] = b
			}
			if w >= end {
				break
			}
			st.beat(id)
			if st.aborted() {
				break
			}
			st.maybeYield()
		}
	}
	c := &st.counters[id]
	c.VerticesPopped += pops
	c.EdgesScanned += edges
	c.Discovered += disc
	hy.lanes[id].nf = disc
	hy.lanes[id].mf = mf
	st.beat(id)
}

// dedupFrontier counts the just-promoted top-down frontier exactly:
// one single-threaded walk over the in-queues, test-and-setting each
// vertex's bit in nextBits so racing discoverers' duplicate entries
// count once. Returns the deduplicated vertex count and summed
// out-degree. The set bits stay behind deliberately — they *are* the
// frontier bitmap if the decision switches bottom-up — and every
// caller path clears or promotes them (see hybridState.nextBits).
func (hy *hybridState) dedupFrontier(st *state) (nf, mf int64) {
	next := hy.nextBits
	for i := range st.in {
		q := &st.in[i]
		buf := q.buf[:q.origR]
		for j, s := range buf {
			if s == emptySlot {
				continue
			}
			// Both the bitmap word and the CSR offsets of a frontier
			// vertex are random accesses; touch the lookahead entry's
			// lines now so the dependent loads below are in flight by
			// the time the walk reaches them (same discipline as
			// scanNeighbors' epoch prefetch — atomic so the touch
			// cannot be dead-code-eliminated, race-free because origR
			// is stable at the barrier).
			if j+prefetchWindow < len(buf) {
				if p := buf[j+prefetchWindow]; p != emptySlot {
					_ = atomic.LoadUint64(&next[uint32(p-1)>>6])
					st.prefetchVertex(p - 1)
				}
			}
			v := s - 1
			w, m := uint32(v)>>6, uint64(1)<<(uint32(v)&63)
			if next[w]&m == 0 {
				next[w] |= m
				nf++
				mf += st.g.OutDegree(v)
			}
		}
	}
	return
}

// countFrontierSingle is dedupFrontier for a one-worker state, where
// the claim protocol admits no duplicate queue entries (one worker's
// check-then-store is a plain critical section with itself): counting
// needs no bitmap at all, so the walk skips both the test-and-set here
// and the clearFrontierBits undo pass afterwards — the two walks that
// made every stay-top-down level pay for a switch that never happened.
// If the decision does switch bottom-up, buildFrontierBits constructs
// the bitmap then, once.
func (hy *hybridState) countFrontierSingle(st *state) (nf, mf int64) {
	for i := range st.in {
		q := &st.in[i]
		buf := q.buf[:q.origR]
		for j, s := range buf {
			if s == emptySlot {
				continue
			}
			if j+prefetchWindow < len(buf) {
				if p := buf[j+prefetchWindow]; p != emptySlot {
					st.prefetchVertex(p - 1)
				}
			}
			nf++
			mf += st.g.OutDegree(s - 1)
		}
	}
	return
}

// buildFrontierBits sets the nextBits bit of every queued frontier
// vertex — the deferred half of countFrontierSingle, run only on an
// actual top-down→bottom-up switch. nextBits is clean here (the
// single-worker path never dirtied it), so plain sets suffice.
func (hy *hybridState) buildFrontierBits(st *state) {
	next := hy.nextBits
	for i := range st.in {
		q := &st.in[i]
		for _, s := range q.buf[:q.origR] {
			if s != emptySlot {
				next[uint32(s-1)>>6] |= 1 << (uint32(s-1) & 63)
			}
		}
	}
}

// clearFrontierBits undoes dedupFrontier's test-and-set when the run
// stays top-down: one more walk over the same queue entries, clearing
// each bit (clearing a duplicate's bit twice is harmless). O(frontier),
// not O(n).
func (hy *hybridState) clearFrontierBits(st *state) {
	next := hy.nextBits
	for i := range st.in {
		q := &st.in[i]
		for _, s := range q.buf[:q.origR] {
			if s != emptySlot {
				next[uint32(s-1)>>6] &^= 1 << (uint32(s-1) & 63)
			}
		}
	}
}

// consumeFrontierQueues empties the in-queues on a top-down→bottom-up
// switch: the frontier now lives in the bitmap (dedupFrontier built
// it), so the queue entries are zeroed — keeping the slot audit's
// "every entry consumed" ledger truthful — and the counts reset so
// volume() and the next swap see empty queues.
func (st *state) consumeFrontierQueues() {
	for i := range st.in {
		q := &st.in[i]
		for j := int64(0); j < q.origR; j++ {
			q.buf[j] = emptySlot
		}
		q.origR = 0
		atomic.StoreInt64(&q.front, 0)
	}
}

// exitBottomUp compacts the bitmap frontier (in nextBits, where the
// final bottom-up level left it) back into the in-queues for top-down
// consumption — the atomics-free prefix-sum compaction. Pass one
// popcounts each worker range's words to size its queue exactly (the
// prefix offsets of a p-partitioned layout are exactly the queue
// starts, so the scan is one popcount vector); pass two scatters the
// set bits into the queues in vertex order, zeroing each word behind
// itself to restore the nextBits-clean invariant. With ParentClaim the
// scatter also records queue k as v's claimant so claimAllows admits
// the entry at pop time. Runs single-threaded inside the barrier; see
// the package comment for why.
func (st *state) exitBottomUp() {
	hy := st.hy
	next := hy.nextBits
	for k := range st.in {
		lo, hi := hy.lo[k], hy.hi[k]
		q := &st.in[k]
		buf := q.buf[:0]
		if lo < hi {
			wlo, whi := int(lo)>>6, int(hi-1)>>6
			// Popcount pass: exact entry count for this queue.
			var cnt int
			for w := wlo; w <= whi; w++ {
				word := rangeWord(next, w, wlo, whi, lo, hi)
				cnt += bits.OnesCount64(word)
			}
			if need := cnt + 1; cap(buf) < need {
				buf = make([]int32, 0, need)
			}
			// Scatter pass: set bits → queue entries, in vertex order.
			for w := wlo; w <= whi; w++ {
				word := rangeWord(next, w, wlo, whi, lo, hi)
				next[w] = 0
				for word != 0 {
					v := int32(w<<6) + int32(bits.TrailingZeros64(word))
					buf = append(buf, v+1)
					if st.claim != nil {
						st.claim[v] = int32(k)
					}
					word &= word - 1
				}
			}
		}
		buf = append(buf, emptySlot)
		q.buf = buf
		q.origR = int64(len(buf) - 1)
		atomic.StoreInt64(&q.front, 0)
	}
}

// rangeWord reads bitmap word w masked to the vertex range [lo, hi):
// bits below lo in the first word and at/above hi in the last word are
// dropped. (Out-of-range bits are structurally zero in this package —
// ranges only share words across *shards*, which use separate arrays —
// so the mask is defense in depth, not load-bearing.)
func rangeWord(bm []uint64, w, wlo, whi int, lo, hi int32) uint64 {
	word := bm[w]
	if w == wlo {
		word &= ^uint64(0) << (uint(lo) & 63)
	}
	if w == whi && uint(hi)&63 != 0 {
		word &= (uint64(1) << (uint(hi) & 63)) - 1
	}
	return word
}

// hybridDecide applies the Beamer heuristics to the frontier just
// counted. Accounting convention matches the (fixed) internal/beamer
// wrapper — unexplored excludes the frontier under decision, the alpha
// test additionally requires a growing frontier, and the beta test
// fires on |frontier| < n/beta — plus one refinement the wrapper
// (kept classic for the oracle-replay regression tests) does not have:
// entry is also gated on the frontier either already satisfying the
// beta stay-condition or growing geometrically. Without the gate,
// long plateau phases (meshes: cage*, freescale) oscillate — size
// jitter of a few vertices re-fires the alpha test, the bottom-up
// level pays its Ω(unvisited vertices) scan, and the beta test
// immediately switches back, every few levels for the rest of the
// search. Entering a state the very next decision would leave is
// always a loss; a frontier worth the scan is either large (≥ n/beta,
// so bottom-up persists) or exploding (≥ 2× the previous level, so
// the next frontier will be).
// Goal-directed runs refine the entry decision further (goalBound is
// the number of levels the depth bound still allows, 0 for unbounded;
// goalTarget reports a pending s-t target): with exactly one level
// left the Ω(unvisited) conversion scan can never amortize, so entry
// is refused outright, and with a target pending — which typically
// ends the run within a few levels of its discovery — entry demands
// both signals (large AND exploding) instead of either, so a search
// about to terminate does not pay for a scan it will not reuse.
func hybridDecide(bu bool, nf, mf, unexplored, prevNf, n, alpha, beta, goalBound int64, goalTarget bool) bool {
	if !bu {
		if mf <= unexplored/alpha || nf <= prevNf {
			return false
		}
		if goalBound == 1 {
			return false
		}
		if goalTarget {
			return nf >= n/beta && nf >= 2*prevNf
		}
		return nf >= n/beta || nf >= 2*prevNf
	}
	return nf >= n/beta
}

// hybridAdvance is the plain Engine's barrier-time direction step,
// called by the drivers right after swap: count the just-promoted
// frontier exactly (lane sums for a bottom-up level, a dedup walk for
// a top-down one), update the edge budget, decide the next level's
// direction, and convert the frontier representation if the direction
// changed. Runs single-threaded between level barriers on the driver
// goroutine — NOT under a worker recovery barrier, which is why chaos
// injectors must not panic or stall at ChaosDirectionFlip. No-op
// without Options.Hybrid; skipped after an abort (the queues and
// bitmap are then legitimately inconsistent, and the next resetHybrid
// re-primes everything).
func (st *state) hybridAdvance() {
	hy := st.hy
	if hy == nil || st.aborted() || st.canceled() {
		return
	}
	wasBU := hy.bottomUp
	var nf, mf int64
	if wasBU {
		st.counters[0].BottomUpLevels++
		hy.unvisValid = true
		for i := range hy.lanes {
			nf += hy.lanes[i].nf
			mf += hy.lanes[i].mf
		}
	} else {
		st.counters[0].TopDownLevels++
		if st.single {
			nf, mf = hy.countFrontierSingle(st)
		} else {
			nf, mf = hy.dedupFrontier(st)
		}
	}
	hy.unexplored -= mf
	if hy.unexplored < 0 {
		hy.unexplored = 0
	}
	var goalBound int64
	if st.goalDepth > 0 {
		// hybridAdvance runs after the barrier's level bump, so st.level
		// is the level the decision is for; <= 0 means the depth goal
		// fires at the loop top before another level runs.
		goalBound = int64(st.goalDepth - st.level)
	}
	bu := hybridDecide(wasBU, nf, mf, hy.unexplored, hy.prevNf,
		int64(st.g.NumVertices()), hy.alpha, hy.beta,
		goalBound, st.goalTarget >= 0)
	hy.prevNf = nf
	st.chaosAt(ChaosDirectionFlip, 0, int64(st.level))
	if ctl, ok := st.chaos.(ChaosDirectionController); ok {
		bu = ctl.DirectionChoice(st.level, bu)
	}
	switch {
	case !wasBU && bu:
		// Top-down → bottom-up: dedupFrontier already built the bitmap
		// in nextBits (the single-worker counting path deferred it to
		// now); consume the queues and promote it.
		if st.single {
			hy.buildFrontierBits(st)
		}
		st.consumeFrontierQueues()
		hy.curBits, hy.nextBits = hy.nextBits, hy.curBits
		hy.unvisValid = false
	case !wasBU && !bu:
		if !st.single {
			hy.clearFrontierBits(st)
		}
	case wasBU && bu:
		// The level's discoveries become the current frontier; the old
		// current array becomes scratch (buLevel clears it per range).
		hy.curBits, hy.nextBits = hy.nextBits, hy.curBits
	default: // bottom-up → top-down
		st.exitBottomUp()
	}
	hy.bottomUp = bu
	if bu {
		hy.curCount = nf
	} else {
		hy.curCount = 0
	}
}

// wrapHybrid interposes the direction switch on a family's binding:
// bottom-up levels run the bitmap kernel and skip the family's
// dispatch setup (whose queue-derived state would be meaningless — and
// BFS_EL's setup reads queue contents), top-down levels run the family
// untouched. The direction flag is written by the driver between
// barriers and read by workers after them, so plain accesses are
// ordered. Built once per engine; the closures allocate nothing per
// run.
func wrapHybrid(st *state, b binding) binding {
	innerSetup, innerPerLevel := b.setup, b.perLevel
	b.setup = func() {
		if st.hy.bottomUp {
			return
		}
		if innerSetup != nil {
			innerSetup()
		}
	}
	b.perLevel = func(id int) {
		if st.hy.bottomUp {
			st.buLevel(id)
			return
		}
		innerPerLevel(id)
	}
	return b
}

// shardedHybrid is the engine-level half of direction optimization
// under a ShardedEngine: the global frontier bitmap every shard's
// bottom-up scan reads (in-neighbors live in other shards' frontiers),
// and the global decision variables. Per-shard discovery bitmaps stay
// on each shard's hybridState; the single-threaded barrier step merges
// them here.
type shardedHybrid struct {
	curBits    []uint64
	bottomUp   bool
	unexplored int64
	prevNf     int64
	alpha      int64
	beta       int64
}

// mergeShardFrontiers rebuilds the global frontier bitmap from every
// shard's discovery bitmap: clear, then OR each shard's words over its
// owned range. Adjacent shards can share a boundary word; the merge is
// single-threaded at the barrier, and each shard's array holds set
// bits only for vertices it owns, so the ORs compose. O(n/64) per
// switch-or-bottom-up level.
func (e *ShardedEngine) mergeShardFrontiers() {
	global := e.hy.curBits
	for i := range global {
		global[i] = 0
	}
	for s, se := range e.shards {
		lo, hi := e.sg.Range(s)
		if lo >= hi {
			continue
		}
		next := se.st.hy.nextBits
		for w, end := int(lo)>>6, (int(hi)+63)>>6; w < end; w++ {
			global[w] |= next[w]
		}
	}
}

// hybridAdvance is the sharded barrier-time direction step, the
// ShardedEngine twin of state.hybridAdvance: per-shard exact counts
// roll up into one global decision, every shard then converts its
// frontier representation together, and each shard's curCount feeds
// volume(). Bottom-up levels release every shard regardless of local
// frontier (runLoop): an empty owned frontier still has unvisited
// vertices whose in-neighbors sit in other shards' global bits.
func (e *ShardedEngine) hybridAdvance() {
	hy := e.hy
	if hy == nil || e.canceled() || e.anyAborted() {
		return
	}
	st0 := e.shards[0].st
	wasBU := hy.bottomUp
	var nf, mf int64
	for _, se := range e.shards {
		sh := se.st.hy
		var snf, smf int64
		if wasBU {
			sh.unvisValid = true
			for i := range sh.lanes {
				snf += sh.lanes[i].nf
				smf += sh.lanes[i].mf
			}
		} else {
			snf, smf = sh.dedupFrontier(se.st)
		}
		sh.curCount = snf
		nf += snf
		mf += smf
	}
	if wasBU {
		st0.counters[0].BottomUpLevels++
	} else {
		st0.counters[0].TopDownLevels++
	}
	hy.unexplored -= mf
	if hy.unexplored < 0 {
		hy.unexplored = 0
	}
	var goalBound int64
	if e.goalDepth > 0 {
		goalBound = int64(e.goalDepth - st0.level)
	}
	bu := hybridDecide(wasBU, nf, mf, hy.unexplored, hy.prevNf,
		int64(e.sg.Full.NumVertices()), hy.alpha, hy.beta,
		goalBound, e.goalTarget >= 0)
	hy.prevNf = nf
	st0.chaosAt(ChaosDirectionFlip, 0, int64(st0.level))
	if ctl, ok := st0.chaos.(ChaosDirectionController); ok {
		bu = ctl.DirectionChoice(st0.level, bu)
	}
	switch {
	case !wasBU && bu:
		for _, se := range e.shards {
			se.st.consumeFrontierQueues()
			se.st.hy.unvisValid = false
		}
		e.mergeShardFrontiers()
	case !wasBU && !bu:
		for _, se := range e.shards {
			se.st.hy.clearFrontierBits(se.st)
		}
	case wasBU && bu:
		e.mergeShardFrontiers()
	default:
		for _, se := range e.shards {
			se.st.exitBottomUp()
		}
	}
	hy.bottomUp = bu
	for _, se := range e.shards {
		se.st.hy.bottomUp = bu
		if !bu {
			se.st.hy.curCount = 0
		}
	}
}
