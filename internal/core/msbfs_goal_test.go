package core

import (
	"context"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/rng"
)

// soloGoalOracle runs the serial engine with the same goal and returns
// its Result — the reference every retired lane must demux exactly.
func soloGoalOracle(t *testing.T, g *graph.CSR, src int32, goal Goal) *Result {
	t.Helper()
	e, err := NewEngine(g, Serial, Options{TrackParents: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.RunGoal(context.Background(), src, goal)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkLaneGoal verifies one lane of a goal-directed fused run against
// its solo serial twin: identical distances everywhere (both settle
// exactly the closed levels plus the final frontier) and matching
// truncation verdicts.
func checkLaneGoal(t *testing.T, g *graph.CSR, lane int, goal Goal, lr *LaneResult, want *Result) {
	t.Helper()
	if lr.Truncated != want.Truncated {
		t.Fatalf("lane %d goal %+v: Truncated=%v, solo %v", lane, goal, lr.Truncated, want.Truncated)
	}
	if lr.Levels != want.Levels {
		t.Fatalf("lane %d goal %+v: Levels=%d, solo %d", lane, goal, lr.Levels, want.Levels)
	}
	for v := range lr.Dist {
		if lr.Dist[v] != want.Dist[v] {
			t.Fatalf("lane %d goal %+v: dist[%d]=%d, solo %d", lane, goal, v, lr.Dist[v], want.Dist[v])
		}
	}
	for v, p := range lr.Parent {
		d := lr.Dist[v]
		switch {
		case d == graph.Unreached:
			if p != -1 {
				t.Fatalf("lane %d: unreached %d has parent %d", lane, v, p)
			}
		case int32(v) == lr.Src:
			if p != lr.Src {
				t.Fatalf("lane %d: source parent %d", lane, p)
			}
		default:
			if p < 0 || lr.Dist[p] != d-1 {
				t.Fatalf("lane %d: vertex %d depth %d parent %d depth %d", lane, v, d, p, lr.Dist[p])
			}
		}
	}
}

// mixedGoals builds a deterministic mix of per-lane goals over the
// oracle's distance field: a quarter unbounded, a quarter depth-bound,
// the rest targeted at varying depths (some with a depth bound racing
// the target).
func mixedGoals(g *graph.CSR, sources []int32, seed uint64) []Goal {
	r := rng.NewXoshiro256(seed)
	goals := make([]Goal, len(sources))
	for i, src := range sources {
		want := graph.ReferenceBFS(g, src)
		ecc := graph.Eccentricity(want)
		switch i % 4 {
		case 0: // unbounded
		case 1:
			goals[i] = Goal{MaxDepth: 1 + int32(r.Uint64n(uint64(ecc+1)))}
		default:
			depth := int32(r.Uint64n(uint64(ecc + 1)))
			for v := int32(0); v < g.NumVertices(); v++ {
				if want[v] == depth {
					goals[i] = GoalTo(v)
					break
				}
			}
			if i%4 == 3 {
				goals[i].MaxDepth = 1 + int32(r.Uint64n(uint64(ecc+1)))
			}
		}
	}
	return goals
}

// TestMSLaneRetirementMatchesSolo is the per-lane retirement
// correctness matrix: goal-directed fused runs at several lane counts,
// every lane compared distance-for-distance against its solo serial
// goal run. Run under -race this also exercises the retirement path's
// claim that it adds no cross-thread state: the masks change only on
// the barrier goroutine.
func TestMSLaneRetirementMatchesSolo(t *testing.T) {
	g, err := gen.Graph500RMAT(2048, 16384, 99, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewMSEngine(g, Options{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, lanes := range []int{1, 3, 17, 64} {
		sources := make([]int32, lanes)
		for i := range sources {
			sources[i] = int32(i*191) % g.NumVertices()
		}
		goals := mixedGoals(g, sources, uint64(lanes))
		res, err := e.RunGoals(context.Background(), sources, goals)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		for lane := range sources {
			want := soloGoalOracle(t, g, sources[lane], goals[lane])
			checkLaneGoal(t, g, lane, goals[lane], res.Lane(lane), want)
		}
	}
}

// A lane whose target equals its source must retire before the first
// level, and a fully retired batch must end the run with level 0.
func TestMSLaneRetireAtSeed(t *testing.T) {
	g, err := gen.Star(64)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewMSEngine(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sources := []int32{0, 5, 9}
	goals := []Goal{GoalTo(0), GoalTo(5), GoalTo(9)}
	res, err := e.RunGoals(context.Background(), sources, goals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 0 {
		t.Fatalf("Levels=%d, want 0 (all lanes retired at seed)", res.Levels)
	}
	if res.EdgesScanned != 0 {
		t.Fatalf("EdgesScanned=%d, want 0", res.EdgesScanned)
	}
	for lane, src := range sources {
		lr := res.Lane(lane)
		if !lr.Truncated || lr.Dist[src] != 0 || lr.Reached != 1 {
			t.Fatalf("lane %d: truncated=%v dist=%d reached=%d", lane, lr.Truncated, lr.Dist[src], lr.Reached)
		}
	}
}

// Retirement must shrink the fused run's scanned-edge volume: the same
// 64 sources with mixed-depth targets must examine strictly fewer
// adjacency entries than the unbounded fused run, and nil goals must
// behave exactly like RunContext.
func TestMSLaneRetirementReducesWork(t *testing.T) {
	g, err := gen.Graph500RMAT(4096, 32768, 33, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewMSEngine(g, Options{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sources := make([]int32, MaxLanes)
	for i := range sources {
		sources[i] = int32(i*61) % g.NumVertices()
	}
	full, err := e.RunContext(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	fullScanned := full.EdgesScanned
	if fullScanned == 0 {
		t.Fatal("unbounded fused run scanned no edges")
	}
	// Shallow targets: every lane retires within a level or two.
	goals := make([]Goal, len(sources))
	for i, src := range sources {
		want := graph.ReferenceBFS(g, src)
		for v := int32(0); v < g.NumVertices(); v++ {
			if want[v] == 1 {
				goals[i] = GoalTo(v)
				break
			}
		}
	}
	bounded, err := e.RunGoals(context.Background(), sources, goals)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.EdgesScanned >= fullScanned {
		t.Fatalf("retirement did not reduce work: %d >= %d", bounded.EdgesScanned, fullScanned)
	}
}
