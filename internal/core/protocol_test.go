package core

// Protocol-level tests of the paper's central safety argument: under
// ANY interleaving of the unsynchronized fetch operations, the union of
// dispatched segments covers the whole queue — races cause overlap
// (duplicate work) but never gaps (lost work). These tests simulate the
// protocol directly with scripted/random interleavings, independent of
// the goroutine scheduler, so the property is exercised adversarially
// even on a single-core host where real races are rare.

import (
	"testing"
	"testing/quick"

	"optibfs/internal/gen"
	"optibfs/internal/rng"
)

// fetchProtocol models the BFS_CL per-queue front pointer: each
// simulated thread executes load(front) -> store(front, end) with an
// arbitrary delay between the two, then owns the segment [f, end).
type fetchOp struct {
	thread int
	phase  int // 0 = load, 1 = store+dispatch
}

// simulateFetches runs `threads` simulated workers against one queue of
// `size` entries with segment length `seg`, interleaving their
// load/store phases in the order given by the seeded RNG. It returns
// the dispatched segments.
func simulateFetches(size, seg, threads int, seed uint64) [][2]int {
	r := rng.NewXoshiro256(seed)
	front := 0 // the shared racy pointer
	type threadState struct {
		loaded  int  // value observed by the pending load
		pending bool // load done, store not yet
		done    bool
	}
	states := make([]threadState, threads)
	var segments [][2]int

	active := threads
	for active > 0 {
		t := r.Intn(threads)
		st := &states[t]
		if st.done {
			continue
		}
		if !st.pending {
			// Load phase: observe the racy front.
			if front >= size {
				st.done = true
				active--
				continue
			}
			st.loaded = front
			st.pending = true
			continue
		}
		// Store phase: possibly stale. The protocol stores f+seg
		// regardless of concurrent movement.
		end := st.loaded + seg
		if end > size {
			end = size
		}
		front = end // racy store: may move the pointer backwards
		segments = append(segments, [2]int{st.loaded, end})
		st.pending = false
	}
	return segments
}

// exploredSet applies the zero-on-read rule: walking each segment left
// to right, a slot is "explored" by the first walker to reach it; a
// walker stops early only at the queue end. (In the real code a walker
// also stops at an already-zeroed slot, which can only skip slots that
// are themselves explored — modeled here by marking.)
func exploredSet(size int, segments [][2]int) []bool {
	explored := make([]bool, size)
	for _, s := range segments {
		for i := s[0]; i < s[1] && i < size; i++ {
			explored[i] = true
		}
	}
	return explored
}

func TestProtocolNoGapsUnderRandomInterleavings(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		size := 1 + int(rng.Mix64(seed)%100)
		seg := 1 + int(rng.Mix64(seed^0xff)%10)
		threads := 1 + int(rng.Mix64(seed^0xabc)%8)
		segments := simulateFetches(size, seg, threads, seed)
		explored := exploredSet(size, segments)
		for i, e := range explored {
			if !e {
				t.Fatalf("seed=%d size=%d seg=%d threads=%d: slot %d never dispatched (segments %v)",
					seed, size, seg, threads, i, segments)
			}
		}
	}
}

func TestProtocolOverlapIsPossibleButBounded(t *testing.T) {
	// With many threads and adversarial interleavings, overlap happens;
	// assert the simulation produces it (the benign race is real) and
	// that total dispatched length stays within threads*size (each
	// thread can at worst re-walk the queue once per its fetches).
	overlapSeen := false
	for seed := uint64(0); seed < 500 && !overlapSeen; seed++ {
		segments := simulateFetches(50, 7, 6, seed)
		var total int
		for _, s := range segments {
			total += s[1] - s[0]
		}
		if total > 50 {
			overlapSeen = true
		}
		if total > 6*50*2 {
			t.Fatalf("seed=%d: dispatched %d slots, absurd overlap", seed, total)
		}
	}
	if !overlapSeen {
		t.Fatal("no interleaving produced overlap; simulator too weak")
	}
}

// Property: the store value f+seg always covers the range it was read
// from, so the union of dispatched ranges is a prefix-closed cover.
func TestPropertyProtocolCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		size := 1 + int(seed%200)
		seg := 1 + int((seed>>8)%16)
		threads := 1 + int((seed>>16)%10)
		segments := simulateFetches(size, seg, threads, seed)
		for i, e := range exploredSet(size, segments) {
			if !e {
				_ = i
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRealRacesProduceDuplicatesNotLosses hammers the real BFS_CL with
// many workers and tiny segments on a wide graph, repeatedly, asserting
// the two halves of the paper's claim: results stay exact (no losses)
// while pops may exceed reached (duplicates allowed).
func TestRealRacesProduceDuplicatesNotLosses(t *testing.T) {
	g, err := gen.Star(20000)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 20; rep++ {
		res, err := Run(g, 0, BFSCL, Options{Workers: 16, SegmentSize: 1, Seed: uint64(rep)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reached != int64(g.NumVertices()) {
			t.Fatalf("rep %d: lost vertices: reached %d/%d", rep, res.Reached, g.NumVertices())
		}
		if res.Duplicates() < 0 {
			t.Fatalf("rep %d: negative duplicates", rep)
		}
	}
}
