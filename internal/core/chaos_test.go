package core

// Regression tests for the steal-path fixes, driven through the chaos
// hook interface: a seeded, deterministic stale-steal interleaving
// (the descriptor-leak bug), victim-selection uniformity, and the
// level-end unconsumed-slot audit.

import (
	"sync/atomic"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/rng"
)

// hookFunc adapts a closure to ChaosHook so white-box tests can
// choreograph one exact interleaving.
type hookFunc struct {
	f func(point ChaosPoint, worker int, value int64)
}

func (h *hookFunc) At(point ChaosPoint, worker int, value int64) {
	if h.f != nil {
		h.f(point, worker, value)
	}
}

// TestForcedStaleStealEmptiesDescriptor provokes, deterministically,
// the interleaving behind the descriptor-leak bug: a thief validates a
// victim's (q, f, r), and before it publishes the split the victim
// drains past the midpoint. The steal must come back stale AND the
// thief's own descriptor must be left empty — before the fix it kept
// advertising the spent [mid, r), which other thieves could
// chain-steal as dead work.
func TestForcedStaleStealEmptiesDescriptor(t *testing.T) {
	g, err := gen.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	h := &hookFunc{}
	st := newState(g, 0, Options{Workers: 2, Seed: 1, Chaos: h}.withDefaults())
	// Hand the victim a five-entry segment in queue 0 (vertices 1..5,
	// slot-encoded as v+1).
	st.in[0].buf = []int32{2, 3, 4, 5, 6, emptySlot}
	st.in[0].origR = 5
	ctx := &wsContext{descs: make([]segDesc, 2)}
	vd := &ctx.descs[0]
	vd.q, vd.f, vd.r = 0, 0, 5
	me := &ctx.descs[1]
	me.q, me.f, me.r = 1, 0, 0
	w := &wsWorker{
		st: st, ctx: ctx, id: 1,
		c: &st.counters[1].Counters, r: rng.NewXoshiro256(7),
	}
	h.f = func(point ChaosPoint, worker int, mid int64) {
		if point != ChaosStealPublish {
			return
		}
		// The victim races past the midpoint in the thief's
		// validate→publish window, zeroing the slots as it pops them.
		for j := mid; j < st.in[0].origR; j++ {
			atomic.StoreInt32(&st.in[0].buf[j], emptySlot)
		}
	}
	if ok := w.stealLockfree(0, me); ok {
		t.Fatal("steal of a spent segment reported success")
	}
	if w.c.StealStale != 1 {
		t.Fatalf("StealStale = %d, want 1", w.c.StealStale)
	}
	f, r := atomic.LoadInt64(&me.f), atomic.LoadInt64(&me.r)
	if f < r {
		t.Fatalf("stale steal left a live descriptor [%d, %d): other thieves can chain-steal the spent segment", f, r)
	}
}

// TestPickVictimUniformWithinSocket verifies the same-socket branch
// draws every socket-local peer with equal probability. The pre-fix
// code remapped a self-draw to the id's successor, double-weighting
// that worker; a chi-square statistic catches the skew at any id
// position in the socket range.
func TestPickVictimUniformWithinSocket(t *testing.T) {
	g, err := gen.Path(4)
	if err != nil {
		t.Fatal(err)
	}
	const p, draws = 8, 60000
	// Bias 1 forces the same-socket branch on every draw.
	st := newState(g, 0, Options{Workers: p, Sockets: 2, SameSocketBias: 1, Seed: 1}.withDefaults())
	for id := 0; id < p; id++ {
		w := &wsWorker{st: st, id: id, c: &st.counters[id].Counters, r: rng.NewXoshiro256(uint64(100 + id))}
		lo, hi := socketRange(socketOf(id, p, 2), p, 2)
		counts := make(map[int]int)
		for i := 0; i < draws; i++ {
			counts[w.pickVictim()]++
		}
		if counts[id] != 0 {
			t.Fatalf("id %d: picked itself %d times", id, counts[id])
		}
		cells := hi - lo - 1
		expected := float64(draws) / float64(cells)
		var chi2 float64
		for v, c := range counts {
			if v < lo || v >= hi {
				t.Fatalf("id %d: cross-socket victim %d under bias 1", id, v)
			}
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		if len(counts) != cells {
			t.Fatalf("id %d: only %d of %d socket peers ever picked: %v", id, len(counts), cells, counts)
		}
		// 99.9th percentile of chi-square with 2 degrees of freedom is
		// ~13.8; the pre-fix double-weighting scores draws/8 = 7500.
		if chi2 > 16 {
			t.Fatalf("id %d: victim distribution skewed, chi2 = %.1f over %v", id, chi2, counts)
		}
	}
}

// TestSameSocketBiasExplicitZero covers the withDefaults fix: an
// explicit 0 must survive (it turns the local-steal preference off),
// only negative means "default", and out-of-range values are clamped.
func TestSameSocketBiasExplicitZero(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, 0},
		{0.4, 0.4},
		{1, 1},
		{-1, 0.9},
		{-0.001, 0.9},
		{7, 1},
	}
	for _, c := range cases {
		got := Options{Workers: 4, Sockets: 2, SameSocketBias: c.in}.withDefaults().SameSocketBias
		if got != c.want {
			t.Fatalf("SameSocketBias %g round-tripped to %g, want %g", c.in, got, c.want)
		}
	}
	// An explicit-zero-bias run must still be correct.
	g, err := gen.ChungLu(2048, 16384, 2.2, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	res, err := Run(g, 0, BFSWL, Options{Workers: 8, Sockets: 2, SameSocketBias: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.EqualDistances(res.Dist, want); err != nil {
		t.Fatal(err)
	}
}

// TestDecentralizedNeverStrandsPool is the regression test for the
// pool-strand termination bug the soak harness uncovered: with few
// pools, every one of a worker's c·j·log2(j) random retry draws can
// miss the one pool still holding work, and before the fix the worker
// then exited the level, stranding that pool's queues (wrong, larger
// distances downstream). Pool queues have no owner to fall back on —
// termination must sweep all pools deterministically. 120 seeded runs
// at the adversarial configuration (2 workers, 2 pools) fail with
// high probability on the pre-fix code and are deterministic-clean
// after it.
func TestDecentralizedNeverStrandsPool(t *testing.T) {
	g, err := gen.LayeredRandom(3000, 15000, 60, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	runs := 120
	if testing.Short() {
		runs = 30
	}
	for seed := 0; seed < runs; seed++ {
		rec := &auditRecorder{}
		res, err := Run(g, 0, BFSDL, Options{
			Workers: 2, Pools: 2, SegmentSize: 3,
			Seed:  uint64(seed)*0x9e3779b97f4a7c15 + 1,
			Chaos: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range rec.unconsumed {
			if u != 0 {
				t.Fatalf("seed %d: level %d stranded %d queue slots", seed, rec.levels[i], u)
			}
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// countingHook tallies firings per chaos point, race-safely.
type countingHook struct {
	fired [NumChaosPoints]int64
}

func (h *countingHook) At(point ChaosPoint, worker int, value int64) {
	atomic.AddInt64(&h.fired[point], 1)
}

// TestChaosHooksFireAtInstrumentedPoints runs the lockfree variants
// with a counting hook and checks every structurally guaranteed point
// fires: slot zeroing and front advance (any lockfree drain),
// front/pool stores (decentralized fetch), and the phase-2 cursor
// (scale-free stealing dispatch). ChaosStealPublish is interleaving-
// dependent and is covered deterministically above.
func TestChaosHooksFireAtInstrumentedPoints(t *testing.T) {
	g, err := gen.Star(4096)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	h := &countingHook{}
	check := func(algo Algorithm, opt Options) {
		t.Helper()
		opt.Chaos = h
		res, err := Run(g, 0, algo, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("%s under chaos hook: %v", algo, err)
		}
	}
	check(BFSDL, Options{Workers: 4, Pools: 2, Seed: 1})
	check(BFSWL, Options{Workers: 4, Seed: 1})
	check(BFSWSL, Options{Workers: 4, Phase2Stealing: true, Seed: 1})
	for _, point := range []ChaosPoint{ChaosSlotZero, ChaosDrainAdvance, ChaosFrontStore, ChaosPoolStore, ChaosPhase2Advance, ChaosBlockFlush} {
		if atomic.LoadInt64(&h.fired[point]) == 0 {
			t.Errorf("chaos point %s never fired", point)
		}
	}
}

// auditRecorder captures the per-level unconsumed-slot audit.
type auditRecorder struct {
	countingHook
	levels     []int32
	unconsumed []int64
}

func (a *auditRecorder) LevelEnd(level int32, unconsumed int64) {
	a.levels = append(a.levels, level)
	a.unconsumed = append(a.unconsumed, unconsumed)
}

// TestLevelAuditCleanOnLockfreeRuns checks the auditor sees every
// level of a lockfree run and that the zero-on-read discipline leaves
// no slot unconsumed, in both the spawn-per-level and persistent-
// worker drivers.
func TestLevelAuditCleanOnLockfreeRuns(t *testing.T) {
	g, err := gen.LayeredRandom(2000, 10000, 23, 9, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BFSCL, BFSDL, BFSWL, BFSWSL} {
		for _, persistent := range []bool{false, true} {
			rec := &auditRecorder{}
			res, err := Run(g, 0, algo, Options{
				Workers: 4, Pools: 2, Seed: 2,
				PersistentWorkers: persistent, Chaos: rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			if int32(len(rec.levels)) != res.Levels {
				t.Fatalf("%s persistent=%v: audited %d levels, ran %d", algo, persistent, len(rec.levels), res.Levels)
			}
			for i, u := range rec.unconsumed {
				if u != 0 {
					t.Fatalf("%s persistent=%v: level %d left %d slots unconsumed", algo, persistent, rec.levels[i], u)
				}
			}
		}
	}
}

// TestAuditLevelDetectsLeftoverSlots hand-builds the failing state the
// auditor exists to catch: an input queue with entries no worker ever
// popped.
func TestAuditLevelDetectsLeftoverSlots(t *testing.T) {
	g, err := gen.Path(8)
	if err != nil {
		t.Fatal(err)
	}
	rec := &auditRecorder{}
	st := newState(g, 0, Options{Workers: 2, Chaos: rec}.withDefaults())
	st.slotAudit = true
	st.in[0].buf = []int32{3, 0, 5, emptySlot} // slot 1 consumed, 0 and 2 skipped
	st.in[0].origR = 3
	st.level = 4
	st.auditLevel()
	if len(rec.unconsumed) != 1 || rec.unconsumed[0] != 2 || rec.levels[0] != 4 {
		t.Fatalf("audit reported %v/%v, want one report of 2 unconsumed at level 4", rec.levels, rec.unconsumed)
	}
	// The locked variants leave slots intact by design: without
	// slotAudit the same state must not be reported.
	rec2 := &auditRecorder{}
	st2 := newState(g, 0, Options{Workers: 2, Chaos: rec2}.withDefaults())
	st2.in[0].buf = []int32{3, 0, 5, emptySlot}
	st2.in[0].origR = 3
	st2.auditLevel()
	if len(rec2.unconsumed) != 0 {
		t.Fatalf("audit ran without slotAudit: %v", rec2.unconsumed)
	}
}
