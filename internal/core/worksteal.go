package core

import (
	"sync"
	"sync/atomic"

	"optibfs/internal/rng"
	"optibfs/internal/stats"
)

// minStealSize is the smallest segment worth splitting: with fewer than
// two remaining vertices the thief's half would be empty.
const minStealSize = 2

// segDesc is one worker's published segment descriptor: the queue id q
// its current segment lives in, and the segment's front and rear. In
// the lockfree variants thieves read (q, f, r) with plain atomic loads
// — possibly observing a torn *combination* (each load is itself
// untorn) — and write r with a plain atomic store; the thief-side
// sanity check f' < r' <= origR(q') rejects inconsistent combinations
// (paper §IV-B2). In the locked variants mu protects the descriptor
// and thieves use TryLock so their wait time is O(1).
type segDesc struct {
	mu   sync.Mutex
	q    int64 // atomic in lockfree mode
	f    int64
	r    int64
	idle int32    // 1 once the worker quit the current level/phase
	_    [28]byte // pad to 64 bytes so descriptors do not false-share
}

// wsContext is the per-level shared state of the work-stealing runs.
type wsContext struct {
	descs []segDesc
	// Scale-free phase-2 inputs: hot[i] holds worker i's deferred
	// high-degree vertices; filled in phase 1, read-only in phase 2.
	hot [][]int32
	// phase2Cursor dispatches (vertex, chunk) units in the
	// Phase2Stealing variant; advanced with optimistic load/store in
	// lockfree mode and under phase2Mu in locked mode.
	phase2Cursor int64
	phase2Mu     sync.Mutex
	barrier      *barrier
}

// bindWorkSteal builds the binding constructor for BFS_W / BFS_WL
// (scaleFree=false) and BFS_WS / BFS_WSL (scaleFree=true), §IV-B. The
// per-worker wsWorker structs, descriptors, RNG streams, and closures
// are all built once per engine — the old per-level &wsWorker{} would
// otherwise be the work-stealing family's last steady-state allocation.
func bindWorkSteal(locked, scaleFree bool) bindFunc {
	return func(st *state) binding {
		// Lockfree draining zeroes every slot it pops, so the per-level
		// unconsumed-slot audit applies; locked draining consumes via the
		// descriptor front and leaves slots intact.
		st.slotAudit = !locked
		opt := st.opt
		p := opt.Workers

		threshold := opt.HighDegreeThreshold
		if scaleFree && threshold <= 0 {
			threshold = int64(4 * st.g.AvgDegree())
			if threshold < 64 {
				threshold = 64
			}
		}

		ctx := &wsContext{
			descs:   make([]segDesc, p),
			barrier: newBarrier(p),
		}
		if scaleFree {
			ctx.hot = make([][]int32, p)
			for i := range ctx.hot {
				ctx.hot[i] = make([]int32, 0, 64)
			}
		}
		rngs := make([]*rng.Xoshiro256, p)
		workers := make([]wsWorker, p)
		for i := range rngs {
			rngs[i] = rng.NewXoshiro256(opt.Seed ^ rng.Mix64(uint64(i)+0x5151))
			workers[i] = wsWorker{
				st: st, ctx: ctx, id: i, locked: locked,
				c: &st.counters[i].Counters, r: rngs[i],
				threshold: threshold,
			}
		}
		maxStealAttempts := maxSteal(opt.MaxStealFactor, p)

		setup := func() {
			for i := range ctx.descs {
				d := &ctx.descs[i]
				atomic.StoreInt64(&d.q, int64(i))
				atomic.StoreInt64(&d.f, 0)
				atomic.StoreInt64(&d.r, st.in[i].origR)
				atomic.StoreInt32(&d.idle, 0)
			}
			if scaleFree {
				for i := range ctx.hot {
					ctx.hot[i] = ctx.hot[i][:0]
				}
			}
			atomic.StoreInt64(&ctx.phase2Cursor, 0)
		}

		perLevel := func(id int) {
			w := &workers[id]
			w.out = st.blk[id]
			w.phase1(maxStealAttempts)
			if scaleFree {
				ctx.barrier.wait()
				// Skip phase 2 after an abort: on a panic abort the
				// barrier was poisoned open, so phase 1 may still be in
				// flight somewhere and the hot lists must not be read;
				// the engine is poisoned anyway. Workers that passed the
				// barrier normally all finished phase 1 first, as usual.
				if !st.aborted() {
					w.phase2()
				}
			}
			// Level-barrier flush: publish the partial discovery block
			// before quiescing (after phase 2, which also discovers).
			st.blk[id] = st.endLevelOut(id, w.out)
		}

		if scaleFree {
			// A worker that panics before reaching the phase barrier
			// would strand its peers there forever; the panic abort
			// poisons the barrier open (the engine is discarded after).
			st.abortHooks = append(st.abortHooks, ctx.barrier.poison)
		}

		return binding{setup: setup, perLevel: perLevel, rngs: rngs, rngSalt: 0x5151}
	}
}

// wsWorker bundles one worker's view of a work-stealing level.
type wsWorker struct {
	st        *state
	ctx       *wsContext
	id        int
	locked    bool
	c         *stats.Counters
	r         *rng.Xoshiro256
	threshold int64 // 0 when not in scale-free mode
	out       []int32
	flat      []int32 // pooled phase-2 unit buffer (Phase2Stealing only)
}

// process explores popped vertex v from queue qid, or defers it to
// phase 2 if it is a scale-free hot spot.
func (w *wsWorker) process(qid int, v int32) {
	w.c.VerticesPopped++
	if !w.st.claimAllows(qid, v) {
		return
	}
	if w.threshold > 0 && w.st.g.OutDegree(v) >= w.threshold {
		w.ctx.hot[w.id] = append(w.ctx.hot[w.id], v)
		w.c.HotVertices++
		return
	}
	nb := w.st.g.Neighbors(v)
	w.c.EdgesScanned += int64(len(nb))
	w.out = w.st.scanNeighbors(w.id, v, nb, w.out)
}

// phase1 runs the work-stealing loop for one level: drain own segment,
// then steal halves from random victims until MAX_STEAL consecutive
// failures (paper: c·p·log2(p), from the balls-and-bins bound).
func (w *wsWorker) phase1(maxStealAttempts int) {
	d := &w.ctx.descs[w.id]
	w.drainOwn(d)
	p := w.st.opt.Workers
	if p == 1 {
		w.setIdle(d)
		return
	}
	fails := 0
	for fails < maxStealAttempts {
		if w.st.aborted() {
			break
		}
		victim := w.pickVictim()
		w.c.StealAttempts++
		ok := false
		if w.locked {
			ok = w.stealLocked(victim, d)
		} else {
			ok = w.stealLockfree(victim, d)
		}
		if ok {
			w.c.StealSuccess++
			fails = 0
			w.drainOwn(d)
		} else {
			fails++
			// Let a potential victim make progress before retrying
			// (only when oversubscribed; no-op on real multicore).
			w.st.maybeYield()
		}
	}
	w.setIdle(d)
}

// yieldEvery is the pop granularity at which an oversubscribed worker
// offers its thread to peers while draining a segment.
const yieldEvery = 16

// stealCheckPeriod is how many pops a lockfree drain batches between
// publications of its shared front index. Publishing every pop put a
// shared store (and its coherence miss for any watching thief) on the
// per-vertex path; deferring it only *understates* the front, which the
// protocol already tolerates — a thief that halves the unpublished
// region either lands on unspent slots (duplicate-free, it pops what
// the victim would have) or on zeroed ones and takes the stale-steal
// exit. The final front is still published before the drain returns.
const stealCheckPeriod = 32

// drainOwn explores the worker's current segment.
//
// Lockfree mode reproduces the paper's protocol exactly: read a slot,
// clear it, publish the advanced front, explore; stop only at a 0 slot
// — never by checking the (possibly thief-modified) rear — so stolen-
// ahead regions produce at most duplicate work and nothing is skipped.
// Locked mode advances the front under the worker's own mutex and does
// check the rear, because locking makes it trustworthy.
func (w *wsWorker) drainOwn(d *segDesc) {
	w.st.beat(w.id)
	popped := 0
	if w.locked {
		// The victim reserves LockBatch vertices per acquisition so the
		// mutex stays off the per-vertex path; thieves steal from the
		// unreserved remainder [f, r).
		batch := int64(w.st.opt.LockBatch)
		for {
			d.mu.Lock()
			w.c.LockAcquisitions++
			if d.f >= d.r {
				d.mu.Unlock()
				return
			}
			take := batch
			if rem := d.r - d.f; take > rem {
				take = rem
			}
			qi, start := d.q, d.f
			d.f += take
			d.mu.Unlock()
			buf := w.st.in[qi].buf
			for j := start; j < start+take; j++ {
				if j+1 < start+take {
					// Warm the next vertex's CSR offsets while this
					// one's adjacency is scanned (locked mode leaves
					// slots intact, so the peek is a plain read).
					w.st.prefetchVertex(buf[j+1] - 1)
				}
				w.process(int(qi), buf[j]-1)
			}
			popped += int(take)
			w.st.beat(w.id)
			if w.st.aborted() {
				return
			}
			if popped >= yieldEvery {
				popped = 0
				w.st.maybeYield()
			}
		}
	}
	qi := atomic.LoadInt64(&d.q)
	buf := w.st.in[qi].buf
	j := atomic.LoadInt64(&d.f)
	// The shared front is published once per stealCheckPeriod pops
	// instead of once per pop (see the constant's comment); published
	// tracks the last value actually stored to d.f.
	published := j
	// A single-worker state has no thief to observe the slot words, so
	// the per-pop load/zero pair can use plain accesses (see
	// state.single); ledger semantics — every popped slot is zeroed —
	// are identical either way. Descriptor publication stays atomic.
	single := w.st.single
	if single && w.st.claim == nil && w.st.parent == nil &&
		w.st.shardEx == nil && w.st.chaos == nil {
		atomic.StoreInt64(&d.f, w.drainOwnLean(d, buf, j))
		return
	}
	for {
		var slot int32
		if single {
			slot = buf[j]
		} else {
			slot = atomic.LoadInt32(&buf[j])
		}
		if slot == emptySlot {
			if j != published {
				w.st.chaosAt(ChaosDrainAdvance, w.id, j)
				atomic.StoreInt64(&d.f, j)
			}
			return
		}
		w.st.chaosAt(ChaosSlotZero, w.id, j)
		if single {
			buf[j] = emptySlot
		} else {
			atomic.StoreInt32(&buf[j], emptySlot)
		}
		j++
		if j-published >= stealCheckPeriod {
			w.st.chaosAt(ChaosDrainAdvance, w.id, j)
			atomic.StoreInt64(&d.f, j)
			published = j
			w.st.beat(w.id)
			if w.st.aborted() {
				// The front was just published, so a cooperative exit
				// here leaves the descriptor accurate; remaining slots
				// stay unconsumed, which only an aborted run permits.
				return
			}
		}
		// Peek the next slot (atomic: a concurrent thief's drain zeroes
		// slots) and warm its vertex's CSR offsets before the current
		// vertex's adjacency scan hides the latency.
		var nxt int32
		if single {
			nxt = buf[j]
		} else {
			nxt = atomic.LoadInt32(&buf[j])
		}
		if nxt != emptySlot {
			w.st.prefetchVertex(nxt - 1)
		}
		w.process(int(qi), slot-1)
		if popped++; popped%yieldEvery == 0 {
			w.st.maybeYield()
		}
	}
}

// drainOwnLean is drainOwn's fused one-worker fast path: the same
// slot-zeroing ledger and front-publication cadence, with the pop →
// adjacency-scan → claim chain inlined into one loop. The general path
// pays a three-deep call (process → scanNeighbors → the kernel) per
// popped vertex, and the kernel's prologue — field hoists, counter
// pointer — is per-call; on short-adjacency graphs (meshes) that
// prologue rivals the scan itself. Here it is hoisted once per drain.
// Long rows still route through scanNeighborsLean for its prefetch
// pipeline, amortizing the call over the row, and scale-free mode's
// hot-vertex deferral keeps its exact routing. Preconditions (checked
// by the caller): single-worker state, no claim/parent arrays,
// unsharded, no chaos hook. Returns the final front, which the caller
// publishes.
func (w *wsWorker) drainOwnLean(d *segDesc, buf []int32, j int64) int64 {
	st := w.st
	epoch, dist := st.epoch, st.dist
	cur, lvl := st.cur, st.level+1
	goff, gedges := st.g.Offsets, st.g.Edges
	threshold := w.threshold
	c := w.c
	out := w.out
	blk := st.blkSize
	published := j
	popped := 0
	for {
		slot := buf[j]
		if slot == emptySlot {
			break
		}
		buf[j] = emptySlot
		j++
		if j-published >= stealCheckPeriod {
			atomic.StoreInt64(&d.f, j)
			published = j
			st.beat(w.id)
			if st.aborted() {
				break
			}
		}
		if nxt := buf[j]; nxt != emptySlot {
			st.prefetchVertex(nxt - 1)
		}
		v := slot - 1
		c.VerticesPopped++
		o0, o1 := goff[v], goff[v+1]
		switch {
		case threshold > 0 && o1-o0 >= threshold:
			w.ctx.hot[w.id] = append(w.ctx.hot[w.id], v)
			c.HotVertices++
		case o1-o0 > 2*prefetchWindow:
			c.EdgesScanned += o1 - o0
			out = st.scanNeighborsLean(w.id, gedges[o0:o1], out)
		default:
			c.EdgesScanned += o1 - o0
			for _, u := range gedges[o0:o1] {
				if epoch[u] != cur {
					dist[u], epoch[u] = lvl, cur
					c.Discovered++
					out = append(out, u+1)
					if len(out) >= blk {
						out = st.flushBlock(w.id, out)
					}
				}
			}
		}
		if popped++; popped%yieldEvery == 0 {
			st.maybeYield()
		}
	}
	w.out = out
	return j
}

// stealLockfree attempts to take the right half of victim's segment
// without locks or atomic RMW (§IV-B2). On success the thief's own
// descriptor points at [mid, r') of the victim's queue.
func (w *wsWorker) stealLockfree(victim int, me *segDesc) bool {
	vd := &w.ctx.descs[victim]
	if atomic.LoadInt32(&vd.idle) == 1 {
		w.c.StealVictimIdle++
		w.st.traceEvent(w.id, EventStealVictimIdle, victim, 0)
		return false
	}
	q := atomic.LoadInt64(&vd.q)
	f := atomic.LoadInt64(&vd.f)
	r := atomic.LoadInt64(&vd.r)
	// Sanity check: the trio may be mutually inconsistent (the victim
	// moved on, or another thief raced us). f' < r' <= Qin[q'].r with
	// valid q' is the paper's validity predicate; rejecting it is what
	// makes the racy reads safe.
	if q < 0 || q >= int64(len(w.st.in)) || r > w.st.in[q].origR {
		w.c.StealInvalid++
		w.st.traceEvent(w.id, EventStealInvalid, victim, 0)
		return false
	}
	if f >= r {
		w.c.StealVictimIdle++
		w.st.traceEvent(w.id, EventStealVictimIdle, victim, 0)
		return false
	}
	if r-f < minStealSize {
		w.c.StealTooSmall++
		w.st.traceEvent(w.id, EventStealTooSmall, victim, r-f)
		return false
	}
	mid := f + (r-f)/2
	w.st.chaosAt(ChaosStealPublish, w.id, mid)
	// Take the right half: shrink the victim, point ourselves at it.
	// These plain stores can race with the victim's own progress or
	// another thief; any resulting overlap is duplicate work only.
	atomic.StoreInt64(&vd.r, mid)
	atomic.StoreInt64(&me.q, q)
	atomic.StoreInt64(&me.f, mid)
	atomic.StoreInt64(&me.r, r)
	if atomic.LoadInt32(&w.st.in[q].buf[mid]) == emptySlot {
		// The victim (or a previous thief) already explored past mid:
		// the segment is stale (valid-looking but spent). Empty our
		// own descriptor before giving up — it currently advertises
		// the spent [mid, r), and leaving it live would let other
		// thieves chain-steal dead work from us.
		atomic.StoreInt64(&me.f, r)
		w.c.StealStale++
		w.st.traceEvent(w.id, EventStealStale, victim, 0)
		return false
	}
	w.st.traceEvent(w.id, EventStealOK, victim, r-mid)
	return true
}

// stealLocked attempts the same half-steal with the victim's mutex,
// using TryLock so the thief's wait time is O(1) (§V).
func (w *wsWorker) stealLocked(victim int, me *segDesc) bool {
	vd := &w.ctx.descs[victim]
	if !vd.mu.TryLock() {
		w.c.LockTryFails++
		w.c.StealVictimLocked++
		w.st.traceEvent(w.id, EventStealVictimLocked, victim, 0)
		return false
	}
	w.c.LockAcquisitions++
	if atomic.LoadInt32(&vd.idle) == 1 || vd.f >= vd.r {
		vd.mu.Unlock()
		w.c.StealVictimIdle++
		w.st.traceEvent(w.id, EventStealVictimIdle, victim, 0)
		return false
	}
	if rem := vd.r - vd.f; rem < minStealSize {
		vd.mu.Unlock()
		w.c.StealTooSmall++
		w.st.traceEvent(w.id, EventStealTooSmall, victim, rem)
		return false
	}
	q, f, r := vd.q, vd.f, vd.r
	mid := f + (r-f)/2
	vd.r = mid
	vd.mu.Unlock()
	me.mu.Lock()
	w.c.LockAcquisitions++
	me.q, me.f, me.r = q, mid, r
	me.mu.Unlock()
	w.st.traceEvent(w.id, EventStealOK, victim, r-mid)
	return true
}

// setIdle publishes that this worker has quit the current phase.
func (w *wsWorker) setIdle(d *segDesc) {
	if w.locked {
		d.mu.Lock()
		atomic.StoreInt32(&d.idle, 1)
		d.mu.Unlock()
		return
	}
	atomic.StoreInt32(&d.idle, 1)
}

// pickVictim chooses a random victim != id, preferring the local
// simulated socket with probability SameSocketBias when Sockets > 1.
func (w *wsWorker) pickVictim() int {
	p := w.st.opt.Workers
	sockets := w.st.opt.Sockets
	if sockets > 1 && w.r.Float64() < w.st.opt.SameSocketBias {
		lo, hi := socketRange(socketOf(w.id, p, sockets), p, sockets)
		if hi-lo > 1 {
			// Uniform over the socket's workers minus self: draw from
			// a range one short and shift draws at or above own id up
			// by one. (Remapping a self-draw to the successor would
			// double-weight the successor as a victim.)
			v := lo + w.r.Intn(hi-lo-1)
			if v >= w.id {
				v++
			}
			w.c.StealSameSocket++
			return v
		}
	}
	v := w.r.Intn(p - 1)
	if v >= w.id {
		v++
	}
	if sockets > 1 {
		if socketOf(v, p, sockets) == socketOf(w.id, p, sockets) {
			w.c.StealSameSocket++
		} else {
			w.c.StealCrossSocket++
		}
	}
	return v
}

// phase2 explores the adjacency lists of the hot vertices deferred in
// phase 1. In the default (paper-preferred) form each hot vertex's
// list is split statically into p chunks and worker i explores chunk i
// of every list — no synchronization needed because chunk boundaries
// are pure functions of (vertex, p). With Phase2Stealing the
// (vertex, chunk) units are dispatched from a shared cursor instead:
// optimistic load/store in lockfree mode (duplicate units are benign),
// mutex in locked mode.
func (w *wsWorker) phase2() {
	p := w.st.opt.Workers
	g := w.st.g
	exploreChunk := func(v int32, chunk int) {
		nb := g.Neighbors(v)
		lo := len(nb) * chunk / p
		hi := len(nb) * (chunk + 1) / p
		w.c.HotChunks++
		w.c.EdgesScanned += int64(hi - lo)
		w.out = w.st.scanNeighbors(w.id, v, nb[lo:hi], w.out)
		w.st.beat(w.id)
	}
	if !w.st.opt.Phase2Stealing {
		for owner := 0; owner < p; owner++ {
			for _, v := range w.ctx.hot[owner] {
				if w.st.aborted() {
					return
				}
				exploreChunk(v, w.id)
				w.st.maybeYield()
			}
		}
		return
	}
	// Dynamic dispatch over the flattened (vertex, chunk) unit space.
	// The flattening buffer is pooled on the worker so repeated levels
	// (and engine runs) reuse its capacity.
	flat := w.flat[:0]
	for owner := 0; owner < p; owner++ {
		flat = append(flat, w.ctx.hot[owner]...)
	}
	w.flat = flat
	totalUnits := int64(len(flat)) * int64(p)
	for {
		if w.st.aborted() {
			return
		}
		var unit int64
		if w.locked {
			w.ctx.phase2Mu.Lock()
			w.c.LockAcquisitions++
			unit = w.ctx.phase2Cursor
			w.ctx.phase2Cursor = unit + 1
			w.ctx.phase2Mu.Unlock()
		} else {
			// Optimistic advance: racing workers may both take the
			// same unit (duplicate exploration) — benign, as ever.
			unit = atomic.LoadInt64(&w.ctx.phase2Cursor)
			w.st.chaosAt(ChaosPhase2Advance, w.id, unit)
			atomic.StoreInt64(&w.ctx.phase2Cursor, unit+1)
		}
		if unit >= totalUnits {
			return
		}
		exploreChunk(flat[unit/int64(p)], int(unit%int64(p)))
		w.st.maybeYield()
	}
}

// barrier is a reusable cyclic barrier used between the scale-free
// phases inside one level. (Level synchronization itself — like the
// cilk sync the paper relies on — is runtime scaffolding, distinct
// from the lock-freedom claim about the load-balancing fast path.)
// A poisoned barrier is permanently open: panic recovery breaks it so
// a dead party can never strand the surviving waiters.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    int
	broken bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until n workers have called it, then releases them all.
// On a poisoned barrier it returns immediately.
func (b *barrier) wait() {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// poison permanently opens the barrier, releasing current waiters and
// letting every future wait pass straight through. Called by the panic
// abort path; the poisoned state is never reset because the engine the
// barrier belongs to is poisoned alongside it.
func (b *barrier) poison() {
	b.mu.Lock()
	if !b.broken {
		b.broken = true
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}
