package core

// Sharded execution: one pooled engine per contiguous vertex shard,
// exchanging cross-shard discoveries through the same optimistic
// one-append-one-tail-store protocol the intra-engine output queues
// use. The design is Buluç & Madduri's 1D owner-compute partitioning
// recast in the paper's optimistic style:
//
//   - Each shard runs the full per-level machinery of its bound family
//     (centralized / decentralized / work-stealing / edge-partitioned)
//     over its own frontier. By construction a shard's input queues
//     only ever hold vertices it owns: the source is seeded on its
//     owner, local discoveries keep owned targets, and remote targets
//     are forwarded instead of enqueued.
//   - When a worker's edge scan reaches a vertex another shard owns it
//     appends the (parent, vertex) pair to a private per-destination
//     block; full blocks are published into a single-writer exchange
//     queue with one copy plus one atomic tail store — exactly the
//     batched-publication protocol of flushBlock, so the cross-shard
//     path adds no locks and no atomic read-modify-write either.
//   - Between the explore and advance steps of every global level the
//     destination shards drain their inbound queues in parallel,
//     feeding each pair through the ordinary discover path. A vertex
//     forwarded by two shards, or forwarded and locally discovered in
//     the same level, is deduplicated there by the owner's epoch
//     stamp; the duplicate is benign, the paper's §III argument
//     verbatim.
//
// The per-shard "forwarded" filter reuses the epoch array: stamping a
// remote vertex records "this shard already told the owner" and costs
// no extra memory. The filter is advisory — two workers can race past
// it and forward twice — so epoch[v] == cur on a shard no longer
// implies v was claimed there, only touched. That is why a sharded
// run's result is assembled by mergedFinish from each shard's owned
// range, never by a per-shard finish() scan.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"optibfs/internal/graph"
	"optibfs/internal/rng"
	"optibfs/internal/stats"
)

// exchange is the cross-shard discovery mailbox: one outQueue per
// (source shard, destination shard, worker) triple, flattened. Queue
// row(src, dst)[w] is single-writer — only worker w of shard src
// appends and stores its tail — and single-reader — only worker w of
// shard dst drains it, between the explore and advance barriers — so
// the only synchronization is the atomic tail store of batched
// publication. Entries are (parent, vertex) pairs, two int32 each.
type exchange struct {
	shards int
	p      int
	sg     *graph.ShardedCSR
	q      []outQueue
}

func newExchange(sg *graph.ShardedCSR, p int) *exchange {
	S := sg.NumShards()
	ex := &exchange{shards: S, p: p, sg: sg, q: make([]outQueue, S*S*p)}
	return ex
}

// row returns the p exchange queues from shard src to shard dst,
// indexed by the writing (and draining) worker id.
func (ex *exchange) row(src, dst int) []outQueue {
	base := (src*ex.shards + dst) * ex.p
	return ex.q[base : base+ex.p]
}

// owner returns the shard owning vertex v.
func (ex *exchange) owner(v int32) int { return ex.sg.Owner(v) }

// reset empties every queue for a new run, keeping grown capacities.
func (ex *exchange) reset() {
	for i := range ex.q {
		ex.q[i].buf = ex.q[i].buf[:0]
		atomic.StoreInt64(&ex.q[i].tail, 0)
	}
}

// inboundVolume returns the published entry count awaiting shard dst.
// Called between the explore join and the drain release, so the tails
// are quiescent; the atomic loads are for form.
func (ex *exchange) inboundVolume(dst int) int64 {
	var v int64
	for src := 0; src < ex.shards; src++ {
		if src == dst {
			continue
		}
		row := ex.row(src, dst)
		for i := range row {
			v += atomic.LoadInt64(&row[i].tail)
		}
	}
	return v
}

// discoverRemote forwards edge u->w to w's owning shard. The epoch
// stamp doubles as this shard's "already forwarded" filter: advisory
// only (two workers may race past the check and both forward — a
// benign duplicate the owner's own epoch check absorbs), but it keeps
// a hub vertex from being forwarded once per inbound edge. No dist,
// claim, or parent is written for remote vertices; those stores belong
// to the owner.
func (st *state) discoverRemote(id int, u, w int32) {
	if atomic.LoadUint32(&st.epoch[w]) == st.cur {
		return
	}
	atomic.StoreUint32(&st.epoch[w], st.cur)
	d := st.shardEx.owner(w)
	i := id*st.shardEx.shards + d
	blk := append(st.remoteBlk[i], u, w)
	if len(blk) >= 2*st.blkSize {
		blk = st.flushRemote(id, d, blk)
	}
	st.remoteBlk[i] = blk
}

// flushRemote publishes worker id's private remote block for shard dst
// into the exchange: one append, one atomic tail store — flushBlock's
// protocol on a cross-shard queue. ChaosShardFlush stretches the
// window between the copy and the store, in which the entries exist
// but are invisible to the owner.
func (st *state) flushRemote(id, dst int, blk []int32) []int32 {
	q := &st.shardEx.row(st.shardID, dst)[id]
	q.buf = append(q.buf, blk...)
	c := &st.counters[id]
	c.BlocksFlushed++
	if len(blk) < 2*st.blkSize {
		c.PartialFlushes++
	}
	st.chaosAt(ChaosShardFlush, id, int64(len(q.buf)))
	atomic.StoreInt64(&q.tail, int64(len(q.buf)))
	return blk[:0]
}

// endLevelRemote is the level-barrier flush of the exchange: every
// worker publishes its partial remote blocks before quiescing, so a
// forwarded vertex never waits in a private block past the level it
// was discovered in. Called from workerLevel on every phase; after the
// explore phase the blocks hold the level's residue, after the drain
// phase they are already empty (draining only discovers owned
// vertices, which never re-enter the remote path).
func (st *state) endLevelRemote(id int) {
	S := st.shardEx.shards
	for d := 0; d < S; d++ {
		if d == st.shardID {
			continue
		}
		if blk := st.remoteBlk[id*S+d]; len(blk) > 0 {
			st.remoteBlk[id*S+d] = st.flushRemote(id, d, blk)
		}
	}
}

// drainRemote is one destination worker's half of the exchange: worker
// id of this shard drains the inbound queues written by its namesake
// worker on every other shard, feeding each (parent, vertex) pair
// through the ordinary discover path — the owner's epoch check dedups
// pairs forwarded twice or already discovered locally, and accepted
// vertices take dist level+1 with the draining worker as claimant,
// exactly as if a local worker had discovered them. The queue reset at
// the end is safe: the writers joined the explore barrier before the
// drain phase was released, and they will not write again until the
// next level's explore.
func (st *state) drainRemote(id int) {
	ex := st.shardEx
	out := st.blk[id]
	for src := 0; src < ex.shards; src++ {
		if src == st.shardID {
			continue
		}
		q := &ex.row(src, st.shardID)[id]
		n := atomic.LoadInt64(&q.tail)
		if n == 0 {
			continue
		}
		buf := q.buf[:n]
		for i := int64(0); i+1 < n; i += 2 {
			out = st.discover(id, buf[i], buf[i+1], out)
		}
		st.beat(id)
		q.buf = q.buf[:0]
		atomic.StoreInt64(&q.tail, 0)
	}
	st.blk[id] = st.endLevelOut(id, out)
}

// shardPool owns one long-lived goroutine per worker of one shard —
// runPool's gate protocol reduced to single phases: the driver installs
// a phase function and passes the gate to release the workers, the
// workers run it under workerLevel's recovery barrier, and a second
// gate pass hands the state back. One search is many gate round-trips
// (explore and drain per level) instead of runPool's one, because the
// level transition is global — the ShardedEngine must see every shard
// quiesce before draining the exchange and advancing.
type shardPool struct {
	st    *state
	phase func(id int)
	gate  *barrier // p workers + the driver
	stop  bool
}

func newShardPool(st *state) *shardPool {
	sp := &shardPool{st: st, gate: newBarrier(st.opt.Workers + 1)}
	for id := 0; id < st.opt.Workers; id++ {
		go sp.worker(id)
	}
	return sp
}

func (sp *shardPool) worker(id int) {
	for {
		sp.gate.wait() // park until a phase arrives (or close)
		if sp.stop {
			return
		}
		sp.st.workerLevel(id, sp.phase)
		sp.gate.wait() // hand the state back to the driver
	}
}

// release starts one phase on all workers; the phase write is ordered
// by the gate barrier's lock, so a plain field suffices.
func (sp *shardPool) release(phase func(id int)) {
	sp.phase = phase
	sp.gate.wait()
}

// join blocks until the released phase has quiesced.
func (sp *shardPool) join() { sp.gate.wait() }

func (sp *shardPool) close() {
	sp.stop = true
	sp.gate.wait()
}

// shardEngine is one shard's execution slice: pooled state bound to
// the family's machinery, plus (with PersistentWorkers) a shardPool.
// drainFn caches the bound drainRemote method value so releasing the
// drain phase allocates nothing.
type shardEngine struct {
	st      *state
	b       binding
	pool    *shardPool
	drainFn func(id int)
	wg      sync.WaitGroup
}

// start releases one phase on the shard's workers; every start must be
// matched by a wait before the next start on the same shard.
func (se *shardEngine) start(phase func(id int)) {
	if se.pool != nil {
		se.pool.release(phase)
		return
	}
	p := se.st.opt.Workers
	se.wg.Add(p)
	for id := 0; id < p; id++ {
		go func(id int) {
			defer se.wg.Done()
			se.st.workerLevel(id, phase)
		}(id)
	}
}

// wait joins the phase released by the last start.
func (se *shardEngine) wait() {
	if se.pool != nil {
		se.pool.join()
		return
	}
	se.wg.Wait()
}

// shardSeed derives shard s's RNG seed. Shard 0 keeps the caller's
// seed unchanged so a 1-shard ShardedEngine draws exactly the same
// random choices as a plain Engine with the same options.
func shardSeed(seed uint64, s int) uint64 {
	if s == 0 {
		return seed
	}
	return seed ^ rng.Mix64(0x5ead0000+uint64(s))
}

// ShardedEngine runs one parallel BFS variant over a partitioned graph:
// one pooled per-shard engine per contiguous vertex range, cross-shard
// discoveries exchanged through optimistic single-writer queues at the
// level barriers (see the package comment at the top of this file).
// Sharing contract, result aliasing, poisoning, and reuse semantics
// match Engine: single caller, Result valid until the next run, a
// worker panic poisons the whole engine, stalls and cancellations
// leave it reusable. Reorder, TraceCapacity, and LevelTimeline are not
// supported in sharded mode — the first is rejected, the others are
// stripped.
type ShardedEngine struct {
	sg       *graph.ShardedCSR
	algo     Algorithm
	opt      Options
	ex       *exchange // nil when 1 shard: the hot paths match Engine's
	shards   []*shardEngine
	closed   bool
	poisoned bool

	levelA  int32  // atomic; global level mirror for the watchdog
	running []bool // per-shard released-phase flags, pooled

	// Goal-directed termination. The goal lives at the engine level
	// only — each shard's own state gets a zero goal — because a shard's
	// epoch stamp on a vertex it does not own means "forwarded", not
	// "settled"; goalDone consults the target's *owner* shard, the one
	// place its stamp is authoritative. goalTarget/goalDepth are the
	// current run's decoded goal, base{Target,Depth} the construction-
	// time goal RunGoal restores.
	goalTarget int32
	goalDepth  int32
	baseTarget int32
	baseDepth  int32
	truncated  bool

	// hy is the engine half of direction optimization (hybrid.go); nil
	// unless Options.Hybrid. The per-shard halves live on each shard
	// state's hybridState, with curBits aliased to hy's global bitmap.
	hy *shardedHybrid

	// Pooled merged-result storage (mergedFinish).
	dist       []int32
	parent     []int32
	levelSizes []int64
	perWorker  []stats.PaddedCounters
	res        Result
}

// NewShardedEngine builds a sharded engine for algo over the
// partition. algo must be a parallel variant (the serial baseline is
// one queue on one goroutine by definition; NewBackend routes Serial
// to a plain Engine) and opt.Reorder must be off — relabeling would
// scramble the contiguous ownership ranges the exchange routes by.
func NewShardedEngine(sg *graph.ShardedCSR, algo Algorithm, opt Options) (*ShardedEngine, error) {
	if sg == nil || sg.Full == nil {
		return nil, fmt.Errorf("core: nil sharded graph")
	}
	if algo == Serial {
		return nil, fmt.Errorf("core: sharded execution requires a parallel variant, not %s", Serial)
	}
	if opt.Reorder != ReorderNone {
		return nil, fmt.Errorf("core: sharded execution does not support Reorder=%q", opt.Reorder)
	}
	opt = opt.withDefaults()
	if err := validGoal(opt.goal(), sg.Full.NumVertices()); err != nil {
		return nil, err
	}
	// Per-worker traces and the level timeline describe one state's
	// run; neither composes across shards. Strip rather than reject so
	// option sets tuned for Engine sweeps work unchanged.
	opt.TraceCapacity = 0
	opt.LevelTimeline = false
	if algo == BFSCL {
		// BFS_CL is BFS_DL with a single pool (paper §IV-A3), resolved
		// here exactly as NewEngine resolves it.
		opt.Pools = 1
	}
	bf, err := bindingFor(algo)
	if err != nil {
		return nil, err
	}
	S := sg.NumShards()
	e := &ShardedEngine{
		sg:      sg,
		algo:    algo,
		opt:     opt,
		shards:  make([]*shardEngine, S),
		running: make([]bool, S),
	}
	e.setGoal(opt.Target, opt.MaxDepth)
	e.baseTarget, e.baseDepth = e.goalTarget, e.goalDepth
	if S > 1 {
		e.ex = newExchange(sg, opt.Workers)
	}
	if opt.Hybrid {
		e.hy = &shardedHybrid{
			curBits: make([]uint64, (int(sg.Full.NumVertices())+63)/64),
			alpha:   opt.Alpha,
			beta:    opt.Beta,
		}
	}
	for s := 0; s < S; s++ {
		sOpt := opt
		sOpt.Seed = shardSeed(opt.Seed, s)
		// The goal is evaluated at the engine's global barrier (see the
		// field comment); a shard observing the target's stamp locally
		// could terminate on a merely-forwarded vertex.
		sOpt.Target, sOpt.MaxDepth = 0, 0
		st := allocState(sg.Full, sOpt)
		st.algo = algo
		if e.ex != nil {
			st.shardEx = e.ex
			st.single = false
			st.shardID = s
			st.shardLo, st.shardHi = sg.Range(s)
			st.chaosBase = s * opt.Workers
			st.remoteBlk = make([][]int32, opt.Workers*S)
			for i := range st.remoteBlk {
				st.remoteBlk[i] = make([]int32, 0, 2*st.blkSize)
			}
		}
		se := &shardEngine{st: st}
		se.b = bf(st)
		if e.hy != nil {
			// Rebind the shard's hybrid state to the global frontier
			// bitmap and its owned vertex range (allocState partitioned
			// [0, n) not knowing about shards); the shard reads every
			// shard's frontier through the shared curBits but scans and
			// discovers only owned vertices. sg.Range is used directly —
			// shardLo/shardHi stay unset when S == 1 (ex == nil).
			lo, hi := sg.Range(s)
			st.hy.curBits = e.hy.curBits
			st.hy.lo, st.hy.hi = hybridRanges(lo, hi, opt.Workers)
			se.b = wrapHybrid(st, se.b)
		}
		se.drainFn = st.drainRemote
		if opt.PersistentWorkers {
			se.pool = newShardPool(st)
		}
		e.shards[s] = se
	}
	n := sg.Full.NumVertices()
	e.dist = make([]int32, n)
	for i := range e.dist {
		e.dist[i] = graph.Unreached
	}
	if opt.TrackParents {
		e.parent = make([]int32, n)
		for i := range e.parent {
			e.parent[i] = -1
		}
	}
	e.perWorker = make([]stats.PaddedCounters, S*opt.Workers)
	return e, nil
}

// Run executes one search from src, reusing the engine's pooled state.
// The returned Result is valid only until the engine's next run.
func (e *ShardedEngine) Run(src int32) (*Result, error) {
	return e.RunContext(context.Background(), src)
}

// RunContext is Run with cancellation, under Engine.RunContext's exact
// contract: level-boundary cancellation latency (mid-level with a
// watchdog armed), partial Results alongside abort errors, ErrPoisoned
// after a worker panic.
func (e *ShardedEngine) RunContext(ctx context.Context, src int32) (*Result, error) {
	if e.closed {
		return nil, fmt.Errorf("core: engine is closed")
	}
	if e.poisoned {
		return nil, ErrPoisoned
	}
	n := e.sg.Full.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", src, n)
	}
	e.truncated = false
	for _, se := range e.shards {
		se.st.opt.ctx = ctx
		se.st.beginRunCommon()
	}
	e.shards[e.sg.Owner(src)].st.seedSource(src)
	if e.hy != nil {
		e.hy.bottomUp = false
		e.hy.prevNf = 1
		e.hy.unexplored = e.sg.Full.NumEdges() - e.sg.Full.OutDegree(src)
	}
	if e.ex != nil {
		e.ex.reset()
	}
	atomic.StoreInt32(&e.levelA, 0)
	stopWatch := e.startWatchdog(ctx)
	e.runLoop()
	if stopWatch != nil {
		stopWatch()
	}
	res := e.mergedFinish()
	if err := e.abortError(); err != nil {
		return res, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return res, cerr
	}
	return res, nil
}

// runLoop drives the global level-synchronous loop. Each level is an
// explore phase (every shard with a non-empty frontier runs its
// family's perLevel over its own queues, concurrently across shards),
// a drain phase (every shard with inbound exchange entries feeds them
// through discover), and a per-shard advance (audit, level bump,
// frontier swap). An abort observed after the explore join skips the
// drain — its invariants assume a completed explore — and the audit,
// which legitimately sees unconsumed state then.
func (e *ShardedEngine) runLoop() {
	for {
		if e.volume() == 0 || e.canceled() || e.anyAborted() || e.goalDone() {
			return
		}
		bu := e.hy != nil && e.hy.bottomUp
		for s, se := range e.shards {
			// A bottom-up level releases every shard regardless of its
			// owned frontier: a shard with no frontier vertices still
			// has unvisited vertices whose in-neighbors may sit in other
			// shards' portions of the global bitmap.
			if se.st.volume() > 0 || bu {
				if se.b.setup != nil {
					se.b.setup()
				}
				se.start(se.b.perLevel)
				e.running[s] = true
			}
		}
		e.joinRunning()
		if e.ex != nil && !e.anyAborted() {
			for s, se := range e.shards {
				if e.ex.inboundVolume(s) > 0 {
					se.start(se.drainFn)
					e.running[s] = true
				}
			}
			e.joinRunning()
		}
		aborted := e.anyAborted()
		for _, se := range e.shards {
			st := se.st
			if !aborted {
				st.auditLevel()
			}
			st.recordLevel()
			st.level++
			atomic.StoreInt32(&st.levelA, st.level)
			st.swap()
		}
		atomic.StoreInt32(&e.levelA, e.shards[0].st.level)
		e.hybridAdvance()
	}
}

// setGoal decodes a goal into the engine's current-run fields, exactly
// as state.setGoal does for an unsharded state.
func (e *ShardedEngine) setGoal(target, depth int32) {
	e.goalTarget = target - 1
	if depth < 0 {
		depth = 0
	}
	e.goalDepth = depth
}

// goalDone is the sharded barrier-time termination predicate: the
// shards have all joined the level barrier (runLoop's loop top), so
// this is the run's single-threaded point and the target's stamp is
// read on its owner shard — the one shard whose epoch entry means
// "settled" rather than "forwarded" — with a plain load. The shards
// effectively vote through their quiescence at the barrier; the driver
// casts the verdict.
func (e *ShardedEngine) goalDone() bool {
	if e.goalDepth > 0 && e.shards[0].st.level >= e.goalDepth {
		e.truncated = true
		return true
	}
	if t := e.goalTarget; t >= 0 {
		st := e.shards[e.sg.Owner(t)].st
		if st.epoch[t] == st.cur {
			e.truncated = true
			return true
		}
	}
	return false
}

// RunGoal is RunContext with a per-run termination goal, under
// Engine.RunGoal's exact contract: the override lasts one run and the
// construction-time goal is restored afterward.
func (e *ShardedEngine) RunGoal(ctx context.Context, src int32, goal Goal) (*Result, error) {
	if e.closed {
		return nil, fmt.Errorf("core: engine is closed")
	}
	if err := validGoal(goal, e.sg.Full.NumVertices()); err != nil {
		return nil, err
	}
	e.setGoal(goal.Target, goal.MaxDepth)
	defer func() {
		e.goalTarget, e.goalDepth = e.baseTarget, e.baseDepth
	}()
	return e.RunContext(ctx, src)
}

// joinRunning waits for every released phase and clears the flags.
func (e *ShardedEngine) joinRunning() {
	for s, se := range e.shards {
		if e.running[s] {
			se.wait()
			e.running[s] = false
		}
	}
}

// volume sums the input-queue entries across all shards.
func (e *ShardedEngine) volume() int64 {
	var v int64
	for _, se := range e.shards {
		v += se.st.volume()
	}
	return v
}

// canceled reports whether the run's context has fired.
func (e *ShardedEngine) canceled() bool { return e.shards[0].st.canceled() }

// anyAborted reports whether any shard's run has been aborted.
func (e *ShardedEngine) anyAborted() bool {
	for _, se := range e.shards {
		if se.st.aborted() {
			return true
		}
	}
	return false
}

// abortAll publishes an abort on every shard (first reason wins within
// each; a shard that already aborted for its own cause keeps it).
func (e *ShardedEngine) abortAll(reason int32, stall *StallError) {
	for _, se := range e.shards {
		se.st.abortRun(reason, stall)
	}
}

// beatSum samples total dispatch progress across all shards.
func (e *ShardedEngine) beatSum() int64 {
	var n int64
	for _, se := range e.shards {
		n += se.st.beatSum()
	}
	return n
}

// abortError maps the shards' abort states to the run's error: a
// worker panic (which poisons the whole engine — the shard's abandoned
// pooled state and the exchange queues it fed cannot be trusted) wins
// over a stall; cancellation returns nil here and RunContext reports
// ctx.Err() itself, as in Engine.
func (e *ShardedEngine) abortError() error {
	var stall error
	var panicked error
	for _, se := range e.shards {
		if se.st.abortPoisons() {
			e.poisoned = true
		}
		switch err := se.st.abortError().(type) {
		case *WorkerPanicError:
			if panicked == nil {
				panicked = err
			}
		case *StallError:
			if stall == nil {
				stall = err
			}
		}
	}
	if panicked != nil {
		return panicked
	}
	if stall != nil {
		return stall
	}
	return nil
}

// startWatchdog launches the engine-level stall monitor when
// Options.StallTimeout is set — one goroutine watching the summed
// heartbeats of all shards, because a global level barrier couples the
// shards: one wedged shard starves every other, so per-shard watchdogs
// would fire S spurious aborts where one global verdict is wanted.
func (e *ShardedEngine) startWatchdog(ctx context.Context) func() {
	if e.opt.StallTimeout <= 0 {
		return nil
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go e.watch(ctx, stop, done)
	return func() {
		close(stop)
		<-done
	}
}

// watch mirrors state.watch over the merged heartbeat sum, aborting
// every shard on a stall or mid-level cancellation.
func (e *ShardedEngine) watch(ctx context.Context, stop, done chan struct{}) {
	defer close(done)
	window := e.opt.StallTimeout
	tick := window / 8
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	last := e.beatSum()
	lastChange := time.Now()
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	for {
		select {
		case <-stop:
			return
		case <-ctxDone:
			e.abortAll(abortCancel, nil)
			ctxDone = nil
		case <-ticker.C:
			if e.anyAborted() {
				continue
			}
			cur := e.beatSum()
			if cur != last {
				last = cur
				lastChange = time.Now()
				continue
			}
			if time.Since(lastChange) < window {
				continue
			}
			e.abortAll(abortStall, &StallError{
				Algo:     e.algo,
				Level:    atomic.LoadInt32(&e.levelA),
				Window:   window,
				Progress: cur,
			})
		}
	}
}

// mergedFinish assembles the run's Result from the shards' owned
// ranges — per-shard finish() would misread the epoch array, whose
// stamps also mark forwarded (not claimed) remote vertices. One O(n)
// pass copies each owner's dist/parent entries into the engine's
// pooled merged arrays, normalizing untouched vertices, while the
// level histogram and reach statistics accumulate exactly as in
// finish(). The Result aliases pooled engine state, valid until the
// next run.
func (e *ShardedEngine) mergedFinish() *Result {
	p := e.opt.Workers
	for s, se := range e.shards {
		copy(e.perWorker[s*p:(s+1)*p], se.st.counters)
	}
	total := stats.Sum(e.perWorker)
	levels := e.shards[0].st.level
	if cap(e.levelSizes) < int(levels) {
		e.levelSizes = make([]int64, levels)
	} else {
		e.levelSizes = e.levelSizes[:levels]
		for i := range e.levelSizes {
			e.levelSizes[i] = 0
		}
	}
	res := &e.res
	*res = Result{
		Dist:       e.dist,
		Parent:     e.parent,
		Levels:     levels,
		Truncated:  e.truncated,
		Workers:    len(e.shards) * p,
		Counters:   total,
		PerWorker:  e.perWorker,
		Pops:       total.VerticesPopped,
		LevelSizes: e.levelSizes,
	}
	g := e.sg.Full
	for s, se := range e.shards {
		st := se.st
		lo, hi := e.sg.Range(s)
		cur := st.cur
		for v := lo; v < hi; v++ {
			if st.epoch[v] != cur {
				e.dist[v] = graph.Unreached
				if e.parent != nil {
					e.parent[v] = -1
				}
				continue
			}
			e.dist[v] = st.dist[v]
			if e.parent != nil {
				e.parent[v] = st.parent[v]
			}
			res.Reached++
			res.EdgesTraversed += g.OutDegree(v)
			if d := st.dist[v]; int(d) < len(res.LevelSizes) {
				res.LevelSizes[d]++
			}
		}
	}
	return res
}

// Reseed restarts every shard's RNG streams as if the engine had been
// built with Options.Seed = seed, preserving the per-shard derivation.
func (e *ShardedEngine) Reseed(seed uint64) {
	e.opt.Seed = seed
	for s, se := range e.shards {
		ss := shardSeed(seed, s)
		se.st.opt.Seed = ss
		for i, r := range se.b.rngs {
			r.Seed(ss ^ rng.Mix64(uint64(i)+se.b.rngSalt))
		}
	}
}

// SetChaos installs (or removes) a chaos hook on every shard between
// runs. Worker ids reported to the hook are offset by shard (shard s
// worker w reports as s*Workers+w), so one injector covers the fleet.
func (e *ShardedEngine) SetChaos(h ChaosHook) {
	e.opt.Chaos = h
	for _, se := range e.shards {
		st := se.st
		st.opt.Chaos = h
		st.chaos = h
		if a, ok := h.(ChaosLevelAuditor); ok {
			st.levelAudit = a
		} else {
			st.levelAudit = nil
		}
		if a, ok := h.(ChaosFlushAuditor); ok {
			st.flushAudit = a
		} else {
			st.flushAudit = nil
		}
	}
}

// Algorithm returns the variant every shard runs.
func (e *ShardedEngine) Algorithm() Algorithm { return e.algo }

// Graph returns the full (unpartitioned) graph.
func (e *ShardedEngine) Graph() *graph.CSR { return e.sg.Full }

// Sharded returns the partition the engine runs over.
func (e *ShardedEngine) Sharded() *graph.ShardedCSR { return e.sg }

// Options returns the engine's resolved options (defaults applied,
// sharded-mode strips included).
func (e *ShardedEngine) Options() Options { return e.opt }

// Close releases every shard's worker pool; further runs fail. Close
// is idempotent.
func (e *ShardedEngine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, se := range e.shards {
		if se.pool != nil {
			se.pool.close()
		}
	}
}

// Backend is the run interface common to Engine and ShardedEngine: the
// serving layer, the harness, and the soak driver program against it
// so a shard count is just another option. Both implementations share
// the contract documented on Engine — single caller, pooled Results
// valid until the next run, ErrPoisoned after a worker panic.
type Backend interface {
	// Run executes one search from src.
	Run(src int32) (*Result, error)
	// RunContext is Run with cancellation.
	RunContext(ctx context.Context, src int32) (*Result, error)
	// RunGoal is RunContext with a per-run termination goal (early
	// s-t termination and/or a depth bound); the zero Goal is exactly
	// RunContext. The override lasts one run.
	RunGoal(ctx context.Context, src int32, goal Goal) (*Result, error)
	// Reseed restarts the RNG streams from seed.
	Reseed(seed uint64)
	// SetChaos swaps the chaos hook between runs.
	SetChaos(h ChaosHook)
	// Algorithm returns the bound variant.
	Algorithm() Algorithm
	// Graph returns the full graph the backend answers queries about.
	Graph() *graph.CSR
	// Options returns the resolved options.
	Options() Options
	// Close releases the backend's resources.
	Close()
}

var (
	_ Backend = (*Engine)(nil)
	_ Backend = (*ShardedEngine)(nil)
)

// NewBackend builds the engine Options.Shards asks for: a plain Engine
// for one shard or the serial baseline (which is one queue on one
// goroutine by definition, so a sweep that sets Shards alongside
// Serial still works), a ShardedEngine otherwise. Shard counts beyond
// the vertex count are clamped so small test graphs compose with fixed
// sweep dimensions.
func NewBackend(g *graph.CSR, algo Algorithm, opt Options) (Backend, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = 1
	}
	if n := g.NumVertices(); n > 0 && int64(shards) > int64(n) {
		shards = int(n)
	}
	if shards == 1 || algo == Serial {
		return NewEngine(g, algo, opt)
	}
	sg, err := graph.Partition(g, shards)
	if err != nil {
		return nil, fmt.Errorf("core: partition: %w", err)
	}
	return NewShardedEngine(sg, algo, opt)
}
