package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

// checkHybridRun verifies a hybrid Result against the serial oracle and
// the accounting invariants that survive direction optimization:
// bottom-up levels settle vertices without queue pops, so the classic
// Pops >= Reached cover and non-negative Duplicates() no longer hold
// structurally, but distances, structure, reach, and the per-direction
// level split must be exact.
func checkHybridRun(t *testing.T, g *graph.CSR, src int32, res *Result) {
	t.Helper()
	want := graph.ReferenceBFS(g, src)
	if err := graph.EqualDistances(res.Dist, want); err != nil {
		t.Fatalf("wrong distances: %v", err)
	}
	if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
		t.Fatalf("structural validation: %v", err)
	}
	if res.Parent != nil {
		if err := graph.ValidateParents(g, src, res.Dist, res.Parent); err != nil {
			t.Fatalf("parent validation: %v", err)
		}
	}
	if res.Levels != graph.Eccentricity(want)+1 {
		t.Fatalf("Levels=%d, want %d", res.Levels, graph.Eccentricity(want)+1)
	}
	wantReached, wantEdges := graph.ReachedCount(g, want)
	if res.Reached != wantReached || res.EdgesTraversed != wantEdges {
		t.Fatalf("reached=%d edges=%d, want %d/%d", res.Reached, res.EdgesTraversed, wantReached, wantEdges)
	}
	var sizes int64
	for _, s := range res.LevelSizes {
		sizes += s
	}
	if sizes != res.Reached {
		t.Fatalf("level sizes sum %d != reached %d", sizes, res.Reached)
	}
	if got := res.Counters.TopDownLevels + res.Counters.BottomUpLevels; got != int64(res.Levels) {
		t.Fatalf("TopDownLevels+BottomUpLevels = %d, want Levels = %d", got, res.Levels)
	}
	if res.Counters.BottomUpLevels == 0 && res.Duplicates() < 0 {
		t.Fatalf("negative duplicates (%d) in an all-top-down run", res.Duplicates())
	}
}

func TestHybridMatchesOracleEverywhere(t *testing.T) {
	graphs := testGraphs(t)
	for _, algo := range parallelAlgos {
		for _, persistent := range []bool{false, true} {
			algo, persistent := algo, persistent
			t.Run(fmt.Sprintf("%s/persistent=%v", algo, persistent), func(t *testing.T) {
				t.Parallel()
				for name, g := range graphs {
					e, err := NewEngine(g, algo, Options{
						Workers: 4, Seed: 7, Hybrid: true,
						TrackParents: true, PersistentWorkers: persistent,
					})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					for run := 0; run < 3; run++ {
						res, err := e.Run(0)
						if err != nil {
							e.Close()
							t.Fatalf("%s run %d: %v", name, run, err)
						}
						func() {
							defer func() {
								if t.Failed() {
									t.Logf("graph %s run %d", name, run)
								}
							}()
							checkHybridRun(t, g, 0, res)
						}()
					}
					e.Close()
				}
			})
		}
	}
}

// TestHybridActuallySwitches pins that the heuristics really take the
// bottom-up path on the frontier shapes they exist for — otherwise the
// oracle tests would vacuously pass on an all-top-down engine.
func TestHybridActuallySwitches(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    func() (*graph.CSR, error)
	}{
		{"complete", func() (*graph.CSR, error) { return gen.Complete(40) }},
		{"rmat", func() (*graph.CSR, error) { return gen.Graph500RMAT(2048, 16384, 42, gen.Options{}) }},
	} {
		g, err := tc.g()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, 0, BFSWSL, Options{Workers: 4, Hybrid: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters.BottomUpLevels == 0 {
			t.Fatalf("%s: hybrid run never went bottom-up (levels=%d td=%d)",
				tc.name, res.Levels, res.Counters.TopDownLevels)
		}
	}
}

// TestHybridParentClaimFilter runs the §IV-D claim filter through both
// representation conversions: vertices discovered bottom-up re-enter
// the queues via the compaction scatter, which must record the claim
// the pop-side filter checks.
func TestHybridParentClaimFilter(t *testing.T) {
	for name, g := range testGraphs(t) {
		res, err := Run(g, 0, BFSWL, Options{
			Workers: 4, Hybrid: true, ParentClaim: true, TrackParents: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkHybridRun(t, g, 0, res)
	}
}

// flipController forces a direction change at every level boundary
// whose (seeded, deterministic) coin lands heads, regardless of what
// the heuristics chose — driving the representation conversions
// through hostile boundaries (tiny frontiers, mid-growth switches,
// empty final frontiers).
type flipController struct {
	state uint64
	flips int64
}

func (f *flipController) At(point ChaosPoint, worker int, value int64) {}

func (f *flipController) DirectionChoice(level int32, bottomUp bool) bool {
	// SplitMix64 step; deterministic across runs for a given seed.
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z&1 == 0 {
		atomic.AddInt64(&f.flips, 1)
		return !bottomUp
	}
	return bottomUp
}

func TestHybridForcedDirectionFlips(t *testing.T) {
	graphs := testGraphs(t)
	for _, algo := range []Algorithm{BFSWL, BFSWSL, BFSEL} {
		for name, g := range graphs {
			ctl := &flipController{state: 0xf11b}
			e, err := NewEngine(g, algo, Options{
				Workers: 4, Seed: 3, Hybrid: true, TrackParents: true,
				PersistentWorkers: true, Chaos: ctl,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, name, err)
			}
			for run := 0; run < 3; run++ {
				res, err := e.Run(0)
				if err != nil {
					e.Close()
					t.Fatalf("%s/%s run %d: %v", algo, name, run, err)
				}
				func() {
					defer func() {
						if t.Failed() {
							t.Logf("algo %s graph %s run %d", algo, name, run)
						}
					}()
					checkHybridRun(t, g, 0, res)
				}()
			}
			e.Close()
			if ctl.flips == 0 {
				t.Fatalf("%s/%s: controller never flipped a decision", algo, name)
			}
		}
	}
}

func TestHybridSharded(t *testing.T) {
	graphs := testGraphs(t)
	for _, shards := range shardCounts {
		for _, algo := range []Algorithm{BFSWL, BFSWSL} {
			shards, algo := shards, algo
			t.Run(fmt.Sprintf("%s/s%d", algo, shards), func(t *testing.T) {
				t.Parallel()
				for name, g := range graphs {
					e := newShardedForTest(t, g, shards, algo, Options{
						Workers: 4, Seed: 11, Hybrid: true, TrackParents: true,
						PersistentWorkers: true,
					})
					for run := 0; run < 3; run++ {
						res, err := e.Run(0)
						if err != nil {
							e.Close()
							t.Fatalf("%s run %d: %v", name, run, err)
						}
						func() {
							defer func() {
								if t.Failed() {
									t.Logf("graph %s shards %d run %d", name, shards, run)
								}
							}()
							checkHybridRun(t, g, 0, res)
						}()
					}
					e.Close()
				}
			})
		}
	}
}

// TestHybridShardedForcedFlips drives the sharded conversions (global
// bitmap merge, per-shard compaction) through forced switches.
func TestHybridShardedForcedFlips(t *testing.T) {
	graphs := testGraphs(t)
	for name, g := range graphs {
		ctl := &flipController{state: 0x5a5a}
		e := newShardedForTest(t, g, 4, BFSWSL, Options{
			Workers: 2, Seed: 5, Hybrid: true, TrackParents: true, Chaos: ctl,
		})
		res, err := e.Run(0)
		if err != nil {
			e.Close()
			t.Fatalf("%s: %v", name, err)
		}
		checkHybridRun(t, g, 0, res)
		e.Close()
	}
}

func TestHybridSerialRejected(t *testing.T) {
	g, err := gen.Path(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(g, Serial, Options{Hybrid: true}); err == nil {
		t.Fatal("NewEngine(Serial, Hybrid) succeeded, want error")
	}
	if _, err := Run(g, 0, Serial, Options{Hybrid: true}); err == nil {
		t.Fatal("Run(Serial, Hybrid) succeeded, want error")
	}
}

// TestHybridReorderCompose runs hybrid over both reorder modes: the
// transpose is taken from the relabeled CSR, so distances must still
// come back in original ids.
func TestHybridReorderCompose(t *testing.T) {
	graphs := testGraphs(t)
	for _, mode := range []ReorderMode{ReorderDegree, ReorderBFS} {
		for name, g := range graphs {
			e, err := NewEngine(g, BFSWSL, Options{
				Workers: 4, Hybrid: true, Reorder: mode, TrackParents: true,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", mode, name, err)
			}
			res, err := e.Run(0)
			if err != nil {
				e.Close()
				t.Fatalf("%s/%s: %v", mode, name, err)
			}
			checkHybridRun(t, g, 0, res)
			e.Close()
		}
	}
}

// TestHybridTimelineFrontiers pins that the per-level timeline stays
// truthful through direction switches: each LevelStat's Frontier must
// reflect the level's real frontier size (deduplicated while bottom-up,
// duplicate-bearing queue volume while top-down, as documented).
func TestHybridTimelineFrontiers(t *testing.T) {
	g, err := gen.Graph500RMAT(2048, 16384, 9, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, BFSWSL, Options{Workers: 4, Hybrid: true, LevelTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelStats) != int(res.Levels) {
		t.Fatalf("timeline has %d levels, want %d", len(res.LevelStats), res.Levels)
	}
	var frontierSum int64
	for _, ls := range res.LevelStats {
		frontierSum += ls.Frontier
	}
	// Frontier sums can exceed Reached (top-down queues carry benign
	// duplicates) but can never fall short: every reached vertex was in
	// exactly one level's frontier.
	if frontierSum < res.Reached {
		t.Fatalf("timeline frontier sum %d < reached %d", frontierSum, res.Reached)
	}
}
