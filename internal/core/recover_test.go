package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

// panicOnceHook panics the first worker that passes ChaosStall, once.
type panicOnceHook struct{ fired int32 }

func (h *panicOnceHook) At(point ChaosPoint, worker int, value int64) {
	if point == ChaosStall && atomic.CompareAndSwapInt32(&h.fired, 0, 1) {
		panic("recover test: injected worker panic")
	}
}

// sleepHook sleeps d at every ChaosStall firing by worker 0.
type sleepHook struct{ d time.Duration }

func (h *sleepHook) At(point ChaosPoint, worker int, value int64) {
	if point == ChaosStall && worker == 0 {
		time.Sleep(h.d)
	}
}

// TestWorkerPanicRecovery drives an injected panic through every
// lockfree family, with and without persistent workers: the panic
// must never crash the process, must surface as a typed
// *WorkerPanicError with a partial result, must poison the engine,
// and a fresh engine must then answer exactly.
func TestWorkerPanicRecovery(t *testing.T) {
	g, err := gen.ErdosRenyi(3000, 18000, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, algo := range []Algorithm{BFSCL, BFSDL, BFSWL, BFSWSL, BFSEL} {
		for _, persistent := range []bool{false, true} {
			name := string(algo)
			if persistent {
				name += "/persistent"
			}
			t.Run(name, func(t *testing.T) {
				opt := Options{Workers: 4, PersistentWorkers: persistent, Chaos: &panicOnceHook{}}
				e, err := NewEngine(g, algo, opt)
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				res, err := e.Run(0)
				if err == nil {
					t.Fatal("injected panic surfaced no error")
				}
				var wp *WorkerPanicError
				if !errors.As(err, &wp) {
					t.Fatalf("got %v, want *WorkerPanicError", err)
				}
				if wp.Algo != algo {
					t.Fatalf("panic error names algo %q, want %q", wp.Algo, algo)
				}
				if len(wp.Stack) == 0 {
					t.Fatal("panic error carries no stack")
				}
				if res == nil {
					t.Fatal("poisoned run returned no partial result")
				}
				// The engine is poisoned: later runs fail fast without
				// touching the abandoned state.
				if _, err := e.Run(0); !errors.Is(err, ErrPoisoned) {
					t.Fatalf("second run on poisoned engine: got %v, want ErrPoisoned", err)
				}
				// A fresh engine over the same graph is unaffected.
				e2, err := NewEngine(g, algo, Options{Workers: 4, PersistentWorkers: persistent})
				if err != nil {
					t.Fatal(err)
				}
				defer e2.Close()
				res2, err := e2.Run(0)
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.EqualDistances(res2.Dist, want); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestStallDetection wedges worker 0 far past StallTimeout and
// requires a typed *StallError within the window (with slack), a
// partial result, and — unlike a panic — an engine that stays fully
// reusable once the fault source is removed.
func TestStallDetection(t *testing.T) {
	g, err := gen.ErdosRenyi(3000, 18000, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, algo := range []Algorithm{BFSCL, BFSWSL} {
		t.Run(string(algo), func(t *testing.T) {
			opt := Options{
				Workers:      4,
				StallTimeout: 100 * time.Millisecond,
				Chaos:        &sleepHook{d: 800 * time.Millisecond},
			}
			e, err := NewEngine(g, algo, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			start := time.Now()
			res, err := e.Run(0)
			elapsed := time.Since(start)
			var se *StallError
			if !errors.As(err, &se) {
				t.Fatalf("got %v, want *StallError", err)
			}
			if res == nil {
				t.Fatal("stalled run returned no partial result")
			}
			// Detection must happen within the sleep (the stalled
			// worker wakes at ~800ms; the watchdog window is 100ms).
			if elapsed >= 3*time.Second {
				t.Fatalf("stall detected only after %s", elapsed)
			}
			// A stall abort does not poison: disarm the fault and the
			// same engine must answer exactly.
			e.SetChaos(nil)
			res2, err := e.Run(0)
			if err != nil {
				t.Fatalf("stalled engine not reusable: %v", err)
			}
			if err := graph.EqualDistances(res2.Dist, want); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWatchdogFalsePositive is the regression guard for the watchdog's
// core promise: a run that is slow but making progress (every level
// costs a couple of milliseconds on a deep path, far more levels than
// the watchdog window) must never be killed.
func TestWatchdogFalsePositive(t *testing.T) {
	g, err := gen.Path(300)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	opt := Options{
		Workers:      4,
		StallTimeout: 300 * time.Millisecond,
		// 2ms per level x 300 levels: the whole run takes ~600ms —
		// twice the watchdog window — but no beat gap approaches it.
		Chaos: &sleepHook{d: 2 * time.Millisecond},
	}
	res, err := Run(g, 0, BFSWL, opt)
	if err != nil {
		t.Fatalf("slow-but-progressing run killed: %v", err)
	}
	if err := graph.EqualDistances(res.Dist, want); err != nil {
		t.Fatal(err)
	}
}
