package core

import (
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func TestParentsValidForAllAlgorithms(t *testing.T) {
	g, err := gen.Graph500RMAT(4096, 32768, 9, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	algos := append([]Algorithm{Serial}, parallelAlgos...)
	for _, algo := range algos {
		res, err := Run(g, 0, algo, Options{Workers: 8, Seed: 3, TrackParents: true})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Parent == nil {
			t.Fatalf("%s: TrackParents produced no parent array", algo)
		}
		if err := graph.ValidateParents(g, 0, res.Dist, res.Parent); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestParentsNilByDefault(t *testing.T) {
	g, err := gen.Path(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, BFSWSL, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parent != nil {
		t.Fatal("parents tracked without the option")
	}
}

func TestParentsWithScaleFreeAndClaim(t *testing.T) {
	// All option combinations that touch the discovery path together.
	g, err := gen.ChungLu(4096, 32768, 2.1, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BFSWSL, BFSCL, BFSEL} {
		res, err := Run(g, 0, algo, Options{
			Workers: 8, Seed: 1,
			TrackParents: true, ParentClaim: true, Phase2Stealing: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, 0)); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := graph.ValidateParents(g, 0, res.Dist, res.Parent); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestLevelSizesProfile(t *testing.T) {
	g, err := gen.BinaryTree(31) // levels: 1,2,4,8,16
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range append([]Algorithm{Serial}, parallelAlgos...) {
		res, err := Run(g, 0, algo, Options{Workers: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := []int64{1, 2, 4, 8, 16}
		if len(res.LevelSizes) != len(want) {
			t.Fatalf("%s: LevelSizes %v", algo, res.LevelSizes)
		}
		for d, w := range want {
			if res.LevelSizes[d] != w {
				t.Fatalf("%s: level %d size %d, want %d", algo, d, res.LevelSizes[d], w)
			}
		}
	}
}

func TestLevelSizesSumToReached(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 12000, 2, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, BFSDL, Options{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, s := range res.LevelSizes {
		sum += s
	}
	if sum != res.Reached {
		t.Fatalf("level sizes sum %d != reached %d", sum, res.Reached)
	}
}
