// Package core implements the paper's parallel BFS algorithms:
// level-synchronous breadth-first searches with dynamic load balancing
// over simple array queues, in locked and lockfree (optimistic) forms.
//
// Naming follows the paper's Table II:
//
//	sbfs    serial BFS
//	BFS_C   centralized queue, global lock
//	BFS_CL  centralized queue, lockfree optimistic
//	BFS_DL  decentralized queue pools, lockfree optimistic
//	BFS_W   randomized work stealing, per-thread locks
//	BFS_WL  randomized work stealing, lockfree optimistic
//	BFS_WS  work stealing + scale-free two-phase, locks
//	BFS_WSL work stealing + scale-free two-phase, lockfree
//
// The lockfree variants contain no mutexes and no atomic
// read-modify-write instructions: shared queue indices and queue slots
// are accessed with sync/atomic Load/Store only, which compile to plain
// loads and stores (no bus-locked operations) on mainstream
// architectures, while keeping the deliberate races well-defined under
// the Go memory model. Duplicate exploration caused by stale or
// overlapping segments is benign for BFS (every racing write to dist
// stores the same level value), which is the paper's central
// observation.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// Algorithm selects a BFS variant by its paper acronym.
type Algorithm string

// Algorithms, named per the paper's Table II.
const (
	Serial Algorithm = "sbfs"
	BFSC   Algorithm = "BFS_C"
	BFSCL  Algorithm = "BFS_CL"
	BFSDL  Algorithm = "BFS_DL"
	BFSW   Algorithm = "BFS_W"
	BFSWL  Algorithm = "BFS_WL"
	BFSWS  Algorithm = "BFS_WS"
	BFSWSL Algorithm = "BFS_WSL"
	// BFSEL is the edge-partitioned lockfree variant the paper
	// proposes as future work in §IV-D: dynamic load balancing over
	// evenly divided edges rather than vertices.
	BFSEL Algorithm = "BFS_EL"
)

// Algorithms lists every variant in presentation order.
var Algorithms = []Algorithm{Serial, BFSC, BFSCL, BFSDL, BFSW, BFSWL, BFSWS, BFSWSL, BFSEL}

// Lockfree reports whether the algorithm avoids locks and atomic RMW.
func (a Algorithm) Lockfree() bool {
	switch a {
	case BFSCL, BFSDL, BFSWL, BFSWSL, BFSEL:
		return true
	}
	return false
}

// ReorderMode selects an optional vertex relabeling applied by the
// engine at construction (Options.Reorder). The engine runs on the
// relabeled CSR for memory locality and maps Result.Dist/Parent back
// through the inverse permutation, so callers always see original
// vertex ids — sources, validation, and golden tests are unaffected.
type ReorderMode string

// Reorder modes. The zero value runs on the graph as given.
const (
	// ReorderNone applies no relabeling (the default).
	ReorderNone ReorderMode = ""
	// ReorderDegree packs high-degree vertices first (hub packing:
	// the hottest dist/epoch entries share cache lines). Interacts
	// with BFS_WS/BFS_WSL scale-free dispatch: hot-vertex *detection*
	// is degree-based and therefore invariant under relabeling, but
	// after degree ordering the deferred hubs occupy adjacent ids, so
	// their phase-2 chunk scans walk nearly contiguous CSR regions.
	ReorderDegree ReorderMode = "degree"
	// ReorderBFS renumbers vertices in BFS visitation order from
	// vertex 0, making frontier walks near-sequential memory walks.
	ReorderBFS ReorderMode = "bfs"
)

// Options configures a parallel BFS run. The zero value is usable:
// every field has a documented default applied by withDefaults.
type Options struct {
	// Workers is the number of worker goroutines p. Default: GOMAXPROCS.
	Workers int
	// SegmentSize fixes the centralized-queue dispatch segment length s.
	// 0 selects the paper's adaptive sizing (recomputed per dispatch
	// from the remaining work and worker count).
	SegmentSize int
	// MaxStealFactor is c in the MAX_STEAL = c·p·log2(p) bound on
	// consecutive failed steal attempts (and c·j·log2(j) pool retries
	// for BFS_DL). The paper requires a small constant c > 1;
	// default 2.
	MaxStealFactor int
	// Pools is j, the number of centralized queue pools for BFS_DL,
	// clamped to [1, Workers]. Default 1 (the configuration the paper
	// benchmarked; footnote 6).
	Pools int
	// HighDegreeThreshold routes vertices with out-degree >= threshold
	// to the scale-free second phase in BFS_WS/BFS_WSL. 0 selects
	// max(64, 4·avgDegree).
	HighDegreeThreshold int64
	// Phase2Stealing enables the paper's alternative BFS_WSL phase-2
	// variant in which adjacency chunks of hot vertices are dispatched
	// dynamically rather than split statically (§IV-B3; usually worse).
	Phase2Stealing bool
	// LockBatch is how many vertices a locked work-stealing victim
	// (BFS_W / BFS_WS) reserves from its own segment per lock
	// acquisition. Batching keeps the lock out of the per-vertex path
	// (the paper's locked variants lose to lockfree by percents, not
	// multiples). Default 16; 1 degenerates to per-pop locking.
	LockBatch int
	// PublishBlock is the per-worker discovery-block size b for batched
	// frontier publication: workers accumulate discovered vertices in a
	// private block and publish them to their shared next-level queue
	// with one copy plus one index store per block, instead of one
	// shared store per vertex. 1 degenerates to per-vertex publication
	// (the pre-batching behavior, kept as the ablation baseline);
	// default 128. The level barrier flushes partial blocks, so block
	// residency never delays a vertex past its level.
	PublishBlock int
	// Reorder applies a vertex relabeling at engine construction (see
	// ReorderMode). Results are mapped back to original ids through the
	// inverse permutation. Only the core engines honor it; the
	// Baseline1/Baseline2/DirectionOptimizing comparison runtimes
	// ignore it.
	Reorder ReorderMode
	// ParentClaim enables the §IV-D duplicate-exploration filter:
	// discoverers record a claim for each vertex with an arbitrary
	// concurrent write, and only the claiming queue's copy is explored.
	ParentClaim bool
	// PersistentWorkers reuses one long-lived goroutine per worker
	// across all BFS levels — and, under an Engine, across all runs —
	// synchronizing with a reusable barrier instead of spawning p
	// goroutines per level. This is the Go analogue of the
	// OpenMP-parallel-region vs cilk-spawn comparison the paper raises
	// in §IV-D; it matters for high-diameter graphs where per-level
	// spawn overhead accumulates, and it is what lets a warm
	// Engine.Run reach zero allocations (goroutine spawns heap-allocate
	// their closures).
	PersistentWorkers bool
	// TraceCapacity, when positive, records up to this many dispatch
	// events (fetches, steal attempts with outcomes) per worker into
	// Result.Events for offline analysis. 0 disables tracing. Events
	// past the capacity are dropped and counted in Result.EventsDropped.
	TraceCapacity int
	// LevelTimeline records one LevelStat per BFS level into
	// Result.LevelStats: frontier size, per-level work and steal
	// deltas, and wall time, captured at the level barriers where the
	// happens-before edge already exists. Costs one counter sweep and
	// one clock read per level (never per vertex or edge); the
	// timeline storage is pooled, so warm engine runs stay
	// allocation-free. Ignored by the serial engine.
	LevelTimeline bool
	// TrackParents records a BFS parent for every reached vertex using
	// the arbitrary-concurrent-write discipline the paper cites from
	// Blelloch & Maggs (§IV-D): racing discoverers may each store their
	// own id, any one survives, and every survivor is a valid parent
	// because all racing writers are at the same level. Needed for
	// Graph500-style parent validation and path reconstruction.
	TrackParents bool
	// Seed drives victim and pool selection. Runs with the same seed
	// make the same random choices (thread interleaving still varies).
	Seed uint64
	// Sockets simulates a NUMA topology by partitioning workers into
	// socket groups; victim/pool selection prefers the local group with
	// probability SameSocketBias. Default 1 (no NUMA policy).
	Sockets int
	// SameSocketBias is the probability of restricting a steal attempt
	// to the local socket group when Sockets > 1. An explicit 0
	// disables the local preference entirely; negative values select
	// the default 0.9; values above 1 are clamped to 1.
	SameSocketBias float64
	// Shards partitions the graph into this many contiguous
	// degree-balanced vertex shards, each explored by its own pooled
	// engine of Workers workers, with remote discoveries exchanged
	// through per-(shard,worker) queues at the level barriers (see
	// ShardedEngine). Honored by NewBackend and the one-shot
	// Run/RunContext; NewEngine ignores it (that constructor is the
	// single-engine path by contract — use NewBackend to route). 0 or
	// 1 (the default) run the single-engine path, and the serial
	// baseline always ignores it (one CSR, one goroutine, by
	// definition).
	Shards int
	// Hybrid enables in-core direction-optimizing traversal (Beamer,
	// Asanović & Patterson): at every level barrier the driver decides,
	// from the exact frontier counters it just committed, whether the
	// next level runs top-down through the family's queue machinery or
	// bottom-up over the cached transpose. Bottom-up levels keep the
	// frontier as a dense uint64 bitmap (plain stores — a redundantly
	// set bit is the same benign duplicate the protocol already
	// tolerates) and scan unvisited vertices over in-edges, writing only
	// vertex-owned state, so the kernel needs no locks and no atomic
	// RMW. Switching back top-down compacts the bitmap into the batched
	// queue publication path with an atomics-free per-worker prefix-sum
	// pass (Tithi, Fogel & Chowdhury 2022). Unlike the internal/beamer
	// wrapper, the switch never sees duplicate-inflated estimates: the
	// decision inputs are deduplicated at the barrier by construction.
	// Not supported for the Serial algorithm (use the plain serial
	// baseline or internal/beamer for a serial hybrid).
	Hybrid bool
	// Alpha is the top-down→bottom-up switch aggressiveness: switch
	// when mf > unexplored/Alpha and the frontier is growing, where mf
	// is the number of edges incident to the (deduplicated) frontier
	// and unexplored is the remaining untraversed-edge budget. Larger
	// values switch earlier. Default 15 (the Beamer paper's tuned
	// value). Ignored unless Hybrid is set.
	Alpha int64
	// Beta is the bottom-up→top-down switch threshold: switch back when
	// the frontier shrinks below n/Beta vertices. Larger values switch
	// back later. Default 18. Ignored unless Hybrid is set.
	Beta int64
	// StallTimeout arms the per-run stall watchdog: if no worker makes
	// dispatch progress (segment fetches, steal-drain publications,
	// hot-vertex chunks) for this long, the run aborts with a
	// *StallError and a partial Result. The window must comfortably
	// exceed one dispatch unit's legitimate duration — serving
	// deployments use seconds. 0 (the default) disables the watchdog;
	// runs then also lose the watchdog's mid-level cancellation assist
	// and notice ctx only at level boundaries, as before.
	StallTimeout time.Duration

	// Target, when non-zero, holds dst+1 — the same vertex+1 sentinel
	// encoding the queue slots use, so the zero Options stays fully
	// unbounded while vertex 0 remains a legal target (use GoalTo or
	// SetTarget rather than open-coding the +1). A targeted search
	// terminates at the first level barrier after dst's distance
	// commits. The barrier is already the run's one single-threaded
	// point, so termination adds no locks and no atomic RMW: the driver
	// reads the target's epoch stamp where the level's happens-before
	// edge already exists. Level synchrony makes the partial Result
	// exact — when the barrier after exploring level d-1 observes the
	// target settled at distance d, every vertex at distance <= d has
	// its final distance, and everything deeper reads Unreached. The
	// Result is marked Truncated. Engines honor a per-run override via
	// RunGoal without rebuilding.
	Target int32
	// MaxDepth, when positive, bounds the traversal to that many
	// levels: the run stops at the barrier where the completed-level
	// count reaches MaxDepth, settling every vertex at distance <=
	// MaxDepth (a k-hop neighborhood) and never scanning the edges of
	// the deepest rank. 0 (the default) is unbounded. Composes with
	// Target: whichever goal fires first terminates the run.
	MaxDepth int32

	// Chaos, when non-nil, receives a callback at each of the
	// optimistic protocols' instrumented racy points (see ChaosPoint)
	// so tests and the internal/chaos soak harness can provoke rare
	// interleavings deterministically. If the hook also implements
	// ChaosLevelAuditor it additionally receives the per-level
	// unconsumed-slot audit for the slot-zeroing (lockfree) variants.
	// Nil — the default — costs one predictable branch per
	// instrumented step.
	Chaos ChaosHook

	// ctx carries RunContext's cancellation; nil means background.
	// Unexported: set it via RunContext, not by struct literal.
	ctx context.Context
}

// withDefaults returns a copy of o with defaults filled in.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxStealFactor <= 0 {
		o.MaxStealFactor = 2
	}
	if o.LockBatch <= 0 {
		o.LockBatch = 16
	}
	if o.PublishBlock <= 0 {
		o.PublishBlock = 128
	}
	if o.Pools <= 0 {
		o.Pools = 1
	}
	if o.Pools > o.Workers {
		o.Pools = o.Workers
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Alpha <= 0 {
		o.Alpha = 15
	}
	if o.Beta <= 0 {
		o.Beta = 18
	}
	if o.Sockets <= 0 {
		o.Sockets = 1
	}
	if o.Sockets > o.Workers {
		o.Sockets = o.Workers
	}
	// Only a negative bias means "unset": an explicit 0 must remain
	// configurable (it turns the local-socket preference off), and
	// out-of-range probabilities are clamped rather than fed to the
	// victim/pool pickers.
	if o.SameSocketBias < 0 {
		o.SameSocketBias = 0.9
	} else if o.SameSocketBias > 1 {
		o.SameSocketBias = 1
	}
	if o.MaxDepth < 0 {
		o.MaxDepth = 0
	}
	return o
}

// SetTarget records dst as the Options' target vertex in the vertex+1
// sentinel encoding (see Options.Target). A negative dst clears it.
func (o *Options) SetTarget(dst int32) {
	if dst < 0 {
		o.Target = 0
		return
	}
	o.Target = dst + 1
}

// Goal is a per-run traversal bound, the pair of Options.Target and
// Options.MaxDepth lifted out so one warm engine can answer queries
// with different goals without rebuilding (see Engine.RunGoal and
// Backend.RunGoal). Target uses the same vertex+1 sentinel encoding as
// Options.Target — zero means no target — so the zero Goal bounds
// nothing and RunGoal with it is exactly RunContext.
type Goal struct {
	// Target is dst+1, or 0 for no target (see Options.Target).
	Target int32
	// MaxDepth bounds the completed-level count; 0 is unbounded (see
	// Options.MaxDepth).
	MaxDepth int32
}

// GoalTo returns a Goal that terminates once dst's distance commits.
// A negative dst yields the unbounded zero Goal.
func GoalTo(dst int32) Goal {
	if dst < 0 {
		return Goal{}
	}
	return Goal{Target: dst + 1}
}

// TargetVertex decodes the goal's target vertex, or -1 when none.
func (g Goal) TargetVertex() int32 { return g.Target - 1 }

// Bounded reports whether the goal terminates anything at all.
func (g Goal) Bounded() bool { return g.Target != 0 || g.MaxDepth > 0 }

// goal extracts the construction-time goal from resolved options.
func (o Options) goal() Goal { return Goal{Target: o.Target, MaxDepth: o.MaxDepth} }

// validGoal rejects goals that name a vertex outside [0, n) or carry a
// negative (meaningless) encoding. The zero Goal is always valid.
func validGoal(g Goal, n int32) error {
	if g.Target < 0 {
		return fmt.Errorf("core: negative goal target encoding %d", g.Target)
	}
	if g.Target > n {
		return fmt.Errorf("core: goal target %d out of range [0,%d)", g.Target-1, n)
	}
	if g.MaxDepth < 0 {
		return fmt.Errorf("core: negative goal max depth %d", g.MaxDepth)
	}
	return nil
}

// maxSteal returns the MAX_STEAL bound c·k·log2(k) for k targets,
// at least 1.
func maxSteal(factor, k int) int {
	if k <= 1 {
		return 1
	}
	v := float64(factor) * float64(k) * math.Log2(float64(k))
	if v < 1 {
		return 1
	}
	return int(v)
}

// Result reports the outcome of one BFS run.
type Result struct {
	// Dist holds the BFS level of every vertex (graph.Unreached if not
	// reachable from the source).
	Dist []int32
	// Parent holds a valid BFS-tree parent per reached vertex (the
	// source's parent is itself; -1 elsewhere). Nil unless
	// Options.TrackParents was set.
	Parent []int32
	// LevelSizes[d] is the number of vertices at BFS level d — the
	// frontier-size profile that drives per-level strategy choices
	// (e.g. Baseline2's hybrid picker).
	LevelSizes []int64
	// Levels is the number of BFS levels explored (depth+1 of the tree).
	Levels int32
	// Truncated reports that the run terminated at a goal — the target
	// vertex's distance committed (Options.Target / Goal.Target) or the
	// completed-level count reached Options.MaxDepth with frontier
	// remaining — rather than by frontier exhaustion. Every distance at
	// a closed level (< Levels, plus the target itself) is exact; deeper
	// vertices read Unreached except for the final frontier, which is
	// settled at distance == Levels but outside LevelSizes.
	Truncated bool
	// Reached is the number of vertices reached, including the source.
	Reached int64
	// EdgesTraversed is the number of edges incident to reached
	// vertices — the TEPS numerator.
	EdgesTraversed int64
	// Pops counts queue pops including duplicate explorations;
	// Pops - Reached is the duplicated work the optimistic scheme paid.
	Pops int64
	// Workers is the worker count the run actually used.
	Workers int
	// Pools is the number of shared centralized-queue pools the run
	// dispatched from (BFS_CL/BFS_DL only; 0 otherwise). The cost
	// model uses it to scale shared-descriptor contention.
	Pools int
	// Counters aggregates all workers' instrumentation.
	Counters stats.Counters
	// PerWorker holds each worker's counters (nil for sbfs).
	PerWorker []stats.PaddedCounters
	// Events holds each worker's recorded dispatch events when
	// Options.TraceCapacity was set (nil otherwise).
	Events [][]Event
	// EventsDropped counts, per worker, the dispatch events that did
	// not fit in the trace buffer (nil unless tracing was enabled).
	// A non-zero entry flags that worker's Events as truncated.
	EventsDropped []int64
	// LevelStats is the per-level run timeline when
	// Options.LevelTimeline was set (nil otherwise).
	LevelStats []LevelStat
}

// Duplicates returns the number of duplicate explorations. Under
// Options.Hybrid it can be negative: bottom-up levels settle vertices
// without popping queue entries, so Pops undercounts Reached by the
// number of bottom-up discoveries.
func (r *Result) Duplicates() int64 { return r.Pops - r.Reached }

// Run executes the selected algorithm on g from src. It is the
// one-shot path: a fresh Engine is built, run once, and released, so
// the returned Result owns freshly allocated arrays. Multi-source
// workloads should build an Engine once and reuse it.
func Run(g *graph.CSR, src int32, algo Algorithm, opt Options) (*Result, error) {
	return RunContext(context.Background(), g, src, algo, opt)
}

// RunContext is Run with cancellation: the search checks ctx at every
// level boundary (workers always finish the level in flight, so
// cancellation latency is one level; with Options.StallTimeout set the
// watchdog additionally interrupts mid-level) and returns ctx's error
// if it fires. Aborted runs — canceled, stalled, or panicked — return
// their partial Result alongside the error: Dist/Parent entries for
// every vertex settled so far plus the levels/reached/edges counters,
// so callers can report how far the search got. The per-level check
// costs one atomic load.
func RunContext(ctx context.Context, g *graph.CSR, src int32, algo Algorithm, opt Options) (*Result, error) {
	opt.ctx = ctx
	return run(g, src, algo, opt)
}

// run is the one-shot wrapper over the engine layer: build the
// backend Options.Shards asks for (plain Engine by default, sharded
// when Shards > 1), run once, release. Validation order (graph, then
// source, then algorithm) is preserved from the pre-engine
// implementation.
func run(g *graph.CSR, src int32, algo Algorithm, opt Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if src < 0 || src >= g.NumVertices() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", src, g.NumVertices())
	}
	e, err := NewBackend(g, algo, opt)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	ctx := opt.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return e.RunContext(ctx, src)
}
