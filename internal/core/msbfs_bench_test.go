package core

import (
	"fmt"
	"sync"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

var (
	rmat18Once sync.Once
	rmat18G    *graph.CSR
	rmat18Err  error
)

// rmat18 builds (once) the Graph500 scale-18 benchmark graph:
// 2^18 vertices, edgefactor 16.
func rmat18(b *testing.B) *graph.CSR {
	b.Helper()
	rmat18Once.Do(func() {
		rmat18G, rmat18Err = gen.Graph500RMAT(1<<18, 16<<18, 42, gen.Options{})
	})
	if rmat18Err != nil {
		b.Fatal(rmat18Err)
	}
	return rmat18G
}

// BenchmarkAggregateQPS compares per-query dispatch (one warm solo
// engine answering K sources back to back — what the serve layer did
// before fusion) against one fused MS-BFS run packing the same K
// sources into lane masks. The reported "qps" metric is aggregate
// queries per second: K×iters / elapsed.
func BenchmarkAggregateQPS(b *testing.B) {
	g := rmat18(b)
	for _, k := range []int{1, 8, 64} {
		srcs := make([]int32, k)
		for i := range srcs {
			srcs[i] = int32((i*2654435761 + 12345) % int(g.NumVertices()))
		}
		b.Run(fmt.Sprintf("solo/sources=%d", k), func(b *testing.B) {
			eng, err := NewEngine(g, BFSWL, Options{TrackParents: true})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			if _, err := eng.Run(srcs[0]); err != nil { // warm the pools
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, s := range srcs {
					if _, err := eng.Run(s); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(k*b.N)/b.Elapsed().Seconds(), "qps")
		})
		b.Run(fmt.Sprintf("fused/sources=%d", k), func(b *testing.B) {
			eng, err := NewMSEngine(g, Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			if _, err := eng.Run(srcs); err != nil { // warm the pools
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(srcs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(k*b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}
