package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

var (
	rmat18Once sync.Once
	rmat18G    *graph.CSR
	rmat18Err  error
)

// rmat18 builds (once) the Graph500 scale-18 benchmark graph:
// 2^18 vertices, edgefactor 16.
func rmat18(b *testing.B) *graph.CSR {
	b.Helper()
	rmat18Once.Do(func() {
		rmat18G, rmat18Err = gen.Graph500RMAT(1<<18, 16<<18, 42, gen.Options{})
	})
	if rmat18Err != nil {
		b.Fatal(rmat18Err)
	}
	return rmat18G
}

// BenchmarkMSGoalRetirement quantifies what per-lane retirement saves
// on a full 64-lane fused run: every lane gets an s-t goal at a
// mid-depth target (picked from a serial reference run, the same
// convention as the harness GoalTable), and the retired row re-runs
// the identical sources with those goals while the unbounded row runs
// to exhaustion. Medges/op is the fused expansion's total adjacency
// scans per run — the direct measure of the edges retirement avoids —
// so the retired/unbounded ratio is the headline number recorded in
// BENCH_pr9.json.
func BenchmarkMSGoalRetirement(b *testing.B) {
	g := rmat18(b)
	srcs := make([]int32, MaxLanes)
	for i := range srcs {
		srcs[i] = int32((i*2654435761 + 12345) % int(g.NumVertices()))
	}
	goals := make([]Goal, MaxLanes)
	for i, src := range srcs {
		want := graph.ReferenceBFS(g, src)
		var ecc int32
		for _, d := range want {
			if d != graph.Unreached && d > ecc {
				ecc = d
			}
		}
		depth := ecc / 2
		if depth < 1 {
			depth = 1
		}
		goals[i] = GoalTo(src) // fallback: retire at seed
		for v := int32(0); v < g.NumVertices(); v++ {
			if want[v] == depth {
				goals[i] = GoalTo(v)
				break
			}
		}
	}
	ctx := context.Background()
	for _, tc := range []struct {
		name  string
		goals []Goal
	}{{"unbounded", nil}, {"retired", goals}} {
		b.Run(tc.name, func(b *testing.B) {
			eng, err := NewMSEngine(g, Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			if _, err := eng.RunGoals(ctx, srcs, tc.goals); err != nil { // warm the pools
				b.Fatal(err)
			}
			var edges int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.RunGoals(ctx, srcs, tc.goals)
				if err != nil {
					b.Fatal(err)
				}
				edges += res.EdgesScanned
			}
			b.StopTimer()
			b.ReportMetric(float64(edges)/float64(b.N)/1e6, "Medges/op")
			b.ReportMetric(float64(MaxLanes*b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}

// BenchmarkAggregateQPS compares per-query dispatch (one warm solo
// engine answering K sources back to back — what the serve layer did
// before fusion) against one fused MS-BFS run packing the same K
// sources into lane masks. The reported "qps" metric is aggregate
// queries per second: K×iters / elapsed.
func BenchmarkAggregateQPS(b *testing.B) {
	g := rmat18(b)
	for _, k := range []int{1, 8, 64} {
		srcs := make([]int32, k)
		for i := range srcs {
			srcs[i] = int32((i*2654435761 + 12345) % int(g.NumVertices()))
		}
		b.Run(fmt.Sprintf("solo/sources=%d", k), func(b *testing.B) {
			eng, err := NewEngine(g, BFSWL, Options{TrackParents: true})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			if _, err := eng.Run(srcs[0]); err != nil { // warm the pools
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, s := range srcs {
					if _, err := eng.Run(s); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(k*b.N)/b.Elapsed().Seconds(), "qps")
		})
		b.Run(fmt.Sprintf("fused/sources=%d", k), func(b *testing.B) {
			eng, err := NewMSEngine(g, Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			if _, err := eng.Run(srcs); err != nil { // warm the pools
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(srcs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(k*b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}
