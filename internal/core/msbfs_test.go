package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"optibfs/internal/graph"
)

// msHook adapts a function to ChaosHook for the fused-engine tests.
type msHook func(point ChaosPoint, worker int, value int64)

func (f msHook) At(point ChaosPoint, worker int, value int64) { f(point, worker, value) }

// checkLane validates one lane of a fused run against the serial
// oracle and the structural BFS rules.
func checkLane(t *testing.T, g *graph.CSR, lr *LaneResult) {
	t.Helper()
	want := graph.ReferenceBFS(g, lr.Src)
	if err := graph.EqualDistances(lr.Dist, want); err != nil {
		t.Fatalf("lane src=%d: wrong distances: %v", lr.Src, err)
	}
	if err := graph.ValidateParents(g, lr.Src, lr.Dist, lr.Parent); err != nil {
		t.Fatalf("lane src=%d: parents: %v", lr.Src, err)
	}
	if lr.Levels != graph.Eccentricity(want)+1 {
		t.Fatalf("lane src=%d: Levels=%d, want %d", lr.Src, lr.Levels, graph.Eccentricity(want)+1)
	}
	wantReach, wantEdges := graph.ReachedCount(g, want)
	if lr.Reached != wantReach || lr.EdgesTraversed != wantEdges {
		t.Fatalf("lane src=%d: reached/edges = %d/%d, want %d/%d",
			lr.Src, lr.Reached, lr.EdgesTraversed, wantReach, wantEdges)
	}
}

// laneSources spreads k sources over g, with deliberate duplicates
// once k exceeds the vertex count or 8 (two lanes sharing a source is
// a case the mask merge must handle).
func laneSources(g *graph.CSR, k int) []int32 {
	n := g.NumVertices()
	srcs := make([]int32, k)
	for i := range srcs {
		srcs[i] = int32(i*7) % n
	}
	if k > 8 {
		srcs[k-1] = srcs[0] // forced duplicate source
	}
	return srcs
}

func TestMSBFSMatchesOracle(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, workers := range []int{1, 3, 8} {
			for _, lanes := range []int{1, 8, 64} {
				e, err := NewMSEngine(g, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				srcs := laneSources(g, lanes)
				res, err := e.Run(srcs)
				if err != nil {
					t.Fatalf("%s workers=%d lanes=%d: %v", name, workers, lanes, err)
				}
				if res.Lanes != lanes {
					t.Fatalf("%s: Lanes=%d, want %d", name, res.Lanes, lanes)
				}
				for i := 0; i < lanes; i++ {
					checkLane(t, g, res.Lane(i))
				}
				e.Close()
			}
		}
	}
}

// TestMSBFSEngineReuse runs a warm engine across shrinking and growing
// lane counts: epoch invalidation and the lane-major pooling must keep
// every run's views exact.
func TestMSBFSEngineReuse(t *testing.T) {
	g := testGraphs(t)["rmat"]
	e, err := NewMSEngine(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, lanes := range []int{64, 3, 17, 64, 1} {
		srcs := laneSources(g, lanes)
		res, err := e.Run(srcs)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		for i := 0; i < lanes; i++ {
			checkLane(t, g, res.Lane(i))
		}
	}
}

func TestMSBFSSourceValidation(t *testing.T) {
	g := testGraphs(t)["er"]
	e, err := NewMSEngine(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(nil); err == nil {
		t.Fatal("0 sources accepted")
	}
	if _, err := e.Run(make([]int32, MaxLanes+1)); err == nil {
		t.Fatal("65 sources accepted")
	}
	if _, err := e.Run([]int32{-1}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := e.Run([]int32{g.NumVertices()}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	// A failed validation must not poison the engine.
	res, err := e.Run([]int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	checkLane(t, g, res.Lane(0))
	checkLane(t, g, res.Lane(1))
}

// TestMSBFSCancelPartial cancels a fused run mid-traversal: the error
// is ctx's, every settled per-lane distance matches the oracle, and
// the engine stays reusable.
func TestMSBFSCancelPartial(t *testing.T) {
	g := testGraphs(t)["layered"] // deep enough for many levels
	var levels int32
	ctx, cancel := context.WithCancel(context.Background())
	hook := msHook(func(p ChaosPoint, _ int, _ int64) {
		if p == ChaosStall {
			if atomic.AddInt32(&levels, 1) == 6 {
				cancel()
			}
		}
	})
	e, err := NewMSEngine(g, Options{Workers: 2, Chaos: hook})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	srcs := laneSources(g, 16)
	res, err := e.RunContext(ctx, srcs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled run returned no partial result")
	}
	for i := range srcs {
		lr := res.Lane(i)
		want := graph.ReferenceBFS(g, lr.Src)
		var settled int64
		for v := range lr.Dist {
			if lr.Dist[v] == graph.Unreached {
				continue
			}
			settled++
			if lr.Dist[v] != want[v] {
				t.Fatalf("lane %d: partial dist[%d]=%d, want %d", i, v, lr.Dist[v], want[v])
			}
		}
		if settled != lr.Reached {
			t.Fatalf("lane %d: Reached=%d but %d settled", i, lr.Reached, settled)
		}
	}
	// The engine must be fully reusable after a cooperative abort.
	e.SetChaos(nil)
	res, err = e.Run(srcs[:4])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		checkLane(t, g, res.Lane(i))
	}
}

// TestMSBFSPanicPoisons injects one worker panic: the run must return
// a *WorkerPanicError with partial lanes instead of crashing, and the
// engine must refuse reuse with ErrPoisoned.
func TestMSBFSPanicPoisons(t *testing.T) {
	g := testGraphs(t)["er"]
	var fired int32
	hook := msHook(func(p ChaosPoint, _ int, _ int64) {
		if p == ChaosStall && atomic.CompareAndSwapInt32(&fired, 0, 1) {
			panic("msbfs test: injected panic")
		}
	})
	e, err := NewMSEngine(g, Options{Workers: 4, Chaos: hook})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(laneSources(g, 8))
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
	if wp.Algo != MSBFSL {
		t.Fatalf("panic algo = %q, want %q", wp.Algo, MSBFSL)
	}
	if res == nil {
		t.Fatal("panicked run returned no partial result")
	}
	if _, err := e.Run([]int32{0}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("reuse after panic: err = %v, want ErrPoisoned", err)
	}
}

// TestMSBFSClosed: a closed engine refuses runs.
func TestMSBFSClosed(t *testing.T) {
	g := testGraphs(t)["two"]
	e, err := NewMSEngine(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Run([]int32{0}); err == nil {
		t.Fatal("closed engine accepted a run")
	}
}
