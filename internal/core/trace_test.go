package core

import (
	"testing"

	"optibfs/internal/gen"
)

func TestTraceDisabledByDefault(t *testing.T) {
	g, err := gen.ErdosRenyi(500, 3000, 1, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, BFSCL, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != nil {
		t.Fatal("events recorded without TraceCapacity")
	}
}

func TestTraceRecordsFetches(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 16000, 2, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BFSC, BFSCL, BFSDL, BFSEL} {
		res, err := Run(g, 0, algo, Options{Workers: 4, TraceCapacity: 10000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Events) != 4 {
			t.Fatalf("%s: event buffers %d", algo, len(res.Events))
		}
		var fetches int64
		for id, evs := range res.Events {
			for _, e := range evs {
				if int(e.Worker) != id {
					t.Fatalf("%s: event worker %d in buffer %d", algo, e.Worker, id)
				}
				if e.Kind == EventFetch {
					fetches++
					if e.Value <= 0 {
						t.Fatalf("%s: fetch with non-positive length %d", algo, e.Value)
					}
					if e.Victim != -1 {
						t.Fatalf("%s: fetch with victim %d", algo, e.Victim)
					}
				}
				if e.Level < 0 || e.Level >= res.Levels {
					t.Fatalf("%s: event level %d out of range", algo, e.Level)
				}
			}
		}
		if fetches == 0 {
			t.Fatalf("%s: no fetch events recorded", algo)
		}
		if fetches != res.Counters.Fetches {
			t.Fatalf("%s: %d fetch events vs %d counted fetches", algo, fetches, res.Counters.Fetches)
		}
	}
}

func TestTraceRecordsStealOutcomes(t *testing.T) {
	g, err := gen.ErdosRenyi(8000, 64000, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{BFSW, BFSWL} {
		res, err := Run(g, 0, algo, Options{Workers: 8, TraceCapacity: 100000, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		counts := map[EventKind]int64{}
		for _, evs := range res.Events {
			for _, e := range evs {
				counts[e.Kind]++
				if e.Kind != EventFetch && e.Victim < 0 {
					t.Fatalf("%s: steal event without victim", algo)
				}
			}
		}
		if counts[EventStealOK] != res.Counters.StealSuccess {
			t.Fatalf("%s: %d steal-ok events vs %d counted", algo, counts[EventStealOK], res.Counters.StealSuccess)
		}
		if counts[EventStealVictimIdle] != res.Counters.StealVictimIdle {
			t.Fatalf("%s: idle events %d vs counted %d", algo, counts[EventStealVictimIdle], res.Counters.StealVictimIdle)
		}
	}
}

func TestTraceCapacityBounds(t *testing.T) {
	g, err := gen.ErdosRenyi(8000, 64000, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, 0, BFSWL, Options{Workers: 8, TraceCapacity: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for id, evs := range res.Events {
		if len(evs) > 3 {
			t.Fatalf("worker %d recorded %d events over capacity", id, len(evs))
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventFetch, EventStealOK, EventStealVictimLocked,
		EventStealVictimIdle, EventStealTooSmall, EventStealStale, EventStealInvalid}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("bad kind string %q", s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("unknown kind not handled")
	}
}
