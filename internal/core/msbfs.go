package core

// Multi-source BFS (MS-BFS): up to 64 concurrent sources fused into
// one bit-parallel traversal, one uint64 lane per source.
//
// The fusion extends the paper's optimistic discipline instead of
// abandoning it. Per-vertex lane masks are shared state, but they are
// written with atomic Load/Store only — no locks, no atomic
// read-modify-write — so a concurrent OR can lose bits exactly like a
// torn segment descriptor can misreport a front. Both are benign for
// the same reason: the advisory mask only ever UNDERSTATES what has
// been discovered, so a lost bit produces a duplicate discovery entry,
// never a missed one. Ground truth is committed at the level barrier
// by a single goroutine:
//
//   - During a level, workers filter edges through the advisory `marks`
//     (atomic load/store, lossy; they accumulate every lane discovered
//     this run, committed levels included, so they subsume the seen
//     check at one cache line per edge) and append (parent, vertex,
//     lanes) discovery entries to private buffers. Frontier entries are
//     dispatched from a shared cursor with the paper's optimistic
//     load-then-store advance (Figure 1): a torn advance re-hands a
//     segment to two workers, which duplicates entries and nothing else.
//   - At the barrier, the driver dedups every entry against `seen` (its
//     only reader), commits per-lane dist/parent for newly set bits,
//     and merges the surviving entries into a per-vertex next frontier.
//     A lane bit set redundantly by racing workers collapses here into
//     one commit — the benign duplicate, in lane form.
//
// The barrier commits into vertex-major working arrays (one vertex's
// lanes share a few cache lines; the lane-major layout would scatter
// every committed bit NumVertices apart) and finish transposes them
// block-wise into the lane-major arrays the Lane views alias. Pooled
// state is invalidated per run by the masks rather than an epoch per
// entry: a lane's slice is normalized (Unreached / no-parent) during
// the transpose, gated on the committed seen bit, so stale values from
// earlier runs can never leak into a Lane view.
//
// Tithi et al. 2022 (the MS-BFS compaction line) turn dense lane
// frontiers back into queues with an atomic-free prefix sum; here the
// barrier commit plays that role — it is already single-threaded, so
// the compaction needs no atomics by construction.

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"optibfs/internal/graph"
)

// MSBFSL names the fused multi-source lockfree variant in errors and
// reports. It is not part of Algorithms: the fused engine serves the
// batching layer and is validated per-lane against the serial oracle,
// not benchmarked as a paper variant.
const MSBFSL Algorithm = "MS_BFSL"

// MaxLanes is the lane capacity of one fused run: one bit per source
// in a uint64 mask.
const MaxLanes = 64

// msEntry is one discovery record: worker found vertex v reachable on
// the lanes in m, through parent u. Frontier entries reuse the type
// with u unused.
type msEntry struct {
	u, v int32
	m    uint64
}

// laneMark packs a vertex's advisory lane mask with its validity stamp
// so the expand fast path touches one cache line per edge. Both fields
// are accessed with atomic load/store only; the 8-byte slot alignment
// the pad buys keeps mask atomically addressable on every platform.
type laneMark struct {
	mask  uint64
	epoch uint32
	_     uint32
}

// msMeta is the barrier's per-vertex record: the committed lane mask
// with its run stamp, and the vertex's next-frontier slot with its
// level stamp. Single-threaded state — no atomics anywhere.
type msMeta struct {
	seen   uint64
	sepoch uint32
	fepoch uint32
	fidx   int32
}

// LaneResult is one source's view of a fused run. Dist and Parent
// alias the engine's pooled lane-major arrays and are valid only until
// the engine's next run; callers that keep them must copy.
type LaneResult struct {
	// Src is the lane's source vertex.
	Src int32
	// Dist holds the lane's BFS level per vertex (graph.Unreached if
	// the lane did not reach it).
	Dist []int32
	// Parent holds the lane's BFS-tree parent per reached vertex
	// (source's parent is itself; -1 elsewhere).
	Parent []int32
	// Levels is the number of BFS levels the lane explored.
	Levels int32
	// Reached counts the lane's reached vertices, including the source.
	Reached int64
	// EdgesTraversed is the lane's TEPS numerator (edges incident to
	// reached vertices).
	EdgesTraversed int64
	// Truncated reports that the lane retired at its goal (target
	// settled or depth bound reached with frontier remaining) rather
	// than by exhausting its frontier; see RunGoals. A retired lane's
	// Dist/Parent are exact for every committed level, exactly like a
	// solo Result.Truncated run's.
	Truncated bool
}

// MSResult reports one fused run. Lane views alias pooled engine
// state; see LaneResult.
type MSResult struct {
	// Lanes is the number of fused sources.
	Lanes int
	// Levels is the number of completed fused levels (the max over
	// lanes; an aborted run stops all lanes at the same barrier).
	Levels int32
	// EdgesScanned is the total adjacency entries the fused expansion
	// examined across all levels and workers — the denominator lane
	// retirement shrinks: a retired lane's bits leave the frontier
	// masks, so remaining lanes filter and scan strictly less.
	EdgesScanned int64
	lanes        []LaneResult
}

// Lane returns lane i's view.
func (r *MSResult) Lane(i int) *LaneResult { return &r.lanes[i] }

// MSEngine is a reusable fused multi-source BFS engine bound to one
// graph. Like Engine it is single-caller: at most one fused run at a
// time; pooled state is invalidated per run via epoch stamps so warm
// runs allocate only on frontier high-water growth.
type MSEngine struct {
	g   *graph.CSR
	opt Options

	// meta holds the barrier-private per-vertex state — the committed
	// lane masks plus the frontier-dedup slot — packed into one struct
	// so a commit touches one cache line of metadata, not three
	// scattered arrays. Written only at level barriers and read only
	// there and in finish; workers never touch it (the advisory marks
	// subsume the seen check for filtering). marks is the advisory
	// per-vertex mask+epoch, atomic load/store, lossy by design; mask
	// and stamp share a cache line so the per-edge fast path costs one
	// line, not two.
	meta  []msMeta
	marks []laneMark
	cur   uint32
	fcur  uint32

	// Two layouts of the per-lane dist/parent state. The barrier
	// commits (dist, parent) as adjacent pairs into the vertex-major
	// working array (work[(v*laneCap+L)*2]) where one vertex's lanes
	// share a handful of cache lines — the lane-major layout would
	// scatter every committed bit to its own line, NumVertices apart.
	// finish transposes block-wise into the lane-major output arrays
	// (dist[L*n+v]) that LaneResult views alias. Grown to the lane
	// high-water mark.
	work         []int32
	dist, parent []int32
	laneCap      int

	cfr, nfr []msEntry   // current / next frontier (double-buffered)
	out      [][]msEntry // per-worker private discovery buffers
	front    int64       // atomic dispatch cursor over cfr
	scanned  []int64     // per-worker adjacency entries examined

	// Per-lane goals (RunGoals). active is the mask of lanes still
	// traversing; a lane whose goal closes is retired at the barrier —
	// cleared from active and filtered out of the next frontier, so
	// remaining lanes expand strictly smaller masks. laneTrunc records
	// which lanes retired at a goal (vs draining naturally), feeding
	// LaneResult.Truncated. All barrier-private: the masks change only
	// in the single-threaded commit path, and expand never reads them.
	goals     [MaxLanes]Goal
	hasGoals  bool
	active    uint64
	laneTrunc uint64

	chaos ChaosHook
	yield bool // oversubscribed: Gosched at segment boundaries

	level    int32 // completed levels
	closed   bool
	poisoned bool

	// First-panic capture, mirroring state's recover machinery.
	abortFlag int32 // atomic
	abortMu   sync.Mutex
	wpanic    *WorkerPanicError

	res MSResult
}

// NewMSEngine builds a fused engine over g. Only Options.Workers,
// Seed, and Chaos are honored; parents are always tracked (the fused
// engine exists to serve per-query answers).
func NewMSEngine(g *graph.CSR, opt Options) (*MSEngine, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	opt = opt.withDefaults()
	n := g.NumVertices()
	e := &MSEngine{
		g:       g,
		opt:     opt,
		meta:    make([]msMeta, n),
		marks:   make([]laneMark, n),
		out:     make([][]msEntry, opt.Workers),
		scanned: make([]int64, opt.Workers),
		chaos:   opt.Chaos,
		yield:   opt.Workers > runtime.GOMAXPROCS(0),
	}
	for i := range e.out {
		e.out[i] = make([]msEntry, 0, 256)
	}
	return e, nil
}

// Graph returns the graph the engine is bound to.
func (e *MSEngine) Graph() *graph.CSR { return e.g }

// SetChaos installs (or removes) a chaos hook between runs.
func (e *MSEngine) SetChaos(h ChaosHook) { e.chaos = h }

// Close releases the engine; further runs fail. Idempotent.
func (e *MSEngine) Close() { e.closed = true }

// growLanes ensures both per-lane layouts hold at least lanes lanes.
// The vertex-major working stride is laneCap, so growth invalidates
// the working arrays — safe because growth happens only between runs.
func (e *MSEngine) growLanes(lanes int) {
	if lanes <= e.laneCap {
		return
	}
	n := int(e.g.NumVertices())
	e.work = make([]int32, n*lanes*2)
	e.dist = make([]int32, lanes*n)
	e.parent = make([]int32, lanes*n)
	if cap(e.res.lanes) < lanes {
		e.res.lanes = make([]LaneResult, lanes)
	}
	e.laneCap = lanes
}

// Run executes one fused search; see RunContext.
func (e *MSEngine) Run(sources []int32) (*MSResult, error) {
	return e.RunContext(context.Background(), sources)
}

// RunContext fuses len(sources) BFS searches (1..MaxLanes, duplicates
// allowed) into one bit-parallel traversal. Cancellation is observed
// at segment-dispatch and level boundaries; a canceled run commits the
// level in flight and returns the partial per-lane results alongside
// ctx's error, with the engine fully reusable. A worker panic poisons
// the engine (see ErrPoisoned) and returns a *WorkerPanicError with
// the partial results.
func (e *MSEngine) RunContext(ctx context.Context, sources []int32) (*MSResult, error) {
	return e.RunGoals(ctx, sources, nil)
}

// RunGoals is RunContext with one termination goal per lane: goals is
// nil (no goals anywhere) or one Goal per source, zero Goals running
// unbounded. A lane whose goal closes is retired at the level barrier —
// its bit leaves the advisory frontier masks, so the remaining lanes
// traverse strictly less — and its LaneResult (marked Truncated) demuxes
// the exact early answer: every committed level's distances match a
// solo goal-directed run's. The fused run ends when every lane has
// drained or retired.
func (e *MSEngine) RunGoals(ctx context.Context, sources []int32, goals []Goal) (*MSResult, error) {
	if e.closed {
		return nil, fmt.Errorf("core: ms engine is closed")
	}
	if e.poisoned {
		return nil, ErrPoisoned
	}
	if len(sources) == 0 || len(sources) > MaxLanes {
		return nil, fmt.Errorf("core: %d sources out of range [1,%d]", len(sources), MaxLanes)
	}
	if goals != nil && len(goals) != len(sources) {
		return nil, fmt.Errorf("core: %d goals for %d sources", len(goals), len(sources))
	}
	n := e.g.NumVertices()
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("core: source %d out of range [0,%d)", s, n)
		}
	}
	e.hasGoals = false
	for lane := range goals {
		if err := validGoal(goals[lane], n); err != nil {
			return nil, err
		}
		e.goals[lane] = goals[lane]
		if goals[lane].Bounded() {
			e.hasGoals = true
		}
	}
	e.growLanes(len(sources))
	e.beginRun(sources)
	// A target that is its own source is settled by seeding; retire it
	// before the first level rather than traversing for it.
	e.retireLanes()
	err := e.runLevels(ctx)
	res := e.finish(sources)
	if err != nil {
		return res, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return res, cerr
	}
	return res, nil
}

// beginRun primes pooled state: epoch bump invalidates every mask in
// O(1), the frontier is seeded with the sources merged by vertex (two
// lanes sharing a source share one entry), and per-lane level-0 state
// is committed directly.
func (e *MSEngine) beginRun(sources []int32) {
	e.cur++
	if e.cur == 0 {
		// uint32 wraparound: sweep the epoch fields once per 2^32-1
		// runs, as state.beginRun does.
		for i := range e.meta {
			e.meta[i].sepoch = 0
			e.marks[i].epoch = 0
		}
		e.cur = 1
	}
	e.level = 0
	atomic.StoreInt32(&e.abortFlag, abortNone)
	e.wpanic = nil
	atomic.StoreInt64(&e.front, 0)
	for i := range e.scanned {
		e.scanned[i] = 0
	}
	if len(sources) == MaxLanes {
		e.active = ^uint64(0)
	} else {
		e.active = (uint64(1) << uint(len(sources))) - 1
	}
	e.laneTrunc = 0
	e.cfr = e.cfr[:0]
	stride := e.laneCap
	for lane, s := range sources {
		bit := uint64(1) << uint(lane)
		mt := &e.meta[s]
		if mt.sepoch == e.cur {
			// Another lane already seeded this vertex: merge masks.
			mt.seen |= bit
			for i := range e.cfr {
				if e.cfr[i].v == s {
					e.cfr[i].m |= bit
					break
				}
			}
		} else {
			mt.seen = bit
			mt.sepoch = e.cur
			e.cfr = append(e.cfr, msEntry{v: s, m: bit})
		}
		slot := (int(s)*stride + lane) * 2
		e.work[slot] = 0
		e.work[slot+1] = s
	}
}

// aborted reports whether a worker panic has aborted the run.
func (e *MSEngine) msAborted() bool {
	return atomic.LoadInt32(&e.abortFlag) != abortNone
}

// recordMSPanic captures the first worker panic, mirroring
// state.recordPanic.
func (e *MSEngine) recordMSPanic(id int, v any, stack []byte) {
	e.abortMu.Lock()
	if e.wpanic == nil {
		e.wpanic = &WorkerPanicError{
			Worker: id,
			Algo:   MSBFSL,
			Level:  e.level,
			Value:  v,
			Stack:  stack,
		}
	}
	atomic.StoreInt32(&e.abortFlag, abortPanic)
	e.abortMu.Unlock()
}

// runLevels drives the fused level loop: parallel expansion, then the
// single-threaded barrier commit. Returns the abort error, if any.
func (e *MSEngine) runLevels(ctx context.Context) error {
	p := e.opt.Workers
	for len(e.cfr) > 0 {
		if ctx != nil && ctx.Err() != nil {
			break
		}
		atomic.StoreInt64(&e.front, 0)
		var wg sync.WaitGroup
		wg.Add(p)
		for id := 0; id < p; id++ {
			go func(id int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						e.recordMSPanic(id, r, debug.Stack())
					}
				}()
				e.chaosAt(ChaosStall, id, int64(e.level))
				e.expand(ctx, id)
			}(id)
		}
		wg.Wait()
		if e.msAborted() {
			e.poisoned = true
			return e.wpanic
		}
		e.commitLevel()
		e.retireLanes()
	}
	return nil
}

// retireLanes is the barrier-time per-lane goal check, run after each
// commit (and once after seeding, for a target that equals its source).
// A lane retires when its depth bound has been reached or its target's
// seen bit has committed; retirement clears the lane from the active
// mask and filters its bits out of the just-built frontier, so every
// remaining expansion carries strictly smaller masks. The check reads
// only barrier-committed state (meta, level, cfr) on the driver
// goroutine — the same no-new-synchronization argument as
// state.goalDone, in lane-mask form.
func (e *MSEngine) retireLanes() {
	if !e.hasGoals || e.active == 0 {
		return
	}
	// present marks lanes with frontier entries left: a lane at its
	// depth bound with work remaining was truncated, one whose frontier
	// drained on its own merely finished.
	var present uint64
	for _, ent := range e.cfr {
		present |= ent.m
	}
	act := e.active
	for b := act; b != 0; b &= b - 1 {
		lane := bits.TrailingZeros64(b)
		bit := uint64(1) << uint(lane)
		g := e.goals[lane]
		if g.MaxDepth > 0 && e.level >= g.MaxDepth {
			act &^= bit
			e.laneTrunc |= present & bit
			continue
		}
		if t := g.TargetVertex(); t >= 0 {
			mt := &e.meta[t]
			if mt.sepoch == e.cur && mt.seen&bit != 0 {
				act &^= bit
				e.laneTrunc |= bit
			}
		}
	}
	if act != e.active {
		e.active = act
		e.filterFrontier()
	}
}

// filterFrontier drops retired lanes' bits from the current frontier,
// compacting in place (safe: the write index never passes the read
// index). Entries whose masks empty out vanish entirely, so a level
// all of whose discoveries belonged to retired lanes ends the run.
// Stale advisory marks for retired lanes are harmless: marks only
// filter candidates, and candidate masks no longer carry retired bits.
func (e *MSEngine) filterFrontier() {
	out := e.cfr[:0]
	for _, ent := range e.cfr {
		if m := ent.m & e.active; m != 0 {
			ent.m = m
			out = append(out, ent)
		}
	}
	e.cfr = out
}

// expand is one worker's share of a level: dispatch frontier segments
// from the shared cursor with the optimistic load-then-store advance,
// scan each entry's adjacency, and append discoveries to the private
// buffer. Duplicated segments (torn advances) and lost advisory-mask
// bits both surface as duplicate entries for the barrier to collapse.
func (e *MSEngine) expand(ctx context.Context, id int) {
	g := e.g
	cur := e.cur
	buf := e.out[id][:0]
	total := int64(len(e.cfr))
	cfr, marks := e.cfr, e.marks
	var scanned int64
	for {
		if e.msAborted() {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			break
		}
		f := atomic.LoadInt64(&e.front)
		if f >= total {
			break
		}
		// Adaptive segments, shrinking as the frontier drains so late
		// fetches stay balanced (same rule as segmentSize).
		seg := (total-f)/int64(8*e.opt.Workers) + 1
		if seg > 1024 {
			seg = 1024
		}
		e.chaosAt(ChaosFrontStore, id, f+seg)
		// Optimistic advance: load-then-store, no RMW. Racing workers
		// may re-take [f, f+seg) — duplicate entries only.
		atomic.StoreInt64(&e.front, f+seg)
		hi := f + seg
		if hi > total {
			hi = total
		}
		for _, ent := range cfr[f:hi] {
			v, mv := ent.v, ent.m
			nb := g.Neighbors(v)
			scanned += int64(len(nb))
			for _, x := range nb {
				// Advisory filter: the marks accumulate every lane ever
				// discovered for x this run (committed levels included),
				// so they subsume the seen check — one cache line per
				// edge. Lossy and understate-only: a lost bit means a
				// duplicate entry for the barrier, never a miss.
				mk := &marks[x]
				var m uint64
				if atomic.LoadUint32(&mk.epoch) == cur {
					m = atomic.LoadUint64(&mk.mask)
				}
				cand := mv &^ m
				if cand == 0 {
					continue
				}
				atomic.StoreUint64(&mk.mask, m|cand)
				if m == 0 {
					// Stamp published after the payload store, as in
					// state.discover: a racer that sees the stamp is
					// ordered after a valid mask.
					atomic.StoreUint32(&mk.epoch, cur)
				}
				buf = append(buf, msEntry{u: v, v: x, m: cand})
			}
		}
		if e.yield {
			// Oversubscribed: hand the thread to a peer once per
			// segment so dispatch stays fair, as state.maybeYield does.
			runtime.Gosched()
		}
	}
	e.out[id] = buf
	e.scanned[id] += scanned
}

// commitLevel is the barrier: dedup every discovery entry against the
// committed masks, write per-lane dist/parent for newly set bits, and
// build the next frontier. Single-threaded, so the compaction needs no
// atomics — the wg.Wait() edge orders it after every worker store.
//
// The next frontier is merged PER VERTEX: a vertex whose new lanes
// arrive through several discovery entries (distinct parents, or
// duplicates from lost advisory bits and torn segment advances) gets
// one frontier slot with the union mask, not one slot per entry.
// Without the merge a hub reached by k parents is rescanned k times
// next level, and on skewed graphs that multiplies edge work back up
// to per-query levels — the merge is what makes the fused run cheaper
// than its lanes run solo.
func (e *MSEngine) commitLevel() {
	stride := e.laneCap
	e.fcur++
	if e.fcur == 0 {
		for i := range e.meta {
			e.meta[i].fepoch = 0
		}
		e.fcur = 1
	}
	next := e.nfr[:0]
	d := e.level + 1
	for id := range e.out {
		for _, ent := range e.out[id] {
			mt := &e.meta[ent.v]
			var seen uint64
			if mt.sepoch == e.cur {
				seen = mt.seen
			}
			newBits := ent.m &^ seen
			if newBits == 0 {
				continue
			}
			mt.seen = seen | newBits
			mt.sepoch = e.cur
			row := int(ent.v) * stride * 2
			for b := newBits; b != 0; b &= b - 1 {
				slot := row + bits.TrailingZeros64(b)*2
				e.work[slot] = d
				e.work[slot+1] = ent.u
			}
			if mt.fepoch == e.fcur {
				next[mt.fidx].m |= newBits
			} else {
				mt.fepoch = e.fcur
				mt.fidx = int32(len(next))
				next = append(next, msEntry{v: ent.v, m: newBits})
			}
		}
		e.out[id] = e.out[id][:0]
	}
	e.nfr = e.cfr
	e.cfr = next
	e.level = d
}

// finish demuxes the committed vertex-major working state into the
// lane-major per-lane views, normalizing each lane's slice (stale
// entries become Unreached / no-parent, gated on the committed seen
// bit) and computing the lane counters in the same pass. The transpose
// is cache-blocked: a block of working rows is streamed once per lane
// while it is still resident, and each lane's writes are sequential.
func (e *MSEngine) finish(sources []int32) *MSResult {
	n := int(e.g.NumVertices())
	stride := e.laneCap
	res := &e.res
	res.Lanes = len(sources)
	res.Levels = e.level
	res.EdgesScanned = 0
	for _, s := range e.scanned {
		res.EdgesScanned += s
	}
	res.lanes = res.lanes[:len(sources)]
	for lane, src := range sources {
		lr := &res.lanes[lane]
		*lr = LaneResult{
			Src:       src,
			Dist:      e.dist[lane*n : (lane+1)*n],
			Parent:    e.parent[lane*n : (lane+1)*n],
			Truncated: e.laneTrunc&(uint64(1)<<uint(lane)) != 0,
		}
	}
	var maxD [MaxLanes]int32
	for i := range maxD {
		maxD[i] = -1
	}
	const blk = 1024
	// Per-block scratch: the committed mask and out-degree of each
	// vertex, derived once instead of once per lane.
	var sm [blk]uint64
	var dg [blk]int64
	work := e.work
	for v0 := 0; v0 < n; v0 += blk {
		v1 := v0 + blk
		if v1 > n {
			v1 = n
		}
		for v := v0; v < v1; v++ {
			mt := &e.meta[v]
			if mt.sepoch == e.cur {
				sm[v-v0] = mt.seen
			} else {
				sm[v-v0] = 0
			}
			dg[v-v0] = e.g.OutDegree(int32(v))
		}
		for lane := range res.lanes {
			lr := &res.lanes[lane]
			bit := uint64(1) << uint(lane)
			reached, edges := lr.Reached, lr.EdgesTraversed
			md := maxD[lane]
			for v := v0; v < v1; v++ {
				if sm[v-v0]&bit != 0 {
					slot := (v*stride + lane) * 2
					dv := work[slot]
					lr.Dist[v] = dv
					lr.Parent[v] = work[slot+1]
					reached++
					edges += dg[v-v0]
					if dv > md {
						md = dv
					}
				} else {
					lr.Dist[v] = graph.Unreached
					lr.Parent[v] = -1
				}
			}
			lr.Reached, lr.EdgesTraversed = reached, edges
			maxD[lane] = md
		}
	}
	for lane := range res.lanes {
		lr := &res.lanes[lane]
		if lr.Truncated {
			// A retired lane's deepest settled vertices are its final
			// frontier, which sits beyond the closed levels — the same
			// convention as a truncated solo Result.
			lr.Levels = maxD[lane]
		} else {
			lr.Levels = maxD[lane] + 1
		}
	}
	return res
}

// chaosAt forwards to the installed hook (nil-check only when unset).
func (e *MSEngine) chaosAt(point ChaosPoint, worker int, value int64) {
	if e.chaos != nil {
		e.chaos.At(point, worker, value)
	}
}
