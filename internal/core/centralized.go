package core

import (
	"sync"
	"sync/atomic"

	"optibfs/internal/rng"
	"optibfs/internal/stats"
)

// bindCentralized wires BFS_C (§IV-A1) onto pooled state: all p
// workers fetch segments from the centralized queue pool by advancing
// the global <q, f> indices under one global lock. Exploration itself
// is lock-free because dispatched segments are disjoint.
func bindCentralized(st *state) binding {
	p := st.opt.Workers

	var mu sync.Mutex
	var gq int // global queue index, protected by mu

	perLevel := func(id int) {
		c := &st.counters[id]
		out := st.blk[id]
		for {
			if st.aborted() {
				break
			}
			// Fetch the next available segment under the global lock.
			mu.Lock()
			c.LockAcquisitions++
			for gq < p && atomic.LoadInt64(&st.in[gq].front) >= st.in[gq].origR {
				gq++
				c.FetchRetries++
			}
			if gq >= p {
				mu.Unlock()
				break
			}
			k := gq
			q := &st.in[k]
			f := atomic.LoadInt64(&q.front)
			end := f + st.segmentSize(q.origR-f)
			if end > q.origR {
				end = q.origR
			}
			atomic.StoreInt64(&q.front, end)
			mu.Unlock()
			c.Fetches++
			st.beat(id)
			st.traceEvent(id, EventFetch, -1, end-f)

			for j := f; j < end; j++ {
				if j+1 < end {
					// Warm the next vertex's CSR offsets while this
					// one's adjacency is scanned (dispatched segments
					// are disjoint, so the peek is a plain read).
					st.prefetchVertex(q.buf[j+1] - 1)
				}
				v := q.buf[j] - 1
				if !st.claimAllows(k, v) {
					c.VerticesPopped++
					continue
				}
				out = st.exploreVertex(id, v, out)
			}
			st.maybeYield()
		}
		st.blk[id] = st.endLevelOut(id, out)
	}

	return binding{setup: func() { gq = 0 }, perLevel: perLevel}
}

// pool is one centralized queue pool of BFS_DL (§IV-A3): a contiguous
// range [lo, hi) of the input queues plus the pool's shared <q> pointer.
// The per-queue front pointers live in sharedQueue. Both q and the
// fronts are updated with plain atomic stores — no locks, no RMW — so
// they can move backwards under races; the zero-on-read rule below
// keeps duplicate exploration bounded and correctness intact.
type pool struct {
	lo, hi int64
	q      int64 // atomic; current queue index within [lo, hi)
	_      [40]byte
}

// bindDecentralized wires BFS_CL (Pools=1) and BFS_DL (Pools=j) onto
// pooled state: lockfree centralized-queue BFS with optimistic
// parallelization. The pools, RNG streams, and closures are built once
// per engine and reused by every run.
func bindDecentralized(st *state) binding {
	// exploreSegmentLockfree zeroes every slot it pops, so the
	// per-level unconsumed-slot audit applies.
	st.slotAudit = true
	opt := st.opt
	p := opt.Workers
	j := opt.Pools
	pools := make([]pool, j)
	per := int64((p + j - 1) / j)
	for pi := range pools {
		pools[pi].lo = int64(pi) * per
		pools[pi].hi = pools[pi].lo + per
		if pools[pi].hi > int64(p) {
			pools[pi].hi = int64(p)
		}
	}
	rngs := make([]*rng.Xoshiro256, p)
	for i := range rngs {
		rngs[i] = rng.NewXoshiro256(opt.Seed ^ rng.Mix64(uint64(i)+1))
	}
	poolRetries := maxSteal(opt.MaxStealFactor, j)

	// fetch grabs one segment from pl without locks or atomic RMW:
	// load the pool's q, walk forward to the first queue whose front is
	// before its rear, then store the advanced front and the new q.
	// Concurrent fetches can both observe the same front (overlapping
	// segments) or store an older, smaller front/q (backward motion,
	// Figure 1); both only cause duplicate exploration.
	fetch := func(id int, pl *pool, c *stats.Counters) (qi, f, end int64, ok bool) {
		k := atomic.LoadInt64(&pl.q)
		if k < pl.lo || k >= pl.hi {
			k = pl.lo
		}
		for {
			if k >= pl.hi {
				return 0, 0, 0, false
			}
			q := &st.in[k]
			f = atomic.LoadInt64(&q.front)
			if f < q.origR {
				end = f + st.segmentSize(q.origR-f)
				if end > q.origR {
					end = q.origR
				}
				st.chaosAt(ChaosPoolStore, id, k)
				atomic.StoreInt64(&pl.q, k)
				st.chaosAt(ChaosFrontStore, id, end)
				atomic.StoreInt64(&q.front, end)
				c.Fetches++
				return k, f, end, true
			}
			k++
			c.FetchRetries++
		}
	}

	perLevel := func(id int) {
		c := &st.counters[id].Counters
		r := rngs[id]
		out := st.blk[id]
		// Each worker starts at a random pool (same-socket biased when
		// a NUMA topology is simulated).
		myPool := st.pickPool(r, id, j)
		pl := &pools[myPool]
		for {
			if st.aborted() {
				break
			}
			qi, f, end, ok := fetch(id, pl, c)
			if !ok {
				// Pool empty: retry random pools up to c·j·log2(j)
				// times (balls-and-bins bound, §IV-A3).
				found := false
				for t := 0; t < poolRetries && !found; t++ {
					cand := st.pickPool(r, id, j)
					pl2 := &pools[cand]
					qi, f, end, ok = fetch(id, pl2, c)
					if ok {
						pl = pl2
						found = true
					}
				}
				// The random bound governs load balance, not
				// termination: pool queues have no owner, so if every
				// draw above misses the one pool still holding work
				// (likely for small j), exiting now would strand its
				// queues for the whole level. Sweep all pools
				// deterministically before declaring the level drained.
				for cand := 0; cand < j && !found; cand++ {
					pl2 := &pools[cand]
					qi, f, end, ok = fetch(id, pl2, c)
					if ok {
						pl = pl2
						found = true
					}
				}
				if !found {
					break
				}
			}
			st.beat(id)
			st.traceEvent(id, EventFetch, -1, end-f)
			out = st.exploreSegmentLockfree(id, int(qi), f, end, out)
			st.maybeYield()
		}
		st.blk[id] = st.endLevelOut(id, out)
	}

	setup := func() {
		for pi := range pools {
			atomic.StoreInt64(&pools[pi].q, pools[pi].lo)
		}
	}
	return binding{
		setup:    setup,
		perLevel: perLevel,
		post:     func(res *Result) { res.Pools = j },
		rngs:     rngs,
		rngSalt:  1,
	}
}

// exploreSegmentLockfree walks queue qi's slots [f, end), zeroing each
// slot as it is read (the paper's duplicate-suppression trick) and
// stopping early at a 0 slot, which means either another worker already
// explored from there or the queue's sentinel was reached. Stopping
// only at 0 — never by consulting a (possibly stale) rear pointer —
// guarantees no queue entry is skipped.
func (st *state) exploreSegmentLockfree(id, qi int, f, end int64, out []int32) []int32 {
	buf := st.in[qi].buf
	for j := f; j < end; j++ {
		slot := atomic.LoadInt32(&buf[j])
		if slot == emptySlot {
			break
		}
		st.chaosAt(ChaosSlotZero, id, j)
		atomic.StoreInt32(&buf[j], emptySlot)
		// Peek the next slot (atomic: overlapping segments zero slots
		// concurrently) and warm its vertex's CSR offsets under the
		// current vertex's adjacency scan.
		if j+1 < end {
			if nxt := atomic.LoadInt32(&buf[j+1]); nxt != emptySlot {
				st.prefetchVertex(nxt - 1)
			}
		}
		v := slot - 1
		if !st.claimAllows(qi, v) {
			st.counters[id].VerticesPopped++
			continue
		}
		out = st.exploreVertex(id, v, out)
	}
	return out
}

// pickPool selects a pool index, preferring the worker's simulated
// socket group with probability SameSocketBias when Sockets > 1.
func (st *state) pickPool(r *rng.Xoshiro256, id, j int) int {
	if st.opt.Sockets > 1 && r.Float64() < st.opt.SameSocketBias {
		lo, hi := socketRange(socketOf(id, st.opt.Workers, st.opt.Sockets), j, st.opt.Sockets)
		if hi > lo {
			return lo + r.Intn(hi-lo)
		}
	}
	return r.Intn(j)
}

// socketOf maps worker id to its simulated socket.
func socketOf(id, p, sockets int) int { return id * sockets / p }

// socketRange returns the contiguous range [lo, hi) of k items
// (pools or workers) assigned to socket s of `sockets`.
func socketRange(s, k, sockets int) (lo, hi int) {
	lo = s * k / sockets
	hi = (s + 1) * k / sockets
	return lo, hi
}
