package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync/atomic"

	"optibfs/internal/graph"
	"optibfs/internal/reorder"
	"optibfs/internal/rng"
)

// Engine is a reusable BFS handle bound to one graph and one resolved
// option set. It owns every piece of per-run state — the dist/parent/
// claim arrays, the p shared input queues and private output buffers,
// per-worker counters, trace buffers, and the RNG streams — plus, with
// Options.PersistentWorkers, the worker goroutines themselves, so that
// repeated Run calls on a warm engine allocate nothing.
//
// Sharing contract: the graph is immutable and may be shared by any
// number of engines and goroutines; an Engine itself is single-caller —
// run at most one search on it at a time (concurrent multi-source work
// uses one engine per goroutine over the shared graph).
//
// The *Result a run returns aliases the engine's pooled arrays and is
// valid only until the engine's next run; callers that keep distances
// across runs must copy them. The package-level Run/RunContext remain
// the one-shot path (a fresh engine per call), under which the old
// fresh-arrays behavior is preserved exactly.
type Engine struct {
	g      *graph.CSR
	algo   Algorithm
	opt    Options
	impl   engineImpl
	closed bool

	// Reorder machinery (Options.Reorder). The backend runs on rg, the
	// relabeled CSR; perm maps original ids to relabeled ones and inv
	// maps back. RunContext translates the source into the relabeled
	// space and remapResult translates Dist/Parent back out, so callers
	// — validation, golden tests, and all — only ever see original ids.
	// (Per-worker trace events and the timeline remain in relabeled
	// space; they describe the traversal the engine actually ran.)
	// rmDist/rmParent are the pooled remap buffers, allocated once so
	// warm reordered runs still allocate nothing.
	rg       *graph.CSR
	perm     []int32
	inv      []int32
	rmDist   []int32
	rmParent []int32

	// baseGoal is the construction-time goal from Options.Target /
	// Options.MaxDepth, held in relabeled space so RunGoal can restore
	// it on the impl after a per-run override.
	baseGoal Goal
}

// engineImpl is the per-family backend behind an Engine. run returns
// the (possibly partial) Result together with the abort error, if any:
// *WorkerPanicError, *StallError, or ErrPoisoned. setGoal rebinds the
// termination goal between runs (vertex+1 target encoding, relabeled
// space); it must not be called while a search is in flight.
type engineImpl interface {
	run(ctx context.Context, src int32) (*Result, error)
	reseed(seed uint64)
	setChaos(h ChaosHook)
	setGoal(target, depth int32)
	close()
}

// binding wires one runner family's per-level machinery onto pooled
// state: setup/perLevel carry runLevels' contract, post (optional)
// annotates the Result after finish, and rngs/rngSalt expose the
// family's per-worker streams so Reseed can restart them in place.
// A binding is built once per engine; its closures are reused by every
// run so the steady state allocates nothing.
type binding struct {
	setup    func()
	perLevel func(id int)
	post     func(res *Result)
	rngs     []*rng.Xoshiro256
	rngSalt  uint64
}

// bindFunc builds a family's binding over a state; called once per
// engine by NewEngine.
type bindFunc func(st *state) binding

// NewEngine builds a reusable engine for algo over g. opt is resolved
// with the same defaults as Run; with Options.PersistentWorkers the
// worker goroutines are spawned here and live until Close.
func NewEngine(g *graph.CSR, algo Algorithm, opt Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	opt = opt.withDefaults()
	if err := validGoal(opt.goal(), g.NumVertices()); err != nil {
		return nil, err
	}
	rg := g
	var perm, inv []int32
	switch opt.Reorder {
	case ReorderNone:
	case ReorderDegree, ReorderBFS:
		var p reorder.Permutation
		if opt.Reorder == ReorderDegree {
			p = reorder.ByDegreeDescending(g)
		} else {
			var err error
			if p, err = reorder.ByBFS(g, 0); err != nil {
				return nil, fmt.Errorf("core: reorder: %w", err)
			}
		}
		r, err := reorder.Apply(g, p)
		if err != nil {
			return nil, fmt.Errorf("core: reorder: %w", err)
		}
		rg, perm, inv = r, p, p.Inverse()
	default:
		return nil, fmt.Errorf("core: unknown reorder mode %q", opt.Reorder)
	}
	e := &Engine{g: g, algo: algo, opt: opt, rg: rg, perm: perm, inv: inv}
	if perm != nil {
		e.rmDist = make([]int32, g.NumVertices())
		if opt.TrackParents {
			e.rmParent = make([]int32, g.NumVertices())
		}
		// The backend traverses relabeled ids, so the target must be
		// translated the same way the source is in RunContext.
		if opt.Target > 0 {
			opt.Target = perm[opt.Target-1] + 1
		}
	}
	e.baseGoal = opt.goal()
	if algo == Serial {
		if opt.Hybrid {
			// Serial has no per-level binding to interpose the switch
			// on; the serial baseline stays a pure queue walk.
			return nil, fmt.Errorf("core: Hybrid requires a parallel variant, not %s", Serial)
		}
		e.impl = newSerialEngine(rg, opt)
		return e, nil
	}
	if algo == BFSCL {
		// BFS_CL is BFS_DL with a single pool (paper §IV-A3).
		opt.Pools = 1
	}
	bf, err := bindingFor(algo)
	if err != nil {
		return nil, err
	}
	e.impl = newParEngine(rg, opt, bf, algo)
	return e, nil
}

// bindingFor maps a parallel variant to its family's binding
// constructor — the one algorithm switch shared by Engine and
// ShardedEngine construction. Serial has no binding (it is not a
// per-level parallel family) and reports unknown like any other
// unrecognized name.
func bindingFor(algo Algorithm) (bindFunc, error) {
	switch algo {
	case BFSC:
		return bindCentralized, nil
	case BFSCL, BFSDL:
		return bindDecentralized, nil
	case BFSW:
		return bindWorkSteal(true, false), nil
	case BFSWL:
		return bindWorkSteal(false, false), nil
	case BFSWS:
		return bindWorkSteal(true, true), nil
	case BFSWSL:
		return bindWorkSteal(false, true), nil
	case BFSEL:
		return bindEdgePartitioned, nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", algo)
	}
}

// Run executes one search from src, reusing the engine's pooled state.
// The returned Result is valid only until the engine's next run.
func (e *Engine) Run(src int32) (*Result, error) {
	return e.RunContext(context.Background(), src)
}

// RunContext is Run with cancellation: the search checks ctx at every
// level boundary (workers always finish the level in flight, so
// cancellation latency is one level; with Options.StallTimeout set the
// watchdog additionally interrupts mid-level) and returns ctx's error
// if it fires. A canceled or stalled run leaves the engine fully
// reusable — the next run invalidates the partial state via the epoch
// bump like any other — while a worker panic poisons it (see
// ErrPoisoned). Aborted runs return their partial Result alongside the
// error, with every settled distance plus the progress counters; like
// any other Result it aliases pooled state and is valid only until the
// engine's next run.
func (e *Engine) RunContext(ctx context.Context, src int32) (*Result, error) {
	if e.closed {
		return nil, fmt.Errorf("core: engine is closed")
	}
	if src < 0 || src >= e.g.NumVertices() {
		return nil, fmt.Errorf("core: source %d out of range [0,%d)", src, e.g.NumVertices())
	}
	if e.perm != nil {
		src = e.perm[src]
	}
	res, err := e.impl.run(ctx, src)
	if e.perm != nil && res != nil {
		e.remapResult(res)
	}
	if err != nil {
		return res, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return res, cerr
	}
	return res, nil
}

// RunGoal is RunContext with a per-run termination goal: the search
// stops at the first level barrier where goal.Target's distance has
// committed or the completed-level count reaches goal.MaxDepth, and the
// partial Result (marked Truncated) is exact for every closed level.
// The override lasts for this run only — the engine's construction-time
// Options.Target/MaxDepth goal is restored afterward — so one warm
// engine serves queries with different goals without rebuilding. The
// zero Goal runs unbounded, exactly like RunContext.
func (e *Engine) RunGoal(ctx context.Context, src int32, goal Goal) (*Result, error) {
	if e.closed {
		return nil, fmt.Errorf("core: engine is closed")
	}
	if err := validGoal(goal, e.g.NumVertices()); err != nil {
		return nil, err
	}
	if e.perm != nil && goal.Target > 0 {
		goal.Target = e.perm[goal.Target-1] + 1
	}
	e.impl.setGoal(goal.Target, goal.MaxDepth)
	defer e.impl.setGoal(e.baseGoal.Target, e.baseGoal.MaxDepth)
	return e.RunContext(ctx, src)
}

// remapResult translates a relabeled-space Result back into original
// vertex ids in the engine's pooled remap buffers: Dist is permuted
// (rmDist[old] = Dist[perm[old]]) and each Parent entry is additionally
// mapped through the inverse permutation, so parent pointers name
// original ids too. Aggregate fields (levels, counters, level sizes)
// are id-agnostic and pass through untouched.
func (e *Engine) remapResult(res *Result) {
	for old, newID := range e.perm {
		e.rmDist[old] = res.Dist[newID]
	}
	res.Dist = e.rmDist
	if res.Parent == nil {
		return
	}
	if e.rmParent == nil {
		// Parent tracking enabled by a path that bypassed TrackParents
		// at construction; allocate once and pool thereafter.
		e.rmParent = make([]int32, len(res.Parent))
	}
	for old, newID := range e.perm {
		if p := res.Parent[newID]; p >= 0 {
			e.rmParent[old] = e.inv[p]
		} else {
			e.rmParent[old] = -1
		}
	}
	res.Parent = e.rmParent
}

// Permutation returns the vertex relabeling installed by
// Options.Reorder (newID = perm[oldID]), or nil when the engine runs on
// the graph as given. The slice aliases engine state; do not modify.
func (e *Engine) Permutation() []int32 { return e.perm }

// RunMany executes one search per source in order, invoking visit (if
// non-nil) after each with the source's index and pooled Result. It
// stops at the first error, whether from a run or from visit. As with
// Run, each Result is valid only until the next search starts.
func (e *Engine) RunMany(sources []int32, visit func(i int, res *Result) error) error {
	for i, src := range sources {
		res, err := e.Run(src)
		if err != nil {
			return err
		}
		if visit != nil {
			if err := visit(i, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reseed restarts the engine's victim/pool-selection RNG streams as if
// the engine had been built with Options.Seed = seed, without
// reallocating them. It makes a run on a warm engine draw the same
// random choices as a one-shot Run with that seed.
func (e *Engine) Reseed(seed uint64) {
	e.opt.Seed = seed
	e.impl.reseed(seed)
}

// SetChaos installs (or, with nil, removes) a chaos hook between runs,
// replacing Options.Chaos for subsequent searches. Must not be called
// while a search is in flight.
func (e *Engine) SetChaos(h ChaosHook) {
	e.opt.Chaos = h
	e.impl.setChaos(h)
}

// Algorithm returns the variant this engine runs.
func (e *Engine) Algorithm() Algorithm { return e.algo }

// Graph returns the graph this engine is bound to.
func (e *Engine) Graph() *graph.CSR { return e.g }

// Options returns the engine's resolved options (defaults applied).
func (e *Engine) Options() Options { return e.opt }

// Close releases the engine. With PersistentWorkers it terminates the
// worker goroutines; in all cases further runs fail. Close is
// idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.impl.close()
}

// parEngine backs every parallel variant: pooled state plus the
// family's binding, and optionally a runPool of persistent workers.
// poisoned is set when a run ends on a worker panic: the pooled state
// a worker abandoned mid-mutation must not be reused, so every later
// run fails fast with ErrPoisoned (the persistent workers themselves
// survive — they recovered and parked at the gate — so Close still
// drains them normally).
type parEngine struct {
	st       *state
	b        binding
	pool     *runPool
	poisoned bool
}

func newParEngine(g *graph.CSR, opt Options, bf bindFunc, algo Algorithm) *parEngine {
	st := allocState(g, opt)
	st.algo = algo
	e := &parEngine{st: st}
	e.b = bf(st)
	if opt.Hybrid {
		// Wrap before the pool captures the binding so persistent
		// workers run the direction-switched perLevel too.
		e.b = wrapHybrid(st, e.b)
	}
	if opt.PersistentWorkers {
		e.pool = newRunPool(st, e.b.setup, e.b.perLevel, algo)
	}
	return e
}

func (e *parEngine) run(ctx context.Context, src int32) (*Result, error) {
	if e.poisoned {
		return nil, ErrPoisoned
	}
	st := e.st
	st.opt.ctx = ctx
	st.beginRun(src)
	stopWatch := st.startWatchdog(ctx)
	if e.pool != nil {
		e.pool.runSearch()
	} else {
		st.runLevels(e.b.setup, e.b.perLevel)
	}
	if stopWatch != nil {
		stopWatch()
	}
	res := st.finish()
	if e.b.post != nil {
		e.b.post(res)
	}
	if err := st.abortError(); err != nil {
		if st.abortPoisons() {
			e.poisoned = true
		}
		return res, err
	}
	return res, nil
}

func (e *parEngine) reseed(seed uint64) {
	e.st.opt.Seed = seed
	for i, r := range e.b.rngs {
		r.Seed(seed ^ rng.Mix64(uint64(i)+e.b.rngSalt))
	}
}

func (e *parEngine) setChaos(h ChaosHook) {
	e.st.opt.Chaos = h
	e.st.chaos = h
	if a, ok := h.(ChaosLevelAuditor); ok {
		e.st.levelAudit = a
	} else {
		e.st.levelAudit = nil
	}
	if a, ok := h.(ChaosFlushAuditor); ok {
		e.st.flushAudit = a
	} else {
		e.st.flushAudit = nil
	}
}

func (e *parEngine) setGoal(target, depth int32) {
	e.st.setGoal(target, depth)
}

func (e *parEngine) close() {
	if e.pool != nil {
		e.pool.close()
	}
}

// runPool owns one long-lived goroutine per worker for the engine's
// whole lifetime — the Go analogue of a persistent OpenMP parallel
// region (§IV-D raises the cilk-vs-OpenMP question). Each search is one
// pass through the gate: the caller and all p workers synchronize on a
// (p+1)-party barrier at the start and end of a search, with the usual
// two-pass level barrier in between (after the work, and after worker 0
// publishes the swap/setup transition). Keeping the goroutines alive
// removes the final steady-state allocations: every `go f(id)` spawn
// heap-allocates its closure, once per level — or per run — otherwise.
type runPool struct {
	st       *state
	setup    func()
	perLevel func(id int)
	algo     Algorithm // pprof label on the worker goroutines
	gate     *barrier  // p workers + the caller
	level    *barrier  // p workers
	stop     bool      // set by close before its gate pass
	done     bool      // current search finished; written by worker 0
}

func newRunPool(st *state, setup func(), perLevel func(id int), algo Algorithm) *runPool {
	pw := &runPool{
		st:       st,
		setup:    setup,
		perLevel: perLevel,
		algo:     algo,
		gate:     newBarrier(st.opt.Workers + 1),
		level:    newBarrier(st.opt.Workers),
	}
	for id := 0; id < st.opt.Workers; id++ {
		go pw.worker(id)
	}
	return pw
}

func (pw *runPool) worker(id int) {
	st := pw.st
	// Label the goroutine so CPU profiles attribute samples to the
	// algorithm and worker, and split search time from gate parking.
	// Both label sets are built once here; swapping between them is a
	// pointer store in the runtime, so the per-search cost is two
	// SetGoroutineLabels calls and the steady state allocates nothing.
	idle := pprof.WithLabels(context.Background(), pprof.Labels(
		"algo", string(pw.algo), "worker", strconv.Itoa(id), "level-phase", "idle"))
	search := pprof.WithLabels(context.Background(), pprof.Labels(
		"algo", string(pw.algo), "worker", strconv.Itoa(id), "level-phase", "search"))
	pprof.SetGoroutineLabels(idle)
	for {
		pw.gate.wait() // park until a search arrives (or close)
		if pw.stop {
			return
		}
		pprof.SetGoroutineLabels(search)
		for !pw.done {
			st.workerLevel(id, pw.perLevel)
			pw.level.wait() // all workers finished the level
			if id == 0 {
				pw.advance()
				if st.aborted() {
					// Catches a panic inside advance itself (recovered
					// there before done could be set) as well as any
					// worker abort: the search ends at this boundary.
					pw.done = true
				}
			}
			pw.level.wait() // transition published to everyone
		}
		pprof.SetGoroutineLabels(idle)
		pw.gate.wait() // hand the state back to the caller
	}
}

// advance is worker 0's between-barriers transition: audit (skipped
// after an abort, which legitimately leaves queue slots unconsumed and
// blocks unflushed), record, promote the next frontier, and prime the
// next level's dispatch state. It runs under the recovery barrier too:
// a panic in a binding's setup poisons the run instead of killing the
// process, and the caller's abort check turns it into termination.
func (pw *runPool) advance() {
	st := pw.st
	defer st.recoverWorker(0)
	if !st.aborted() {
		st.auditLevel()
	}
	st.recordLevel()
	st.level++
	atomic.StoreInt32(&st.levelA, st.level)
	st.swap()
	st.hybridAdvance()
	if st.volume() == 0 || st.canceled() || st.aborted() || st.goalDone() {
		pw.done = true
		return
	}
	if pw.setup != nil {
		pw.setup()
	}
}

// runSearch drives one primed search through the pool; the caller
// blocks until the workers hand the state back. The flag writes below
// are ordered by the gate barrier's lock, so plain fields suffice.
func (pw *runPool) runSearch() {
	st := pw.st
	if st.volume() == 0 || st.canceled() || st.goalDone() {
		return
	}
	pw.done = false
	if pw.setup != nil {
		pw.setup()
	}
	pw.gate.wait() // release the workers into the search
	pw.gate.wait() // wait for the search to finish
}

func (pw *runPool) close() {
	pw.stop = true
	pw.gate.wait()
}
