package core

import (
	"sort"
	"sync/atomic"
)

// bindEdgePartitioned wires BFS_EL onto pooled state — the variant the
// paper sketches as future work in §IV-D: "divide the edges evenly
// instead of the vertices, while using dynamic load-balancing as
// before. We expect this approach to be more scalable."
//
// Per level the frontier's adjacency lists are treated as one virtual
// edge array of length E (a prefix-sum over frontier out-degrees maps
// an edge index back to its frontier vertex). Workers fetch fixed-size
// edge ranges from a shared cursor with the same optimistic plain
// load/store protocol as BFS_CL — concurrent fetches may overlap or
// move the cursor backwards, costing only duplicate edge scans — so
// the dispatch unit is work (edges), not vertices, and a single
// high-degree hotspot is automatically spread across many segments.
func bindEdgePartitioned(st *state) binding {
	g := st.g
	p := st.opt.Workers

	// Per-level shared state: the flattened frontier, the prefix sums
	// of its degrees, and the optimistic edge cursor.
	var (
		frontier []int32
		prefix   []int64 // prefix[i] = edges before frontier[i]; len+1
		cursor   int64   // atomic; next edge index to dispatch
	)

	setup := func() {
		frontier = frontier[:0]
		for qi := range st.in {
			q := &st.in[qi]
			for _, slot := range q.buf[:q.origR] {
				frontier = append(frontier, slot-1)
			}
		}
		if cap(prefix) < len(frontier)+1 {
			prefix = make([]int64, len(frontier)+1)
		}
		prefix = prefix[:len(frontier)+1]
		prefix[0] = 0
		for i, v := range frontier {
			d := g.OutDegree(v)
			prefix[i+1] = prefix[i] + d
			if d == 0 {
				// Zero-degree frontier vertices own no edge range, so
				// the dispatch loop never visits them; account their
				// pop here to keep Pops >= Reached.
				st.counters[0].VerticesPopped++
			}
		}
		atomic.StoreInt64(&cursor, 0)
	}

	perLevel := func(id int) {
		c := &st.counters[id].Counters
		out := st.blk[id]
		totalEdges := prefix[len(prefix)-1]
		// Edge segments sized like the centralized vertex segments,
		// but in edge units.
		seg := totalEdges/int64(8*p) + 1
		const maxSeg = 8192
		if seg > maxSeg {
			seg = maxSeg
		}
		for {
			if st.aborted() {
				break
			}
			// Optimistic fetch: plain load + plain store. Two workers
			// can both observe the same cursor (overlapping ranges) or
			// store an older value (backward motion); both only cause
			// duplicate edge scans, never omissions, because every
			// stored value e+seg covers the range it was read from.
			e := atomic.LoadInt64(&cursor)
			if e >= totalEdges {
				break
			}
			end := e + seg
			if end > totalEdges {
				end = totalEdges
			}
			atomic.StoreInt64(&cursor, end)
			c.Fetches++
			st.beat(id)
			st.traceEvent(id, EventFetch, -1, end-e)

			// Map the edge range back to (vertex, offset) pairs.
			// sort.Search finds the first frontier slot whose prefix
			// exceeds e, i.e. the vertex owning edge e.
			i := sort.Search(len(frontier), func(k int) bool { return prefix[k+1] > e })
			for ; i < len(frontier) && prefix[i] < end; i++ {
				v := frontier[i]
				nb := g.Neighbors(v)
				lo := e - prefix[i]
				if lo < 0 {
					lo = 0
				}
				hi := end - prefix[i]
				if hi > int64(len(nb)) {
					hi = int64(len(nb))
				}
				if lo == 0 {
					// Count the vertex once per full-list owner: the
					// worker that scans an adjacency list's first edge
					// accounts for the pop.
					c.VerticesPopped++
				}
				c.EdgesScanned += hi - lo
				out = st.scanNeighbors(id, v, nb[lo:hi], out)
			}
			st.maybeYield()
		}
		st.blk[id] = st.endLevelOut(id, out)
	}

	return binding{
		setup:    setup,
		perLevel: perLevel,
		// One shared edge cursor: same contention shape as BFS_CL.
		post: func(res *Result) { res.Pools = 1 },
	}
}
