package core

import (
	"sync"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

// TestReorderSemanticsPreserved is the dedicated proof that
// Options.Reorder is invisible to callers: for both relabeling modes,
// across serial and parallel variants, every Result must pass
// Graph500-style validation against the ORIGINAL graph — distances
// equal the original-id oracle and parent arrays (mapped back through
// the inverse permutation by the engine) form a valid BFS tree in
// original ids.
func TestReorderSemanticsPreserved(t *testing.T) {
	g := engineTestGraph(t)
	sources := []int32{0, 1, 977, 2047}
	oracle := make(map[int32][]int32, len(sources))
	for _, src := range sources {
		oracle[src] = graph.ReferenceBFS(g, src)
	}
	for _, mode := range []ReorderMode{ReorderDegree, ReorderBFS} {
		for _, algo := range []Algorithm{Serial, BFSC, BFSCL, BFSWL, BFSWSL, BFSEL} {
			e, err := NewEngine(g, algo, Options{
				Workers: 4, Seed: 11, TrackParents: true, Reorder: mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if e.Graph() != g {
				t.Fatalf("%s/%s: Graph() does not return the original graph", algo, mode)
			}
			if e.Permutation() == nil {
				t.Fatalf("%s/%s: no permutation installed", algo, mode)
			}
			for _, src := range sources {
				res, err := e.Run(src)
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.EqualDistances(res.Dist, oracle[src]); err != nil {
					t.Errorf("%s reorder=%s src=%d: %v", algo, mode, src, err)
				}
				if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
					t.Errorf("%s reorder=%s src=%d: %v", algo, mode, src, err)
				}
				if err := graph.ValidateParents(g, src, res.Dist, res.Parent); err != nil {
					t.Errorf("%s reorder=%s src=%d: %v", algo, mode, src, err)
				}
			}
			e.Close()
		}
	}
}

// TestReorderParentsMapThroughInverse pins the exact remap arithmetic
// on a graph small enough to check by hand against the relabeled run:
// a rerun of the engine's backend on the relabeled graph must agree
// with the public Result entry for every vertex once both sides pass
// through the permutation — Dist[old] == rDist[perm[old]] and
// Parent[old] == inv[rParent[perm[old]]].
func TestReorderParentsMapThroughInverse(t *testing.T) {
	g, err := gen.Graph500RMAT(1<<10, 1<<13, 42, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, BFSWSL, Options{Workers: 4, Seed: 3, TrackParents: true, Reorder: ReorderDegree})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	perm := e.Permutation()

	// Independent ground truth in the relabeled space: a serial engine
	// on the engine's internal relabeled graph.
	se, err := NewEngine(e.rg, Serial, Options{Workers: 1, TrackParents: true})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	rres, err := se.Run(perm[0])
	if err != nil {
		t.Fatal(err)
	}

	inv := make([]int32, len(perm))
	for old, newID := range perm {
		inv[newID] = int32(old)
	}
	for old := range perm {
		if got, want := res.Dist[old], rres.Dist[perm[old]]; got != want {
			t.Fatalf("Dist[%d] = %d, want relabeled dist %d", old, got, want)
		}
		p := res.Parent[old]
		if p < 0 {
			if rres.Dist[perm[old]] != graph.Unreached && old != 0 {
				t.Fatalf("Parent[%d] = -1 for reached non-source vertex", old)
			}
			continue
		}
		// The engine's parent must be SOME valid relabeled-space parent
		// mapped through inv: one closer level and an actual in-edge.
		if res.Dist[p]+1 != res.Dist[old] && !(old == 0 && p == 0) {
			t.Fatalf("Parent[%d] = %d not one level closer", old, p)
		}
	}
	// Spot-check that the serial ground truth's parents, mapped through
	// inv by hand, validate in original ids — the same arithmetic
	// remapResult performs.
	mapped := make([]int32, len(perm))
	dist := make([]int32, len(perm))
	for old, newID := range perm {
		dist[old] = rres.Dist[newID]
		if p := rres.Parent[newID]; p >= 0 {
			mapped[old] = inv[p]
		} else {
			mapped[old] = -1
		}
	}
	if err := graph.ValidateParents(g, 0, dist, mapped); err != nil {
		t.Fatalf("hand-mapped relabeled parents invalid in original ids: %v", err)
	}
}

// TestReorderRejectsUnknownMode pins the construction-time error.
func TestReorderRejectsUnknownMode(t *testing.T) {
	g := engineTestGraph(t)
	if _, err := NewEngine(g, BFSWL, Options{Workers: 2, Reorder: "sorted-by-vibes"}); err == nil {
		t.Fatal("unknown reorder mode accepted")
	}
}

// TestBatchedPublicationUnderRace is the -race regression the batching
// work requires: tiny publication blocks (maximum flush traffic) with
// the level timeline and dispatch tracing enabled concurrently, across
// the lockfree families, with concurrent engines in flight so the race
// detector sees batched flushes, steals, timeline sweeps, and trace
// appends interleaved.
func TestBatchedPublicationUnderRace(t *testing.T) {
	g := engineTestGraph(t)
	want := graph.ReferenceBFS(g, 0)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for _, algo := range []Algorithm{BFSCL, BFSWL, BFSWSL, BFSEL} {
		for _, block := range []int{1, 2, 64} {
			wg.Add(1)
			go func(algo Algorithm, block int) {
				defer wg.Done()
				e, err := NewEngine(g, algo, Options{
					Workers: 4, Seed: uint64(block), PublishBlock: block,
					LevelTimeline: true, TraceCapacity: 512,
					PersistentWorkers: true, Phase2Stealing: true,
				})
				if err != nil {
					errs <- err
					return
				}
				defer e.Close()
				for i := 0; i < 3; i++ {
					res, err := e.Run(0)
					if err != nil {
						errs <- err
						return
					}
					if err := graph.EqualDistances(res.Dist, want); err != nil {
						errs <- err
						return
					}
				}
			}(algo, block)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
