package core

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func engineTestGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := gen.ChungLu(2048, 16384, 2.1, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEngineReuseMatchesOracle runs every variant repeatedly on one
// engine, alternating sources, and checks each search against the
// serial reference — the basic state-reuse contract: a second run must
// not see any trace of the first.
func TestEngineReuseMatchesOracle(t *testing.T) {
	g := engineTestGraph(t)
	sources := []int32{0, 1, 5, 0, 1023, 5}
	oracle := map[int32][]int32{}
	for _, s := range sources {
		if oracle[s] == nil {
			oracle[s] = graph.ReferenceBFS(g, s)
		}
	}
	for _, persistent := range []bool{false, true} {
		for _, algo := range Algorithms {
			e, err := NewEngine(g, algo, Options{Workers: 4, Seed: 42, PersistentWorkers: persistent})
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range sources {
				res, err := e.Run(s)
				if err != nil {
					t.Fatalf("%s persistent=%v run %d: %v", algo, persistent, i, err)
				}
				if err := graph.EqualDistances(res.Dist, oracle[s]); err != nil {
					t.Fatalf("%s persistent=%v run %d from %d: %v", algo, persistent, i, s, err)
				}
			}
			e.Close()
		}
	}
}

// TestOneShotFreshArrays checks that the package-level Run keeps the
// pre-engine contract: every call returns its own arrays, not a pooled
// view a later call would overwrite.
func TestOneShotFreshArrays(t *testing.T) {
	g := engineTestGraph(t)
	r1, err := Run(g, 0, BFSCL, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, 0, BFSCL, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if &r1.Dist[0] == &r2.Dist[0] {
		t.Fatal("one-shot Run results share a Dist backing array")
	}
}

// TestEngineClosed checks that a closed engine refuses to run and that
// Close is idempotent.
func TestEngineClosed(t *testing.T) {
	g := engineTestGraph(t)
	e, err := NewEngine(g, BFSWSL, Options{Workers: 4, PersistentWorkers: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if _, err := e.Run(0); err == nil {
		t.Fatal("Run on a closed engine succeeded")
	}
}

// cancelAfterHook cancels a context after n chaos-point callbacks —
// reliably mid-level, since the hooks fire inside level exploration.
type cancelAfterHook struct {
	remaining int64 // atomic countdown
	cancel    context.CancelFunc
}

func (h *cancelAfterHook) At(ChaosPoint, int, int64) {
	if atomic.AddInt64(&h.remaining, -1) == 0 {
		h.cancel()
	}
}

// TestEngineCancelMidLevelThenReuse cancels a run in the middle of a
// level — leaving queues partially consumed and dist partially written —
// and checks the engine recovers: the next Run must match the serial
// oracle exactly.
func TestEngineCancelMidLevelThenReuse(t *testing.T) {
	g, err := gen.LayeredRandom(3000, 15000, 60, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, algo := range []Algorithm{BFSCL, BFSDL, BFSWL, BFSWSL} {
		for _, persistent := range []bool{false, true} {
			e, err := NewEngine(g, algo, Options{Workers: 4, Seed: 9, PersistentWorkers: persistent})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			e.SetChaos(&cancelAfterHook{remaining: 40, cancel: cancel})
			if _, err := e.RunContext(ctx, 0); err != context.Canceled {
				// A fast run may drain before the 40th hook fires; the
				// reuse check below is still meaningful either way.
				t.Logf("%s persistent=%v: cancellation not observed (err=%v)", algo, persistent, err)
			}
			cancel()
			e.SetChaos(nil)
			res, err := e.Run(0)
			if err != nil {
				t.Fatalf("%s persistent=%v: run after cancel: %v", algo, persistent, err)
			}
			if err := graph.EqualDistances(res.Dist, want); err != nil {
				t.Fatalf("%s persistent=%v: engine not reusable after cancel: %v", algo, persistent, err)
			}
			e.Close()
		}
	}
}

// TestEngineEpochWraparound forces the uint32 epoch counter through 0
// and checks runs on both sides of the wrap: without the full sweep at
// wrap time, stamps from 2^32 runs ago would alias the new epoch and
// leave phantom "visited" vertices.
func TestEngineEpochWraparound(t *testing.T) {
	g := engineTestGraph(t)
	want := graph.ReferenceBFS(g, 0)
	t.Run("parallel", func(t *testing.T) {
		e, err := NewEngine(g, BFSCL, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		e.impl.(*parEngine).st.cur = ^uint32(0) - 1 // two runs from wrapping
		for i := 0; i < 4; i++ {
			res, err := e.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.EqualDistances(res.Dist, want); err != nil {
				t.Fatalf("run %d across wraparound: %v", i, err)
			}
		}
		if cur := e.impl.(*parEngine).st.cur; cur == 0 || cur > 3 {
			t.Fatalf("epoch after wraparound = %d, want in [1,3]", cur)
		}
	})
	t.Run("serial", func(t *testing.T) {
		e, err := NewEngine(g, Serial, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		e.impl.(*serialEngine).cur = ^uint32(0) - 1
		for i := 0; i < 4; i++ {
			res, err := e.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.EqualDistances(res.Dist, want); err != nil {
				t.Fatalf("run %d across wraparound: %v", i, err)
			}
		}
	})
}

// TestEnginesConcurrentOnSharedGraph is the documented sharing
// contract under the race detector: the graph is immutable and shared,
// each engine is single-caller. Two engines over one *graph.CSR run
// concurrently; any write to shared state would trip -race.
func TestEnginesConcurrentOnSharedGraph(t *testing.T) {
	g := engineTestGraph(t)
	want := graph.ReferenceBFS(g, 0)
	iters := 8
	if testing.Short() {
		iters = 3
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			e, err := NewEngine(g, BFSWSL, Options{Workers: 3, Seed: uint64(k + 1), PersistentWorkers: k == 0})
			if err != nil {
				errs <- err
				return
			}
			defer e.Close()
			for i := 0; i < iters; i++ {
				res, err := e.Run(0)
				if err != nil {
					errs <- err
					return
				}
				if err := graph.EqualDistances(res.Dist, want); err != nil {
					errs <- err
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBeginRunReusesBuffers pins the satellite fix: beginRun must
// reseed worker 0's input queue into the pooled buffer (not a fresh
// 2-slot slice) and keep the output queues' grown capacity instead of
// resetting them to 256. It drives beginRun directly — a full run
// rotates buffers through swap, so pointer identity is only defined
// across consecutive beginRun calls.
func TestBeginRunReusesBuffers(t *testing.T) {
	g := engineTestGraph(t)
	e, err := NewEngine(g, BFSCL, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st := e.impl.(*parEngine).st
	if _, err := e.Run(0); err != nil { // grow the pooled buffers
		t.Fatal(err)
	}
	in0 := &st.in[0].buf[0]
	outCaps := make([]int, len(st.out))
	blkCaps := make([]int, len(st.blk))
	for i := range st.out {
		outCaps[i] = cap(st.out[i].buf)
		blkCaps[i] = cap(st.blk[i])
	}
	st.beginRun(5)
	if &st.in[0].buf[0] != in0 {
		t.Fatal("beginRun allocated a fresh input buffer for worker 0")
	}
	for i := range st.out {
		if len(st.out[i].buf) != 0 || cap(st.out[i].buf) != outCaps[i] {
			t.Fatalf("out[%d] after beginRun: len=%d cap=%d, want len=0 cap=%d",
				i, len(st.out[i].buf), cap(st.out[i].buf), outCaps[i])
		}
		if len(st.blk[i]) != 0 || cap(st.blk[i]) != blkCaps[i] {
			t.Fatalf("blk[%d] after beginRun: len=%d cap=%d, want len=0 cap=%d",
				i, len(st.blk[i]), cap(st.blk[i]), blkCaps[i])
		}
	}
	if allocs := testing.AllocsPerRun(10, func() { st.beginRun(5) }); allocs > 0 {
		t.Errorf("beginRun allocates %.1f objects/run, want 0", allocs)
	}
}

// TestEngineRunAllocs asserts the tentpole's steady-state property at
// test time (the benchmarks report it too): a warm persistent-worker
// engine allocates nothing per Run.
func TestEngineRunAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is noisy under -short race runs")
	}
	g := engineTestGraph(t)
	for _, algo := range []Algorithm{BFSCL, BFSWL, BFSWSL} {
		e, err := NewEngine(g, algo, Options{Workers: 4, Seed: 3, PersistentWorkers: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ { // warm the pooled buffers up to size
			if _, err := e.Run(0); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := e.Run(0); err != nil {
				t.Fatal(err)
			}
		})
		e.Close()
		if allocs > 0 {
			t.Errorf("%s: warm Engine.Run allocates %.1f objects/run, want 0", algo, allocs)
		}
	}
}

// TestEngineReseedMatchesFreshEngine checks Reseed's contract: a warm
// engine reseeded to S must draw the same random choices as an engine
// built with Seed: S — observable through the steal/fetch counters
// being produced deterministically under a serialized scheduler is too
// strong, so compare the full distance output plus determinism of the
// RNG streams via a pair of runs.
func TestEngineReseedMatchesFreshEngine(t *testing.T) {
	g := engineTestGraph(t)
	want := graph.ReferenceBFS(g, 0)
	e, err := NewEngine(g, BFSDL, Options{Workers: 4, Pools: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for seed := uint64(1); seed <= 3; seed++ {
		e.Reseed(seed)
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
