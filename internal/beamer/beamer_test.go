package beamer

import (
	"fmt"
	"testing"
	"testing/quick"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func check(t *testing.T, g *graph.CSR, src int32, opt Options) *core.Result {
	t.Helper()
	res, err := Run(g, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, src)
	if err := graph.EqualDistances(res.Dist, want); err != nil {
		t.Fatalf("workers=%d: %v", opt.Workers, err)
	}
	if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
		t.Fatal(err)
	}
	if res.Levels != graph.Eccentricity(want)+1 {
		t.Fatalf("levels=%d want %d", res.Levels, graph.Eccentricity(want)+1)
	}
	return res
}

func TestBeamerCorrectness(t *testing.T) {
	graphs := map[string]func() (*graph.CSR, error){
		"path":     func() (*graph.CSR, error) { return gen.Path(300) },
		"star":     func() (*graph.CSR, error) { return gen.Star(1000) },
		"grid":     func() (*graph.CSR, error) { return gen.Grid2D(20, 20, false) },
		"rmat":     func() (*graph.CSR, error) { return gen.Graph500RMAT(4096, 65536, 3, gen.Options{}) },
		"complete": func() (*graph.CSR, error) { return gen.Complete(80) },
		"chunglu":  func() (*graph.CSR, error) { return gen.ChungLu(4096, 32768, 2.1, 7, gen.Options{}) },
		"disjoint": func() (*graph.CSR, error) {
			return graph.FromEdges(30, []graph.Edge{{Src: 0, Dst: 1}, {Src: 9, Dst: 8}}, graph.BuildOptions{})
		},
	}
	for name, mk := range graphs {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/p%d", name, workers), func(t *testing.T) {
				check(t, g, 0, Options{Options: core.Options{Workers: workers}})
			})
		}
	}
}

func TestBeamerSwitchesDirections(t *testing.T) {
	// A dense low-diameter graph must trigger bottom-up levels; a path
	// must stay entirely top-down.
	dense, err := gen.Graph500RMAT(8192, 262144, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, dense, 0, Options{Options: core.Options{Workers: 4}})
	if res.Counters.BottomUpLevels == 0 {
		t.Fatal("dense graph never went bottom-up")
	}

	path, err := gen.Path(500)
	if err != nil {
		t.Fatal(err)
	}
	res = check(t, path, 0, Options{Options: core.Options{Workers: 4}})
	if res.Counters.BottomUpLevels != 0 {
		t.Fatalf("path used %d bottom-up levels", res.Counters.BottomUpLevels)
	}
	if res.Counters.TopDownLevels == 0 {
		t.Fatal("no top-down levels counted")
	}
}

func TestBeamerBottomUpSavesEdges(t *testing.T) {
	// On a complete graph the bottom-up step should scan far fewer
	// edges than the m a pure top-down BFS scans.
	g, err := gen.Complete(500) // m = 249500
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, g, 0, Options{Options: core.Options{Workers: 4}})
	if res.Counters.EdgesScanned >= g.NumEdges() {
		t.Fatalf("hybrid scanned %d edges of %d: no savings", res.Counters.EdgesScanned, g.NumEdges())
	}
}

func TestBeamerParents(t *testing.T) {
	g, err := gen.ChungLu(4096, 65536, 2.1, 9, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, g, 0, Options{Options: core.Options{Workers: 4, TrackParents: true}})
	if err := graph.ValidateParents(g, 0, res.Dist, res.Parent); err != nil {
		t.Fatal(err)
	}
}

func TestBeamerPrecomputedTranspose(t *testing.T) {
	g, err := gen.Graph500RMAT(1024, 8192, 2, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gT := g.Transpose()
	check(t, g, 0, Options{Options: core.Options{Workers: 4}, Transpose: gT})

	// Mismatched transpose must be rejected.
	small, _ := gen.Path(5)
	if _, err := Run(g, 0, Options{Transpose: small}); err == nil {
		t.Fatal("accepted wrong-size transpose")
	}
}

func TestBeamerInputValidation(t *testing.T) {
	g, _ := gen.Path(5)
	if _, err := Run(nil, 0, Options{}); err == nil {
		t.Fatal("accepted nil graph")
	}
	if _, err := Run(g, 9, Options{}); err == nil {
		t.Fatal("accepted bad source")
	}
}

func TestBeamerNoRMWNoLocks(t *testing.T) {
	g, err := gen.Graph500RMAT(4096, 65536, 4, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, g, 0, Options{Options: core.Options{Workers: 8}})
	if res.Counters.AtomicRMW != 0 || res.Counters.LockAcquisitions != 0 {
		t.Fatalf("beamer used RMW/locks: %+v", res.Counters)
	}
}

func TestPropertyBeamerCorrect(t *testing.T) {
	f := func(seed uint64) bool {
		n := int32(2 + seed%300)
		g, err := gen.Graph500RMAT(n, int64(seed%3000), seed, gen.Options{})
		if err != nil {
			return false
		}
		src := int32(seed % uint64(n))
		res, err := Run(g, src, Options{Options: core.Options{Workers: 1 + int(seed%6)}})
		if err != nil {
			return false
		}
		return graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, src)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
