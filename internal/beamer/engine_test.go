package beamer

import (
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

// TestBeamerEngineReuse runs many searches on one engine, alternating
// sources and crossing both direction regimes, and checks every run
// against the serial reference — the epoch invalidation must leave no
// trace of earlier runs.
func TestBeamerEngineReuse(t *testing.T) {
	g, err := gen.Graph500RMAT(4096, 65536, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, Options{Options: core.Options{Workers: 4, TrackParents: true}})
	if err != nil {
		t.Fatal(err)
	}
	sources := []int32{0, 1, 17, 0, 4095, 17}
	for i, s := range sources {
		res, err := e.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		want := graph.ReferenceBFS(g, s)
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("run %d from %d: %v", i, s, err)
		}
		if err := graph.ValidateParents(g, s, res.Dist, res.Parent); err != nil {
			t.Fatalf("run %d from %d: %v", i, s, err)
		}
	}
}

// TestBeamerEngineEpochWraparound drives the engine's uint32 epoch
// through 0 and checks the wraparound sweep resets the stamps.
func TestBeamerEngineEpochWraparound(t *testing.T) {
	g, err := gen.ChungLu(2048, 16384, 2.1, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	e, err := NewEngine(g, Options{Options: core.Options{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	e.r.cur = ^uint32(0) - 1
	for i := 0; i < 4; i++ {
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("run %d across wraparound: %v", i, err)
		}
	}
}

// TestBeamerEngineSourceRange checks the engine validates sources with
// the same error shape as the one-shot path.
func TestBeamerEngineSourceRange(t *testing.T) {
	g, err := gen.Star(64)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(64); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := e.Run(-1); err == nil {
		t.Fatal("negative source accepted")
	}
}
