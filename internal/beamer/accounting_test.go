package beamer

import (
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// dupStormGraph builds a layered graph engineered to flood the
// top-down step with duplicate discoveries: src fans out to a wide
// layer A, and every A vertex points at every vertex of a second layer
// B (plus a long tail chain off B to keep the search running after the
// switch window). With p workers exploring layer A concurrently, each
// B vertex races p discoverers and the raw next frontier carries up to
// |A| copies of every B vertex — the exact shape that inflated nf/mf
// and over-drained the unexplored budget before the dedup fix.
func dupStormGraph(t *testing.T, a, b, tail int) *graph.CSR {
	t.Helper()
	var edges []graph.Edge
	n := int32(1 + a + b + tail)
	av := func(i int) int32 { return int32(1 + i) }
	bv := func(i int) int32 { return int32(1 + a + i) }
	tv := func(i int) int32 { return int32(1 + a + b + i) }
	for i := 0; i < a; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: av(i)})
	}
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			edges = append(edges, graph.Edge{Src: av(i), Dst: bv(j)})
		}
	}
	for i := 0; i < tail; i++ {
		src := tv(i - 1)
		if i == 0 {
			src = bv(0)
		}
		edges = append(edges, graph.Edge{Src: src, Dst: tv(i)})
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// oracleSchedule recomputes the switch schedule the alpha/beta
// heuristics must produce when fed exact per-level counters: the level
// sets come from the serial reference (direction choice changes work,
// never the level sets), nf/mf are their exact sizes and degree sums,
// and the budget convention matches Engine.Run — subtract the frontier
// under decision, clamp at zero.
func oracleSchedule(g *graph.CSR, src int32, alpha, beta int64) []bool {
	dist := graph.ReferenceBFS(g, src)
	depth := graph.Eccentricity(dist)
	nf := make([]int64, depth+1)
	mf := make([]int64, depth+1)
	for v := int32(0); v < g.NumVertices(); v++ {
		if d := dist[v]; d >= 0 {
			nf[d]++
			mf[d] += g.OutDegree(v)
		}
	}
	n := int64(g.NumVertices())
	unexplored := g.NumEdges()
	bottomUp := false
	prevNf := int64(0)
	dirs := make([]bool, 0, depth+1)
	for d := int32(0); d <= depth; d++ {
		unexplored -= mf[d]
		if unexplored < 0 {
			unexplored = 0
		}
		if !bottomUp && mf[d] > unexplored/alpha && nf[d] > prevNf {
			bottomUp = true
		} else if bottomUp && nf[d] < n/beta {
			bottomUp = false
		}
		prevNf = nf[d]
		dirs = append(dirs, bottomUp)
	}
	return dirs
}

// TestBeamerSwitchScheduleExactUnderDuplicates is the accounting
// regression: on the duplicate storm graph the engine's switch
// schedule must equal the exact-counter oracle schedule on every run.
// Before the dedup fix the raw duplicate-bearing frontier drove the
// decisions, so the schedule depended on how many duplicate copies the
// racing workers happened to append — wrong and nondeterministic.
func TestBeamerSwitchScheduleExactUnderDuplicates(t *testing.T) {
	g := dupStormGraph(t, 64, 48, 40)
	want := oracleSchedule(g, 0, 15, 18)
	var sawBottomUp bool
	for _, b := range want {
		sawBottomUp = sawBottomUp || b
	}
	if !sawBottomUp {
		t.Fatal("oracle schedule never goes bottom-up; the graph no longer exercises the switch")
	}
	e, err := NewEngine(g, Options{Options: core.Options{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 20; run++ {
		res, err := e.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, 0)); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		got := e.Directions()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d levels in schedule, want %d (%v vs %v)", run, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("run %d: level %d direction = %v, want %v (schedule %v, oracle %v)",
					run, i, got[i], want[i], got, want)
			}
		}
	}
}

// TestBeamerScheduleDeterministicAcrossRuns drives a multi-run engine
// across the duplicate storm and checks, via the schedule, that
// accounting stays stable run over run: identical inputs must give
// identical schedules, which the pre-fix drift (per-run duplicate
// counts feeding the heuristics) violated.
func TestBeamerScheduleDeterministicAcrossRuns(t *testing.T) {
	g := dupStormGraph(t, 96, 64, 10)
	e, err := NewEngine(g, Options{Options: core.Options{Workers: 8}})
	if err != nil {
		t.Fatal(err)
	}
	var first []bool
	for run := 0; run < 10; run++ {
		if _, err := e.Run(0); err != nil {
			t.Fatal(err)
		}
		got := append([]bool(nil), e.Directions()...)
		if run == 0 {
			first = got
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("run %d schedule %v differs from first %v", run, got, first)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("run %d schedule %v differs from first %v", run, got, first)
			}
		}
	}
}

// TestBeamerKernelCounterParity runs both kernels over the same level
// of the same search state and pins the cross-direction counter
// contract: both kernels must report the vertices whose adjacency they
// walked as VerticesPopped, the edges they actually inspected as
// EdgesScanned, and discoveries covering the same vertex set — the
// invariants that make PerWorker sums comparable across directions.
// (Bottom-up
// VerticesPopped used to count only hits, duplicating Discovered and
// hiding the scan work.)
func TestBeamerKernelCounterParity(t *testing.T) {
	g := dupStormGraph(t, 32, 24, 8)
	gT := g.Transpose()
	n := g.NumVertices()

	// Run level 0 (src → layer A) top-down on a fresh runner, then
	// replay level 1 (layer A → layer B) with each kernel from an
	// identical snapshot.
	build := func() (*runner, []int32) {
		r := &runner{
			g: g, gT: gT, workers: 4, alpha: 15, beta: 18,
			dist:     make([]int32, n),
			epoch:    make([]uint32, n),
			outs:     make([][]int32, 4),
			counters: stats.NewPerWorker(4),
		}
		for i := range r.dist {
			r.dist[i] = graph.Unreached
		}
		for i := range r.outs {
			r.outs[i] = make([]int32, 0, 64)
		}
		r.cur = 1
		r.dist[0] = 0
		r.epoch[0] = 1
		frontier := r.stepTopDown([]int32{0}, 0, nil)
		for i := range r.counters {
			r.counters[i] = stats.PaddedCounters{}
		}
		return r, frontier
	}

	rTD, frontier := build()
	next := rTD.stepTopDown(frontier, 1, nil)
	td := stats.Sum(rTD.counters)
	tdNext := dedupSorted(next)

	rBU, frontierBU := build()
	bits := make([]uint64, (int(n)+63)/64)
	for _, v := range frontierBU {
		setBit(bits, v)
	}
	nextBU := rBU.stepBottomUp(bits, 1, nil)
	bu := stats.Sum(rBU.counters)
	buNext := dedupSorted(nextBU)

	// Same level, same discoveries (as sets; TD may race duplicates).
	if len(tdNext) != len(buNext) {
		t.Fatalf("kernels discovered different sets: TD %d vs BU %d vertices", len(tdNext), len(buNext))
	}
	for i := range tdNext {
		if tdNext[i] != buNext[i] {
			t.Fatalf("kernels discovered different sets at %d: %d vs %d", i, tdNext[i], buNext[i])
		}
	}
	if bu.Discovered != int64(len(buNext)) {
		t.Fatalf("BU Discovered=%d, want %d (race-free kernel must not duplicate)", bu.Discovered, len(buNext))
	}
	// TD pops the frontier it was handed; BU walks every unvisited
	// vertex — which here is everything except src and layer A.
	if td.VerticesPopped != int64(len(frontier)) {
		t.Fatalf("TD VerticesPopped=%d, want frontier size %d", td.VerticesPopped, len(frontier))
	}
	wantBuScan := int64(n) - 1 - int64(len(frontierBU))
	if bu.VerticesPopped != wantBuScan {
		t.Fatalf("BU VerticesPopped=%d, want unvisited count %d (pops must count scanned vertices, not hits)",
			bu.VerticesPopped, wantBuScan)
	}
	if bu.VerticesPopped == bu.Discovered {
		t.Fatal("BU VerticesPopped equals Discovered; the parity fix should count non-discovering scans too")
	}
	// Both kernels must report real inspection work: TD scanned the
	// whole adjacency of every popped vertex; BU's early-exit scans at
	// least one in-edge per discovery and at most the full in-degree of
	// every scanned vertex.
	var tdWant int64
	for _, v := range frontier {
		tdWant += g.OutDegree(v)
	}
	if td.EdgesScanned != tdWant {
		t.Fatalf("TD EdgesScanned=%d, want %d", td.EdgesScanned, tdWant)
	}
	var buMax int64
	for v := int32(0); v < n; v++ {
		if rBU.epoch[v] != rBU.cur || rBU.dist[v] == 2 {
			buMax += gT.OutDegree(v)
		}
	}
	if bu.EdgesScanned < bu.Discovered || bu.EdgesScanned > buMax {
		t.Fatalf("BU EdgesScanned=%d outside [%d, %d]", bu.EdgesScanned, bu.Discovered, buMax)
	}
}

func dedupSorted(vs []int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
