// Package beamer implements direction-optimizing BFS (Beamer, Asanović
// & Patterson, SC 2012), the hybrid of top-down (parent→child) and
// bottom-up (child→parent) edge exploration the reproduced paper
// discusses in its prior-work section (§II, ref [5]). It is provided
// as an additional comparison point and extension: on low-diameter,
// high-degree graphs the bottom-up phases skip most edge inspections
// once the frontier is large.
//
// The bottom-up step is naturally race-free — every unvisited vertex
// scans its own in-edges and writes only its own state — so, unlike
// the original (which used atomics in its top-down step), this
// implementation needs only the same benign-race discipline as
// internal/core: atomic loads/stores, no RMW, no locks.
package beamer

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"optibfs/internal/core"
	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// Options extends core.Options with the Beamer switching thresholds.
type Options struct {
	core.Options
	// Alpha: switch top-down -> bottom-up when the frontier's
	// out-edge count exceeds (unexplored out-edges)/Alpha. Default 15.
	Alpha int64
	// Beta: switch bottom-up -> top-down when the frontier shrinks
	// below n/Beta. Default 18.
	Beta int64
	// Transpose supplies the reverse graph for bottom-up steps; if nil
	// it is computed (O(n+m)) at the start of the run.
	Transpose *graph.CSR
}

// Run executes direction-optimizing BFS on g from src.
func Run(g *graph.CSR, src int32, opt Options) (*core.Result, error) {
	if g == nil {
		return nil, fmt.Errorf("beamer: nil graph")
	}
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("beamer: source %d out of range [0,%d)", src, n)
	}
	if opt.Alpha <= 0 {
		opt.Alpha = 15
	}
	if opt.Beta <= 0 {
		opt.Beta = 18
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	gT := opt.Transpose
	if gT == nil {
		gT = g.Transpose()
	}
	if gT.NumVertices() != n {
		return nil, fmt.Errorf("beamer: transpose has %d vertices, graph has %d", gT.NumVertices(), n)
	}

	r := &runner{
		g: g, gT: gT, workers: workers,
		dist:     make([]int32, n),
		counters: stats.NewPerWorker(workers),
		yield:    workers > runtime.GOMAXPROCS(0),
	}
	for i := range r.dist {
		r.dist[i] = graph.Unreached
	}
	r.dist[src] = 0
	if opt.TrackParents {
		r.parent = make([]int32, n)
		for i := range r.parent {
			r.parent[i] = -1
		}
		r.parent[src] = src
	}

	frontier := []int32{src}
	frontierBits := make([]uint64, (int(n)+63)/64)
	// Unexplored out-edge budget, maintained incrementally for the
	// alpha test.
	unexplored := g.NumEdges() - g.OutDegree(src)

	bottomUp := false
	var levels int32
	prevNf := int64(0)
	for {
		nf := int64(len(frontier))
		if nf == 0 {
			break
		}
		// Direction choice (Beamer's heuristics): go bottom-up when the
		// frontier's out-edges dominate the unexplored edges AND the
		// frontier is still growing; return top-down once the frontier
		// shrinks below n/beta.
		var mf int64
		for _, v := range frontier {
			mf += g.OutDegree(v)
		}
		if !bottomUp && mf > unexplored/opt.Alpha && nf > prevNf {
			bottomUp = true
		} else if bottomUp && nf < int64(n)/opt.Beta {
			bottomUp = false
		}
		prevNf = nf

		level := levels
		if bottomUp {
			setBits(frontierBits, frontier)
			next := r.stepBottomUp(frontierBits, level)
			clearBits(frontierBits, frontier)
			frontier = next
		} else {
			frontier = r.stepTopDown(frontier, level)
		}
		for _, v := range frontier {
			unexplored -= g.OutDegree(v)
		}
		levels++
		if len(frontier) == 0 {
			break
		}
	}

	total := stats.Sum(r.counters)
	res := &core.Result{
		Dist:       r.dist,
		Parent:     r.parent,
		Levels:     levels,
		Workers:    workers,
		Counters:   total,
		PerWorker:  r.counters,
		Pops:       total.VerticesPopped,
		LevelSizes: make([]int64, levels),
	}
	for v := int32(0); v < n; v++ {
		if d := r.dist[v]; d != graph.Unreached {
			res.Reached++
			res.EdgesTraversed += g.OutDegree(v)
			res.LevelSizes[d]++
		}
	}
	return res, nil
}

type runner struct {
	g, gT    *graph.CSR
	workers  int
	dist     []int32
	parent   []int32
	counters []stats.PaddedCounters
	yield    bool
}

func (r *runner) parallel(fn func(id int)) {
	var wg sync.WaitGroup
	wg.Add(r.workers)
	for id := 0; id < r.workers; id++ {
		go func(id int) {
			defer wg.Done()
			fn(id)
		}(id)
	}
	wg.Wait()
}

// stepTopDown explores the frontier parent→child with per-worker
// output queues and the benign dist race (no RMW).
func (r *runner) stepTopDown(frontier []int32, level int32) []int32 {
	outs := make([][]int32, r.workers)
	r.parallel(func(id int) {
		c := &r.counters[id].Counters
		if id == 0 {
			c.TopDownLevels++
		}
		lo := len(frontier) * id / r.workers
		hi := len(frontier) * (id + 1) / r.workers
		var out []int32
		for i, v := range frontier[lo:hi] {
			c.VerticesPopped++
			nb := r.g.Neighbors(v)
			c.EdgesScanned += int64(len(nb))
			for _, w := range nb {
				if atomic.LoadInt32(&r.dist[w]) == graph.Unreached {
					atomic.StoreInt32(&r.dist[w], level+1)
					if r.parent != nil {
						atomic.StoreInt32(&r.parent[w], v)
					}
					c.Discovered++
					out = append(out, w)
				}
			}
			if r.yield && i%64 == 63 {
				runtime.Gosched()
			}
		}
		outs[id] = out
	})
	var next []int32
	for _, out := range outs {
		next = append(next, out...)
	}
	return next
}

// stepBottomUp scans all unvisited vertices child→parent: a vertex
// joins the next frontier when any in-neighbor is in the current one.
// Race-free: each vertex's state is written only by its range owner.
func (r *runner) stepBottomUp(frontierBits []uint64, level int32) []int32 {
	n := int(r.g.NumVertices())
	outs := make([][]int32, r.workers)
	r.parallel(func(id int) {
		c := &r.counters[id].Counters
		if id == 0 {
			c.BottomUpLevels++
		}
		lo := n * id / r.workers
		hi := n * (id + 1) / r.workers
		var out []int32
		for v := lo; v < hi; v++ {
			if r.dist[v] != graph.Unreached {
				continue
			}
			for _, u := range r.gT.Neighbors(int32(v)) {
				c.EdgesScanned++
				if testBit(frontierBits, u) {
					r.dist[v] = level + 1
					if r.parent != nil {
						r.parent[v] = u
					}
					c.Discovered++
					c.VerticesPopped++
					out = append(out, int32(v))
					break
				}
			}
			if r.yield && v%1024 == 1023 {
				runtime.Gosched()
			}
		}
		outs[id] = out
	})
	var next []int32
	for _, out := range outs {
		next = append(next, out...)
	}
	return next
}

func setBits(bits []uint64, vs []int32) {
	for _, v := range vs {
		bits[v>>6] |= 1 << (uint(v) & 63)
	}
}

func clearBits(bits []uint64, vs []int32) {
	for _, v := range vs {
		bits[v>>6] &^= 1 << (uint(v) & 63)
	}
}

func testBit(bits []uint64, v int32) bool {
	return bits[v>>6]&(1<<(uint(v)&63)) != 0
}
