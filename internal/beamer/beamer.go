// Package beamer implements direction-optimizing BFS (Beamer, Asanović
// & Patterson, SC 2012), the hybrid of top-down (parent→child) and
// bottom-up (child→parent) edge exploration the reproduced paper
// discusses in its prior-work section (§II, ref [5]). It is provided
// as an additional comparison point and extension: on low-diameter,
// high-degree graphs the bottom-up phases skip most edge inspections
// once the frontier is large.
//
// The bottom-up step is naturally race-free — every unvisited vertex
// scans its own in-edges and writes only its own state — so, unlike
// the original (which used atomics in its top-down step), this
// implementation needs only the same benign-race discipline as
// internal/core: atomic loads/stores, no RMW, no locks.
//
// Like internal/core, the package exposes a reusable Engine for
// multi-source workloads: the dist/parent arrays, frontier buffers,
// bitmap, and the (expensive) transpose are allocated once and the
// visited set is invalidated between runs by an epoch bump.
package beamer

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"optibfs/internal/core"
	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// Options extends core.Options with the Beamer switching thresholds.
type Options struct {
	core.Options
	// Alpha: switch top-down -> bottom-up when the frontier's
	// out-edge count exceeds (unexplored out-edges)/Alpha. Default 15.
	Alpha int64
	// Beta: switch bottom-up -> top-down when the frontier shrinks
	// below n/Beta. Default 18.
	Beta int64
	// Transpose supplies the reverse graph for bottom-up steps; if nil
	// it is computed (O(n+m)) when the Engine is built (or, via Run,
	// per call).
	Transpose *graph.CSR
}

// Run executes direction-optimizing BFS on g from src. It is the
// one-shot path — a fresh Engine per call, so the returned Result owns
// fresh arrays; multi-source workloads should reuse an Engine (which
// also reuses the transpose).
func Run(g *graph.CSR, src int32, opt Options) (*core.Result, error) {
	if g == nil {
		return nil, fmt.Errorf("beamer: nil graph")
	}
	if src < 0 || src >= g.NumVertices() {
		return nil, fmt.Errorf("beamer: source %d out of range [0,%d)", src, g.NumVertices())
	}
	e, err := NewEngine(g, opt)
	if err != nil {
		return nil, err
	}
	return e.Run(src)
}

// Engine is a reusable direction-optimizing BFS handle bound to one
// graph (and its cached transpose). The sharing contract matches
// core.Engine: the graph may be shared freely, the engine is
// single-caller, and a returned Result aliases pooled arrays valid
// only until the engine's next run.
type Engine struct {
	r            *runner
	frontier     []int32 // ping-pong frontier buffers, reused by capacity
	next         []int32
	frontierBits []uint64
	levelSizes   []int64
	dirs         []bool // per-level direction log of the last run
	res          core.Result
}

// Directions reports the direction of every level the last Run
// executed, in order (false = top-down, true = bottom-up) — the switch
// schedule the alpha/beta heuristics actually chose. The slice aliases
// pooled engine state and is valid only until the next run.
func (e *Engine) Directions() []bool { return e.dirs }

// NewEngine builds a reusable engine over g, computing the transpose
// once if opt.Transpose is nil.
func NewEngine(g *graph.CSR, opt Options) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("beamer: nil graph")
	}
	n := g.NumVertices()
	if opt.Alpha <= 0 {
		opt.Alpha = 15
	}
	if opt.Beta <= 0 {
		opt.Beta = 18
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	gT := opt.Transpose
	if gT == nil {
		gT = g.Transpose()
	}
	if gT.NumVertices() != n {
		return nil, fmt.Errorf("beamer: transpose has %d vertices, graph has %d", gT.NumVertices(), n)
	}
	r := &runner{
		g: g, gT: gT, workers: workers,
		alpha: opt.Alpha, beta: opt.Beta,
		dist:     make([]int32, n),
		epoch:    make([]uint32, n),
		outs:     make([][]int32, workers),
		counters: stats.NewPerWorker(workers),
		yield:    workers > runtime.GOMAXPROCS(0),
	}
	for i := range r.dist {
		r.dist[i] = graph.Unreached
	}
	if opt.TrackParents {
		r.parent = make([]int32, n)
		for i := range r.parent {
			r.parent[i] = -1
		}
	}
	for i := range r.outs {
		r.outs[i] = make([]int32, 0, 256)
	}
	return &Engine{
		r:            r,
		frontierBits: make([]uint64, (int(n)+63)/64),
	}, nil
}

// Run executes one search from src on the pooled state. The Result is
// valid only until the engine's next run.
func (e *Engine) Run(src int32) (*core.Result, error) {
	r := e.r
	g := r.g
	n := g.NumVertices()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("beamer: source %d out of range [0,%d)", src, n)
	}
	r.cur++
	if r.cur == 0 {
		// uint32 wraparound: sweep the stamps so nothing from 2^32
		// runs ago aliases the new epoch (see core's epoch scheme).
		for i := range r.epoch {
			r.epoch[i] = 0
		}
		r.cur = 1
	}
	for i := range r.counters {
		r.counters[i] = stats.PaddedCounters{}
	}
	r.dist[src] = 0
	if r.parent != nil {
		r.parent[src] = src
	}
	r.epoch[src] = r.cur

	frontier := append(e.frontier[:0], src)
	next := e.next
	// Unexplored out-edge budget for the alpha test. Every level's
	// (deduplicated) frontier degree sum is subtracted before that
	// level's decision, so at decision time the budget always excludes
	// the frontier under decision — the same convention the original
	// source-pre-subtracted initialization established.
	unexplored := g.NumEdges()

	bottomUp := false
	var levels int32
	prevNf := int64(0)
	e.dirs = e.dirs[:0]
	for len(frontier) > 0 {
		// Deduplicate the frontier in place before any accounting. A
		// top-down step's racing discoverers can append the same vertex
		// to several workers' output queues (the protocol's benign
		// duplicate); feeding those duplicates into the heuristics
		// inflated nf/mf and over-drained the unexplored budget —
		// drifting, even underflowing, exactly on the high-degree
		// graphs the hybrid exists for. One test-and-set pass over the
		// frontier bitmap keeps each vertex's first occurrence and
		// makes every decision input exact. The set bits double as the
		// bottom-up step's frontier membership test.
		w := 0
		var mf int64
		for _, v := range frontier {
			if testBit(e.frontierBits, v) {
				continue
			}
			setBit(e.frontierBits, v)
			frontier[w] = v
			w++
			mf += g.OutDegree(v)
		}
		frontier = frontier[:w]
		nf := int64(w)
		unexplored -= mf
		if unexplored < 0 {
			// Exact accounting cannot underflow on simple graphs, but
			// multi-edges legitimately revisit out-degrees; the alpha
			// ratio is meaningless below zero either way.
			unexplored = 0
		}
		// Direction choice (Beamer's heuristics): go bottom-up when the
		// frontier's out-edges dominate the unexplored edges AND the
		// frontier is still growing; return top-down once the frontier
		// shrinks below n/beta.
		if !bottomUp && mf > unexplored/r.alpha && nf > prevNf {
			bottomUp = true
		} else if bottomUp && nf < int64(n)/r.beta {
			bottomUp = false
		}
		prevNf = nf
		e.dirs = append(e.dirs, bottomUp)

		level := levels
		if bottomUp {
			next = r.stepBottomUp(e.frontierBits, level, next[:0])
		} else {
			next = r.stepTopDown(frontier, level, next[:0])
		}
		clearBits(e.frontierBits, frontier)
		frontier, next = next, frontier
		levels++
	}
	e.frontier, e.next = frontier, next

	total := stats.Sum(r.counters)
	if cap(e.levelSizes) < int(levels) {
		e.levelSizes = make([]int64, levels)
	} else {
		e.levelSizes = e.levelSizes[:levels]
		for i := range e.levelSizes {
			e.levelSizes[i] = 0
		}
	}
	res := &e.res
	*res = core.Result{
		Dist:       r.dist,
		Parent:     r.parent,
		Levels:     levels,
		Workers:    r.workers,
		Counters:   total,
		PerWorker:  r.counters,
		Pops:       total.VerticesPopped,
		LevelSizes: e.levelSizes,
	}
	for v := int32(0); v < n; v++ {
		if r.epoch[v] != r.cur {
			// Normalize entries left over from earlier runs so Dist
			// and Parent read as plain single-run arrays.
			r.dist[v] = graph.Unreached
			if r.parent != nil {
				r.parent[v] = -1
			}
			continue
		}
		res.Reached++
		res.EdgesTraversed += g.OutDegree(v)
		res.LevelSizes[r.dist[v]]++
	}
	return res, nil
}

type runner struct {
	g, gT       *graph.CSR
	workers     int
	alpha, beta int64
	dist        []int32
	parent      []int32
	// epoch/cur implement the multi-run visited invalidation: dist[v]
	// and parent[v] are meaningful iff epoch[v] == cur. The stamp is
	// published after the payload, mirroring internal/core.
	epoch    []uint32
	cur      uint32
	outs     [][]int32 // pooled per-worker output buffers
	counters []stats.PaddedCounters
	yield    bool
}

func (r *runner) parallel(fn func(id int)) {
	var wg sync.WaitGroup
	wg.Add(r.workers)
	for id := 0; id < r.workers; id++ {
		go func(id int) {
			defer wg.Done()
			fn(id)
		}(id)
	}
	wg.Wait()
}

// stepTopDown explores the frontier parent→child with per-worker
// output queues and the benign epoch race (no RMW), appending the next
// frontier into dest.
func (r *runner) stepTopDown(frontier []int32, level int32, dest []int32) []int32 {
	r.parallel(func(id int) {
		c := &r.counters[id].Counters
		if id == 0 {
			c.TopDownLevels++
		}
		lo := len(frontier) * id / r.workers
		hi := len(frontier) * (id + 1) / r.workers
		out := r.outs[id][:0]
		for i, v := range frontier[lo:hi] {
			c.VerticesPopped++
			nb := r.g.Neighbors(v)
			c.EdgesScanned += int64(len(nb))
			for _, w := range nb {
				if atomic.LoadUint32(&r.epoch[w]) != r.cur {
					atomic.StoreInt32(&r.dist[w], level+1)
					if r.parent != nil {
						atomic.StoreInt32(&r.parent[w], v)
					}
					atomic.StoreUint32(&r.epoch[w], r.cur)
					c.Discovered++
					out = append(out, w)
				}
			}
			if r.yield && i%64 == 63 {
				runtime.Gosched()
			}
		}
		r.outs[id] = out
	})
	for _, out := range r.outs {
		dest = append(dest, out...)
	}
	return dest
}

// stepBottomUp scans all unvisited vertices child→parent: a vertex
// joins the next frontier when any in-neighbor is in the current one.
// Race-free: each vertex's state is written only by its range owner.
//
// Counter parity with stepTopDown (so PerWorker sums compare across
// directions): VerticesPopped counts every vertex whose adjacency was
// walked — there, frontier entries; here, every unvisited vertex
// scanned, discovered or not — EdgesScanned counts edges actually
// inspected (a partial in-edge scan, because of the early exit), and
// Discovered counts claims. Counting pops only on hits, as this kernel
// once did, made bottom-up VerticesPopped a duplicate of Discovered
// and hid the scan work the direction trade-off is about.
func (r *runner) stepBottomUp(frontierBits []uint64, level int32, dest []int32) []int32 {
	n := int(r.g.NumVertices())
	r.parallel(func(id int) {
		c := &r.counters[id].Counters
		if id == 0 {
			c.BottomUpLevels++
		}
		lo := n * id / r.workers
		hi := n * (id + 1) / r.workers
		out := r.outs[id][:0]
		for v := lo; v < hi; v++ {
			if r.epoch[v] == r.cur {
				continue
			}
			c.VerticesPopped++
			for _, u := range r.gT.Neighbors(int32(v)) {
				c.EdgesScanned++
				if testBit(frontierBits, u) {
					r.dist[v] = level + 1
					if r.parent != nil {
						r.parent[v] = u
					}
					r.epoch[v] = r.cur
					c.Discovered++
					out = append(out, int32(v))
					break
				}
			}
			if r.yield && v%1024 == 1023 {
				runtime.Gosched()
			}
		}
		r.outs[id] = out
	})
	for _, out := range r.outs {
		dest = append(dest, out...)
	}
	return dest
}

func setBit(bits []uint64, v int32) {
	bits[v>>6] |= 1 << (uint(v) & 63)
}

func clearBits(bits []uint64, vs []int32) {
	for _, v := range vs {
		bits[v>>6] &^= 1 << (uint(v) & 63)
	}
}

func testBit(bits []uint64, v int32) bool {
	return bits[v>>6]&(1<<(uint(v)&63)) != 0
}
