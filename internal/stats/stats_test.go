package stats

import (
	"math"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestPaddedCountersSize(t *testing.T) {
	size := unsafe.Sizeof(PaddedCounters{})
	if size%64 != 0 {
		t.Fatalf("PaddedCounters size %d is not a multiple of 64", size)
	}
	if size < unsafe.Sizeof(Counters{}) {
		t.Fatalf("padding shrank the struct")
	}
}

func TestCountersAddAndSum(t *testing.T) {
	per := NewPerWorker(3)
	per[0].VerticesPopped = 5
	per[0].StealInvalid = 1
	per[1].VerticesPopped = 7
	per[1].EdgesScanned = 100
	per[2].StealSuccess = 2
	per[2].StealVictimIdle = 4
	total := Sum(per)
	if total.VerticesPopped != 12 || total.EdgesScanned != 100 {
		t.Fatalf("sum wrong: %+v", total)
	}
	if total.StealSuccess != 2 || total.FailedSteals() != 5 {
		t.Fatalf("steal sums wrong: success=%d failed=%d", total.StealSuccess, total.FailedSteals())
	}
}

func TestAddCoversEveryField(t *testing.T) {
	// Fill a Counters with distinct values via reflection-free literal,
	// then check Add doubles it exactly. Catches a forgotten field in Add.
	c := Counters{
		VerticesPopped: 1, EdgesScanned: 2, Discovered: 3,
		Fetches: 4, FetchRetries: 5,
		LockAcquisitions: 6, LockTryFails: 7,
		StealAttempts: 8, StealSuccess: 9, StealVictimLocked: 10,
		StealVictimIdle: 11, StealTooSmall: 12, StealStale: 13, StealInvalid: 14,
		StealSameSocket: 15, StealCrossSocket: 16,
		HotVertices: 17, HotChunks: 18, AtomicRMW: 19,
		TopDownLevels: 20, BottomUpLevels: 21,
	}
	double := c
	double.Add(&c)
	if double != (Counters{
		VerticesPopped: 2, EdgesScanned: 4, Discovered: 6,
		Fetches: 8, FetchRetries: 10,
		LockAcquisitions: 12, LockTryFails: 14,
		StealAttempts: 16, StealSuccess: 18, StealVictimLocked: 20,
		StealVictimIdle: 22, StealTooSmall: 24, StealStale: 26, StealInvalid: 28,
		StealSameSocket: 30, StealCrossSocket: 32,
		HotVertices: 34, HotChunks: 36, AtomicRMW: 38,
		TopDownLevels: 40, BottomUpLevels: 42,
	}) {
		t.Fatalf("Add missed a field: %+v", double)
	}
}

func TestSubCoversEveryField(t *testing.T) {
	c := Counters{
		VerticesPopped: 1, EdgesScanned: 2, Discovered: 3,
		Fetches: 4, FetchRetries: 5,
		LockAcquisitions: 6, LockTryFails: 7,
		StealAttempts: 8, StealSuccess: 9, StealVictimLocked: 10,
		StealVictimIdle: 11, StealTooSmall: 12, StealStale: 13, StealInvalid: 14,
		StealSameSocket: 15, StealCrossSocket: 16,
		HotVertices: 17, HotChunks: 18, AtomicRMW: 19,
		TopDownLevels: 20, BottomUpLevels: 21,
	}
	// Sub must be the exact inverse of Add: (c+c)-c == c catches a
	// forgotten field in either direction.
	sum := c
	sum.Add(&c)
	sum.Sub(&c)
	if sum != c {
		t.Fatalf("Sub is not Add's inverse: %+v", sum)
	}
	zero := c
	zero.Sub(&c)
	if zero != (Counters{}) {
		t.Fatalf("c-c not zero: %+v", zero)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Total != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Median != 42 || s.Min != 42 || s.Max != 42 || s.Stddev != 0 {
		t.Fatalf("single summary wrong: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Total != 15 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev %g want %g", s.Stddev, math.Sqrt(2.5))
	}
}

func TestSummarizeMedianEven(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 10})
	if s.Median != 2.5 {
		t.Fatalf("median %g want 2.5", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		s := Summarize(xs)
		if s.N != len(xs) {
			return false
		}
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 &&
			s.P05 <= s.P95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTEPS(t *testing.T) {
	if v := TEPS(1000, 0.5); v != 2000 {
		t.Fatalf("TEPS=%g", v)
	}
	if v := TEPS(1000, 0); v != 0 {
		t.Fatalf("TEPS(0s)=%g", v)
	}
	if v := TEPS(1000, -1); v != 0 {
		t.Fatalf("TEPS(-1s)=%g", v)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.P05 != 0.5 || s.P95 != 9.5 {
		t.Fatalf("quantiles: p05=%g p95=%g", s.P05, s.P95)
	}
}
