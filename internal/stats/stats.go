// Package stats provides the per-worker instrumentation counters used by
// every BFS runtime in this repository, plus small numeric aggregation
// helpers for the experiment harness.
//
// Counters are written by exactly one worker goroutine each (no sharing),
// so they need no synchronization; PaddedCounters adds cache-line padding
// so adjacent workers' counters never share a line (false sharing would
// perturb the very measurements the counters exist to take). Workers'
// counters are merged after the level barrier, where the happens-before
// edge makes plain reads safe.
package stats

import (
	"math"
	"sort"
	"unsafe"
)

// Counters instruments one worker's activity during a BFS run. The
// steal-failure taxonomy mirrors the paper's Table VI columns.
type Counters struct {
	// Work volume.
	VerticesPopped int64 // queue pops, including duplicate explorations
	EdgesScanned   int64 // adjacency entries examined
	Discovered     int64 // vertices this worker newly discovered

	// Batched frontier publication (core.Options.PublishBlock).
	BlocksFlushed  int64 // discovery blocks published to the next-level queue
	PartialFlushes int64 // blocks published below capacity (level-barrier flushes)

	// Centralized-queue machinery.
	Fetches      int64 // segments successfully fetched
	FetchRetries int64 // fetch attempts that found no work and advanced/retried

	// Lock usage (locked variants only).
	LockAcquisitions int64 // successful Lock/TryLock acquisitions
	LockTryFails     int64 // TryLock attempts that failed

	// Work stealing, successful and failed by cause (Table VI).
	StealAttempts     int64
	StealSuccess      int64
	StealVictimLocked int64 // locked variants: victim's mutex was held
	StealVictimIdle   int64 // victim had quit / had no segment
	StealTooSmall     int64 // segment below the minimum steal size
	StealStale        int64 // segment valid but already explored
	StealInvalid      int64 // sanity check f' < r' <= origR failed

	// Simulated NUMA accounting.
	StealSameSocket  int64
	StealCrossSocket int64

	// Scale-free two-phase machinery.
	HotVertices int64 // high-degree vertices deferred to phase 2
	HotChunks   int64 // adjacency chunks processed in phase 2

	// Direction-optimizing traversal accounting (Beamer-style hybrid).
	TopDownLevels  int64
	BottomUpLevels int64

	// Atomic read-modify-write operations (CAS / fetch-add) issued.
	// Always 0 for the paper's algorithms — locked variants use mutexes
	// and lockfree variants use plain loads/stores — and nonzero for
	// Baseline2, which is built on CAS bitmaps and fetch-add cursors.
	AtomicRMW int64
}

// Add accumulates other into c.
func (c *Counters) Add(other *Counters) {
	c.VerticesPopped += other.VerticesPopped
	c.EdgesScanned += other.EdgesScanned
	c.Discovered += other.Discovered
	c.BlocksFlushed += other.BlocksFlushed
	c.PartialFlushes += other.PartialFlushes
	c.Fetches += other.Fetches
	c.FetchRetries += other.FetchRetries
	c.LockAcquisitions += other.LockAcquisitions
	c.LockTryFails += other.LockTryFails
	c.StealAttempts += other.StealAttempts
	c.StealSuccess += other.StealSuccess
	c.StealVictimLocked += other.StealVictimLocked
	c.StealVictimIdle += other.StealVictimIdle
	c.StealTooSmall += other.StealTooSmall
	c.StealStale += other.StealStale
	c.StealInvalid += other.StealInvalid
	c.StealSameSocket += other.StealSameSocket
	c.StealCrossSocket += other.StealCrossSocket
	c.HotVertices += other.HotVertices
	c.HotChunks += other.HotChunks
	c.TopDownLevels += other.TopDownLevels
	c.BottomUpLevels += other.BottomUpLevels
	c.AtomicRMW += other.AtomicRMW
}

// Sub subtracts other from c field by field. It turns two cumulative
// snapshots taken at level barriers into the per-level delta the engine
// timelines record.
func (c *Counters) Sub(other *Counters) {
	c.VerticesPopped -= other.VerticesPopped
	c.EdgesScanned -= other.EdgesScanned
	c.Discovered -= other.Discovered
	c.BlocksFlushed -= other.BlocksFlushed
	c.PartialFlushes -= other.PartialFlushes
	c.Fetches -= other.Fetches
	c.FetchRetries -= other.FetchRetries
	c.LockAcquisitions -= other.LockAcquisitions
	c.LockTryFails -= other.LockTryFails
	c.StealAttempts -= other.StealAttempts
	c.StealSuccess -= other.StealSuccess
	c.StealVictimLocked -= other.StealVictimLocked
	c.StealVictimIdle -= other.StealVictimIdle
	c.StealTooSmall -= other.StealTooSmall
	c.StealStale -= other.StealStale
	c.StealInvalid -= other.StealInvalid
	c.StealSameSocket -= other.StealSameSocket
	c.StealCrossSocket -= other.StealCrossSocket
	c.HotVertices -= other.HotVertices
	c.HotChunks -= other.HotChunks
	c.TopDownLevels -= other.TopDownLevels
	c.BottomUpLevels -= other.BottomUpLevels
	c.AtomicRMW -= other.AtomicRMW
}

// FailedSteals returns the total failed steal attempts across the
// failure taxonomy.
func (c *Counters) FailedSteals() int64 {
	return c.StealVictimLocked + c.StealVictimIdle + c.StealTooSmall + c.StealStale + c.StealInvalid
}

// PaddedCounters is Counters padded out to a multiple of the cache-line
// size so per-worker slices do not false-share. The pad length is
// derived from the struct size itself, so adding a counter field can
// never silently misalign the slice.
type PaddedCounters struct {
	Counters
	_ [(cacheLine - unsafe.Sizeof(Counters{})%cacheLine) % cacheLine]byte
}

// cacheLine is the alignment target for per-worker counter slots.
const cacheLine = 64

// Compile-time assertion that PaddedCounters fills whole cache lines:
// the composite literal below only has type [0]byte when
// Sizeof(PaddedCounters) % cacheLine == 0.
var _ [0]byte = [unsafe.Sizeof(PaddedCounters{}) % cacheLine]byte{}

// NewPerWorker allocates padded counters for p workers.
func NewPerWorker(p int) []PaddedCounters {
	return make([]PaddedCounters, p)
}

// Sum merges a per-worker slice into one Counters value.
func Sum(per []PaddedCounters) Counters {
	var total Counters
	for i := range per {
		total.Add(&per[i].Counters)
	}
	return total
}

// Summary holds order statistics of a sample, as reported in tables.
type Summary struct {
	N            int
	Mean, Stddev float64
	Min, Max     float64
	Median       float64
	P05, P95     float64
	Total        float64
}

// Summarize computes a Summary of xs. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, x := range sorted {
		s.Total += x
	}
	s.Mean = s.Total / float64(s.N)
	var varsum float64
	for _, x := range sorted {
		d := x - s.Mean
		varsum += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(varsum / float64(s.N-1))
	}
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.Median = quantile(sorted, 0.5)
	s.P05 = quantile(sorted, 0.05)
	s.P95 = quantile(sorted, 0.95)
	return s
}

// quantile returns the q-quantile of sorted data by linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TEPS returns traversed-edges-per-second given edges traversed and
// elapsed seconds; 0 if seconds is non-positive.
func TEPS(edges int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(edges) / seconds
}
