//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly || solaris)

package mmio

import (
	"errors"
	"os"
)

// mmapSupported reports that this platform cannot map files; LoadMapped
// takes the verified heap path instead.
const mmapSupported = false

// mmapFile is unreachable when mmapSupported is false.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

// munmapFile is unreachable when mmapSupported is false.
func munmapFile(b []byte) error { return nil }
