package mmio

import (
	"os"
	"testing"
	"time"
)

// TestLoadMappedWarmLatency times LoadMapped against a pre-written v2
// file named by OPTIBFS_LOADTIME_FILE (skipped otherwise — generating
// a scale-22 graph is too slow for CI). The acceptance bar: a warm
// load of a scale-22 RMAT (4.2M vertices, 67M edges, ~300 MB) must
// map in under a second. The mmap itself is O(1); the time is the
// trust-establishing section-checksum pass over the mapped payload,
// which SkipVerify can elide for callers that trust the file.
func TestLoadMappedWarmLatency(t *testing.T) {
	path := os.Getenv("OPTIBFS_LOADTIME_FILE")
	if path == "" {
		t.Skip("set OPTIBFS_LOADTIME_FILE to a .bin2 file to run")
	}
	// Cold-ish first load (page cache state unknown), then warm loads.
	start := time.Now()
	m, err := LoadMapped(path, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	if !m.Mapped() {
		t.Fatal("v2 file did not take the mmap path")
	}
	n := m.Graph().NumVertices()
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}

	var warm time.Duration
	const rounds = 5
	for i := 0; i < rounds; i++ {
		start = time.Now()
		m, err = LoadMapped(path, MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		warm += time.Since(start)
		if m.Graph().NumVertices() != n {
			t.Fatal("inconsistent reload")
		}
		if err := m.Release(); err != nil {
			t.Fatal(err)
		}
	}
	warmMean := warm / rounds

	// SkipVerify measures the map-only floor for comparison.
	start = time.Now()
	m, err = LoadMapped(path, MapOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	skip := time.Since(start)
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}

	t.Logf("cold=%s warm(mean of %d)=%s skip-verify=%s n=%d", cold, rounds, warmMean, skip, n)
	if warmMean > time.Second {
		t.Fatalf("warm LoadMapped took %s, want < 1s", warmMean)
	}
}
