//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly || solaris

package mmio

import (
	"os"
	"syscall"
)

// mmapSupported reports that this platform can map files read-only.
const mmapSupported = true

// mmapFile maps size bytes of f read-only, shared.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(b []byte) error { return syscall.Munmap(b) }
