package mmio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func v2File(t *testing.T, g *graph.CSR) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bin2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryV2(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustSameGraph(t *testing.T, got, want *graph.CSR) {
	t.Helper()
	if err := sameGraph(got, want); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryV2StreamRoundTrip(t *testing.T) {
	g, err := gen.ErdosRenyi(500, 3000, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mustSameGraph(t, got, g)
}

func TestBinaryV2EmptyGraph(t *testing.T) {
	for _, g := range []*graph.CSR{{}, {Offsets: []int64{0, 0, 0}}} {
		var buf bytes.Buffer
		if err := WriteBinaryV2(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumEdges() != 0 {
			t.Fatalf("empty graph round-trip got %v", got)
		}
	}
}

func TestLoadMappedZeroCopy(t *testing.T) {
	g, err := gen.ErdosRenyi(300, 2000, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := LoadMapped(v2File(t, g), MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !mg.Mapped() {
		t.Fatal("v2 file did not map")
	}
	mustSameGraph(t, mg.Graph(), g)
	if err := mg.Release(); err != nil {
		t.Fatal(err)
	}
	if !mg.Unmapped() {
		t.Fatal("final Release did not unmap")
	}
}

func TestLoadMappedSkipVerify(t *testing.T) {
	g, err := gen.ErdosRenyi(200, 900, 4, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := LoadMapped(v2File(t, g), MapOptions{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Release()
	mustSameGraph(t, mg.Graph(), g)
}

func TestLoadMappedRefcount(t *testing.T) {
	g, err := gen.ErdosRenyi(50, 120, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := LoadMapped(v2File(t, g), MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mg.Retain()
	if err := mg.Release(); err != nil {
		t.Fatal(err)
	}
	if mg.Unmapped() {
		t.Fatal("unmapped while a reference was still held")
	}
	// The graph must stay readable through the extra reference.
	if mg.Graph().Offsets[0] != 0 {
		t.Fatal("mapped graph unreadable")
	}
	if err := mg.Release(); err != nil {
		t.Fatal(err)
	}
	if !mg.Unmapped() {
		t.Fatal("not unmapped after final release")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Release past zero did not panic")
		}
	}()
	mg.Release()
}

func TestLoadMappedV1Fallback(t *testing.T) {
	g, err := gen.ErdosRenyi(80, 400, 6, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	mg, err := LoadMapped(path, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Release()
	if mg.Mapped() {
		t.Fatal("v1 file claims to be mapped")
	}
	mustSameGraph(t, mg.Graph(), g)
}

func TestLoadMappedPathTaxonomy(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadMapped(filepath.Join(dir, "missing.bin"), MapOptions{}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("missing file: %v, want ErrMalformed", err)
	}
	if _, err := LoadMapped(dir, MapOptions{}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("directory: %v, want ErrMalformed", err)
	}
}

// corruptV2 returns a valid v2 file's bytes with mutate applied.
func corruptV2(t *testing.T, mutate func([]byte)) []byte {
	t.Helper()
	g, err := gen.ErdosRenyi(120, 700, 8, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	mutate(b)
	return b
}

func TestBinaryV2DetectsCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte)
	}{
		{"header n flipped", func(b []byte) { b[0x08] ^= 1 }},
		{"section table offset flipped", func(b []byte) { b[0x20] ^= 1 }},
		{"bad offsets checksum in table", func(b []byte) { b[0x30] ^= 1 }},
		{"bad edges checksum in table", func(b []byte) { b[0x48] ^= 1 }},
		{"header checksum flipped", func(b []byte) { b[0x50] ^= 1 }},
		{"offsets payload flipped", func(b []byte) { b[v2HeaderSize+8] ^= 1 }},
		{"edges payload flipped", func(b []byte) { b[len(b)-2] ^= 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := corruptV2(t, tc.mutate)
			if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrMalformed) {
				t.Fatalf("stream read: %v, want ErrMalformed", err)
			}
			path := filepath.Join(t.TempDir(), "bad.bin2")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadMapped(path, MapOptions{}); !errors.Is(err, ErrMalformed) {
				t.Fatalf("mapped read: %v, want ErrMalformed", err)
			}
		})
	}
}

func TestBinaryV2Truncations(t *testing.T) {
	full := corruptV2(t, func([]byte) {})
	for _, cut := range []int{0x10, 0x28, 0x4f, v2HeaderSize - 1, v2HeaderSize + 5, len(full) - 3} {
		data := full[:cut]
		if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrMalformed) {
			t.Fatalf("cut %d stream: %v, want ErrMalformed", cut, err)
		}
		path := filepath.Join(t.TempDir(), "cut.bin2")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadMapped(path, MapOptions{}); !errors.Is(err, ErrMalformed) {
			t.Fatalf("cut %d mapped: %v, want ErrMalformed", cut, err)
		}
	}
}

// A crafted header whose section table is internally consistent but
// points at a misaligned offset must be rejected before any unsafe
// slice cast, by both readers.
func TestBinaryV2RejectsMisalignedSections(t *testing.T) {
	g, err := gen.ErdosRenyi(60, 200, 9, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n, m := int64(g.NumVertices()), g.NumEdges()
	h := v2Header{n: n, m: m, sec: v2Layout(n, m)}
	h.sec[1].off += 4 // well-formed headerSum, misaligned edges section
	hdr := encodeV2Header(h)
	body := make([]byte, int(h.sec[1].off+h.sec[1].length)-v2HeaderSize)
	data := append(hdr, body...)
	if _, err := ReadBinary(bytes.NewReader(data)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("stream: %v, want ErrMalformed", err)
	}
	path := filepath.Join(t.TempDir(), "misaligned.bin2")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMapped(path, MapOptions{}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("mapped: %v, want ErrMalformed", err)
	}
}

func TestBinaryV2ChecksumMatchesMappedAndStreamed(t *testing.T) {
	// The section checksums must compute identically over heap slices
	// and mapped slices: load both ways and compare sums directly.
	g, err := gen.ErdosRenyi(400, 2500, 10, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mg, err := LoadMapped(v2File(t, g), MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Release()
	if sumOffsets(mg.Graph().Offsets) != sumOffsets(g.Offsets) {
		t.Fatal("offsets checksum differs between mapped and heap")
	}
	if sumEdges(mg.Graph().Edges) != sumEdges(g.Edges) {
		t.Fatal("edges checksum differs between mapped and heap")
	}
}
