package mmio

import (
	"bytes"
	"testing"

	"optibfs/internal/gen"
)

func benchGraphBytes(b *testing.B, write func(*bytes.Buffer) error) *bytes.Reader {
	b.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		b.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

func BenchmarkWriteReadBinary(b *testing.B) {
	g, err := gen.Graph500RMAT(1<<14, 1<<18, 1, gen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("write", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		r := benchGraphBytes(b, func(buf *bytes.Buffer) error { return WriteBinary(buf, g) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Seek(0, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := ReadBinary(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWriteReadMatrixMarket(b *testing.B) {
	g, err := gen.Graph500RMAT(1<<12, 1<<15, 1, gen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("write", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := WriteMatrixMarket(&buf, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		r := benchGraphBytes(b, func(buf *bytes.Buffer) error { return WriteMatrixMarket(buf, g) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Seek(0, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := ReadMatrixMarket(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}
