// Package mmio reads and writes graphs in the formats the paper's
// experiment pipeline needs:
//
//   - MatrixMarket coordinate format (.mtx), the format of the Florida
//     Sparse Matrix Collection graphs the paper uses (cage15, cage14,
//     freescale, wikipedia-2007, kkt-power), so the real files can be
//     dropped in next to the generated stand-ins;
//   - whitespace-separated edge-list text ("u v" per line), the common
//     interchange format of graph tools;
//   - a compact little-endian binary CSR with a checksummed header for
//     fast reload of generated graphs.
package mmio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"optibfs/internal/graph"
	"optibfs/internal/rng"
)

// The readers classify every failure into a two-kind taxonomy so
// callers (notably the bfsd daemon) can map errors to blame without
// string matching:
//
//   - ErrMalformed: the bytes themselves are wrong — truncated input,
//     bad magic, unparsable numbers, out-of-range indices, checksum
//     mismatches, implausible headers. The sender's fault (HTTP 400).
//   - ErrIO: the transport failed while the bytes were being read — a
//     scanner or reader error other than a clean truncation. The
//     server or network's fault (HTTP 500).
//
// Both are wrapped with %w, so errors.Is works through any layer of
// added context.
var (
	// ErrMalformed marks input rejected as structurally invalid.
	ErrMalformed = errors.New("malformed input")
	// ErrIO marks a read failure of the underlying stream.
	ErrIO = errors.New("read failed")
)

// malformed builds an ErrMalformed-wrapped error with context.
func malformed(format string, args ...any) error {
	return fmt.Errorf("mmio: %s: %w", fmt.Sprintf(format, args...), ErrMalformed)
}

// ioErr builds an ErrIO-wrapped error around a stream failure. The
// cause is wrapped too, so callers can still match concrete types
// (e.g. *http.MaxBytesError behind a scanner).
func ioErr(err error) error {
	return fmt.Errorf("mmio: %w: %w", err, ErrIO)
}

// readErr classifies a read failure: clean truncations (EOF where more
// bytes were promised) are the writer's fault and malformed; anything
// else is a stream failure.
func readErr(err error, what string) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return malformed("truncated input reading %s", what)
	}
	return fmt.Errorf("mmio: reading %s: %w: %w", what, err, ErrIO)
}

// ReadMatrixMarket parses a MatrixMarket coordinate-format stream into
// a directed CSR. Vertex ids in the file are 1-based per the format.
// For `symmetric`/`skew-symmetric` headers each entry also adds the
// reverse edge (except diagonal entries). Entry values (for non-pattern
// matrices) are parsed and discarded — BFS is unweighted.
func ReadMatrixMarket(r io.Reader) (*graph.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header line: %%MatrixMarket matrix coordinate <field> <symmetry>
	if !sc.Scan() {
		return nil, malformed("empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, malformed("not a MatrixMarket matrix header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, malformed("only coordinate format is supported, got %q", header[2])
	}
	symmetric := false
	switch header[4] {
	case "general":
	case "symmetric", "skew-symmetric", "hermitian":
		symmetric = true
	default:
		return nil, malformed("unknown symmetry %q", header[4])
	}

	// Skip comments, find the size line.
	var rows, cols int64
	var entries int64
	for {
		if !sc.Scan() {
			return nil, malformed("missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, malformed("malformed size line %q", line)
		}
		var err error
		if rows, err = strconv.ParseInt(f[0], 10, 64); err != nil {
			return nil, malformed("bad row count: %v", err)
		}
		if cols, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			return nil, malformed("bad column count: %v", err)
		}
		if entries, err = strconv.ParseInt(f[2], 10, 64); err != nil {
			return nil, malformed("bad entry count: %v", err)
		}
		break
	}
	n := rows
	if cols > n {
		n = cols
	}
	if n > MaxVertices {
		return nil, malformed("%d vertices exceed MaxVertices (%d)", n, MaxVertices)
	}
	if entries < 0 || entries > 4*MaxVertices {
		return nil, malformed("implausible entry count %d", entries)
	}

	edges := make([]graph.Edge, 0, entries)
	var seen int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, malformed("malformed entry %q", line)
		}
		u, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, malformed("bad row index %q: %v", f[0], err)
		}
		v, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, malformed("bad column index %q: %v", f[1], err)
		}
		if u < 1 || u > rows || v < 1 || v > cols {
			return nil, malformed("entry (%d,%d) outside %dx%d", u, v, rows, cols)
		}
		seen++
		e := graph.Edge{Src: int32(u - 1), Dst: int32(v - 1)}
		edges = append(edges, e)
		if symmetric && e.Src != e.Dst {
			edges = append(edges, graph.Edge{Src: e.Dst, Dst: e.Src})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, ioErr(err)
	}
	if seen != entries {
		return nil, malformed("header promised %d entries, found %d", entries, seen)
	}
	g, err := graph.FromEdges(int32(n), edges, graph.BuildOptions{})
	if err != nil {
		return nil, malformed("%v", err)
	}
	return g, nil
}

// WriteMatrixMarket writes g as a general coordinate pattern matrix.
func WriteMatrixMarket(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriter(w)
	n := g.NumVertices()
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern general\n%d %d %d\n", n, n, g.NumEdges()); err != nil {
		return err
	}
	for u := int32(0); u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u+1, v+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses "u v" pairs (0-based, whitespace separated, #
// comments allowed) into a CSR with n = max id + 1 vertices.
func ReadEdgeList(r io.Reader) (*graph.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	var maxID int64 = -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, malformed("edge list line %d malformed: %q", lineNo, line)
		}
		u, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, malformed("line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, malformed("line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 || u >= MaxVertices || v >= MaxVertices {
			return nil, malformed("line %d: vertex id outside [0, MaxVertices)", lineNo)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, graph.Edge{Src: int32(u), Dst: int32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, ioErr(err)
	}
	g, err := graph.FromEdges(int32(maxID+1), edges, graph.BuildOptions{})
	if err != nil {
		return nil, malformed("%v", err)
	}
	return g, nil
}

// WriteEdgeList writes g as 0-based "u v" lines.
func WriteEdgeList(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriter(w)
	for u := int32(0); u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(u) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Binary CSR format:
//
//	magic   [8]byte  "OPTIBFS1"
//	n       int64    vertices
//	m       int64    edges
//	check   uint64   Mix64(n) ^ Mix64(m) ^ payload checksum
//	offsets [n+1]int64
//	edges   [m]int32
//
// All integers little-endian.
var binaryMagic = [8]byte{'O', 'P', 'T', 'I', 'B', 'F', 'S', '1'}

// MaxVertices bounds the vertex count a reader will accept before
// allocating CSR arrays, protecting against hostile or corrupt headers
// that declare absurd dimensions (a header alone would otherwise force
// an 8·n byte allocation). 2^28 vertices ≈ 2 GiB of offsets, well
// beyond the paper's largest graph; raise it for genuinely larger
// inputs.
var MaxVertices int64 = 1 << 28

// binChecksum hashes the structural content cheaply but order-sensitively.
func binChecksum(g *graph.CSR) uint64 {
	h := rng.Mix64(uint64(g.NumVertices())) ^ rng.Mix64(uint64(g.NumEdges())<<1)
	for i, off := range g.Offsets {
		h ^= rng.Mix64(uint64(off) + uint64(i)*0x9e37)
	}
	for i, e := range g.Edges {
		h ^= rng.Mix64(uint64(uint32(e)) + uint64(i)*0x85eb)
	}
	return h
}

// WriteBinary writes g in the binary CSR format.
func WriteBinary(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := []uint64{uint64(g.NumVertices()), uint64(g.NumEdges()), binChecksum(g)}
	for _, x := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, x); err != nil {
			return err
		}
	}
	offsets := g.Offsets
	if offsets == nil {
		offsets = []int64{0}
	}
	if err := binary.Write(bw, binary.LittleEndian, offsets); err != nil {
		return err
	}
	if len(g.Edges) > 0 {
		if err := binary.Write(bw, binary.LittleEndian, g.Edges); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary or WriteBinaryV2
// (dispatching on the magic), verifying magic and checksums.
func ReadBinary(r io.Reader) (*graph.CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, readErr(err, "magic")
	}
	if magic == binaryMagic2 {
		return readBinaryV2(br)
	}
	if magic != binaryMagic {
		return nil, malformed("bad magic %q", magic[:])
	}
	var n, m int64
	var check uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, readErr(err, "header n")
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, readErr(err, "header m")
	}
	if err := binary.Read(br, binary.LittleEndian, &check); err != nil {
		return nil, readErr(err, "header checksum")
	}
	if n < 0 || m < 0 || n > MaxVertices || m > 64*MaxVertices {
		return nil, malformed("implausible header n=%d m=%d", n, m)
	}
	g := &graph.CSR{
		Offsets: make([]int64, n+1),
		Edges:   make([]int32, m),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, readErr(err, "offsets")
	}
	if m > 0 {
		if err := binary.Read(br, binary.LittleEndian, g.Edges); err != nil {
			return nil, readErr(err, "edges")
		}
	}
	if got := binChecksum(g); got != check {
		return nil, malformed("checksum mismatch: file %#x, computed %#x", check, got)
	}
	if err := g.Validate(); err != nil {
		return nil, malformed("%v", err)
	}
	return g, nil
}
