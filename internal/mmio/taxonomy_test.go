package mmio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"optibfs/internal/gen"
)

// failReader errors mid-stream, simulating a transport failure (as
// opposed to a clean truncation, which is the writer's fault).
type failReader struct{ n int }

func (r *failReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, errors.New("disk on fire")
	}
	k := r.n
	if k > len(p) {
		k = len(p)
	}
	for i := 0; i < k; i++ {
		p[i] = ' '
	}
	r.n -= k
	return k, nil
}

// TestErrorTaxonomy pins the two-kind error contract the daemon's
// status-code mapping depends on: bad bytes are ErrMalformed, broken
// streams are ErrIO, and the two never overlap.
func TestErrorTaxonomy(t *testing.T) {
	malformedCases := map[string]func() error{
		"mtx empty": func() error {
			_, err := ReadMatrixMarket(strings.NewReader(""))
			return err
		},
		"mtx truncated header": func() error {
			_, err := ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix coordinate"))
			return err
		},
		"mtx missing size line": func() error {
			_, err := ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix coordinate real general\n"))
			return err
		},
		"mtx overflow coordinate": func() error {
			_, err := ReadMatrixMarket(strings.NewReader(
				"%%MatrixMarket matrix coordinate real general\n2 2 1\n99999999999999999999 1 1\n"))
			return err
		},
		"mtx entry-count mismatch": func() error {
			_, err := ReadMatrixMarket(strings.NewReader(
				"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1\n"))
			return err
		},
		"edges overflow coordinate": func() error {
			_, err := ReadEdgeList(strings.NewReader("99999999999999999999 1\n"))
			return err
		},
		"edges garbage": func() error {
			_, err := ReadEdgeList(strings.NewReader("a b\n"))
			return err
		},
		"binary bad magic": func() error {
			_, err := ReadBinary(strings.NewReader("NOTMAGIC and then some"))
			return err
		},
	}
	for name, run := range malformedCases {
		err := run()
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: %v is not ErrMalformed", name, err)
		}
		if errors.Is(err, ErrIO) {
			t.Errorf("%s: %v is also ErrIO (kinds must not overlap)", name, err)
		}
	}

	// Truncated binary files are malformed (the bytes are wrong), not
	// I/O failures (the read succeeded).
	g, err := gen.ErdosRenyi(30, 120, 1, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for _, cut := range []int{4, 9, 23, len(valid) / 2} {
		_, err := ReadBinary(bytes.NewReader(valid[:cut]))
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("binary cut at %d: %v is not ErrMalformed", cut, err)
		}
	}

	// A reader that dies mid-stream is an I/O failure for every format.
	if _, err := ReadBinary(&failReader{n: 4}); !errors.Is(err, ErrIO) {
		t.Errorf("binary failing reader: %v is not ErrIO", err)
	}
}
