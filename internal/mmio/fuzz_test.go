package mmio

import (
	"bytes"
	"strings"
	"testing"

	"optibfs/internal/gen"
)

// Fuzz targets: the parsers must never panic or accept structurally
// invalid graphs, whatever bytes they are fed. `go test` runs the seed
// corpus as regression tests; `go test -fuzz FuzzReadMatrixMarket`
// explores further.

func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 1.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n0 0 0\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n999999999 2 1\n1 2 1\n")
	f.Add("%%MatrixMarket\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n-1 -5 0\n")
	// Truncated headers: the banner cut mid-word, and a size line with
	// a missing field.
	f.Add("%%MatrixMarket matrix coordinate")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n")
	// Overflow coordinates: 20 digits exceeds int64; ParseInt must
	// reject them instead of wrapping into a bogus in-range index.
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n99999999999999999999 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n99999999999999999999 2 1\n1 2 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMatrixMarket(strings.NewReader(in))
		if err == nil && g.Validate() != nil {
			t.Fatalf("parser accepted invalid graph for %q", in)
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n\n5 5\n")
	f.Add("9999999999999 1\n")
	f.Add("a b\n")
	f.Add("-3 4\n")
	f.Add("")
	// 20-digit overflow coordinate.
	f.Add("99999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err == nil && g.Validate() != nil {
			t.Fatalf("parser accepted invalid graph for %q", in)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and several corruptions of it.
	g, err := gen.ErdosRenyi(30, 120, 1, gen.Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Cuts at 9 and 23 land mid-way through the n and checksum header
	// fields; the others cover magic, offsets, and the final edge.
	for _, cut := range []int{0, 7, 8, 9, 20, 23, len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0xff // header n
	f.Add(flipped)
	// Implausible edge count: m's high bytes set, forcing the
	// plausibility gate rather than a giant allocation.
	bigM := append([]byte(nil), valid...)
	bigM[22] = 0x7f // top byte of little-endian m at offset 16..23
	f.Add(bigM)
	// Version-2 seeds: a valid file, truncations through the section
	// table and header checksum, a misaligned section offset (header
	// checksum recomputed so the alignment gate itself is reached), and
	// a corrupted per-section checksum.
	var buf2 bytes.Buffer
	if err := WriteBinaryV2(&buf2, g); err != nil {
		f.Fatal(err)
	}
	valid2 := buf2.Bytes()
	f.Add(valid2)
	for _, cut := range []int{0x18, 0x2c, 0x41, 0x57, v2HeaderSize, len(valid2) - 5} {
		f.Add(valid2[:cut])
	}
	n, m := int64(g.NumVertices()), g.NumEdges()
	mis := v2Header{n: n, m: m, sec: v2Layout(n, m)}
	mis.sec[1].off += 4
	f.Add(append(encodeV2Header(mis), valid2[v2HeaderSize:]...))
	badSum := append([]byte(nil), valid2...)
	badSum[v2HeaderSize+16] ^= 0x80 // offsets payload; section checksum catches it
	f.Add(badSum)
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err == nil && g.Validate() != nil {
			t.Fatal("binary reader accepted invalid graph")
		}
	})
}
