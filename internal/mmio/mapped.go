package mmio

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sync/atomic"
	"unsafe"

	"optibfs/internal/graph"
)

// MapOptions configures LoadMapped.
type MapOptions struct {
	// SkipVerify skips the section-checksum and structural-validation
	// scans, making the load cost O(page faults): only the header and
	// two boundary words are touched eagerly, and graph pages fault in
	// as the engine first reads them. Use only for files this process
	// (or another trusted writer) produced; a corrupt offsets array
	// read unverified can panic a worker at query time (the serving
	// layer's panic isolation contains, but does not excuse, that).
	SkipVerify bool
}

// MappedGraph owns a graph whose Offsets/Edges arrays alias a
// memory-mapped v2 binary file. The mapping stays live until every
// reference is released; anything that captured the CSR (an engine
// fleet, a ShardedCSR whose shards alias the edge array) must hold a
// reference for as long as it might read the arrays — reading after
// the final Release faults.
//
// The reference count starts at 1 (the load itself). Retain/Release
// are cheap atomics; Release of the last reference unmaps.
type MappedGraph struct {
	g    *graph.CSR
	data []byte // nil when the heap fallback loaded the graph
	refs atomic.Int64
	// unmapped is set exactly once, when the final reference goes away
	// (for the heap fallback there is nothing to unmap, but the flag
	// still records lifecycle end so tests can observe it).
	unmapped atomic.Bool
}

// LoadMapped opens a binary CSR file and maps it read-only, returning
// a graph whose arrays alias the mapping (zero copy). Files in the v1
// format, or platforms without mmap (or with big-endian byte order),
// fall back to a fully-verified heap load — the graph works the same
// but Mapped() reports false.
//
// Error taxonomy: a path that does not exist, is a directory, or is
// unreadable by permission is the requester's fault (ErrMalformed, as
// are all format violations); other filesystem failures are ErrIO.
func LoadMapped(path string, opt MapOptions) (*MappedGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, pathErr(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, pathErr(err)
	}
	if st.IsDir() {
		return nil, malformed("%s is a directory", path)
	}
	size := st.Size()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, readErr(err, "magic")
	}
	if magic != binaryMagic2 || !hostLittleEndian() || !mmapSupported {
		return loadHeap(f)
	}
	data, err := mmapFile(f, size)
	if err != nil {
		return nil, ioErr(err)
	}
	mg, err := newMapped(data, size, opt)
	if err != nil {
		_ = munmapFile(data)
		return nil, err
	}
	return mg, nil
}

// pathErr classifies an open/stat failure per the taxonomy.
func pathErr(err error) error {
	if errors.Is(err, fs.ErrNotExist) || errors.Is(err, fs.ErrPermission) || errors.Is(err, fs.ErrInvalid) {
		return malformed("%v", err)
	}
	return ioErr(err)
}

// loadHeap is the copying fallback: rewind and run the streaming
// reader (which always verifies checksums and structure).
func loadHeap(f *os.File) (*MappedGraph, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, ioErr(err)
	}
	g, err := ReadBinary(f)
	if err != nil {
		return nil, err
	}
	mg := &MappedGraph{g: g}
	mg.refs.Store(1)
	return mg, nil
}

// newMapped builds the zero-copy graph view over mapped file bytes.
func newMapped(data []byte, size int64, opt MapOptions) (*MappedGraph, error) {
	if int64(len(data)) < v2HeaderSize {
		return nil, malformed("file is %d bytes, v2 header needs %d", len(data), v2HeaderSize)
	}
	h, err := parseV2Header(data[:v2HeaderSize], size)
	if err != nil {
		return nil, err
	}
	// The mapping is page-aligned and the section offsets are 64-byte
	// aligned, so these casts produce properly aligned slices.
	offsets := unsafe.Slice((*int64)(unsafe.Pointer(&data[h.sec[0].off])), h.n+1)
	var edgesArr []int32
	if h.m > 0 {
		edgesArr = unsafe.Slice((*int32)(unsafe.Pointer(&data[h.sec[1].off])), h.m)
	}
	g := &graph.CSR{Offsets: offsets, Edges: edgesArr}
	// Boundary spot checks are always on: two page touches that catch
	// the most common way a stale/foreign file slips past the header.
	if offsets[0] != 0 {
		return nil, malformed("Offsets[0] = %d, want 0", offsets[0])
	}
	if offsets[h.n] != h.m {
		return nil, malformed("Offsets[n] = %d, want m = %d", offsets[h.n], h.m)
	}
	if !opt.SkipVerify {
		if err := verifyV2Sections(g, h); err != nil {
			return nil, err
		}
	}
	mg := &MappedGraph{g: g, data: data}
	mg.refs.Store(1)
	return mg, nil
}

// Graph returns the loaded graph. The caller must hold a reference.
func (m *MappedGraph) Graph() *graph.CSR { return m.g }

// Mapped reports whether the graph aliases a live memory mapping
// (false for heap-fallback loads, where lifecycle is only bookkeeping).
func (m *MappedGraph) Mapped() bool { return m.data != nil && !m.unmapped.Load() }

// Unmapped reports whether the final reference has been released.
func (m *MappedGraph) Unmapped() bool { return m.unmapped.Load() }

// Retain adds a reference. Callers may only retain while holding an
// existing reference (the load's own reference counts).
func (m *MappedGraph) Retain() {
	if m.refs.Add(1) <= 1 {
		panic("mmio: Retain after final Release")
	}
}

// Release drops a reference; the last one unmaps the file. Releasing
// more times than retained panics — the double release would otherwise
// silently unmap under a live reader.
func (m *MappedGraph) Release() error {
	n := m.refs.Add(-1)
	if n < 0 {
		panic("mmio: Release without matching Retain")
	}
	if n > 0 {
		return nil
	}
	m.unmapped.Store(true)
	if m.data != nil {
		data := m.data
		m.data = nil
		if err := munmapFile(data); err != nil {
			return ioErr(err)
		}
	}
	return nil
}

// hostLittleEndian reports whether this machine stores integers
// little-endian (the v2 on-disk order; big-endian hosts take the
// byte-swapping heap path).
func hostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
