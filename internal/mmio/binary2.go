package mmio

import (
	"bufio"
	"encoding/binary"
	"io"
	"runtime"
	"sync"

	"optibfs/internal/graph"
	"optibfs/internal/rng"
)

// Binary CSR format, version 2 — designed so a reader can mmap the
// file and hand the section bytes directly to the engine as the
// Offsets/Edges arrays (zero copies, load cost O(page faults)):
//
//	0x00  magic     [8]byte "OPTIBFS2"
//	0x08  n         int64   vertices
//	0x10  m         int64   edges
//	0x18  sections  uint32  (always 2)
//	0x1c  flags     uint32  (always 0; reserved)
//	0x20  table     2 × {off uint64, len uint64, sum uint64}
//	0x50  headerSum uint64  Mix64 chain over bytes [0x00, 0x50)
//	0x58  zero padding to 0x80
//	0x80  section 0: offsets, (n+1)×8 bytes
//	      zero padding to the next 64-byte boundary
//	      section 1: edges, m×4 bytes
//
// All integers little-endian. Every section begins on a 64-byte
// boundary (cache-line aligned, and in particular 8-byte aligned so the
// mapped bytes can be viewed as []int64/[]int32 directly). Each section
// carries its own checksum — an XOR of per-element index-salted Mix64
// values, so verification parallelizes over chunks and computes
// identically whether the data was streamed or mapped.
var binaryMagic2 = [8]byte{'O', 'P', 'T', 'I', 'B', 'F', 'S', '2'}

const (
	// v2HeaderSize is the byte offset of section 0: fixed header plus
	// table plus padding. A multiple of v2Align.
	v2HeaderSize = 0x80
	// v2Align is the section alignment.
	v2Align = 64
	// v2Sections is the number of sections (offsets, edges).
	v2Sections = 2
)

// v2Section describes one entry of the v2 section table.
type v2Section struct {
	off, length, sum uint64
}

// v2Header is the parsed fixed header of a v2 file.
type v2Header struct {
	n, m int64
	sec  [v2Sections]v2Section
}

// align64 rounds x up to the next multiple of v2Align.
func align64(x uint64) uint64 {
	return (x + v2Align - 1) &^ (v2Align - 1)
}

// sumChunkMin is the smallest per-goroutine chunk worth forking for in
// the parallel section checksums.
const sumChunkMin = 1 << 18

// sumOffsets checksums an offsets section. XOR-combining makes the sum
// independent of chunking, so it is computed in parallel.
func sumOffsets(offs []int64) uint64 {
	return parallelSum(len(offs), func(lo, hi int) uint64 {
		var h uint64
		for i := lo; i < hi; i++ {
			h ^= rng.Mix64(uint64(offs[i]) + uint64(i)*0x9e37)
		}
		return h
	})
}

// sumEdges checksums an edges section, chunk-independent like sumOffsets.
func sumEdges(edges []int32) uint64 {
	return parallelSum(len(edges), func(lo, hi int) uint64 {
		var h uint64
		for i := lo; i < hi; i++ {
			h ^= rng.Mix64(uint64(uint32(edges[i])) + uint64(i)*0x85eb)
		}
		return h
	})
}

// parallelSum XOR-combines f over chunks of [0, n) using up to
// GOMAXPROCS goroutines for large n.
func parallelSum(n int, f func(lo, hi int) uint64) uint64 {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if n < sumChunkMin || workers < 2 {
		return f(0, n)
	}
	parts := make([]uint64, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			parts[k] = f(n*k/workers, n*(k+1)/workers)
		}(k)
	}
	wg.Wait()
	var h uint64
	for _, p := range parts {
		h ^= p
	}
	return h
}

// v2HeaderSum hashes the first 0x50 header bytes as ten uint64 words.
func v2HeaderSum(hdr []byte) uint64 {
	var h uint64
	for i := 0; i < 0x50; i += 8 {
		h ^= rng.Mix64(binary.LittleEndian.Uint64(hdr[i:]) + uint64(i)*0xc2b2)
	}
	return h
}

// v2Layout computes the section table for a graph of n vertices and m
// edges (offsets and lengths only; sums filled by the caller).
func v2Layout(n, m int64) [v2Sections]v2Section {
	var sec [v2Sections]v2Section
	sec[0].off = v2HeaderSize
	sec[0].length = uint64(n+1) * 8
	sec[1].off = align64(sec[0].off + sec[0].length)
	sec[1].length = uint64(m) * 4
	return sec
}

// encodeV2Header serializes the fixed header (including headerSum) into
// a v2HeaderSize-byte block, zero padded.
func encodeV2Header(h v2Header) []byte {
	buf := make([]byte, v2HeaderSize)
	copy(buf, binaryMagic2[:])
	binary.LittleEndian.PutUint64(buf[0x08:], uint64(h.n))
	binary.LittleEndian.PutUint64(buf[0x10:], uint64(h.m))
	binary.LittleEndian.PutUint32(buf[0x18:], v2Sections)
	binary.LittleEndian.PutUint32(buf[0x1c:], 0)
	for i, s := range h.sec {
		base := 0x20 + 24*i
		binary.LittleEndian.PutUint64(buf[base:], s.off)
		binary.LittleEndian.PutUint64(buf[base+8:], s.length)
		binary.LittleEndian.PutUint64(buf[base+16:], s.sum)
	}
	binary.LittleEndian.PutUint64(buf[0x50:], v2HeaderSum(buf))
	return buf
}

// parseV2Header validates and decodes a v2HeaderSize-byte header block
// against the total file size (fileSize < 0 skips the bounds check, for
// streaming readers that do not know the size up front).
func parseV2Header(buf []byte, fileSize int64) (v2Header, error) {
	var h v2Header
	if len(buf) < v2HeaderSize {
		return h, malformed("truncated v2 header: %d bytes", len(buf))
	}
	if [8]byte(buf[:8]) != binaryMagic2 {
		return h, malformed("bad magic %q", buf[:8])
	}
	if got, want := binary.LittleEndian.Uint64(buf[0x50:]), v2HeaderSum(buf); got != want {
		return h, malformed("header checksum mismatch: file %#x, computed %#x", got, want)
	}
	h.n = int64(binary.LittleEndian.Uint64(buf[0x08:]))
	h.m = int64(binary.LittleEndian.Uint64(buf[0x10:]))
	if h.n < 0 || h.m < 0 || h.n > MaxVertices || h.m > 64*MaxVertices {
		return h, malformed("implausible header n=%d m=%d", h.n, h.m)
	}
	if ns := binary.LittleEndian.Uint32(buf[0x18:]); ns != v2Sections {
		return h, malformed("section table has %d sections, want %d", ns, v2Sections)
	}
	want := v2Layout(h.n, h.m)
	for i := range h.sec {
		base := 0x20 + 24*i
		h.sec[i] = v2Section{
			off:    binary.LittleEndian.Uint64(buf[base:]),
			length: binary.LittleEndian.Uint64(buf[base+8:]),
			sum:    binary.LittleEndian.Uint64(buf[base+16:]),
		}
		if h.sec[i].off != want[i].off || h.sec[i].length != want[i].length {
			return h, malformed("section %d at [%d,+%d), want [%d,+%d) (misaligned or inconsistent with n/m)",
				i, h.sec[i].off, h.sec[i].length, want[i].off, want[i].length)
		}
		if h.sec[i].off%v2Align != 0 {
			return h, malformed("section %d offset %d not %d-byte aligned", i, h.sec[i].off, v2Align)
		}
	}
	if fileSize >= 0 {
		last := h.sec[v2Sections-1]
		if need := int64(last.off + last.length); fileSize < need {
			return h, malformed("file is %d bytes, sections need %d", fileSize, need)
		}
	}
	return h, nil
}

// WriteBinaryV2 writes g in binary format version 2 (the mappable,
// section-checksummed layout). Prefer it over WriteBinary for graphs
// that will be served by bfsd or reloaded often; readers accept both.
func WriteBinaryV2(w io.Writer, g *graph.CSR) error {
	n, m := int64(g.NumVertices()), g.NumEdges()
	offsets := g.Offsets
	if len(offsets) == 0 {
		offsets = []int64{0}
	}
	h := v2Header{n: n, m: m, sec: v2Layout(n, m)}
	h.sec[0].sum = sumOffsets(offsets)
	h.sec[1].sum = sumEdges(g.Edges)
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(encodeV2Header(h)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, offsets); err != nil {
		return err
	}
	if pad := int(h.sec[1].off - (h.sec[0].off + h.sec[0].length)); pad > 0 {
		if _, err := bw.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	if m > 0 {
		if err := binary.Write(bw, binary.LittleEndian, g.Edges); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readBinaryV2 reads the stream form of a v2 file whose 8 magic bytes
// have already been consumed. Streaming always verifies section
// checksums and structural validity — it is the trust-establishing
// path; only LoadMapped offers the O(page faults) fast load.
func readBinaryV2(br *bufio.Reader) (*graph.CSR, error) {
	hdr := make([]byte, v2HeaderSize)
	copy(hdr, binaryMagic2[:])
	if _, err := io.ReadFull(br, hdr[8:]); err != nil {
		return nil, readErr(err, "v2 header")
	}
	h, err := parseV2Header(hdr, -1)
	if err != nil {
		return nil, err
	}
	g := &graph.CSR{
		Offsets: make([]int64, h.n+1),
		Edges:   make([]int32, h.m),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, readErr(err, "offsets")
	}
	if pad := int(h.sec[1].off - (h.sec[0].off + h.sec[0].length)); pad > 0 {
		if _, err := io.CopyN(io.Discard, br, int64(pad)); err != nil {
			return nil, readErr(err, "section padding")
		}
	}
	if h.m > 0 {
		if err := binary.Read(br, binary.LittleEndian, g.Edges); err != nil {
			return nil, readErr(err, "edges")
		}
	}
	return g, verifyV2Sections(g, h)
}

// verifyV2Sections checks both section checksums and the structural
// CSR invariants of an already-materialized v2 graph.
func verifyV2Sections(g *graph.CSR, h v2Header) error {
	if got := sumOffsets(g.Offsets); got != h.sec[0].sum {
		return malformed("offsets checksum mismatch: file %#x, computed %#x", h.sec[0].sum, got)
	}
	if got := sumEdges(g.Edges); got != h.sec[1].sum {
		return malformed("edges checksum mismatch: file %#x, computed %#x", h.sec[1].sum, got)
	}
	if err := g.Validate(); err != nil {
		return malformed("%v", err)
	}
	return nil
}
