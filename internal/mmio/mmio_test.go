package mmio

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 2 0.5
2 3 1.0
3 1 2.0
1 3 7
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if nb := g.Neighbors(0); len(nb) != 2 {
		t.Fatalf("neighbors of 0: %v", nb)
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
3 3 3
2 1
3 1
2 2
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// 2 off-diagonal entries doubled + 1 diagonal = 5 directed edges.
	if g.NumEdges() != 5 {
		t.Fatalf("m=%d want 5", g.NumEdges())
	}
	found := false
	for _, w := range g.Neighbors(0) {
		if w == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("symmetric reverse edge 1->2 missing")
	}
}

func TestReadMatrixMarketRectangular(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 5 1
1 5
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("n=%d want 5 (max dim)", g.NumVertices())
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"notmm":       "hello world\n1 1 1\n",
		"array":       "%%MatrixMarket matrix array real general\n",
		"badsymmetry": "%%MatrixMarket matrix coordinate real diagonal\n1 1 0\n",
		"nosize":      "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"badsize":     "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"outofrange":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"countdrift":  "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"malformed":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"badindex":    "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n",
		"zerobased":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted malformed input", name)
		}
	}
}

func TestMaxVerticesGuards(t *testing.T) {
	// Headers declaring absurd sizes must be rejected before any large
	// allocation happens (found by the fuzz corpus).
	huge := "%%MatrixMarket matrix coordinate real general\n999999999 2 1\n1 2 1.0\n"
	if _, err := ReadMatrixMarket(strings.NewReader(huge)); err == nil {
		t.Fatal("accepted 1e9-vertex header")
	}
	manyEntries := "%%MatrixMarket matrix coordinate real general\n2 2 99999999999\n"
	if _, err := ReadMatrixMarket(strings.NewReader(manyEntries)); err == nil {
		t.Fatal("accepted absurd entry count")
	}
	if _, err := ReadEdgeList(strings.NewReader("999999999999 1\n")); err == nil {
		t.Fatal("edge list accepted absurd vertex id")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g, err := gen.Graph500RMAT(300, 2000, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameGraph(g, g2); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := gen.ChungLu(200, 1500, 2.3, 8, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Trailing isolated vertices are not representable in an edge list;
	// compare up to the written vertex range.
	if g2.NumVertices() > g.NumVertices() {
		t.Fatalf("edge list grew the graph: %d -> %d", g.NumVertices(), g2.NumVertices())
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("m=%d want %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestReadEdgeListCommentsAndErrors(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# comment\n\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for _, bad := range []string{"0\n", "a b\n", "0 x\n", "-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g, err := gen.LayeredRandom(500, 3000, 9, 2, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameGraph(g, g2); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	for _, g := range []*graph.CSR{
		{Offsets: []int64{0}},    // zero vertices
		{Offsets: []int64{0, 0}}, // one isolated vertex
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != 0 {
			t.Fatalf("n=%d m=%d, want n=%d m=0", g2.NumVertices(), g2.NumEdges(), g.NumVertices())
		}
	}
}

func TestBinaryDetectsCorruption(t *testing.T) {
	g, err := gen.ErdosRenyi(100, 500, 1, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad magic")
	}

	// Flip one payload byte: checksum must catch it.
	bad = append([]byte(nil), data...)
	bad[len(bad)-3] ^= 0x01
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted corrupted payload")
	}

	// Truncation.
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-8])); err == nil {
		t.Fatal("accepted truncated file")
	}
	if _, err := ReadBinary(bytes.NewReader(data[:4])); err == nil {
		t.Fatal("accepted tiny file")
	}
}

// Property: binary round trip is the identity on random RMAT graphs.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		n := int32(1 + seed%100)
		g, err := gen.Graph500RMAT(n, int64(seed%500), seed, gen.Options{})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if WriteBinary(&buf, g) != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return sameGraph(g, g2) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sameGraph(a, b *graph.CSR) error {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return errf("shape differs: (%d,%d) vs (%d,%d)", a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := int32(0); v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return errf("degree of %d differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				return errf("adjacency of %d differs at %d", v, i)
			}
		}
	}
	return nil
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
