// Package baseline2 reimplements the comparison system the reproduced
// paper calls Baseline2: the multicore CPU BFS variants of Hong,
// Oguntebi & Olukotun, "Efficient Parallel Graph Exploration on
// Multi-Core CPU and GPU" (PACT 2011). In contrast to the paper's
// algorithms these rely on atomic read-modify-write instructions —
// fetch-add cursors for queue dispatch and a compare-and-swap visited
// bitmap for duplicate elimination — which is exactly the contrast the
// reproduction measures (see the AtomicRMW counter).
package baseline2

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"optibfs/internal/core"
	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// Variant selects one of Baseline2's CPU strategies.
type Variant string

const (
	// QueueCAS uses one shared next-level queue: workers reserve output
	// slots with atomic fetch-add and eliminate duplicates with a CAS
	// visited bitmap.
	QueueCAS Variant = "queue+cas"
	// ReadArray is Hong's read-based method: no queues at all; every
	// level each worker scans its static share of the whole vertex
	// array for frontier vertices.
	ReadArray Variant = "read"
	// LocalQueue gives each worker a private output queue (concatenated
	// between levels); the input frontier is dispatched in chunks via a
	// fetch-add cursor. No visited bitmap: the dist check alone guards
	// discovery, so duplicates can appear (and are benign).
	LocalQueue Variant = "localq"
	// LocalQueueBitmap is LocalQueue plus the CAS visited bitmap — the
	// configuration the reproduced paper reports as
	// "Local queue + read + bitmap", its strongest Baseline2.
	LocalQueueBitmap Variant = "localq+bitmap"
	// Hybrid is Hong's per-level strategy picker: serial processing for
	// tiny frontiers, ReadArray for huge frontiers, LocalQueueBitmap
	// otherwise.
	Hybrid Variant = "hybrid"
)

// Variants lists all Baseline2 strategies in presentation order.
var Variants = []Variant{QueueCAS, ReadArray, LocalQueue, LocalQueueBitmap, Hybrid}

// chunk is the frontier dispatch granularity for the fetch-add cursors.
const chunk = 64

// Hybrid thresholds: frontiers smaller than hybridSerialMax vertices
// are processed serially; frontiers larger than n/hybridReadFrac
// switch to the read-based scan.
const (
	hybridSerialMax = 128
	hybridReadFrac  = 4
)

// Run executes the chosen Baseline2 variant on g from src.
func Run(g *graph.CSR, src int32, variant Variant, opt core.Options) (*core.Result, error) {
	if g == nil {
		return nil, fmt.Errorf("baseline2: nil graph")
	}
	if src < 0 || src >= g.NumVertices() {
		return nil, fmt.Errorf("baseline2: source %d out of range [0,%d)", src, g.NumVertices())
	}
	switch variant {
	case QueueCAS, ReadArray, LocalQueue, LocalQueueBitmap, Hybrid:
	default:
		return nil, fmt.Errorf("baseline2: unknown variant %q", variant)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	r := &runner{
		g:        g,
		variant:  variant,
		workers:  workers,
		dist:     make([]int32, g.NumVertices()),
		counters: stats.NewPerWorker(workers),
		yield:    workers > runtime.GOMAXPROCS(0),
	}
	for i := range r.dist {
		r.dist[i] = graph.Unreached
	}
	r.dist[src] = 0
	if variant == QueueCAS || variant == LocalQueueBitmap || variant == Hybrid {
		r.bitmap = make([]uint64, (int(g.NumVertices())+63)/64)
		r.setBitSerial(src)
	}
	r.run(src)

	total := stats.Sum(r.counters)
	res := &core.Result{
		Dist:      r.dist,
		Levels:    r.levels,
		Workers:   workers,
		Counters:  total,
		PerWorker: r.counters,
		Pops:      total.VerticesPopped,
	}
	res.Reached, res.EdgesTraversed = graph.ReachedCount(g, r.dist)
	return res, nil
}

type runner struct {
	g        *graph.CSR
	variant  Variant
	workers  int
	dist     []int32
	bitmap   []uint64 // nil when the variant has no visited bitmap
	counters []stats.PaddedCounters
	levels   int32
	// yield: cooperative scheduling on oversubscribed hosts, so chunk
	// dispatch round-robins and per-worker counters stay meaningful
	// (same rationale as internal/core's state.yield).
	yield bool
}

// maybeYield hands the thread over at chunk boundaries when
// oversubscribed.
func (r *runner) maybeYield() {
	if r.yield {
		runtime.Gosched()
	}
}

// setBitSerial marks v visited without atomics (pre-run setup).
func (r *runner) setBitSerial(v int32) {
	r.bitmap[v>>6] |= 1 << (uint(v) & 63)
}

// testAndSet atomically sets v's visited bit, reporting whether this
// call was the one that set it. Every CAS attempt is an atomic RMW.
func (r *runner) testAndSet(v int32, c *stats.Counters) bool {
	w := &r.bitmap[v>>6]
	mask := uint64(1) << (uint(v) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		c.AtomicRMW++
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// parallel runs fn(id) on `workers` goroutines and waits.
func (r *runner) parallel(fn func(id int)) {
	var wg sync.WaitGroup
	wg.Add(r.workers)
	for id := 0; id < r.workers; id++ {
		go func(id int) {
			defer wg.Done()
			fn(id)
		}(id)
	}
	wg.Wait()
}

func (r *runner) run(src int32) {
	switch r.variant {
	case ReadArray:
		r.runReadArray()
	default:
		r.runQueued(src)
	}
}

// runReadArray is the no-queue method: each level every worker scans
// its static slice of the vertex array for vertices at the current
// level. Termination uses a per-level discovered flag.
func (r *runner) runReadArray() {
	n := int(r.g.NumVertices())
	var found int32 // atomic flag: any discovery this level
	for level := int32(0); ; level++ {
		atomic.StoreInt32(&found, 0)
		r.parallel(func(id int) {
			c := &r.counters[id].Counters
			lo := n * id / r.workers
			hi := n * (id + 1) / r.workers
			localFound := false
			for v := lo; v < hi; v++ {
				if atomic.LoadInt32(&r.dist[v]) != level {
					continue
				}
				c.VerticesPopped++
				nb := r.g.Neighbors(int32(v))
				c.EdgesScanned += int64(len(nb))
				for _, w := range nb {
					if atomic.LoadInt32(&r.dist[w]) == graph.Unreached {
						atomic.StoreInt32(&r.dist[w], level+1)
						c.Discovered++
						localFound = true
					}
				}
			}
			if localFound {
				atomic.StoreInt32(&found, 1)
			}
		})
		r.levels = level + 1
		if atomic.LoadInt32(&found) == 0 {
			return
		}
	}
}

// runQueued drives the queue-based variants (and Hybrid's picker).
func (r *runner) runQueued(src int32) {
	n := int(r.g.NumVertices())
	frontier := make([]int32, 1, 1024)
	frontier[0] = src

	// QueueCAS shares one output array across workers.
	var sharedNext []int32
	var sharedLen int64
	if r.variant == QueueCAS {
		sharedNext = make([]int32, n)
	}
	outs := make([][]int32, r.workers)
	for i := range outs {
		outs[i] = make([]int32, 0, 256)
	}

	for level := int32(0); len(frontier) > 0; level++ {
		r.levels = level + 1
		mode := r.variant
		if r.variant == Hybrid {
			switch {
			case len(frontier) <= hybridSerialMax:
				mode = "serial"
			case len(frontier) >= n/hybridReadFrac:
				mode = ReadArray
			default:
				mode = LocalQueueBitmap
			}
		}

		switch mode {
		case "serial":
			// Tiny frontier: one worker, no dispatch overhead at all.
			c := &r.counters[0].Counters
			out := outs[0][:0]
			for _, v := range frontier {
				out = r.explore(v, level, out, c)
			}
			outs[0] = out
			frontier = frontier[:0]
			frontier = append(frontier, out...)

		case ReadArray:
			// Scan mode for one level, then rebuild the frontier from
			// the dist array (parallel range collection).
			r.scanLevel(level)
			frontier = r.collectLevel(level + 1)

		case QueueCAS:
			atomic.StoreInt64(&sharedLen, 0)
			var cursor int64
			r.parallel(func(id int) {
				c := &r.counters[id].Counters
				for {
					c.AtomicRMW++
					start := atomic.AddInt64(&cursor, chunk) - chunk
					if start >= int64(len(frontier)) {
						return
					}
					end := start + chunk
					if end > int64(len(frontier)) {
						end = int64(len(frontier))
					}
					c.Fetches++
					for _, v := range frontier[start:end] {
						c.VerticesPopped++
						nb := r.g.Neighbors(v)
						c.EdgesScanned += int64(len(nb))
						for _, w := range nb {
							if r.testAndSet(w, c) {
								atomic.StoreInt32(&r.dist[w], level+1)
								c.Discovered++
								c.AtomicRMW++
								slot := atomic.AddInt64(&sharedLen, 1) - 1
								sharedNext[slot] = w
							}
						}
					}
					r.maybeYield()
				}
			})
			frontier = frontier[:0]
			frontier = append(frontier, sharedNext[:atomic.LoadInt64(&sharedLen)]...)

		default: // LocalQueue / LocalQueueBitmap
			var cursor int64
			r.parallel(func(id int) {
				c := &r.counters[id].Counters
				out := outs[id][:0]
				for {
					c.AtomicRMW++
					start := atomic.AddInt64(&cursor, chunk) - chunk
					if start >= int64(len(frontier)) {
						break
					}
					end := start + chunk
					if end > int64(len(frontier)) {
						end = int64(len(frontier))
					}
					c.Fetches++
					for _, v := range frontier[start:end] {
						out = r.explore(v, level, out, c)
					}
					r.maybeYield()
				}
				outs[id] = out
			})
			frontier = frontier[:0]
			for id := range outs {
				frontier = append(frontier, outs[id]...)
			}
		}
	}
}

// explore expands v at the given level into out, using the bitmap when
// the variant has one and the benign dist race otherwise.
func (r *runner) explore(v int32, level int32, out []int32, c *stats.Counters) []int32 {
	c.VerticesPopped++
	nb := r.g.Neighbors(v)
	c.EdgesScanned += int64(len(nb))
	for _, w := range nb {
		if r.bitmap != nil {
			if r.testAndSet(w, c) {
				atomic.StoreInt32(&r.dist[w], level+1)
				c.Discovered++
				out = append(out, w)
			}
			continue
		}
		if atomic.LoadInt32(&r.dist[w]) == graph.Unreached {
			atomic.StoreInt32(&r.dist[w], level+1)
			c.Discovered++
			out = append(out, w)
		}
	}
	return out
}

// scanLevel explores every vertex at `level` by scanning the vertex
// array (read mode used inside Hybrid).
func (r *runner) scanLevel(level int32) {
	n := int(r.g.NumVertices())
	r.parallel(func(id int) {
		c := &r.counters[id].Counters
		lo := n * id / r.workers
		hi := n * (id + 1) / r.workers
		for v := lo; v < hi; v++ {
			if atomic.LoadInt32(&r.dist[v]) != level {
				continue
			}
			c.VerticesPopped++
			nb := r.g.Neighbors(int32(v))
			c.EdgesScanned += int64(len(nb))
			for _, w := range nb {
				if r.bitmap != nil {
					if r.testAndSet(w, c) {
						atomic.StoreInt32(&r.dist[w], level+1)
						c.Discovered++
					}
					continue
				}
				if atomic.LoadInt32(&r.dist[w]) == graph.Unreached {
					atomic.StoreInt32(&r.dist[w], level+1)
					c.Discovered++
				}
			}
		}
	})
}

// collectLevel gathers all vertices at `level` into a fresh frontier
// slice (parallel scan, per-worker buffers, ordered concatenation).
func (r *runner) collectLevel(level int32) []int32 {
	n := int(r.g.NumVertices())
	parts := make([][]int32, r.workers)
	r.parallel(func(id int) {
		lo := n * id / r.workers
		hi := n * (id + 1) / r.workers
		var part []int32
		for v := lo; v < hi; v++ {
			if atomic.LoadInt32(&r.dist[v]) == level {
				part = append(part, int32(v))
			}
		}
		parts[id] = part
	})
	var out []int32
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
