package baseline2

import (
	"fmt"
	"testing"
	"testing/quick"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func check(t *testing.T, g *graph.CSR, src int32, v Variant, workers int) *core.Result {
	t.Helper()
	res, err := Run(g, src, v, core.Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, src)
	if err := graph.EqualDistances(res.Dist, want); err != nil {
		t.Fatalf("%s workers=%d: %v", v, workers, err)
	}
	if err := graph.ValidateDistances(g, src, res.Dist); err != nil {
		t.Fatalf("%s: %v", v, err)
	}
	if res.Levels != graph.Eccentricity(want)+1 {
		t.Fatalf("%s: levels=%d want %d", v, res.Levels, graph.Eccentricity(want)+1)
	}
	return res
}

func TestAllVariantsAllGraphs(t *testing.T) {
	graphs := map[string]func() (*graph.CSR, error){
		"single":   func() (*graph.CSR, error) { return graph.FromEdges(1, nil, graph.BuildOptions{}) },
		"path":     func() (*graph.CSR, error) { return gen.Path(200) },
		"star":     func() (*graph.CSR, error) { return gen.Star(400) },
		"grid":     func() (*graph.CSR, error) { return gen.Grid2D(15, 21, false) },
		"rmat":     func() (*graph.CSR, error) { return gen.Graph500RMAT(2048, 16384, 3, gen.Options{}) },
		"chunglu":  func() (*graph.CSR, error) { return gen.ChungLu(2048, 16384, 2.2, 5, gen.Options{}) },
		"complete": func() (*graph.CSR, error) { return gen.Complete(50) },
		"disjoint": func() (*graph.CSR, error) {
			return graph.FromEdges(20, []graph.Edge{{Src: 0, Dst: 1}, {Src: 5, Dst: 6}}, graph.BuildOptions{})
		},
	}
	for name, mk := range graphs {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range Variants {
			for _, workers := range []int{1, 3, 8} {
				t.Run(fmt.Sprintf("%s/%s/p%d", name, variant, workers), func(t *testing.T) {
					check(t, g, 0, variant, workers)
				})
			}
		}
	}
}

func TestInputValidation(t *testing.T) {
	g, _ := gen.Path(5)
	if _, err := Run(nil, 0, QueueCAS, core.Options{}); err == nil {
		t.Fatal("accepted nil graph")
	}
	if _, err := Run(g, 99, QueueCAS, core.Options{}); err == nil {
		t.Fatal("accepted bad source")
	}
	if _, err := Run(g, 0, Variant("bogus"), core.Options{}); err == nil {
		t.Fatal("accepted unknown variant")
	}
}

func TestAtomicRMWAccounting(t *testing.T) {
	g, err := gen.ErdosRenyi(2000, 16000, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every variant that dispatches or deduplicates must report RMW use.
	for _, v := range []Variant{QueueCAS, LocalQueue, LocalQueueBitmap, Hybrid} {
		res := check(t, g, 0, v, 4)
		if res.Counters.AtomicRMW == 0 {
			t.Fatalf("%s reported no atomic RMW", v)
		}
	}
	// ReadArray uses no cursors and no bitmap: zero RMW.
	res := check(t, g, 0, ReadArray, 4)
	if res.Counters.AtomicRMW != 0 {
		t.Fatalf("ReadArray reported %d RMW", res.Counters.AtomicRMW)
	}
}

func TestBitmapPreventsDuplicates(t *testing.T) {
	// On a dense graph the bitmap variants must pop each vertex exactly
	// once, while LocalQueue (dist-check only) may pop duplicates.
	g, err := gen.Complete(200)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{QueueCAS, LocalQueueBitmap} {
		res := check(t, g, 0, v, 8)
		if res.Duplicates() != 0 {
			t.Fatalf("%s popped %d duplicates despite bitmap", v, res.Duplicates())
		}
	}
}

func TestReadArrayScansWithoutQueues(t *testing.T) {
	g, err := gen.LayeredRandom(1000, 6000, 10, 2, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := check(t, g, 0, ReadArray, 4)
	if res.Counters.Fetches != 0 {
		t.Fatalf("ReadArray recorded %d queue fetches", res.Counters.Fetches)
	}
}

func TestHybridHandlesAllRegimes(t *testing.T) {
	// A path keeps every frontier tiny (serial mode); a complete graph
	// makes one huge frontier (read mode); ChungLu exercises the middle.
	for _, mk := range []func() (*graph.CSR, error){
		func() (*graph.CSR, error) { return gen.Path(300) },
		func() (*graph.CSR, error) { return gen.Complete(300) },
		func() (*graph.CSR, error) { return gen.ChungLu(4096, 32768, 2.2, 3, gen.Options{}) },
	} {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		check(t, g, 0, Hybrid, 4)
	}
}

func TestRepeatedRuns(t *testing.T) {
	g, err := gen.ChungLu(4096, 32768, 2.1, 11, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, v := range Variants {
		for rep := 0; rep < 5; rep++ {
			res, err := Run(g, 0, v, core.Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := graph.EqualDistances(res.Dist, want); err != nil {
				t.Fatalf("%s rep %d: %v", v, rep, err)
			}
		}
	}
}

func TestPropertyVariantsCorrect(t *testing.T) {
	f := func(seed uint64) bool {
		n := int32(2 + seed%250)
		g, err := gen.Graph500RMAT(n, int64(seed%1500), seed, gen.Options{})
		if err != nil {
			return false
		}
		src := int32(seed % uint64(n))
		variant := Variants[seed%uint64(len(Variants))]
		res, err := Run(g, src, variant, core.Options{Workers: 1 + int(seed%6)})
		if err != nil {
			return false
		}
		return graph.EqualDistances(res.Dist, graph.ReferenceBFS(g, src)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
