package gen

import "testing"

// Generator throughput benchmarks: edges generated per op. These bound
// how long full-scale (-scale 1) experiment setup takes.

func BenchmarkRMAT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Graph500RMAT(1<<14, 1<<18, uint64(i), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChungLu(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ChungLu(1<<14, 1<<18, 2.2, uint64(i), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLayeredRandom(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LayeredRandom(1<<14, 1<<18, 50, uint64(i), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErdosRenyi(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ErdosRenyi(1<<14, 1<<18, uint64(i), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
