package gen

import (
	"math"
	"testing"
	"testing/quick"

	"optibfs/internal/graph"
)

func TestRMATBasicShape(t *testing.T) {
	g, err := Graph500RMAT(1000, 8000, 42, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if g.NumEdges() != 8000 {
		t.Fatalf("m=%d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, _ := Graph500RMAT(512, 2048, 7, Options{})
	b, _ := Graph500RMAT(512, 2048, 7, Options{})
	if err := graph.EqualDistances(a.Edges, b.Edges); err != nil {
		t.Fatalf("same-seed RMAT differs: %v", err)
	}
	c, _ := Graph500RMAT(512, 2048, 8, Options{})
	same := true
	for i := range c.Edges {
		if c.Edges[i] != a.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical RMAT graphs")
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// With a=0.45 the degree distribution must be strongly skewed:
	// max degree far above average.
	g, _ := Graph500RMAT(4096, 65536, 1, Options{})
	maxDeg, _ := g.MaxDegree()
	if avg := g.AvgDegree(); float64(maxDeg) < 5*avg {
		t.Fatalf("RMAT not skewed: max=%d avg=%.1f", maxDeg, avg)
	}
}

func TestRMATRejectsBadParams(t *testing.T) {
	if _, err := RMAT(0, 10, 0.45, 0.15, 0.15, 1, Options{}); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := RMAT(10, 10, 0.7, 0.3, 0.2, 1, Options{}); err == nil {
		t.Fatal("accepted a+b+c>1")
	}
	if _, err := RMAT(10, 10, -0.1, 0.5, 0.5, 1, Options{}); err == nil {
		t.Fatal("accepted negative probability")
	}
}

func TestRMATNonPowerOfTwoN(t *testing.T) {
	g, err := Graph500RMAT(1000000/1024+3, 5000, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDirectMatchesRMAT(t *testing.T) {
	// The two-pass builder must produce the exact same multigraph as
	// the edge-list path (same seed, same stream).
	a, err := RMAT(777, 5000, 0.45, 0.15, 0.15, 13, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMATDirect(777, 5000, 0.45, 0.15, 0.15, 13)
	if err != nil {
		t.Fatal(err)
	}
	if b.Validate() != nil || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: %v vs %v", a, b)
	}
	// Same per-vertex multiset of neighbors (order may differ).
	for v := int32(0); v < a.NumVertices(); v++ {
		na := append([]int32(nil), a.Neighbors(v)...)
		nb := append([]int32(nil), b.Neighbors(v)...)
		if len(na) != len(nb) {
			t.Fatalf("degree of %d differs: %d vs %d", v, len(na), len(nb))
		}
		count := map[int32]int{}
		for _, w := range na {
			count[w]++
		}
		for _, w := range nb {
			count[w]--
		}
		for w, c := range count {
			if c != 0 {
				t.Fatalf("vertex %d neighbor %d multiset differs", v, w)
			}
		}
	}
}

func TestRMATDirectErrors(t *testing.T) {
	if _, err := RMATDirect(0, 10, 0.45, 0.15, 0.15, 1); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := RMATDirect(10, 10, 0.9, 0.2, 0.2, 1); err == nil {
		t.Fatal("accepted bad probabilities")
	}
}

func TestChungLuPowerLaw(t *testing.T) {
	g, err := ChungLu(8192, 1<<17, 2.2, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vertex 0 has the largest weight; its degree must dominate the
	// average by a wide margin for a scale-free graph.
	d0 := g.OutDegree(0)
	if float64(d0) < 10*g.AvgDegree() {
		t.Fatalf("ChungLu head degree %d not >> avg %.1f", d0, g.AvgDegree())
	}
	// Tail vertices should have small degrees.
	var tail int64
	for v := g.NumVertices() - 100; v < g.NumVertices(); v++ {
		tail += g.OutDegree(v)
	}
	if float64(tail)/100 > g.AvgDegree() {
		t.Fatalf("ChungLu tail avg %.1f exceeds overall avg %.1f", float64(tail)/100, g.AvgDegree())
	}
}

func TestChungLuRejectsBadParams(t *testing.T) {
	if _, err := ChungLu(0, 10, 2.2, 1, Options{}); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := ChungLu(10, 10, 1.0, 1, Options{}); err == nil {
		t.Fatal("accepted gamma=1")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(500, 3000, 9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3000 || g.NumVertices() != 500 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	// Near-uniform degrees: max should be modest (Poisson tail).
	maxDeg, _ := g.MaxDegree()
	if float64(maxDeg) > 6*g.AvgDegree()+10 {
		t.Fatalf("ER unexpectedly skewed: max=%d avg=%.1f", maxDeg, g.AvgDegree())
	}
	if _, err := ErdosRenyi(0, 1, 1, Options{}); err == nil {
		t.Fatal("accepted n=0")
	}
}

func TestLayeredRandomDiameter(t *testing.T) {
	for _, layers := range []int32{1, 5, 20, 53} {
		g, err := LayeredRandom(4000, 20000, layers, 11, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		dist := graph.ReferenceBFS(g, 0)
		reached, _ := graph.ReachedCount(g, dist)
		if reached != int64(g.NumVertices()) {
			t.Fatalf("layers=%d: only %d/%d vertices reached", layers, reached, g.NumVertices())
		}
		ecc := graph.Eccentricity(dist)
		if ecc != layers-1 && ecc != layers { // last layer can fold into one extra hop
			t.Fatalf("layers=%d: BFS depth %d, want ~%d", layers, ecc, layers-1)
		}
	}
}

func TestLayeredRandomEdgeBudget(t *testing.T) {
	g, err := LayeredRandom(1000, 8000, 10, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 8000 || g.NumEdges() > 8000+2*int64(g.NumVertices()) {
		t.Fatalf("m=%d, want within [8000, 10000]", g.NumEdges())
	}
}

func TestLayeredRandomReachableFromAnySource(t *testing.T) {
	// Mesh stand-ins must be fully reachable from arbitrary sources
	// (the harness samples random sources, like the paper).
	g, err := LayeredRandom(3000, 15000, 30, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int32{0, 1499, 2999} {
		dist := graph.ReferenceBFS(g, src)
		if r, _ := graph.ReachedCount(g, dist); r != int64(g.NumVertices()) {
			t.Fatalf("src %d: reached %d/%d", src, r, g.NumVertices())
		}
	}
}

func TestLayeredRandomRejectsBadParams(t *testing.T) {
	if _, err := LayeredRandom(10, 10, 0, 1, Options{}); err == nil {
		t.Fatal("accepted layers=0")
	}
	if _, err := LayeredRandom(10, 10, 11, 1, Options{}); err == nil {
		t.Fatal("accepted layers>n")
	}
	if _, err := LayeredRandom(0, 10, 1, 1, Options{}); err == nil {
		t.Fatal("accepted n=0")
	}
}

func TestLayeredRandomMoreLayersThanPerfectSplit(t *testing.T) {
	// n not divisible by layers: remainder folds into the last layer.
	g, err := LayeredRandom(103, 500, 10, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dist := graph.ReferenceBFS(g, 0)
	if r, _ := graph.ReachedCount(g, dist); r != 103 {
		t.Fatalf("reached %d/103", r)
	}
}

func TestGrid2D(t *testing.T) {
	g, err := Grid2D(5, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 35 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// Undirected lattice: 2*(rows*(cols-1) + cols*(rows-1)) directed edges.
	want := int64(2 * (5*6 + 7*4))
	if g.NumEdges() != want {
		t.Fatalf("m=%d want %d", g.NumEdges(), want)
	}
	dist := graph.ReferenceBFS(g, 0)
	if ecc := graph.Eccentricity(dist); ecc != 4+6 {
		t.Fatalf("grid ecc=%d want 10", ecc)
	}
	if err := graph.ValidateDistances(g, 0, dist); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2DTorus(t *testing.T) {
	g, err := Grid2D(4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	dist := graph.ReferenceBFS(g, 0)
	if ecc := graph.Eccentricity(dist); ecc != 4 {
		t.Fatalf("torus ecc=%d want 4", ecc)
	}
}

func TestGrid3D(t *testing.T) {
	g, err := Grid3D(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 60 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	dist := graph.ReferenceBFS(g, 0)
	if ecc := graph.Eccentricity(dist); ecc != 2+3+4 {
		t.Fatalf("grid3d ecc=%d want 9", ecc)
	}
}

func TestStarPathCycleCompleteTree(t *testing.T) {
	star, err := Star(100)
	if err != nil {
		t.Fatal(err)
	}
	if d, v := star.MaxDegree(); d != 99 || v != 0 {
		t.Fatalf("star hub degree %d at %d", d, v)
	}
	dist := graph.ReferenceBFS(star, 5)
	if graph.Eccentricity(dist) != 2 {
		t.Fatalf("star ecc from spoke = %d", graph.Eccentricity(dist))
	}

	path, err := Path(50)
	if err != nil {
		t.Fatal(err)
	}
	if ecc := graph.Eccentricity(graph.ReferenceBFS(path, 0)); ecc != 49 {
		t.Fatalf("path ecc=%d", ecc)
	}

	cyc, err := Cycle(10)
	if err != nil {
		t.Fatal(err)
	}
	if ecc := graph.Eccentricity(graph.ReferenceBFS(cyc, 0)); ecc != 5 {
		t.Fatalf("cycle ecc=%d", ecc)
	}

	comp, err := Complete(20)
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumEdges() != 380 {
		t.Fatalf("complete m=%d", comp.NumEdges())
	}
	if ecc := graph.Eccentricity(graph.ReferenceBFS(comp, 3)); ecc != 1 {
		t.Fatalf("complete ecc=%d", ecc)
	}

	tree, err := BinaryTree(31)
	if err != nil {
		t.Fatal(err)
	}
	if ecc := graph.Eccentricity(graph.ReferenceBFS(tree, 0)); ecc != 4 {
		t.Fatalf("tree depth=%d", ecc)
	}
}

func TestDeterministicGeneratorsRejectBadN(t *testing.T) {
	if _, err := Star(0); err == nil {
		t.Fatal("Star accepted 0")
	}
	if _, err := Path(0); err == nil {
		t.Fatal("Path accepted 0")
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("Cycle accepted 2")
	}
	if _, err := Complete(0); err == nil {
		t.Fatal("Complete accepted 0")
	}
	if _, err := BinaryTree(0); err == nil {
		t.Fatal("BinaryTree accepted 0")
	}
	if _, err := Grid2D(0, 3, false); err == nil {
		t.Fatal("Grid2D accepted 0")
	}
	if _, err := Grid3D(1, 0, 1); err == nil {
		t.Fatal("Grid3D accepted 0")
	}
}

func TestOptionsDedupAndLoops(t *testing.T) {
	g, err := ErdosRenyi(10, 500, 3, Options{Dedup: true, DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() > 90 {
		t.Fatalf("dedup left %d edges on 10 vertices", g.NumEdges())
	}
	seen := map[[2]int32]bool{}
	for v := int32(0); v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if v == w {
				t.Fatalf("self loop survived at %d", v)
			}
			k := [2]int32{v, w}
			if seen[k] {
				t.Fatalf("duplicate edge survived: %v", k)
			}
			seen[k] = true
		}
	}
}

// Property: every random generator emits structurally valid graphs with
// the requested vertex count for arbitrary seeds.
func TestPropertyGeneratorsValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := int32(2 + seed%50)
		m := int64(3 * n)
		for _, mk := range []func() (*graph.CSR, error){
			func() (*graph.CSR, error) { return Graph500RMAT(n, m, seed, Options{}) },
			func() (*graph.CSR, error) { return ChungLu(n, m, 2.5, seed, Options{}) },
			func() (*graph.CSR, error) { return ErdosRenyi(n, m, seed, Options{}) },
			func() (*graph.CSR, error) { return LayeredRandom(n, m, 1+int32(seed%uint64(n)), seed, Options{}) },
		} {
			g, err := mk()
			if err != nil || g.NumVertices() != n || g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestChungLuExponentAffectsSkew(t *testing.T) {
	// Smaller gamma -> heavier head. Compare hub mass fractions.
	frac := func(gamma float64) float64 {
		g, err := ChungLu(4096, 1<<16, gamma, 77, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var head int64
		for v := int32(0); v < 10; v++ {
			head += g.OutDegree(v)
		}
		return float64(head) / float64(g.NumEdges())
	}
	f21, f29 := frac(2.1), frac(2.9)
	if !(f21 > f29) || math.IsNaN(f21) {
		t.Fatalf("hub mass should shrink with gamma: gamma2.1=%.3f gamma2.9=%.3f", f21, f29)
	}
}
