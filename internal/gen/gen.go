// Package gen provides deterministic synthetic graph generators.
//
// The experiment suite of the reproduced paper (Table IV) uses five
// real-world graphs from the Florida Sparse Matrix Collection plus two
// Graph500 RMAT graphs. The real files are not redistributable here, so
// this package generates stand-ins that match each graph's class:
//
//   - RMAT reproduces the Graph500 recursive-matrix generator with the
//     paper's parameters (a=0.45, b=0.15, c=0.15, d=0.25) for the two
//     synthetic RMAT graphs and for scale-free stand-ins.
//   - ChungLu generates power-law ("scale-free") graphs with a chosen
//     exponent, the model class of the Wikipedia graph.
//   - LayeredRandom generates graphs whose BFS from a canonical source
//     explores a chosen number of levels with near-uniform frontier
//     sizes and near-uniform degrees — the knob that matters for BFS
//     behaviour — standing in for the mesh-like cage/freescale/kkt
//     matrices whose reported "diameter explored by BFS" we match.
//   - ErdosRenyi, Grid2D/Grid3D, Star, Path, Cycle, Complete, and
//     BinaryTree cover corner cases for tests and ablations.
//
// All generators are deterministic functions of their seed.
package gen

import (
	"fmt"
	"math"
	"sort"

	"optibfs/internal/graph"
	"optibfs/internal/rng"
)

// Options controls post-processing applied by the random generators.
type Options struct {
	// Dedup removes parallel edges after generation. The paper's graphs
	// are simple; default keeps duplicates (they add realistic work).
	Dedup bool
	// DropSelfLoops removes self-loops after generation.
	DropSelfLoops bool
	// SortAdjacency sorts adjacency lists (canonicalizes for tests).
	SortAdjacency bool
}

func (o Options) build(n int32, edges []graph.Edge) *graph.CSR {
	return graph.MustFromEdges(n, edges, graph.BuildOptions{
		Dedup:         o.Dedup,
		DropSelfLoops: o.DropSelfLoops,
		SortAdjacency: o.SortAdjacency,
	})
}

// RMAT generates a directed R-MAT graph with n vertices and m edges
// using quadrant probabilities (a, b, c) and d = 1-a-b-c, the Graph500
// generator family. Vertex ids are produced in a 2^ceil(log2 n) space
// and folded into [0, n) so that n need not be a power of two (the
// paper's RMAT graphs have 10M vertices).
func RMAT(n int32, m int64, a, b, c float64, seed uint64, opt Options) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: RMAT needs n > 0, got %d", n)
	}
	if a < 0 || b < 0 || c < 0 || a+b+c > 1 {
		return nil, fmt.Errorf("gen: invalid RMAT probabilities a=%g b=%g c=%g", a, b, c)
	}
	scale := 0
	for int64(1)<<scale < int64(n) {
		scale++
	}
	r := rng.NewXoshiro256(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		var src, dst int64
		for bit := 0; bit < scale; bit++ {
			u := r.Float64()
			src <<= 1
			dst <<= 1
			switch {
			case u < a:
				// top-left: no bits set
			case u < a+b:
				dst |= 1
			case u < a+b+c:
				src |= 1
			default:
				src |= 1
				dst |= 1
			}
		}
		edges[i] = graph.Edge{Src: int32(src % int64(n)), Dst: int32(dst % int64(n))}
	}
	return opt.build(n, edges), nil
}

// Graph500RMAT is RMAT with the parameters the paper used for its
// synthetic graphs: a=0.45, b=0.15, c=0.15 (footnote 5).
func Graph500RMAT(n int32, m int64, seed uint64, opt Options) (*graph.CSR, error) {
	return RMAT(n, m, 0.45, 0.15, 0.15, seed, opt)
}

// RMATDirect generates the same graph as RMAT(n, m, a, b, c, seed,
// Options{}) but builds the CSR in two passes over the deterministic
// random stream instead of materializing an edge list, cutting peak
// memory from ~16 bytes/edge to ~4 bytes/edge — the difference between
// fitting and not fitting the paper's billion-edge graph in RAM.
// Post-processing options are not supported (they need the edge list).
func RMATDirect(n int32, m int64, a, b, c float64, seed uint64) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: RMATDirect needs n > 0, got %d", n)
	}
	if a < 0 || b < 0 || c < 0 || a+b+c > 1 {
		return nil, fmt.Errorf("gen: invalid RMAT probabilities a=%g b=%g c=%g", a, b, c)
	}
	scale := 0
	for int64(1)<<scale < int64(n) {
		scale++
	}
	sample := func(r *rng.Xoshiro256) (int32, int32) {
		var src, dst int64
		for bit := 0; bit < scale; bit++ {
			u := r.Float64()
			src <<= 1
			dst <<= 1
			switch {
			case u < a:
			case u < a+b:
				dst |= 1
			case u < a+b+c:
				src |= 1
			default:
				src |= 1
				dst |= 1
			}
		}
		return int32(src % int64(n)), int32(dst % int64(n))
	}
	// Pass 1: degree counting.
	offsets := make([]int64, n+1)
	r := rng.NewXoshiro256(seed)
	for i := int64(0); i < m; i++ {
		src, _ := sample(r)
		offsets[src+1]++
	}
	for v := int32(0); v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	// Pass 2: replay the identical stream and fill.
	edges := make([]int32, m)
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	r = rng.NewXoshiro256(seed)
	for i := int64(0); i < m; i++ {
		src, dst := sample(r)
		edges[cursor[src]] = dst
		cursor[src]++
	}
	return &graph.CSR{Offsets: offsets, Edges: edges}, nil
}

// ChungLu generates a directed graph with ~m edges whose degree
// distribution follows a power law with exponent gamma (typically in
// (2,3) for real scale-free networks, paper §IV). Endpoints of each
// edge are drawn independently with probability proportional to
// w_i = (i+1)^(-1/(gamma-1)), the Chung–Lu model.
func ChungLu(n int32, m int64, gamma float64, seed uint64, opt Options) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: ChungLu needs n > 0, got %d", n)
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("gen: ChungLu needs gamma > 1, got %g", gamma)
	}
	// Cumulative weights for inverse-CDF sampling.
	cum := make([]float64, n)
	exp := -1.0 / (gamma - 1)
	total := 0.0
	for i := int32(0); i < n; i++ {
		total += math.Pow(float64(i+1), exp)
		cum[i] = total
	}
	r := rng.NewXoshiro256(seed)
	sample := func() int32 {
		x := r.Float64() * total
		idx := sort.SearchFloat64s(cum, x)
		if idx >= int(n) {
			idx = int(n) - 1
		}
		return int32(idx)
	}
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: sample(), Dst: sample()}
	}
	return opt.build(n, edges), nil
}

// ErdosRenyi generates a directed G(n, m) graph: m uniformly random
// directed edges.
func ErdosRenyi(n int32, m int64, seed uint64, opt Options) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n > 0, got %d", n)
	}
	r := rng.NewXoshiro256(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{Src: r.Int32n(n), Dst: r.Int32n(n)}
	}
	return opt.build(n, edges), nil
}

// LayeredRandom generates a connected directed graph of n vertices and
// ~m edges arranged in `layers` consecutive layers of near-equal size.
// Every vertex gets edges to random vertices in its own or the next
// layer, plus one guaranteed edge from some vertex of the previous
// layer, so a BFS from vertex 0 (layer 0) explores exactly `layers`
// levels with frontier size ≈ n/layers — matching a target "diameter
// explored by BFS" (paper Table IV) with near-uniform degrees, the
// behaviourally relevant structure of the cage/freescale/kkt matrices.
func LayeredRandom(n int32, m int64, layers int32, seed uint64, opt Options) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: LayeredRandom needs n > 0, got %d", n)
	}
	if layers <= 0 || layers > n {
		return nil, fmt.Errorf("gen: LayeredRandom needs 0 < layers <= n, got layers=%d n=%d", layers, n)
	}
	r := rng.NewXoshiro256(seed)
	// Vertex v belongs to layer v / perLayer (last layer absorbs the
	// remainder).
	perLayer := n / layers
	if perLayer == 0 {
		perLayer = 1
	}
	layerOf := func(v int32) int32 {
		l := v / perLayer
		if l >= layers {
			l = layers - 1
		}
		return l
	}
	layerStart := func(l int32) int32 { return l * perLayer }
	layerEnd := func(l int32) int32 { // exclusive
		if l == layers-1 {
			return n
		}
		return (l + 1) * perLayer
	}
	pickIn := func(l int32) int32 {
		s, e := layerStart(l), layerEnd(l)
		return s + r.Int32n(e-s)
	}

	edges := make([]graph.Edge, 0, m+2*int64(n))
	// Backbone: every vertex beyond layer 0 is discoverable from the
	// previous layer AND links back to it (mesh graphs are structurally
	// symmetric, so a BFS from any source reaches the whole graph);
	// vertex 0 reaches every layer-0 vertex and vice versa.
	for v := layerEnd(0); v < n; v++ {
		prev := layerOf(v) - 1
		edges = append(edges,
			graph.Edge{Src: pickIn(prev), Dst: v},
			graph.Edge{Src: v, Dst: pickIn(prev)})
	}
	for v := int32(1); v < layerEnd(0); v++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: v}, graph.Edge{Src: v, Dst: 0})
	}
	// Random bulk edges: src uniform; dst in src's layer or an
	// adjacent one (local structure, like a mesh).
	for int64(len(edges)) < m {
		src := r.Int32n(n)
		l := layerOf(src)
		switch r.Uint64n(3) {
		case 0:
			if l+1 < layers {
				l++
			}
		case 1:
			if l > 0 {
				l--
			}
		}
		edges = append(edges, graph.Edge{Src: src, Dst: pickIn(l)})
	}
	return opt.build(n, edges), nil
}

// Grid2D generates the directed version of an rows×cols 4-neighbor
// grid (each undirected lattice edge in both directions). If wrap is
// true the grid is a torus. This is the "structured grid" class used
// by image-processing BFS (paper §II, Su et al.).
func Grid2D(rows, cols int32, wrap bool) (*graph.CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gen: Grid2D needs positive dims, got %dx%d", rows, cols)
	}
	n := rows * cols
	id := func(r, c int32) int32 { return r*cols + c }
	var edges []graph.Edge
	add := func(a, b int32) { edges = append(edges, graph.Edge{Src: a, Dst: b}, graph.Edge{Src: b, Dst: a}) }
	for r := int32(0); r < rows; r++ {
		for c := int32(0); c < cols; c++ {
			if c+1 < cols {
				add(id(r, c), id(r, c+1))
			} else if wrap && cols > 2 {
				add(id(r, c), id(r, 0))
			}
			if r+1 < rows {
				add(id(r, c), id(r+1, c))
			} else if wrap && rows > 2 {
				add(id(r, c), id(0, c))
			}
		}
	}
	return graph.MustFromEdges(n, edges, graph.BuildOptions{SortAdjacency: true}), nil
}

// Grid3D generates the directed version of an x×y×z 6-neighbor grid.
func Grid3D(x, y, z int32) (*graph.CSR, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return nil, fmt.Errorf("gen: Grid3D needs positive dims, got %dx%dx%d", x, y, z)
	}
	n := x * y * z
	id := func(i, j, k int32) int32 { return (i*y+j)*z + k }
	var edges []graph.Edge
	add := func(a, b int32) { edges = append(edges, graph.Edge{Src: a, Dst: b}, graph.Edge{Src: b, Dst: a}) }
	for i := int32(0); i < x; i++ {
		for j := int32(0); j < y; j++ {
			for k := int32(0); k < z; k++ {
				if i+1 < x {
					add(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < y {
					add(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < z {
					add(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	return graph.MustFromEdges(n, edges, graph.BuildOptions{SortAdjacency: true}), nil
}

// Star generates a hub (vertex 0) with undirected spokes to all other
// vertices — the extreme "hotspot" graph for scale-free handling tests.
func Star(n int32) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: Star needs n > 0, got %d", n)
	}
	edges := make([]graph.Edge, 0, 2*(n-1))
	for v := int32(1); v < n; v++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: v}, graph.Edge{Src: v, Dst: 0})
	}
	return graph.MustFromEdges(n, edges, graph.BuildOptions{}), nil
}

// Path generates the directed path 0->1->...->n-1 with reverse edges —
// the maximum-diameter, minimum-parallelism graph.
func Path(n int32) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: Path needs n > 0, got %d", n)
	}
	edges := make([]graph.Edge, 0, 2*(n-1))
	for v := int32(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: v + 1}, graph.Edge{Src: v + 1, Dst: v})
	}
	return graph.MustFromEdges(n, edges, graph.BuildOptions{}), nil
}

// Cycle generates the undirected n-cycle.
func Cycle(n int32) (*graph.CSR, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: Cycle needs n >= 3, got %d", n)
	}
	edges := make([]graph.Edge, 0, 2*n)
	for v := int32(0); v < n; v++ {
		w := (v + 1) % n
		edges = append(edges, graph.Edge{Src: v, Dst: w}, graph.Edge{Src: w, Dst: v})
	}
	return graph.MustFromEdges(n, edges, graph.BuildOptions{}), nil
}

// Complete generates the complete directed graph on n vertices
// (no self-loops) — the densest duplicate-discovery stress case.
func Complete(n int32) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: Complete needs n > 0, got %d", n)
	}
	edges := make([]graph.Edge, 0, int64(n)*int64(n-1))
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			if u != v {
				edges = append(edges, graph.Edge{Src: u, Dst: v})
			}
		}
	}
	return graph.MustFromEdges(n, edges, graph.BuildOptions{}), nil
}

// BinaryTree generates a complete binary tree with n vertices (parent
// and child edges in both directions), rooted at 0.
func BinaryTree(n int32) (*graph.CSR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: BinaryTree needs n > 0, got %d", n)
	}
	edges := make([]graph.Edge, 0, 2*(n-1))
	for v := int32(1); v < n; v++ {
		p := (v - 1) / 2
		edges = append(edges, graph.Edge{Src: p, Dst: v}, graph.Edge{Src: v, Dst: p})
	}
	return graph.MustFromEdges(n, edges, graph.BuildOptions{}), nil
}
