package gen

import (
	"testing"

	"optibfs/internal/graph"
)

func TestBarabasiAlbertShape(t *testing.T) {
	g, err := BarabasiAlbert(2000, 4, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Undirected: ~2*(clique + attach per new vertex) directed edges.
	wantMin := int64(2 * 4 * (2000 - 5))
	if g.NumEdges() < wantMin {
		t.Fatalf("m=%d < %d", g.NumEdges(), wantMin)
	}
	// Preferential attachment must produce hubs.
	maxDeg, _ := g.MaxDegree()
	if float64(maxDeg) < 5*g.AvgDegree() {
		t.Fatalf("no hubs: max=%d avg=%.1f", maxDeg, g.AvgDegree())
	}
	// Connected by construction.
	dist := graph.ReferenceBFS(g, 0)
	if r, _ := graph.ReachedCount(g, dist); r != 2000 {
		t.Fatalf("reached %d/2000", r)
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(10, 0, 1, Options{}); err == nil {
		t.Fatal("accepted attach=0")
	}
	if _, err := BarabasiAlbert(3, 4, 1, Options{}); err == nil {
		t.Fatal("accepted n <= attach")
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a, _ := BarabasiAlbert(300, 3, 5, Options{})
	b, _ := BarabasiAlbert(300, 3, 5, Options{})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same-seed BA differs")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same-seed BA differs")
		}
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta=0: pure ring lattice with k=4 -> every vertex degree 4,
	// diameter ~ n/(k) hops.
	g, err := WattsStrogatz(100, 4, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		if g.OutDegree(v) != 4 {
			t.Fatalf("lattice degree of %d = %d", v, g.OutDegree(v))
		}
	}
	ecc := graph.Eccentricity(graph.ReferenceBFS(g, 0))
	if ecc != 25 { // ceil(100/2 / 2)
		t.Fatalf("lattice ecc=%d want 25", ecc)
	}
}

func TestWattsStrogatzSmallWorldEffect(t *testing.T) {
	// A little rewiring must slash the diameter versus the lattice.
	lattice, err := WattsStrogatz(2000, 6, 0, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	small, err := WattsStrogatz(2000, 6, 0.1, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eccL := graph.Eccentricity(graph.ReferenceBFS(lattice, 0))
	eccS := graph.Eccentricity(graph.ReferenceBFS(small, 0))
	if eccS*3 > eccL {
		t.Fatalf("no small-world effect: lattice %d, beta=0.1 %d", eccL, eccS)
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	if _, err := WattsStrogatz(10, 3, 0.1, 1, Options{}); err == nil {
		t.Fatal("accepted odd k")
	}
	if _, err := WattsStrogatz(10, 0, 0.1, 1, Options{}); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := WattsStrogatz(4, 4, 0.1, 1, Options{}); err == nil {
		t.Fatal("accepted n <= k")
	}
	if _, err := WattsStrogatz(10, 2, 1.5, 1, Options{}); err == nil {
		t.Fatal("accepted beta > 1")
	}
}
