package gen

import (
	"fmt"

	"optibfs/internal/graph"
	"optibfs/internal/rng"
)

// BarabasiAlbert generates an undirected scale-free graph by
// preferential attachment: starting from a small clique, each new
// vertex attaches `attach` edges to existing vertices chosen with
// probability proportional to their current degree. The classic
// mechanism behind the power-law degree distributions the paper's
// scale-free discussion (§IV) targets; degree exponent ≈ 3.
func BarabasiAlbert(n int32, attach int, seed uint64, opt Options) (*graph.CSR, error) {
	if attach < 1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs attach >= 1, got %d", attach)
	}
	if int64(n) < int64(attach)+1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs n > attach, got n=%d attach=%d", n, attach)
	}
	r := rng.NewXoshiro256(seed)
	// endpointBag holds one entry per half-edge; sampling uniformly
	// from it is sampling proportional to degree.
	endpointBag := make([]int32, 0, 2*int(n)*attach)
	edges := make([]graph.Edge, 0, 2*int(n)*attach)
	add := func(u, v int32) {
		edges = append(edges,
			graph.Edge{Src: u, Dst: v},
			graph.Edge{Src: v, Dst: u})
		endpointBag = append(endpointBag, u, v)
	}
	// Seed clique over the first attach+1 vertices.
	core := int32(attach) + 1
	for u := int32(0); u < core; u++ {
		for v := u + 1; v < core; v++ {
			add(u, v)
		}
	}
	chosen := make([]int32, 0, attach)
	for v := core; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < attach {
			t := endpointBag[r.Intn(len(endpointBag))]
			if t == v {
				continue
			}
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		// Deterministic order: edges appended in selection order.
		for _, t := range chosen {
			add(v, t)
		}
	}
	return opt.build(n, edges), nil
}

// WattsStrogatz generates the small-world model: an undirected ring
// lattice where each vertex connects to its k nearest neighbors (k
// even), with each lattice edge rewired to a random endpoint with
// probability beta. beta=0 is a pure lattice (high diameter), beta=1
// is essentially random (low diameter); small beta gives the
// high-clustering/low-diameter regime.
func WattsStrogatz(n int32, k int, beta float64, seed uint64, opt Options) (*graph.CSR, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("gen: WattsStrogatz needs even k >= 2, got %d", k)
	}
	if int64(n) <= int64(k) {
		return nil, fmt.Errorf("gen: WattsStrogatz needs n > k, got n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz needs beta in [0,1], got %g", beta)
	}
	r := rng.NewXoshiro256(seed)
	edges := make([]graph.Edge, 0, int(n)*k)
	for u := int32(0); u < n; u++ {
		for d := 1; d <= k/2; d++ {
			v := (u + int32(d)) % n
			if beta > 0 && r.Float64() < beta {
				// Rewire the far endpoint to a uniform non-self target.
				for {
					cand := r.Int32n(n)
					if cand != u {
						v = cand
						break
					}
				}
			}
			edges = append(edges,
				graph.Edge{Src: u, Dst: v},
				graph.Edge{Src: v, Dst: u})
		}
	}
	return opt.build(n, edges), nil
}
