package graph

import "fmt"

// ShardedCSR partitions a CSR's vertices into contiguous 1D ranges
// ("1D partitioning" in the sense of Buluç & Madduri: each shard owns
// a block of rows, i.e. of source vertices, together with all their
// out-edges). Shard s owns the half-open vertex range
// [Starts[s], Starts[s+1]); the split is degree-balanced, so each
// shard holds roughly the same number of edges rather than the same
// number of vertices.
//
// Edge storage is shared: every per-shard CSR aliases subranges of
// Full's arrays, so sharding a graph costs O(shards) extra memory, not
// O(m). This also means a ShardedCSR built over a memory-mapped graph
// keeps the mapping live for as long as any shard is in use.
type ShardedCSR struct {
	// Full is the original unpartitioned graph. BFS oracles, the
	// serving layer's degraded path, and merged validation all run
	// against it.
	Full *CSR
	// Starts has length NumShards()+1 with Starts[0] == 0 and
	// Starts[NumShards()] == Full.NumVertices(); shard s owns vertices
	// [Starts[s], Starts[s+1]).
	Starts []int32
	// Local holds one self-contained CSR per shard over the shard's
	// local sources: Local[s] has Starts[s+1]-Starts[s] vertices whose
	// offsets are rebased to the shard's edge range. Edge targets stay
	// GLOBAL vertex ids (a target may live in any shard); Local[s].Edges
	// aliases Full.Edges.
	Local []*CSR
}

// Partition splits g into the given number of contiguous degree-balanced
// shards. shards must be in [1, max(1, NumVertices)]. The boundaries are
// chosen by binary search on the offsets array so that shard s begins at
// the first vertex whose edge range reaches s/shards of the total edge
// count; shards never overlap and may own zero vertices only when the
// graph itself is empty.
func Partition(g *CSR, shards int) (*ShardedCSR, error) {
	n := g.NumVertices()
	if shards < 1 {
		return nil, fmt.Errorf("graph: shards %d < 1", shards)
	}
	if n > 0 && int64(shards) > int64(n) {
		return nil, fmt.Errorf("graph: shards %d > vertices %d", shards, n)
	}
	starts := make([]int32, shards+1)
	m := g.NumEdges()
	for s := 1; s < shards; s++ {
		target := m * int64(s) / int64(shards)
		// First vertex v with Offsets[v] >= target: the preceding
		// vertices hold (just under) s/shards of the edges.
		v := int32(lowerBound(g.Offsets[:n+1], target))
		if v > n {
			v = n
		}
		if v < starts[s-1] {
			v = starts[s-1] // degenerate (many zero-degree vertices)
		}
		starts[s] = v
	}
	starts[shards] = n
	// A heavily skewed graph (one huge hub) can collapse consecutive
	// boundaries onto the same vertex, leaving empty shards. Spread
	// such boundaries apart so every shard owns at least one vertex;
	// degree balance degrades but the ownership map stays total.
	// Feasible because shards <= n: starts[s-1] <= n-(shards-s+1)
	// inductively, so both pushes stay in range.
	if n > 0 {
		for s := 1; s < shards; s++ {
			if starts[s] <= starts[s-1] {
				starts[s] = starts[s-1] + 1
			}
			if max := n - int32(shards-s); starts[s] > max {
				starts[s] = max
			}
		}
	}
	local := make([]*CSR, shards)
	for s := 0; s < shards; s++ {
		lo, hi := starts[s], starts[s+1]
		elo, ehi := g.Offsets[lo], g.Offsets[hi]
		off := make([]int64, hi-lo+1)
		for i := range off {
			off[i] = g.Offsets[lo+int32(i)] - elo
		}
		local[s] = &CSR{Offsets: off, Edges: g.Edges[elo:ehi:ehi]}
	}
	return &ShardedCSR{Full: g, Starts: starts, Local: local}, nil
}

// NumShards returns the number of shards.
func (sg *ShardedCSR) NumShards() int { return len(sg.Starts) - 1 }

// Range returns the vertex range [lo, hi) owned by shard s.
func (sg *ShardedCSR) Range(s int) (lo, hi int32) {
	return sg.Starts[s], sg.Starts[s+1]
}

// Owner returns the shard owning vertex v, by binary search over the
// boundary array (at most log2(shards)+1 compares; shards is small).
func (sg *ShardedCSR) Owner(v int32) int {
	return upperBound64(sg.Starts, v) - 1
}

// Validate checks the partition invariants: boundaries monotone and
// covering [0, n), each local CSR structurally consistent with the
// corresponding slice of the full graph.
func (sg *ShardedCSR) Validate() error {
	n := sg.Full.NumVertices()
	S := sg.NumShards()
	if S < 1 {
		return fmt.Errorf("graph: sharded CSR with %d shards", S)
	}
	if sg.Starts[0] != 0 || sg.Starts[S] != n {
		return fmt.Errorf("graph: shard boundaries [%d, %d] do not cover [0, %d]", sg.Starts[0], sg.Starts[S], n)
	}
	if len(sg.Local) != S {
		return fmt.Errorf("graph: %d local CSRs for %d shards", len(sg.Local), S)
	}
	for s := 0; s < S; s++ {
		lo, hi := sg.Range(s)
		if hi < lo {
			return fmt.Errorf("graph: shard %d range [%d, %d) not monotone", s, lo, hi)
		}
		if n > 0 && hi == lo {
			return fmt.Errorf("graph: shard %d owns no vertices", s)
		}
		l := sg.Local[s]
		if got, want := l.NumVertices(), hi-lo; got != want {
			return fmt.Errorf("graph: shard %d local CSR has %d vertices, want %d", s, got, want)
		}
		if got, want := l.NumEdges(), sg.Full.Offsets[hi]-sg.Full.Offsets[lo]; got != want {
			return fmt.Errorf("graph: shard %d local CSR has %d edges, want %d", s, got, want)
		}
		for i := int32(0); i < l.NumVertices(); i++ {
			if l.Offsets[i+1]-l.Offsets[i] != sg.Full.OutDegree(lo+i) {
				return fmt.Errorf("graph: shard %d vertex %d degree mismatch", s, lo+i)
			}
		}
	}
	return nil
}

// lowerBound returns the smallest index i with a[i] >= x, assuming a is
// sorted ascending.
func lowerBound(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound64 returns the smallest index i with a[i] > x, assuming a
// is sorted ascending.
func upperBound64(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
