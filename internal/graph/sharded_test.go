package graph

import (
	"strings"
	"testing"

	"optibfs/internal/rng"
)

func randomCSR(t *testing.T, seed uint64, n int32, m int) *CSR {
	t.Helper()
	r := rng.NewXoshiro256(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{Src: r.Int32n(n), Dst: r.Int32n(n)}
	}
	return MustFromEdges(n, edges, BuildOptions{})
}

func TestPartitionCoversAndValidates(t *testing.T) {
	g := randomCSR(t, 1, 200, 1500)
	for _, shards := range []int{1, 2, 3, 4, 7, 64, 200} {
		sg, err := Partition(g, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if sg.NumShards() != shards {
			t.Fatalf("shards=%d: NumShards=%d", shards, sg.NumShards())
		}
		if err := sg.Validate(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

func TestPartitionOwnerMatchesRanges(t *testing.T) {
	g := randomCSR(t, 2, 137, 900)
	sg, err := Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		s := sg.Owner(v)
		lo, hi := sg.Range(s)
		if v < lo || v >= hi {
			t.Fatalf("Owner(%d)=%d but range is [%d,%d)", v, s, lo, hi)
		}
	}
}

func TestPartitionDegreeBalance(t *testing.T) {
	// A graph with uniform random degrees should split into shards
	// within a modest factor of the ideal m/shards edge count.
	g := randomCSR(t, 3, 1000, 20000)
	sg, err := Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	ideal := g.NumEdges() / 4
	for s := 0; s < 4; s++ {
		got := sg.Local[s].NumEdges()
		if got < ideal/2 || got > 2*ideal {
			t.Fatalf("shard %d has %d edges, ideal %d", s, got, ideal)
		}
	}
}

func TestPartitionHubGraphNoEmptyShards(t *testing.T) {
	// All edges on one mid-range hub: naive boundary search collapses
	// every split point onto the hub, which must be corrected so each
	// shard still owns at least one vertex.
	var edges []Edge
	for i := int32(0); i < 100; i++ {
		if i != 50 {
			edges = append(edges, Edge{Src: 50, Dst: i})
		}
	}
	g := MustFromEdges(100, edges, BuildOptions{})
	for _, shards := range []int{2, 4, 8, 100} {
		sg, err := Partition(g, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if err := sg.Validate(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
	}
}

func TestPartitionLocalCSRContents(t *testing.T) {
	g := MustFromEdges(6, []Edge{
		{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 0}, {5, 1}, {5, 2},
	}, BuildOptions{})
	sg, err := Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		lo, hi := sg.Range(s)
		for v := lo; v < hi; v++ {
			want := g.Neighbors(v)
			got := sg.Local[s].Neighbors(v - lo)
			if len(want) != len(got) {
				t.Fatalf("shard %d vertex %d: %v vs %v", s, v, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("shard %d vertex %d: %v vs %v", s, v, got, want)
				}
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	g := randomCSR(t, 4, 10, 30)
	if _, err := Partition(g, 0); err == nil {
		t.Fatal("shards=0 accepted")
	}
	if _, err := Partition(g, 11); err == nil {
		t.Fatal("shards>n accepted")
	}
}

func TestShardedValidateCatchesCorruptBoundaries(t *testing.T) {
	g := randomCSR(t, 5, 50, 200)
	sg, err := Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	save := sg.Starts[2]
	sg.Starts[2] = sg.Starts[1] // empty shard
	if err := sg.Validate(); err == nil || !strings.Contains(err.Error(), "owns no vertices") {
		t.Fatalf("corrupt boundary not caught: %v", err)
	}
	sg.Starts[2] = save
	sg.Starts[4] = g.NumVertices() - 1
	if err := sg.Validate(); err == nil || !strings.Contains(err.Error(), "do not cover") {
		t.Fatalf("short cover not caught: %v", err)
	}
}

// Transpose determinism: the parallel counting/scatter passes must
// produce byte-identical output to the naive serial algorithm (the
// binary format checksums are order-sensitive, and tests elsewhere
// assume in-neighbor lists ascend by source).
func TestTransposeParallelMatchesSerial(t *testing.T) {
	// Big enough to cross the parallel threshold (1<<17 edges).
	g := randomCSR(t, 6, 5000, 1<<17+4096)
	got := g.Transpose()

	n := g.NumVertices()
	offsets := make([]int64, n+1)
	for _, w := range g.Edges {
		offsets[w+1]++
	}
	for v := int32(0); v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	edges := make([]int32, len(g.Edges))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := int32(0); u < n; u++ {
		for _, w := range g.Neighbors(u) {
			edges[cursor[w]] = u
			cursor[w]++
		}
	}

	for v := int32(0); v <= n; v++ {
		if got.Offsets[v] != offsets[v] {
			t.Fatalf("Offsets[%d] = %d, want %d", v, got.Offsets[v], offsets[v])
		}
	}
	for i := range edges {
		if got.Edges[i] != edges[i] {
			t.Fatalf("Edges[%d] = %d, want %d", i, got.Edges[i], edges[i])
		}
	}
}

func TestTransposeCached(t *testing.T) {
	g := randomCSR(t, 7, 64, 256)
	a := g.Transpose()
	if b := g.Transpose(); a != b {
		t.Fatal("Transpose not cached: distinct results")
	}
}
