package graph

import (
	"testing"
	"testing/quick"

	"optibfs/internal/rng"
)

// diamond returns the 4-vertex diamond 0->1,0->2,1->3,2->3.
func diamond(t *testing.T) *CSR {
	t.Helper()
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := &CSR{}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() != 0 {
		t.Fatalf("empty graph avg degree %g", g.AvgDegree())
	}
}

func TestSingleVertexNoEdges(t *testing.T) {
	g, err := FromEdges(1, nil, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatalf("got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	dist := ReferenceBFS(g, 0)
	if dist[0] != 0 {
		t.Fatalf("dist[0]=%d", dist[0])
	}
	if err := ValidateDistances(g, 0, dist); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesBasic(t *testing.T) {
	g := diamond(t)
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if d := g.OutDegree(0); d != 2 {
		t.Fatalf("deg(0)=%d", d)
	}
	if d := g.OutDegree(3); d != 0 {
		t.Fatalf("deg(3)=%d", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2}}, BuildOptions{}); err == nil {
		t.Fatal("accepted out-of-range target")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}, BuildOptions{}); err == nil {
		t.Fatal("accepted negative source")
	}
	if _, err := FromEdges(-1, nil, BuildOptions{}); err == nil {
		t.Fatal("accepted negative n")
	}
}

func TestFromEdgesDedup(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {0, 1}, {0, 2}, {0, 1}}, BuildOptions{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("dedup left %d edges, want 2", g.NumEdges())
	}
}

func TestFromEdgesDropSelfLoops(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 0}, {0, 1}, {2, 2}}, BuildOptions{DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("got %d edges, want 1", g.NumEdges())
	}
	if g.Neighbors(0)[0] != 1 {
		t.Fatalf("unexpected edge %v", g.Neighbors(0))
	}
}

func TestFromEdgesSymmetrize(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}}, BuildOptions{Symmetrize: true, SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("got %d edges, want 4", g.NumEdges())
	}
	if nb := g.Neighbors(1); len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("neighbors of 1 = %v", nb)
	}
}

func TestFromEdgesDoesNotMutateCaller(t *testing.T) {
	in := []Edge{{1, 0}, {0, 1}, {0, 1}}
	want := append([]Edge(nil), in...)
	if _, err := FromEdges(2, in, BuildOptions{Dedup: true, DropSelfLoops: true}); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != want[i] {
			t.Fatalf("caller slice mutated at %d: %v -> %v", i, want[i], in[i])
		}
	}
}

func TestSortAdjacency(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 3}, {0, 1}, {0, 2}}, BuildOptions{SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] > nb[i] {
			t.Fatalf("adjacency not sorted: %v", nb)
		}
	}
}

func TestFromAdjacency(t *testing.T) {
	g, err := FromAdjacency([][]int32{{1, 2}, {2}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := FromAdjacency([][]int32{{5}}); err == nil {
		t.Fatal("accepted out-of-range adjacency")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.NewXoshiro256(11)
	edges := make([]Edge, 200)
	const n = 40
	for i := range edges {
		edges[i] = Edge{Src: r.Int32n(n), Dst: r.Int32n(n)}
	}
	g := MustFromEdges(n, edges, BuildOptions{SortAdjacency: true})
	tt := g.Transpose().Transpose()
	// Sort for canonical comparison.
	g2 := MustFromEdges(n, edgesOf(tt), BuildOptions{SortAdjacency: true})
	if err := equalCSR(g, g2); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeDegreeConservation(t *testing.T) {
	g := diamond(t)
	tr := g.Transpose()
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose changed edge count: %d vs %d", tr.NumEdges(), g.NumEdges())
	}
	if d := tr.OutDegree(3); d != 2 {
		t.Fatalf("in-degree of 3 = %d, want 2", d)
	}
	if d := tr.OutDegree(0); d != 0 {
		t.Fatalf("in-degree of 0 = %d, want 0", d)
	}
}

func edgesOf(g *CSR) []Edge {
	var out []Edge
	for v := int32(0); v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			out = append(out, Edge{Src: v, Dst: w})
		}
	}
	return out
}

func equalCSR(a, b *CSR) error {
	ea, eb := edgesOf(a), edgesOf(b)
	if len(ea) != len(eb) {
		return errf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return errf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	return nil
}

func TestReferenceBFSDiamond(t *testing.T) {
	g := diamond(t)
	dist := ReferenceBFS(g, 0)
	want := []int32{0, 1, 1, 2}
	for v, w := range want {
		if dist[v] != w {
			t.Fatalf("dist[%d]=%d want %d (full: %v)", v, dist[v], w, dist)
		}
	}
	if err := ValidateDistances(g, 0, dist); err != nil {
		t.Fatal(err)
	}
}

func TestReferenceBFSUnreachable(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}}, BuildOptions{})
	dist := ReferenceBFS(g, 0)
	if dist[2] != Unreached {
		t.Fatalf("dist[2]=%d, want Unreached", dist[2])
	}
	if err := ValidateDistances(g, 0, dist); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDistancesCatchesSkippedLevel(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}}, BuildOptions{})
	bad := []int32{0, 1, 3} // level 3 is unreachable via edge 1->2
	if err := ValidateDistances(g, 0, bad); err == nil {
		t.Fatal("validator accepted skipped level")
	}
}

func TestValidateDistancesCatchesOrphanLevel(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {0, 2}}, BuildOptions{})
	bad := []int32{0, 1, 2} // vertex 2 claims level 2 but only in-neighbor is at level 0
	if err := ValidateDistances(g, 0, bad); err == nil {
		t.Fatal("validator accepted orphan level")
	}
}

func TestValidateDistancesCatchesWrongSource(t *testing.T) {
	g := diamond(t)
	bad := []int32{1, 1, 1, 2}
	if err := ValidateDistances(g, 0, bad); err == nil {
		t.Fatal("validator accepted dist[src] != 0")
	}
	bad2 := []int32{0, 0, 1, 2}
	if err := ValidateDistances(g, 0, bad2); err == nil {
		t.Fatal("validator accepted extra vertex at level 0")
	}
}

func TestValidateDistancesCatchesUnreachedTarget(t *testing.T) {
	g := MustFromEdges(2, []Edge{{0, 1}}, BuildOptions{})
	bad := []int32{0, Unreached}
	if err := ValidateDistances(g, 0, bad); err == nil {
		t.Fatal("validator accepted unreached target of reached source")
	}
}

func TestValidateDistancesLengthMismatch(t *testing.T) {
	g := diamond(t)
	if err := ValidateDistances(g, 0, []int32{0, 1}); err == nil {
		t.Fatal("validator accepted short dist array")
	}
}

func TestEqualDistances(t *testing.T) {
	if err := EqualDistances([]int32{1, 2}, []int32{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := EqualDistances([]int32{1, 2}, []int32{1, 3}); err == nil {
		t.Fatal("accepted differing arrays")
	}
	if err := EqualDistances([]int32{1}, []int32{1, 2}); err == nil {
		t.Fatal("accepted length mismatch")
	}
}

func TestReachedCount(t *testing.T) {
	g := diamond(t)
	dist := ReferenceBFS(g, 0)
	v, e := ReachedCount(g, dist)
	if v != 4 || e != 4 {
		t.Fatalf("reached=%d edges=%d, want 4,4", v, e)
	}
}

func TestEccentricity(t *testing.T) {
	if e := Eccentricity([]int32{0, 1, 2, Unreached}); e != 2 {
		t.Fatalf("ecc=%d want 2", e)
	}
	if e := Eccentricity([]int32{0}); e != 0 {
		t.Fatalf("ecc=%d want 0", e)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := diamond(t)
	h := g.DegreeHistogram(3)
	// degrees: 2,1,1,0 -> h[0]=1 h[1]=2 h[2]=1 (capped bucket)
	if h[0] != 1 || h[1] != 2 || h[2] != 1 {
		t.Fatalf("histogram %v", h)
	}
	if c := g.CountAtLeastDegree(2); c != 1 {
		t.Fatalf("CountAtLeastDegree(2)=%d", c)
	}
}

func TestMaxDegree(t *testing.T) {
	g := MustFromEdges(4, []Edge{{2, 0}, {2, 1}, {2, 3}, {0, 1}}, BuildOptions{})
	d, v := g.MaxDegree()
	if d != 3 || v != 2 {
		t.Fatalf("MaxDegree = (%d,%d), want (3,2)", d, v)
	}
}

func TestValidateCatchesCorruptOffsets(t *testing.T) {
	g := diamond(t)
	g.Offsets[1], g.Offsets[2] = g.Offsets[2], g.Offsets[1] // break monotonicity
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted non-monotone offsets")
	}
}

func TestValidateCatchesBadEdgeTarget(t *testing.T) {
	g := diamond(t)
	g.Edges[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range edge")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond(t) // 0->1, 0->2, 1->3, 2->3
	sub, back, err := g.InducedSubgraph([]int32{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("n=%d", sub.NumVertices())
	}
	// Kept edges: 0->1 and 1->3 (0->2 and 2->3 drop with vertex 2).
	if sub.NumEdges() != 2 {
		t.Fatalf("m=%d: %v", sub.NumEdges(), sub.Edges)
	}
	if back[2] != 3 {
		t.Fatalf("back-mapping %v", back)
	}
	dist := ReferenceBFS(sub, 0)
	if dist[2] != 2 { // 0 -> 1 -> 3 in new ids
		t.Fatalf("subgraph distances %v", dist)
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := diamond(t)
	if _, _, err := g.InducedSubgraph([]int32{0, 9}); err == nil {
		t.Fatal("accepted out-of-range vertex")
	}
	if _, _, err := g.InducedSubgraph([]int32{1, 1}); err == nil {
		t.Fatal("accepted duplicate vertex")
	}
	sub, _, err := g.InducedSubgraph(nil)
	if err != nil || sub.NumVertices() != 0 {
		t.Fatalf("empty keep: %v %v", sub, err)
	}
}

// Property: for random graphs, ReferenceBFS output always passes the
// structural validator, and edge/degree bookkeeping is conserved.
func TestPropertyReferenceBFSValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewXoshiro256(seed)
		n := int32(2 + r.Intn(60))
		m := r.Intn(4 * int(n))
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: r.Int32n(n), Dst: r.Int32n(n)}
		}
		g := MustFromEdges(n, edges, BuildOptions{})
		src := r.Int32n(n)
		dist := ReferenceBFS(g, src)
		return ValidateDistances(g, src, dist) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose conserves total edges and per-pair multiplicity.
func TestPropertyTransposeConserves(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.NewXoshiro256(seed)
		n := int32(1 + r.Intn(40))
		m := r.Intn(3 * int(n))
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: r.Int32n(n), Dst: r.Int32n(n)}
		}
		g := MustFromEdges(n, edges, BuildOptions{})
		tr := g.Transpose()
		if tr.NumEdges() != g.NumEdges() {
			return false
		}
		count := map[Edge]int{}
		for _, e := range edgesOf(g) {
			count[e]++
		}
		for _, e := range edgesOf(tr) {
			count[Edge{Src: e.Dst, Dst: e.Src}]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
