package graph

import (
	"fmt"
	"sort"
)

// Edge is one directed edge used when building graphs from edge lists.
type Edge struct {
	Src, Dst int32
}

// BuildOptions controls edge-list to CSR conversion.
type BuildOptions struct {
	// Dedup removes parallel edges (duplicate (src,dst) pairs).
	Dedup bool
	// DropSelfLoops removes edges with Src == Dst.
	DropSelfLoops bool
	// Symmetrize adds the reverse of every edge, producing the directed
	// representation of an undirected graph.
	Symmetrize bool
	// SortAdjacency sorts each adjacency list ascending. Sorted lists
	// improve locality and make graphs canonical for tests.
	SortAdjacency bool
}

// FromEdges builds a CSR with n vertices from an edge list.
// It returns an error if any endpoint is outside [0, n).
func FromEdges(n int32, edges []Edge, opt BuildOptions) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	for i, e := range edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, n)
		}
	}
	work := edges
	if opt.Symmetrize {
		work = make([]Edge, 0, 2*len(edges))
		work = append(work, edges...)
		for _, e := range edges {
			work = append(work, Edge{Src: e.Dst, Dst: e.Src})
		}
	} else if opt.DropSelfLoops || opt.Dedup {
		// The filters below mutate order; work on a copy so the caller's
		// slice is untouched.
		work = append([]Edge(nil), edges...)
	}
	if opt.DropSelfLoops {
		kept := work[:0]
		for _, e := range work {
			if e.Src != e.Dst {
				kept = append(kept, e)
			}
		}
		work = kept
	}
	if opt.Dedup {
		sort.Slice(work, func(i, j int) bool {
			if work[i].Src != work[j].Src {
				return work[i].Src < work[j].Src
			}
			return work[i].Dst < work[j].Dst
		})
		kept := work[:0]
		for i, e := range work {
			if i == 0 || e != work[i-1] {
				kept = append(kept, e)
			}
		}
		work = kept
	}

	offsets := make([]int64, n+1)
	for _, e := range work {
		offsets[e.Src+1]++
	}
	for v := int32(0); v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]int32, len(work))
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range work {
		adj[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	g := &CSR{Offsets: offsets, Edges: adj}
	if opt.SortAdjacency {
		for v := int32(0); v < n; v++ {
			nb := g.Edges[offsets[v]:offsets[v+1]]
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges for tests and generators with known-good
// input; it panics on error.
func MustFromEdges(n int32, edges []Edge, opt BuildOptions) *CSR {
	g, err := FromEdges(n, edges, opt)
	if err != nil {
		panic(err)
	}
	return g
}

// FromAdjacency builds a CSR directly from adjacency lists.
func FromAdjacency(adj [][]int32) (*CSR, error) {
	n := int32(len(adj))
	offsets := make([]int64, n+1)
	var m int64
	for v, nb := range adj {
		m += int64(len(nb))
		offsets[v+1] = m
	}
	edges := make([]int32, 0, m)
	for v, nb := range adj {
		for _, w := range nb {
			if w < 0 || w >= n {
				return nil, fmt.Errorf("graph: adjacency of %d has target %d out of range [0,%d)", v, w, n)
			}
			edges = append(edges, w)
		}
	}
	return &CSR{Offsets: offsets, Edges: edges}, nil
}
