package graph

import "testing"

// parentFixture: diamond 0->1,0->2,1->3,2->3 with a valid BFS tree.
func parentFixture(t *testing.T) (*CSR, []int32, []int32) {
	t.Helper()
	g := MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}}, BuildOptions{})
	dist := []int32{0, 1, 1, 2}
	parent := []int32{0, 0, 0, 1}
	return g, dist, parent
}

func TestValidateParentsAccepts(t *testing.T) {
	g, dist, parent := parentFixture(t)
	if err := ValidateParents(g, 0, dist, parent); err != nil {
		t.Fatal(err)
	}
	// The other valid tree (3's parent is 2) must also pass —
	// arbitrary-concurrent-write can produce either.
	parent[3] = 2
	if err := ValidateParents(g, 0, dist, parent); err != nil {
		t.Fatal(err)
	}
}

func TestValidateParentsRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(dist, parent []int32)
	}{
		{"src-not-self", func(d, p []int32) { p[0] = 1 }},
		{"wrong-level", func(d, p []int32) { p[3] = 0 }},
		{"missing-edge", func(d, p []int32) { p[2] = 1 }},
		{"out-of-range", func(d, p []int32) { p[1] = 99 }},
		{"negative", func(d, p []int32) { p[1] = -1 }},
		{"unreached-with-parent", func(d, p []int32) { d[3] = Unreached }},
	}
	for _, tc := range cases {
		g, dist, parent := parentFixture(t)
		tc.mutate(dist, parent)
		if err := ValidateParents(g, 0, dist, parent); err == nil {
			t.Fatalf("%s: accepted invalid parents", tc.name)
		}
	}
}

func TestValidateParentsLengthMismatch(t *testing.T) {
	g, dist, _ := parentFixture(t)
	if err := ValidateParents(g, 0, dist, []int32{0}); err == nil {
		t.Fatal("accepted short parent array")
	}
}

func TestValidateParentsUnreached(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}}, BuildOptions{})
	dist := []int32{0, 1, Unreached}
	parent := []int32{0, 0, -1}
	if err := ValidateParents(g, 0, dist, parent); err != nil {
		t.Fatal(err)
	}
}

func TestPathTo(t *testing.T) {
	_, _, parent := parentFixture(t)
	path := PathTo(parent, 3)
	if len(path) != 3 || path[0] != 0 || path[2] != 3 {
		t.Fatalf("path %v", path)
	}
	if p := PathTo(parent, 0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("source path %v", p)
	}
	if p := PathTo([]int32{0, -1}, 1); p != nil {
		t.Fatalf("unreached path %v", p)
	}
	if p := PathTo(parent, 99); p != nil {
		t.Fatal("out of range accepted")
	}
	// Corrupt cycle must not loop forever.
	if p := PathTo([]int32{1, 0}, 1); p != nil {
		t.Fatalf("cycle returned %v", p)
	}
}
