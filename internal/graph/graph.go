// Package graph provides the compressed-sparse-row (CSR) graph
// representation shared by every BFS algorithm in this repository,
// along with builders, transforms, and validation utilities.
//
// Vertices are identified by int32 (the paper's graphs have at most
// 10M vertices; int32 halves the memory traffic of the edge array,
// which dominates BFS bandwidth). Edge offsets are int64 so graphs
// with more than 2^31 edges — e.g. the paper's RMAT graph with 1B
// edges — remain representable.
package graph

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Unreached marks a vertex not reached by a BFS in distance arrays.
const Unreached int32 = -1

// CSR is a directed graph in compressed sparse row form.
// The out-neighbors of vertex v are Edges[Offsets[v]:Offsets[v+1]].
//
// CSR values are immutable by convention once built: every BFS in this
// repository only reads them, so a single CSR can be shared by any
// number of concurrent searches.
type CSR struct {
	// Offsets has length NumVertices+1; Offsets[0] == 0 and
	// Offsets[NumVertices] == NumEdges.
	Offsets []int64
	// Edges holds destination vertices grouped by source.
	Edges []int32

	// Transpose cache. CSRs are immutable once built, so the reverse
	// graph is computed at most once and shared by every caller
	// (reorder passes, shard builds, the bottom-up kernel all want it).
	// CSR values must not be copied once Transpose has been called; the
	// repository always passes *CSR.
	tmu       sync.Mutex
	transpose *CSR
}

// NumVertices returns the number of vertices.
func (g *CSR) NumVertices() int32 {
	if len(g.Offsets) == 0 {
		return 0
	}
	return int32(len(g.Offsets) - 1)
}

// NumEdges returns the number of directed edges.
func (g *CSR) NumEdges() int64 { return int64(len(g.Edges)) }

// OutDegree returns the out-degree of v.
func (g *CSR) OutDegree(v int32) int64 {
	return g.Offsets[v+1] - g.Offsets[v]
}

// Neighbors returns the out-neighbor slice of v. The slice aliases the
// graph's storage and must not be modified.
func (g *CSR) Neighbors(v int32) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// AvgDegree returns the mean out-degree, or 0 for an empty graph.
func (g *CSR) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// MaxDegree returns the maximum out-degree and one vertex attaining it.
func (g *CSR) MaxDegree() (deg int64, vertex int32) {
	for v := int32(0); v < g.NumVertices(); v++ {
		if d := g.OutDegree(v); d > deg {
			deg, vertex = d, v
		}
	}
	return deg, vertex
}

// Validate checks structural invariants of the CSR arrays.
func (g *CSR) Validate() error {
	n := g.NumVertices()
	if len(g.Offsets) == 0 {
		if len(g.Edges) != 0 {
			return errors.New("graph: empty offsets with non-empty edges")
		}
		return nil
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph: Offsets[0] = %d, want 0", g.Offsets[0])
	}
	for v := int32(0); v < n; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph: Offsets not monotone at vertex %d", v)
		}
	}
	if g.Offsets[n] != int64(len(g.Edges)) {
		return fmt.Errorf("graph: Offsets[n] = %d, want %d", g.Offsets[n], len(g.Edges))
	}
	for i, w := range g.Edges {
		if w < 0 || w >= n {
			return fmt.Errorf("graph: edge %d target %d out of range [0,%d)", i, w, n)
		}
	}
	return nil
}

// String summarizes the graph for logs.
func (g *CSR) String() string {
	return fmt.Sprintf("CSR{n=%d m=%d avg=%.2f}", g.NumVertices(), g.NumEdges(), g.AvgDegree())
}

// Transpose returns the reverse graph (every edge u->v becomes v->u).
// The result is computed on first call — counting and scatter passes
// run in parallel over contiguous edge chunks — and cached on the
// receiver, so repeated callers (reorder passes, shard builds, the
// bottom-up kernel) share one copy. The cached CSR is immutable like
// any other and its in-neighbor lists are in ascending source order,
// identical to the serial algorithm's output.
func (g *CSR) Transpose() *CSR {
	g.tmu.Lock()
	defer g.tmu.Unlock()
	if g.transpose == nil {
		g.transpose = g.transposeUncached()
	}
	return g.transpose
}

// transposeWorkers picks the counting/scatter parallelism: bounded by
// GOMAXPROCS and by the per-worker count-row memory (4 bytes × n each,
// capped at 256 MiB total so huge graphs don't double their footprint
// during a build), with small graphs staying serial — the fork/join
// overhead exceeds the scan below ~128k edges.
func (g *CSR) transposeWorkers() int {
	const minEdgesParallel = 1 << 17
	const rowBudgetBytes = 256 << 20
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	// The scatter cursors are int32 rows; keep the parallel path to
	// graphs whose running per-target totals cannot overflow them.
	if int64(len(g.Edges)) < minEdgesParallel || int64(len(g.Edges)) >= 1<<31 {
		return 1
	}
	if rows := rowBudgetBytes / (4 * (int64(g.NumVertices()) + 1)); rows < int64(w) {
		w = int(rows)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (g *CSR) transposeUncached() *CSR {
	n := g.NumVertices()
	m := int64(len(g.Edges))
	offsets := make([]int64, n+1)
	workers := g.transposeWorkers()
	if workers == 1 {
		for _, w := range g.Edges {
			offsets[w+1]++
		}
		for v := int32(0); v < n; v++ {
			offsets[v+1] += offsets[v]
		}
		edges := make([]int32, m)
		cursor := make([]int64, n)
		copy(cursor, offsets[:n])
		for u := int32(0); u < n; u++ {
			for _, w := range g.Neighbors(u) {
				edges[cursor[w]] = u
				cursor[w]++
			}
		}
		return &CSR{Offsets: offsets, Edges: edges}
	}

	// Chunk the edge array contiguously: worker k owns edge indices
	// [bounds[k], bounds[k+1]). Chunks may split a vertex's list; the
	// scatter pass recovers the source of the first edge by binary
	// search and walks forward from there.
	bounds := make([]int64, workers+1)
	for k := 0; k <= workers; k++ {
		bounds[k] = m * int64(k) / int64(workers)
	}

	// Pass 1 (parallel): per-worker in-degree count rows.
	counts := make([][]int32, workers)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		counts[k] = make([]int32, n)
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			row := counts[k]
			for _, w := range g.Edges[bounds[k]:bounds[k+1]] {
				row[w]++
			}
		}(k)
	}
	wg.Wait()

	// Serial prefix pass: totals become offsets, and each count row is
	// rewritten in place into the worker's starting cursor per target
	// (offset of the target plus everything earlier workers will
	// scatter there). Earlier chunks hold earlier edges, so the output
	// slot order per target matches the serial scan exactly.
	for v := int32(0); v < n; v++ {
		var total int64
		for k := 0; k < workers; k++ {
			c := int64(counts[k][v])
			counts[k][v] = int32(total) // offset added during scatter
			total += c
		}
		offsets[v+1] = offsets[v] + total
	}

	// Pass 2 (parallel): deterministic scatter. Workers write disjoint
	// slots (disjoint cursor ranges per target), so no synchronization
	// is needed beyond the join.
	edges := make([]int32, m)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := bounds[k], bounds[k+1]
			if lo == hi {
				return
			}
			row := counts[k]
			// First source whose edge list intersects [lo, hi).
			u := int32(upperBound(g.Offsets, lo) - 1)
			for e := lo; e < hi; e++ {
				for g.Offsets[u+1] <= e {
					u++
				}
				w := g.Edges[e]
				edges[offsets[w]+int64(row[w])] = u
				row[w]++
			}
		}(k)
	}
	wg.Wait()
	return &CSR{Offsets: offsets, Edges: edges}
}

// upperBound returns the smallest index i with a[i] > x, assuming a is
// sorted ascending (a CSR offsets array).
func upperBound(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DegreeHistogram returns counts of vertices per out-degree, capped:
// index len-1 accumulates all degrees >= len-1.
func (g *CSR) DegreeHistogram(buckets int) []int64 {
	if buckets <= 0 {
		buckets = 1
	}
	h := make([]int64, buckets)
	for v := int32(0); v < g.NumVertices(); v++ {
		d := g.OutDegree(v)
		if d >= int64(buckets) {
			d = int64(buckets - 1)
		}
		h[d]++
	}
	return h
}

// CountAtLeastDegree returns how many vertices have out-degree >= k.
func (g *CSR) CountAtLeastDegree(k int64) int64 {
	var c int64
	for v := int32(0); v < g.NumVertices(); v++ {
		if g.OutDegree(v) >= k {
			c++
		}
	}
	return c
}

// InducedSubgraph returns the subgraph induced by keep (edges whose
// endpoints are both kept), with vertices renumbered densely in keep's
// order, plus the mapping from new ids back to original ids.
// Duplicate entries in keep are rejected.
func (g *CSR) InducedSubgraph(keep []int32) (*CSR, []int32, error) {
	newID := make(map[int32]int32, len(keep))
	for i, v := range keep {
		if v < 0 || v >= g.NumVertices() {
			return nil, nil, fmt.Errorf("graph: kept vertex %d out of range", v)
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("graph: vertex %d kept twice", v)
		}
		newID[v] = int32(i)
	}
	var edges []Edge
	for i, v := range keep {
		for _, w := range g.Neighbors(v) {
			if nw, ok := newID[w]; ok {
				edges = append(edges, Edge{Src: int32(i), Dst: nw})
			}
		}
	}
	sub, err := FromEdges(int32(len(keep)), edges, BuildOptions{})
	if err != nil {
		return nil, nil, err
	}
	back := append([]int32(nil), keep...)
	return sub, back, nil
}
