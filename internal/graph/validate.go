package graph

import "fmt"

// ReferenceBFS is a deliberately simple, obviously-correct serial BFS
// used as the oracle for validating every parallel algorithm. It returns
// the distance (level) of each vertex from src, with Unreached (-1) for
// vertices not reachable.
func ReferenceBFS(g *CSR, src int32) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 0, 1024)
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, w := range g.Neighbors(u) {
			if dist[w] == Unreached {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ValidateDistances checks a BFS distance array against the structure of
// the graph, Graph500-style, without recomputing a reference BFS:
//
//  1. dist[src] == 0 and src is the only vertex at level 0.
//  2. Every edge u->w with u reached satisfies dist[w] != Unreached and
//     dist[w] <= dist[u]+1 (no level is skipped forward).
//  3. Every reached vertex other than src has an in-neighbor exactly one
//     level closer (it was discovered by someone).
//
// Together with level-synchronous execution these imply dist is exactly
// the BFS level assignment. Returns nil if consistent.
func ValidateDistances(g *CSR, src int32, dist []int32) error {
	n := g.NumVertices()
	if int32(len(dist)) != n {
		return fmt.Errorf("graph: dist length %d != n %d", len(dist), n)
	}
	if n == 0 {
		return nil
	}
	if dist[src] != 0 {
		return fmt.Errorf("graph: dist[src=%d] = %d, want 0", src, dist[src])
	}
	for v := int32(0); v < n; v++ {
		if dist[v] == 0 && v != src {
			return fmt.Errorf("graph: vertex %d at level 0 but is not the source", v)
		}
		if dist[v] < Unreached {
			return fmt.Errorf("graph: vertex %d has invalid distance %d", v, dist[v])
		}
	}
	// Rule 2: edges from reached vertices.
	for u := int32(0); u < n; u++ {
		if dist[u] == Unreached {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if dist[w] == Unreached {
				return fmt.Errorf("graph: edge %d->%d reaches unreached vertex (dist[u]=%d)", u, w, dist[u])
			}
			if dist[w] > dist[u]+1 {
				return fmt.Errorf("graph: edge %d->%d skips levels (%d -> %d)", u, w, dist[u], dist[w])
			}
		}
	}
	// Rule 3: every reached vertex has a discovering in-neighbor.
	// Use the transpose to check in one pass.
	tr := g.Transpose()
	for v := int32(0); v < n; v++ {
		if dist[v] <= 0 { // unreached or source
			continue
		}
		found := false
		for _, u := range tr.Neighbors(v) {
			if dist[u] == dist[v]-1 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("graph: vertex %d at level %d has no in-neighbor at level %d", v, dist[v], dist[v]-1)
		}
	}
	return nil
}

// ValidateParents checks a BFS parent array against a distance array,
// completing the Graph500-style validation:
//
//  1. parent[src] == src; unreached vertices have parent -1.
//  2. Every reached v != src has a reached parent exactly one level
//     closer, and the edge parent[v] -> v exists in the graph.
func ValidateParents(g *CSR, src int32, dist, parent []int32) error {
	n := g.NumVertices()
	if int32(len(parent)) != n || int32(len(dist)) != n {
		return fmt.Errorf("graph: parent/dist length mismatch (%d/%d vs n=%d)", len(parent), len(dist), n)
	}
	if n == 0 {
		return nil
	}
	if parent[src] != src {
		return fmt.Errorf("graph: parent[src=%d] = %d, want self", src, parent[src])
	}
	for v := int32(0); v < n; v++ {
		p := parent[v]
		if dist[v] == Unreached {
			if p != -1 {
				return fmt.Errorf("graph: unreached vertex %d has parent %d", v, p)
			}
			continue
		}
		if v == src {
			continue
		}
		if p < 0 || p >= n {
			return fmt.Errorf("graph: vertex %d has out-of-range parent %d", v, p)
		}
		if dist[p] != dist[v]-1 {
			return fmt.Errorf("graph: parent %d of %d at level %d, want %d", p, v, dist[p], dist[v]-1)
		}
		found := false
		for _, w := range g.Neighbors(p) {
			if w == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("graph: claimed tree edge %d->%d does not exist", p, v)
		}
	}
	return nil
}

// PathTo reconstructs the BFS path from the source to v using a parent
// array, returning vertices source-first. It returns nil if v was not
// reached.
func PathTo(parent []int32, v int32) []int32 {
	if v < 0 || int(v) >= len(parent) || parent[v] == -1 {
		return nil
	}
	var rev []int32
	for {
		rev = append(rev, v)
		p := parent[v]
		if p == v {
			break
		}
		if len(rev) > len(parent) {
			return nil // cycle: corrupt parent array
		}
		v = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EqualDistances reports whether two distance arrays are identical and,
// if not, describes the first difference.
func EqualDistances(a, b []int32) error {
	if len(a) != len(b) {
		return fmt.Errorf("graph: distance arrays differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("graph: dist[%d] differs: %d vs %d", i, a[i], b[i])
		}
	}
	return nil
}

// ReachedCount returns the number of vertices with dist != Unreached and
// the number of edges incident to them (the edges a BFS traverses),
// which is the numerator of the TEPS metric.
func ReachedCount(g *CSR, dist []int32) (vertices int64, edges int64) {
	for v := int32(0); v < g.NumVertices(); v++ {
		if dist[v] != Unreached {
			vertices++
			edges += g.OutDegree(v)
		}
	}
	return vertices, edges
}

// Eccentricity returns the maximum finite distance in dist — the depth
// of the BFS tree, i.e. the number of levels minus one.
func Eccentricity(dist []int32) int32 {
	var ecc int32
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}
