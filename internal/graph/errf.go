package graph

import "fmt"

// errf is a tiny alias used by tests and validators in this package.
func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
