package reorder

import (
	"testing"
	"testing/quick"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func TestIdentityApplyIsNoop(t *testing.T) {
	g, err := gen.Graph500RMAT(128, 1024, 1, gen.Options{SortAdjacency: true})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Apply(g, Identity(g.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges changed: %d -> %d", g.NumEdges(), g2.NumEdges())
	}
	for v := int32(0); v < g.NumVertices(); v++ {
		a, b := g.Neighbors(v), g2.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree of %d changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency of %d changed", v)
			}
		}
	}
}

func TestPermutationValidate(t *testing.T) {
	if err := (Permutation{0, 1, 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Permutation{0, 0, 2}).Validate(); err == nil {
		t.Fatal("accepted duplicate")
	}
	if err := (Permutation{0, 5, 2}).Validate(); err == nil {
		t.Fatal("accepted out of range")
	}
	if err := (Permutation{0, -1, 2}).Validate(); err == nil {
		t.Fatal("accepted negative")
	}
}

func TestInverse(t *testing.T) {
	p := Permutation{2, 0, 1}
	inv := p.Inverse()
	for old, newID := range p {
		if inv[newID] != int32(old) {
			t.Fatalf("inverse wrong at %d", old)
		}
	}
}

func TestApplyRejectsBadPerm(t *testing.T) {
	g, _ := gen.Path(4)
	if _, err := Apply(g, Permutation{0, 1}); err == nil {
		t.Fatal("accepted short permutation")
	}
	if _, err := Apply(g, Permutation{0, 0, 1, 2}); err == nil {
		t.Fatal("accepted non-bijection")
	}
}

func TestByBFSOrderProperties(t *testing.T) {
	g, err := gen.LayeredRandom(500, 3000, 10, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	perm, err := ByBFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
	if perm[0] != 0 {
		t.Fatalf("source not first: %d", perm[0])
	}
	// BFS order must be monotone in level: if dist[u] < dist[v] then
	// perm[u] < perm[v].
	dist := graph.ReferenceBFS(g, 0)
	for u := int32(0); u < g.NumVertices(); u++ {
		for v := int32(0); v < g.NumVertices(); v++ {
			if dist[u] != graph.Unreached && dist[v] != graph.Unreached && dist[u] < dist[v] && perm[u] >= perm[v] {
				t.Fatalf("level order violated: %d(level %d) -> %d, %d(level %d) -> %d",
					u, dist[u], perm[u], v, dist[v], perm[v])
			}
		}
	}
}

func TestByBFSRejectsBadSource(t *testing.T) {
	g, _ := gen.Path(4)
	if _, err := ByBFS(g, 9); err == nil {
		t.Fatal("accepted bad source")
	}
}

func TestByDegreeDescending(t *testing.T) {
	g, err := gen.ChungLu(512, 4096, 2.1, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	perm := ByDegreeDescending(g)
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
	g2, err := Apply(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Degrees must now be non-increasing in the new id space.
	for v := int32(1); v < g2.NumVertices(); v++ {
		if g2.OutDegree(v) > g2.OutDegree(v-1) {
			t.Fatalf("degree order violated at %d: %d > %d", v, g2.OutDegree(v), g2.OutDegree(v-1))
		}
	}
}

// Property: relabeling preserves BFS level structure — distances in the
// new graph are the permuted distances of the original.
func TestPropertyApplyPreservesBFS(t *testing.T) {
	f := func(seed uint64) bool {
		n := int32(2 + seed%120)
		g, err := gen.Graph500RMAT(n, int64(seed%800), seed, gen.Options{})
		if err != nil {
			return false
		}
		src := int32(seed % uint64(n))
		perm, err := ByBFS(g, src)
		if err != nil {
			return false
		}
		g2, err := Apply(g, perm)
		if err != nil {
			return false
		}
		want := graph.ReferenceBFS(g, src)
		got := graph.ReferenceBFS(g2, perm[src])
		for v := int32(0); v < n; v++ {
			if want[v] != got[perm[v]] {
				return false
			}
		}
		return g2.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
