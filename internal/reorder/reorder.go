// Package reorder relabels graph vertices to improve the memory
// locality of BFS. Queue-based BFS touches dist[] and the CSR arrays in
// frontier order, so laying out vertices in an order correlated with
// traversal order (BFS order) or packing the hottest vertices together
// (degree order) measurably reduces cache misses — a standard
// engineering companion to the paper's algorithmic work, exposed here
// for the locality ablation benchmarks.
package reorder

import (
	"fmt"
	"sort"

	"optibfs/internal/graph"
)

// Permutation maps old vertex ids to new ones: newID := perm[oldID].
type Permutation []int32

// Validate checks that perm is a bijection on [0, n).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for old, newID := range p {
		if newID < 0 || int(newID) >= len(p) {
			return fmt.Errorf("reorder: perm[%d] = %d out of range", old, newID)
		}
		if seen[newID] {
			return fmt.Errorf("reorder: new id %d assigned twice", newID)
		}
		seen[newID] = true
	}
	return nil
}

// Inverse returns the inverse permutation (new id -> old id).
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for old, newID := range p {
		inv[newID] = int32(old)
	}
	return inv
}

// Apply rebuilds g under the permutation: vertex v becomes perm[v] and
// every edge u->w becomes perm[u]->perm[w]. Adjacency lists are sorted
// in the new id space (canonical and locality-friendly).
func Apply(g *graph.CSR, perm Permutation) (*graph.CSR, error) {
	n := g.NumVertices()
	if int32(len(perm)) != n {
		return nil, fmt.Errorf("reorder: permutation length %d != n %d", len(perm), n)
	}
	if err := perm.Validate(); err != nil {
		return nil, err
	}
	inv := perm.Inverse()
	offsets := make([]int64, n+1)
	for newID := int32(0); newID < n; newID++ {
		offsets[newID+1] = offsets[newID] + g.OutDegree(inv[newID])
	}
	edges := make([]int32, g.NumEdges())
	for newID := int32(0); newID < n; newID++ {
		out := edges[offsets[newID]:offsets[newID+1]]
		for i, w := range g.Neighbors(inv[newID]) {
			out[i] = perm[w]
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return &graph.CSR{Offsets: offsets, Edges: edges}, nil
}

// ByBFS returns the permutation that renumbers vertices in BFS
// visitation order from src; vertices unreachable from src keep their
// relative order after all reached ones. Consecutive ids then follow
// frontier order, so queue walks become near-sequential memory walks.
func ByBFS(g *graph.CSR, src int32) (Permutation, error) {
	n := g.NumVertices()
	if n == 0 {
		return Permutation{}, nil
	}
	if src < 0 || src >= n {
		return nil, fmt.Errorf("reorder: source %d out of range", src)
	}
	perm := make(Permutation, n)
	for i := range perm {
		perm[i] = -1
	}
	next := int32(0)
	queue := make([]int32, 0, 1024)
	assign := func(v int32) {
		perm[v] = next
		next++
		queue = append(queue, v)
	}
	assign(src)
	for head := 0; head < len(queue); head++ {
		for _, w := range g.Neighbors(queue[head]) {
			if perm[w] == -1 {
				assign(w)
			}
		}
	}
	for v := int32(0); v < n; v++ {
		if perm[v] == -1 {
			perm[v] = next
			next++
		}
	}
	return perm, nil
}

// ByDegreeDescending returns the permutation that packs high-degree
// vertices first (hub packing: the hottest dist[] entries share cache
// lines). Ties keep the original relative order.
func ByDegreeDescending(g *graph.CSR) Permutation {
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return g.OutDegree(order[i]) > g.OutDegree(order[j])
	})
	perm := make(Permutation, n)
	for rank, v := range order {
		perm[v] = int32(rank)
	}
	return perm
}

// Identity returns the identity permutation on n vertices.
func Identity(n int32) Permutation {
	perm := make(Permutation, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}
