// Package costmodel turns the instrumentation counters of a real
// (goroutine-parallel) BFS run into a modeled wall-clock time for a
// target multicore machine.
//
// Why it exists: the paper's experiments ran on 12-core (Lonestar) and
// 32-core (Trestles) nodes. When this repository runs on a host with
// fewer cores, goroutine concurrency still makes the algorithms' races,
// duplicate explorations, steal failures and lock contention *events*
// happen for real — the counters measure them — but wall-clock speedup
// cannot manifest. The model recombines the measured per-worker work
// into the makespan a p-core machine would see:
//
//	worker_i = pops_i·Tvertex + edges_i·Tedge + fetches_i·Tfetch
//	         + locks_i·Tlock(+ (p-1)·Twait for a GLOBAL lock, the
//	           paper's Θ(p) wait analysis; try-locks wait O(1))
//	         + steals_i·Tsteal + rmw_i·Trmw
//	makespan = max_i worker_i (cores permitting) + levels·Tbarrier(p)
//
// Only the *time aggregation* is modeled; every count is measured from
// a real concurrent execution. Limitation (documented in
// EXPERIMENTS.md): on a single hardware core the goroutine scheduler
// interleaves more coarsely than true parallel hardware, so race-driven
// duplicate counts are lower bounds.
package costmodel

import (
	"fmt"

	"optibfs/internal/core"
	"optibfs/internal/stats"
)

// Machine holds a target machine profile. Times are in seconds.
type Machine struct {
	Name  string
	Cores int

	TEdge   float64 // per adjacency entry scanned (bandwidth bound)
	TVertex float64 // per queue pop (pointer chase + bookkeeping)
	TFetch  float64 // per plain load/store segment fetch or retry
	TLock   float64 // uncontended mutex acquire+release
	TWait   float64 // extra wait per *other* worker on a global lock
	TSteal  float64 // per steal attempt (descriptor reads + checks)
	TRMW    float64 // per atomic CAS / fetch-add
	// TFetchContend is the extra coherence cost a shared-pool fetch
	// pays per peer worker hammering the same descriptor cache line —
	// the reason the paper's centralized variants stop scaling around
	// 20 cores while work-stealing (whose steal targets are spread
	// across p descriptors) keeps scaling (§V).
	TFetchContend float64
	// Bag (Baseline1) structure costs: per-element insert into a
	// pennant (allocation + linking) and the per-core share of the
	// per-level reducer merge.
	TBagInsert       float64
	TBagMergePerCore float64
	// Per-level barrier: base latency plus a per-core term.
	TBarrierBase    float64
	TBarrierPerCore float64
}

// The paper's simulation environments (Table III). The constants are
// first-principles estimates for those microarchitectures: an edge scan
// is one random-ish 4-byte read amortized over cache lines (~1.25 ns on
// Westmere, slower on Magny-Cours), a lock round trip is ~20x a plain
// op (the paper's footnote 2 cites locks as >20x slower than standard
// CPU operations), an atomic RMW is ~5x, and a software barrier costs a
// few microseconds plus a per-core term.
var (
	// Lonestar: 2x 3.33 GHz hexa-core Intel Westmere, 12 cores/node.
	Lonestar = Machine{
		Name: "Lonestar", Cores: 12,
		TEdge: 1.25e-9, TVertex: 4e-9, TFetch: 8e-9,
		TLock: 25e-9, TWait: 12e-9, TSteal: 30e-9, TRMW: 6e-9,
		TFetchContend: 2e-9,
		TBagInsert:    30e-9, TBagMergePerCore: 80e-9,
		TBarrierBase: 1e-6, TBarrierPerCore: 0.1e-6,
	}
	// Trestles: 4x 2.4 GHz 8-core AMD Magny-Cours, 32 cores/node.
	Trestles = Machine{
		Name: "Trestles", Cores: 32,
		TEdge: 1.7e-9, TVertex: 5.5e-9, TFetch: 11e-9,
		TLock: 35e-9, TWait: 16e-9, TSteal: 42e-9, TRMW: 8e-9,
		TFetchContend: 3.5e-9,
		TBagInsert:    40e-9, TBagMergePerCore: 100e-9,
		TBarrierBase: 1.5e-6, TBarrierPerCore: 0.15e-6,
	}
)

// Shape describes the cost structure of an algorithm's load balancer:
// how lock wait scales with worker count (paper §V: the centralized
// lock's wait grows Θ(p); TryLock stealing waits O(1)) and whether the
// frontier lives in a pointer-based bag rather than flat arrays.
type Shape int

const (
	// ShapeNone: no mutexes in the balancer (the lockfree variants and
	// Baseline2's RMW-based variants; RMW cost is counted separately).
	ShapeNone Shape = iota
	// ShapeGlobalLock: one mutex shared by all workers (BFS_C).
	ShapeGlobalLock
	// ShapePerWorkerLock: one mutex per worker, thieves TryLock
	// (BFS_W / BFS_WS).
	ShapePerWorkerLock
	// ShapeBag: Baseline1's pennant/bag frontier — every discovery is
	// a pennant insert and every level ends in a reducer merge.
	ShapeBag
	// ShapeSharedPool: lockfree fetches from shared centralized queue
	// pool descriptors (BFS_CL / BFS_DL); every fetch pays coherence
	// contention proportional to the peers sharing its pool.
	ShapeSharedPool
)

// ShapeOf maps the core algorithms to their cost shape.
func ShapeOf(algo core.Algorithm) Shape {
	switch algo {
	case core.BFSC:
		return ShapeGlobalLock
	case core.BFSCL, core.BFSDL, core.BFSEL:
		return ShapeSharedPool
	case core.BFSW, core.BFSWS:
		return ShapePerWorkerLock
	default:
		return ShapeNone
	}
}

// Modeled computes the modeled seconds for a run on machine m.
// res must carry PerWorker counters (serial runs fall back to the
// aggregate). workers is the worker count of the run; if it exceeds
// m.Cores the makespan is scaled by the oversubscription factor.
func Modeled(m Machine, shape Shape, res *core.Result) float64 {
	p := res.Workers
	if p <= 0 {
		p = 1
	}
	perWorker := res.PerWorker
	evenSplit := 1.0
	if len(perWorker) == 0 {
		// No per-worker breakdown (sbfs, or Baseline1's fork-join tasks
		// that are not worker-bound). Use the aggregate; for a parallel
		// run assume an even split — justified for PBFS, whose
		// grain-size pennant splitting provably balances the layer.
		pc := stats.PaddedCounters{}
		pc.Counters = res.Counters
		perWorker = []stats.PaddedCounters{pc}
		if p > 1 {
			evenSplit = float64(p)
		}
	}
	var makespan float64
	for i := range perWorker {
		c := &perWorker[i].Counters
		t := float64(c.VerticesPopped)*m.TVertex +
			float64(c.EdgesScanned)*m.TEdge +
			float64(c.Fetches+c.FetchRetries)*m.TFetch +
			float64(c.StealAttempts)*m.TSteal +
			float64(c.AtomicRMW)*m.TRMW
		switch shape {
		case ShapeGlobalLock:
			// Every acquisition of the one global lock waits behind up
			// to p-1 peers: Θ(p) wait per fetch (paper §V).
			t += float64(c.LockAcquisitions) * (m.TLock + float64(p-1)*m.TWait)
		case ShapePerWorkerLock:
			// Own-lock acquisitions are mostly uncontended; TryLock
			// failures cost one bounded probe (O(1) wait).
			t += float64(c.LockAcquisitions)*m.TLock + float64(c.LockTryFails)*m.TLock
		case ShapeBag:
			// Pennant inserts per discovery, plus an extra pointer
			// chase per pop relative to flat array queues.
			t += float64(c.Discovered)*m.TBagInsert + float64(c.VerticesPopped)*m.TVertex
		case ShapeSharedPool:
			// Coherence contention on the shared pool descriptors:
			// every fetch (and empty retry) contends with the other
			// workers assigned to the same pool.
			pools := res.Pools
			if pools < 1 {
				pools = 1
			}
			peers := (p+pools-1)/pools - 1
			if peers < 0 {
				peers = 0
			}
			t += float64(c.Fetches+c.FetchRetries) * float64(peers) * m.TFetchContend
		}
		t /= evenSplit
		if t > makespan {
			makespan = t
		}
	}
	barrier := m.TBarrierBase + float64(min(p, m.Cores))*m.TBarrierPerCore
	if shape == ShapeBag {
		// Reducer-bag merge at every level end.
		barrier += float64(min(p, m.Cores)) * m.TBagMergePerCore
	}
	total := makespan + float64(res.Levels)*barrier
	if p > m.Cores {
		total *= float64(p) / float64(m.Cores)
	}
	return total
}

// ModeledMillis is Modeled scaled to milliseconds.
func ModeledMillis(m Machine, shape Shape, res *core.Result) float64 {
	return Modeled(m, shape, res) * 1e3
}

// Validate sanity-checks a machine profile.
func (m Machine) Validate() error {
	if m.Cores <= 0 {
		return fmt.Errorf("costmodel: machine %q has %d cores", m.Name, m.Cores)
	}
	for _, v := range []float64{m.TEdge, m.TVertex, m.TFetch, m.TLock, m.TWait, m.TSteal, m.TRMW, m.TFetchContend, m.TBagInsert, m.TBagMergePerCore, m.TBarrierBase, m.TBarrierPerCore} {
		if v < 0 {
			return fmt.Errorf("costmodel: machine %q has negative cost", m.Name)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
