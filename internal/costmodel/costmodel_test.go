package costmodel

import (
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/stats"
)

func TestMachineProfilesValid(t *testing.T) {
	for _, m := range []Machine{Lonestar, Trestles} {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := (Machine{Name: "bad", Cores: 0}).Validate(); err == nil {
		t.Fatal("accepted zero cores")
	}
	if err := (Machine{Name: "bad", Cores: 4, TEdge: -1}).Validate(); err == nil {
		t.Fatal("accepted negative cost")
	}
}

func TestShapeOf(t *testing.T) {
	if ShapeOf(core.BFSC) != ShapeGlobalLock {
		t.Fatal("BFS_C should be global-lock")
	}
	if ShapeOf(core.BFSW) != ShapePerWorkerLock || ShapeOf(core.BFSWS) != ShapePerWorkerLock {
		t.Fatal("BFS_W/WS should be per-worker-lock")
	}
	for _, a := range []core.Algorithm{core.BFSCL, core.BFSDL} {
		if ShapeOf(a) != ShapeSharedPool {
			t.Fatalf("%s should be shared-pool", a)
		}
	}
	for _, a := range []core.Algorithm{core.Serial, core.BFSWL, core.BFSWSL} {
		if ShapeOf(a) != ShapeNone {
			t.Fatalf("%s should be lock-none", a)
		}
	}
}

func TestSharedPoolContentionGrowsWithWorkersAndShrinksWithPools(t *testing.T) {
	mk := func(p, pools int) *core.Result {
		res := synthetic(p, func(i int, c *stats.Counters) {
			c.Fetches = 1000
			c.EdgesScanned = 10000
		})
		res.Pools = pools
		return res
	}
	t4 := Modeled(Trestles, ShapeSharedPool, mk(4, 1))
	t32 := Modeled(Trestles, ShapeSharedPool, mk(32, 1))
	if t32 <= t4 {
		t.Fatalf("shared-pool contention should grow with p: %g vs %g", t4, t32)
	}
	// More pools -> fewer peers per pool -> cheaper.
	pooled := Modeled(Trestles, ShapeSharedPool, mk(32, 8))
	if pooled >= t32 {
		t.Fatalf("pooling should reduce contention: j=8 %g vs j=1 %g", pooled, t32)
	}
}

// synthetic builds a Result with per-worker counters.
func synthetic(workers int, fill func(i int, c *stats.Counters)) *core.Result {
	per := stats.NewPerWorker(workers)
	for i := range per {
		fill(i, &per[i].Counters)
	}
	return &core.Result{
		Workers:   workers,
		Levels:    10,
		PerWorker: per,
		Counters:  stats.Sum(per),
	}
}

func TestModeledMakespanIsMaxWorker(t *testing.T) {
	res := synthetic(4, func(i int, c *stats.Counters) {
		c.EdgesScanned = int64(1000 * (i + 1)) // worker 3 is the straggler
	})
	got := Modeled(Lonestar, ShapeNone, res)
	barrier := Lonestar.TBarrierBase + 4*Lonestar.TBarrierPerCore
	want := 4000*Lonestar.TEdge + 10*barrier
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("modeled %g want %g", got, want)
	}
}

func TestGlobalLockWaitGrowsWithWorkers(t *testing.T) {
	mk := func(p int) *core.Result {
		return synthetic(p, func(i int, c *stats.Counters) {
			c.LockAcquisitions = 1000
			c.EdgesScanned = 10000
		})
	}
	t4 := Modeled(Lonestar, ShapeGlobalLock, mk(4))
	t12 := Modeled(Lonestar, ShapeGlobalLock, mk(12))
	if t12 <= t4 {
		t.Fatalf("global lock wait should grow with p: t4=%g t12=%g", t4, t12)
	}
	// Per-worker locks must NOT grow with p in the same way.
	w4 := Modeled(Lonestar, ShapePerWorkerLock, mk(4))
	w12 := Modeled(Lonestar, ShapePerWorkerLock, mk(12))
	if w12-w4 > (t12-t4)/2 {
		t.Fatalf("try-lock wait grew like a global lock: Δglobal=%g Δper=%g", t12-t4, w12-w4)
	}
}

func TestOversubscriptionPenalty(t *testing.T) {
	res := synthetic(24, func(i int, c *stats.Counters) { c.EdgesScanned = 1000 })
	over := Modeled(Lonestar, ShapeNone, res) // 24 workers on 12 cores
	res12 := synthetic(12, func(i int, c *stats.Counters) { c.EdgesScanned = 1000 })
	fit := Modeled(Lonestar, ShapeNone, res12)
	if over <= fit {
		t.Fatalf("oversubscription not penalized: %g <= %g", over, fit)
	}
}

func TestSerialFallback(t *testing.T) {
	res := &core.Result{
		Workers: 1,
		Levels:  3,
		Counters: stats.Counters{
			EdgesScanned:   1000,
			VerticesPopped: 100,
		},
	}
	got := Modeled(Lonestar, ShapeNone, res)
	if got <= 0 {
		t.Fatalf("modeled %g", got)
	}
}

func TestModeledEndToEnd(t *testing.T) {
	// A real run's modeled time must be positive and scale with the
	// graph's size.
	small, err := gen.ErdosRenyi(500, 2500, 1, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := gen.ErdosRenyi(5000, 50000, 1, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.Run(small, 0, core.BFSCL, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := core.Run(big, 0, core.BFSCL, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ms, mb := Modeled(Lonestar, ShapeNone, rs), Modeled(Lonestar, ShapeNone, rb)
	if ms <= 0 || mb <= ms {
		t.Fatalf("modeled times not ordered: small=%g big=%g", ms, mb)
	}
	if mm := ModeledMillis(Lonestar, ShapeNone, rs); mm != ms*1e3 {
		t.Fatalf("ModeledMillis mismatch")
	}
}

func TestLockfreeBeatsGlobalLockOnModel(t *testing.T) {
	// The paper's headline: on the same measured workload, the global
	// lock's Θ(p) wait makes BFS_C slower than BFS_CL at high p.
	g, err := gen.ChungLu(8192, 65536, 2.2, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	locked, err := core.Run(g, 0, core.BFSC, core.Options{Workers: 12})
	if err != nil {
		t.Fatal(err)
	}
	lockfree, err := core.Run(g, 0, core.BFSCL, core.Options{Workers: 12})
	if err != nil {
		t.Fatal(err)
	}
	tl := Modeled(Lonestar, ShapeOf(core.BFSC), locked)
	tf := Modeled(Lonestar, ShapeOf(core.BFSCL), lockfree)
	if tf >= tl {
		t.Fatalf("modeled lockfree (%g) not faster than locked (%g)", tf, tl)
	}
}
