package costmodel

import "testing"

func TestCalibrateProducesValidMachine(t *testing.T) {
	m := Calibrate(0)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Name != "LocalHost" || m.Cores < 1 {
		t.Fatalf("machine %+v", m)
	}
	// Microloop sanity: every primitive must land in a plausible range
	// (sub-nanosecond to sub-microsecond on any machine this runs on).
	checks := map[string]float64{
		"TEdge":  m.TEdge,
		"TLock":  m.TLock,
		"TRMW":   m.TRMW,
		"TSteal": m.TSteal,
		"TFetch": m.TFetch,
	}
	for name, v := range checks {
		if v <= 0 || v > 1e-5 {
			t.Fatalf("%s = %g s implausible", name, v)
		}
	}
	// A lock round trip costs more than a plain RMW on every platform.
	if m.TLock < m.TRMW/4 {
		t.Fatalf("lock (%g) implausibly cheaper than RMW (%g)", m.TLock, m.TRMW)
	}
}

func TestCalibrateRespectsCores(t *testing.T) {
	m := Calibrate(24)
	if m.Cores != 24 {
		t.Fatalf("cores %d", m.Cores)
	}
}
