package costmodel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"optibfs/internal/rng"
)

// Calibrate measures this host's cost constants with short microloops
// and returns a Machine profile named "LocalHost" with the given core
// count (0 = runtime.NumCPU()). It lets the model report modeled times
// for the machine the code actually runs on rather than the paper's
// clusters. The whole calibration takes a few tens of milliseconds.
func Calibrate(cores int) Machine {
	if cores <= 0 {
		cores = runtime.NumCPU()
	}
	m := Machine{
		Name:  "LocalHost",
		Cores: cores,

		TEdge:           timeEdgeScan(),
		TLock:           timeLock(),
		TRMW:            timeRMW(),
		TSteal:          timeSteal(),
		TFetch:          timeFetch(),
		TWait:           timeLock() / 2, // per-waiter handoff ~ half a lock round trip
		TBarrierBase:    1e-6,
		TBarrierPerCore: 0.1e-6,
	}
	// Derived costs that are hard to isolate in microloops but track
	// the measured primitives closely.
	m.TVertex = 3 * m.TEdge
	m.TFetchContend = m.TRMW / 3
	m.TBagInsert = 5 * m.TEdge * 4 // pointer alloc + link ≈ several cache touches
	m.TBagMergePerCore = 10 * m.TEdge * 4
	return m
}

// repeat runs fn over `iters` iterations and returns seconds per
// iteration.
func repeat(iters int, fn func(n int)) float64 {
	start := time.Now()
	fn(iters)
	return time.Since(start).Seconds() / float64(iters)
}

// timeEdgeScan measures per-int32 cost of a pseudo-random gather —
// the BFS inner loop's memory pattern.
func timeEdgeScan() float64 {
	const size = 1 << 20
	data := make([]int32, size)
	r := rng.NewXoshiro256(1)
	for i := range data {
		data[i] = r.Int32n(size)
	}
	var sink int32
	sec := repeat(1<<21, func(n int) {
		idx := int32(0)
		for i := 0; i < n; i++ {
			idx = data[idx]
		}
		sink = idx
	})
	_ = sink
	return sec
}

func timeLock() float64 {
	var mu sync.Mutex
	return repeat(1<<20, func(n int) {
		for i := 0; i < n; i++ {
			mu.Lock()
			mu.Unlock() //nolint:staticcheck // deliberate empty critical section
		}
	})
}

func timeRMW() float64 {
	var x int64
	return repeat(1<<20, func(n int) {
		for i := 0; i < n; i++ {
			atomic.AddInt64(&x, 1)
		}
	})
}

// timeSteal approximates a steal attempt: three atomic loads of remote
// descriptor fields plus the sanity comparison.
func timeSteal() float64 {
	var q, f, r int64
	atomic.StoreInt64(&r, 100)
	var sink int64
	sec := repeat(1<<20, func(n int) {
		for i := 0; i < n; i++ {
			qq := atomic.LoadInt64(&q)
			ff := atomic.LoadInt64(&f)
			rr := atomic.LoadInt64(&r)
			if ff < rr && qq >= 0 {
				sink++
			}
		}
	})
	_ = sink
	return sec
}

// timeFetch approximates an optimistic fetch: atomic load + store on a
// shared cursor.
func timeFetch() float64 {
	var cur int64
	return repeat(1<<20, func(n int) {
		for i := 0; i < n; i++ {
			v := atomic.LoadInt64(&cur)
			atomic.StoreInt64(&cur, v+1)
		}
	})
}
