package harness

import (
	"context"
	"fmt"

	"optibfs/internal/baseline1"
	"optibfs/internal/baseline2"
	"optibfs/internal/beamer"
	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/graph"
)

// family tags which runtime an AlgoSpec dispatches to.
type family int

const (
	familyCore family = iota
	familyBaseline1
	familyBaseline2
	familyBeamer
)

// AlgoSpec identifies one algorithm column/row of the experiments —
// the paper's own variants plus both baselines under one interface.
type AlgoSpec struct {
	// Name is the display name used in tables.
	Name string

	fam  family
	algo core.Algorithm
	b2   baseline2.Variant
}

// Core algorithm specs (paper Table II acronyms).
func coreSpec(a core.Algorithm) AlgoSpec {
	return AlgoSpec{Name: string(a), fam: familyCore, algo: a}
}

// TableAlgos is the algorithm set of Table V: the paper's variants,
// Baseline1 (PBFS/bag), and the two strongest Baseline2 configurations.
var TableAlgos = []AlgoSpec{
	coreSpec(core.Serial),
	coreSpec(core.BFSC),
	coreSpec(core.BFSCL),
	coreSpec(core.BFSDL),
	coreSpec(core.BFSW),
	coreSpec(core.BFSWL),
	coreSpec(core.BFSWS),
	coreSpec(core.BFSWSL),
	{Name: "Baseline1(bag)", fam: familyBaseline1},
	{Name: "Baseline2(lq+read+bmp)", fam: familyBaseline2, b2: baseline2.LocalQueueBitmap},
	{Name: "Baseline2(queue+cas)", fam: familyBaseline2, b2: baseline2.QueueCAS},
}

// LockfreeAlgos is the Figure 2 set: the paper plots the scalability of
// its lockfree variants only.
var LockfreeAlgos = []AlgoSpec{
	coreSpec(core.BFSCL),
	coreSpec(core.BFSDL),
	coreSpec(core.BFSWSL),
}

// ExtensionAlgos are this repository's implementations of the paper's
// future-work sketches (§IV-D); they are benchmarked as ablations, not
// in the paper-faithful tables.
var ExtensionAlgos = []AlgoSpec{
	coreSpec(core.BFSEL),
	{Name: "DirectionOptimizing", fam: familyBeamer},
}

// AlgoByName resolves a display name (for CLI flags).
func AlgoByName(name string) (AlgoSpec, error) {
	for _, a := range TableAlgos {
		if a.Name == name {
			return a, nil
		}
	}
	for _, a := range ExtensionAlgos {
		if a.Name == name {
			return a, nil
		}
	}
	return AlgoSpec{}, fmt.Errorf("harness: unknown algorithm %q", name)
}

// Run executes the algorithm on g from src (one-shot; multi-source
// measurements should go through NewRunner so per-run state is pooled).
func (a AlgoSpec) Run(g *graph.CSR, src int32, opt core.Options) (*core.Result, error) {
	switch a.fam {
	case familyCore:
		if a.algo == core.Serial {
			// Parallel-only knobs don't apply to the serial baseline;
			// drop Hybrid the same way NewBackend ignores Shards for it,
			// so one option set can sweep a whole algorithm table.
			opt.Hybrid = false
		}
		return core.Run(g, src, a.algo, opt)
	case familyBaseline1:
		return baseline1.Run(g, src, opt)
	case familyBaseline2:
		return baseline2.Run(g, src, a.b2, opt)
	case familyBeamer:
		return beamer.Run(g, src, beamer.Options{Options: opt})
	default:
		return nil, fmt.Errorf("harness: bad algorithm family %d", a.fam)
	}
}

// Runner is a reusable per-(algorithm, graph) handle. Core variants and
// the direction-optimizing extension run on a pooled engine, so repeated
// Run calls reuse dist/parent/queue state (and, for beamer, the
// transpose); the baselines have no engine layer and fall back to
// one-shot dispatch. Like the engines it wraps, a Runner is
// single-caller, and results alias pooled state valid until the next Run.
type Runner struct {
	spec AlgoSpec
	g    *graph.CSR
	opt  core.Options
	ce   core.Backend
	be   *beamer.Engine
}

// NewRunner builds a Runner for the spec over g. Options.Reorder is
// honored by the core family only (the engine relabels internally and
// maps results back to original ids); the Baseline1/Baseline2 and
// direction-optimizing runtimes have no engine relabeling layer and
// traverse the graph as given. Options.Shards routes the core family
// through core.NewBackend: 0/1 is the classic single engine, more gets
// the sharded owner-compute runtime (which rejects Reorder).
// Options.Hybrid enables direction-optimizing levels for the parallel
// core variants; the serial baseline drops it (and the non-core
// runtimes never see core's option struct semantics for it).
func (a AlgoSpec) NewRunner(g *graph.CSR, opt core.Options) (*Runner, error) {
	r := &Runner{spec: a, g: g, opt: opt}
	switch a.fam {
	case familyCore:
		if a.algo == core.Serial {
			// Same parallel-only-knob convention as AlgoSpec.Run.
			opt.Hybrid = false
		}
		e, err := core.NewBackend(g, a.algo, opt)
		if err != nil {
			return nil, err
		}
		r.ce = e
	case familyBeamer:
		e, err := beamer.NewEngine(g, beamer.Options{Options: opt})
		if err != nil {
			return nil, err
		}
		r.be = e
	}
	return r, nil
}

// Run executes one search from src on the pooled state.
func (r *Runner) Run(src int32) (*core.Result, error) {
	switch {
	case r.ce != nil:
		return r.ce.Run(src)
	case r.be != nil:
		return r.be.Run(src)
	default:
		return r.spec.Run(r.g, src, r.opt)
	}
}

// RunGoal executes one goal-directed search on the pooled state: the
// run stops at the level barrier that settles goal (target committed or
// depth bound reached) and the partial Result is exact for every closed
// level. Core family only — see SupportsGoals.
func (r *Runner) RunGoal(ctx context.Context, src int32, goal core.Goal) (*core.Result, error) {
	if r.ce == nil {
		return nil, fmt.Errorf("harness: %s does not support goal-directed termination", r.spec.Name)
	}
	return r.ce.RunGoal(ctx, src, goal)
}

// Reseed re-derives the algorithm's RNG streams from seed, matching
// what a fresh run with Options.Seed = seed would use.
func (r *Runner) Reseed(seed uint64) {
	r.opt.Seed = seed
	if r.ce != nil {
		r.ce.Reseed(seed)
	}
}

// Close releases the runner's engine (persistent workers, if any).
func (r *Runner) Close() {
	if r.ce != nil {
		r.ce.Close()
	}
}

// Shape returns the cost shape the model should assume.
func (a AlgoSpec) Shape() costmodel.Shape {
	switch a.fam {
	case familyCore:
		return costmodel.ShapeOf(a.algo)
	case familyBaseline1:
		return costmodel.ShapeBag
	default:
		return costmodel.ShapeNone
	}
}

// IsSerial reports whether the spec is the serial baseline (always run
// with one worker regardless of the experiment's p).
func (a AlgoSpec) IsSerial() bool {
	return a.fam == familyCore && a.algo == core.Serial
}

// SupportsGoals reports whether the spec's runtime honors goal-directed
// early termination (core.Options.Target / MaxDepth): the core family
// does, serial baseline included; the Baseline1/Baseline2 and
// direction-optimizing extension runtimes have no goal machinery and
// would silently run to exhaustion.
func (a AlgoSpec) SupportsGoals() bool {
	return a.fam == familyCore
}
