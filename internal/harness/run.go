package harness

import (
	"fmt"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/graph"
	"optibfs/internal/rng"
	"optibfs/internal/stats"
)

// Config parameterizes one experiment run.
type Config struct {
	// Machine is the modeled target (Table III); its core count is the
	// default worker count.
	Machine costmodel.Machine
	// Workers overrides the worker count (0 = Machine.Cores).
	Workers int
	// Sources is how many random non-isolated sources to average over
	// (the paper used 1000; scaled runs default lower).
	Sources int
	// ScaleDiv divides the paper's graph sizes (1 = full scale).
	ScaleDiv int
	// Seed drives source sampling and the algorithms' RNGs.
	Seed uint64
	// Opt is the base algorithm options (Workers/Seed are overridden).
	Opt core.Options
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Machine.Cores == 0 {
		c.Machine = costmodel.Lonestar
	}
	if c.Workers <= 0 {
		c.Workers = c.Machine.Cores
	}
	if c.Sources <= 0 {
		c.Sources = 8
	}
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 64
	}
	if c.Seed == 0 {
		c.Seed = 0x0b5f5
	}
	return c
}

// PickSources samples `count` random sources with non-zero out-degree
// (the paper: "1000 random non-zero degree source vertices"). If the
// graph has none, vertex 0 is used.
func PickSources(g *graph.CSR, count int, seed uint64) []int32 {
	r := rng.NewXoshiro256(seed)
	n := g.NumVertices()
	out := make([]int32, 0, count)
	for tries := 0; len(out) < count && tries < count*100; tries++ {
		v := r.Int32n(n)
		if g.OutDegree(v) > 0 {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// Cell is one (algorithm, graph) measurement averaged over sources.
type Cell struct {
	Algo AlgoSpec

	// MeasuredMS is mean wall-clock per source on this host.
	MeasuredMS float64
	// ModeledMS is the cost-model mean per source for Config.Machine.
	ModeledMS float64
	// ModeledTEPS is edges traversed / modeled seconds (Figure 3).
	ModeledTEPS float64
	// Counters aggregates all sources' runs.
	Counters stats.Counters
	// Levels / Reached / Duplicates are per-source means.
	Levels     float64
	Reached    float64
	Duplicates float64
	// Runs is the number of source runs aggregated.
	Runs int
}

// RunCell measures algo on g over the configured sources.
func RunCell(g *graph.CSR, algo AlgoSpec, cfg Config) (Cell, error) {
	cfg = cfg.WithDefaults()
	sources := PickSources(g, cfg.Sources, cfg.Seed^rng.Mix64(uint64(len(algo.Name))))
	cell := Cell{Algo: algo}
	opt := cfg.Opt
	opt.Workers = cfg.Workers
	if algo.IsSerial() {
		opt.Workers = 1
	}
	shape := algo.Shape()
	// One runner per cell: all sources share pooled per-run state, so
	// the measured mean excludes the allocation/zeroing cost the
	// pre-engine harness paid on every source.
	runner, err := algo.NewRunner(g, opt)
	if err != nil {
		return cell, fmt.Errorf("harness: %s: %w", algo.Name, err)
	}
	defer runner.Close()
	var measured, modeled, teps float64
	for i, src := range sources {
		runner.Reseed(cfg.Seed + uint64(i)*0x9e37 + 1)
		start := time.Now()
		res, err := runner.Run(src)
		if err != nil {
			return cell, fmt.Errorf("harness: %s on source %d: %w", algo.Name, src, err)
		}
		elapsed := time.Since(start).Seconds()
		model := costmodel.Modeled(cfg.Machine, shape, res)
		measured += elapsed
		modeled += model
		teps += stats.TEPS(res.EdgesTraversed, model)
		cell.Counters.Add(&res.Counters)
		cell.Levels += float64(res.Levels)
		cell.Reached += float64(res.Reached)
		cell.Duplicates += float64(res.Duplicates())
		cell.Runs++
	}
	k := float64(cell.Runs)
	cell.MeasuredMS = measured / k * 1e3
	cell.ModeledMS = modeled / k * 1e3
	cell.ModeledTEPS = teps / k
	cell.Levels /= k
	cell.Reached /= k
	cell.Duplicates /= k
	return cell, nil
}
