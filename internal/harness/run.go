package harness

import (
	"fmt"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/graph"
	"optibfs/internal/obs"
	"optibfs/internal/rng"
	"optibfs/internal/stats"
)

// Config parameterizes one experiment run.
type Config struct {
	// Machine is the modeled target (Table III); its core count is the
	// default worker count.
	Machine costmodel.Machine
	// Workers overrides the worker count (0 = Machine.Cores).
	Workers int
	// Sources is how many random non-isolated sources to average over
	// (the paper used 1000; scaled runs default lower).
	Sources int
	// ScaleDiv divides the paper's graph sizes (1 = full scale).
	ScaleDiv int
	// Seed drives source sampling and the algorithms' RNGs.
	Seed uint64
	// Opt is the base algorithm options (Workers/Seed are overridden).
	Opt core.Options
	// Registry, when non-nil, receives per-run metrics as cells execute:
	// optibfs_runs_total, optibfs_run_seconds / optibfs_modeled_seconds
	// histograms, and every stats.Counters field as
	// optibfs_<field>_total, all labeled {algo=...}. Publishing happens
	// at run boundaries only, never inside the measured region.
	Registry *obs.Registry
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Machine.Cores == 0 {
		c.Machine = costmodel.Lonestar
	}
	if c.Workers <= 0 {
		c.Workers = c.Machine.Cores
	}
	if c.Sources <= 0 {
		c.Sources = 8
	}
	if c.ScaleDiv <= 0 {
		c.ScaleDiv = 64
	}
	if c.Seed == 0 {
		c.Seed = 0x0b5f5
	}
	return c
}

// PickSources samples `count` distinct random sources with non-zero
// out-degree (the paper: "1000 random non-zero degree source
// vertices"). Sampling rejects duplicates, so a cell never measures
// the same source twice and silently weights it double. If rejection
// sampling cannot fill the quota — a graph with fewer non-isolated
// vertices than count — a deterministic scan collects every remaining
// distinct candidate and the result is simply shorter than count. A
// graph with no non-isolated vertices at all falls back to vertex 0.
func PickSources(g *graph.CSR, count int, seed uint64) []int32 {
	r := rng.NewXoshiro256(seed)
	n := g.NumVertices()
	out := make([]int32, 0, count)
	seen := make(map[int32]struct{}, count)
	for tries := 0; len(out) < count && tries < count*100; tries++ {
		v := r.Int32n(n)
		if _, dup := seen[v]; dup || g.OutDegree(v) == 0 {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	for v := int32(0); v < n && len(out) < count; v++ {
		if _, dup := seen[v]; dup || g.OutDegree(v) == 0 {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	if len(out) == 0 {
		out = append(out, 0)
	}
	return out
}

// Cell is one (algorithm, graph) measurement averaged over sources.
type Cell struct {
	Algo AlgoSpec

	// MeasuredMS is mean wall-clock per source on this host.
	MeasuredMS float64
	// MeasuredTEPS is total edges traversed divided by total wall-clock
	// seconds across all sources — the same harmonic-mean convention as
	// ModeledTEPS, but on this host's real clock (the hybrid-vs-wrapper
	// comparison is a measured claim, not a modeled one).
	MeasuredTEPS float64
	// ModeledMS is the cost-model mean per source for Config.Machine.
	ModeledMS float64
	// ModeledTEPS is total edges traversed divided by total modeled
	// seconds across all sources (Figure 3) — the Graph500 convention,
	// equivalent to the harmonic mean of per-source rates weighted by
	// edges. It is NOT the arithmetic mean of per-source TEPS, which
	// overweights fast runs on small BFS trees.
	ModeledTEPS float64
	// Counters aggregates all sources' runs.
	Counters stats.Counters
	// Levels / Reached / Duplicates are per-source means.
	Levels     float64
	Reached    float64
	Duplicates float64
	// Runs is the number of source runs aggregated.
	Runs int
}

// RunCell measures algo on g over the configured sources.
func RunCell(g *graph.CSR, algo AlgoSpec, cfg Config) (Cell, error) {
	cfg = cfg.WithDefaults()
	sources := PickSources(g, cfg.Sources, cfg.Seed^rng.Mix64(uint64(len(algo.Name))))
	cell := Cell{Algo: algo}
	opt := cfg.Opt
	opt.Workers = cfg.Workers
	if algo.IsSerial() {
		opt.Workers = 1
	}
	shape := algo.Shape()
	// One runner per cell: all sources share pooled per-run state, so
	// the measured mean excludes the allocation/zeroing cost the
	// pre-engine harness paid on every source.
	runner, err := algo.NewRunner(g, opt)
	if err != nil {
		return cell, fmt.Errorf("harness: %s: %w", algo.Name, err)
	}
	defer runner.Close()
	pub := newCellPublisher(cfg.Registry, algo.Name)
	var measured, modeled float64
	var edges int64
	for i, src := range sources {
		runner.Reseed(cfg.Seed + uint64(i)*0x9e37 + 1)
		start := time.Now()
		res, err := runner.Run(src)
		if err != nil {
			return cell, fmt.Errorf("harness: %s on source %d: %w", algo.Name, src, err)
		}
		elapsed := time.Since(start).Seconds()
		model := costmodel.Modeled(cfg.Machine, shape, res)
		measured += elapsed
		modeled += model
		edges += res.EdgesTraversed
		cell.Counters.Add(&res.Counters)
		cell.Levels += float64(res.Levels)
		cell.Reached += float64(res.Reached)
		cell.Duplicates += float64(res.Duplicates())
		cell.Runs++
		pub.run(res, elapsed, model)
	}
	k := float64(cell.Runs)
	cell.MeasuredMS = measured / k * 1e3
	cell.ModeledMS = modeled / k * 1e3
	// Figure 3's aggregate rate: total edges over total modeled time.
	// Averaging per-source TEPS instead would let cheap sources (tiny
	// BFS trees with high instantaneous rates) dominate the figure.
	cell.ModeledTEPS = stats.TEPS(edges, modeled)
	cell.MeasuredTEPS = stats.TEPS(edges, measured)
	pub.cell(&cell)
	cell.Levels /= k
	cell.Reached /= k
	cell.Duplicates /= k
	return cell, nil
}
