package harness

import (
	"optibfs/internal/core"
	"optibfs/internal/obs"
)

// cellPublisher feeds one cell's runs into an obs.Registry. Metric
// handles are resolved once per cell, and every publish happens after
// the measured region (and after the engine's own level barriers), so
// wiring a registry into a Config perturbs neither the timings nor the
// lockfree protocols being measured. A nil registry makes every method
// a no-op.
type cellPublisher struct {
	reg     *obs.Registry
	algoL   obs.Label
	runs    *obs.Counter
	runSec  *obs.Histogram
	modSec  *obs.Histogram
	lastLvl *obs.Gauge
}

// newCellPublisher resolves the per-cell metric handles.
func newCellPublisher(reg *obs.Registry, algo string) *cellPublisher {
	if reg == nil {
		return nil
	}
	reg.SetHelp("optibfs_runs_total", "Completed BFS source runs.")
	reg.SetHelp("optibfs_run_seconds", "Measured wall time per BFS source run.")
	reg.SetHelp("optibfs_modeled_seconds", "Cost-model time per BFS source run.")
	reg.SetHelp("optibfs_cell_modeled_teps", "Figure-3 aggregate TEPS of the last finished cell.")
	algoL := obs.L("algo", algo)
	return &cellPublisher{
		reg:     reg,
		algoL:   algoL,
		runs:    reg.Counter("optibfs_runs_total", algoL),
		runSec:  reg.Histogram("optibfs_run_seconds", nil, algoL),
		modSec:  reg.Histogram("optibfs_modeled_seconds", nil, algoL),
		lastLvl: reg.Gauge("optibfs_last_levels", algoL),
	}
}

// run publishes one source run.
func (p *cellPublisher) run(res *core.Result, elapsed, modeled float64) {
	if p == nil {
		return
	}
	p.runs.Inc()
	p.runSec.Observe(elapsed)
	p.modSec.Observe(modeled)
	p.lastLvl.Set(float64(res.Levels))
	obs.AddCounters(p.reg, "optibfs_", &res.Counters, p.algoL)
}

// cell publishes the finished cell's aggregate rate.
func (p *cellPublisher) cell(c *Cell) {
	if p == nil {
		return
	}
	p.reg.Gauge("optibfs_cell_modeled_teps", p.algoL).Set(c.ModeledTEPS)
}
