package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/graph"
	"optibfs/internal/stats"
)

// Table5 reproduces Table V: per-source running times (ms) of every
// algorithm on every suite graph for the configured machine.
// Both modeled (machine) and measured (this host) times are emitted;
// the modeled column is the Table V analogue (see DESIGN.md §5).
func Table5(w io.Writer, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		Title:   fmt.Sprintf("Table V — running times (modeled ms per source, %s, p=%d, scale 1/%d)", cfg.Machine.Name, cfg.Workers, cfg.ScaleDiv),
		Headers: append([]string{"algorithm"}, suiteNames()...),
		Notes: []string{
			"modeled ms from measured counters via internal/costmodel (this host cannot express multicore wall-clock)",
			fmt.Sprintf("averaged over %d random non-isolated sources per graph", cfg.Sources),
		},
	}
	cells := make(map[string][]string)
	for _, algo := range TableAlgos {
		cells[algo.Name] = []string{algo.Name}
	}
	for _, spec := range Suite {
		g, err := spec.Generate(cfg.ScaleDiv)
		if err != nil {
			return nil, err
		}
		for _, algo := range TableAlgos {
			cell, err := RunCell(g, algo, cfg)
			if err != nil {
				return nil, err
			}
			cells[algo.Name] = append(cells[algo.Name], fmtMS(cell.ModeledMS))
		}
	}
	for _, algo := range TableAlgos {
		t.AddRow(cells[algo.Name]...)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func suiteNames() []string {
	names := make([]string, len(Suite))
	for i, s := range Suite {
		names[i] = s.Name
	}
	return names
}

// Fig2 reproduces Figure 2: scalability of the lockfree variants on
// the Wikipedia (scale-free) graph as worker count grows to the
// machine's core count. Emits modeled ms and speedup per p.
func Fig2(w io.Writer, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	spec, err := SpecByName("wikipedia")
	if err != nil {
		return nil, err
	}
	g, err := spec.Generate(cfg.ScaleDiv)
	if err != nil {
		return nil, err
	}
	ps := workerSweep(cfg.Machine.Cores)
	headers := []string{"algorithm"}
	for _, p := range ps {
		headers = append(headers, fmt.Sprintf("p=%d", p))
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 2 — scalability on wikipedia (modeled ms, %s, scale 1/%d)", cfg.Machine.Name, cfg.ScaleDiv),
		Headers: headers,
		Notes:   []string{"second row per algorithm: speedup vs p=1"},
	}
	for _, algo := range LockfreeAlgos {
		times := make([]float64, 0, len(ps))
		for _, p := range ps {
			c := cfg
			c.Workers = p
			cell, err := RunCell(g, algo, c)
			if err != nil {
				return nil, err
			}
			times = append(times, cell.ModeledMS)
		}
		row := []string{algo.Name}
		speed := []string{algo.Name + " (speedup)"}
		for _, ms := range times {
			row = append(row, fmtMS(ms))
			speed = append(speed, fmt.Sprintf("%.2fx", times[0]/ms))
		}
		t.AddRow(row...)
		t.AddRow(speed...)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// workerSweep returns the p values for a scalability sweep up to cores.
func workerSweep(cores int) []int {
	ps := []int{1, 2, 4}
	for p := 8; p < cores; p += 4 {
		ps = append(ps, p)
	}
	out := ps[:0]
	for _, p := range ps {
		if p < cores {
			out = append(out, p)
		}
	}
	return append(out, cores)
}

// Fig3 reproduces Figure 3: TEPS (traversed edges per modeled second)
// of every algorithm on the real-world suite graphs.
func Fig3(w io.Writer, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	realWorld := []string{"cage15", "cage14", "freescale", "wikipedia", "kkt-power"}
	t := &Table{
		Title:   fmt.Sprintf("Figure 3 — TEPS on real-world graphs (modeled, %s, p=%d, scale 1/%d)", cfg.Machine.Name, cfg.Workers, cfg.ScaleDiv),
		Headers: append([]string{"algorithm"}, realWorld...),
	}
	rows := make(map[string][]string)
	for _, algo := range TableAlgos {
		rows[algo.Name] = []string{algo.Name}
	}
	for _, name := range realWorld {
		spec, err := SpecByName(name)
		if err != nil {
			return nil, err
		}
		g, err := spec.Generate(cfg.ScaleDiv)
		if err != nil {
			return nil, err
		}
		for _, algo := range TableAlgos {
			cell, err := RunCell(g, algo, cfg)
			if err != nil {
				return nil, err
			}
			rows[algo.Name] = append(rows[algo.Name], fmtTEPS(cell.ModeledTEPS))
		}
	}
	for _, algo := range TableAlgos {
		t.AddRow(rows[algo.Name]...)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table6 reproduces Table VI: steal-attempt statistics of BFS_WS vs
// BFS_WSL on the Wikipedia graph, averaged over `Reps` independent
// repetitions of Sources runs.
func Table6(w io.Writer, cfg Config, reps int) (*Table, error) {
	cfg = cfg.WithDefaults()
	if reps <= 0 {
		reps = 5
	}
	spec, err := SpecByName("wikipedia")
	if err != nil {
		return nil, err
	}
	g, err := spec.Generate(cfg.ScaleDiv)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Table VI — steal statistics on wikipedia (%s, p=%d, %d sources x %d reps)",
			cfg.Machine.Name, cfg.Workers, cfg.Sources, reps),
		Headers: []string{"program", "modeled-ms", "attempts", "victim-locked", "victim-idle", "too-small", "stale", "invalid", "failed-total", "successful"},
	}
	for _, algo := range []AlgoSpec{
		{Name: string(core.BFSWS), fam: familyCore, algo: core.BFSWS},
		{Name: string(core.BFSWSL), fam: familyCore, algo: core.BFSWSL},
	} {
		var agg stats.Counters
		var modeled float64
		runs := 0
		for rep := 0; rep < reps; rep++ {
			c := cfg
			c.Seed = cfg.Seed + uint64(rep)*0x1234567
			cell, err := RunCell(g, algo, c)
			if err != nil {
				return nil, err
			}
			agg.Add(&cell.Counters)
			modeled += cell.ModeledMS
			runs += cell.Runs
		}
		attempts := agg.StealAttempts
		na := func(v int64, lockfreeOnly, lockedOnly bool) string {
			isLockfree := algo.algo.Lockfree()
			if (lockfreeOnly && !isLockfree) || (lockedOnly && isLockfree) {
				return "N/A"
			}
			return fmt.Sprintf("%s (%s)", fmtCount(v), fmtPct(v, attempts))
		}
		t.AddRow(
			algo.Name,
			fmtMS(modeled/float64(reps)),
			fmtCount(attempts)+" (100%)",
			na(agg.StealVictimLocked, false, true),
			fmt.Sprintf("%s (%s)", fmtCount(agg.StealVictimIdle), fmtPct(agg.StealVictimIdle, attempts)),
			fmt.Sprintf("%s (%s)", fmtCount(agg.StealTooSmall), fmtPct(agg.StealTooSmall, attempts)),
			na(agg.StealStale, true, false),
			na(agg.StealInvalid, true, false),
			fmt.Sprintf("%s (%s)", fmtCount(agg.FailedSteals()), fmtPct(agg.FailedSteals(), attempts)),
			fmt.Sprintf("%s (%s)", fmtCount(agg.StealSuccess), fmtPct(agg.StealSuccess, attempts)),
		)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Extensions benchmarks this repository's implementations of the
// paper's future-work sketches (BFS_EL edge partitioning,
// direction-optimizing traversal) against the paper's best lockfree
// variants on the full suite. Not a paper artifact — an extension.
func Extensions(w io.Writer, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	algos := []AlgoSpec{coreSpec(core.BFSCL), coreSpec(core.BFSWSL)}
	algos = append(algos, ExtensionAlgos...)
	t := &Table{
		Title:   fmt.Sprintf("Extensions — future-work variants vs the paper's lockfree BFS (modeled ms, %s, p=%d, scale 1/%d)", cfg.Machine.Name, cfg.Workers, cfg.ScaleDiv),
		Headers: append([]string{"algorithm"}, suiteNames()...),
		Notes:   []string{"BFS_EL and DirectionOptimizing implement the paper's §IV-D / §II sketches; not part of Table V"},
	}
	rows := make(map[string][]string)
	for _, algo := range algos {
		rows[algo.Name] = []string{algo.Name}
	}
	for _, spec := range Suite {
		g, err := spec.Generate(cfg.ScaleDiv)
		if err != nil {
			return nil, err
		}
		for _, algo := range algos {
			cell, err := RunCell(g, algo, cfg)
			if err != nil {
				return nil, err
			}
			rows[algo.Name] = append(rows[algo.Name], fmtMS(cell.ModeledMS))
		}
	}
	for _, algo := range algos {
		t.AddRow(rows[algo.Name]...)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// HybridTable compares the in-core direction-optimizing mode (PR 8)
// against plain BFS_WSL and the standalone beamer wrapper on every
// suite graph: measured wall-clock MTEPS on this host (harmonic-mean
// convention), plus the hybrid's speedups over both. This is a
// measured experiment, not a modeled one — the cost model has no
// bottom-up shape, and the claim under test ("the fused hybrid beats
// the wrapper everywhere") is about real allocation, conversion, and
// scan costs.
//
// Measurement is paired: per graph, all variants share one source set
// and one warmed runner each, and every repetition times each
// variant's full source sweep back-to-back, alternating the order by
// repetition parity. Reported MTEPS are medians over repetitions, and
// the ratio rows are medians of the per-repetition time ratios.
// Host-frequency and GC drift over a run's lifetime moves adjacent
// blocks together, so paired ratios survive it; the naive
// one-contiguous-block-per-variant design this replaced could swing a
// ratio ±20% between invocations on a busy host.
func HybridTable(w io.Writer, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	variants := []struct {
		name   string
		algo   AlgoSpec
		hybrid bool
	}{
		{"BFS_WSL", coreSpec(core.BFSWSL), false},
		{"BFS_WSL+hybrid", coreSpec(core.BFSWSL), true},
		{"DirectionOptimizing(wrapper)", AlgoSpec{Name: "DirectionOptimizing", fam: familyBeamer}, false},
	}
	// Odd so every median is an actual observation, high enough that
	// one descheduled repetition cannot reach the middle ranks.
	const reps = 9
	t := &Table{
		Title: fmt.Sprintf("Hybrid — in-core direction optimization vs wrapper and plain BFS_WSL (measured MTEPS, p=%d, scale 1/%d)",
			cfg.Workers, cfg.ScaleDiv),
		Headers: append([]string{"algorithm"}, suiteNames()...),
		Notes: []string{
			"measured wall-clock on this host, harmonic-mean TEPS across sources",
			fmt.Sprintf("paired runs: each of %d repetitions times every variant back-to-back (order alternating); MTEPS are medians over repetitions", reps),
			"hybrid/wrapper and hybrid/plain are medians of per-repetition time ratios (>1 = in-core hybrid faster), so they may differ slightly from the MTEPS quotients",
		},
	}
	rows := make([][]string, len(variants)+2)
	for i, v := range variants {
		rows[i] = []string{v.name}
	}
	rows[len(variants)] = []string{"hybrid/wrapper"}
	rows[len(variants)+1] = []string{"hybrid/plain"}
	for _, spec := range Suite {
		g, err := spec.Generate(cfg.ScaleDiv)
		if err != nil {
			return nil, err
		}
		// One shared source set: paired ratios are only meaningful if
		// every variant sweeps the identical searches.
		sources := PickSources(g, cfg.Sources, cfg.Seed)
		runners := make([]*Runner, len(variants))
		edges := make([]int64, len(variants))
		for i, v := range variants {
			opt := cfg.Opt
			opt.Workers = cfg.Workers
			opt.Hybrid = v.hybrid
			r, err := v.algo.NewRunner(g, opt)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", v.name, spec.Name, err)
			}
			defer r.Close()
			runners[i] = r
			// Warm pass: faults pooled state in, captures the sweep's
			// edge total for the TEPS denominators, and feeds the
			// registry exactly like RunCell does (publishing stays
			// outside every timed block below).
			shape := v.algo.Shape()
			pub := newCellPublisher(cfg.Registry, v.name)
			for k, src := range sources {
				r.Reseed(cfg.Seed + uint64(k)*0x9e37 + 1)
				start := time.Now()
				res, err := r.Run(src)
				if err != nil {
					return nil, fmt.Errorf("%s on %s source %d: %w", v.name, spec.Name, src, err)
				}
				elapsed := time.Since(start).Seconds()
				edges[i] += res.EdgesTraversed
				pub.run(res, elapsed, costmodel.Modeled(cfg.Machine, shape, res))
			}
		}
		block := func(r *Runner) (float64, error) {
			start := time.Now()
			for k, src := range sources {
				r.Reseed(cfg.Seed + uint64(k)*0x9e37 + 1)
				if _, err := r.Run(src); err != nil {
					return 0, err
				}
			}
			return time.Since(start).Seconds(), nil
		}
		times := make([][]float64, len(variants))
		for rep := 0; rep < reps; rep++ {
			for j := range variants {
				i := j
				if rep%2 == 1 {
					i = len(variants) - 1 - j
				}
				sec, err := block(runners[i])
				if err != nil {
					return nil, fmt.Errorf("%s on %s: %w", variants[i].name, spec.Name, err)
				}
				times[i] = append(times[i], sec)
			}
		}
		ratio := func(num, den int) float64 {
			rs := make([]float64, reps)
			for rep := range rs {
				rs[rep] = times[num][rep] / times[den][rep]
			}
			return median(rs)
		}
		for i := range variants {
			rows[i] = append(rows[i], fmt.Sprintf("%.1f", float64(edges[i])/median(times[i])/1e6))
		}
		rows[len(variants)] = append(rows[len(variants)], fmt.Sprintf("%.2fx", ratio(2, 1)))
		rows[len(variants)+1] = append(rows[len(variants)+1], fmt.Sprintf("%.2fx", ratio(0, 1)))
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// GoalTable measures goal-directed traversal against the
// full-BFS-then-lookup baseline across the suite: per graph, one
// warmed BFS_WSL engine answers the same source set three ways —
// unbounded, s–t to a mid-depth target (the level barrier that settles
// the target terminates the run), and a 4-hop neighborhood bound. The
// targets come from a warm full sweep (the first vertex at half the
// source's explored depth), so every s–t query does real work instead
// of stopping at level one.
//
// Measurement is paired exactly like HybridTable: every repetition
// times each variant's full source sweep back-to-back in alternating
// order, latencies are medians over repetitions, and the speedup rows
// are medians of the per-repetition time ratios, which cancels
// host-frequency and GC drift. The edge-fraction row is the traversal
// work the goal runs actually did (from the warm sweeps), the
// mechanism behind the latency wins.
func GoalTable(w io.Writer, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	spec := coreSpec(core.BFSWSL)
	const reps = 9
	const hop = 4
	t := &Table{
		Title: fmt.Sprintf("Goal-directed traversal — s–t and depth-bounded vs full BFS (BFS_WSL, p=%d, scale 1/%d)",
			cfg.Workers, cfg.ScaleDiv),
		Headers: append([]string{"measurement"}, suiteNames()...),
		Notes: []string{
			"one warmed engine per graph; every query validated against the closed-level oracle contract in the warm pass",
			fmt.Sprintf("paired runs: each of %d repetitions times all three variants back-to-back (order alternating); latencies are medians over repetitions", reps),
			"speedup rows are medians of per-repetition time ratios (>1 = goal run faster), edge fraction is goal-run edges / full-run edges",
		},
	}
	rows := [][]string{
		{"full BFS (ms/query)"},
		{"s-t mid-depth (ms/query)"},
		{fmt.Sprintf("%d-hop (ms/query)", hop)},
		{"s-t speedup (paired)"},
		{fmt.Sprintf("%d-hop speedup (paired)", hop)},
		{"s-t edge fraction"},
	}
	ctx := context.Background()
	for _, gs := range Suite {
		g, err := gs.Generate(cfg.ScaleDiv)
		if err != nil {
			return nil, err
		}
		sources := PickSources(g, cfg.Sources, cfg.Seed)
		opt := cfg.Opt
		opt.Workers = cfg.Workers
		r, err := spec.NewRunner(g, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", gs.Name, err)
		}
		defer r.Close()

		// Warm pass: full sweep faults pooled state in, yields the edge
		// totals, and picks each source's mid-depth target.
		dsts := make([]int32, len(sources))
		var fullEdges, stEdges int64
		for i, src := range sources {
			r.Reseed(cfg.Seed + uint64(i)*0x9e37 + 1)
			res, err := r.Run(src)
			if err != nil {
				return nil, fmt.Errorf("%s source %d: %w", gs.Name, src, err)
			}
			fullEdges += res.EdgesTraversed
			depth := res.Levels / 2
			if depth < 1 {
				depth = 1
			}
			dsts[i] = src
			for v, d := range res.Dist {
				if d == depth {
					dsts[i] = int32(v)
					break
				}
			}
		}
		// Warm goal sweep: edge totals plus the correctness check — the
		// target must be settled exactly in the truncated result.
		for i, src := range sources {
			r.Reseed(cfg.Seed + uint64(i)*0x9e37 + 1)
			res, err := r.RunGoal(ctx, src, core.GoalTo(dsts[i]))
			if err != nil {
				return nil, fmt.Errorf("%s s-t source %d: %w", gs.Name, src, err)
			}
			stEdges += res.EdgesTraversed
			if res.Dist[dsts[i]] == graph.Unreached {
				return nil, fmt.Errorf("%s: s-t run from %d left target %d unsettled", gs.Name, src, dsts[i])
			}
		}

		block := func(goal func(i int) core.Goal) func() (float64, error) {
			return func() (float64, error) {
				start := time.Now()
				for i, src := range sources {
					r.Reseed(cfg.Seed + uint64(i)*0x9e37 + 1)
					var err error
					if goal == nil {
						_, err = r.Run(src)
					} else {
						_, err = r.RunGoal(ctx, src, goal(i))
					}
					if err != nil {
						return 0, err
					}
				}
				return time.Since(start).Seconds(), nil
			}
		}
		blocks := []func() (float64, error){
			block(nil),
			block(func(i int) core.Goal { return core.GoalTo(dsts[i]) }),
			block(func(int) core.Goal { return core.Goal{MaxDepth: hop} }),
		}
		times := make([][]float64, len(blocks))
		for rep := 0; rep < reps; rep++ {
			for j := range blocks {
				i := j
				if rep%2 == 1 {
					i = len(blocks) - 1 - j
				}
				sec, err := blocks[i]()
				if err != nil {
					return nil, fmt.Errorf("%s: %w", gs.Name, err)
				}
				times[i] = append(times[i], sec)
			}
		}
		speedup := func(den int) float64 {
			rs := make([]float64, reps)
			for rep := range rs {
				rs[rep] = times[0][rep] / times[den][rep]
			}
			return median(rs)
		}
		perQueryMS := func(i int) float64 {
			return median(times[i]) / float64(len(sources)) * 1e3
		}
		rows[0] = append(rows[0], fmt.Sprintf("%.3f", perQueryMS(0)))
		rows[1] = append(rows[1], fmt.Sprintf("%.3f", perQueryMS(1)))
		rows[2] = append(rows[2], fmt.Sprintf("%.3f", perQueryMS(2)))
		rows[3] = append(rows[3], fmt.Sprintf("%.2fx", speedup(1)))
		rows[4] = append(rows[4], fmt.Sprintf("%.2fx", speedup(2)))
		rows[5] = append(rows[5], fmt.Sprintf("%.2f", float64(stEdges)/float64(fullEdges)))
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// median returns the middle order statistic (mean of the two middle
// ones for even lengths) without mutating its argument.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	}
	n := len(s)
	return (s[n/2-1] + s[n/2]) / 2
}

// GraphsTable reproduces Table IV: the generated suite with its actual
// (scaled) sizes and BFS-explored diameters.
func GraphsTable(w io.Writer, cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		Title:   fmt.Sprintf("Table IV — graph suite (generated stand-ins, scale 1/%d)", cfg.ScaleDiv),
		Headers: []string{"graph", "n", "m", "avg-deg", "max-deg", "bfs-diameter", "paper-diameter", "description"},
	}
	for _, spec := range Suite {
		g, err := spec.Generate(cfg.ScaleDiv)
		if err != nil {
			return nil, err
		}
		src := PickSources(g, 1, cfg.Seed)[0]
		dist := graph.ReferenceBFS(g, src)
		maxDeg, _ := g.MaxDegree()
		t.AddRow(
			spec.Name,
			fmtCount(int64(g.NumVertices())),
			fmtCount(g.NumEdges()),
			fmt.Sprintf("%.1f", g.AvgDegree()),
			fmtCount(maxDeg),
			fmt.Sprintf("%d", graph.Eccentricity(dist)),
			fmt.Sprintf("%d", spec.Diameter),
			spec.Description,
		)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MachinesTable reproduces Table III: the modeled machine profiles.
func MachinesTable(w io.Writer) (*Table, error) {
	t := &Table{
		Title:   "Table III — simulated machine profiles (see internal/costmodel)",
		Headers: []string{"machine", "cores", "t-edge", "t-lock", "t-wait/worker", "t-steal", "t-rmw", "t-barrier"},
	}
	for _, m := range []costmodel.Machine{costmodel.Lonestar, costmodel.Trestles} {
		t.AddRow(
			m.Name,
			fmt.Sprintf("%d", m.Cores),
			fmt.Sprintf("%.2gns", m.TEdge*1e9),
			fmt.Sprintf("%.2gns", m.TLock*1e9),
			fmt.Sprintf("%.2gns", m.TWait*1e9),
			fmt.Sprintf("%.2gns", m.TSteal*1e9),
			fmt.Sprintf("%.2gns", m.TRMW*1e9),
			fmt.Sprintf("%.2gus", (m.TBarrierBase+float64(m.Cores)*m.TBarrierPerCore)*1e6),
		)
	}
	if w != nil {
		if err := t.Render(w); err != nil {
			return nil, err
		}
	}
	return t, nil
}
