// Package harness assembles graphs, algorithms, and measurement into
// the paper's experiments: Table V(a,b) running times, Figure 2
// scalability, Figure 3 TEPS, and Table VI steal statistics, plus the
// descriptive Tables III (machines) and IV (graph suite).
package harness

import (
	"fmt"

	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

// Kind selects the generator class a suite graph uses.
type Kind string

const (
	// KindLayered is the mesh/circuit stand-in: near-uniform degrees
	// with a controlled number of BFS levels.
	KindLayered Kind = "layered"
	// KindPowerLaw is the scale-free (Chung–Lu) stand-in.
	KindPowerLaw Kind = "powerlaw"
	// KindRMAT is the Graph500 RMAT generator with the paper's
	// parameters.
	KindRMAT Kind = "rmat"
)

// GraphSpec describes one graph of the paper's Table IV suite with its
// full-scale parameters; Generate scales it down by an integer divisor.
type GraphSpec struct {
	Name        string
	Description string
	N           int32 // full-scale vertices (paper Table IV)
	M           int64 // full-scale edges
	Diameter    int32 // BFS-explored diameter reported by the paper
	Kind        Kind
	Gamma       float64 // power-law exponent for KindPowerLaw
	Seed        uint64
}

// Suite is the paper's Table IV graph suite, as synthetic stand-ins
// (see DESIGN.md §5 for the substitution rationale).
var Suite = []GraphSpec{
	{
		Name:        "cage15",
		Description: "DNA electrophoresis, 15 monomers in polymer (mesh-like stand-in)",
		N:           5_200_000, M: 99_200_000, Diameter: 53,
		Kind: KindLayered, Seed: 1501,
	},
	{
		Name:        "cage14",
		Description: "DNA electrophoresis, 14 monomers in polymer (mesh-like stand-in)",
		N:           1_500_000, M: 27_100_000, Diameter: 42,
		Kind: KindLayered, Seed: 1401,
	},
	{
		Name:        "freescale",
		Description: "Large circuit, Freescale Semiconductor (long-diameter stand-in)",
		N:           3_400_000, M: 18_900_000, Diameter: 141,
		Kind: KindLayered, Seed: 3301,
	},
	{
		Name:        "wikipedia",
		Description: "Gleich/Wikipedia-20070206 (scale-free stand-in)",
		N:           3_600_000, M: 45_000_000, Diameter: 14,
		Kind: KindPowerLaw, Gamma: 2.2, Seed: 7701,
	},
	{
		Name:        "kkt-power",
		Description: "Optimal power flow, nonlinear optimization KKT (stand-in)",
		N:           2_000_000, M: 8_100_000, Diameter: 11,
		Kind: KindLayered, Seed: 1101,
	},
	{
		Name:        "rmat-10M-100M",
		Description: "Graph500 RMAT (a=.45,b=.15,c=.15)",
		N:           10_000_000, M: 100_000_000, Diameter: 12,
		Kind: KindRMAT, Seed: 5001,
	},
	{
		Name:        "rmat-10M-1B",
		Description: "Graph500 RMAT, densest graph in the suite",
		N:           10_000_000, M: 1_000_000_000, Diameter: 5,
		Kind: KindRMAT, Seed: 5002,
	},
}

// SpecByName finds a suite spec.
func SpecByName(name string) (GraphSpec, error) {
	for _, s := range Suite {
		if s.Name == name {
			return s, nil
		}
	}
	return GraphSpec{}, fmt.Errorf("harness: unknown suite graph %q", name)
}

// Generate builds the spec's graph scaled down by scaleDiv (1 = the
// paper's full size). Degree structure and level structure are
// preserved; only the vertex/edge counts shrink.
func (s GraphSpec) Generate(scaleDiv int) (*graph.CSR, error) {
	if scaleDiv < 1 {
		return nil, fmt.Errorf("harness: scale divisor %d < 1", scaleDiv)
	}
	n := s.N / int32(scaleDiv)
	m := s.M / int64(scaleDiv)
	if n < 2 {
		n = 2
	}
	if m < int64(n) {
		m = int64(n)
	}
	switch s.Kind {
	case KindLayered:
		layers := s.Diameter
		if layers > n {
			layers = n
		}
		return gen.LayeredRandom(n, m, layers, s.Seed, gen.Options{})
	case KindPowerLaw:
		return gen.ChungLu(n, m, s.Gamma, s.Seed, gen.Options{})
	case KindRMAT:
		if m >= 1<<26 {
			// The two-pass builder halves peak memory, which is what
			// makes the billion-edge graph generable at -scale 1.
			return gen.RMATDirect(n, m, 0.45, 0.15, 0.15, s.Seed)
		}
		return gen.Graph500RMAT(n, m, s.Seed, gen.Options{})
	default:
		return nil, fmt.Errorf("harness: unknown graph kind %q", s.Kind)
	}
}
