package harness

import (
	"bytes"
	"strings"
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/graph"
)

// tinyConfig keeps harness tests fast: small graphs, few sources.
func tinyConfig() Config {
	return Config{
		Machine:  costmodel.Lonestar,
		Workers:  4,
		Sources:  2,
		ScaleDiv: 2048,
		Seed:     7,
	}
}

func TestSuiteSpecsGenerate(t *testing.T) {
	for _, spec := range Suite {
		g, err := spec.Generate(2048)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if g.NumVertices() < 2 {
			t.Fatalf("%s: n=%d", spec.Name, g.NumVertices())
		}
	}
}

func TestSuiteScalePreservesDegree(t *testing.T) {
	spec, err := SpecByName("wikipedia")
	if err != nil {
		t.Fatal(err)
	}
	small, err := spec.Generate(4096)
	if err != nil {
		t.Fatal(err)
	}
	fullAvg := float64(spec.M) / float64(spec.N)
	if got := small.AvgDegree(); got < fullAvg*0.7 || got > fullAvg*1.3 {
		t.Fatalf("scaled avg degree %.2f far from paper %.2f", got, fullAvg)
	}
}

func TestSpecByNameUnknown(t *testing.T) {
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("accepted unknown graph")
	}
	if _, err := (GraphSpec{Kind: "weird", N: 10, M: 10}).Generate(1); err == nil {
		t.Fatal("accepted unknown kind")
	}
	if _, err := (Suite[0]).Generate(0); err == nil {
		t.Fatal("accepted scale divisor 0")
	}
}

func TestAlgoByName(t *testing.T) {
	for _, a := range TableAlgos {
		got, err := AlgoByName(a.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != a.Name {
			t.Fatalf("resolved %q to %q", a.Name, got.Name)
		}
	}
	if _, err := AlgoByName("quantum-bfs"); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestAlgoSpecsRunEverywhere(t *testing.T) {
	spec, _ := SpecByName("kkt-power")
	g, err := spec.Generate(2048)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, algo := range TableAlgos {
		res, err := algo.Run(g, 0, core.Options{Workers: 4, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name, err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("%s: %v", algo.Name, err)
		}
	}
}

// TestAlgoSpecsShardedEverySuiteGraph validates the sharded backend
// against the serial oracle on every graph of the paper's Table IV
// suite (scaled down), at 2 and 4 shards. Distances must be exactly
// the oracle's on every graph — cross-shard forwarding may duplicate
// work but must never lose or corrupt a discovery.
func TestAlgoSpecsShardedEverySuiteGraph(t *testing.T) {
	algos := []string{"BFS_WL", "BFS_WSL"}
	for _, spec := range Suite {
		g, err := spec.Generate(2048)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		want := graph.ReferenceBFS(g, 0)
		for _, name := range algos {
			algo, err := AlgoByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{2, 4} {
				res, err := algo.Run(g, 0, core.Options{Workers: 4, Seed: 9, Shards: shards})
				if err != nil {
					t.Fatalf("%s/%s shards=%d: %v", spec.Name, name, shards, err)
				}
				if err := graph.EqualDistances(res.Dist, want); err != nil {
					t.Fatalf("%s/%s shards=%d: %v", spec.Name, name, shards, err)
				}
			}
		}
	}
}

// TestAlgoSpecsHybridEverySuiteGraph validates the in-core
// direction-optimizing mode against the serial oracle on every graph
// of the paper's Table IV suite (scaled down), across the classic and
// sharded backends and both reorder modes. The hybrid's bottom-up
// levels and frontier conversions must never lose or corrupt a
// discovery; sharded backends still reject relabeling, hybrid or not.
func TestAlgoSpecsHybridEverySuiteGraph(t *testing.T) {
	algos := []string{"BFS_WL", "BFS_WSL"}
	for _, spec := range Suite {
		g, err := spec.Generate(2048)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		want := graph.ReferenceBFS(g, 0)
		for _, name := range algos {
			algo, err := AlgoByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 4} {
				for _, reorder := range []core.ReorderMode{core.ReorderNone, core.ReorderDegree} {
					opt := core.Options{
						Workers: 4, Seed: 9, Hybrid: true,
						Shards: shards, Reorder: reorder,
					}
					res, err := algo.Run(g, 0, opt)
					if shards > 1 && reorder != core.ReorderNone {
						if err == nil {
							t.Fatalf("%s/%s shards=%d reorder=%s: sharded run accepted relabeling", spec.Name, name, shards, reorder)
						}
						continue
					}
					if err != nil {
						t.Fatalf("%s/%s shards=%d reorder=%s: %v", spec.Name, name, shards, reorder, err)
					}
					if err := graph.EqualDistances(res.Dist, want); err != nil {
						t.Fatalf("%s/%s shards=%d reorder=%s: %v", spec.Name, name, shards, reorder, err)
					}
					if got := res.Counters.TopDownLevels + res.Counters.BottomUpLevels; got != int64(res.Levels) {
						t.Fatalf("%s/%s shards=%d reorder=%s: direction levels %d != levels %d",
							spec.Name, name, shards, reorder, got, res.Levels)
					}
				}
			}
		}
	}
}

func TestExtensionAlgosRunAndResolve(t *testing.T) {
	spec, _ := SpecByName("kkt-power")
	g, err := spec.Generate(2048)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	for _, algo := range ExtensionAlgos {
		byName, err := AlgoByName(algo.Name)
		if err != nil {
			t.Fatalf("%s not resolvable: %v", algo.Name, err)
		}
		res, err := byName.Run(g, 0, core.Options{Workers: 4, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name, err)
		}
		if err := graph.EqualDistances(res.Dist, want); err != nil {
			t.Fatalf("%s: %v", algo.Name, err)
		}
		if algo.Shape() != byName.Shape() {
			t.Fatalf("%s: shape mismatch", algo.Name)
		}
	}
}

func TestPickSources(t *testing.T) {
	spec, _ := SpecByName("wikipedia")
	g, err := spec.Generate(4096)
	if err != nil {
		t.Fatal(err)
	}
	srcs := PickSources(g, 10, 99)
	if len(srcs) != 10 {
		t.Fatalf("got %d sources", len(srcs))
	}
	for _, s := range srcs {
		if g.OutDegree(s) == 0 {
			t.Fatalf("source %d has zero out-degree", s)
		}
	}
	// Deterministic for a given seed.
	srcs2 := PickSources(g, 10, 99)
	for i := range srcs {
		if srcs[i] != srcs2[i] {
			t.Fatal("source sampling not deterministic")
		}
	}
}

func TestPickSourcesDegenerate(t *testing.T) {
	g, err := graph.FromEdges(5, nil, graph.BuildOptions{}) // all isolated
	if err != nil {
		t.Fatal(err)
	}
	srcs := PickSources(g, 3, 1)
	if len(srcs) != 1 || srcs[0] != 0 {
		t.Fatalf("degenerate sampling returned %v", srcs)
	}
}

func TestRunCellBasics(t *testing.T) {
	spec, _ := SpecByName("cage14")
	g, err := spec.Generate(2048)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cell, err := RunCell(g, TableAlgos[2], cfg) // BFS_CL
	if err != nil {
		t.Fatal(err)
	}
	if cell.Runs != cfg.Sources {
		t.Fatalf("runs=%d", cell.Runs)
	}
	if cell.ModeledMS <= 0 || cell.MeasuredMS <= 0 {
		t.Fatalf("non-positive times: %+v", cell)
	}
	if cell.ModeledTEPS <= 0 {
		t.Fatalf("TEPS %g", cell.ModeledTEPS)
	}
	if cell.Reached <= 0 || cell.Levels <= 0 {
		t.Fatalf("cell stats: %+v", cell)
	}
}

func TestRunCellSerialForcesOneWorker(t *testing.T) {
	spec, _ := SpecByName("kkt-power")
	g, err := spec.Generate(4096)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := RunCell(g, TableAlgos[0], tinyConfig()) // sbfs
	if err != nil {
		t.Fatal(err)
	}
	if cell.Counters.StealAttempts != 0 || cell.Counters.LockAcquisitions != 0 {
		t.Fatalf("serial cell recorded parallel machinery: %+v", cell.Counters)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Headers: []string{"a", "b"},
		Notes:   []string{"hello"},
	}
	tab.AddRow("x", "yyy")
	tab.AddRow("longer") // short row padded
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T\n=", "a", "yyy", "longer", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tab.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "a,b\n") {
		t.Fatalf("csv header wrong: %q", csv.String())
	}
}

func TestCSVQuoting(t *testing.T) {
	tab := &Table{Headers: []string{"x"}}
	tab.AddRow(`va"l,ue`)
	var csv bytes.Buffer
	if err := tab.RenderCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), `"va""l,ue"`) {
		t.Fatalf("csv quoting wrong: %q", csv.String())
	}
}

func TestFormatters(t *testing.T) {
	if fmtMS(123.4) != "123" || fmtMS(12.34) != "12.34" || fmtMS(0.5) != "0.5000" {
		t.Fatalf("fmtMS: %q %q %q", fmtMS(123.4), fmtMS(12.34), fmtMS(0.5))
	}
	if fmtTEPS(2.5e9) != "2.50GTEPS" || fmtTEPS(3.1e6) != "3.1MTEPS" || fmtTEPS(10) != "10TEPS" {
		t.Fatalf("fmtTEPS wrong")
	}
	if fmtCount(1234567) != "1,234,567" || fmtCount(12) != "12" || fmtCount(1000) != "1,000" {
		t.Fatalf("fmtCount: %q %q %q", fmtCount(1234567), fmtCount(12), fmtCount(1000))
	}
	if fmtPct(1, 4) != "25.00%" || fmtPct(1, 0) != "0.00%" {
		t.Fatalf("fmtPct wrong")
	}
}

func TestWorkerSweep(t *testing.T) {
	ps := workerSweep(12)
	if ps[0] != 1 || ps[len(ps)-1] != 12 {
		t.Fatalf("sweep %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatalf("sweep not increasing: %v", ps)
		}
	}
	ps1 := workerSweep(1)
	if len(ps1) == 0 || ps1[len(ps1)-1] != 1 {
		t.Fatalf("sweep(1) = %v", ps1)
	}
}

func TestExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow")
	}
	cfg := tinyConfig()
	var buf bytes.Buffer

	tab, err := GraphsTable(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(Suite) {
		t.Fatalf("Table IV rows %d", len(tab.Rows))
	}

	if _, err := MachinesTable(&buf); err != nil {
		t.Fatal(err)
	}

	t5, err := Table5(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != len(TableAlgos) {
		t.Fatalf("Table V rows %d", len(t5.Rows))
	}
	if len(t5.Rows[0]) != len(Suite)+1 {
		t.Fatalf("Table V cols %d", len(t5.Rows[0]))
	}

	f2, err := Fig2(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Rows) != 2*len(LockfreeAlgos) {
		t.Fatalf("Fig2 rows %d", len(f2.Rows))
	}

	f3, err := Fig3(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Rows) != len(TableAlgos) {
		t.Fatalf("Fig3 rows %d", len(f3.Rows))
	}

	t6, err := Table6(&buf, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 2 {
		t.Fatalf("Table VI rows %d", len(t6.Rows))
	}

	ext, err := Extensions(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Rows) != 2+len(ExtensionAlgos) {
		t.Fatalf("Extensions rows %d", len(ext.Rows))
	}
	out := buf.String()
	if !strings.Contains(out, "BFS_WSL") || !strings.Contains(out, "N/A") {
		t.Fatalf("Table VI content unexpected:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Machine.Name != "Lonestar" || c.Workers != 12 || c.Sources != 8 || c.ScaleDiv != 64 || c.Seed == 0 {
		t.Fatalf("defaults: %+v", c)
	}
	c2 := Config{Workers: 3}.WithDefaults()
	if c2.Workers != 3 {
		t.Fatalf("override lost: %+v", c2)
	}
}

// TestRunnerReuseAllFamilies checks the Runner contract across every
// dispatch family: repeated Run calls on one runner (pooled for core
// and beamer, one-shot fallback for the baselines) all match the
// serial oracle, and Reseed between runs is accepted everywhere.
func TestRunnerReuseAllFamilies(t *testing.T) {
	gspec, _ := SpecByName("wikipedia")
	g, err := gspec.Generate(4096)
	if err != nil {
		t.Fatal(err)
	}
	want := graph.ReferenceBFS(g, 0)
	specs := append(append([]AlgoSpec{}, TableAlgos...), ExtensionAlgos...)
	for _, spec := range specs {
		runner, err := spec.NewRunner(g, core.Options{Workers: 4, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		for i := 0; i < 3; i++ {
			runner.Reseed(uint64(i) + 1)
			res, err := runner.Run(0)
			if err != nil {
				t.Fatalf("%s run %d: %v", spec.Name, i, err)
			}
			if err := graph.EqualDistances(res.Dist, want); err != nil {
				t.Fatalf("%s run %d: %v", spec.Name, i, err)
			}
		}
		runner.Close()
	}
}
