package harness

import (
	"math"
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/costmodel"
	"optibfs/internal/graph"
	"optibfs/internal/obs"
	"optibfs/internal/stats"
)

// tepsTestGraph builds a directed graph where exactly two vertices have
// non-zero out-degree, so a two-source cell deterministically measures
// both: vertex 0 is a 999-edge star hub (a big, cheap-per-edge run) and
// vertex 1000 reaches a single neighbor (a tiny run whose per-source
// TEPS is far below the hub's). The asymmetry is the point: the two
// aggregation conventions disagree materially on it.
func tepsTestGraph(t *testing.T) *graph.CSR {
	t.Helper()
	var edges []graph.Edge
	for v := int32(1); v <= 999; v++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: v})
	}
	edges = append(edges, graph.Edge{Src: 1000, Dst: 1001})
	g, err := graph.FromEdges(1002, edges, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRunCellTEPSAggregation is the Figure-3 regression test: a cell's
// ModeledTEPS must be total-edges over total-modeled-seconds, not the
// arithmetic mean of per-source TEPS. It recomputes both conventions
// from per-source ground truth (serial BFS is deterministic) and fails
// on the mean — which the harness shipped until this test existed.
func TestRunCellTEPSAggregation(t *testing.T) {
	g := tepsTestGraph(t)
	algo := TableAlgos[0] // sbfs: deterministic, cost model has no RNG terms
	if !algo.IsSerial() {
		t.Fatalf("TableAlgos[0] is %s, expected the serial baseline", algo.Name)
	}
	cfg := Config{Workers: 1, Sources: 2, Seed: 5}
	cell, err := RunCell(g, algo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Runs != 2 {
		t.Fatalf("cell ran %d sources, want 2 (hub and tiny component)", cell.Runs)
	}

	// Ground truth per source: the only two non-isolated vertices.
	machine := cfg.WithDefaults().Machine
	var edges int64
	var modeled float64
	var rates []float64
	for _, src := range []int32{0, 1000} {
		res, err := algo.Run(g, src, core.Options{Workers: 1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		model := costmodel.Modeled(machine, algo.Shape(), res)
		edges += res.EdgesTraversed
		modeled += model
		rates = append(rates, stats.TEPS(res.EdgesTraversed, model))
	}
	want := stats.TEPS(edges, modeled)
	oldMean := (rates[0] + rates[1]) / 2

	if relDiff(cell.ModeledTEPS, want) > 1e-9 {
		t.Fatalf("ModeledTEPS = %g, want Σedges/Σseconds = %g", cell.ModeledTEPS, want)
	}
	// The fixture must keep the two conventions distinguishable; if a
	// cost-model change ever collapses them, this test stops guarding
	// anything and needs a new fixture.
	if relDiff(want, oldMean) < 1e-3 {
		t.Fatalf("fixture too symmetric: aggregate %g vs per-source mean %g", want, oldMean)
	}
	if relDiff(cell.ModeledTEPS, oldMean) < 1e-3 {
		t.Fatalf("ModeledTEPS %g matches the arithmetic-mean convention %g", cell.ModeledTEPS, oldMean)
	}
}

// relDiff returns |a-b| relative to |b|.
func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestPickSourcesDistinct checks sampling never returns the same source
// twice (duplicates would double-weight a source in every cell mean).
func TestPickSourcesDistinct(t *testing.T) {
	spec, _ := SpecByName("wikipedia")
	g, err := spec.Generate(4096)
	if err != nil {
		t.Fatal(err)
	}
	srcs := PickSources(g, 50, 123)
	seen := make(map[int32]bool, len(srcs))
	for _, s := range srcs {
		if seen[s] {
			t.Fatalf("source %d sampled twice in %v", s, srcs)
		}
		seen[s] = true
	}
	if len(srcs) != 50 {
		t.Fatalf("got %d sources, want 50", len(srcs))
	}
}

// TestPickSourcesFewerCandidatesThanRequested checks the graceful
// fallback: a graph with only two non-isolated vertices yields exactly
// those two, not count copies of them.
func TestPickSourcesFewerCandidatesThanRequested(t *testing.T) {
	g := tepsTestGraph(t)
	srcs := PickSources(g, 10, 77)
	if len(srcs) != 2 {
		t.Fatalf("got %v, want exactly the two non-isolated vertices", srcs)
	}
	got := map[int32]bool{srcs[0]: true, srcs[1]: true}
	if !got[0] || !got[1000] {
		t.Fatalf("got %v, want {0, 1000}", srcs)
	}
}

// TestRunCellPublishesMetrics wires a registry into a cell and checks
// the per-run series arrive with the algo label.
func TestRunCellPublishesMetrics(t *testing.T) {
	spec, _ := SpecByName("cage14")
	g, err := spec.Generate(2048)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	cfg := tinyConfig()
	cfg.Registry = reg
	cell, err := RunCell(g, TableAlgos[2], cfg) // BFS_CL
	if err != nil {
		t.Fatal(err)
	}
	algoL := obs.L("algo", TableAlgos[2].Name)
	if got := reg.Counter("optibfs_runs_total", algoL).Value(); got != int64(cell.Runs) {
		t.Fatalf("runs_total %d, want %d", got, cell.Runs)
	}
	if got := reg.Histogram("optibfs_run_seconds", nil, algoL).Count(); got != int64(cell.Runs) {
		t.Fatalf("run_seconds count %d, want %d", got, cell.Runs)
	}
	if got := reg.Counter("optibfs_edges_scanned_total", algoL).Value(); got != cell.Counters.EdgesScanned {
		t.Fatalf("bridged edges_scanned %d, want %d", got, cell.Counters.EdgesScanned)
	}
	if got := reg.Gauge("optibfs_cell_modeled_teps", algoL).Value(); got != cell.ModeledTEPS {
		t.Fatalf("cell TEPS gauge %g, want %g", got, cell.ModeledTEPS)
	}
}
