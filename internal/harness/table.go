package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal text/CSV table renderer for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, padding or truncating to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (quotes cells containing commas).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtMS formats milliseconds with sensible precision.
func fmtMS(ms float64) string {
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 1:
		return fmt.Sprintf("%.2f", ms)
	default:
		return fmt.Sprintf("%.4f", ms)
	}
}

// fmtTEPS formats traversed-edges-per-second in engineering units.
func fmtTEPS(t float64) string {
	switch {
	case t >= 1e9:
		return fmt.Sprintf("%.2fGTEPS", t/1e9)
	case t >= 1e6:
		return fmt.Sprintf("%.1fMTEPS", t/1e6)
	default:
		return fmt.Sprintf("%.0fTEPS", t)
	}
}

// fmtCount renders a count with thousands separators.
func fmtCount(v int64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

// fmtPct renders value/total as a percentage.
func fmtPct(v, total int64) string {
	if total == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(v)/float64(total))
}
