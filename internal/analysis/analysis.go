// Package analysis provides the graph analyses the reproduced paper's
// introduction motivates BFS with: connected components, unweighted
// shortest-path infrastructure, and diameter estimation. Everything is
// built on the repository's parallel BFS runtimes, exercising them as
// the "building block for several other important algorithms" the
// paper describes.
package analysis

import (
	"fmt"

	"optibfs/internal/core"
	"optibfs/internal/graph"
)

// Components labels weakly-connected components. For a directed graph
// it symmetrizes reachability by searching the graph and its transpose
// together (equivalent to BFS on the underlying undirected graph).
// Returns the component id of every vertex (dense ids from 0) and the
// component sizes.
func Components(g *graph.CSR, opt core.Options) (labels []int32, sizes []int64, err error) {
	if g == nil {
		return nil, nil, fmt.Errorf("analysis: nil graph")
	}
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	if n == 0 {
		return labels, nil, nil
	}
	// Build the symmetrized graph once; component structure is defined
	// on it. One engine serves every component's search.
	sym := symmetrize(g)
	eng, err := core.NewEngine(sym, core.BFSCL, opt)
	if err != nil {
		return nil, nil, err
	}
	defer eng.Close()
	for v := int32(0); v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		comp := int32(len(sizes))
		if sym.OutDegree(v) == 0 {
			labels[v] = comp
			sizes = append(sizes, 1)
			continue
		}
		res, rerr := eng.Run(v)
		if rerr != nil {
			return nil, nil, rerr
		}
		var size int64
		for u := int32(0); u < n; u++ {
			if res.Dist[u] != graph.Unreached && labels[u] == -1 {
				labels[u] = comp
				size++
			}
		}
		sizes = append(sizes, size)
	}
	return labels, sizes, nil
}

// symmetrize returns g with every edge doubled in both directions
// (duplicates are harmless for reachability).
func symmetrize(g *graph.CSR) *graph.CSR {
	n := g.NumVertices()
	deg := make([]int64, n+1)
	for u := int32(0); u < n; u++ {
		for _, w := range g.Neighbors(u) {
			deg[u+1]++
			deg[w+1]++
		}
	}
	offsets := make([]int64, n+1)
	for v := int32(0); v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v+1]
	}
	edges := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for u := int32(0); u < n; u++ {
		for _, w := range g.Neighbors(u) {
			edges[cursor[u]] = w
			cursor[u]++
			edges[cursor[w]] = u
			cursor[w]++
		}
	}
	return &graph.CSR{Offsets: offsets, Edges: edges}
}

// DoubleSweep estimates the diameter of the component containing src
// with the classic two-BFS lower bound: find the farthest vertex a
// from src, then the farthest vertex from a; the second eccentricity
// is a (usually tight) lower bound on the true diameter.
func DoubleSweep(g *graph.CSR, src int32, opt core.Options) (int32, error) {
	if g == nil {
		return 0, fmt.Errorf("analysis: nil graph")
	}
	if src < 0 || src >= g.NumVertices() {
		return 0, fmt.Errorf("analysis: source %d out of range", src)
	}
	eng, err := core.NewEngine(g, core.BFSCL, opt)
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	first, err := eng.Run(src)
	if err != nil {
		return 0, err
	}
	far := src
	var farDist int32
	for v := int32(0); v < g.NumVertices(); v++ {
		if d := first.Dist[v]; d != graph.Unreached && d > farDist {
			farDist, far = d, v
		}
	}
	second, err := eng.Run(far)
	if err != nil {
		return 0, err
	}
	return graph.Eccentricity(second.Dist), nil
}

// Eccentricities runs BFS from every vertex in sources and returns
// each eccentricity; max over a good source sample approximates the
// diameter, min approximates the radius.
func Eccentricities(g *graph.CSR, sources []int32, opt core.Options) ([]int32, error) {
	out := make([]int32, len(sources))
	eng, err := core.NewEngine(g, core.BFSCL, opt)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	for i, s := range sources {
		if s < 0 || s >= g.NumVertices() {
			return nil, fmt.Errorf("analysis: source %d out of range", s)
		}
		res, err := eng.Run(s)
		if err != nil {
			return nil, err
		}
		out[i] = graph.Eccentricity(res.Dist)
	}
	return out, nil
}

// Betweenness computes (unnormalized) betweenness centrality by
// Brandes' algorithm, restricted to the given sources — the exact
// values when sources covers every vertex, an unbiased sample estimate
// otherwise. This is the paper's flagship "BFS as building block"
// application (§I cites the betweenness centrality problem; its ref
// [17] is a BFS-based BC system): each source contributes one BFS
// (level structure + path counts) plus a reverse dependency sweep.
// Parallel edges are counted as distinct shortest paths.
func Betweenness(g *graph.CSR, sources []int32, opt core.Options) ([]float64, error) {
	if g == nil {
		return nil, fmt.Errorf("analysis: nil graph")
	}
	n := g.NumVertices()
	bc := make([]float64, n)
	if n == 0 {
		return bc, nil
	}
	gT := g.Transpose()
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]int32, 0, n)
	eng, err := core.NewEngine(g, core.BFSCL, opt)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("analysis: source %d out of range", s)
		}
		res, err := eng.Run(s)
		if err != nil {
			return nil, err
		}
		dist := res.Dist
		// Vertices in level order (counting sort by distance).
		order = order[:0]
		starts := make([]int32, len(res.LevelSizes)+1)
		for d, sz := range res.LevelSizes {
			starts[d+1] = starts[d] + int32(sz)
		}
		order = order[:starts[len(starts)-1]]
		cursor := append([]int32(nil), starts[:len(starts)-1]...)
		for v := int32(0); v < n; v++ {
			if d := dist[v]; d != graph.Unreached {
				order[cursor[d]] = v
				cursor[d]++
			}
		}
		// Forward: shortest-path counts via predecessors.
		for i := range sigma {
			sigma[i], delta[i] = 0, 0
		}
		sigma[s] = 1
		for _, v := range order {
			if v == s {
				continue
			}
			for _, u := range gT.Neighbors(v) {
				if dist[u] == dist[v]-1 {
					sigma[v] += sigma[u]
				}
			}
		}
		// Backward: dependency accumulation, deepest level first.
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if v == s {
				continue
			}
			for _, u := range gT.Neighbors(v) {
				if dist[u] == dist[v]-1 && sigma[v] > 0 {
					delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
				}
			}
			bc[v] += delta[v]
		}
	}
	return bc, nil
}

// IsConnected reports whether every vertex is reachable from src in
// the symmetrized sense (one weakly-connected component).
func IsConnected(g *graph.CSR, opt core.Options) (bool, error) {
	if g.NumVertices() == 0 {
		return true, nil
	}
	_, sizes, err := Components(g, opt)
	if err != nil {
		return false, err
	}
	return len(sizes) == 1, nil
}
