package analysis

import (
	"testing"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
)

func TestComponentsDisjoint(t *testing.T) {
	// Two triangles and two isolated vertices.
	g, err := graph.FromEdges(8, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
	}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	labels, sizes, err := Components(g, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 4 {
		t.Fatalf("components %d, want 4 (sizes %v)", len(sizes), sizes)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("triangle split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Fatal("distinct triangles merged")
	}
	if labels[6] == labels[7] {
		t.Fatal("isolated vertices merged")
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	if total != 8 {
		t.Fatalf("sizes sum %d", total)
	}
}

func TestComponentsDirectedChain(t *testing.T) {
	// Directed edges only: weak connectivity must still join them.
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 3, Dst: 2}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, sizes, err := Components(g, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("weak connectivity broken: %v", sizes)
	}
}

func TestComponentsEmptyAndNil(t *testing.T) {
	labels, sizes, err := Components(&graph.CSR{}, core.Options{})
	if err != nil || len(labels) != 0 || len(sizes) != 0 {
		t.Fatalf("empty graph: %v %v %v", labels, sizes, err)
	}
	if _, _, err := Components(nil, core.Options{}); err == nil {
		t.Fatal("accepted nil graph")
	}
}

func TestIsConnected(t *testing.T) {
	conn, err := gen.Cycle(20)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsConnected(conn, core.Options{Workers: 2})
	if err != nil || !ok {
		t.Fatalf("cycle not connected: %v %v", ok, err)
	}
	disc, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}}, graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err = IsConnected(disc, core.Options{Workers: 2})
	if err != nil || ok {
		t.Fatalf("disconnected graph reported connected")
	}
}

func TestDoubleSweepPath(t *testing.T) {
	g, err := gen.Path(100)
	if err != nil {
		t.Fatal(err)
	}
	// From the middle, single BFS sees ecc 50; double sweep finds 99.
	est, err := DoubleSweep(g, 50, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est != 99 {
		t.Fatalf("double sweep estimate %d, want 99", est)
	}
	if _, err := DoubleSweep(g, -1, core.Options{}); err == nil {
		t.Fatal("accepted bad source")
	}
	if _, err := DoubleSweep(nil, 0, core.Options{}); err == nil {
		t.Fatal("accepted nil graph")
	}
}

func TestDoubleSweepGrid(t *testing.T) {
	g, err := gen.Grid2D(10, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	est, err := DoubleSweep(g, 55, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est != 18 { // corner-to-corner Manhattan distance
		t.Fatalf("grid diameter estimate %d, want 18", est)
	}
}

func TestEccentricities(t *testing.T) {
	g, err := gen.Path(9)
	if err != nil {
		t.Fatal(err)
	}
	eccs, err := Eccentricities(g, []int32{0, 4, 8}, core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eccs[0] != 8 || eccs[1] != 4 || eccs[2] != 8 {
		t.Fatalf("eccs %v", eccs)
	}
	if _, err := Eccentricities(g, []int32{99}, core.Options{}); err == nil {
		t.Fatal("accepted bad source")
	}
}

func allSources(n int32) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

func TestBetweennessPath(t *testing.T) {
	// Undirected path 0-1-2-3-4: exact BC (directed-pair counting) is
	// [0, 6, 8, 6, 0].
	g, err := gen.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Betweenness(g, allSources(5), core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 6, 8, 6, 0}
	for v, w := range want {
		if diff := bc[v] - w; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("bc[%d]=%g want %g (full %v)", v, bc[v], w, bc)
		}
	}
}

func TestBetweennessStarHub(t *testing.T) {
	// Star with n spokes: every spoke pair's path crosses the hub —
	// bc[hub] = (n-1)(n-2) ordered pairs, spokes 0.
	const n = 12
	g, err := gen.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Betweenness(g, allSources(n), core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64((n - 1) * (n - 2)); bc[0] != want {
		t.Fatalf("hub bc %g want %g", bc[0], want)
	}
	for v := 1; v < n; v++ {
		if bc[v] != 0 {
			t.Fatalf("spoke %d bc %g", v, bc[v])
		}
	}
}

func TestBetweennessCycleSymmetry(t *testing.T) {
	g, err := gen.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Betweenness(g, allSources(8), core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 8; v++ {
		if diff := bc[v] - bc[0]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("cycle BC not uniform: %v", bc)
		}
	}
	if bc[0] <= 0 {
		t.Fatalf("cycle BC zero: %v", bc)
	}
}

func TestBetweennessSampledSubset(t *testing.T) {
	g, err := gen.ChungLu(500, 4000, 2.2, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Betweenness(g, []int32{0, 10, 99}, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for _, v := range bc {
		if v < 0 {
			t.Fatalf("negative centrality %g", v)
		}
		if v > 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("sampled BC all zero")
	}
	if _, err := Betweenness(g, []int32{-1}, core.Options{}); err == nil {
		t.Fatal("accepted bad source")
	}
	if _, err := Betweenness(nil, nil, core.Options{}); err == nil {
		t.Fatal("accepted nil graph")
	}
}

func TestComponentsOnGeneratedSuite(t *testing.T) {
	g, err := gen.LayeredRandom(2000, 12000, 10, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, sizes, err := Components(g, core.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 1 {
		t.Fatalf("layered graph should be one component, got %d", len(sizes))
	}
	if sizes[0] != int64(g.NumVertices()) {
		t.Fatalf("component size %d", sizes[0])
	}
}
