package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/mmio"
	"optibfs/internal/obs"
	"optibfs/internal/serve"
)

func testDaemon(t *testing.T) (*daemon, *httptest.Server) {
	t.Helper()
	d := newDaemon(serve.Config{
		Algo:        core.BFSWL,
		Concurrency: 1,
		Deadline:    10 * time.Second,
		Options:     core.Options{Workers: 2},
		Batch:       serve.BatchConfig{Enabled: true, Window: time.Millisecond},
	}, obs.New(), 1<<20)
	ts := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		ts.Close()
		d.closeGuard()
	})
	return d, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %v)", url, resp.StatusCode, wantStatus, m)
	}
	return m
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST %s: decoding body: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d (body %v)", url, resp.StatusCode, wantStatus, m)
	}
	return m
}

func TestLifecycleLoadQueryValidate(t *testing.T) {
	_, ts := testDaemon(t)

	// Before a load: queries 503, readiness 503, liveness 200.
	getJSON(t, ts.URL+"/query?src=0", http.StatusServiceUnavailable)
	getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable)
	getJSON(t, ts.URL+"/healthz", http.StatusOK)

	// Load a 4-vertex path as an edge list.
	m := postJSON(t, ts.URL+"/load", "0 1\n1 2\n2 3\n", http.StatusOK)
	if m["vertices"].(float64) != 4 {
		t.Fatalf("load reported %v vertices, want 4", m["vertices"])
	}
	getJSON(t, ts.URL+"/readyz", http.StatusOK)

	// Query with self-validation and a destination.
	q := getJSON(t, ts.URL+"/query?src=0&dst=3&validate=1", http.StatusOK)
	if q["valid"] != true {
		t.Fatalf("validated query: %v", q)
	}
	if q["dist"].(float64) != 3 {
		t.Fatalf("dist(0->3) = %v, want 3", q["dist"])
	}
	if q["outcome"] != "ok" {
		t.Fatalf("outcome = %v, want ok", q["outcome"])
	}

	// Full arrays.
	f := getJSON(t, ts.URL+"/query?src=0&full=1", http.StatusOK)
	if len(f["dist_all"].([]any)) != 4 {
		t.Fatalf("full dist has %d entries", len(f["dist_all"].([]any)))
	}

	// Bad inputs map to 400.
	getJSON(t, ts.URL+"/query?src=banana", http.StatusBadRequest)
	getJSON(t, ts.URL+"/query?src=99", http.StatusBadRequest)
	getJSON(t, ts.URL+"/query?src=0&dst=99", http.StatusBadRequest)
}

func TestLoadGeneratedAndBinary(t *testing.T) {
	_, ts := testDaemon(t)

	m := postJSON(t, ts.URL+"/load?gen=rmat&n=512&m=4096&seed=3", "", http.StatusOK)
	if m["vertices"].(float64) != 512 {
		t.Fatalf("rmat load: %v", m)
	}
	q := getJSON(t, ts.URL+"/query?src=0&validate=1", http.StatusOK)
	if q["valid"] != true {
		t.Fatalf("rmat query: %v", q)
	}

	// Binary upload round-trip.
	g, err := gen.ErdosRenyi(100, 600, 2, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mmio.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/load?format=bin", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary load: status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/query?src=0&validate=1", http.StatusOK)
}

func TestLoadErrorMapping(t *testing.T) {
	_, ts := testDaemon(t)

	// Malformed bytes: 400 via mmio.ErrMalformed.
	postJSON(t, ts.URL+"/load", "not an edge list\n", http.StatusBadRequest)
	postJSON(t, ts.URL+"/load?format=mtx", "%%MatrixMarket matrix coordinate", http.StatusBadRequest)
	postJSON(t, ts.URL+"/load?format=bin", "NOTMAGIC........", http.StatusBadRequest)
	// Unknown knobs: 400.
	postJSON(t, ts.URL+"/load?format=nope", "x", http.StatusBadRequest)
	postJSON(t, ts.URL+"/load?gen=nope", "", http.StatusBadRequest)
	// GET on /load: 405.
	getJSON(t, ts.URL+"/load", http.StatusMethodNotAllowed)
}

func TestLoadBodyTooLarge(t *testing.T) {
	d := newDaemon(serve.Config{Concurrency: 1, Options: core.Options{Workers: 2}}, obs.New(), 64)
	ts := httptest.NewServer(d.handler())
	defer func() {
		ts.Close()
		d.closeGuard()
	}()
	big := strings.Repeat("0 1\n", 100)
	postJSON(t, ts.URL+"/load", big, http.StatusRequestEntityTooLarge)
}

func TestMetricsExposed(t *testing.T) {
	_, ts := testDaemon(t)
	postJSON(t, ts.URL+"/load", "0 1\n", http.StatusOK)
	getJSON(t, ts.URL+"/query?src=0", http.StatusOK)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if !strings.Contains(body, `optibfs_serve_requests_total{outcome="ok"} 1`) {
		t.Fatalf("metrics missing serve request counter:\n%s", body)
	}
}
