package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/graph"
	"optibfs/internal/mmio"
	"optibfs/internal/obs"
	"optibfs/internal/serve"
)

// writeV2File writes g as a v2 binary file and returns its path.
func writeV2File(t *testing.T, g *graph.CSR) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bin2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteBinaryV2(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadPathMappedAndValidated(t *testing.T) {
	d, ts := testDaemon(t)
	g, err := gen.Graph500RMAT(2048, 16384, 5, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := writeV2File(t, g)
	m := postJSON(t, ts.URL+"/load?path="+url.QueryEscape(path), "", http.StatusOK)
	if m["mapped"] != true {
		t.Fatalf("v2 path load not mapped: %v", m)
	}
	if int64(m["vertices"].(float64)) != int64(g.NumVertices()) {
		t.Fatalf("vertices = %v, want %d", m["vertices"], g.NumVertices())
	}
	q := getJSON(t, ts.URL+"/query?src=0&validate=1", http.StatusOK)
	if q["valid"] != true {
		t.Fatalf("query over mapped graph did not validate: %v", q)
	}
	lease, err := d.registry.Acquire(defaultGraph)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	if lease.MappedGraph() == nil || !lease.MappedGraph().Mapped() {
		t.Fatal("daemon did not keep the mapping")
	}
}

func TestLoadPathErrorTaxonomy(t *testing.T) {
	_, ts := testDaemon(t)
	dir := t.TempDir()

	// Missing file: the path is the client's mistake -> 400.
	postJSON(t, ts.URL+"/load?path="+url.QueryEscape(filepath.Join(dir, "missing.bin2")), "", http.StatusBadRequest)

	// Corrupt payload -> 400 via mmio.ErrMalformed.
	g, err := gen.ErdosRenyi(300, 1500, 2, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := writeV2File(t, g)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 1
	bad := filepath.Join(dir, "bad.bin2")
	if err := os.WriteFile(bad, b, 0o644); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/load?path="+url.QueryEscape(bad), "", http.StatusBadRequest)
}

// File loads must respect -max-body; they used to bypass it entirely.
func TestLoadPathTooLarge(t *testing.T) {
	d := newDaemon(serve.Config{Concurrency: 1, Options: core.Options{Workers: 2}}, obs.New(), 128)
	ts := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		ts.Close()
		d.closeGuard()
	})
	g, err := gen.ErdosRenyi(500, 2500, 3, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := writeV2File(t, g)
	postJSON(t, ts.URL+"/load?path="+url.QueryEscape(path), "", http.StatusRequestEntityTooLarge)

	// Startup -load takes the same gate.
	if err := loadFile(d, path); err == nil {
		t.Fatal("loadFile accepted a file over -max-body")
	}
}

// A /load swap while a query is between snapshot and completion must
// not unmap the pages the query still reads: the request pin holds the
// mapping until the handler finishes, and only then may the retire
// path drop the base reference.
func TestLoadSwapKeepsMappingAliveUnderQuery(t *testing.T) {
	d, ts := testDaemon(t)
	g, err := gen.Graph500RMAT(1024, 8192, 7, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := writeV2File(t, g)
	postJSON(t, ts.URL+"/load?path="+url.QueryEscape(path), "", http.StatusOK)
	firstLease, err := d.registry.Acquire(defaultGraph)
	if err != nil {
		t.Fatal(err)
	}
	firstGuard, firstMapped := firstLease.Guard(), firstLease.MappedGraph()
	firstLease.Release()
	if firstMapped == nil {
		t.Fatal("first load not mapped")
	}

	swapped := make(chan struct{})
	d.testHookAfterSnapshot = func() {
		d.testHookAfterSnapshot = nil // fire once
		// Swap in a fresh (generated, heap) graph while the query holds
		// its pin, and give the background retire a chance to run.
		postJSON(t, ts.URL+"/load?gen=er&n=512&m=2048&seed=9", "", http.StatusOK)
		deadline := time.Now().Add(2 * time.Second)
		for firstGuard.Abandoned() == 0 && !firstMapped.Unmapped() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if firstMapped.Unmapped() {
			t.Error("mapping unmapped while a query still held its pin")
		}
		close(swapped)
	}
	q := getJSON(t, ts.URL+"/query?src=0&validate=1", http.StatusOK)
	<-swapped
	if q["valid"] != true {
		t.Fatalf("query during swap did not validate: %v", q)
	}
	// With the pin released and the old guard drained, the mapping must
	// eventually be released for real — no leak on the healthy path.
	deadline := time.Now().Add(5 * time.Second)
	for !firstMapped.Unmapped() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !firstMapped.Unmapped() {
		t.Fatal("retired mapping never released after the query finished")
	}
}

// A daemon built with -shards answers and self-validates like the
// single-engine one; the guard routes through core.NewBackend.
func TestShardedDaemonQueries(t *testing.T) {
	d := newDaemon(serve.Config{
		Algo:        core.BFSWL,
		Concurrency: 1,
		Deadline:    10 * time.Second,
		Options:     core.Options{Workers: 2, Shards: 2},
	}, obs.New(), 1<<20)
	ts := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		ts.Close()
		d.closeGuard()
	})
	postJSON(t, ts.URL+"/load?gen=rmat&n=2048&m=16384&seed=3", "", http.StatusOK)
	for i := 0; i < 3; i++ {
		q := getJSON(t, fmt.Sprintf("%s/query?src=%d&validate=1&batch=0", ts.URL, i*17), http.StatusOK)
		if q["valid"] != true {
			t.Fatalf("sharded daemon query invalid: %v", q)
		}
	}
}
