package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"optibfs/internal/core"
	"optibfs/internal/gen"
	"optibfs/internal/obs"
	"optibfs/internal/serve"
)

func decodeJSON(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	return m
}

func deleteJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	m := decodeJSON(t, resp)
	if resp.StatusCode != wantStatus {
		t.Fatalf("DELETE %s: status %d, want %d (body %v)", url, resp.StatusCode, wantStatus, m)
	}
	return m
}

// TestGraphsCRUD drives the named-graph routes end to end: load three
// graphs, list them, query each by name, evict one, and observe the
// 404s that follow.
func TestGraphsCRUD(t *testing.T) {
	_, ts := testDaemon(t)
	for i, name := range []string{"alpha", "beta", "gamma"} {
		m := postJSON(t, fmt.Sprintf("%s/graphs/%s?gen=er&n=256&m=1024&seed=%d", ts.URL, name, i+1), "", http.StatusOK)
		if m["graph"] != name {
			t.Fatalf("load response graph = %v, want %s", m["graph"], name)
		}
	}

	list := getJSON(t, ts.URL+"/graphs", http.StatusOK)
	graphs := list["graphs"].([]any)
	if len(graphs) != 3 {
		t.Fatalf("listed %d graphs, want 3: %v", len(graphs), list)
	}
	if rb := list["resident_bytes"].(float64); rb <= 0 {
		t.Fatalf("resident_bytes = %v, want > 0", rb)
	}

	info := getJSON(t, ts.URL+"/graphs/beta", http.StatusOK)
	if info["graph"] != "beta" || info["vertices"].(float64) != 256 {
		t.Fatalf("graph info: %v", info)
	}

	for _, name := range []string{"alpha", "beta", "gamma"} {
		q := getJSON(t, ts.URL+"/query?src=0&graph="+name+"&validate=1", http.StatusOK)
		if q["valid"] != true || q["graph"] != name {
			t.Fatalf("query on %s: %v", name, q)
		}
		if q["graph_gen"] == nil {
			t.Fatalf("named query must report graph_gen: %v", q)
		}
	}

	deleteJSON(t, ts.URL+"/graphs/beta", http.StatusOK)
	getJSON(t, ts.URL+"/graphs/beta", http.StatusNotFound)
	getJSON(t, ts.URL+"/query?src=0&graph=beta", http.StatusNotFound)
	deleteJSON(t, ts.URL+"/graphs/beta", http.StatusNotFound)

	// The survivors still answer.
	q := getJSON(t, ts.URL+"/query?src=0&graph=alpha&validate=1", http.StatusOK)
	if q["valid"] != true {
		t.Fatalf("post-evict query on alpha: %v", q)
	}
}

// TestQueryRouting404AndLegacy503: the legacy default route keeps its
// historical 503 "no graph loaded" while explicit graph= misses get a
// 404, and malformed names die with a 400.
func TestQueryRouting404AndLegacy503(t *testing.T) {
	_, ts := testDaemon(t)
	getJSON(t, ts.URL+"/query?src=0", http.StatusServiceUnavailable)
	getJSON(t, ts.URL+"/query?src=0&graph=nope", http.StatusNotFound)
	getJSON(t, ts.URL+"/query?src=0&graph=bad/name", http.StatusBadRequest)
	postJSON(t, ts.URL+"/graphs/bad%2Fname?gen=er&n=64&m=128", "", http.StatusBadRequest)
}

// TestReadyzPerGraph: ?graph= probes one graph's state; the bare probe
// reports the whole registry (and keeps the legacy default-graph
// fields the load generators read).
func TestReadyzPerGraph(t *testing.T) {
	_, ts := testDaemon(t)
	getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable)
	getJSON(t, ts.URL+"/readyz?graph=solo", http.StatusNotFound)

	postJSON(t, ts.URL+"/graphs/solo?gen=er&n=128&m=512&seed=1", "", http.StatusOK)
	m := getJSON(t, ts.URL+"/readyz?graph=solo", http.StatusOK)
	if m["ready"] != true || m["graph"] != "solo" {
		t.Fatalf("per-graph readyz: %v", m)
	}
	// A named graph (no default) is enough for overall readiness.
	m = getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if m["ready"] != true {
		t.Fatalf("registry with one named graph not ready: %v", m)
	}
	if m["vertices"] != nil {
		t.Fatalf("legacy default fields must be absent without a default graph: %v", m)
	}

	postJSON(t, ts.URL+"/load?gen=er&n=256&m=1024&seed=2", "", http.StatusOK)
	m = getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if m["vertices"].(float64) != 256 || m["algorithm"] == nil {
		t.Fatalf("legacy default fields missing: %v", m)
	}
}

// gateHook blocks every worker at its first level barrier until the
// channel closes — a deterministic way to hold one query in flight.
type gateHook struct{ release chan struct{} }

func (h gateHook) At(p core.ChaosPoint, _ int, _ int64) {
	if p == core.ChaosStall {
		<-h.release
	}
}

// TestBurstSheds429WithRetryAfter: with a single global admission slot
// and no queue, a second concurrent query is shed with 429 and a
// derived Retry-After — not the old hardcoded 503/1s pair.
func TestBurstSheds429WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	d := newDaemonFull(serve.Config{
		Algo:        core.BFSWL,
		Concurrency: 2,
		Deadline:    10 * time.Second,
		Options: core.Options{
			Workers:      2,
			StallTimeout: time.Minute, // the gate is not a stall
			Chaos:        gateHook{release: release},
		},
	}, serve.AdmissionConfig{
		MaxInFlight: 1,
		MaxQueue:    -1, // shed immediately when saturated
	}, 0, obs.New(), 1<<20)
	ts := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		ts.Close()
		d.closeGuard()
	})
	postJSON(t, ts.URL+"/load?gen=er&n=256&m=1024&seed=4", "", http.StatusOK)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		getJSON(t, ts.URL+"/query?src=0&batch=0", http.StatusOK)
	}()
	// Wait until the first query holds the admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for d.reg.Gauge("optibfs_admission_inflight").Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.reg.Gauge("optibfs_admission_inflight").Value() < 1 {
		close(release)
		t.Fatal("first query never occupied the admission slot")
	}

	resp, err := http.Get(ts.URL + "/query?src=1&batch=0")
	if err != nil {
		close(release)
		t.Fatal(err)
	}
	body := decodeJSON(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		close(release)
		t.Fatalf("burst query status = %d, want 429 (body %v)", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		close(release)
		t.Fatal("429 without Retry-After")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 || secs > 30 {
		close(release)
		t.Fatalf("Retry-After = %q, want integer seconds in [1,30]", ra)
	}
	if body["shed"] != serve.ShedQueueFull {
		close(release)
		t.Fatalf("shed reason = %v, want %s (body %v)", body["shed"], serve.ShedQueueFull, body)
	}
	if d.reg.Counter(`optibfs_admission_sheds_total{reason="queue_full"}`).Value() < 1 {
		close(release)
		t.Fatal("shed counter not incremented")
	}

	close(release)
	wg.Wait()
}

// TestMemBudgetEvictsLRUOverHTTP: loads past -mem-budget evict the
// least-recently-used idle graph, observable as a 404 on its routes.
func TestMemBudgetEvictsLRUOverHTTP(t *testing.T) {
	g, err := gen.ErdosRenyi(500, 3000, 9, gen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cost := int64(len(g.Offsets))*8 + int64(len(g.Edges))*4
	d := newDaemonFull(serve.Config{
		Algo:        core.BFSWL,
		Concurrency: 1,
		Deadline:    10 * time.Second,
		Options:     core.Options{Workers: 2},
	}, serve.AdmissionConfig{}, cost*2+cost/2, obs.New(), 1<<20)
	ts := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		ts.Close()
		d.closeGuard()
	})

	// Identical generator params -> identical cost per graph; the
	// budget fits two of the three.
	postJSON(t, ts.URL+"/graphs/a?gen=er&n=500&m=3000&seed=9", "", http.StatusOK)
	postJSON(t, ts.URL+"/graphs/b?gen=er&n=500&m=3000&seed=9", "", http.StatusOK)
	// Touch a so b is the LRU victim.
	getJSON(t, ts.URL+"/query?src=0&graph=a", http.StatusOK)
	postJSON(t, ts.URL+"/graphs/c?gen=er&n=500&m=3000&seed=9", "", http.StatusOK)

	getJSON(t, ts.URL+"/graphs/b", http.StatusNotFound)
	getJSON(t, ts.URL+"/query?src=0&graph=a", http.StatusOK)
	getJSON(t, ts.URL+"/query?src=0&graph=c", http.StatusOK)
}
